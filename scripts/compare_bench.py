#!/usr/bin/env python3
"""Compare two directories of benchmark JSON against each other.

CI caches the benchmark output of the last main build and feeds it here
together with the current run: any tracked metric that regresses by more
than the tolerance fails the job, so a perf regression is caught by the
PR that introduces it, not by someone eyeballing dashboards later.

Metrics are extracted per schema (the same documents check_bench.py
threshold-checks).  Most are virtual-clock results and therefore exactly
reproducible; the executor benchmark reports real wall clock, so its
rows are compared through the machine-normalized speedup ratio instead
of raw seconds.

usage: compare_bench.py --old <dir> --new <dir> [--tolerance 0.10]
                        [--report <path>]
       compare_bench.py --selftest
"""

import argparse
import json
import os
import sys
import tempfile

# Direction of goodness per metric: "lower" (runtimes) regresses when the
# new value exceeds old * (1 + tolerance); "higher" (speedups) regresses
# when the new value drops below old * (1 - tolerance).
LOWER, HIGHER = "lower", "higher"

# Per-metric widening of the base tolerance.  Virtual-clock results are
# bitwise reproducible, so the base band is generous already; the executor
# benchmark's wall-clock speedups jitter by tens of percent run to run on
# the same machine, so they get a wider band that still catches the
# compiled path silently degenerating to interpreter speed.
WALL_CLOCK_TOL_SCALE = 5.0


def extract_fig4(doc):
    for p in doc.get("points", []):
        procs = p["procs"]
        for impl in ("cpu", "jax", "omp"):
            r = p.get(impl)
            if r and not r.get("oom"):
                yield f"fig4/procs={procs}/{impl}.runtime_s", \
                    r["runtime_s"], LOWER


def extract_fig5(doc):
    for i in doc.get("implementations", []):
        if not i.get("oom"):
            yield f"fig5/{i['name']}.runtime_s", i["runtime_s"], LOWER


def extract_fig6(doc):
    for k in doc.get("kernels", []):
        for impl in ("cpu_s", "jax_s", "omp_s"):
            yield f"fig6/{k['name']}.{impl}", k[impl], LOWER


def extract_overlap(doc):
    yield "overlap/sync_runtime_s", doc["sync_runtime_s"], LOWER
    for p in doc.get("points", []):
        yield f"overlap/streams={p['streams']}.runtime_s", \
            p["runtime_s"], LOWER


def extract_plan(doc):
    for j in doc.get("jobs", []):
        yield f"plan/{j['name']}.sync_runtime_s", j["sync_runtime_s"], LOWER
        yield f"plan/{j['name']}.prefetch_runtime_s", \
            j["prefetch_runtime_s"], LOWER


def extract_comm(doc):
    for p in doc.get("points", []):
        key = f"comm/ranks={p['ranks']}/bytes={p['bytes']:.0f}"
        yield f"{key}.ring_s", p["ring_s"], LOWER
        yield f"{key}.rsag_s", p["rsag_s"], LOWER


def extract_executor(doc):
    # Wall-clock seconds vary with the runner; the interpreter-vs-compiled
    # ratio is the machine-independent signal worth gating on (with the
    # widened band — see WALL_CLOCK_TOL_SCALE).
    for r in doc.get("rows", []):
        yield (f"executor/{r['name']}.speedup", r["speedup"], HIGHER,
               WALL_CLOCK_TOL_SCALE)
    fused = doc.get("fused")
    if fused:
        # Lowering quality: more loops or materialized values for the same
        # module means the fusion got worse.  Deterministic.
        yield "executor/fused.loops", float(fused["loops"]), LOWER
        yield "executor/fused.materialized", \
            float(fused["materialized"]), LOWER


def extract_resilience(doc):
    # Virtual-clock runtimes: bitwise reproducible, so any drift is a
    # real model change.  Gate the recovery overhead (chaos minus clean)
    # rather than the booleans — check_bench.py --resilience owns those.
    ident = doc.get("identity", {})
    if "no_policy_runtime_s" in ident:
        yield "resilience/identity.runtime_s", \
            ident["no_policy_runtime_s"], LOWER
    shrink = doc.get("shrink", {})
    if "chaos_runtime_s" in shrink:
        yield "resilience/shrink.chaos_runtime_s", \
            shrink["chaos_runtime_s"], LOWER
    job = doc.get("job_shrink", {})
    if "chaos_runtime_s" in job:
        yield "resilience/job_shrink.chaos_runtime_s", \
            job["chaos_runtime_s"], LOWER
    deg = doc.get("degraded", {})
    if "runtime_s" in deg:
        yield "resilience/degraded.runtime_s", deg["runtime_s"], LOWER


def extract_tune(doc):
    # Virtual-clock runtimes, bitwise reproducible.  Gating the tuned
    # runtime catches both a cost-model regression and the tuner silently
    # settling for a worse schedule; the best hand-picked runtime is the
    # control (it moves only when the model itself moved).
    for r in doc.get("rows", []):
        yield f"tune/{r['name']}.tuned_runtime_s", \
            r["tuned_runtime_s"], LOWER
        yield f"tune/{r['name']}.best_hand_runtime_s", \
            r["best_hand_runtime_s"], LOWER
    for p in doc.get("crossover", {}).get("points", []):
        best = min(p["seconds"].values())
        yield f"tune/crossover/bytes={p['bytes']:.0f}.best_s", best, LOWER


def extract_serve(doc):
    # Virtual-clock service metrics, bitwise reproducible.  Throughput
    # regresses when it drops (scheduler packing fewer jobs per virtual
    # second); tail queue wait regresses when it grows.  The invariant
    # booleans are owned by check_bench.py --serve.
    for p in doc.get("points", []):
        key = f"serve/load={p['offered_load']:g}"
        yield f"{key}.throughput_jobs_per_s", \
            p["throughput_jobs_per_s"], HIGHER
        yield f"{key}.queue_wait_p99_s", p["queue_wait_p99_s"], LOWER
        yield f"{key}.makespan_s", p["makespan_s"], LOWER


EXTRACTORS = {
    "toastcase-bench-fig4-v1": extract_fig4,
    "toastcase-bench-fig5-v1": extract_fig5,
    "toastcase-bench-fig6-v1": extract_fig6,
    "toastcase-bench-overlap-v1": extract_overlap,
    "toastcase-bench-plan-v1": extract_plan,
    "toastcase-bench-comm-v1": extract_comm,
    "toastcase-bench-executor-v1": extract_executor,
    "toastcase-bench-resilience-v1": extract_resilience,
    "toastcase-bench-tune-v1": extract_tune,
    "toastcase-bench-serve-v1": extract_serve,
}


def load_metrics(directory):
    """All tracked metrics from recognized documents under `directory`:
    {metric name: (value, direction, tolerance scale)}."""
    metrics = {}
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".json"):
            continue
        path = os.path.join(directory, fname)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue  # trace files and partial artifacts are not metrics
        extractor = EXTRACTORS.get(
            doc.get("schema") if isinstance(doc, dict) else None)
        if extractor is None:
            continue
        for entry in extractor(doc):
            name, value, direction = entry[:3]
            scale = entry[3] if len(entry) > 3 else 1.0
            metrics[name] = (float(value), direction, scale)
    return metrics


def compare(old, new, tolerance):
    """Compare metric maps; returns (regressions, improvements, deltas).
    A regression is a tracked metric that moved in the bad direction by
    more than `tolerance` (relative)."""
    regressions, improvements, deltas = [], [], []
    for name in sorted(set(old) & set(new)):
        old_v, direction, scale = old[name]
        new_v, _, _ = new[name]
        if old_v == 0:
            rel = 0.0 if new_v == 0 else float("inf")
        else:
            rel = (new_v - old_v) / abs(old_v)
        bad = rel if direction == LOWER else -rel
        band = tolerance * scale
        entry = {
            "metric": name,
            "old": old_v,
            "new": new_v,
            "delta_pct": 100.0 * rel,
            "direction": direction,
            "tolerance_pct": 100.0 * band,
        }
        deltas.append(entry)
        if bad > band:
            regressions.append(entry)
        elif bad < -band:
            improvements.append(entry)
    return regressions, improvements, deltas


def run_compare(old_dir, new_dir, tolerance, report_path):
    old = load_metrics(old_dir)
    new = load_metrics(new_dir)
    if not new:
        print(f"compare_bench.py: no tracked metrics under {new_dir}")
        return 1
    if not old:
        # First run on a branch with no cached baseline: nothing to
        # compare against yet, but the current metrics become the report.
        print(f"compare_bench.py: no baseline under {old_dir}; "
              f"recorded {len(new)} metrics, nothing to compare")
        write_report(report_path, tolerance, [], [], [],
                     sorted(new), [])
        return 0

    regressions, improvements, deltas = compare(old, new, tolerance)
    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))

    print(f"compared {len(deltas)} metrics "
          f"(tolerance ±{100 * tolerance:.0f}%): "
          f"{len(regressions)} regressed, {len(improvements)} improved, "
          f"{len(added)} added, {len(removed)} removed")
    for e in improvements:
        print(f"  [better] {e['metric']}: "
              f"{e['old']:.6g} -> {e['new']:.6g} ({e['delta_pct']:+.1f}%)")
    for name in removed:
        print(f"  [gone]   {name} (was tracked in the baseline)")
    for e in regressions:
        print(f"  [WORSE]  {e['metric']}: "
              f"{e['old']:.6g} -> {e['new']:.6g} ({e['delta_pct']:+.1f}%)")

    write_report(report_path, tolerance, deltas, regressions, improvements,
                 added, removed)

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"±{100 * tolerance:.0f}%")
        return 1
    print("\nno benchmark regressions")
    return 0


def write_report(path, tolerance, deltas, regressions, improvements,
                 added, removed):
    if not path:
        return
    with open(path, "w") as f:
        json.dump(
            {
                "schema": "toastcase-bench-compare-v1",
                "tolerance": tolerance,
                "compared": len(deltas),
                "regressions": regressions,
                "improvements": improvements,
                "added": added,
                "removed": removed,
                "deltas": deltas,
            },
            f,
            indent=2,
        )
        f.write("\n")
    print(f"wrote {path}")


def selftest():
    """End-to-end check of the gate itself: identical runs must pass, a
    synthetic 20% slowdown (and a 20% speedup loss) must fail."""
    base = {
        "schema": "toastcase-bench-fig5-v1",
        "implementations": [
            {"name": "omp", "runtime_s": 100.0, "oom": False},
            {"name": "jax", "runtime_s": 120.0, "oom": False},
        ],
    }
    executor = {
        "schema": "toastcase-bench-executor-v1",
        "rows": [{"name": "fig5_chain", "speedup": 3.0}],
        "fused": {"loops": 2, "materialized": 2},
    }

    def write_dir(d, fig5, exe):
        with open(os.path.join(d, "fig5.json"), "w") as f:
            json.dump(fig5, f)
        with open(os.path.join(d, "BENCH_executor.json"), "w") as f:
            json.dump(exe, f)

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        old_d = os.path.join(tmp, "old")
        same_d = os.path.join(tmp, "same")
        slow_d = os.path.join(tmp, "slow")
        ratio_d = os.path.join(tmp, "ratio")
        for d in (old_d, same_d, slow_d, ratio_d):
            os.mkdir(d)
        write_dir(old_d, base, executor)
        write_dir(same_d, base, executor)

        slow = json.loads(json.dumps(base))
        slow["implementations"][0]["runtime_s"] *= 1.20  # 20% slower
        write_dir(slow_d, slow, executor)

        # The executor speedup band is widened for wall-clock jitter, so
        # the synthetic loss must model the real failure mode: the
        # compiled path degenerating to interpreter speed (speedup -> 1).
        lost = json.loads(json.dumps(executor))
        lost["rows"][0]["speedup"] = 1.0
        write_dir(ratio_d, base, lost)

        print("--- selftest: identical runs must pass")
        if run_compare(old_d, same_d, 0.10, "") != 0:
            failures.append("identical runs flagged as a regression")
        print("--- selftest: 20% runtime slowdown must fail")
        if run_compare(old_d, slow_d, 0.10, "") != 1:
            failures.append("20% slowdown not flagged")
        print("--- selftest: executor speedup collapse must fail")
        if run_compare(old_d, ratio_d, 0.10, "") != 1:
            failures.append("executor speedup collapse not flagged")
        print("--- selftest: missing baseline must pass (first run)")
        empty_d = os.path.join(tmp, "empty")
        os.mkdir(empty_d)
        if run_compare(empty_d, same_d, 0.10, "") != 0:
            failures.append("missing baseline treated as a failure")

    if failures:
        for msg in failures:
            print(f"selftest FAIL: {msg}")
        return 1
    print("selftest passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--old", help="baseline directory (cached from main)")
    ap.add_argument("--new", help="current run's benchmark directory")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative regression tolerance (default 0.10)")
    ap.add_argument("--report", default="",
                    help="write the delta report JSON here")
    ap.add_argument("--selftest", action="store_true",
                    help="verify the gate catches a synthetic regression")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.old or not args.new:
        ap.error("--old and --new are required (or use --selftest)")
    return run_compare(args.old, args.new, args.tolerance, args.report)


if __name__ == "__main__":
    sys.exit(main())
