#!/usr/bin/env sh
# Build, test, and regenerate every figure of the reproduction.
# Usage: scripts/run_all.sh [build-dir]
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && "$b"
done
