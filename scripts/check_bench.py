#!/usr/bin/env python3
"""Threshold-check the benchmark JSON output against the paper's findings.

CI runs the figure benchmarks in --json mode and feeds the files here; the
checks assert the *relative ordering* the paper reports (Demeure et al.,
SC-W 2023), not absolute seconds, so they are robust to model retuning but
fail if a code change flips a JAX-vs-OpenMP conclusion.

usage: check_bench.py --fig4 fig4.json --fig6 fig6.json [--fig5 fig5.json]
                      [--overlap overlap.json] [--faults faults.json]
                      [--plan plan.json] [--comm comm.json]
                      [--executor executor.json] [--async async.json]
                      [--resilience resilience.json] [--tune tune.json]
"""

import argparse
import json
import sys

FAILURES = []


def check(cond, msg):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {msg}")
    if not cond:
        FAILURES.append(msg)


def expect_schema(doc, want):
    got = doc.get("schema")
    if got != want:
        raise ValueError(f"schema is {got!r}, expected {want!r}")


def warn_unknown_keys(doc, known, path):
    """Warn (without failing) about top-level keys the checker does not
    understand: usually a renamed section, where silently ignoring it
    would turn every assertion on the old name into a vacuous pass."""
    for key in sorted(set(doc) - set(known) - {"schema", "benchmark"}):
        print(f"  [warn] {path}: unknown top-level key {key!r} "
              "(checker out of date?)")


def non_empty(seq, what):
    """Guard against vacuous passes: a checker iterating an empty list
    would report success without checking anything.  An empty section
    means the benchmark emitted a truncated file and must fail CI."""
    if not seq:
        raise ValueError(f"section {what!r} is empty (truncated output?)")
    return seq


def run_check(fn, path):
    """Run one file checker; a missing key, a malformed document or a
    failed structural assertion is a clear failure, not a traceback (a
    benchmark that wrote a malformed/truncated file must fail CI with a
    message that names the problem and the file)."""
    try:
        fn(path)
    except KeyError as e:
        print(f"check_bench.py: missing key {e.args[0]!r} in {path}")
        sys.exit(1)
    except (AssertionError, ValueError) as e:
        print(f"check_bench.py: malformed document {path}: {e}")
        sys.exit(1)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench.py: cannot read {path}: {e}")
        sys.exit(1)


def check_fig6(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-fig6-v1")
    print(f"fig6 ({path}):")
    warn_unknown_keys(doc, {"kernels", "mean_jax_over_omp"}, path)
    kernels = {k["name"]: k for k in non_empty(doc["kernels"], "kernels")}

    for name, k in kernels.items():
        check(
            k["cpu_s"] > k["jax_s"] > 0 and k["cpu_s"] > k["omp_s"] > 0,
            f"{name}: both GPU ports beat the CPU baseline",
        )

    # Paper §4.3: pixels_healpix strongly favours OpenMP target (branchy
    # kernel, 41x vs JAX 11x) while template_offset_project_signal favours
    # JAX (XLA's linear-algebra lowering, 45x vs 19x).
    ph = kernels["pixels_healpix"]
    check(ph["omp_s"] < ph["jax_s"], "pixels_healpix: omp faster than jax")
    op = kernels["template_offset_project_signal"]
    check(op["jax_s"] < op["omp_s"],
          "template_offset_project_signal: jax faster than omp")

    # Paper: OMP faster than JAX per kernel on average (~2.4x).
    check(doc["mean_jax_over_omp"] > 1.0,
          f"mean jax/omp ratio {doc['mean_jax_over_omp']:.2f} > 1")


def check_fig4(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-fig4-v1")
    print(f"fig4 ({path}):")
    warn_unknown_keys(doc, {"points"}, path)
    points = {p["procs"]: p for p in non_empty(doc["points"], "points")}

    # Paper §4.1 memory behaviour: JAX cannot run at 1 or 64 processes,
    # the OpenMP port fits at 1 but not 64, the CPU baseline always fits.
    check(points[1]["jax"]["oom"], "jax OOM at 1 process")
    check(points[64]["jax"]["oom"], "jax OOM at 64 processes")
    check(not points[1]["omp"]["oom"], "omp-target fits at 1 process")
    check(points[64]["omp"]["oom"], "omp-target OOM at 64 processes")
    check(all(not p["cpu"]["oom"] for p in points.values()),
          "cpu baseline never OOMs")

    # Where all three run: omp < jax < cpu.
    for procs, p in sorted(points.items()):
        if p["jax"]["oom"] or p["omp"]["oom"]:
            continue
        check(
            p["omp"]["runtime_s"] < p["jax"]["runtime_s"]
            < p["cpu"]["runtime_s"],
            f"@{procs} procs: omp < jax < cpu",
        )

    # CPU runtime falls monotonically with process count (serial work is
    # parallelized by adding processes).
    cpu_times = [p["cpu"]["runtime_s"] for _, p in sorted(points.items())]
    check(all(a > b for a, b in zip(cpu_times, cpu_times[1:])),
          "cpu runtime falls with process count")


def check_fig5(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-fig5-v1")
    print(f"fig5 ({path}):")
    warn_unknown_keys(doc, {"implementations"}, path)
    impls = {i["name"]: i
             for i in non_empty(doc["implementations"], "implementations")}

    check(not any(i["oom"] for i in impls.values()),
          "large problem fits for all implementations")
    # Paper §4.2: omp-target 2.58x > jax 2.28x > cpu; jax-on-CPU far slower.
    check(impls["omp"]["runtime_s"] < impls["jax"]["runtime_s"]
          < impls["cpu"]["runtime_s"], "omp < jax < cpu")
    check(impls["jax_cpu"]["runtime_s"] > impls["cpu"]["runtime_s"],
          "jax CPU backend slower than the threaded baseline")


def check_overlap(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-overlap-v1")
    print(f"overlap ({path}):")
    warn_unknown_keys(doc, {"points", "sync_runtime_s"}, path)
    points = {p["streams"]: p["runtime_s"]
              for p in non_empty(doc["points"], "points")}
    sync = doc["sync_runtime_s"]

    # One stream must reproduce the synchronous timeline exactly (the
    # scheduler's serial-equivalence guarantee).
    check(points[1] == sync,
          f"1 stream == synchronous timeline ({points[1]} vs {sync})")
    # More streams never hurt (overlap can only hide time, not add it).
    runtimes = [t for _, t in sorted(points.items())]
    check(all(a >= b for a, b in zip(runtimes, runtimes[1:])),
          "runtime non-increasing with stream count")
    # And >= 2 streams must actually overlap: strictly faster than serial.
    check(min(t for s, t in points.items() if s >= 2) < sync,
          "multi-stream pipeline strictly faster than serial")


def check_faults(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-faults-v1")
    print(f"faults ({path}):")
    warn_unknown_keys(doc, {"backends"}, path)
    backends = {b["name"]: b for b in non_empty(doc["backends"], "backends")}

    for name, b in sorted(backends.items()):
        # The contract of the fault layer: an empty plan changes nothing,
        # and a seeded plan is fully deterministic (identical runtimes AND
        # identical fault counters across two runs).
        check(b["zero_fault_identical"],
              f"{name}: empty fault plan bit-for-bit identical to no plan")
        check(b["chaos_deterministic"],
              f"{name}: same chaos seed twice yields identical results")
        check(b["chaos_runtime_s"] >= b["baseline_runtime_s"],
              f"{name}: chaos run never faster than the clean run")

    # Accelerated backends must survive persistent launch faults by
    # degrading kernels to their CPU implementations.
    for name in ("jax", "omp"):
        b = backends[name]
        check(b["fallback_completed"],
              f"{name}: persistent launch faults complete via CPU fallback")
        check(b["fallback_counters"].get("fault_fallbacks", 0) > 0,
              f"{name}: fallback counters recorded")
        check(len(b["degraded_kernels"]) > 0,
              f"{name}: degraded kernels listed")


def check_plan(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-plan-v1")
    print(f"plan ({path}):")
    warn_unknown_keys(doc, {"direct", "jobs"}, path)

    # The compilation contract: the default sync plan reproduces the
    # interpreter bit for bit — runtime, TimeLog and science products —
    # for both staging modes, both backends and under chaos plans.
    for row in non_empty(doc["direct"], "direct"):
        name = row["name"]
        check(row["runtime_equal"],
              f"{name}: plan runtime bitwise-equal to interpreter")
        check(row["timelog_equal"],
              f"{name}: plan TimeLog identical to interpreter")
        check(row["products_equal"],
              f"{name}: science products identical to interpreter")

    jobs = {j["name"]: j for j in non_empty(doc["jobs"], "jobs")}
    for name, j in sorted(jobs.items()):
        check(j["sync_equal"],
              f"{name} job: sync plan bitwise-equal to interpreter")
        # Prefetch overlaps next-operator uploads with compute: the planned
        # hybrid job must be strictly faster than the sync plan.
        check(j["prefetch_runtime_s"] < j["sync_runtime_s"],
              f"{name} job: prefetch strictly faster than sync plan")
        counters = j["plan_counters"]
        check(counters.get("plan_cache_hits", 0) > 0,
              f"{name} job: plan cache re-used across observations")
        check(counters.get("transfers_avoided", 0) > 0,
              f"{name} job: pipelined staging avoids transfers vs naive")
        check(counters.get("prefetched_uploads", 0) > 0,
              f"{name} job: uploads actually ran on the copy engine")
        check(counters.get("evictions", 0) > 0,
              f"{name} job: liveness eviction fired")
        check(counters.get("peak_mapped_bytes", 0) > 0,
              f"{name} job: peak mapped bytes recorded")


def check_comm(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-comm-v1")
    print(f"comm ({path}):")
    warn_unknown_keys(doc, {"points", "determinism"}, path)
    points = non_empty(doc["points"], "points")

    # The engine's oracle contract: ring allreduce on the uniform topology
    # reproduces the CommModel closed form bit for bit at EVERY grid point.
    check(all(p["ring_equals_formula"] for p in points),
          "engine ring allreduce bitwise-equal to the closed form")

    by_ranks = {}
    for p in points:
        by_ranks.setdefault(p["ranks"], []).append(p)
    for ranks, group in sorted(by_ranks.items()):
        group.sort(key=lambda p: p["bytes"])
        big = group[-1]
        # Bandwidth regime: reduce-scatter + all-gather sends the same
        # volume over fewer rounds, so it never loses to the ring.
        check(big["rsag_s"] <= big["ring_s"],
              f"@{ranks} ranks: rs+ag <= ring at {big['bytes']:.0f} bytes")
        # Latency regime: the log-round tree wins small messages once the
        # ring's 2(n-1) rounds dominate.
        if ranks >= 4:
            small = group[0]
            check(small["tree_s"] < small["ring_s"],
                  f"@{ranks} ranks: tree < ring at {small['bytes']:.0f} bytes")

    # Packed nodes share NICs: the cluster topology must cost more than
    # the uniform one at the largest (multi-node, bandwidth-bound) point.
    largest = max(points, key=lambda p: (p["ranks"], p["bytes"]))
    check(largest["cluster_rsag_s"] > largest["rsag_s"],
          f"@{largest['ranks']} ranks: shared NICs contend vs uniform")

    det = doc["determinism"]
    check(det["repeat_identical"],
          "repeated engine schedule bitwise identical")
    check(det["chaos_deterministic"],
          "pinned chaos plan twice yields identical makespan")
    check(det["chaos_slower"], "degraded links cost schedule time")


# The compiled executor must not just be correct — it must be worth its
# complexity.  The fig5 chain (the paper's headline workload) has to beat
# the interpreter by at least this factor on real wall clock.
EXECUTOR_MIN_SPEEDUP = 1.3


def check_executor(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-executor-v1")
    print(f"executor ({path}):")
    warn_unknown_keys(doc, {"rows", "chaos", "fused"}, path)
    rows = {r["name"]: r for r in non_empty(doc["rows"], "rows")}

    # The oracle contract: for every workload the compiled executor must
    # reproduce the interpreter bit for bit — science products, TimeLog
    # and the virtual-clock trajectory.
    for name, r in sorted(rows.items()):
        check(r["products_equal"],
              f"{name}: products bitwise-equal to the interpreter")
        check(r["timelog_equal"],
              f"{name}: TimeLog identical to the interpreter")
        check(r["vclock_equal"],
              f"{name}: virtual clock identical to the interpreter")
        check(r["compiled_wall_s"] > 0,
              f"{name}: compiled wall time recorded")

    if "fig5_chain" not in rows:
        raise ValueError("row 'fig5_chain' missing from rows")
    chain = rows["fig5_chain"]
    check(chain["speedup"] >= EXECUTOR_MIN_SPEEDUP,
          f"fig5 chain: compiled {chain['speedup']:.2f}x over interpreter "
          f">= {EXECUTOR_MIN_SPEEDUP}x floor")

    # Chaos parity: a pinned persistent-launch plan must hit both
    # executors identically — same failure, same fault counters, same
    # untouched products, same clock.
    chaos = doc["chaos"]
    check(chaos["both_failed"],
          "chaos: persistent launch fault raised under both executors")
    check(chaos["counters_equal"], "chaos: fault counters identical")
    check(chaos["products_equal"], "chaos: products untouched identically")
    check(chaos["vclock_equal"], "chaos: virtual clock identical")
    check(chaos["fault_events"] > 0, "chaos: fault events recorded")

    # The lowering must actually fuse: fewer loops than instructions and
    # fewer materialized values than instructions.
    fused = doc["fused"]
    check(0 < fused["loops"] < fused["instructions"],
          f"fused lowering compresses {fused['instructions']} instructions "
          f"into {fused['loops']} loops")
    check(0 < fused["materialized"] < fused["instructions"],
          f"only {fused['materialized']} of {fused['instructions']} values "
          "materialized")


# Pipelining the destriper's collectives behind the next matvec has to
# actually hide latency, not just reshuffle spans: the overlap solve must
# beat the staged solve by at least this factor.
ASYNC_MIN_OVERLAP = 1.1


def check_async(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-async-v1")
    print(f"async ({path}):")
    warn_unknown_keys(doc, {"plan", "pipeline_overlap", "solver", "chaos"},
                      path)

    # The task-graph oracle contract: the serial schedule of the lowered
    # graph reproduces staged plan replay bit for bit — virtual runtime,
    # TimeLog and science products — including under the launch-chaos
    # plan that forces a mid-run degrade onto the patch tasks.
    for row in non_empty(doc["plan"], "plan"):
        name = row["name"]
        check(row["runtime_equal"],
              f"{name}: task-graph runtime bitwise-equal to staged replay")
        check(row["timelog_equal"],
              f"{name}: task-graph TimeLog identical to staged replay")
        check(row["products_equal"],
              f"{name}: science products identical to staged replay")
        check(row["n_tasks"] > 0, f"{name}: tasks actually executed")
        check(0.0 < row["critical_path_s"] <= row["total_busy_s"],
              f"{name}: critical path within (0, busy] seconds")
        check(0.0 <= row["overlap_fraction"] < 1.0,
              f"{name}: overlap fraction in [0, 1)")
    chaos_rows = [r for r in doc["plan"] if "chaos" in r["name"]]
    check(bool(chaos_rows) and all(r["patched"] > 0 for r in chaos_rows),
          "chaos plan rows re-routed groups to their patch tasks")

    # Overlap-mode graph runs: post-hoc placement may only shorten the
    # virtual clock, and never at the cost of bitwise parity.
    for row in non_empty(doc["pipeline_overlap"], "pipeline_overlap"):
        name = row["name"]
        check(row["products_equal"],
              f"{name}: overlap graph run keeps products bitwise")
        check(row["timelog_equal"],
              f"{name}: overlap graph run keeps TimeLog identical")
        check(row["no_slower"],
              f"{name}: overlap run no slower than serial graph run")
        check(row["speedup"] > 0.0,
              f"{name}: overlap speedup {row['speedup']:.3f}x positive")

    solver = doc["solver"]
    check(solver["sync_equal"],
          "solver: serial engine bitwise-equal to staged collectives")
    check(solver["overlap_products_equal"],
          "solver: overlap mode leaves amplitudes/residuals bitwise")
    check(solver["overlap_speedup"] >= ASYNC_MIN_OVERLAP,
          f"solver: overlap {solver['overlap_speedup']:.2f}x over staged "
          f">= {ASYNC_MIN_OVERLAP}x floor")

    chaos = doc["chaos"]
    check(chaos["sync_equal"],
          "chaos: staged/sync bitwise-equal under pinned rank failures")
    check(chaos["checkpoint_restores"] > 0,
          "chaos: checkpoint restores actually fired")


def check_resilience(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-resilience-v1")
    print(f"resilience ({path}):")
    warn_unknown_keys(
        doc, {"identity", "breaker", "shrink", "job_shrink", "degraded"},
        path)

    # The pass-through contract from the fault PR, now owned by the
    # policy engine: an empty policy document must change nothing.
    ident = doc["identity"]
    check(ident["bitwise_equal"],
          "identity: empty policy bitwise-equal to no policy")

    breaker = doc["breaker"]
    check(breaker["deterministic"],
          "breaker: same-seed repeat bitwise identical")
    check(breaker["opens"] > 0, "breaker: tripped under sustained faults")
    check(breaker["half_opens"] > 0 and breaker["closes"] > 0,
          "breaker: recovered through half-open probes")
    check(breaker["fast_fails"] > 0,
          "breaker: open state actually shed load")

    shrink = doc["shrink"]
    check(shrink["deterministic"],
          "shrink: world-shrink decisions repeat bitwise")
    check(shrink["world_shrinks"] > 0,
          "shrink: exhausted restore budget dropped a rank")
    check(shrink["amplitudes_match"],
          "shrink: amplitudes equal to the no-fault solve")
    check(shrink["chaos_runtime_s"] > shrink["clean_runtime_s"],
          "shrink: recovery cost charged to the virtual clock")

    job = doc["job_shrink"]
    check(job["deterministic"],
          "job_shrink: same-seed repeat bitwise identical")
    check(job["final_ranks"] < job["total_ranks"],
          "job_shrink: world actually shrank")
    check(job["world_shrinks"] > 0 and job["redistributed_obs"] > 0,
          "job_shrink: dead rank's observations redistributed")

    deg = doc["degraded"]
    check(deg["escalations"] > 0,
          "degraded: ladder escalated under repeated faults")
    check(deg["amplitudes_match"],
          "degraded: degraded comm modes keep products bitwise")


def check_tune(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-tune-v1")
    print(f"tune ({path}):")
    warn_unknown_keys(doc, {"rows", "crossover", "determinism", "chaos"},
                      path)

    # The autotuner's contract: on every benchmarked shape the searched
    # schedule is never worse than the best hand-picked preset (the hand
    # presets all live inside the search space, and the tuner multi-starts
    # from any preset the greedy descent failed to dominate).
    for row in non_empty(doc["rows"], "rows"):
        name = row["name"]
        non_empty(row["hand"], f"{name}.hand")
        check(row["tuned_not_worse"],
              f"{name}: tuned never worse than hand-picked")
        check(row["tuned_runtime_s"] <= row["best_hand_runtime_s"],
              f"{name}: tuned {row['tuned_runtime_s']:.6g}s <= best hand "
              f"{row['best_hand_runtime_s']:.6g}s ({row['best_hand_name']})")
        check(row["tuned_evaluations"] > 0,
              f"{name}: tuner actually evaluated candidates")

    # The comm crossover (PR 5), rediscovered from the cost model alone:
    # on the fig5 cluster topology the micro-tuner must pick the binomial
    # tree in the latency regime (smallest message) and the ring
    # reduce-scatter + all-gather decomposition in the bandwidth regime
    # (largest message), with every choice the literal argmin of the
    # per-algorithm seconds it reports.
    points = non_empty(doc["crossover"]["points"], "crossover.points")
    for p in points:
        argmin = min(p["seconds"], key=p["seconds"].get)
        check(p["chosen"] == argmin,
              f"crossover @{p['bytes']:.0f}B: chosen {p['chosen']!r} is the "
              f"argmin")
    smallest = min(points, key=lambda p: p["bytes"])
    largest = max(points, key=lambda p: p["bytes"])
    check(smallest["chosen"] == "tree",
          f"crossover: tree wins the latency regime "
          f"({smallest['bytes']:.0f}B)")
    check(largest["chosen"] == "ring",
          f"crossover: rs+ag ring wins the bandwidth regime "
          f"({largest['bytes']:.0f}B)")
    check(smallest["chosen"] != largest["chosen"],
          "crossover: the winner actually crosses over")

    # Determinism: the same search twice must produce byte-identical
    # winners, and a pinned fault plan under the tuned schedule must not
    # break bitwise reproducibility.
    check(doc["determinism"]["repeat_identical"],
          "repeated tune run byte-identical")
    check(doc["chaos"]["bitwise_identical"],
          "pinned chaos plan under the tuned schedule bitwise identical")


def check_serve(path):
    with open(path) as f:
        doc = json.load(f)
    expect_schema(doc, "toastcase-bench-serve-v1")
    print(f"serve ({path}):")
    warn_unknown_keys(doc, {"points", "invariants"}, path)

    # The service contract, independent of offered load: the scheduler
    # never idles capacity a queued job could use, every admitted job
    # eventually finishes, and serving a job changes nothing about its
    # science — served results are bitwise-equal to standalone runs,
    # chaos stays inside the tenant that configured it, and a same-seed
    # repeat of the whole service day is byte-identical.
    inv = doc["invariants"]
    check(inv["work_conserving"],
          "invariants: scheduler is work-conserving")
    check(inv["no_starvation"],
          "invariants: every admitted job completed")
    check(inv["served_bitwise_standalone"],
          "invariants: served results bitwise-equal to standalone runs")
    check(inv["isolation_bitwise"],
          "invariants: tenant chaos isolated bitwise from co-tenants")
    check(inv["repeat_bitwise"],
          "invariants: same-seed service repeat byte-identical")

    for p in non_empty(doc["points"], "points"):
        load = p["offered_load"]
        check(0 <= p["completed"] <= p["admitted"] <= p["submitted"],
              f"load {load}: completed <= admitted <= submitted")
        check(p["makespan_s"] > 0.0, f"load {load}: makespan positive")
        check(p["throughput_jobs_per_s"] > 0.0,
              f"load {load}: throughput positive")
        check(0.0 <= p["queue_wait_p50_s"] <= p["queue_wait_p95_s"]
              <= p["queue_wait_p99_s"],
              f"load {load}: queue-wait percentiles ordered")
        check(0.0 <= p["utilization"] <= 1.0,
              f"load {load}: node occupancy in [0, 1]")
        check(p["work_conserving"], f"load {load}: pass work-conserving")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fig4")
    ap.add_argument("--fig5")
    ap.add_argument("--fig6")
    ap.add_argument("--overlap")
    ap.add_argument("--faults")
    ap.add_argument("--plan")
    ap.add_argument("--comm")
    ap.add_argument("--executor")
    ap.add_argument("--async", dest="async_path")
    ap.add_argument("--resilience")
    ap.add_argument("--tune")
    ap.add_argument("--serve")
    args = ap.parse_args()
    checks = [
        (check_fig4, args.fig4),
        (check_fig5, args.fig5),
        (check_fig6, args.fig6),
        (check_overlap, args.overlap),
        (check_faults, args.faults),
        (check_plan, args.plan),
        (check_comm, args.comm),
        (check_executor, args.executor),
        (check_async, args.async_path),
        (check_resilience, args.resilience),
        (check_tune, args.tune),
        (check_serve, args.serve),
    ]
    if not any(path for _, path in checks):
        ap.error(
            "pass at least one of "
            "--fig4/--fig5/--fig6/--overlap/--faults/--plan/--comm"
            "/--executor/--async/--resilience/--tune/--serve")

    for fn, path in checks:
        if path:
            run_check(fn, path)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed:")
        for msg in FAILURES:
            print(f"  - {msg}")
        return 1
    print("\nall benchmark ordering checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
