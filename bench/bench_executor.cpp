// Interpreter vs compiled fused-loop executor (schema
// toastcase-bench-executor-v1).
//
// The mini-XLA has two executors for the same Compiled module: the
// per-op interpreter (xla/eval.cpp) and the fused-loop executable
// (xla/compiled.cpp).  This benchmark drives the real JAX kernel ports
// through both, measuring actual wall-clock time of the value
// computation — the one place this repository measures host time rather
// than the virtual clock — and asserting the compiled executor's
// contract: bitwise-identical products, bitwise-identical TimeLog, and
// an identical virtual-time trajectory, including under a pinned
// persistent-launch fault plan.
//
//   fig4 rows:  scan_map alone across a sample-count sweep
//   fig5 row:   the full kernel chain (pointing -> pixels -> weights ->
//               scan -> noise -> accumulation -> template projection)
//   chaos row:  scan_map under a probability-1 launch fault; both
//               executors must fail identically (same exception, same
//               fault counters, untouched host products)
//
// scripts/check_bench.py --executor gates CI on products/TimeLog parity
// and a minimum compiled-over-interpreter speedup on the fig5 chain.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/context.hpp"
#include "fault/fault.hpp"
#include "kernels/jax.hpp"
#include "xla/compiled.hpp"

namespace core = toast::core;
namespace jax = toast::kernels::jax;
namespace xla = toast::xla;
using core::Backend;
using core::Interval;

namespace {

constexpr double kPi = 3.14159265358979323846;

// --- workload ---------------------------------------------------------------

/// Synthetic observation slice: inputs plus every buffer the kernel
/// chain mutates.  Copy-constructed per executor mode so both modes see
/// identical starting state.
struct Workload {
  std::int64_t n_det = 4;
  std::int64_t n_samp = 0;
  std::int64_t nnz = 3;
  std::int64_t nside = 64;
  std::int64_t step_length = 256;
  std::vector<Interval> intervals;

  std::vector<double> fp_quats;
  std::vector<double> boresight;
  std::vector<std::uint8_t> flags;
  std::vector<double> hwp;
  std::vector<double> pol_eff;
  std::vector<double> sky_map;
  std::vector<double> det_scale;
  std::vector<double> det_weights;

  // Mutated by the chain (the products compared across modes).
  std::vector<double> quats;
  std::vector<std::int64_t> pixels;
  std::vector<double> weights;
  std::vector<double> signal;
  std::vector<double> zmap;
  std::vector<double> amplitudes;

  std::int64_t n_pix() const { return 12 * nside * nside; }
  std::int64_t n_amp_det() const {
    return (n_samp + step_length - 1) / step_length;
  }

  explicit Workload(std::int64_t samples) : n_samp(samples) {
    // Realistic interval structure: ~1000-sample scans with gaps.
    for (std::int64_t start = 0; start < n_samp;) {
      const std::int64_t stop = std::min(start + 997, n_samp);
      intervals.push_back({start, stop});
      start = stop + 31;
    }

    std::mt19937 gen(20230923);
    std::normal_distribution<double> nd(0.0, 1.0);
    std::uniform_real_distribution<double> ud(0.0, 1.0);
    auto unit_quat = [&](double* q) {
      double n2 = 0.0;
      for (int c = 0; c < 4; ++c) {
        q[c] = nd(gen);
        n2 += q[c] * q[c];
      }
      const double inv = 1.0 / std::sqrt(n2);
      for (int c = 0; c < 4; ++c) {
        q[c] *= inv;
      }
    };

    fp_quats.resize(static_cast<std::size_t>(4 * n_det));
    for (std::int64_t d = 0; d < n_det; ++d) {
      unit_quat(&fp_quats[static_cast<std::size_t>(4 * d)]);
    }
    boresight.resize(static_cast<std::size_t>(4 * n_samp));
    for (std::int64_t s = 0; s < n_samp; ++s) {
      unit_quat(&boresight[static_cast<std::size_t>(4 * s)]);
    }
    flags.assign(static_cast<std::size_t>(n_samp), 0);
    for (std::int64_t s = 0; s < n_samp; s += 17) {
      flags[static_cast<std::size_t>(s)] = 1;
    }
    hwp.resize(static_cast<std::size_t>(n_samp));
    for (auto& v : hwp) {
      v = 2.0 * kPi * ud(gen);
    }
    pol_eff.assign(static_cast<std::size_t>(n_det), 1.0);
    pol_eff[0] = 0.95;
    sky_map.resize(static_cast<std::size_t>(n_pix() * nnz));
    for (auto& v : sky_map) {
      v = nd(gen);
    }
    det_scale.assign(static_cast<std::size_t>(n_det), 1.0);
    det_weights.assign(static_cast<std::size_t>(n_det), 1.0);
    for (std::int64_t d = 0; d < n_det; ++d) {
      det_scale[static_cast<std::size_t>(d)] =
          1.0 + 0.01 * static_cast<double>(d);
      det_weights[static_cast<std::size_t>(d)] =
          1.0 / (1.0 + 0.1 * static_cast<double>(d));
    }

    quats.assign(static_cast<std::size_t>(4 * n_det * n_samp), 0.0);
    // Realistic pointing products so the standalone fig4 rows exercise
    // the gather/scatter paths (the chain row overwrites these anyway).
    // Every 31st pixel is flagged (-1), as in the unit-test fixtures.
    pixels.resize(static_cast<std::size_t>(n_det * n_samp));
    std::uniform_int_distribution<std::int64_t> pd(0, n_pix() - 1);
    for (std::size_t i = 0; i < pixels.size(); ++i) {
      pixels[i] = (i % 31 == 0) ? -1 : pd(gen);
    }
    weights.resize(static_cast<std::size_t>(nnz * n_det * n_samp));
    for (auto& v : weights) {
      v = nd(gen);
    }
    signal.resize(static_cast<std::size_t>(n_det * n_samp));
    for (auto& v : signal) {
      v = nd(gen);
    }
    zmap.assign(static_cast<std::size_t>(n_pix() * nnz), 0.0);
    amplitudes.assign(static_cast<std::size_t>(n_det * n_amp_det()), 0.0);
  }
};

core::ExecContext make_ctx(Backend b, const toast::fault::FaultPlan& plan) {
  core::ExecConfig cfg;
  cfg.backend = b;
  cfg.fault_plan = plan;
  return core::ExecContext(cfg);
}

void run_scan_map(Workload& w, core::ExecContext& ctx) {
  jax::scan_map(w.sky_map.data(), w.n_pix(), w.nnz, w.pixels.data(),
                w.weights.data(), 1.0, w.intervals, w.n_det, w.n_samp,
                w.signal.data(), ctx);
}

void run_chain(Workload& w, core::ExecContext& ctx) {
  jax::pointing_detector(w.fp_quats.data(), w.boresight.data(),
                         w.flags.data(), 1, w.intervals, w.n_det, w.n_samp,
                         w.quats.data(), ctx);
  jax::pixels_healpix(w.quats.data(), w.flags.data(), 1, w.nside,
                      /*nest=*/true, w.intervals, w.n_det, w.n_samp,
                      w.pixels.data(), ctx);
  jax::stokes_weights_iqu(w.quats.data(), w.hwp.data(), w.pol_eff.data(),
                          w.intervals, w.n_det, w.n_samp, w.weights.data(),
                          ctx);
  run_scan_map(w, ctx);
  jax::noise_weight(w.det_weights.data(), w.intervals, w.n_det, w.n_samp,
                    w.signal.data(), ctx);
  jax::build_noise_weighted(w.pixels.data(), w.weights.data(), w.n_pix(),
                            w.nnz, w.signal.data(), w.det_scale.data(),
                            w.flags.data(), 1, w.intervals, w.n_det,
                            w.n_samp, w.zmap.data(), ctx);
  jax::template_offset_project_signal(w.step_length, w.signal.data(),
                                      w.intervals, w.n_det, w.n_samp,
                                      w.amplitudes.data(), w.n_amp_det(),
                                      ctx);
  jax::template_offset_add_to_signal(w.step_length, w.amplitudes.data(),
                                     w.n_amp_det(), w.intervals, w.n_det,
                                     w.n_samp, w.signal.data(), ctx);
}

// --- measurement ------------------------------------------------------------

bool logs_equal(const toast::accel::TimeLog& a,
                const toast::accel::TimeLog& b) {
  const auto ca = a.categories();
  if (ca != b.categories()) {
    return false;
  }
  for (const auto& c : ca) {
    if (a.seconds(c) != b.seconds(c) || a.calls(c) != b.calls(c)) {
      return false;
    }
  }
  return true;
}

template <typename T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

bool products_equal(const Workload& a, const Workload& b) {
  return bits_equal(a.quats, b.quats) && bits_equal(a.pixels, b.pixels) &&
         bits_equal(a.weights, b.weights) &&
         bits_equal(a.signal, b.signal) && bits_equal(a.zmap, b.zmap) &&
         bits_equal(a.amplitudes, b.amplitudes);
}

struct ModeRun {
  Workload workload;
  double wall_s = 0.0;       // timed repetitions only (JIT warm)
  double virtual_s = 0.0;    // ctx.elapsed() after all calls
  toast::accel::TimeLog log;

  ModeRun(const Workload& w, Backend backend, int reps,
          void (*body)(Workload&, core::ExecContext&))
      : workload(w) {
    // Cold caches per mode: both executors pay the same compile charge,
    // so their virtual timelines are comparable end to end.
    jax::clear_jit_caches();
    auto ctx = make_ctx(backend, {});
    body(workload, ctx);  // warm: trace + compile (+ fused lowering)
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      body(workload, ctx);
    }
    const auto t1 = std::chrono::steady_clock::now();
    wall_s = std::chrono::duration<double>(t1 - t0).count();
    virtual_s = ctx.elapsed();
    log = ctx.log();
  }
};

struct Row {
  std::string name;
  std::int64_t n_samp = 0;
  int reps = 0;
  double interpreted_wall_s = 0.0;
  double compiled_wall_s = 0.0;
  double speedup = 0.0;
  bool products_equal = false;
  bool timelog_equal = false;
  bool vclock_equal = false;
};

Row measure(const std::string& name, std::int64_t n_samp, int reps,
            void (*body)(Workload&, core::ExecContext&)) {
  const Workload base(n_samp);
  const ModeRun interp(base, Backend::kJax, reps, body);
  const ModeRun compiled(base, Backend::kJaxCompiled, reps, body);
  Row row;
  row.name = name;
  row.n_samp = n_samp;
  row.reps = reps;
  row.interpreted_wall_s = interp.wall_s;
  row.compiled_wall_s = compiled.wall_s;
  row.speedup = compiled.wall_s > 0.0 ? interp.wall_s / compiled.wall_s : 0.0;
  row.products_equal = products_equal(interp.workload, compiled.workload);
  row.timelog_equal = logs_equal(interp.log, compiled.log);
  row.vclock_equal = interp.virtual_s == compiled.virtual_s;
  std::printf("%-24s %10.4f s %10.4f s %7.2fx  %s %s %s\n", name.c_str(),
              row.interpreted_wall_s, row.compiled_wall_s, row.speedup,
              row.products_equal ? "products=OK" : "products=DIFF",
              row.timelog_equal ? "timelog=OK" : "timelog=DIFF",
              row.vclock_equal ? "vclock=OK" : "vclock=DIFF");
  return row;
}

// --- chaos parity -----------------------------------------------------------

struct ChaosResult {
  std::string plan;
  bool both_failed = false;
  bool counters_equal = false;
  bool products_equal = false;
  bool vclock_equal = false;
  double fault_events = 0.0;
};

ChaosResult run_chaos(const toast::fault::FaultPlan& plan,
                      const std::string& plan_name) {
  struct Outcome {
    Workload workload{4096};
    bool failed = false;
    std::map<std::string, double> counters;
    double virtual_s = 0.0;
  };
  const auto run = [&](Backend backend) {
    Outcome o;
    jax::clear_jit_caches();
    auto ctx = make_ctx(backend, plan);
    try {
      run_scan_map(o.workload, ctx);
    } catch (const toast::fault::PersistentFaultError&) {
      o.failed = true;
    }
    o.counters = ctx.faults().counters();
    o.virtual_s = ctx.elapsed();
    return o;
  };
  const Outcome interp = run(Backend::kJax);
  const Outcome compiled = run(Backend::kJaxCompiled);
  ChaosResult r;
  r.plan = plan_name;
  r.both_failed = interp.failed && compiled.failed;
  r.counters_equal = interp.counters == compiled.counters;
  r.products_equal = products_equal(interp.workload, compiled.workload);
  r.vclock_equal = interp.virtual_s == compiled.virtual_s;
  for (const auto& kv : interp.counters) {
    r.fault_events += kv.second;
  }
  std::printf(
      "chaos(%s): failed=%s/%s counters=%s products=%s vclock=%s\n",
      plan_name.c_str(), interp.failed ? "yes" : "no",
      compiled.failed ? "yes" : "no", r.counters_equal ? "OK" : "DIFF",
      r.products_equal ? "OK" : "DIFF", r.vclock_equal ? "OK" : "DIFF");
  return r;
}

// --- fused-lowering statistics ----------------------------------------------

struct FusedStats {
  long loops = 0;
  long steps = 0;
  long materialized = 0;
  long instructions = 0;
};

/// Lowering statistics of a representative module (a scan_map-shaped
/// gather/multiply/mask/scatter graph): how far the fused executable
/// compresses the instruction stream.
FusedStats representative_fused_stats() {
  xla::Jit fn("bench_executor_repr", [](const std::vector<xla::Array>& in) {
    using namespace xla;
    const Array pix = gather(in[0], in[1]);
    const Array ok = ge(pix, constant_i64(0));
    const Array safe = maximum(pix, constant_i64(0));
    Array value = constant(0.0);
    for (int k = 0; k < 3; ++k) {
      const Array idx =
          add(mul(safe, constant_i64(3)), constant_i64(k));
      value = value + gather(in[2], idx) * gather(in[3], idx);
    }
    const Array upd = gather(in[4], in[1]) + value;
    return std::vector<Array>{
        scatter_set(in[4], select(ok, in[1], constant_i64(-1)), upd)};
  });
  toast::accel::SimDevice device;
  toast::accel::VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  xla::Runtime rt(device, clock, tracer);

  const std::int64_t n = 512;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    idx[static_cast<std::size_t>(i)] = (i * 7) % n;
  }
  std::vector<double> table(static_cast<std::size_t>(3 * n), 1.5);
  std::vector<xla::Literal> args;
  args.push_back(
      xla::Literal::from_i64(xla::Shape{n}, idx));  // pix table
  args.push_back(xla::Literal::from_i64(xla::Shape{n}, idx));
  args.push_back(xla::Literal::from_f64(xla::Shape{3 * n}, table));
  args.push_back(xla::Literal::from_f64(xla::Shape{3 * n}, table));
  args.push_back(xla::Literal::from_f64(
      xla::Shape{n}, std::vector<double>(static_cast<std::size_t>(n), 0.0)));
  fn.call(rt, args);
  const xla::Compiled* compiled = fn.lookup(args);
  if (compiled == nullptr) {
    throw std::logic_error("bench_executor: representative module missing");
  }
  xla::execute_compiled(*compiled, args);
  FusedStats s;
  s.loops = static_cast<long>(compiled->fused->loop_count());
  s.steps = static_cast<long>(compiled->fused->step_count());
  s.materialized = static_cast<long>(compiled->fused->materialized_count());
  s.instructions = static_cast<long>(compiled->module.size());
  return s;
}

// --- output -----------------------------------------------------------------

void write_json(const std::string& path, const std::vector<Row>& rows,
                const ChaosResult& chaos, const FusedStats& fused) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-executor-v1");
  w.kv("benchmark", "bench_executor");
  w.arr_open("rows");
  for (const auto& r : rows) {
    w.obj_open();
    w.kv("name", r.name);
    w.kv("n_samp", static_cast<long>(r.n_samp));
    w.kv("reps", r.reps);
    w.kv("interpreted_wall_s", r.interpreted_wall_s);
    w.kv("compiled_wall_s", r.compiled_wall_s);
    w.kv("speedup", r.speedup);
    w.kv("products_equal", r.products_equal);
    w.kv("timelog_equal", r.timelog_equal);
    w.kv("vclock_equal", r.vclock_equal);
    w.obj_close();
  }
  w.arr_close();
  w.obj_open("chaos");
  w.kv("plan", chaos.plan);
  w.kv("both_failed", chaos.both_failed);
  w.kv("counters_equal", chaos.counters_equal);
  w.kv("products_equal", chaos.products_equal);
  w.kv("vclock_equal", chaos.vclock_equal);
  w.kv("fault_events", chaos.fault_events);
  w.obj_close();
  w.obj_open("fused");
  w.kv("loops", fused.loops);
  w.kv("steps", fused.steps);
  w.kv("materialized", fused.materialized);
  w.kv("instructions", fused.instructions);
  w.obj_close();
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Executor: interpreter vs compiled fused loops (real wall clock)");
  std::printf("%-24s %12s %12s %8s\n", "workload", "interpreted",
              "compiled", "speedup");

  std::vector<Row> rows;
  // fig4-style size sweep on the scatter-heavy kernel alone.
  for (const std::int64_t n : {4096, 16384, 65536}) {
    rows.push_back(measure("fig4_scan_map_" + std::to_string(n), n, 4,
                           &run_scan_map));
  }
  // fig5: the full chain, the workload the paper's headline numbers use.
  rows.push_back(measure("fig5_chain", 16384, 2, &run_chain));

  // Chaos parity: the pinned plan (or --faults) must hit both executors
  // identically.
  toast::fault::FaultPlan plan;
  std::string plan_name = "builtin_launch_persistent";
  if (!opt.faults_path.empty()) {
    plan = toast::fault::FaultPlan::load_file(opt.faults_path);
    plan_name = opt.faults_path;
  } else {
    plan.seed = 7;
    toast::fault::FaultRule rule;
    rule.kind = toast::fault::FaultKind::kLaunch;
    rule.probability = 1.0;
    plan.rules.push_back(rule);
  }
  const ChaosResult chaos = run_chaos(plan, plan_name);

  const FusedStats fused = representative_fused_stats();
  std::printf(
      "fused lowering: %ld instructions -> %ld loops, %ld steps, "
      "%ld materialized\n",
      fused.instructions, fused.loops, fused.steps, fused.materialized);

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, rows, chaos, fused);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
