// Extension (paper §5 future work): "it would be interesting to do a
// systematic study quantifying the performance on various targets."
//
// The device model makes this a parameter sweep: we re-run the medium
// benchmark against specification sheets for several accelerator
// generations and report the end-to-end speedups of both ports.

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using namespace toast;
using core::Backend;

namespace {

struct Target {
  const char* name;
  accel::DeviceSpec spec;
  double device_memory_note;  // GB, for the table
};

accel::DeviceSpec make_spec(double fp64, double hbm, double mem_gb,
                            double launch) {
  accel::DeviceSpec s;
  s.fp64_flops = fp64;
  s.hbm_bandwidth = hbm;
  s.memory_bytes = mem_gb * 1e9;
  s.launch_latency = launch;
  return s;
}

}  // namespace

int main() {
  toast::bench::print_header(
      "Extension: the benchmark across accelerator targets (medium, 16 "
      "procs)");

  // Published FP64 / memory-bandwidth figures per part.
  const Target targets[] = {
      {"V100-32GB (2017)", make_spec(7.0e12, 0.9e12, 32, 5e-6), 32},
      {"A100-40GB (2020)", make_spec(9.7e12, 1.555e12, 40, 4e-6), 40},
      {"H100-SXM (2022)", make_spec(34.0e12, 3.35e12, 80, 4e-6), 80},
      {"MI250X half (2021)", make_spec(24.0e12, 1.6e12, 64, 6e-6), 64},
  };

  const auto problem = bench_model::medium_problem();
  mpisim::JobConfig cpu_cfg{problem, Backend::kCpu};
  const auto cpu = mpisim::run_benchmark_job(cpu_cfg);

  std::printf("cpu baseline: %s\n\n", toast::bench::fmt_seconds(cpu.runtime).c_str());
  std::printf("%-20s | %12s %8s | %12s %8s\n", "target", "jax", "x cpu",
              "omp-target", "x cpu");
  std::printf("----------------------------------------------------------------"
              "---\n");
  for (const auto& t : targets) {
    mpisim::JobConfig jax_cfg{problem, Backend::kJax};
    mpisim::JobConfig omp_cfg{problem, Backend::kOmpTarget};
    // Device spec is threaded through the job's exec context.
    auto run = [&](mpisim::JobConfig cfg) {
      cfg.device_spec = t.spec;
      return mpisim::run_benchmark_job(cfg);
    };
    const auto jax = run(jax_cfg);
    const auto omp = run(omp_cfg);
    auto cell = [](const mpisim::JobResult& r) {
      return r.oom ? std::string("OOM") : toast::bench::fmt_seconds(r.runtime);
    };
    std::printf("%-20s | %12s %7.2fx | %12s %7.2fx\n", t.name,
                cell(jax).c_str(), jax.oom ? 0.0 : cpu.runtime / jax.runtime,
                cell(omp).c_str(), omp.oom ? 0.0 : cpu.runtime / omp.runtime);
  }
  std::printf(
      "\nThe end-to-end speedups are bounded by Amdahl's law (serial +\n"
      "unported kernels), so a 3.5x-faster accelerator buys only a modest\n"
      "end-to-end gain - the paper's motivation for porting more kernels.\n");
  return 0;
}
