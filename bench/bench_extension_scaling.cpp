// Extension: weak scaling across nodes.  The paper ran 1 node (medium)
// and 8 nodes (large, 10x the samples); this sweep holds the per-node
// load fixed at the medium problem and grows the node count, exercising
// the collective-cost model (the final map allreduce grows with rank
// count while per-rank work stays constant).

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using namespace toast;
using core::Backend;

int main() {
  toast::bench::print_header(
      "Extension: weak scaling, medium problem per node, 16 procs/node");

  std::printf("%6s %7s | %12s | %12s %8s | %12s %8s | %10s\n", "nodes",
              "ranks", "cpu", "jax", "x cpu", "omp", "x cpu", "allreduce");
  std::printf("-----------------------------------------------------------------"
              "--------------------\n");
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    auto problem = bench_model::medium_problem();
    problem.nodes = nodes;
    problem.paper_total_samples = 5.0e9 * nodes;  // weak scaling

    const auto cpu = mpisim::run_benchmark_job({problem, Backend::kCpu});
    const auto jax = mpisim::run_benchmark_job({problem, Backend::kJax});
    const auto omp =
        mpisim::run_benchmark_job({problem, Backend::kOmpTarget});
    std::printf("%6d %7d | %12s | %12s %7.2fx | %12s %7.2fx | %9.4fs\n",
                nodes, problem.total_procs(),
                toast::bench::fmt_seconds(cpu.runtime).c_str(),
                toast::bench::fmt_seconds(jax.runtime).c_str(),
                cpu.runtime / jax.runtime,
                toast::bench::fmt_seconds(omp.runtime).c_str(),
                cpu.runtime / omp.runtime, omp.comm_seconds);
  }
  std::printf(
      "\nWeak scaling is nearly flat: per-rank work is constant and the\n"
      "map-domain allreduce stays far below the compute time even at 1024\n"
      "ranks - consistent with the paper seeing similar speedups at 1 and\n"
      "8 nodes (2.4-2.9x medium vs 2.28-2.58x large).\n");
  return 0;
}
