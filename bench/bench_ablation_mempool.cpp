// Ablation (paper §3.1.3 / §4.1): memory-pool behaviour.
//   - JAX preallocation: on by default, the paper disables it when
//     oversubscribing GPUs (several processes cannot each claim 75% of
//     device memory).
//   - The OpenMP port's hand-written pool: allocation cost amortizes to
//     zero once the free lists warm up.

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"
#include "omptarget/pool.hpp"

using namespace toast;

int main() {
  toast::bench::print_header("Ablation: device memory pools");

  // JAX preallocation vs process count.
  std::printf("jax preallocation (medium problem):\n");
  std::printf("%6s %6s | %12s | %12s\n", "procs", "p/gpu", "prealloc off",
              "prealloc on");
  for (const int procs : {4, 8, 16}) {
    auto problem = bench_model::medium_problem();
    problem.procs_per_node = procs;
    mpisim::JobConfig off{problem, core::Backend::kJax};
    off.schedule.device.jax_preallocate = false;
    mpisim::JobConfig on{problem, core::Backend::kJax};
    on.schedule.device.jax_preallocate = true;
    const auto a = mpisim::run_benchmark_job(off);
    const auto b = mpisim::run_benchmark_job(on);
    auto cell = [](const mpisim::JobResult& r) {
      return r.oom ? std::string("OOM") : toast::bench::fmt_seconds(r.runtime);
    };
    std::printf("%6d %6d | %12s | %12s\n", procs, (procs + 3) / 4,
                cell(a).c_str(), cell(b).c_str());
  }
  std::printf(
      "paper: disabling preallocation is the recommended practice when\n"
      "       oversubscribing a device (%d processes cannot each claim 75%%\n"
      "       of one GPU's memory).\n\n",
      4);

  // OpenMP pool warm-up.
  std::printf("omp-target pool amortization:\n");
  accel::SimDevice device;
  omptarget::DevicePool pool(device);
  double cold_cost = 0.0;
  double warm_cost = 0.0;
  for (int round = 0; round < 4; ++round) {
    std::vector<omptarget::DevicePtr> held;
    for (int i = 0; i < 64; ++i) {
      double c = 0.0;
      held.push_back(pool.allocate(1 << (10 + i % 8), c));
      (round == 0 ? cold_cost : warm_cost) += c;
    }
    for (const auto& ptr : held) {
      pool.release(ptr);
    }
  }
  std::printf("  first round alloc cost : %s (raw omp_target_alloc calls)\n",
              toast::bench::fmt_seconds(cold_cost).c_str());
  std::printf("  warm rounds alloc cost : %s total over 3 rounds\n",
              toast::bench::fmt_seconds(warm_cost).c_str());
  std::printf("  pool hits %llu, misses %llu, high-water %.1f MB\n",
              static_cast<unsigned long long>(pool.hits()),
              static_cast<unsigned long long>(pool.misses()),
              static_cast<double>(pool.high_water_bytes()) / 1.0e6);
  std::printf(
      "paper: the port ended up implementing a memory pool manually for\n"
      "       OpenMP target offload; JAX's pool gave the same benefit out\n"
      "       of the box at the price of less control (§4.1).\n");
  return 0;
}
