// Ablation (paper §3.1.3, footnote 8): interval handling in the OpenMP-
// target port - the guard-cut pattern (iterations past the true interval
// end return immediately) vs the padded-dummy-work pattern first tested
// in JAX (out-of-interval lanes do throwaway work).  The paper found "no
// significant performance difference between both patterns".

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/context.hpp"

using namespace toast;

int main() {
  toast::bench::print_header(
      "Ablation: guard-cut vs padded-dummy-work interval handling "
      "(OpenMP target)");

  // A realistic interval population: jittered lengths, ~15% padding waste.
  std::vector<core::Interval> intervals;
  std::int64_t start = 0;
  for (int i = 0; i < 32; ++i) {
    const std::int64_t len = 800 + 37 * ((i * 13) % 11) - 120 * (i % 3);
    intervals.push_back({start, start + len});
    start += len + 20;
  }
  const std::int64_t n_samp = start;
  (void)n_samp;
  const std::int64_t n_det = 16;
  std::int64_t max_len = 0;
  for (const auto& v : intervals) max_len = std::max(max_len, v.length());

  std::printf("%-28s %14s %14s %10s\n", "kernel shape", "guard-cut",
              "dummy-work", "ratio");
  std::printf("---------------------------------------------------------------"
              "-----\n");

  for (const auto& [label, flops, bytes] :
       {std::tuple{"light (noise_weight-like)", 1.0, 16.0},
        std::tuple{"medium (scan_map-like)", 8.0, 64.0},
        std::tuple{"heavy (stokes-like)", 112.0, 64.0}}) {
    core::ExecConfig cfg;
    cfg.backend = core::Backend::kOmpTarget;
    cfg.work_scale = 1.0e4;
    core::ExecContext guard_ctx(cfg);
    core::ExecContext dummy_ctx(cfg);

    // Guard-cut: out-of-interval iterations cost only the test.
    ::toast::omptarget::IterCost guard;
    guard.flops = flops;
    guard.bytes_read = bytes;
    guard.guard_flops = 2.0;
    guard_ctx.omp().target_for_collapse3(
        "kernel", n_det, static_cast<std::int64_t>(intervals.size()),
        max_len, guard, [&](std::int64_t, std::int64_t v, std::int64_t i) {
          return intervals[static_cast<std::size_t>(v)].start + i <
                 intervals[static_cast<std::size_t>(v)].stop;
        });

    // Dummy-work: every lane executes the full body; results of padded
    // lanes are discarded by a masked store.
    ::toast::omptarget::IterCost dummy;
    dummy.flops = flops + 1.0;  // plus the mask select
    dummy.bytes_read = bytes;
    dummy_ctx.omp().target_for_collapse3(
        "kernel", n_det, static_cast<std::int64_t>(intervals.size()),
        max_len, dummy,
        [&](std::int64_t, std::int64_t, std::int64_t) { return true; });

    const double tg = guard_ctx.log().seconds("kernel");
    const double td = dummy_ctx.log().seconds("kernel");
    std::printf("%-28s %13.3fms %13.3fms %9.2fx\n", label, tg * 1e3, td * 1e3,
                td / tg);
  }

  std::printf(
      "\npaper: later tests showed no significant performance difference\n"
      "       between the two patterns (footnote 8) - the padding waste is\n"
      "       bounded by the interval-length jitter (~15-30%% here), and\n"
      "       the kernels are memory-bound enough to hide part of it.\n");
  return 0;
}
