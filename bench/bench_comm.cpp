// Collective-communication sweep: the step-scheduled comm engine vs the
// closed-form CommModel across ranks x message size x algorithm.
//
// The engine's ring allreduce on the uniform topology must reproduce the
// closed form BIT FOR BIT (the model is the engine's test oracle) — the
// JSON carries a `ring_equals_formula` flag per point and
// scripts/check_bench.py --comm fails the build if any point disagrees.
// The sweep also exercises the algorithm trade-offs the engine models:
// recursive halving beats the ring on bandwidth, the binomial tree wins
// at small messages, and packed cluster topologies contend on shared
// NICs.
//
// --json <path>: machine-readable results (schema toastcase-bench-comm-v1).
// --trace <path>: Chrome trace of one engine ring allreduce (per-rank NIC
//   lanes; `toast-trace comm` summarizes lane occupancy).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "bench_util.hpp"
#include "comm/engine.hpp"
#include "fault/fault.hpp"
#include "mpisim/comm.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace comm = toast::comm;
namespace fault = toast::fault;
using comm::Algorithm;
using comm::Engine;
using comm::Topology;

namespace {

struct Point {
  int ranks = 0;
  double bytes = 0.0;
  double formula_s = 0.0;       // CommModel closed form
  double ring_s = 0.0;          // engine, uniform topology
  double rsag_s = 0.0;          // reduce-scatter + all-gather
  double tree_s = 0.0;          // binomial tree
  double cluster_rsag_s = 0.0;  // rs+ag on the packed cluster topology
  bool ring_equals_formula = false;
};

struct Determinism {
  bool repeat_identical = false;   // same schedule twice, bitwise
  bool chaos_deterministic = false;  // pinned fault plan twice, bitwise
  bool chaos_slower = false;       // degraded links cost time
};

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan;
  plan.seed = 2718;
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kLinkDegrade;
  rule.site = "link";
  rule.probability = 0.3;
  rule.factor = 3.0;
  plan.rules = {rule};
  return plan;
}

Determinism run_determinism() {
  Determinism d;
  const Engine engine(Topology::uniform(16));
  const auto dag = comm::ring_allreduce(16, 1.0e6);
  const auto a = engine.schedule(dag);
  const auto b = engine.schedule(dag);
  d.repeat_identical =
      a.makespan == b.makespan && a.start == b.start && a.end == b.end;

  // Pinned chaos plan: degraded links slow the collective, and the same
  // seed reproduces the exact same schedule.
  const auto run_chaos = [&]() {
    toast::accel::VirtualClock clock;
    toast::obs::Tracer tracer(&clock);
    fault::FaultInjector inj(chaos_plan(), &clock, &tracer);
    comm::RunOptions opt;
    opt.faults = &inj;
    return engine.schedule(dag, opt).makespan;
  };
  const double chaos_a = run_chaos();
  const double chaos_b = run_chaos();
  d.chaos_deterministic = chaos_a == chaos_b;
  d.chaos_slower = chaos_a > a.makespan;
  return d;
}

void write_json(const std::string& path, const std::vector<Point>& points,
                const Determinism& det) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-comm-v1");
  w.kv("benchmark", "comm");
  w.arr_open("points");
  for (const auto& p : points) {
    w.obj_open();
    w.kv("ranks", p.ranks);
    w.kv("bytes", p.bytes);
    w.kv("formula_s", p.formula_s);
    w.kv("ring_s", p.ring_s);
    w.kv("rsag_s", p.rsag_s);
    w.kv("tree_s", p.tree_s);
    w.kv("cluster_rsag_s", p.cluster_rsag_s);
    w.kv("ring_equals_formula", p.ring_equals_formula);
    w.obj_close();
  }
  w.arr_close();
  w.obj_open("determinism");
  w.kv("repeat_identical", det.repeat_identical);
  w.kv("chaos_deterministic", det.chaos_deterministic);
  w.kv("chaos_slower", det.chaos_slower);
  w.obj_close();
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Collective engine sweep: ranks x size x algorithm vs closed form");

  const toast::mpisim::CommModel model;  // default slingshot network
  const std::vector<int> rank_grid = {2, 4, 8, 16, 32, 64, 128};
  const std::vector<double> byte_grid = {8.0e3, 1.0e6, 75497472.0};

  std::vector<Point> points;
  std::printf("%6s %12s %12s %12s %12s %12s %12s %8s\n", "ranks", "bytes",
              "formula", "ring", "rs+ag", "tree", "cluster", "ring==");
  for (const int ranks : rank_grid) {
    const Engine uniform(Topology::uniform(ranks));
    const Engine cluster(
        Topology::cluster(ranks, std::min(ranks, 16)));
    for (const double bytes : byte_grid) {
      Point p;
      p.ranks = ranks;
      p.bytes = bytes;
      p.formula_s = model.allreduce_seconds(bytes, ranks);
      p.ring_s = uniform.allreduce_seconds(bytes, Algorithm::kRing);
      p.rsag_s = uniform.allreduce_seconds(bytes, Algorithm::kRecursive);
      p.tree_s = uniform.allreduce_seconds(bytes, Algorithm::kTree);
      p.cluster_rsag_s =
          cluster.allreduce_seconds(bytes, Algorithm::kRecursive);
      p.ring_equals_formula = p.ring_s == p.formula_s;
      std::printf("%6d %12.0f %12.4g %12.4g %12.4g %12.4g %12.4g %8s\n",
                  p.ranks, p.bytes, p.formula_s, p.ring_s, p.rsag_s,
                  p.tree_s, p.cluster_rsag_s,
                  p.ring_equals_formula ? "yes" : "NO");
      points.push_back(p);
    }
  }

  const Determinism det = run_determinism();
  std::printf(
      "\ndeterminism: repeat %s, pinned chaos %s (%s than clean)\n",
      det.repeat_identical ? "identical" : "DIVERGED",
      det.chaos_deterministic ? "identical" : "DIVERGED",
      det.chaos_slower ? "slower" : "NOT slower");

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, points, det);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    // One traced ring allreduce: every chunk transfer lands on its
    // source/destination NIC lanes.
    toast::accel::VirtualClock clock;
    toast::obs::Tracer tracer(&clock);
    const Engine engine(Topology::uniform(16));
    comm::RunOptions topt;
    topt.tracer = &tracer;
    engine.schedule(comm::ring_allreduce(16, 1.0e6), topt);
    toast::obs::write_chrome_trace_file(tracer.spans(), opt.trace_path,
                                        "bench_comm");
    std::printf("wrote %s\n", opt.trace_path.c_str());
  }
  return 0;
}
