// Ablation (paper §3.1.2): NVIDIA MPS on/off for the OpenMP-target port.
// Without MPS the CUDA driver context-switches between processes sharing
// a GPU, "effectively capping performance to one process per device".

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using namespace toast;
using core::Backend;

int main() {
  toast::bench::print_header(
      "Ablation: MPS on/off, OpenMP-target port (medium, 1 node)");

  std::printf("%6s %6s | %14s | %14s | %14s\n", "procs", "p/gpu", "mps on",
              "mps off", "off/on");
  std::printf("----------------------------------------------------------------\n");
  for (const int procs : {4, 8, 16, 32}) {
    auto problem = bench_model::medium_problem();
    problem.procs_per_node = procs;
    mpisim::JobConfig on{problem, Backend::kOmpTarget};
    on.schedule.device.mps = true;
    mpisim::JobConfig off{problem, Backend::kOmpTarget};
    off.schedule.device.mps = false;
    const auto a = mpisim::run_benchmark_job(on);
    const auto b = mpisim::run_benchmark_job(off);
    std::printf("%6d %6d | %14s | %14s | %11.2fx\n", procs,
                (procs + 3) / 4, toast::bench::fmt_seconds(a.runtime).c_str(),
                toast::bench::fmt_seconds(b.runtime).c_str(),
                b.runtime / a.runtime);
  }
  std::printf(
      "\npaper: without MPS the CUDA driver context-switches between\n"
      "       processes, capping performance at ~1 process per device;\n"
      "       MPS is required for oversubscription (§3.1.2).  JAX was not\n"
      "       affected (NCCL-based sharing, §3.1.3).\n");
  return 0;
}
