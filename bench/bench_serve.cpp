// Multi-tenant job-service benchmark: open-loop load generator over the
// shared simulated fleet, plus the service's contract invariants:
//
//   1. work conservation: no scheduling pass ever leaves a fitting,
//      quota-eligible job queued,
//   2. no starvation: every admitted job completes,
//   3. isolation: a job's JobResult served under multi-tenant load is
//      bitwise identical to the same config run standalone, and one
//      tenant's chaos plan does not move a single bit of another
//      tenant's results,
//   4. determinism: the same spec run twice produces byte-identical
//      "toastcase-serve-result-v1" documents.
//
// Default mode sweeps offered load (open-loop exponential arrivals, a
// deterministic splitmix64 stream — no std:: distributions, so the
// numbers are portable) and reports throughput, p50/p95/p99 queue wait
// and makespan per point.
//
// --spec <path>:   run a pinned toastcase-serve-v1 scenario instead.
// --result <path>: dump the run's toastcase-serve-result-v1 document
//                  (CI double-runs this and byte-compares with cmp).
// --json <path>:   machine-readable results (toastcase-bench-serve-v1;
//                  scripts/check_bench.py --serve asserts invariants).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "serve/service.hpp"

using toast::fault::FaultKind;
using toast::fault::FaultPlan;
using toast::fault::FaultRule;
using toast::serve::JobSpec;
using toast::serve::SchedPolicy;
using toast::serve::ServedJob;
using toast::serve::Service;
using toast::serve::ServiceReport;
using toast::serve::ServiceSpec;
using toast::serve::TenantSpec;

namespace {

// splitmix64: tiny, seedable, and identical on every platform.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) *
         (1.0 / 9007199254740992.0);
}

/// Exponential inter-arrival with the given mean (open-loop Poisson).
double exponential(std::uint64_t& state, double mean) {
  return -mean * std::log(1.0 - uniform01(state));
}

FaultPlan alpha_chaos() {
  FaultPlan plan;
  plan.seed = 20230923;
  plan.rules = {
      FaultRule{FaultKind::kTransfer, "", 0.05},
      FaultRule{FaultKind::kLaunch, "", 0.05},
      FaultRule{FaultKind::kStraggler, "", 0.10, -1, 3.0},
      FaultRule{FaultKind::kRankFailure, "", 0.35, 2},
  };
  return plan;
}

/// The open-loop sweep scenario: two clean tenants (shares 1 and 2),
/// jobs alternating backends, exponential arrivals at the offered load.
ServiceSpec sweep_scenario(double load, double base_s, int n_jobs) {
  ServiceSpec spec;
  spec.policy = SchedPolicy::kFairShare;
  spec.fleet.nodes = 2;
  spec.fleet.gpus_per_node = 4;
  TenantSpec alpha;
  alpha.name = "alpha";
  alpha.share = 1.0;
  alpha.max_running = 3;
  TenantSpec beta;
  beta.name = "beta";
  beta.share = 2.0;
  beta.max_running = 3;
  spec.tenants = {alpha, beta};

  const char* backends[] = {"omp-target", "jax", "cpu", "omp-target"};
  std::uint64_t rng = 2023;
  double t = 0.0;
  const double mean_gap = base_s / load;
  for (int i = 0; i < n_jobs; ++i) {
    JobSpec j;
    j.name = "job" + std::to_string(i);
    j.tenant = i % 2 == 0 ? "alpha" : "beta";
    j.workload = "tiny";
    if (i % 4 == 0) {
      // Exclusive (MPS off) jobs take their node's GPUs alone; these
      // are what makes the queue actually form under load.
      toast::config::ScheduleConfig s;
      s.backend = "omp-target";
      s.device.mps = false;
      j.schedule = s;
      j.has_schedule = true;
    } else {
      j.backend = backends[i % 4];
    }
    j.submit_s = t;
    spec.jobs.push_back(j);
    t += exponential(rng, mean_gap);
  }
  return spec;
}

/// The isolation scenario: tenant alpha runs under heavy chaos, tenant
/// beta is clean; used for invariants 3 and 4 (with_chaos=false strips
/// alpha's plan to show beta's bits do not move).
ServiceSpec chaos_scenario(bool with_chaos) {
  ServiceSpec spec;
  spec.policy = SchedPolicy::kFairShare;
  spec.fleet.nodes = 2;
  spec.fleet.gpus_per_node = 4;
  TenantSpec alpha;
  alpha.name = "alpha";
  alpha.share = 1.0;
  if (with_chaos) {
    alpha.faults = alpha_chaos();
  }
  TenantSpec beta;
  beta.name = "beta";
  beta.share = 2.0;
  spec.tenants = {alpha, beta};

  const char* backends[] = {"omp-target", "jax", "cpu"};
  for (int i = 0; i < 6; ++i) {
    JobSpec j;
    j.name = "job" + std::to_string(i);
    j.tenant = i % 2 == 0 ? "alpha" : "beta";
    j.workload = "tiny";
    j.backend = backends[i % 3];
    j.submit_s = 0.4 * i;
    spec.jobs.push_back(j);
  }
  return spec;
}

std::string result_string(const ServiceReport& report) {
  std::ostringstream ss;
  toast::serve::write_result_json(ss, report);
  return ss.str();
}

bool no_starvation(const ServiceReport& r) {
  return r.completed == r.admitted;
}

/// Invariant 3a: every completed job's stored result is bitwise what a
/// fresh standalone run of its resolved config produces.
bool served_matches_standalone(const ServiceReport& r) {
  for (const ServedJob& j : r.jobs) {
    if (!j.completed) {
      continue;
    }
    const toast::mpisim::JobResult fresh =
        toast::mpisim::run_benchmark_job(j.config);
    if (!toast::serve::results_bitwise_equal(j.result, fresh)) {
      return false;
    }
  }
  return true;
}

struct Point {
  double offered_load = 0.0;
  ServiceReport report;
};

void write_json(const std::string& path, const std::vector<Point>& points,
                bool work_conserving, bool starvation_free,
                bool served_bitwise, bool isolation_bitwise,
                bool repeat_bitwise) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-serve-v1");
  w.kv("benchmark", "serve");
  w.arr_open("points");
  for (const Point& p : points) {
    const ServiceReport& r = p.report;
    w.obj_open();
    w.kv("offered_load", p.offered_load);
    w.kv("submitted", r.submitted);
    w.kv("admitted", r.admitted);
    w.kv("rejected", r.rejected);
    w.kv("completed", r.completed);
    w.kv("makespan_s", r.makespan_s);
    w.kv("throughput_jobs_per_s",
         r.makespan_s > 0.0 ? r.completed / r.makespan_s : 0.0);
    w.kv("queue_wait_p50_s", toast::serve::queue_wait_percentile(r, 50));
    w.kv("queue_wait_p95_s", toast::serve::queue_wait_percentile(r, 95));
    w.kv("queue_wait_p99_s", toast::serve::queue_wait_percentile(r, 99));
    w.kv("utilization", r.utilization);
    w.kv("work_conserving", r.work_conserving);
    w.obj_close();
  }
  w.arr_close();
  w.obj_open("invariants");
  w.kv("work_conserving", work_conserving);
  w.kv("no_starvation", starvation_free);
  w.kv("served_bitwise_standalone", served_bitwise);
  w.kv("isolation_bitwise", isolation_bitwise);
  w.kv("repeat_bitwise", repeat_bitwise);
  w.obj_close();
  w.obj_close();
  out << "\n";
}

void print_points(const std::vector<Point>& points) {
  std::printf("%8s %6s %6s %6s %10s %10s %10s %10s %6s\n", "load", "subm",
              "compl", "rej", "makespan", "p50 wait", "p99 wait", "thruput",
              "util");
  std::printf("--------------------------------------------------------------"
              "-------------\n");
  for (const Point& p : points) {
    const ServiceReport& r = p.report;
    std::printf("%8.2f %6d %6d %6d %10s %10s %10s %8.2f/s %5.0f%%\n",
                p.offered_load, r.submitted, r.completed, r.rejected,
                toast::bench::fmt_seconds(r.makespan_s).c_str(),
                toast::bench::fmt_seconds(
                    toast::serve::queue_wait_percentile(r, 50))
                    .c_str(),
                toast::bench::fmt_seconds(
                    toast::serve::queue_wait_percentile(r, 99))
                    .c_str(),
                r.makespan_s > 0.0 ? r.completed / r.makespan_s : 0.0,
                100.0 * r.utilization);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string result_path;
  const auto opt = toast::bench::parse_options(
      argc, argv,
      {{"--spec", &spec_path}, {"--result", &result_path}});
  toast::bench::print_header(
      "Multi-tenant job service: load sweep and isolation invariants");

  std::vector<Point> points;
  bool work_conserving = true;
  bool starvation_free = true;
  bool served_bitwise = true;
  bool isolation_bitwise = true;
  bool repeat_bitwise = true;

  if (!spec_path.empty()) {
    // Pinned-scenario mode: run the spec twice; the second run checks
    // byte-identical output, CI additionally cmp's --result dumps from
    // two separate processes.
    const ServiceSpec spec = ServiceSpec::load_file(spec_path);
    ServiceReport a = Service(spec).run();
    const ServiceReport b = Service(spec).run();
    work_conserving = a.work_conserving;
    starvation_free = no_starvation(a);
    served_bitwise = served_matches_standalone(a);
    repeat_bitwise = result_string(a) == result_string(b);
    if (!result_path.empty()) {
      std::ofstream out(result_path);
      if (!out) {
        throw std::runtime_error("cannot open " + result_path);
      }
      toast::serve::write_result_json(out, a);
      std::printf("wrote %s\n", result_path.c_str());
    }
    Point p;
    p.offered_load = 0.0;
    p.report = std::move(a);
    points.push_back(std::move(p));
    print_points(points);
  } else {
    // Calibrate the arrival process on one standalone tiny job, then
    // sweep offered load.
    ServiceSpec probe = sweep_scenario(1.0, 1.0, 1);
    const double base_s = Service(probe).run().jobs[0].service_s;
    std::printf("base tiny job: %s\n",
                toast::bench::fmt_seconds(base_s).c_str());
    for (const double load : {0.5, 1.0, 2.0, 4.0}) {
      Point p;
      p.offered_load = load;
      p.report = Service(sweep_scenario(load, base_s, 16)).run();
      work_conserving = work_conserving && p.report.work_conserving;
      starvation_free = starvation_free && no_starvation(p.report);
      points.push_back(std::move(p));
    }
    print_points(points);

    // Invariants 3 and 4 on the chaos scenario.
    const ServiceSpec chaos = chaos_scenario(true);
    const ServiceReport chaos_a = Service(chaos).run();
    const ServiceReport chaos_b = Service(chaos).run();
    const ServiceReport clean = Service(chaos_scenario(false)).run();
    work_conserving = work_conserving && chaos_a.work_conserving;
    starvation_free = starvation_free && no_starvation(chaos_a);
    served_bitwise = served_matches_standalone(chaos_a);
    repeat_bitwise = result_string(chaos_a) == result_string(chaos_b);
    bool alpha_perturbed = false;
    for (std::size_t i = 0; i < chaos_a.jobs.size(); ++i) {
      const ServedJob& with = chaos_a.jobs[i];
      const ServedJob& without = clean.jobs[i];
      if (with.tenant == "beta") {
        // Beta's bits must not move when alpha runs chaos.
        isolation_bitwise =
            isolation_bitwise &&
            toast::serve::results_bitwise_equal(with.result, without.result);
      } else if (!with.result.fault_counters.empty()) {
        alpha_perturbed = true;
      }
    }
    isolation_bitwise = isolation_bitwise && alpha_perturbed;
    std::printf("\nisolation: beta bitwise %s under alpha chaos "
                "(alpha counters %s)\n",
                isolation_bitwise ? "stable" : "PERTURBED",
                alpha_perturbed ? "non-empty" : "EMPTY");
  }

  std::printf("invariants: work-conserving %s, no-starvation %s, "
              "served==standalone %s, isolation %s, repeat %s\n",
              work_conserving ? "ok" : "FAIL",
              starvation_free ? "ok" : "FAIL", served_bitwise ? "ok" : "FAIL",
              isolation_bitwise ? "ok" : "FAIL",
              repeat_bitwise ? "ok" : "FAIL");

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, points, work_conserving, starvation_free,
               served_bitwise, isolation_bitwise, repeat_bitwise);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }

  if (!work_conserving || !starvation_free || !served_bitwise ||
      !isolation_bitwise || !repeat_bitwise) {
    std::fprintf(stderr, "bench_serve: invariant violated\n");
    return 1;
  }
  return 0;
}
