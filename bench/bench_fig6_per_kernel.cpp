// Figure 6: total runtime per kernel (medium problem, 16 processes,
// 4 threads/process), for the CPU baseline and both GPU ports, plus the
// accel_data_* data-movement categories.
//
// Paper findings: per-kernel speedups range 1.5x-45x (JAX) and 5x-61x
// (OpenMP target); stokes_weights_IQU is OMP's best (61x vs JAX 18x);
// pixels_healpix strongly favours OMP (41x vs 11x, branches); offset_
// project_signal strongly favours JAX (45x vs 19x, XLA's linear-algebra
// lowering); data movement barely registers, with JAX cheaper on
// update_device and reset.
//
// --json <path>: machine-readable results (schema
// toastcase-bench-fig6-v1); per-kernel totals are exactly the TimeLog
// figures printed by the table.  --trace <path>: Chrome trace of each
// backend's modelled rank (path suffixed per backend).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bench_model/problem.hpp"
#include "core/context.hpp"
#include "kernels/jax.hpp"
#include "obs/export.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

using namespace toast;

namespace {

struct BackendRun {
  accel::TimeLog log;
  std::vector<obs::Span> spans;
};

BackendRun run_backend(core::Backend backend) {
  const auto p = bench_model::medium_problem();  // 16 procs default
  core::ExecConfig ec;
  ec.backend = backend;
  ec.threads = p.threads_per_proc();
  ec.socket_active_threads = p.cores_per_node;
  // Kernel wall times as the paper's timers saw them: 4 processes share
  // each GPU through MPS.
  ec.sharing = core::is_accel(backend) ? accel::Sharing::kMps
                                       : accel::Sharing::kExclusive;
  ec.procs_per_gpu = p.procs_per_node / p.gpus_per_node;
  ec.work_scale = p.sample_scale();
  ec.map_scale = (512.0 / static_cast<double>(p.nside)) *
                 (512.0 / static_cast<double>(p.nside));
  core::ExecContext ctx(ec);
  kernels::jax::clear_jit_caches();

  const auto fp = sim::hex_focalplane(p.actual_n_detectors, 37.0);
  core::Data data;
  for (int ob = 0; ob < p.observations_per_proc; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = static_cast<double>(p.actual_n_samples) / 37.0 / 6.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, p.actual_n_samples, scan,
        91 + static_cast<std::uint64_t>(ob)));
  }
  sim::WorkflowConfig wf;
  wf.nside = p.nside;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);
  return BackendRun{ctx.log(), ctx.tracer().spans()};
}

const std::vector<std::string> kKernels = {
    "pointing_detector",
    "pixels_healpix",
    "stokes_weights_IQU",
    "scan_map",
    "noise_weight",
    "build_noise_weighted",
    "template_offset_add_to_signal",
    "template_offset_project_signal",
};

const std::vector<std::string> kDataMovement = {
    "accel_data_update_device", "accel_data_update_host", "accel_data_reset",
    "accel_data_create", "jit_compile"};

void write_json(const std::string& path, double procs,
                const accel::TimeLog& cpu, const accel::TimeLog& jax,
                const accel::TimeLog& omp, double mean_ratio) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-fig6-v1");
  w.kv("benchmark", "fig6_per_kernel");
  w.kv("procs", procs);
  w.arr_open("kernels");
  for (const auto& k : kKernels) {
    w.obj_open();
    w.kv("name", k);
    w.kv("cpu_s", cpu.seconds(k) * procs);
    w.kv("jax_s", jax.seconds(k) * procs);
    w.kv("omp_s", omp.seconds(k) * procs);
    w.kv("jax_calls", jax.calls(k));
    w.kv("omp_calls", omp.calls(k));
    w.obj_close();
  }
  w.arr_close();
  w.arr_open("data_movement");
  for (const auto& k : kDataMovement) {
    w.obj_open();
    w.kv("name", k);
    w.kv("jax_s", jax.seconds(k) * procs);
    w.kv("omp_s", omp.seconds(k) * procs);
    w.obj_close();
  }
  w.arr_close();
  w.kv("mean_jax_over_omp", mean_ratio);
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Figure 6: per-kernel total runtime (medium, 16 procs, 4 threads)");

  const auto cpu = run_backend(core::Backend::kCpu);
  const auto jax = run_backend(core::Backend::kJax);
  const auto omp = run_backend(core::Backend::kOmpTarget);

  const double procs = 16.0;  // totals across the job

  std::printf("%-34s %10s %10s %8s %10s %8s\n", "kernel", "cpu", "jax",
              "x cpu", "omp", "x cpu");
  std::printf("-------------------------------------------------------------"
              "----------------------\n");
  for (const auto& k : kKernels) {
    const double tc = cpu.log.seconds(k) * procs;
    const double tj = jax.log.seconds(k) * procs;
    const double to = omp.log.seconds(k) * procs;
    std::printf("%-34s %9.2fs %9.2fs %7.1fx %9.2fs %7.1fx\n", k.c_str(), tc,
                tj, tj > 0 ? tc / tj : 0.0, to, to > 0 ? tc / to : 0.0);
  }
  std::printf("\ndata movement (accel_data_*):\n");
  for (const auto& k : kDataMovement) {
    std::printf("%-34s %10s %9.2fs %8s %9.2fs\n", k.c_str(), "-",
                jax.log.seconds(k) * procs, "", omp.log.seconds(k) * procs);
  }

  // Average GPU-port advantage across kernels (paper: OMP ~2.4x faster
  // than JAX on average per kernel).
  double ratio = 0.0;
  int n = 0;
  for (const auto& k : kKernels) {
    if (omp.log.seconds(k) > 0.0 && jax.log.seconds(k) > 0.0) {
      ratio += jax.log.seconds(k) / omp.log.seconds(k);
      ++n;
    }
  }
  const double mean_ratio = n > 0 ? ratio / n : 0.0;
  std::printf("\nmean jax/omp per-kernel time ratio: %.2fx (paper ~2.4x)\n",
              mean_ratio);
  std::printf(
      "paper: jax 1.5x (offset_add) to 45x (offset_project); omp 5x to 61x\n"
      "       (stokes_IQU); pixels_healpix omp 41x vs jax 11x;\n"
      "       offset_project jax 45x vs omp 19x.\n");

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, procs, cpu.log, jax.log, omp.log, mean_ratio);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    const std::pair<const char*, const BackendRun*> runs[] = {
        {"cpu", &cpu}, {"jax", &jax}, {"omp", &omp}};
    for (const auto& [tag, run] : runs) {
      const std::string path =
          toast::bench::suffixed_path(opt.trace_path, tag);
      obs::write_chrome_trace_file(run->spans, path,
                                   std::string("fig6-") + tag);
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}
