// Figure 6: total runtime per kernel (medium problem, 16 processes,
// 4 threads/process), for the CPU baseline and both GPU ports, plus the
// accel_data_* data-movement categories.
//
// Paper findings: per-kernel speedups range 1.5x-45x (JAX) and 5x-61x
// (OpenMP target); stokes_weights_IQU is OMP's best (61x vs JAX 18x);
// pixels_healpix strongly favours OMP (41x vs 11x, branches); offset_
// project_signal strongly favours JAX (45x vs 19x, XLA's linear-algebra
// lowering); data movement barely registers, with JAX cheaper on
// update_device and reset.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bench_model/problem.hpp"
#include "core/context.hpp"
#include "kernels/jax.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

using namespace toast;

namespace {

accel::TimeLog run_backend(core::Backend backend) {
  const auto p = bench_model::medium_problem();  // 16 procs default
  core::ExecConfig ec;
  ec.backend = backend;
  ec.threads = p.threads_per_proc();
  ec.socket_active_threads = p.cores_per_node;
  // Kernel wall times as the paper's timers saw them: 4 processes share
  // each GPU through MPS.
  ec.sharing = core::is_accel(backend) ? accel::Sharing::kMps
                                       : accel::Sharing::kExclusive;
  ec.procs_per_gpu = p.procs_per_node / p.gpus_per_node;
  ec.work_scale = p.sample_scale();
  ec.map_scale = (512.0 / static_cast<double>(p.nside)) *
                 (512.0 / static_cast<double>(p.nside));
  core::ExecContext ctx(ec);
  kernels::jax::clear_jit_caches();

  const auto fp = sim::hex_focalplane(p.actual_n_detectors, 37.0);
  core::Data data;
  for (int ob = 0; ob < p.observations_per_proc; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = static_cast<double>(p.actual_n_samples) / 37.0 / 6.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, p.actual_n_samples, scan,
        91 + static_cast<std::uint64_t>(ob)));
  }
  sim::WorkflowConfig wf;
  wf.nside = p.nside;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);
  return ctx.log();
}

}  // namespace

int main() {
  toast::bench::print_header(
      "Figure 6: per-kernel total runtime (medium, 16 procs, 4 threads)");

  const auto cpu = run_backend(core::Backend::kCpu);
  const auto jax = run_backend(core::Backend::kJax);
  const auto omp = run_backend(core::Backend::kOmpTarget);

  const double procs = 16.0;  // totals across the job
  const std::vector<std::string> kernels = {
      "pointing_detector",
      "pixels_healpix",
      "stokes_weights_IQU",
      "scan_map",
      "noise_weight",
      "build_noise_weighted",
      "template_offset_add_to_signal",
      "template_offset_project_signal",
  };

  std::printf("%-34s %10s %10s %8s %10s %8s\n", "kernel", "cpu", "jax",
              "x cpu", "omp", "x cpu");
  std::printf("-------------------------------------------------------------"
              "----------------------\n");
  for (const auto& k : kernels) {
    const double tc = cpu.seconds(k) * procs;
    const double tj = jax.seconds(k) * procs;
    const double to = omp.seconds(k) * procs;
    std::printf("%-34s %9.2fs %9.2fs %7.1fx %9.2fs %7.1fx\n", k.c_str(), tc,
                tj, tj > 0 ? tc / tj : 0.0, to, to > 0 ? tc / to : 0.0);
  }
  std::printf("\ndata movement (accel_data_*):\n");
  for (const auto& k :
       {"accel_data_update_device", "accel_data_update_host",
        "accel_data_reset", "accel_data_create", "jit_compile"}) {
    std::printf("%-34s %10s %9.2fs %8s %9.2fs\n", k, "-",
                jax.seconds(k) * procs, "", omp.seconds(k) * procs);
  }

  // Average GPU-port advantage across kernels (paper: OMP ~2.4x faster
  // than JAX on average per kernel).
  double ratio = 0.0;
  int n = 0;
  for (const auto& k : kernels) {
    if (omp.seconds(k) > 0.0 && jax.seconds(k) > 0.0) {
      ratio += jax.seconds(k) / omp.seconds(k);
      ++n;
    }
  }
  std::printf("\nmean jax/omp per-kernel time ratio: %.2fx (paper ~2.4x)\n",
              ratio / n);
  std::printf(
      "paper: jax 1.5x (offset_add) to 45x (offset_project); omp 5x to 61x\n"
      "       (stokes_IQU); pixels_healpix omp 41x vs jax 11x;\n"
      "       offset_project jax 45x vs omp 19x.\n");
  return 0;
}
