// Figure 3: lines of code per kernel for the three implementations,
// measured over this repository's sources.
//
// Paper finding: for every kernel the OpenMP-target port is the longest
// (duplicated host/target loops plus pragmas and data clauses) and the
// JAX port is the shortest or close to the CPU baseline.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_util.hpp"
#include "tools/loc.hpp"

using namespace toast;

int main() {
  toast::bench::print_header("Figure 3: lines of code per kernel");

  const std::string root = std::string(TOASTCASE_SOURCE_DIR) + "/";
  const auto kernels = tools::kernel_source_manifest();

  const auto graphs = tools::jax_graph_manifest();
  std::printf("%-24s %6s %10s %10s %10s %18s\n", "kernel", "cpu",
              "omptarget", "jax-file", "jax-graph", "omp/cpu graph/cpu");
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
  int total_cpu = 0, total_omp = 0, total_jax = 0, total_graph = 0;
  for (const auto& [kernel, impls] : kernels) {
    int cpu = 0, omp = 0, jax = 0, graph = 0;
    for (const auto& f : impls.at("cpu")) cpu += tools::count_file(root + f).code;
    for (const auto& f : impls.at("omptarget")) omp += tools::count_file(root + f).code;
    for (const auto& f : impls.at("jax")) jax += tools::count_file(root + f).code;
    const auto git = graphs.find(kernel);
    if (git != graphs.end()) {
      std::ifstream in(root + git->second.first);
      std::stringstream buf;
      buf << in.rdbuf();
      for (const auto& fn : git->second.second) {
        graph += tools::count_function(buf.str(), fn).code;
      }
    }
    total_cpu += cpu;
    total_omp += omp;
    total_jax += jax;
    total_graph += graph;
    std::printf("%-24s %6d %10d %10d %10d %9.2fx %8.2fx\n", kernel.c_str(),
                cpu, omp, jax, graph, static_cast<double>(omp) / cpu,
                static_cast<double>(graph) / cpu);
  }
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
  std::printf("%-24s %6d %10d %10d %10d %9.2fx %8.2fx\n", "total", total_cpu,
              total_omp, total_jax, total_graph,
              static_cast<double>(total_omp) / total_cpu,
              static_cast<double>(total_graph) / total_cpu);
  std::printf(
      "\npaper: omp-target ~1.8x the cpu lines on average; jax ~0.8x.\n"
      "note : 'jax-graph' counts the array-program functions (the analogue\n"
      "       of the paper's Python kernels); the full C++ files carry\n"
      "       marshalling boilerplate Python does not need.\n");
  return 0;
}
