// Async task-graph runtime bench (schema toastcase-bench-async-v1).
//
// Three sections:
//   - "plan": the benchmark workflow run twice per case — once through
//     staged plan replay (Pipeline::exec) and once through the task-graph
//     runtime (async::run_plan_async, serial mode) — including under a
//     deterministic launch-chaos plan that forces a mid-run degrade.  The
//     serial task schedule must reproduce staged replay bit for bit:
//     identical virtual runtime, TimeLog and science products.  Each row
//     also reports the lowered graph's structure (task counts, critical
//     path over the data deps, achievable overlap fraction).
//   - "pipeline_overlap": the same pipeline driven through the engine's
//     overlap mode — products and TimeLog must stay bitwise equal to
//     the serial graph run while the placed makespan may only shrink.
//   - "solver": the distributed destriper CG in its three comm modes.
//     kSync (serial engine) must be bitwise equal to kStaged; kOverlap
//     must keep the products bitwise and beat kStaged by the pipelining
//     floor (scripts/check_bench.py --async asserts >= 1.1x), hiding the
//     collectives behind the next matvec.
//   - "chaos": staged-vs-sync parity again under a pinned rank-failure
//     plan that exercises checkpoint restore + in-flight task re-enqueue.
//
// --dump-tasks <path> writes the lowered task graph of one observation as
// toastcase-tasks-v1 JSON (`toast-trace tasks` reads it).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "async/lower.hpp"
#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "kernels/jax.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"
#include "solver/destriper.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
namespace async = toast::async;
using core::Backend;
using toast::solver::AsyncComm;
using toast::solver::Destriper;
using toast::solver::DestriperConfig;

namespace {

core::Data make_data(int n_obs = 2) {
  const auto fp = sim::hex_focalplane(4, 37.0);
  core::Data data;
  for (int ob = 0; ob < n_obs; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = 1024.0 / 37.0 / 4.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, 1024, scan,
        7 + static_cast<std::uint64_t>(ob)));
  }
  return data;
}

double field_sum(const core::Data& data, const char* name) {
  double sum = 0.0;
  for (const auto& ob : data.observations) {
    const auto span = ob.field(name).f64();
    for (const double v : span) {
      sum += v;
    }
  }
  return sum;
}

bool logs_equal(const toast::accel::TimeLog& a,
                const toast::accel::TimeLog& b) {
  const auto ca = a.categories();
  if (ca != b.categories()) {
    return false;
  }
  for (const auto& c : ca) {
    if (a.seconds(c) != b.seconds(c) || a.calls(c) != b.calls(c)) {
      return false;
    }
  }
  return true;
}

// --- plan replay vs task graph ---------------------------------------------

struct DirectResult {
  double runtime = 0.0;
  toast::accel::TimeLog log;
  double signal_sum = 0.0;
  double zmap_sum = 0.0;
  async::GraphReport report;  // task-graph runs only
};

DirectResult run_direct(Backend backend, core::Pipeline::Staging staging,
                        const toast::fault::FaultPlan& fplan,
                        bool task_graph,
                        async::Mode mode = async::Mode::kSerial) {
  auto data = make_data();
  core::ExecConfig cfg;
  cfg.backend = backend;
  cfg.fault_plan = fplan;
  core::ExecContext ctx(cfg);
  toast::kernels::jax::clear_jit_caches();
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;
  auto pipeline = sim::make_benchmark_pipeline(wf, staging);
  DirectResult r;
  if (task_graph) {
    core::PlanStats stats;
    async::Options aopt;
    aopt.mode = mode;
    for (auto& ob : data.observations) {
      r.report.merge(async::run_plan_async(pipeline, ob, ctx, stats, aopt));
    }
  } else {
    pipeline.exec(data, ctx);
  }
  r.runtime = ctx.clock().now();
  r.log = ctx.log();
  r.signal_sum = field_sum(data, "signal");
  r.zmap_sum = field_sum(data, "zmap");
  return r;
}

toast::fault::FaultPlan launch_chaos_plan() {
  toast::fault::FaultPlan p;
  p.seed = 7;
  toast::fault::FaultRule r;
  r.kind = toast::fault::FaultKind::kLaunch;
  r.site = "scan_map";
  r.probability = 1.0;  // exhaust the retry budget: forces CPU degrade
  p.rules.push_back(r);
  return p;
}

// --- destriper scenario -----------------------------------------------------

struct Scenario {
  core::Observation ob;
  DestriperConfig cfg;
};

Scenario make_scenario(std::uint64_t seed = 11) {
  DestriperConfig cfg;
  cfg.nside = 16;
  cfg.step_length = 128;
  cfg.max_iterations = 12;
  cfg.tolerance = 0.0;  // fixed iteration count: stable comm schedule
  cfg.comm_ranks = 64;
  cfg.comm_ranks_per_node = 4;

  const auto fp = sim::hex_focalplane(4, 37.0, 10.0, 50e-6);
  sim::ScanParams scan;
  scan.spin_period = 60.0;
  Scenario s{sim::simulate_satellite("destripe", fp, 8192, scan, seed), cfg};

  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  sim::WorkflowConfig wf;
  wf.nside = cfg.nside;
  core::Data data;
  data.observations.push_back(std::move(s.ob));
  sim::make_scan_pipeline(wf).exec(data, ctx);
  s.ob = std::move(data.observations[0]);

  // Inject step offsets + white noise so the CG has real work to do.
  const std::int64_t n_det = s.ob.n_detectors();
  const std::int64_t n_samp = s.ob.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + cfg.step_length - 1) / cfg.step_length;
  std::mt19937 gen(static_cast<unsigned>(seed));
  std::normal_distribution<double> off(0.0, 1e-4);
  std::normal_distribution<double> white(0.0, 1e-7);
  std::vector<double> injected(static_cast<std::size_t>(n_det * n_amp_det));
  for (auto& v : injected) v = off(gen);
  auto signal = s.ob.field(core::fields::kSignal).f64();
  for (std::int64_t d = 0; d < n_det; ++d) {
    for (std::int64_t t = 0; t < n_samp; ++t) {
      signal[static_cast<std::size_t>(d * n_samp + t)] +=
          injected[static_cast<std::size_t>(d * n_amp_det +
                                            t / cfg.step_length)] +
          white(gen);
    }
  }
  return s;
}

struct SolveResult {
  double runtime = 0.0;
  toast::accel::TimeLog log;
  std::vector<double> amplitudes;
  std::vector<double> residuals;
  double wait_s = 0.0;
  double restores = 0.0;
};

SolveResult run_solve(AsyncComm mode, std::uint64_t seed,
                      const toast::fault::FaultPlan& fplan) {
  auto sc = make_scenario(seed);
  sc.cfg.async_comm = mode;
  core::ExecConfig ec;
  ec.fault_plan = fplan;
  core::ExecContext ctx(ec);
  const double t0 = ctx.clock().now();
  Destriper destriper(sc.cfg);
  const auto r = destriper.solve(sc.ob, ctx, Backend::kCpu);
  SolveResult out;
  out.runtime = ctx.clock().now() - t0;
  out.log = ctx.log();
  out.amplitudes = r.amplitudes;
  out.residuals = r.residuals;
  for (const auto& c : out.log.categories()) {
    if (c.size() > 5 && c.compare(c.size() - 5, 5, "_wait") == 0) {
      out.wait_s += out.log.seconds(c);
    }
  }
  const auto& counters = ctx.faults().counters();
  const auto it = counters.find("fault_checkpoint_restores");
  out.restores = it == counters.end() ? 0.0 : it->second;
  return out;
}

bool solves_equal(const SolveResult& a, const SolveResult& b) {
  return a.amplitudes == b.amplitudes && a.residuals == b.residuals;
}

toast::fault::FaultPlan rank_chaos_plan() {
  toast::fault::FaultPlan p;
  p.seed = 17;
  toast::fault::FaultRule r;
  r.kind = toast::fault::FaultKind::kRankFailure;
  r.site = "destriper_cg";
  r.probability = 0.25;
  r.max_fires = 2;
  p.rules.push_back(r);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_tasks_path;
  const auto opt = toast::bench::parse_options(
      argc, argv, {{"--dump-tasks", &dump_tasks_path}});
  const std::string& json_path = opt.json_path;

  toast::bench::print_header(
      "Async task-graph runtime: replay parity + comm/compute overlap");

  // --- plan replay vs task graph -------------------------------------------
  struct DirectRow {
    std::string name;
    DirectResult staged;
    DirectResult graph;
    bool runtime_equal = false;
    bool log_equal = false;
    bool products_equal = false;
  };
  const toast::fault::FaultPlan no_faults;
  const struct {
    const char* name;
    Backend backend;
    core::Pipeline::Staging staging;
    toast::fault::FaultPlan faults;
  } direct_cases[] = {
      {"omp_pipelined", Backend::kOmpTarget,
       core::Pipeline::Staging::kPipelined, no_faults},
      {"omp_naive", Backend::kOmpTarget, core::Pipeline::Staging::kNaive,
       no_faults},
      {"jax_pipelined", Backend::kJax, core::Pipeline::Staging::kPipelined,
       no_faults},
      {"omp_launch_chaos", Backend::kOmpTarget,
       core::Pipeline::Staging::kPipelined, launch_chaos_plan()},
  };

  std::vector<DirectRow> direct;
  std::printf("%-20s %14s %14s %7s %6s %9s %8s\n", "plan case", "staged",
              "task graph", "equal", "tasks", "critical", "overlap");
  std::printf(
      "---------------------------------------------------------------------"
      "-----\n");
  for (const auto& c : direct_cases) {
    DirectRow row;
    row.name = c.name;
    row.staged = run_direct(c.backend, c.staging, c.faults, false);
    row.graph = run_direct(c.backend, c.staging, c.faults, true);
    row.runtime_equal = row.staged.runtime == row.graph.runtime;
    row.log_equal = logs_equal(row.staged.log, row.graph.log);
    row.products_equal =
        row.staged.signal_sum == row.graph.signal_sum &&
        row.staged.zmap_sum == row.graph.zmap_sum;
    std::printf("%-20s %14.7e %14.7e %7s %6d %8.1fms %7.1f%%\n", c.name,
                row.staged.runtime, row.graph.runtime,
                row.runtime_equal && row.log_equal && row.products_equal
                    ? "yes"
                    : "NO",
                row.graph.report.n_tasks,
                row.graph.report.critical_path_s * 1e3,
                row.graph.report.overlap_fraction * 100.0);
    direct.push_back(std::move(row));
  }

  // --- pipeline graph overlap ----------------------------------------------
  // Overlap mode re-times the executed tasks against the dependency
  // structure: products and TimeLog must stay bitwise equal to the
  // serial graph run (which is itself bitwise equal to staged replay,
  // checked above), while the placed makespan may only shrink.
  struct OverlapRow {
    std::string name;
    DirectResult serial;
    DirectResult overlap;
    bool products_equal = false;
    bool log_equal = false;
    bool no_slower = false;
  };
  const struct {
    const char* name;
    Backend backend;
  } overlap_cases[] = {
      {"omp_pipelined", Backend::kOmpTarget},
      {"jax_pipelined", Backend::kJax},
  };
  std::vector<OverlapRow> overlap_rows;
  std::printf("\n%-20s %14s %14s %8s %7s\n", "overlap case", "serial",
              "overlap", "speedup", "parity");
  std::printf(
      "----------------------------------------------------------------\n");
  for (const auto& c : overlap_cases) {
    OverlapRow row;
    row.name = c.name;
    row.serial = run_direct(c.backend, core::Pipeline::Staging::kPipelined,
                            no_faults, true, async::Mode::kSerial);
    row.overlap = run_direct(c.backend, core::Pipeline::Staging::kPipelined,
                             no_faults, true, async::Mode::kOverlap);
    row.products_equal =
        row.serial.signal_sum == row.overlap.signal_sum &&
        row.serial.zmap_sum == row.overlap.zmap_sum;
    row.log_equal = logs_equal(row.serial.log, row.overlap.log);
    row.no_slower = row.overlap.runtime <= row.serial.runtime;
    std::printf("%-20s %14.7e %14.7e %7.3fx %7s\n", c.name,
                row.serial.runtime, row.overlap.runtime,
                row.serial.runtime / row.overlap.runtime,
                row.products_equal && row.log_equal && row.no_slower
                    ? "yes"
                    : "NO");
    overlap_rows.push_back(std::move(row));
  }

  // --- destriper comm modes -------------------------------------------------
  const auto staged = run_solve(AsyncComm::kStaged, 11, no_faults);
  const auto sync = run_solve(AsyncComm::kSync, 11, no_faults);
  const auto overlap = run_solve(AsyncComm::kOverlap, 11, no_faults);
  const bool sync_equal = staged.runtime == sync.runtime &&
                          logs_equal(staged.log, sync.log) &&
                          solves_equal(staged, sync);
  const bool overlap_products_equal = solves_equal(staged, overlap);
  const double overlap_speedup = staged.runtime / overlap.runtime;

  std::printf("\n%-10s %14s %10s\n", "solver", "runtime", "wait");
  std::printf("--------------------------------------\n");
  std::printf("%-10s %14.7e %10s\n", "staged", staged.runtime, "-");
  std::printf("%-10s %14.7e %10s%s\n", "sync", sync.runtime, "-",
              sync_equal ? "  [bitwise]" : "  [SYNC MISMATCH]");
  std::printf("%-10s %14.7e %8.2fms  %.3fx%s\n", "overlap", overlap.runtime,
              overlap.wait_s * 1e3, overlap_speedup,
              overlap_products_equal ? "" : "  [PRODUCT MISMATCH]");

  // --- chaos: staged vs sync under a pinned rank-failure plan ---------------
  const auto chaos_plan = rank_chaos_plan();
  const auto chaos_staged = run_solve(AsyncComm::kStaged, 11, chaos_plan);
  const auto chaos_sync = run_solve(AsyncComm::kSync, 11, chaos_plan);
  const bool chaos_equal = chaos_staged.runtime == chaos_sync.runtime &&
                           logs_equal(chaos_staged.log, chaos_sync.log) &&
                           solves_equal(chaos_staged, chaos_sync);
  std::printf("\nchaos (rank failures): staged %14.7e  sync %14.7e  "
              "restores %.0f  %s\n",
              chaos_staged.runtime, chaos_sync.runtime, chaos_sync.restores,
              chaos_equal ? "[bitwise]" : "[SYNC MISMATCH]");

  if (!dump_tasks_path.empty()) {
    // Lower one observation's plan and dump the executed graph.
    auto data = make_data(1);
    core::ExecConfig cfg;
    cfg.backend = Backend::kOmpTarget;
    core::ExecContext ctx(cfg);
    sim::WorkflowConfig wf;
    wf.nside = 32;
    wf.map_iterations = 2;
    auto pipeline = sim::make_benchmark_pipeline(wf);
    auto& ob = data.observations.front();
    const auto plan = pipeline.plan_for(ob, ctx);
    core::PlanStats stats;
    core::PlanExecutor pe(*plan, pipeline.metadata(), ob, ctx,
                          pipeline.backend_override(), stats);
    async::TaskGraph graph =
        async::lower_plan(*plan, pipeline.metadata(), pe);
    async::Engine engine(ctx.clock(), &ctx.tracer(), {});
    const auto report = engine.run(graph);
    pe.finish(toast::obs::kInvalidSpan);
    std::ofstream out(dump_tasks_path);
    if (!out) {
      throw std::runtime_error("cannot open " + dump_tasks_path);
    }
    async::write_tasks_json(out, graph, report);
    std::printf("wrote %s\n", dump_tasks_path.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      throw std::runtime_error("cannot open " + json_path);
    }
    toast::bench::JsonWriter w(out);
    w.obj_open();
    w.kv("schema", "toastcase-bench-async-v1");
    w.kv("benchmark", "async");
    w.arr_open("plan");
    for (const auto& row : direct) {
      w.obj_open();
      w.kv("name", row.name);
      w.kv("staged_runtime_s", row.staged.runtime);
      w.kv("graph_runtime_s", row.graph.runtime);
      w.kv("runtime_equal", row.runtime_equal);
      w.kv("timelog_equal", row.log_equal);
      w.kv("products_equal", row.products_equal);
      w.kv("n_tasks", row.graph.report.n_tasks);
      w.kv("patched", row.graph.report.patched);
      w.kv("total_busy_s", row.graph.report.total_busy_s);
      w.kv("critical_path_s", row.graph.report.critical_path_s);
      w.kv("overlap_fraction", row.graph.report.overlap_fraction);
      w.obj_close();
    }
    w.arr_close();
    w.arr_open("pipeline_overlap");
    for (const auto& row : overlap_rows) {
      w.obj_open();
      w.kv("name", row.name);
      w.kv("serial_runtime_s", row.serial.runtime);
      w.kv("overlap_runtime_s", row.overlap.runtime);
      w.kv("speedup", row.serial.runtime / row.overlap.runtime);
      w.kv("products_equal", row.products_equal);
      w.kv("timelog_equal", row.log_equal);
      w.kv("no_slower", row.no_slower);
      w.obj_close();
    }
    w.arr_close();
    w.obj_open("solver");
    w.kv("comm_ranks", 64);
    w.kv("staged_runtime_s", staged.runtime);
    w.kv("sync_runtime_s", sync.runtime);
    w.kv("overlap_runtime_s", overlap.runtime);
    w.kv("sync_equal", sync_equal);
    w.kv("overlap_products_equal", overlap_products_equal);
    w.kv("overlap_speedup", overlap_speedup);
    w.kv("overlap_wait_s", overlap.wait_s);
    w.obj_close();
    w.obj_open("chaos");
    w.kv("staged_runtime_s", chaos_staged.runtime);
    w.kv("sync_runtime_s", chaos_sync.runtime);
    w.kv("sync_equal", chaos_equal);
    w.kv("checkpoint_restores", chaos_sync.restores);
    w.obj_close();
    w.obj_close();
    out << "\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  bool ok = sync_equal && overlap_products_equal && chaos_equal;
  for (const auto& row : direct) {
    ok = ok && row.runtime_equal && row.log_equal && row.products_equal;
  }
  for (const auto& row : overlap_rows) {
    ok = ok && row.products_equal && row.log_equal && row.no_slower;
  }
  if (!ok) {
    std::fprintf(stderr, "async runtime parity mismatch (see above)\n");
    return 1;
  }
  return 0;
}
