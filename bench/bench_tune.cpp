// Schedule-space autotuner benchmark (docs/MODEL.md §12).
//
// Four sections, one JSON artifact (schema toastcase-bench-tune-v1,
// gated by scripts/check_bench.py --tune):
//
//   rows        tuned-vs-hand-picked schedules for the paper's shapes
//               (fig4 medium @ 8 procs, fig5 large) per GPU backend.
//               The tuner starts from the default schedule and must end
//               never worse than the best of a hand-picked preset list
//               (each preset is inside the search space, and the search
//               multi-starts from any preset that beats the greedy
//               winner, so the invariant holds by construction).
//   crossover   the comm micro-tuner's argmin over allreduce algorithms
//               across message sizes on the fig5 cluster topology —
//               rediscovering the PR 5 crossover (binomial tree for
//               latency-bound small messages, the ring reduce-scatter +
//               all-gather decomposition for bandwidth-bound large
//               ones) from the cost model alone.
//   determinism the same tune run twice must produce byte-identical
//               winners (config JSON, runtime bits, evaluation count).
//   chaos       the tuned winner run twice under a pinned fault plan
//               must produce byte-identical results.
//
// --json <path> also writes each row's winning schedule as a reusable
// toastcase-schedule-v1 artifact next to the JSON (suffixed per row);
// feed one back with `bench_fig4/bench_fig5 --schedule <file>`.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_model/problem.hpp"
#include "bench_util.hpp"
#include "comm/engine.hpp"
#include "config/schedule.hpp"
#include "fault/fault.hpp"
#include "mpisim/job.hpp"
#include "tune/tuner.hpp"

using toast::core::Backend;
using toast::mpisim::JobConfig;
using toast::mpisim::JobResult;
using toast::mpisim::run_benchmark_job;

namespace {

namespace config = toast::config;
namespace tune = toast::tune;

struct HandResult {
  std::string name;
  bool oom = false;
  double runtime = std::numeric_limits<double>::infinity();
};

struct RowResult {
  std::string name;
  std::string problem;
  int procs_per_node = 0;
  std::string backend;
  std::vector<HandResult> hand;
  std::string best_hand_name;
  double best_hand_runtime = std::numeric_limits<double>::infinity();
  double tuned_runtime = std::numeric_limits<double>::infinity();
  bool tuned_not_worse = false;
  std::string tuned_hash;
  int tuned_evaluations = 0;
  config::ScheduleConfig tuned_config;
};

/// The hand-picked presets every tuned row competes against.  Each one
/// is reachable inside SearchSpace::full(), so the tuner's winner can
/// always match it.
std::vector<std::pair<std::string, config::ScheduleConfig>> hand_presets(
    const config::ScheduleConfig& base) {
  std::vector<std::pair<std::string, config::ScheduleConfig>> presets;
  presets.emplace_back("default", base);
  {
    auto c = base;
    c.staging.prefetch = true;
    presets.emplace_back("prefetch", c);
  }
  {
    auto c = base;
    c.staging.prefetch = true;
    c.staging.evict = true;
    presets.emplace_back("prefetch_evict", c);
  }
  {
    auto c = base;
    c.staging.mode = config::Staging::kNaive;
    presets.emplace_back("naive", c);
  }
  {
    auto c = base;
    c.comm.mode = config::CommMode::kEngine;
    presets.emplace_back("engine_ring", c);
  }
  {
    auto c = base;
    c.comm.mode = config::CommMode::kEngine;
    c.comm.algorithm = config::CommAlgorithm::kTree;
    presets.emplace_back("engine_tree", c);
  }
  return presets;
}

RowResult tune_row(const std::string& name, const std::string& problem_name,
                   const toast::bench_model::ProblemSize& problem,
                   Backend backend) {
  RowResult row;
  row.name = name;
  row.problem = problem_name;
  row.procs_per_node = problem.procs_per_node;

  JobConfig base{problem, backend};
  row.backend = base.schedule.backend;

  // Hand-picked presets: each evaluated exactly as a user would run it.
  for (const auto& [preset_name, schedule] : hand_presets(base.schedule)) {
    JobConfig cfg = base;
    cfg.schedule = schedule;
    const JobResult r = run_benchmark_job(cfg);
    HandResult h;
    h.name = preset_name;
    h.oom = r.oom;
    if (!r.oom) {
      h.runtime = r.runtime;
      if (r.runtime < row.best_hand_runtime) {
        row.best_hand_runtime = r.runtime;
        row.best_hand_name = preset_name;
      }
    }
    row.hand.push_back(std::move(h));
  }

  // The tuner, greedy from the default schedule; multi-start from any
  // preset the greedy winner failed to dominate.
  const tune::SearchSpace space = tune::SearchSpace::full();
  tune::TuneReport report = tune::tune_job(base, space);
  int evaluations = report.evaluations;
  for (const auto& [preset_name, schedule] : hand_presets(base.schedule)) {
    JobConfig seeded = base;
    seeded.schedule = schedule;
    const auto it =
        std::find_if(row.hand.begin(), row.hand.end(),
                     [&](const HandResult& h) {
                       return h.name == preset_name;
                     });
    if (it != row.hand.end() && !it->oom &&
        it->runtime < report.best_runtime) {
      tune::TuneReport restart = tune::tune_job(seeded, space);
      evaluations += restart.evaluations;
      if (restart.best_runtime < report.best_runtime) {
        report = std::move(restart);
      }
    }
  }
  row.tuned_runtime = report.best_runtime;
  row.tuned_not_worse = report.best_runtime <= row.best_hand_runtime;
  row.tuned_hash = report.best.hash_hex();
  row.tuned_evaluations = evaluations;
  row.tuned_config = report.best;
  return row;
}

struct CrossoverPoint {
  double bytes = 0.0;
  std::string chosen;
  std::map<std::string, double> seconds;
};

/// Fingerprint of a tuned chaos run: every virtual-clock number plus the
/// fault counters at full double precision.  Two runs are "byte
/// identical" when these strings match.
std::string result_fingerprint(const JobResult& r) {
  char buf[64];
  std::string fp;
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g;", v);
    fp += buf;
  };
  num(r.runtime);
  num(r.host_seconds);
  num(r.device_seconds);
  num(r.transfer_seconds);
  num(r.comm_seconds);
  num(static_cast<double>(r.world_ranks));
  for (const auto& [key, value] : r.fault_counters) {
    fp += key;
    fp += "=";
    num(value);
  }
  for (const auto& kernel : r.degraded_kernels) {
    fp += kernel;
    fp += ";";
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Schedule autotuner: tuned vs hand-picked configs + comm crossover");

  // --- tuned rows ----------------------------------------------------------
  auto medium8 = toast::bench_model::medium_problem();
  medium8.procs_per_node = 8;
  const auto large = toast::bench_model::large_problem();

  std::vector<RowResult> rows;
  rows.push_back(
      tune_row("medium_8procs_jax", "medium", medium8, Backend::kJax));
  rows.push_back(
      tune_row("medium_8procs_omp", "medium", medium8, Backend::kOmpTarget));
  rows.push_back(tune_row("large_jax", "large", large, Backend::kJax));
  rows.push_back(
      tune_row("large_omp", "large", large, Backend::kOmpTarget));

  std::printf("%-20s %14s %-16s %14s %6s %6s\n", "row", "best hand",
              "(preset)", "tuned", "ok", "evals");
  std::printf("--------------------------------------------------------------"
              "-----------------\n");
  for (const auto& row : rows) {
    std::printf("%-20s %14s %-16s %14s %6s %6d\n", row.name.c_str(),
                toast::bench::fmt_seconds(row.best_hand_runtime).c_str(),
                ("(" + row.best_hand_name + ")").c_str(),
                toast::bench::fmt_seconds(row.tuned_runtime).c_str(),
                row.tuned_not_worse ? "yes" : "NO", row.tuned_evaluations);
  }

  // --- comm crossover ------------------------------------------------------
  // The fig5 cluster topology (8 nodes x 16 procs, slingshot NICs): the
  // micro-tuner's argmin across message sizes must rediscover the
  // crossover without being told where it is.
  const int ranks = large.total_procs();
  const toast::comm::Engine engine(
      toast::comm::Topology::cluster(ranks, large.procs_per_node));
  std::vector<CrossoverPoint> crossover;
  std::printf("\ncomm crossover (cluster %d ranks, %d per node):\n", ranks,
              large.procs_per_node);
  for (const double bytes :
       {8.0, 1024.0, 65536.0, 1.0e6, 8.0e6, 75497472.0}) {
    const auto choice = tune::best_allreduce_algorithm(engine, bytes);
    CrossoverPoint pt;
    pt.bytes = bytes;
    pt.chosen = config::to_string(choice.algorithm);
    pt.seconds = choice.per_algorithm;
    std::printf("  %10.0f B -> %-9s", bytes, pt.chosen.c_str());
    for (const auto& [alg, s] : pt.seconds) {
      std::printf("  %s=%.3gs", alg.c_str(), s);
    }
    std::printf("\n");
    crossover.push_back(std::move(pt));
  }
  const bool crossover_ok = crossover.front().chosen == "tree" &&
                            crossover.back().chosen == "ring";
  std::printf("  small -> %s, large -> %s %s\n",
              crossover.front().chosen.c_str(),
              crossover.back().chosen.c_str(),
              crossover_ok ? "[crossover rediscovered]" : "[UNEXPECTED]");

  // --- tuner determinism ---------------------------------------------------
  JobConfig det_base{medium8, Backend::kOmpTarget};
  const auto det_a = tune::tune_job(det_base, tune::SearchSpace::full());
  const auto det_b = tune::tune_job(det_base, tune::SearchSpace::full());
  const bool det_ok = det_a.best.json() == det_b.best.json() &&
                      det_a.best_runtime == det_b.best_runtime &&
                      det_a.evaluations == det_b.evaluations;
  std::printf("\ntuner determinism: %s (%d evaluations, winner %s)\n",
              det_ok ? "byte-identical" : "MISMATCH", det_a.evaluations,
              det_a.best.hash_hex().c_str());

  // --- chaos parity under the tuned schedule -------------------------------
  // A pinned fault plan under the tuned winner, run twice: recovery must
  // not break schedule determinism.
  toast::fault::FaultPlan chaos_plan;
  chaos_plan.seed = 11;
  chaos_plan.rules = {
      toast::fault::FaultRule{toast::fault::FaultKind::kLaunch, "", 0.5}};
  JobConfig chaos_cfg = det_base;
  chaos_cfg.schedule = det_a.best;
  chaos_cfg.fault_plan = chaos_plan;
  const JobResult chaos_a = run_benchmark_job(chaos_cfg);
  const JobResult chaos_b = run_benchmark_job(chaos_cfg);
  const bool chaos_ok =
      result_fingerprint(chaos_a) == result_fingerprint(chaos_b);
  std::printf("chaos parity (pinned plan, tuned schedule, 2 runs): %s\n",
              chaos_ok ? "byte-identical" : "MISMATCH");

  // --- JSON ----------------------------------------------------------------
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      throw std::runtime_error("cannot open " + opt.json_path);
    }
    toast::bench::JsonWriter w(out);
    w.obj_open();
    w.kv("schema", "toastcase-bench-tune-v1");
    w.kv("benchmark", "tune");
    w.arr_open("rows");
    for (const auto& row : rows) {
      w.obj_open();
      w.kv("name", row.name);
      w.kv("problem", row.problem);
      w.kv("procs_per_node", row.procs_per_node);
      w.kv("backend", row.backend);
      w.arr_open("hand");
      for (const auto& h : row.hand) {
        w.obj_open();
        w.kv("name", h.name);
        w.kv("oom", h.oom);
        if (!h.oom) {
          w.kv("runtime_s", h.runtime);
        }
        w.obj_close();
      }
      w.arr_close();
      w.kv("best_hand_name", row.best_hand_name);
      w.kv("best_hand_runtime_s", row.best_hand_runtime);
      w.kv("tuned_runtime_s", row.tuned_runtime);
      w.kv("tuned_not_worse", row.tuned_not_worse);
      w.kv("tuned_config_hash", row.tuned_hash);
      w.kv("tuned_evaluations", row.tuned_evaluations);
      // The winning schedule, re-usable via --schedule.
      const std::string schedule_path =
          toast::bench::suffixed_path(opt.json_path, row.name + ".schedule");
      row.tuned_config.save_file(schedule_path);
      w.kv("tuned_schedule_file", schedule_path);
      w.obj_close();
    }
    w.arr_close();
    w.obj_open("crossover");
    w.kv("ranks", ranks);
    w.kv("procs_per_node", large.procs_per_node);
    w.arr_open("points");
    for (const auto& pt : crossover) {
      w.obj_open();
      w.kv("bytes", pt.bytes);
      w.kv("chosen", pt.chosen);
      w.obj_open("seconds");
      for (const auto& [alg, s] : pt.seconds) {
        w.kv(alg, s);
      }
      w.obj_close();
      w.obj_close();
    }
    w.arr_close();
    w.obj_close();
    w.obj_open("determinism");
    w.kv("repeat_identical", det_ok);
    w.kv("evaluations", det_a.evaluations);
    w.kv("winner_hash", det_a.best.hash_hex());
    w.obj_close();
    w.obj_open("chaos");
    w.kv("bitwise_identical", chaos_ok);
    w.kv("tuned_config_hash", chaos_cfg.schedule.hash_hex());
    w.obj_close();
    w.obj_close();
    out << "\n";
    std::printf("wrote %s\n", opt.json_path.c_str());
  }

  return crossover_ok && det_ok && chaos_ok ? 0 : 1;
}
