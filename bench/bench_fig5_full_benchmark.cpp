// Figure 5: the full benchmark at the large problem size (5e10 samples,
// ~10 TB, 8 nodes x 16 processes x 4 threads).
//
// Paper findings: vs the OpenMP CPU baseline, JAX is 2.28x faster and
// OpenMP Target Offload 2.58x faster; forcing JAX onto its *CPU* backend
// is 7.4x SLOWER than the threaded baseline (§4.2, excluded from the
// paper's plot because it would dwarf the other bars).

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using toast::bench_model::large_problem;
using toast::core::Backend;
using toast::mpisim::JobConfig;
using toast::mpisim::run_benchmark_job;

int main() {
  toast::bench::print_header(
      "Figure 5: full benchmark, large problem (8 nodes x 16 procs x 4 "
      "threads)");

  const auto problem = large_problem();
  const auto cpu = run_benchmark_job({problem, Backend::kCpu});

  std::printf("%-22s %14s %10s\n", "implementation", "runtime", "vs cpu");
  std::printf("------------------------------------------------\n");
  std::printf("%-22s %14s %10s\n", "cpu (OpenMP)",
              toast::bench::fmt_seconds(cpu.runtime).c_str(), "1.00x");

  for (const auto& [label, backend] :
       {std::pair{"jax", Backend::kJax},
        std::pair{"omp-target", Backend::kOmpTarget},
        std::pair{"jax (CPU backend)", Backend::kJaxCpu}}) {
    const auto r = run_benchmark_job({problem, backend});
    char speed[32];
    if (r.oom) {
      std::snprintf(speed, sizeof(speed), "OOM");
      std::printf("%-22s %14s %10s\n", label, "OOM", speed);
      continue;
    }
    const double s = cpu.runtime / r.runtime;
    if (s >= 1.0) {
      std::snprintf(speed, sizeof(speed), "%.2fx", s);
    } else {
      std::snprintf(speed, sizeof(speed), "%.1fx slower", 1.0 / s);
    }
    std::printf("%-22s %14s %10s\n", label,
                toast::bench::fmt_seconds(r.runtime).c_str(), speed);
  }

  std::printf(
      "\npaper: jax 2.28x, omp-target 2.58x faster than cpu;\n"
      "       jax CPU backend 7.4x slower than the threaded baseline.\n");
  return 0;
}
