// Figure 5: the full benchmark at the large problem size (5e10 samples,
// ~10 TB, 8 nodes x 16 processes x 4 threads).
//
// Paper findings: vs the OpenMP CPU baseline, JAX is 2.28x faster and
// OpenMP Target Offload 2.58x faster; forcing JAX onto its *CPU* backend
// is 7.4x SLOWER than the threaded baseline (§4.2, excluded from the
// paper's plot because it would dwarf the other bars).
//
// --json <path>: machine-readable results (schema toastcase-bench-fig5-v1).
// --faults <plan>: apply a deterministic fault plan to every modelled run;
//   fault/recovery counters then ride along in the JSON so the chaos CI
//   can assert the runs completed (via retry or CPU fallback).
// --schedule <file>: start every run from a toastcase-schedule-v1 config
//   (the backend slot is re-pinned per implementation; --staging/--comm/
//   --prefetch still apply on top).
// --tuned: run the schedule autotuner per implementation and report
//   tuned-vs-hand runtimes.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "config/schedule.hpp"
#include "fault/fault.hpp"
#include "mpisim/job.hpp"
#include "obs/export.hpp"
#include "tune/tuner.hpp"

using toast::bench_model::large_problem;
using toast::core::Backend;
using toast::mpisim::JobConfig;
using toast::mpisim::JobResult;
using toast::mpisim::run_benchmark_job;

namespace {

/// Autotuner result for one implementation (--tuned only).
struct TunedCell {
  bool ran = false;
  bool feasible = false;
  double runtime = 0.0;
  bool not_worse = false;
  std::string config_hash;
  int evaluations = 0;
};

struct Row {
  std::string label;
  JobResult result;
  TunedCell tuned;
};

void write_json(const std::string& path, const toast::bench::BenchOptions& opt,
                const JobResult& cpu, const TunedCell& cpu_tuned,
                const std::vector<Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-fig5-v1");
  w.kv("benchmark", "fig5_full_benchmark");
  w.kv("staging", opt.staging.empty() ? "pipelined" : opt.staging);
  w.kv("comm", opt.comm.empty() ? "model" : opt.comm);
  w.kv("prefetch", opt.prefetch);
  w.arr_open("implementations");
  auto emit = [&](const std::string& label, const JobResult& r,
                  const TunedCell& tuned) {
    w.obj_open();
    w.kv("name", label);
    w.kv("oom", r.oom);
    if (!r.oom) {
      w.kv("runtime_s", r.runtime);
      w.kv("speedup_vs_cpu", cpu.runtime / r.runtime);
    }
    if (tuned.ran && tuned.feasible) {
      w.kv("tuned_runtime_s", tuned.runtime);
      w.kv("tuned_not_worse", tuned.not_worse);
      w.kv("tuned_config_hash", tuned.config_hash);
      w.kv("tuned_evaluations", tuned.evaluations);
    }
    if (!r.fault_counters.empty()) {
      w.obj_open("fault_counters");
      for (const auto& [key, value] : r.fault_counters) {
        w.kv(key, value);
      }
      w.obj_close();
    }
    if (!r.plan_counters.empty()) {
      w.obj_open("plan_counters");
      for (const auto& [key, value] : r.plan_counters) {
        w.kv(key, value);
      }
      w.obj_close();
    }
    if (!r.degraded_kernels.empty()) {
      w.arr_open("degraded_kernels");
      for (const auto& kernel : r.degraded_kernels) {
        w.value(kernel);
      }
      w.arr_close();
    }
    w.obj_close();
  };
  emit("cpu", cpu, cpu_tuned);
  for (const auto& row : rows) {
    emit(row.label, row.result, row.tuned);
  }
  w.arr_close();
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Figure 5: full benchmark, large problem (8 nodes x 16 procs x 4 "
      "threads)");

  toast::fault::FaultPlan plan;
  if (!opt.faults_path.empty()) {
    plan = toast::fault::FaultPlan::load_file(opt.faults_path);
    std::printf("fault plan: %s (%zu rule%s, seed %llu)\n",
                opt.faults_path.c_str(), plan.rules.size(),
                plan.rules.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(plan.seed));
  }
  if (!opt.staging.empty() || opt.prefetch) {
    std::printf("staging: %s%s\n",
                opt.staging.empty() ? "pipelined" : opt.staging.c_str(),
                opt.prefetch ? " + prefetch" : "");
  }
  if (!opt.comm.empty()) {
    std::printf("comm: %s\n", opt.comm.c_str());
  }
  toast::config::ScheduleConfig base_schedule;
  if (!opt.schedule_path.empty()) {
    base_schedule =
        toast::config::ScheduleConfig::load_file(opt.schedule_path);
    std::printf("schedule: %s (hash %s)\n", opt.schedule_path.c_str(),
                base_schedule.hash_hex().c_str());
  }
  const auto make_cfg = [&](Backend backend) {
    JobConfig cfg;
    cfg.problem = large_problem();
    if (!opt.schedule_path.empty()) {
      cfg.schedule = base_schedule;
    }
    cfg.schedule.set_backend(backend);
    cfg.fault_plan = plan;
    if (opt.staging == "naive") {
      cfg.schedule.staging.mode = toast::core::Pipeline::Staging::kNaive;
    }
    if (opt.comm == "engine") {
      cfg.schedule.comm.mode = toast::mpisim::CommMode::kEngine;
    }
    if (opt.prefetch) {
      cfg.schedule.staging.prefetch = true;
    }
    return cfg;
  };
  const auto run = [&](Backend backend) {
    return run_benchmark_job(make_cfg(backend));
  };
  const auto tune_cell = [&](Backend backend, const JobResult& hand) {
    TunedCell cell;
    if (!opt.tuned) {
      return cell;
    }
    cell.ran = true;
    const auto report = toast::tune::tune_job(
        make_cfg(backend), toast::tune::SearchSpace::full());
    cell.feasible = std::isfinite(report.best_runtime);
    cell.runtime = report.best_runtime;
    cell.not_worse = hand.oom || report.best_runtime <= hand.runtime;
    cell.config_hash = report.best.hash_hex();
    cell.evaluations = report.evaluations;
    return cell;
  };

  const auto cpu = run(Backend::kCpu);
  const TunedCell cpu_tuned = tune_cell(Backend::kCpu, cpu);
  if (cpu_tuned.ran && cpu_tuned.feasible) {
    std::printf("tuned cpu: %s (%d evaluations)\n",
                toast::bench::fmt_seconds(cpu_tuned.runtime).c_str(),
                cpu_tuned.evaluations);
  }

  std::printf("%-22s %14s %10s\n", "implementation", "runtime", "vs cpu");
  std::printf("------------------------------------------------\n");
  std::printf("%-22s %14s %10s\n", "cpu (OpenMP)",
              toast::bench::fmt_seconds(cpu.runtime).c_str(), "1.00x");

  std::vector<Row> rows;
  for (const auto& [label, json_label, backend] :
       {std::tuple{"jax", "jax", Backend::kJax},
        std::tuple{"omp-target", "omp", Backend::kOmpTarget},
        std::tuple{"jax (CPU backend)", "jax_cpu", Backend::kJaxCpu}}) {
    const auto r = run(backend);
    char speed[32];
    if (r.oom) {
      std::snprintf(speed, sizeof(speed), "OOM");
      std::printf("%-22s %14s %10s\n", label, "OOM", speed);
    } else {
      const double s = cpu.runtime / r.runtime;
      if (s >= 1.0) {
        std::snprintf(speed, sizeof(speed), "%.2fx", s);
      } else {
        std::snprintf(speed, sizeof(speed), "%.1fx slower", 1.0 / s);
      }
      std::printf("%-22s %14s %10s\n", label,
                  toast::bench::fmt_seconds(r.runtime).c_str(), speed);
    }
    Row row{json_label, r, tune_cell(backend, r)};
    if (row.tuned.ran && row.tuned.feasible) {
      std::printf("%-22s %14s %10s\n",
                  (std::string(label) + " tuned").c_str(),
                  toast::bench::fmt_seconds(row.tuned.runtime).c_str(), "");
    }
    rows.push_back(std::move(row));
  }

  std::printf(
      "\npaper: jax 2.28x, omp-target 2.58x faster than cpu;\n"
      "       jax CPU backend 7.4x slower than the threaded baseline.\n");

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, opt, cpu, cpu_tuned, rows);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    // Per-backend span metrics of the representative rank; under a fault
    // plan the fault_* categories land here, so `toast-trace faults` can
    // summarize what fired and what it cost.
    const auto write_rank_metrics = [&](const std::string& tag,
                                        const JobResult& r) {
      if (r.oom) {
        return;
      }
      const std::string path = toast::bench::suffixed_path(opt.trace_path, tag);
      toast::obs::write_metrics_json_file(
          r.rank_spans, path,
          {{"benchmark", "fig5_full_benchmark"}, {"backend", tag}});
      std::printf("wrote %s\n", path.c_str());
    };
    write_rank_metrics("cpu", cpu);
    for (const auto& row : rows) {
      write_rank_metrics(row.label, row.result);
    }
  }
  return 0;
}
