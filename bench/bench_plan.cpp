// Plan-vs-interpreter equivalence and prefetch benefit bench.
//
// Two sections (schema toastcase-bench-plan-v1):
//   - "direct": the benchmark workflow run twice on one rank — once
//     through the cached ExecutionPlan (the default exec() path), once
//     through the historical interpreter — including under deterministic
//     fault plans.  The default sync plan must reproduce the interpreter
//     bit for bit: identical virtual runtime, identical TimeLog, identical
//     science products.
//   - "jobs": the fig5 large-problem job per backend.  Sync plan vs
//     interpreter must again be bitwise equal; prefetch+evict mode is
//     reported with its plan counters and is expected to be strictly
//     faster (scripts/check_bench.py --plan asserts all of it).
//
// --dump-plan <path> additionally writes the omp-target plan of the first
// observation as toastcase-plan-v1 JSON (`toast-trace plan` reads it).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "kernels/jax.hpp"
#include "mpisim/job.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
using core::Backend;
using toast::bench_model::large_problem;
using toast::mpisim::JobConfig;
using toast::mpisim::JobResult;
using toast::mpisim::run_benchmark_job;

namespace {

core::Data make_data(int n_obs = 2) {
  const auto fp = sim::hex_focalplane(4, 37.0);
  core::Data data;
  for (int ob = 0; ob < n_obs; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = 1024.0 / 37.0 / 4.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, 1024, scan,
        7 + static_cast<std::uint64_t>(ob)));
  }
  return data;
}

double field_sum(const core::Data& data, const char* name) {
  double sum = 0.0;
  for (const auto& ob : data.observations) {
    const auto span = ob.field(name).f64();
    for (const double v : span) {
      sum += v;
    }
  }
  return sum;
}

struct DirectResult {
  double runtime = 0.0;
  toast::accel::TimeLog log;
  double signal_sum = 0.0;
  double zmap_sum = 0.0;
};

DirectResult run_direct(Backend backend, core::Pipeline::Staging staging,
                        const toast::fault::FaultPlan& fplan,
                        bool interpret) {
  auto data = make_data();
  core::ExecConfig cfg;
  cfg.backend = backend;
  cfg.fault_plan = fplan;
  core::ExecContext ctx(cfg);
  toast::kernels::jax::clear_jit_caches();
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;
  auto pipeline = sim::make_benchmark_pipeline(wf, staging);
  if (interpret) {
    pipeline.exec_interpreted(data, ctx);
  } else {
    pipeline.exec(data, ctx);
  }
  DirectResult r;
  r.runtime = ctx.clock().now();
  r.log = ctx.log();
  r.signal_sum = field_sum(data, "signal");
  r.zmap_sum = field_sum(data, "zmap");
  return r;
}

bool logs_equal(const toast::accel::TimeLog& a,
                const toast::accel::TimeLog& b) {
  const auto ca = a.categories();
  if (ca != b.categories()) {
    return false;
  }
  for (const auto& c : ca) {
    if (a.seconds(c) != b.seconds(c) || a.calls(c) != b.calls(c)) {
      return false;
    }
  }
  return true;
}

toast::fault::FaultPlan launch_chaos_plan() {
  toast::fault::FaultPlan p;
  p.seed = 7;
  toast::fault::FaultRule r;
  r.kind = toast::fault::FaultKind::kLaunch;
  r.site = "scan_map";
  r.probability = 1.0;  // exhaust the retry budget: forces CPU degrade
  p.rules.push_back(r);
  return p;
}

toast::fault::FaultPlan transfer_chaos_plan() {
  toast::fault::FaultPlan p;
  p.seed = 11;
  toast::fault::FaultRule r;
  r.kind = toast::fault::FaultKind::kTransfer;
  r.site = "accel_data_update";  // both directions
  r.probability = 0.2;
  r.max_fires = 6;
  p.rules.push_back(r);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_plan_path;
  const auto opt = toast::bench::parse_options(
      argc, argv, {{"--dump-plan", &dump_plan_path}});
  const std::string& json_path = opt.json_path;

  toast::bench::print_header(
      "Pipeline compilation: plan vs interpreter equivalence + prefetch");

  // --- direct rank-level equivalence ---------------------------------------
  struct DirectRow {
    std::string name;
    DirectResult plan;
    DirectResult interp;
    bool runtime_equal = false;
    bool log_equal = false;
    bool products_equal = false;
  };
  const toast::fault::FaultPlan no_faults;
  const struct {
    const char* name;
    Backend backend;
    core::Pipeline::Staging staging;
    toast::fault::FaultPlan faults;
  } direct_cases[] = {
      {"omp_pipelined", Backend::kOmpTarget,
       core::Pipeline::Staging::kPipelined, no_faults},
      {"omp_naive", Backend::kOmpTarget, core::Pipeline::Staging::kNaive,
       no_faults},
      {"jax_pipelined", Backend::kJax, core::Pipeline::Staging::kPipelined,
       no_faults},
      {"omp_launch_chaos", Backend::kOmpTarget,
       core::Pipeline::Staging::kPipelined, launch_chaos_plan()},
      {"omp_naive_transfer_chaos", Backend::kOmpTarget,
       core::Pipeline::Staging::kNaive, transfer_chaos_plan()},
  };

  std::vector<DirectRow> direct;
  std::printf("%-26s %16s %16s %8s\n", "direct case", "plan", "interpreter",
              "equal");
  std::printf(
      "--------------------------------------------------------------------\n");
  for (const auto& c : direct_cases) {
    DirectRow row;
    row.name = c.name;
    row.plan = run_direct(c.backend, c.staging, c.faults, false);
    row.interp = run_direct(c.backend, c.staging, c.faults, true);
    row.runtime_equal = row.plan.runtime == row.interp.runtime;
    row.log_equal = logs_equal(row.plan.log, row.interp.log);
    row.products_equal = row.plan.signal_sum == row.interp.signal_sum &&
                         row.plan.zmap_sum == row.interp.zmap_sum;
    std::printf("%-26s %16.9e %16.9e %8s\n", c.name, row.plan.runtime,
                row.interp.runtime,
                row.runtime_equal && row.log_equal && row.products_equal
                    ? "yes"
                    : "NO");
    direct.push_back(std::move(row));
  }

  // --- fig5 job-level: sync equivalence + prefetch benefit -----------------
  struct JobRow {
    std::string name;
    JobResult interp;
    JobResult sync;
    JobResult prefetch;
    bool sync_equal = false;
  };
  std::vector<JobRow> jobs;
  std::printf("\n%-6s %14s %14s %14s %10s\n", "job", "interpreter", "plan",
              "prefetch", "speedup");
  std::printf(
      "--------------------------------------------------------------------\n");
  for (const auto& [name, backend] :
       {std::pair{"omp", Backend::kOmpTarget}, std::pair{"jax", Backend::kJax}}) {
    JobRow row;
    row.name = name;
    JobConfig cfg;
    cfg.problem = large_problem();
    cfg.schedule.set_backend(backend);
    cfg.interpret = true;
    row.interp = run_benchmark_job(cfg);
    cfg.interpret = false;
    row.sync = run_benchmark_job(cfg);
    cfg.schedule.staging.prefetch = true;
    cfg.schedule.staging.evict = true;
    row.prefetch = run_benchmark_job(cfg);
    row.sync_equal = row.sync.runtime == row.interp.runtime;
    std::printf("%-6s %14s %14s %14s %9.3fx%s\n", name,
                toast::bench::fmt_seconds(row.interp.runtime).c_str(),
                toast::bench::fmt_seconds(row.sync.runtime).c_str(),
                toast::bench::fmt_seconds(row.prefetch.runtime).c_str(),
                row.sync.runtime / row.prefetch.runtime,
                row.sync_equal ? "" : "  [SYNC MISMATCH]");
    jobs.push_back(std::move(row));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      throw std::runtime_error("cannot open " + json_path);
    }
    toast::bench::JsonWriter w(out);
    w.obj_open();
    w.kv("schema", "toastcase-bench-plan-v1");
    w.kv("benchmark", "plan");
    w.arr_open("direct");
    for (const auto& row : direct) {
      w.obj_open();
      w.kv("name", row.name);
      w.kv("plan_runtime_s", row.plan.runtime);
      w.kv("interpreter_runtime_s", row.interp.runtime);
      w.kv("runtime_equal", row.runtime_equal);
      w.kv("timelog_equal", row.log_equal);
      w.kv("products_equal", row.products_equal);
      w.obj_close();
    }
    w.arr_close();
    w.arr_open("jobs");
    for (const auto& row : jobs) {
      w.obj_open();
      w.kv("name", row.name);
      w.kv("interpreter_runtime_s", row.interp.runtime);
      w.kv("sync_runtime_s", row.sync.runtime);
      w.kv("prefetch_runtime_s", row.prefetch.runtime);
      w.kv("sync_equal", row.sync_equal);
      w.kv("prefetch_speedup", row.sync.runtime / row.prefetch.runtime);
      w.obj_open("plan_counters");
      for (const auto& [key, value] : row.prefetch.plan_counters) {
        w.kv(key, value);
      }
      w.obj_close();
      w.obj_close();
    }
    w.arr_close();
    w.obj_close();
    out << "\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!dump_plan_path.empty()) {
    auto data = make_data(1);
    core::ExecConfig cfg;
    cfg.backend = Backend::kOmpTarget;
    core::ExecContext ctx(cfg);
    sim::WorkflowConfig wf;
    wf.nside = 32;
    wf.map_iterations = 2;
    auto pipeline = sim::make_benchmark_pipeline(wf);
    core::PlanOptions popt;
    popt.prefetch = true;
    popt.evict = true;
    pipeline.set_plan_options(popt);
    const auto plan = pipeline.plan_for(data.observations.front(), ctx);
    std::ofstream out(dump_plan_path);
    if (!out) {
      throw std::runtime_error("cannot open " + dump_plan_path);
    }
    plan->write_json(out);
    std::printf("wrote %s\n", dump_plan_path.c_str());
  }

  bool ok = true;
  for (const auto& row : direct) {
    ok = ok && row.runtime_equal && row.log_equal && row.products_equal;
  }
  for (const auto& row : jobs) {
    ok = ok && row.sync_equal;
  }
  if (!ok) {
    std::fprintf(stderr, "plan/interpreter mismatch (see table above)\n");
    return 1;
  }
  return 0;
}
