// Chaos benchmark: exercise the deterministic fault-injection layer end
// to end and assert its three contract invariants per backend:
//
//   1. zero-fault: running under an *empty* fault plan is bit-for-bit
//      identical to running with no plan at all (every hook disarmed),
//   2. determinism: the same plan + seed run twice yields identical
//      runtimes AND identical fault counters,
//   3. recovery: a plan with persistent kernel-launch faults still
//      completes — every kernel degrades to its CPU implementation and
//      the fallbacks are visible in the counters.
//
// --json <path>: machine-readable results (schema toastcase-bench-faults-v1;
//   scripts/check_bench.py --faults asserts the invariants held).
// --faults <plan>: replace the built-in chaos plan with one from a file.

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "mpisim/job.hpp"

using toast::bench_model::tiny_problem;
using toast::core::Backend;
using toast::fault::FaultKind;
using toast::fault::FaultPlan;
using toast::fault::FaultRule;
using toast::mpisim::JobConfig;
using toast::mpisim::JobResult;
using toast::mpisim::run_benchmark_job;

namespace {

/// A little of everything: transient transfers and launches, one
/// straggling stream op, memory pressure on the omptarget pool, and a
/// bounded number of rank deaths.
FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.seed = 20230923;
  plan.rules = {
      FaultRule{FaultKind::kTransfer, "", 0.05},
      FaultRule{FaultKind::kLaunch, "", 0.05},
      FaultRule{FaultKind::kStraggler, "", 0.10, -1, 3.0},
      FaultRule{FaultKind::kDeviceOom, "omptarget_pool", 0.25},
      FaultRule{FaultKind::kRankFailure, "", 0.35, 2},
  };
  return plan;
}

/// Every launch fails until the retry budget is spent: the run can only
/// complete through the pipeline's CPU fallback (transfers still work,
/// so device-resident data comes back for the host re-runs).
FaultPlan persistent_launch_plan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.rules = {FaultRule{FaultKind::kLaunch, "", 1.0}};
  return plan;
}

JobResult run(Backend backend, const FaultPlan& plan) {
  JobConfig cfg;
  cfg.problem = tiny_problem();
  cfg.schedule.set_backend(backend);
  cfg.fault_plan = plan;
  return run_benchmark_job(cfg);
}

double counter(const JobResult& r, const std::string& key) {
  const auto it = r.fault_counters.find(key);
  return it == r.fault_counters.end() ? 0.0 : it->second;
}

struct Row {
  std::string label;
  Backend backend = Backend::kCpu;
  bool accel = false;
  double baseline_runtime = 0.0;
  bool zero_fault_identical = false;
  double chaos_runtime = 0.0;
  bool chaos_deterministic = false;
  JobResult chaos;
  // Accelerated backends only: the persistent-launch recovery run.
  double fallback_runtime = 0.0;
  bool fallback_completed = false;
  JobResult fallback;
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-faults-v1");
  w.kv("benchmark", "faults");
  w.arr_open("backends");
  const auto emit_counters = [&w](const char* key, const JobResult& r) {
    w.obj_open(key);
    for (const auto& [name, value] : r.fault_counters) {
      w.kv(name, value);
    }
    w.obj_close();
  };
  for (const auto& row : rows) {
    w.obj_open();
    w.kv("name", row.label);
    w.kv("baseline_runtime_s", row.baseline_runtime);
    w.kv("zero_fault_identical", row.zero_fault_identical);
    w.kv("chaos_runtime_s", row.chaos_runtime);
    w.kv("chaos_deterministic", row.chaos_deterministic);
    emit_counters("fault_counters", row.chaos);
    if (row.accel) {
      w.kv("fallback_runtime_s", row.fallback_runtime);
      w.kv("fallback_completed", row.fallback_completed);
      emit_counters("fallback_counters", row.fallback);
      w.arr_open("degraded_kernels");
      for (const auto& kernel : row.fallback.degraded_kernels) {
        w.value(kernel);
      }
      w.arr_close();
    }
    w.obj_close();
  }
  w.arr_close();
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Fault injection: zero-fault identity, chaos determinism, recovery");

  FaultPlan chaos = chaos_plan();
  if (!opt.faults_path.empty()) {
    chaos = FaultPlan::load_file(opt.faults_path);
    std::printf("chaos plan: %s (%zu rule%s, seed %llu)\n",
                opt.faults_path.c_str(), chaos.rules.size(),
                chaos.rules.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(chaos.seed));
  }

  std::vector<Row> rows;
  for (const auto& [label, backend] :
       {std::pair{"cpu", Backend::kCpu}, std::pair{"jax", Backend::kJax},
        std::pair{"omp", Backend::kOmpTarget}}) {
    Row row;
    row.label = label;
    row.backend = backend;
    row.accel = toast::core::is_accel(backend);

    const JobResult base = run(backend, FaultPlan{});
    const JobResult zero = run(backend, FaultPlan{});
    const JobResult chaos_a = run(backend, chaos);
    const JobResult chaos_b = run(backend, chaos);
    row.baseline_runtime = base.runtime;
    // Bitwise comparison on purpose: the zero-fault guarantee is "the
    // fault layer does not perturb a single double", not "close".
    row.zero_fault_identical =
        base.runtime == zero.runtime && zero.fault_counters.empty();
    row.chaos_runtime = chaos_a.runtime;
    row.chaos_deterministic =
        chaos_a.runtime == chaos_b.runtime &&
        chaos_a.fault_counters == chaos_b.fault_counters &&
        chaos_a.degraded_kernels == chaos_b.degraded_kernels;
    row.chaos = chaos_a;

    if (row.accel) {
      row.fallback = run(backend, persistent_launch_plan());
      row.fallback_runtime = row.fallback.runtime;
      row.fallback_completed =
          !row.fallback.oom && row.fallback.runtime > 0.0 &&
          counter(row.fallback, "fault_fallbacks") > 0.0;
    }
    rows.push_back(std::move(row));
  }

  std::printf("%-6s %12s %12s %6s %6s %9s %9s %9s\n", "impl", "baseline",
              "chaos", "zero", "det", "retries", "fallbk", "ranks");
  std::printf("------------------------------------------------------------"
              "--------------\n");
  for (const auto& row : rows) {
    const double retries = counter(row.chaos, "fault_transfer_retries") +
                           counter(row.chaos, "fault_launch_retries") +
                           counter(row.chaos, "fault_oom_retries");
    std::printf("%-6s %12s %12s %6s %6s %9.0f %9.0f %9.0f\n",
                row.label.c_str(),
                toast::bench::fmt_seconds(row.baseline_runtime).c_str(),
                toast::bench::fmt_seconds(row.chaos_runtime).c_str(),
                row.zero_fault_identical ? "ok" : "FAIL",
                row.chaos_deterministic ? "ok" : "FAIL", retries,
                counter(row.chaos, "fault_fallbacks"),
                counter(row.chaos, "fault_rank_failures"));
  }
  for (const auto& row : rows) {
    if (row.accel) {
      std::printf(
          "%s under persistent launch faults: %s (%s, %.0f kernels "
          "degraded)\n",
          row.label.c_str(),
          row.fallback_completed ? "completed via CPU fallback" : "FAILED",
          toast::bench::fmt_seconds(row.fallback_runtime).c_str(),
          static_cast<double>(row.fallback.degraded_kernels.size()));
    }
  }

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, rows);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }

  for (const auto& row : rows) {
    if (!row.zero_fault_identical || !row.chaos_deterministic ||
        (row.accel && !row.fallback_completed)) {
      std::fprintf(stderr, "bench_faults: invariant violated for %s\n",
                   row.label.c_str());
      return 1;
    }
  }
  return 0;
}
