// Figure 4: runtime of the medium problem (5e9 samples, 1 node, 4 GPUs)
// as a function of the number of processes, with threads-per-process
// scaled so total CPU resources stay constant (64 cores).
//
// Paper findings to reproduce (shape, not absolute seconds):
//   - the CPU runtime keeps falling as processes increase (serial work is
//     parallelized by adding processes);
//   - JAX cannot run with 1 or 64 processes (GPU / host memory);
//   - the OpenMP-target port fits with 1 process but not 64;
//   - both GPU ports peak at 8 processes (2 per GPU: oversubscription),
//     JAX at ~2.4x and OpenMP-target ~20% faster, ~2.9x;
//   - speedups decline at 16 and 32 processes.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using toast::bench_model::medium_problem;
using toast::core::Backend;
using toast::mpisim::JobConfig;
using toast::mpisim::run_benchmark_job;

int main() {
  toast::bench::print_header(
      "Figure 4: runtime vs number of processes (medium, 1 node)");
  std::printf("%6s %8s | %14s | %14s %8s | %14s %8s\n", "procs", "threads",
              "cpu", "jax", "x cpu", "omp-target", "x cpu");
  std::printf("---------------------------------------------------------------"
              "---------\n");

  for (const int procs : {1, 2, 4, 8, 16, 32, 64}) {
    auto problem = medium_problem();
    problem.procs_per_node = procs;

    JobConfig cpu_cfg{problem, Backend::kCpu};
    const auto cpu = run_benchmark_job(cpu_cfg);

    JobConfig jax_cfg{problem, Backend::kJax};
    const auto jax = run_benchmark_job(jax_cfg);

    JobConfig omp_cfg{problem, Backend::kOmpTarget};
    const auto omp = run_benchmark_job(omp_cfg);

    auto cell = [&](const toast::mpisim::JobResult& r) {
      return r.oom ? std::string("OOM") : toast::bench::fmt_seconds(r.runtime);
    };
    auto speedup = [&](const toast::mpisim::JobResult& r) {
      return r.oom ? std::string("-")
                   : [&] {
                       char buf[32];
                       std::snprintf(buf, sizeof(buf), "%.2fx",
                                     cpu.runtime / r.runtime);
                       return std::string(buf);
                     }();
    };
    std::printf("%6d %8d | %14s | %14s %8s | %14s %8s\n", procs,
                problem.threads_per_proc(), cell(cpu).c_str(),
                cell(jax).c_str(), speedup(jax).c_str(), cell(omp).c_str(),
                speedup(omp).c_str());
  }

  std::printf(
      "\npaper: jax peaks 2.4x @8 procs (2.3x @16, 2.0x @32), OOM @1 and "
      "@64;\n"
      "       omp-target ~20%% faster than jax: 2.9x @8, 2.7x @16, 2.3x "
      "@32,\n"
      "       fits @1 process, OOM @64; cpu falls with process count.\n");
  return 0;
}
