// Figure 4: runtime of the medium problem (5e9 samples, 1 node, 4 GPUs)
// as a function of the number of processes, with threads-per-process
// scaled so total CPU resources stay constant (64 cores).
//
// Paper findings to reproduce (shape, not absolute seconds):
//   - the CPU runtime keeps falling as processes increase (serial work is
//     parallelized by adding processes);
//   - JAX cannot run with 1 or 64 processes (GPU / host memory);
//   - the OpenMP-target port fits with 1 process but not 64;
//   - both GPU ports peak at 8 processes (2 per GPU: oversubscription),
//     JAX at ~2.4x and OpenMP-target ~20% faster, ~2.9x;
//   - speedups decline at 16 and 32 processes.
//
// --json <path>: machine-readable sweep (schema toastcase-bench-fig4-v1)
// for scripts/check_bench.py.  --trace <path>: Chrome trace of the
// 8-process representative ranks (path suffixed per backend).
// --schedule <file>: start every point from a toastcase-schedule-v1
// config (the backend slot is re-pinned per column).  --tuned: run the
// schedule autotuner at the paper's peak point (8 processes) and report
// tuned-vs-hand runtimes per backend.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "config/schedule.hpp"
#include "mpisim/job.hpp"
#include "obs/export.hpp"
#include "tune/tuner.hpp"

using toast::bench_model::medium_problem;
using toast::core::Backend;
using toast::mpisim::JobConfig;
using toast::mpisim::JobResult;
using toast::mpisim::run_benchmark_job;

namespace {

/// Autotuner result for one (point, backend) cell (--tuned only).
struct TunedCell {
  bool ran = false;
  bool feasible = false;
  double runtime = 0.0;
  bool not_worse = false;
  std::string config_hash;
  int evaluations = 0;
};

struct SweepPoint {
  int procs = 0;
  int threads = 0;
  JobResult cpu;
  JobResult jax;
  JobResult omp;
  TunedCell tuned_cpu;
  TunedCell tuned_jax;
  TunedCell tuned_omp;
};

void write_json(const std::string& path,
                const std::vector<SweepPoint>& sweep) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-fig4-v1");
  w.kv("benchmark", "fig4_proc_sweep");
  w.arr_open("points");
  for (const auto& pt : sweep) {
    w.obj_open();
    w.kv("procs", pt.procs);
    w.kv("threads", pt.threads);
    auto backend = [&](const char* name, const JobResult& r,
                       const TunedCell& tuned) {
      w.obj_open(name);
      w.kv("oom", r.oom);
      if (r.oom) {
        w.kv("oom_reason", r.oom_reason);
      } else {
        w.kv("runtime_s", r.runtime);
        w.kv("host_s", r.host_seconds);
        w.kv("device_s", r.device_seconds);
        w.kv("transfer_s", r.transfer_seconds);
        w.kv("comm_s", r.comm_seconds);
      }
      if (tuned.ran && tuned.feasible) {
        w.kv("tuned_runtime_s", tuned.runtime);
        w.kv("tuned_not_worse", tuned.not_worse);
        w.kv("tuned_config_hash", tuned.config_hash);
        w.kv("tuned_evaluations", tuned.evaluations);
      }
      w.obj_close();
    };
    backend("cpu", pt.cpu, pt.tuned_cpu);
    backend("jax", pt.jax, pt.tuned_jax);
    backend("omp", pt.omp, pt.tuned_omp);
    w.obj_close();
  }
  w.arr_close();
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Figure 4: runtime vs number of processes (medium, 1 node)");
  std::printf("%6s %8s | %14s | %14s %8s | %14s %8s\n", "procs", "threads",
              "cpu", "jax", "x cpu", "omp-target", "x cpu");
  std::printf("---------------------------------------------------------------"
              "---------\n");

  toast::config::ScheduleConfig base_schedule;
  if (!opt.schedule_path.empty()) {
    base_schedule =
        toast::config::ScheduleConfig::load_file(opt.schedule_path);
    std::printf("schedule: %s (hash %s)\n", opt.schedule_path.c_str(),
                base_schedule.hash_hex().c_str());
  }
  auto make_cfg = [&](const toast::bench_model::ProblemSize& problem,
                      Backend b) {
    JobConfig cfg{problem, b};
    if (!opt.schedule_path.empty()) {
      cfg.schedule = base_schedule;
      cfg.schedule.set_backend(b);
    }
    return cfg;
  };
  auto tune_cell = [&](const JobConfig& cfg, const JobResult& hand) {
    TunedCell cell;
    cell.ran = true;
    const auto report =
        toast::tune::tune_job(cfg, toast::tune::SearchSpace::full());
    cell.feasible = std::isfinite(report.best_runtime);
    cell.runtime = report.best_runtime;
    cell.not_worse = hand.oom || report.best_runtime <= hand.runtime;
    cell.config_hash = report.best.hash_hex();
    cell.evaluations = report.evaluations;
    return cell;
  };

  std::vector<SweepPoint> sweep;
  for (const int procs : {1, 2, 4, 8, 16, 32, 64}) {
    auto problem = medium_problem();
    problem.procs_per_node = procs;

    SweepPoint pt;
    pt.procs = procs;
    pt.threads = problem.threads_per_proc();

    const JobConfig cpu_cfg = make_cfg(problem, Backend::kCpu);
    pt.cpu = run_benchmark_job(cpu_cfg);

    const JobConfig jax_cfg = make_cfg(problem, Backend::kJax);
    pt.jax = run_benchmark_job(jax_cfg);

    const JobConfig omp_cfg = make_cfg(problem, Backend::kOmpTarget);
    pt.omp = run_benchmark_job(omp_cfg);

    if (opt.tuned && procs == 8) {
      pt.tuned_cpu = tune_cell(cpu_cfg, pt.cpu);
      pt.tuned_jax = tune_cell(jax_cfg, pt.jax);
      pt.tuned_omp = tune_cell(omp_cfg, pt.omp);
      auto tuned_str = [](const TunedCell& c) {
        return c.feasible ? toast::bench::fmt_seconds(c.runtime)
                          : std::string("OOM");
      };
      std::printf("%6s %8s | %14s | %14s %8s | %14s %8s  (tuned)\n", "", "",
                  tuned_str(pt.tuned_cpu).c_str(),
                  tuned_str(pt.tuned_jax).c_str(), "",
                  tuned_str(pt.tuned_omp).c_str(), "");
    }

    auto cell = [&](const JobResult& r) {
      return r.oom ? std::string("OOM") : toast::bench::fmt_seconds(r.runtime);
    };
    auto speedup = [&](const JobResult& r) {
      return r.oom ? std::string("-")
                   : [&] {
                       char buf[32];
                       std::snprintf(buf, sizeof(buf), "%.2fx",
                                     pt.cpu.runtime / r.runtime);
                       return std::string(buf);
                     }();
    };
    std::printf("%6d %8d | %14s | %14s %8s | %14s %8s\n", procs, pt.threads,
                cell(pt.cpu).c_str(), cell(pt.jax).c_str(),
                speedup(pt.jax).c_str(), cell(pt.omp).c_str(),
                speedup(pt.omp).c_str());
    sweep.push_back(std::move(pt));
  }

  std::printf(
      "\npaper: jax peaks 2.4x @8 procs (2.3x @16, 2.0x @32), OOM @1 and "
      "@64;\n"
      "       omp-target ~20%% faster than jax: 2.9x @8, 2.7x @16, 2.3x "
      "@32,\n"
      "       fits @1 process, OOM @64; cpu falls with process count.\n");

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, sweep);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    for (const auto& pt : sweep) {
      if (pt.procs != 8) {
        continue;
      }
      const std::pair<const char*, const JobResult*> runs[] = {
          {"cpu", &pt.cpu}, {"jax", &pt.jax}, {"omp", &pt.omp}};
      for (const auto& [tag, r] : runs) {
        if (r->oom) {
          continue;
        }
        const std::string path =
            toast::bench::suffixed_path(opt.trace_path, tag);
        toast::obs::write_chrome_trace_file(r->rank_spans, path,
                                            std::string("fig4-rank-") + tag);
        std::printf("wrote %s\n", path.c_str());
      }
    }
  }
  return 0;
}
