// Resilience policy engine bench (schema toastcase-bench-resilience-v1).
//
// Five sections, every one an invariant the policy engine must hold:
//   - "identity": a pinned rank-failure chaos solve run with no policy
//     and again with a parsed-but-empty policy document.  The disarmed
//     manager must be pass-through: identical virtual runtime, science
//     products and fault counters, bit for bit.
//   - "breaker": a launch-fault site behind a circuit breaker.  Reports
//     the open/half-open/close/fast-fail counts and asserts a same-seed
//     repeat is bitwise identical (the breaker's jittered cool-down is
//     drawn from the deterministic fault RNG).
//   - "shrink": the destriper CG under a pinned rank-death plan with an
//     elastic policy (--faults/--policy override the built-in pair; CI
//     passes bench/faultplans/elastic_rank_death.json +
//     policy_elastic.json).  The exhausted restore budget drops a rank,
//     the CG restarts from checkpoint on the shrunken world, and the
//     amplitudes must match the no-fault solve exactly (the collectives
//     are cost-only).  Run twice: shrink decisions must repeat bitwise.
//   - "job_shrink": the mpisim benchmark job under unbounded rank death;
//     the world shrinks to the policy floor and the dead ranks'
//     observations are redistributed deterministically.
//   - "degraded": the same chaos solve with a solver_comm degradation
//     ladder that walks overlap -> sync -> staged; the products must
//     stay equal to the clean solve while the ladder escalates.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "obs/export.hpp"
#include "mpisim/job.hpp"
#include "resilience/manager.hpp"
#include "resilience/policy.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"
#include "solver/destriper.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
namespace fault = toast::fault;
namespace resilience = toast::resilience;
using core::Backend;
using toast::solver::AsyncComm;
using toast::solver::Destriper;
using toast::solver::DestriperConfig;

namespace {

// Same scenario as bench_async's solver section: pinned seed, fixed
// iteration count so the comm schedule (and any shrink point) is stable.
struct Scenario {
  core::Observation ob;
  DestriperConfig cfg;
};

Scenario make_scenario(std::uint64_t seed = 11) {
  DestriperConfig cfg;
  cfg.nside = 16;
  cfg.step_length = 128;
  cfg.max_iterations = 12;
  cfg.tolerance = 0.0;
  cfg.comm_ranks = 64;
  cfg.comm_ranks_per_node = 4;

  const auto fp = sim::hex_focalplane(4, 37.0, 10.0, 50e-6);
  sim::ScanParams scan;
  scan.spin_period = 60.0;
  Scenario s{sim::simulate_satellite("destripe", fp, 8192, scan, seed), cfg};

  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  sim::WorkflowConfig wf;
  wf.nside = cfg.nside;
  core::Data data;
  data.observations.push_back(std::move(s.ob));
  sim::make_scan_pipeline(wf).exec(data, ctx);
  s.ob = std::move(data.observations[0]);

  const std::int64_t n_det = s.ob.n_detectors();
  const std::int64_t n_samp = s.ob.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + cfg.step_length - 1) / cfg.step_length;
  std::mt19937 gen(static_cast<unsigned>(seed));
  std::normal_distribution<double> off(0.0, 1e-4);
  std::normal_distribution<double> white(0.0, 1e-7);
  std::vector<double> injected(static_cast<std::size_t>(n_det * n_amp_det));
  for (auto& v : injected) v = off(gen);
  auto signal = s.ob.field(core::fields::kSignal).f64();
  for (std::int64_t d = 0; d < n_det; ++d) {
    for (std::int64_t t = 0; t < n_samp; ++t) {
      signal[static_cast<std::size_t>(d * n_samp + t)] +=
          injected[static_cast<std::size_t>(d * n_amp_det +
                                            t / cfg.step_length)] +
          white(gen);
    }
  }
  return s;
}

struct SolveResult {
  double runtime = 0.0;
  std::vector<double> amplitudes;
  std::vector<double> residuals;
  std::map<std::string, double> fault_counters;
  std::map<std::string, double> resilience_counters;
  std::vector<toast::obs::Span> spans;
};

SolveResult run_solve(AsyncComm mode, const fault::FaultPlan& fplan,
                      const resilience::Policy& policy) {
  auto sc = make_scenario();
  sc.cfg.async_comm = mode;
  core::ExecConfig ec;
  ec.fault_plan = fplan;
  ec.resilience_policy = policy;
  core::ExecContext ctx(ec);
  const double t0 = ctx.clock().now();
  Destriper destriper(sc.cfg);
  const auto r = destriper.solve(sc.ob, ctx, Backend::kCpu);
  SolveResult out;
  out.runtime = ctx.clock().now() - t0;
  out.amplitudes = r.amplitudes;
  out.residuals = r.residuals;
  out.fault_counters = ctx.faults().counters();
  out.resilience_counters = ctx.resilience().counters();
  out.spans = ctx.tracer().spans();
  return out;
}

bool solves_equal(const SolveResult& a, const SolveResult& b) {
  return a.runtime == b.runtime && a.amplitudes == b.amplitudes &&
         a.residuals == b.residuals;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

double counter(const std::map<std::string, double>& c,
               const std::string& key) {
  const auto it = c.find(key);
  return it == c.end() ? 0.0 : it->second;
}

fault::FaultPlan builtin_elastic_plan() {
  fault::FaultPlan p;
  p.seed = 2027;
  p.retry.max_attempts = 1;
  fault::FaultRule r;
  r.kind = fault::FaultKind::kRankFailure;
  r.site = "destriper_cg";
  r.probability = 1.0;
  r.max_fires = 3;
  p.rules.push_back(r);
  return p;
}

resilience::Policy builtin_elastic_policy() {
  resilience::Policy p;
  resilience::SitePolicy sp;
  sp.site = "destriper_cg";
  sp.has_retry = true;
  sp.retry.max_attempts = 1;
  p.sites.push_back(sp);
  p.elastic.enabled = true;
  p.elastic.min_ranks = 2;
  p.elastic.rebuild_seconds = 1e-3;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Resilience policy engine: identity, breakers, elastic recovery");

  fault::FaultPlan elastic_plan = builtin_elastic_plan();
  if (!opt.faults_path.empty()) {
    elastic_plan = fault::FaultPlan::load_file(opt.faults_path);
  }
  resilience::Policy elastic_policy = builtin_elastic_policy();
  if (!opt.policy_path.empty()) {
    elastic_policy = resilience::Policy::load_file(opt.policy_path);
  }

  // --- identity: a disarmed manager is pass-through -------------------------
  fault::FaultPlan chaos;
  chaos.seed = 17;
  {
    fault::FaultRule r;
    r.kind = fault::FaultKind::kRankFailure;
    r.site = "destriper_cg";
    r.probability = 0.25;
    r.max_fires = 2;
    chaos.rules.push_back(r);
  }
  const resilience::Policy empty_policy = resilience::Policy::parse(
      R"({"schema": "toastcase-resilience-policy-v1"})");
  const auto id_none = run_solve(AsyncComm::kStaged, chaos, {});
  const auto id_empty = run_solve(AsyncComm::kStaged, chaos, empty_policy);
  const bool identity_ok = solves_equal(id_none, id_empty) &&
                           id_none.fault_counters == id_empty.fault_counters &&
                           id_empty.resilience_counters.empty();
  std::printf("identity: no-policy %.7e  empty-policy %.7e  %s\n",
              id_none.runtime, id_empty.runtime,
              identity_ok ? "[bitwise]" : "[IDENTITY MISMATCH]");

  // --- breaker: deterministic state machine ---------------------------------
  auto run_breaker = [&]() {
    fault::FaultPlan plan;
    plan.seed = 20270809;
    fault::FaultRule r;
    r.kind = fault::FaultKind::kTransfer;
    r.probability = 0.6;
    plan.rules.push_back(r);
    plan.retry.max_attempts = 2;

    resilience::Policy policy;
    resilience::SitePolicy sp;
    sp.breaker.open_after = 2;
    sp.breaker.open_seconds = 1e-3;
    sp.breaker.close_after = 1;
    sp.breaker.jitter = 0.5;
    policy.sites.push_back(sp);

    toast::accel::VirtualClock clock;
    toast::obs::Tracer tracer(&clock);
    resilience::Manager m(policy, &clock, &tracer, plan.seed);
    fault::FaultInjector inj(plan, &clock, &tracer);
    inj.set_resilience(&m);
    for (int i = 0; i < 200; ++i) {
      try {
        inj.attempt_sync(fault::FaultKind::kTransfer, "accel_update", 1e-4);
      } catch (const fault::PersistentFaultError&) {
      }
      clock.advance(2e-4);
    }
    return std::make_pair(clock.now(), m.counters());
  };
  const auto breaker_a = run_breaker();
  const auto breaker_b = run_breaker();
  const bool breaker_ok = breaker_a == breaker_b &&
                          counter(breaker_a.second,
                                  "resilience_breaker_opens") > 0.0;
  std::printf("breaker:  opens %.0f  half-opens %.0f  closes %.0f  "
              "fast-fails %.0f  %s\n",
              counter(breaker_a.second, "resilience_breaker_opens"),
              counter(breaker_a.second, "resilience_breaker_half_opens"),
              counter(breaker_a.second, "resilience_breaker_closes"),
              counter(breaker_a.second, "resilience_breaker_fast_fails"),
              breaker_ok ? "[bitwise]" : "[BREAKER MISMATCH]");

  // --- shrink: elastic destriper recovery -----------------------------------
  const auto clean = run_solve(AsyncComm::kStaged, {}, {});
  const auto shrink_a =
      run_solve(AsyncComm::kStaged, elastic_plan, elastic_policy);
  const auto shrink_b =
      run_solve(AsyncComm::kStaged, elastic_plan, elastic_policy);
  const double shrinks =
      counter(shrink_a.resilience_counters, "resilience_world_shrinks");
  const double amp_diff = max_abs_diff(clean.amplitudes, shrink_a.amplitudes);
  const bool shrink_deterministic =
      solves_equal(shrink_a, shrink_b) &&
      shrink_a.fault_counters == shrink_b.fault_counters &&
      shrink_a.resilience_counters == shrink_b.resilience_counters;
  const bool shrink_ok =
      shrink_deterministic && shrinks > 0.0 && amp_diff == 0.0 &&
      shrink_a.runtime > clean.runtime;
  std::printf("shrink:   world shrinks %.0f  restores %.0f  amp |d| %.1e  "
              "runtime %.7e (clean %.7e)  %s\n",
              shrinks,
              counter(shrink_a.fault_counters, "fault_checkpoint_restores"),
              amp_diff, shrink_a.runtime, clean.runtime,
              shrink_ok ? "[ok]" : "[SHRINK MISMATCH]");

  // --- job_shrink: elastic mpisim job ---------------------------------------
  auto run_job = [&](const fault::FaultPlan& plan,
                     const resilience::Policy& policy) {
    toast::mpisim::JobConfig cfg;
    cfg.problem = toast::bench_model::tiny_problem();
    cfg.problem.nodes = 2;
    cfg.problem.procs_per_node = 2;
    cfg.schedule.set_backend(Backend::kCpu);
    cfg.fault_plan = plan;
    cfg.resilience_policy = policy;
    return toast::mpisim::run_benchmark_job(cfg);
  };
  fault::FaultPlan job_plan;
  job_plan.seed = 31;
  job_plan.retry.max_attempts = 2;
  {
    fault::FaultRule r;
    r.kind = fault::FaultKind::kRankFailure;
    r.site = "mpisim_rank";
    r.probability = 1.0;
    job_plan.rules.push_back(r);
  }
  resilience::Policy job_policy;
  job_policy.elastic.enabled = true;
  job_policy.elastic.min_ranks = 1;
  const auto job_clean = run_job({}, {});
  const auto job_a = run_job(job_plan, job_policy);
  const auto job_b = run_job(job_plan, job_policy);
  const bool job_ok =
      job_a.world_ranks < job_clean.world_ranks && job_a.world_ranks >= 1 &&
      counter(job_a.fault_counters, "resilience_world_shrinks") > 0.0 &&
      job_a.runtime == job_b.runtime &&
      job_a.world_ranks == job_b.world_ranks &&
      job_a.fault_counters == job_b.fault_counters;
  std::printf("job:      world %d -> %d  redistributed obs %.0f  "
              "runtime %.7e  %s\n",
              job_clean.world_ranks, job_a.world_ranks,
              counter(job_a.fault_counters, "resilience_redistributed_obs"),
              job_a.runtime, job_ok ? "[ok]" : "[JOB MISMATCH]");

  // --- degraded: solver_comm ladder under chaos -----------------------------
  fault::FaultPlan ladder_plan;
  ladder_plan.seed = 53;
  ladder_plan.retry.max_attempts = 3;
  {
    fault::FaultRule r;
    r.kind = fault::FaultKind::kRankFailure;
    r.site = "destriper_cg";
    r.probability = 0.6;
    r.max_fires = 4;
    ladder_plan.rules.push_back(r);
  }
  resilience::Policy ladder_policy;
  ladder_policy.ladders.push_back(
      resilience::LadderSpec{"solver_comm", 1, 2});
  const auto degraded =
      run_solve(AsyncComm::kOverlap, ladder_plan, ladder_policy);
  const auto clean_overlap = run_solve(AsyncComm::kOverlap, {}, {});
  const double escalations =
      counter(degraded.resilience_counters, "resilience_degrades");
  const double deg_diff =
      max_abs_diff(clean_overlap.amplitudes, degraded.amplitudes);
  const bool degraded_ok = escalations > 0.0 && deg_diff == 0.0;
  std::printf("degraded: ladder escalations %.0f  amp |d| %.1e  "
              "runtime %.7e  %s\n",
              escalations, deg_diff, degraded.runtime,
              degraded_ok ? "[ok]" : "[DEGRADED MISMATCH]");

  if (!opt.trace_path.empty()) {
    // Metrics view of the elastic shrink run: `toast-trace faults`
    // prints its fault_* and resilience_* rows plus the recovery
    // summary (requeues, breakers, ladder escalations, world shrinks).
    toast::obs::write_metrics_json_file(shrink_a.spans, opt.trace_path,
                                        {{"benchmark", "resilience"},
                                         {"section", "shrink"}});
    std::printf("wrote %s\n", opt.trace_path.c_str());
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      throw std::runtime_error("cannot open " + opt.json_path);
    }
    toast::bench::JsonWriter w(out);
    w.obj_open();
    w.kv("schema", "toastcase-bench-resilience-v1");
    w.kv("benchmark", "resilience");
    w.obj_open("identity");
    w.kv("no_policy_runtime_s", id_none.runtime);
    w.kv("empty_policy_runtime_s", id_empty.runtime);
    w.kv("bitwise_equal", identity_ok);
    w.obj_close();
    w.obj_open("breaker");
    w.kv("opens", counter(breaker_a.second, "resilience_breaker_opens"));
    w.kv("half_opens",
         counter(breaker_a.second, "resilience_breaker_half_opens"));
    w.kv("closes", counter(breaker_a.second, "resilience_breaker_closes"));
    w.kv("fast_fails",
         counter(breaker_a.second, "resilience_breaker_fast_fails"));
    w.kv("deterministic", breaker_ok);
    w.obj_close();
    w.obj_open("shrink");
    w.kv("clean_runtime_s", clean.runtime);
    w.kv("chaos_runtime_s", shrink_a.runtime);
    w.kv("world_shrinks", shrinks);
    w.kv("checkpoint_restores",
         counter(shrink_a.fault_counters, "fault_checkpoint_restores"));
    w.kv("task_requeues",
         counter(shrink_a.resilience_counters, "resilience_task_requeues"));
    w.kv("amplitude_max_abs_diff", amp_diff);
    w.kv("amplitudes_match", amp_diff == 0.0);
    w.kv("deterministic", shrink_deterministic);
    w.obj_close();
    w.obj_open("job_shrink");
    w.kv("total_ranks", job_clean.world_ranks);
    w.kv("final_ranks", job_a.world_ranks);
    w.kv("world_shrinks",
         counter(job_a.fault_counters, "resilience_world_shrinks"));
    w.kv("redistributed_obs",
         counter(job_a.fault_counters, "resilience_redistributed_obs"));
    w.kv("clean_runtime_s", job_clean.runtime);
    w.kv("chaos_runtime_s", job_a.runtime);
    w.kv("deterministic", job_a.runtime == job_b.runtime &&
                              job_a.fault_counters == job_b.fault_counters);
    w.obj_close();
    w.obj_open("degraded");
    w.kv("escalations", escalations);
    w.kv("amplitude_max_abs_diff", deg_diff);
    w.kv("amplitudes_match", deg_diff == 0.0);
    w.kv("runtime_s", degraded.runtime);
    w.obj_close();
    w.obj_close();
    out << "\n";
    std::printf("\nwrote %s\n", opt.json_path.c_str());
  }

  if (!(identity_ok && breaker_ok && shrink_ok && job_ok && degraded_ok)) {
    std::fprintf(stderr, "resilience invariant violated (see above)\n");
    return 1;
  }
  return 0;
}
