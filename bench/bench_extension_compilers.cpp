// Extension (paper §5 future work): "Exploring different C++ compilers
// for building OpenMP Target Offload code could also be a fruitful object
// of study."
//
// The paper settled on NVIDIA NVC after finding Clang workable and GCC
// missing required target-offload features (§3.3).  We model the three
// toolchains as (dispatch overhead, kernel code-generation efficiency,
// offload feature support) triples and run the medium benchmark.

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using namespace toast;
using core::Backend;

namespace {

struct Toolchain {
  const char* name;
  bool supports_offload;
  double dispatch_overhead;  // OpenMP runtime submission cost
  double codegen_factor;     // kernel efficiency relative to NVC
  const char* note;
};

}  // namespace

int main() {
  toast::bench::print_header(
      "Extension: OpenMP-target compiler study (medium, 16 procs)");

  // Rough figures in line with published OpenMP-offload compiler
  // comparisons (Davis et al. 2021; Diaz et al. 2019), which the paper
  // cites for feature availability and runtime overhead.
  const Toolchain toolchains[] = {
      {"nvhpc (nvc)", true, 6.0e-6, 1.00,
       "the paper's choice on Perlmutter"},
      {"clang/llvm", true, 9.0e-6, 0.93,
       "good feature support, slightly slower codegen"},
      {"gcc", false, 0.0, 0.0,
       "misses required target features: kernels stay on the host"},
  };

  const auto problem = bench_model::medium_problem();
  const auto cpu = mpisim::run_benchmark_job({problem, Backend::kCpu});
  std::printf("cpu baseline: %s\n\n",
              toast::bench::fmt_seconds(cpu.runtime).c_str());
  std::printf("%-14s | %14s %8s | %s\n", "compiler", "omp-target", "x cpu",
              "notes");
  std::printf("----------------------------------------------------------------"
              "----\n");
  for (const auto& tc : toolchains) {
    if (!tc.supports_offload) {
      // The build succeeds but target regions run on the host: the
      // "port" performs exactly like the CPU baseline.
      std::printf("%-14s | %14s %7.2fx | %s\n", tc.name,
                  toast::bench::fmt_seconds(cpu.runtime).c_str(), 1.0,
                  tc.note);
      continue;
    }
    mpisim::JobConfig cfg{problem, Backend::kOmpTarget};
    cfg.omp_dispatch_overhead = tc.dispatch_overhead;
    cfg.device_spec = accel::a100_spec();
    cfg.device_spec.compute_efficiency *= tc.codegen_factor;
    cfg.device_spec.hbm_efficiency *= tc.codegen_factor;
    const auto r = mpisim::run_benchmark_job(cfg);
    std::printf("%-14s | %14s %7.2fx | %s\n", tc.name,
                toast::bench::fmt_seconds(r.runtime).c_str(),
                cpu.runtime / r.runtime, tc.note);
  }
  std::printf(
      "\npaper §3.3: GCC lacks the needed target features; LLVM and NVHPC\n"
      "support them well; NVC was chosen for Perlmutter.  End-to-end the\n"
      "compiler choice moves the needle far less than having offload at\n"
      "all - most of the runtime is host-side (Amdahl).\n");
  return 0;
}
