// Transfer/compute overlap: a chunked upload+kernel pipeline on the
// OpenMP-target runtime's stream engine, swept over 1..4 virtual streams.
//
// Each chunk is an async H2D upload followed by a nowait kernel on the
// same stream; chunks round-robin across streams.  Transfers serialize on
// the PCIe link and kernel bodies on the compute engine, so the only win
// streams can deliver is hiding one behind the other — which is exactly
// what the paper's ports could not do without explicit dependencies
// (§2.2.2).  With one stream the pipeline degenerates to the synchronous
// timeline, bit for bit; that equivalence and the speedup ordering are
// CI-checked (scripts/check_bench.py --overlap).
//
// --json <path>: schema toastcase-bench-overlap-v1.
// --trace <path>: Chrome trace of the widest (4-stream) run, one lane per
// stream (inspect with toast-trace lanes).

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "bench_util.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "omptarget/runtime.hpp"

using toast::accel::SimDevice;
using toast::accel::VirtualClock;
using toast::obs::Tracer;
using toast::omptarget::IterCost;
using toast::omptarget::LaunchOptions;
using toast::omptarget::Runtime;

namespace {

constexpr int kChunks = 8;
constexpr std::int64_t kItemsPerChunk = 1024;  // executed; x work_scale
constexpr double kWorkScale = 8192.0;          // 8 KiB buffers -> 64 MiB

/// One H2D + kernel pipeline over `n_streams` (0 = fully synchronous).
/// Returns the final virtual time; fills `tracer` if given.
double run_pipeline(int n_streams, Tracer* tracer_out) {
  SimDevice device;
  VirtualClock clock;
  Tracer tracer;
  Runtime rt(device, clock, tracer);
  rt.set_work_scale(kWorkScale);
  // Zero host dispatch so the 1-stream async pipeline is the synchronous
  // timeline bit for bit (dispatch is charged differently: inline for
  // sync launches, before submission for nowait ones).
  rt.set_dispatch_overhead(0.0);

  const IterCost cost{/*flops=*/80.0, /*bytes_read=*/240.0,
                      /*bytes_written=*/80.0};
  std::vector<std::vector<double>> chunks(
      kChunks, std::vector<double>(kItemsPerChunk, 1.0));
  for (auto& c : chunks) {
    rt.data_create(c.data(), c.size() * sizeof(double));
  }

  for (int i = 0; i < kChunks; ++i) {
    double* host = chunks[static_cast<std::size_t>(i)].data();
    if (n_streams == 0) {
      rt.data_update_device(host);
      rt.target_for("pipeline_kernel", kItemsPerChunk, cost,
                    [&](std::int64_t j) {
                      host[j] = host[j] * 2.0 + 1.0;
                      return true;
                    });
    } else {
      const toast::sched::StreamId s = i % n_streams;
      rt.data_update_device_async(host, s);
      LaunchOptions opts;
      opts.nowait = true;
      opts.stream = s;
      rt.target_for("pipeline_kernel", kItemsPerChunk, cost,
                    [&](std::int64_t j) {
                      host[j] = host[j] * 2.0 + 1.0;
                      return true;
                    },
                    opts);
    }
  }
  if (n_streams != 0) {
    rt.sync_all();
  }
  // One blocking readback of the last chunk (the pipeline's result).
  rt.data_update_host(chunks.back().data());

  if (tracer_out != nullptr) {
    *tracer_out = std::move(tracer);
  }
  return clock.now();
}

struct Point {
  int streams = 0;
  double runtime = 0.0;
};

void write_json(const std::string& path, double sync_runtime,
                const std::vector<Point>& points) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  toast::bench::JsonWriter w(out);
  w.obj_open();
  w.kv("schema", "toastcase-bench-overlap-v1");
  w.kv("benchmark", "overlap_pipeline");
  w.kv("chunks", kChunks);
  w.kv("sync_runtime_s", sync_runtime);
  w.arr_open("points");
  for (const auto& pt : points) {
    w.obj_open();
    w.kv("streams", pt.streams);
    w.kv("runtime_s", pt.runtime);
    w.kv("speedup_vs_sync", sync_runtime / pt.runtime);
    w.obj_close();
  }
  w.arr_close();
  w.obj_close();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = toast::bench::parse_options(argc, argv);
  toast::bench::print_header(
      "Overlap: chunked H2D+kernel pipeline, 1..4 virtual streams");

  const double sync_runtime = run_pipeline(0, nullptr);
  std::printf("%10s %14s %10s\n", "streams", "runtime", "speedup");
  std::printf("------------------------------------\n");
  std::printf("%10s %14s %10s\n", "sync",
              toast::bench::fmt_seconds(sync_runtime).c_str(), "1.00x");

  std::vector<Point> points;
  for (const int n : {1, 2, 4}) {
    Tracer tracer;
    const bool want_trace = !opt.trace_path.empty() && n == 4;
    const double runtime = run_pipeline(n, want_trace ? &tracer : nullptr);
    std::printf("%10d %14s %9.2fx\n", n,
                toast::bench::fmt_seconds(runtime).c_str(),
                sync_runtime / runtime);
    points.push_back({n, runtime});
    if (want_trace) {
      toast::obs::write_chrome_trace_file(tracer.spans(), opt.trace_path,
                                          "bench-overlap-4streams");
      std::printf("wrote %s\n", opt.trace_path.c_str());
    }
  }

  std::printf(
      "\n1 stream reproduces the synchronous timeline exactly; extra\n"
      "streams hide kernel time behind the PCIe link (and vice versa).\n");

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, sync_runtime, points);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
