// Substrate microbenchmarks (google-benchmark, real wall time): the
// building blocks every experiment rests on — FFT, HEALPix projections,
// quaternion math, counter RNG, and the mini-XLA trace/optimize/execute
// path.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "fft/fft.hpp"
#include "healpix/healpix.hpp"
#include "qarray/qarray.hpp"
#include "rng/rng.hpp"
#include "xla/jit.hpp"

using namespace toast;

static void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  std::mt19937 gen(1);
  std::normal_distribution<double> nd;
  for (auto& v : data) v = {nd(gen), nd(gen)};
  for (auto _ : state) {
    auto work = data;
    fft::fft_inplace(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftForward)->Range(1 << 8, 1 << 16);

static void BM_HealpixAng2Pix(benchmark::State& state) {
  const healpix::Healpix hp(state.range(0));
  std::mt19937 gen(2);
  std::uniform_real_distribution<double> uz(-1.0, 1.0);
  std::uniform_real_distribution<double> up(0.0, 6.28);
  std::vector<std::pair<double, double>> dirs(4096);
  for (auto& d : dirs) d = {std::acos(uz(gen)), up(gen)};
  const bool nest = state.range(1) != 0;
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto& [th, ph] : dirs) {
      acc += nest ? hp.ang2pix_nest(th, ph) : hp.ang2pix_ring(th, ph);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HealpixAng2Pix)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

static void BM_QuatMultMany(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> p(4 * n, 0.5), q(4 * n, 0.5), out(4 * n);
  for (auto _ : state) {
    qarray::mult_many(p, q, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuatMultMany)->Range(1 << 10, 1 << 16);

static void BM_RngGaussian(benchmark::State& state) {
  std::vector<double> out(static_cast<std::size_t>(state.range(0)));
  std::uint64_t counter = 0;
  for (auto _ : state) {
    rng::RngStream stream({1, 2}, {counter++, 0});
    stream.gaussian(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngGaussian)->Range(1 << 10, 1 << 16);

static void BM_XlaJitCached(benchmark::State& state) {
  accel::SimDevice device;
  accel::VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  xla::Runtime rt(device, clock, tracer);
  xla::Jit fn("bench", [](const std::vector<xla::Array>& in) {
    return std::vector<xla::Array>{
        xla::sqrt(xla::abs(in[0] * 2.0 + 1.0)) - 0.5};
  });
  std::vector<double> data(static_cast<std::size_t>(state.range(0)), 1.5);
  const xla::Literal arg = xla::Literal::from_f64(
      xla::Shape{state.range(0)}, data);
  fn.call(rt, {arg});  // compile outside the loop
  for (auto _ : state) {
    auto out = fn.call(rt, {arg});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XlaJitCached)->Range(1 << 10, 1 << 14);

static void BM_XlaCompile(benchmark::State& state) {
  accel::SimDevice device;
  accel::VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  xla::Runtime rt(device, clock, tracer);
  std::vector<double> data(1024, 1.5);
  const xla::Literal arg = xla::Literal::from_f64(xla::Shape{1024}, data);
  for (auto _ : state) {
    xla::Jit fn("bench", [](const std::vector<xla::Array>& in) {
      xla::Array x = in[0];
      for (int i = 0; i < 16; ++i) {
        x = x * 1.001 + 0.25;
      }
      return std::vector<xla::Array>{xla::sqrt(xla::abs(x))};
    });
    auto out = fn.call(rt, {arg});
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_XlaCompile);

static void BM_Threefry(benchmark::State& state) {
  std::array<std::uint64_t, 2> key{1, 2};
  std::array<std::uint64_t, 2> ctr{0, 0};
  for (auto _ : state) {
    ctr[1] += 1;
    auto out = rng::threefry2x64(key, ctr);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Threefry);

BENCHMARK_MAIN();
