// Ablation (paper §3.2.2): hybrid-pipeline data staging vs the naive
// strategy of transferring data to/from the GPU around every kernel.
// The paper measured the pipelined staging at ~40% faster end to end.

#include <cstdio>

#include "bench_util.hpp"
#include "mpisim/job.hpp"

using namespace toast;
using core::Backend;
using core::Pipeline;

int main() {
  toast::bench::print_header(
      "Ablation: pipelined staging vs naive per-kernel transfers "
      "(medium, 16 procs)");

  const auto problem = bench_model::medium_problem();
  std::printf("%-12s %16s %16s %10s\n", "backend", "pipelined", "naive",
              "gain");
  std::printf("----------------------------------------------------------\n");
  for (const auto& [label, backend] :
       {std::pair{"omp-target", Backend::kOmpTarget},
        std::pair{"jax", Backend::kJax}}) {
    mpisim::JobConfig staged{problem, backend};
    staged.schedule.staging.mode = Pipeline::Staging::kPipelined;
    mpisim::JobConfig naive{problem, backend};
    naive.schedule.staging.mode = Pipeline::Staging::kNaive;
    const auto a = mpisim::run_benchmark_job(staged);
    const auto b = mpisim::run_benchmark_job(naive);
    std::printf("%-12s %16s %16s %9.0f%%\n", label,
                toast::bench::fmt_seconds(a.runtime).c_str(),
                toast::bench::fmt_seconds(b.runtime).c_str(),
                100.0 * (b.runtime / a.runtime - 1.0));
    std::printf("  transfers: %s vs %s\n",
                toast::bench::fmt_seconds(a.transfer_seconds).c_str(),
                toast::bench::fmt_seconds(b.transfer_seconds).c_str());
  }
  std::printf("\npaper: staging gave ~40%% end-to-end speedup over the naive\n"
              "       per-kernel transfer strategy (early tests, §3.2.2).\n");
  return 0;
}
