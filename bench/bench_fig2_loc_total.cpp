// Figure 2: lines of code per implementation, measured cloc-style (code
// lines only, no blanks/comments) over this repository's actual kernel
// sources — the reproduction's equivalent of the paper's measurement over
// TOAST.
//
// Paper findings: JAX kernel code is ~1.2x SHORTER than the CPU baseline;
// OpenMP Target Offload is ~1.8x LONGER (duplicated loops + pragmas +
// data management); including dependencies, the JAX accelerator support
// code is ~3x smaller than the OpenMP-target support code.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "tools/loc.hpp"

using namespace toast;

int main() {
  toast::bench::print_header(
      "Figure 2: lines of code per implementation (kernel code and with "
      "dependencies)");

  const std::string root = std::string(TOASTCASE_SOURCE_DIR) + "/";
  const auto kernels = tools::kernel_source_manifest();
  const auto support = tools::support_source_manifest();

  std::printf("%-12s %14s %16s %14s\n", "impl", "kernel code",
              "accel support", "total");
  std::printf("----------------------------------------------------------\n");

  int cpu_kernel = 0;
  for (const auto& impl : {"cpu", "omptarget", "jax"}) {
    int kernel_lines = 0;
    for (const auto& [kernel, impls] : kernels) {
      for (const auto& file : impls.at(impl)) {
        kernel_lines += tools::count_file(root + file).code;
      }
    }
    int support_lines = 0;
    for (const auto& file : support.at(impl)) {
      support_lines += tools::count_file(root + file).code;
    }
    if (std::string(impl) == "cpu") {
      cpu_kernel = kernel_lines;
    }
    char rel[32];
    std::snprintf(rel, sizeof(rel), "(%.2fx cpu)",
                  static_cast<double>(kernel_lines) /
                      static_cast<double>(cpu_kernel));
    std::printf("%-12s %7d %6s %16d %14d\n", impl, kernel_lines, rel,
                support_lines, kernel_lines + support_lines);
  }

  std::printf(
      "\npaper: jax kernels ~0.8x of cpu baseline; omp-target ~1.8x of cpu\n"
      "       baseline; jax accel support ~3x smaller than omp-target's.\n");
  return 0;
}
