#pragma once

// Small table-printing helpers shared by the figure benchmarks.

#include <cstdio>
#include <string>

namespace toast::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s", s);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  }
  return buf;
}

}  // namespace toast::bench
