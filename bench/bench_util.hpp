#pragma once

// Shared helpers for the figure benchmarks: table printing, command-line
// options, and a small JSON writer for the machine-readable output mode.
//
// Every figure benchmark accepts:
//   --json <path>    write results as JSON (the CI smoke mode;
//                    scripts/check_bench.py threshold-checks the file)
//   --trace <path>   write Chrome trace-event JSON of the modelled runs
//                    (one file per backend, suffixed before the extension)
//   --faults <path>  deterministic fault plan (toastcase-fault-plan-v1)
//                    applied to the modelled runs; benchmarks that do not
//                    model faults ignore it
//   --policy <path>  resilience policy (toastcase-resilience-policy-v1)
//                    governing recovery at the fault sites; benchmarks
//                    that do not consult policies ignore it
//   --comm <mode>    "model" (closed-form allreduce) or "engine"
//                    (step-scheduled comm engine); job benchmarks only
//
// The writer is self-contained (no dependency on toast_obs) so the
// LoC-counting benchmarks that only link toast_tools can use it too.

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace toast::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s", s);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  }
  return buf;
}

// --- command line -----------------------------------------------------------

struct BenchOptions {
  std::string json_path;      // empty = human output only
  std::string trace_path;     // empty = no trace export
  std::string faults_path;    // empty = no fault plan
  std::string policy_path;    // empty = no resilience policy
  std::string schedule_path;  // toastcase-schedule-v1 config artifact
  std::string staging;        // "naive" | "pipelined" | empty (bench default)
  std::string comm;           // "model" | "engine" | empty (bench default)
  bool prefetch = false;      // plan-level transfer/compute overlap
  bool tuned = false;         // run the schedule autotuner per row
};

/// One command-line flag: a value flag writes its argument into *value
/// (validated against the "a|b|c" list in `accepted` when non-null); a
/// switch flag (value == nullptr) sets *toggle.  One table drives
/// matching, validation and the --help text — the per-flag if/else
/// chains the benchmarks used to copy from each other are gone.
struct BenchFlag {
  const char* name;
  std::string* value = nullptr;
  bool* toggle = nullptr;
  const char* accepted = nullptr;
};

inline bool flag_accepts(const char* accepted, const std::string& v) {
  const std::string list = accepted;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t bar = list.find('|', pos);
    if (v == list.substr(pos, bar == std::string::npos ? bar : bar - pos)) {
      return true;
    }
    if (bar == std::string::npos) {
      return false;
    }
    pos = bar + 1;
  }
}

/// Parse the shared benchmark flags plus any bench-specific `extra`
/// value flags (e.g. bench_plan's --dump-plan), with one shared
/// missing-value / unknown-flag / validation path for all of them.
inline BenchOptions parse_options(int argc, char** argv,
                                  std::vector<BenchFlag> extra = {}) {
  BenchOptions opt;
  std::vector<BenchFlag> flags = {
      {"--json", &opt.json_path},
      {"--trace", &opt.trace_path},
      {"--faults", &opt.faults_path},
      {"--policy", &opt.policy_path},
      {"--schedule", &opt.schedule_path},
      {"--staging", &opt.staging, nullptr, "naive|pipelined"},
      {"--comm", &opt.comm, nullptr, "model|engine"},
      {"--prefetch", nullptr, &opt.prefetch},
      {"--tuned", nullptr, &opt.tuned},
  };
  flags.insert(flags.end(), extra.begin(), extra.end());

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::string usage = "usage: ";
      usage += argv[0];
      for (const auto& f : flags) {
        usage += " [";
        usage += f.name;
        if (f.value != nullptr) {
          usage += " ";
          usage += f.accepted != nullptr ? f.accepted : "<path>";
        }
        usage += "]";
      }
      std::printf("%s\n", usage.c_str());
      std::exit(0);
    }
    const BenchFlag* match = nullptr;
    for (const auto& f : flags) {
      if (arg == f.name) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n", argv[0],
                   arg.c_str());
      std::exit(2);
    }
    if (match->value == nullptr) {
      *match->toggle = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s requires a value\n", argv[0], match->name);
      std::exit(2);
    }
    *match->value = argv[++i];
    if (match->accepted != nullptr &&
        !flag_accepts(match->accepted, *match->value)) {
      std::fprintf(stderr, "%s: %s wants %s, got '%s'\n", argv[0],
                   match->name, match->accepted, match->value->c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// "out.json" + "jax" -> "out.jax.json" (per-backend trace files).
inline std::string suffixed_path(const std::string& path,
                                 const std::string& tag) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

// --- JSON writing -----------------------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Streaming JSON writer with automatic comma placement.  Usage:
///   JsonWriter w(out);
///   w.obj_open(); w.kv("schema", "..."); w.arr_open("rows");
///   w.obj_open(); w.kv("x", 1.0); w.obj_close(); w.arr_close();
///   w.obj_close();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void obj_open(const std::string& key = {}) {
    comma();
    write_key(key);
    out_ << "{";
    need_comma_.push_back(false);
  }
  void obj_close() {
    out_ << "}";
    pop();
  }
  void arr_open(const std::string& key = {}) {
    comma();
    write_key(key);
    out_ << "[";
    need_comma_.push_back(false);
  }
  void arr_close() {
    out_ << "]";
    pop();
  }

  void kv(const std::string& key, const std::string& value) {
    comma();
    write_key(key);
    out_ << '"' << json_escape(value) << '"';
    mark();
  }
  void kv(const std::string& key, const char* value) {
    kv(key, std::string(value));
  }
  void kv(const std::string& key, double value) {
    comma();
    write_key(key);
    write_number(value);
    mark();
  }
  void kv(const std::string& key, long value) {
    comma();
    write_key(key);
    out_ << value;
    mark();
  }
  void kv(const std::string& key, int value) { kv(key, long{value}); }
  void kv(const std::string& key, bool value) {
    comma();
    write_key(key);
    out_ << (value ? "true" : "false");
    mark();
  }
  /// Array element.
  void value(double v) {
    comma();
    write_number(v);
    mark();
  }
  void value(const std::string& v) {
    comma();
    out_ << '"' << json_escape(v) << '"';
    mark();
  }

 private:
  void write_key(const std::string& key) {
    if (!key.empty()) {
      out_ << '"' << json_escape(key) << "\":";
    }
  }
  void write_number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
  }
  void comma() {
    if (!need_comma_.empty() && need_comma_.back()) {
      out_ << ",";
    }
  }
  void mark() {
    if (!need_comma_.empty()) {
      need_comma_.back() = true;
    }
  }
  void pop() {
    if (!need_comma_.empty()) {
      need_comma_.pop_back();
    }
    mark();
  }

  std::ostream& out_;
  std::vector<bool> need_comma_;
};

}  // namespace toast::bench
