#pragma once

// Shared helpers for the figure benchmarks: table printing, command-line
// options, and a small JSON writer for the machine-readable output mode.
//
// Every figure benchmark accepts:
//   --json <path>    write results as JSON (the CI smoke mode;
//                    scripts/check_bench.py threshold-checks the file)
//   --trace <path>   write Chrome trace-event JSON of the modelled runs
//                    (one file per backend, suffixed before the extension)
//   --faults <path>  deterministic fault plan (toastcase-fault-plan-v1)
//                    applied to the modelled runs; benchmarks that do not
//                    model faults ignore it
//   --policy <path>  resilience policy (toastcase-resilience-policy-v1)
//                    governing recovery at the fault sites; benchmarks
//                    that do not consult policies ignore it
//   --comm <mode>    "model" (closed-form allreduce) or "engine"
//                    (step-scheduled comm engine); job benchmarks only
//
// The writer is self-contained (no dependency on toast_obs) so the
// LoC-counting benchmarks that only link toast_tools can use it too.

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace toast::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f s", s);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  }
  return buf;
}

// --- command line -----------------------------------------------------------

struct BenchOptions {
  std::string json_path;    // empty = human output only
  std::string trace_path;   // empty = no trace export
  std::string faults_path;  // empty = no fault plan
  std::string policy_path;  // empty = no resilience policy
  std::string staging;      // "naive" | "pipelined" | empty (bench default)
  std::string comm;         // "model" | "engine" | empty (bench default)
  bool prefetch = false;    // plan-level transfer/compute overlap
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a path\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = need_value("--json");
    } else if (arg == "--trace") {
      opt.trace_path = need_value("--trace");
    } else if (arg == "--faults") {
      opt.faults_path = need_value("--faults");
    } else if (arg == "--policy") {
      opt.policy_path = need_value("--policy");
    } else if (arg == "--staging") {
      opt.staging = need_value("--staging");
      if (opt.staging != "naive" && opt.staging != "pipelined") {
        std::fprintf(stderr, "%s: --staging wants naive|pipelined, got '%s'\n",
                     argv[0], opt.staging.c_str());
        std::exit(2);
      }
    } else if (arg == "--comm") {
      opt.comm = need_value("--comm");
      if (opt.comm != "model" && opt.comm != "engine") {
        std::fprintf(stderr, "%s: --comm wants model|engine, got '%s'\n",
                     argv[0], opt.comm.c_str());
        std::exit(2);
      }
    } else if (arg == "--prefetch") {
      opt.prefetch = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--json <path>] [--trace <path>] [--faults <plan>] "
          "[--policy <policy>] [--staging naive|pipelined] "
          "[--comm model|engine] [--prefetch]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr,
                   "%s: unknown option '%s' (try --help)\n", argv[0],
                   arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// "out.json" + "jax" -> "out.jax.json" (per-backend trace files).
inline std::string suffixed_path(const std::string& path,
                                 const std::string& tag) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

// --- JSON writing -----------------------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Streaming JSON writer with automatic comma placement.  Usage:
///   JsonWriter w(out);
///   w.obj_open(); w.kv("schema", "..."); w.arr_open("rows");
///   w.obj_open(); w.kv("x", 1.0); w.obj_close(); w.arr_close();
///   w.obj_close();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void obj_open(const std::string& key = {}) {
    comma();
    write_key(key);
    out_ << "{";
    need_comma_.push_back(false);
  }
  void obj_close() {
    out_ << "}";
    pop();
  }
  void arr_open(const std::string& key = {}) {
    comma();
    write_key(key);
    out_ << "[";
    need_comma_.push_back(false);
  }
  void arr_close() {
    out_ << "]";
    pop();
  }

  void kv(const std::string& key, const std::string& value) {
    comma();
    write_key(key);
    out_ << '"' << json_escape(value) << '"';
    mark();
  }
  void kv(const std::string& key, const char* value) {
    kv(key, std::string(value));
  }
  void kv(const std::string& key, double value) {
    comma();
    write_key(key);
    write_number(value);
    mark();
  }
  void kv(const std::string& key, long value) {
    comma();
    write_key(key);
    out_ << value;
    mark();
  }
  void kv(const std::string& key, int value) { kv(key, long{value}); }
  void kv(const std::string& key, bool value) {
    comma();
    write_key(key);
    out_ << (value ? "true" : "false");
    mark();
  }
  /// Array element.
  void value(double v) {
    comma();
    write_number(v);
    mark();
  }
  void value(const std::string& v) {
    comma();
    out_ << '"' << json_escape(v) << '"';
    mark();
  }

 private:
  void write_key(const std::string& key) {
    if (!key.empty()) {
      out_ << '"' << json_escape(key) << "\":";
    }
  }
  void write_number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
  }
  void comma() {
    if (!need_comma_.empty() && need_comma_.back()) {
      out_ << ",";
    }
  }
  void mark() {
    if (!need_comma_.empty()) {
      need_comma_.back() = true;
    }
  }
  void pop() {
    if (!need_comma_.empty()) {
      need_comma_.pop_back();
    }
    mark();
  }

  std::ostream& out_;
  std::vector<bool> need_comma_;
};

}  // namespace toast::bench
