// Tests of the loc counter and the timing CSV merge tooling.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/timing.hpp"
#include "tools/loc.hpp"

using namespace toast;

TEST(Loc, BasicCounting) {
  const auto c = tools::count_cpp(
      "int main() {\n"
      "  // a comment\n"
      "\n"
      "  return 0;  // trailing comment still code\n"
      "}\n");
  EXPECT_EQ(c.code, 3);
  EXPECT_EQ(c.comment, 1);
  EXPECT_EQ(c.blank, 1);
}

TEST(Loc, BlockComments) {
  const auto c = tools::count_cpp(
      "/* block\n"
      "   comment */\n"
      "int x; /* inline */\n"
      "/* start\n"
      "   end */ int y;\n");
  EXPECT_EQ(c.comment, 3);  // two full-block lines + the "start" line
  EXPECT_EQ(c.code, 2);     // "int x" and the "end */ int y" line
}

TEST(Loc, CommentMarkersInStrings) {
  const auto c = tools::count_cpp(
      "const char* s = \"// not a comment\";\n"
      "const char* t = \"/* neither */\";\n");
  EXPECT_EQ(c.code, 2);
  EXPECT_EQ(c.comment, 0);
}

TEST(Loc, ManifestCoversAllKernelsAndImpls) {
  const auto manifest = tools::kernel_source_manifest();
  EXPECT_EQ(manifest.size(), 7u);  // stokes pair and template trio share files
  for (const auto& [kernel, impls] : manifest) {
    EXPECT_EQ(impls.size(), 3u) << kernel;
    for (const auto& [impl, files] : impls) {
      EXPECT_FALSE(files.empty()) << kernel << "/" << impl;
    }
  }
}

TEST(Loc, RealSourcesShowPaperOrdering) {
  // Figure 2/3's qualitative finding over this repository's own sources:
  // the OpenMP-target port is much longer than the CPU baseline
  // (duplicated loops + launch plumbing), and the array-program part of
  // the JAX port (the analogue of the paper's Python kernels) is shorter
  // than the CPU baseline.  The *full* JAX files are longer than Python
  // would be because C++ tracing needs marshalling boilerplate; see
  // EXPERIMENTS.md.
  const std::string root = std::string(TOASTCASE_SOURCE_DIR) + "/";
  int cpu = 0, omp = 0;
  for (const auto& [kernel, impls] : tools::kernel_source_manifest()) {
    for (const auto& f : impls.at("cpu")) cpu += tools::count_file(root + f).code;
    for (const auto& f : impls.at("omptarget")) omp += tools::count_file(root + f).code;
  }
  int jax_graph = 0;
  for (const auto& [kernel, entry] : tools::jax_graph_manifest()) {
    std::ifstream in(root + entry.first);
    std::stringstream buf;
    buf << in.rdbuf();
    for (const auto& fn : entry.second) {
      const auto c = tools::count_function(buf.str(), fn);
      EXPECT_GT(c.code, 0) << entry.first << ":" << fn;
      jax_graph += c.code;
    }
  }
  EXPECT_GT(cpu, 0);
  EXPECT_GT(static_cast<double>(omp) / cpu, 1.3);        // paper: 1.8x
  EXPECT_LT(static_cast<double>(jax_graph) / cpu, 1.0);  // paper: 0.8x
}

TEST(Loc, CountFunctionIsolatesBodies) {
  const std::string src =
      "int helper(int x) {\n  return x + 1;\n}\n"
      "int graph(int y) {\n  if (y) {\n    y = helper(y);\n  }\n"
      "  return y;\n}\n";
  EXPECT_EQ(tools::count_function(src, "helper").code, 3);
  EXPECT_EQ(tools::count_function(src, "graph").code, 6);
  EXPECT_EQ(tools::count_function(src, "missing").code, 0);
}

TEST(Timing, CsvRoundTrip) {
  accel::TimeLog log;
  log.add("kernel_a", 1.5);
  log.add("kernel_a", 0.5);
  log.add("kernel_b", 3.0);
  std::ostringstream out;
  core::write_timing_csv(log, out);
  std::istringstream in(out.str());
  const auto back = core::read_timing_csv(in);
  EXPECT_DOUBLE_EQ(back.seconds("kernel_a"), 2.0);
  EXPECT_EQ(back.calls("kernel_a"), 2);
  EXPECT_DOUBLE_EQ(back.seconds("kernel_b"), 3.0);
}

TEST(Timing, CompareProducesSpeedups) {
  accel::TimeLog cpu;
  cpu.add("k", 10.0);
  accel::TimeLog gpu;
  gpu.add("k", 2.0);
  gpu.add("extra", 1.0);
  const auto cmp = core::compare_timings({{"cpu", cpu}, {"gpu", gpu}});
  ASSERT_EQ(cmp.labels.size(), 2u);
  ASSERT_EQ(cmp.rows.at("k").size(), 2u);
  EXPECT_DOUBLE_EQ(cmp.rows.at("k")[0], 10.0);
  EXPECT_DOUBLE_EQ(cmp.rows.at("k")[1], 2.0);
  EXPECT_DOUBLE_EQ(cmp.rows.at("extra")[0], 0.0);
  const std::string csv = cmp.to_csv();
  EXPECT_NE(csv.find("speedup_gpu"), std::string::npos);
  EXPECT_NE(csv.find("k,10,2,5"), std::string::npos);
  EXPECT_FALSE(cmp.to_table().empty());
}

TEST(Timing, MergeLogsAcrossRanks) {
  accel::TimeLog a, b;
  a.add("k", 1.0);
  b.add("k", 2.0);
  b.add("other", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds("k"), 3.0);
  EXPECT_EQ(a.calls("k"), 2);
  EXPECT_DOUBLE_EQ(a.seconds("other"), 4.0);
  EXPECT_NEAR(a.total_seconds(), 7.0, 1e-12);
}
