// Tests for the framework core: observation data model, exec context
// dispatch, and the AccelStore device-copy semantics.

#include <gtest/gtest.h>

#include "core/accel_store.hpp"
#include "core/context.hpp"
#include "core/observation.hpp"

namespace core = toast::core;
using core::Backend;
using core::FieldType;
using core::Observation;

namespace {

core::Focalplane tiny_fp(int n_det = 2) {
  core::Focalplane fp;
  for (int d = 0; d < n_det; ++d) {
    fp.quats.push_back({0.0, 0.0, 0.0, 1.0});
    fp.names.push_back("d" + std::to_string(d));
    fp.pol_angles.push_back(0.0);
    fp.pol_eff.push_back(1.0);
    fp.net.push_back(1.0);
    fp.fknee.push_back(0.1);
    fp.fmin.push_back(1e-5);
    fp.alpha.push_back(1.0);
  }
  return fp;
}

}  // namespace

TEST(Observation, FieldLifecycle) {
  Observation ob("test", tiny_fp(), 100);
  EXPECT_FALSE(ob.has_field("signal"));
  auto& f = ob.create_detdata("signal", FieldType::kF64);
  EXPECT_TRUE(ob.has_field("signal"));
  EXPECT_EQ(f.count(), 200);
  EXPECT_TRUE(f.scalable());
  EXPECT_EQ(f.byte_size(), 1600u);
  ob.remove_field("signal");
  EXPECT_FALSE(ob.has_field("signal"));
  EXPECT_THROW(ob.field("signal"), std::out_of_range);
}

TEST(Observation, SharedAndBufferFields) {
  Observation ob("test", tiny_fp(), 64);
  auto& bore = ob.create_shared("boresight", FieldType::kF64, 4);
  EXPECT_EQ(bore.count(), 256);
  auto& map = ob.create_buffer("zmap", FieldType::kF64, 1000);
  EXPECT_FALSE(map.scalable());
  auto& amps = ob.create_buffer("amps", FieldType::kF64, 10, true);
  EXPECT_TRUE(amps.scalable());
}

TEST(Observation, DetSpanAddressing) {
  Observation ob("test", tiny_fp(2), 8);
  ob.create_detdata("x", FieldType::kF64, 1);
  auto d0 = ob.det_f64("x", 0);
  auto d1 = ob.det_f64("x", 1);
  EXPECT_EQ(d0.size(), 8u);
  d1[3] = 7.0;
  EXPECT_DOUBLE_EQ(ob.field("x").f64()[11], 7.0);
  EXPECT_DOUBLE_EQ(d0[3], 0.0);
}

TEST(Observation, MaxIntervalLength) {
  Observation ob("test", tiny_fp(), 100);
  EXPECT_EQ(ob.max_interval_length(), 0);
  ob.intervals() = {{0, 10}, {20, 55}, {60, 70}};
  EXPECT_EQ(ob.max_interval_length(), 35);
}

TEST(Observation, ByteSizeSumsFields) {
  Observation ob("test", tiny_fp(2), 10);
  ob.create_detdata("a", FieldType::kF64);       // 2*10*8 = 160
  ob.create_shared("b", FieldType::kU8);         // 10
  ob.create_buffer("c", FieldType::kI64, 5);     // 40
  EXPECT_GE(ob.byte_size(), 210u);
}

TEST(ExecContext, DispatchOverrides) {
  core::ExecConfig cfg;
  cfg.backend = Backend::kCpu;
  core::ExecContext ctx(cfg);
  EXPECT_EQ(ctx.backend_for("pixels_healpix"), Backend::kCpu);
  ctx.set_kernel_backend("pixels_healpix", Backend::kJax);
  EXPECT_EQ(ctx.backend_for("pixels_healpix"), Backend::kJax);
  EXPECT_EQ(ctx.backend_for("scan_map"), Backend::kCpu);
  ctx.clear_kernel_backends();
  EXPECT_EQ(ctx.backend_for("pixels_healpix"), Backend::kCpu);
}

TEST(ExecContext, JaxCpuModeConfigured) {
  core::ExecConfig cfg;
  cfg.backend = Backend::kJaxCpu;
  cfg.threads = 4;
  core::ExecContext ctx(cfg);
  EXPECT_TRUE(ctx.jax().cpu_backend());
  EXPECT_FALSE(core::is_accel(Backend::kJaxCpu));
}

TEST(ExecContext, ChargingAdvancesClockAndLog) {
  core::ExecConfig cfg;
  core::ExecContext ctx(cfg);
  toast::accel::WorkEstimate w;
  w.flops = 1e9;
  w.bytes_read = 1e9;
  w.launches = 1;
  w.parallel_items = 1e6;
  ctx.charge_host_kernel("k", w);
  EXPECT_GT(ctx.elapsed(), 0.0);
  EXPECT_GT(ctx.log().seconds("k"), 0.0);
  const double t1 = ctx.elapsed();
  ctx.charge_serial("s", 1.5);
  EXPECT_DOUBLE_EQ(ctx.elapsed(), t1 + 1.5);
}

TEST(ExecContext, WorkScaleAppliesOnlyToScaledCharge) {
  core::ExecConfig cfg;
  cfg.work_scale = 100.0;
  core::ExecContext ctx(cfg);
  toast::accel::WorkEstimate w;
  w.flops = 1e8;
  w.parallel_items = 1e6;
  ctx.charge_host_kernel("scaled", w);
  ctx.charge_host_kernel_raw("raw", w);
  EXPECT_NEAR(ctx.log().seconds("scaled") / ctx.log().seconds("raw"), 100.0,
              1.0);
}

TEST(AccelStore, ShadowCopySemantics) {
  core::ExecConfig cfg;
  cfg.backend = Backend::kOmpTarget;
  core::ExecContext ctx(cfg);
  core::AccelStore store(ctx);

  Observation ob("t", tiny_fp(), 16);
  auto& f = ob.create_detdata("signal", FieldType::kF64);
  f.f64()[0] = 1.0;

  EXPECT_FALSE(store.present(f));
  EXPECT_THROW(store.device_ptr<double>(f), std::logic_error);
  store.create(f);
  EXPECT_TRUE(store.present(f));

  store.update_device(f);
  double* dev = store.device_ptr<double>(f);
  EXPECT_DOUBLE_EQ(dev[0], 1.0);
  dev[0] = 9.0;
  EXPECT_DOUBLE_EQ(f.f64()[0], 1.0);  // host stale until update_host
  store.update_host(f);
  EXPECT_DOUBLE_EQ(f.f64()[0], 9.0);

  store.reset(f);
  EXPECT_DOUBLE_EQ(store.device_ptr<double>(f)[0], 0.0);

  store.remove(f);
  EXPECT_FALSE(store.present(f));
}

TEST(AccelStore, DoubleCreateThrows) {
  core::ExecConfig cfg;
  cfg.backend = Backend::kOmpTarget;
  core::ExecContext ctx(cfg);
  core::AccelStore store(ctx);
  Observation ob("t", tiny_fp(), 4);
  auto& f = ob.create_detdata("x", FieldType::kF64);
  store.create(f);
  EXPECT_THROW(store.create(f), std::logic_error);
}

TEST(AccelStore, JaxTransfersCheaperThanOmp) {
  // The paper's Figure 6 shows JAX spending less time on update_device
  // and (especially) reset.
  Observation ob("t", tiny_fp(), 4096);

  core::ExecConfig omp_cfg;
  omp_cfg.backend = Backend::kOmpTarget;
  omp_cfg.work_scale = 1e5;
  core::ExecContext omp_ctx(omp_cfg);
  core::AccelStore omp_store(omp_ctx);

  core::ExecConfig jax_cfg = omp_cfg;
  jax_cfg.backend = Backend::kJax;
  core::ExecContext jax_ctx(jax_cfg);
  core::AccelStore jax_store(jax_ctx);

  auto& f = ob.create_detdata("signal", FieldType::kF64);
  omp_store.create(f);
  jax_store.create(f);
  omp_store.update_device(f);
  jax_store.update_device(f);
  omp_store.reset(f);
  jax_store.reset(f);

  EXPECT_LT(jax_ctx.log().seconds("accel_data_update_device"),
            omp_ctx.log().seconds("accel_data_update_device"));
  EXPECT_LT(jax_ctx.log().seconds("accel_data_reset"),
            omp_ctx.log().seconds("accel_data_reset"));
}

TEST(AccelStore, MapDomainFieldsUseMapScale) {
  Observation ob("t", tiny_fp(), 1024);
  core::ExecConfig cfg;
  cfg.backend = Backend::kOmpTarget;
  cfg.work_scale = 1e6;  // huge timestream scale
  cfg.map_scale = 1.0;   // maps already at production size
  core::ExecContext ctx(cfg);
  core::AccelStore store(ctx);

  auto& ts = ob.create_detdata("signal", FieldType::kF64);   // scalable
  auto& map = ob.create_buffer("zmap", FieldType::kF64,
                               2 * 1024);                    // map domain
  store.create(ts);
  store.create(map);
  store.update_device(ts);
  const double t_ts = ctx.log().seconds("accel_data_update_device");
  store.update_device(map);
  const double t_map =
      ctx.log().seconds("accel_data_update_device") - t_ts;
  // Same actual byte size, but the timestream transfer is modelled at
  // paper scale (1e6x) while the map is not.
  EXPECT_GT(t_ts, 100.0 * t_map);
}

TEST(AccelStore, ClearReleasesEverything) {
  core::ExecConfig cfg;
  cfg.backend = Backend::kOmpTarget;
  core::ExecContext ctx(cfg);
  core::AccelStore store(ctx);
  Observation ob("t", tiny_fp(), 64);
  auto& a = ob.create_detdata("a", FieldType::kF64);
  auto& b = ob.create_shared("b", FieldType::kI64);
  store.create(a);
  store.create(b);
  EXPECT_EQ(store.n_mapped(), 2u);
  EXPECT_GT(store.mapped_bytes(), 0u);
  store.clear();
  EXPECT_EQ(store.n_mapped(), 0u);
  EXPECT_EQ(store.mapped_bytes(), 0u);
  EXPECT_FALSE(store.present(a));
}
