// Tests for the backend manifest and the per-kernel OpRegistry: tag
// slots, enum mapping, base-chain inheritance (jax-cpu / jax-compiled
// fall back to the jax registration), structured dispatch failure, and
// the scoped executor flip for jax-compiled dispatches.

#include "backend/manifest.hpp"
#include "backend/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace backend = toast::backend;
namespace core = toast::core;
using core::Backend;

namespace {

struct ToyArgs {
  int payload = 0;
};

core::ExecContext make_ctx(Backend b = Backend::kCpu) {
  core::ExecConfig cfg;
  cfg.backend = b;
  return core::ExecContext(cfg);
}

}  // namespace

TEST(BackendManifest, TagSlotsAreStableAndComplete) {
  EXPECT_EQ(backend::backend_count, 5u);
  EXPECT_EQ(backend::backend_index<backend::cpu_tag>(), 0u);
  EXPECT_EQ(backend::backend_index<backend::omptarget_tag>(), 1u);
  EXPECT_EQ(backend::backend_index<backend::jax_tag>(), 2u);
  EXPECT_EQ(backend::backend_index<backend::jax_cpu_tag>(), 3u);
  EXPECT_EQ(backend::backend_index<backend::jax_compiled_tag>(), 4u);
}

TEST(BackendManifest, EnumMapsToTagSlots) {
  EXPECT_EQ(backend::index_of(Backend::kCpu),
            backend::backend_index<backend::cpu_tag>());
  EXPECT_EQ(backend::index_of(Backend::kOmpTarget),
            backend::backend_index<backend::omptarget_tag>());
  EXPECT_EQ(backend::index_of(Backend::kJax),
            backend::backend_index<backend::jax_tag>());
  EXPECT_EQ(backend::index_of(Backend::kJaxCpu),
            backend::backend_index<backend::jax_cpu_tag>());
  EXPECT_EQ(backend::index_of(Backend::kJaxCompiled),
            backend::backend_index<backend::jax_compiled_tag>());
}

TEST(BackendManifest, NamesFollowTheTuple) {
  EXPECT_STREQ(backend::name_of(0), "cpu");
  EXPECT_STREQ(backend::name_of(1), "omp-target");
  EXPECT_STREQ(backend::name_of(2), "jax");
  EXPECT_STREQ(backend::name_of(3), "jax-cpu");
  EXPECT_STREQ(backend::name_of(4), "jax-compiled");
  EXPECT_STREQ(backend::name_of(backend::npos), "unknown");
}

TEST(BackendManifest, BaseChainLinksJaxVariantsToJax) {
  const std::size_t jax = backend::backend_index<backend::jax_tag>();
  // Root tags are their own base (the registry stops there).
  EXPECT_EQ(backend::base_index(0), 0u);
  EXPECT_EQ(backend::base_index(1), 1u);
  EXPECT_EQ(backend::base_index(jax), jax);
  EXPECT_EQ(
      backend::base_index(backend::backend_index<backend::jax_cpu_tag>()),
      jax);
  EXPECT_EQ(
      backend::base_index(
          backend::backend_index<backend::jax_compiled_tag>()),
      jax);
}

TEST(BackendManifest, WithBackendVisitsTheMatchingTag) {
  std::string seen;
  const bool called =
      backend::with_backend(Backend::kJaxCompiled, [&](auto tag) {
        seen = decltype(tag)::name;
      });
  EXPECT_TRUE(called);
  EXPECT_EQ(seen, "jax-compiled");
}

TEST(BackendRegistry, DispatchSelectsTheRegisteredTag) {
  auto ctx = make_ctx();
  backend::OpRegistry<ToyArgs> reg("toy");
  std::string hit;
  reg.add<backend::cpu_tag>(
      [&](const ToyArgs& a, core::ExecContext&) {
        hit = "cpu:" + std::to_string(a.payload);
      });
  reg.add<backend::omptarget_tag>(
      [&](const ToyArgs& a, core::ExecContext&) {
        hit = "omp:" + std::to_string(a.payload);
      });
  reg.invoke(Backend::kCpu, ToyArgs{1}, ctx);
  EXPECT_EQ(hit, "cpu:1");
  reg.invoke(Backend::kOmpTarget, ToyArgs{2}, ctx);
  EXPECT_EQ(hit, "omp:2");
}

TEST(BackendRegistry, JaxVariantsInheritTheJaxRegistration) {
  auto ctx = make_ctx();
  backend::OpRegistry<ToyArgs> reg("toy");
  int jax_calls = 0;
  reg.add<backend::jax_tag>(
      [&](const ToyArgs&, core::ExecContext&) { ++jax_calls; });
  EXPECT_TRUE(reg.has(Backend::kJax));
  EXPECT_TRUE(reg.has(Backend::kJaxCpu));
  EXPECT_TRUE(reg.has(Backend::kJaxCompiled));
  EXPECT_FALSE(reg.has(Backend::kCpu));
  reg.invoke(Backend::kJax, {}, ctx);
  reg.invoke(Backend::kJaxCpu, {}, ctx);
  reg.invoke(Backend::kJaxCompiled, {}, ctx);
  EXPECT_EQ(jax_calls, 3);
}

TEST(BackendRegistry, SpecializationShadowsTheBase) {
  auto ctx = make_ctx();
  backend::OpRegistry<ToyArgs> reg("toy");
  std::string hit;
  reg.add<backend::jax_tag>(
      [&](const ToyArgs&, core::ExecContext&) { hit = "jax"; });
  reg.add<backend::jax_cpu_tag>(
      [&](const ToyArgs&, core::ExecContext&) { hit = "jax-cpu"; });
  reg.invoke(Backend::kJaxCpu, {}, ctx);
  EXPECT_EQ(hit, "jax-cpu");
  // The sibling still resolves through the base.
  reg.invoke(Backend::kJaxCompiled, {}, ctx);
  EXPECT_EQ(hit, "jax");
}

TEST(BackendRegistry, UnregisteredBackendThrowsStructuredError) {
  auto ctx = make_ctx();
  backend::OpRegistry<ToyArgs> reg("scan_map");
  reg.add<backend::jax_tag>([](const ToyArgs&, core::ExecContext&) {});
  try {
    reg.invoke(Backend::kCpu, {}, ctx);
    FAIL() << "expected UnknownKernelError";
  } catch (const backend::UnknownKernelError& e) {
    EXPECT_EQ(e.kernel(), "scan_map");
    EXPECT_EQ(e.backend(), Backend::kCpu);
    EXPECT_NE(std::string(e.what()).find("scan_map"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cpu"), std::string::npos);
  }
}

TEST(BackendRegistry, EmptyRegistryRejectsEverything) {
  auto ctx = make_ctx();
  const backend::OpRegistry<ToyArgs> reg("empty");
  for (const Backend b :
       {Backend::kCpu, Backend::kOmpTarget, Backend::kJax, Backend::kJaxCpu,
        Backend::kJaxCompiled}) {
    EXPECT_FALSE(reg.has(b));
    EXPECT_THROW(reg.invoke(b, {}, ctx), backend::UnknownKernelError);
  }
}

TEST(BackendRegistry, CompiledDefaultContextStartsInCompiledMode) {
  auto ctx = make_ctx(Backend::kJaxCompiled);
  EXPECT_EQ(ctx.jax().executor(), toast::xla::ExecMode::kCompiled);
  EXPECT_EQ(make_ctx(Backend::kJax).jax().executor(),
            toast::xla::ExecMode::kInterpreted);
}

TEST(BackendRegistry, JaxCompiledDispatchFlipsTheExecutor) {
  auto ctx = make_ctx();
  ASSERT_EQ(ctx.jax().executor(), toast::xla::ExecMode::kInterpreted);
  backend::OpRegistry<ToyArgs> reg("toy");
  std::vector<toast::xla::ExecMode> seen;
  reg.add<backend::jax_tag>([&](const ToyArgs&, core::ExecContext& c) {
    seen.push_back(c.jax().executor());
  });
  reg.invoke(Backend::kJax, {}, ctx);
  reg.invoke(Backend::kJaxCompiled, {}, ctx);
  reg.invoke(Backend::kJaxCpu, {}, ctx);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], toast::xla::ExecMode::kInterpreted);
  EXPECT_EQ(seen[1], toast::xla::ExecMode::kCompiled);
  EXPECT_EQ(seen[2], toast::xla::ExecMode::kInterpreted);
  // The flip is scoped to the dispatch: the context mode is restored.
  EXPECT_EQ(ctx.jax().executor(), toast::xla::ExecMode::kInterpreted);
}

TEST(BackendRegistry, ScopedExecutorRestoresOnThrow) {
  auto ctx = make_ctx();
  backend::OpRegistry<ToyArgs> reg("boom");
  reg.add<backend::jax_tag>([](const ToyArgs&, core::ExecContext&) {
    throw std::runtime_error("kernel failed");
  });
  EXPECT_THROW(reg.invoke(Backend::kJaxCompiled, {}, ctx),
               std::runtime_error);
  EXPECT_EQ(ctx.jax().executor(), toast::xla::ExecMode::kInterpreted);
}
