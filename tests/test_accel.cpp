// Tests for the simulated-device performance model and problem sizing.

#include "accel/host_model.hpp"
#include "accel/sim_device.hpp"
#include "bench_model/problem.hpp"

#include <gtest/gtest.h>

namespace accel = toast::accel;
using accel::Sharing;
using accel::SimDevice;
using accel::WorkEstimate;

namespace {

WorkEstimate streaming_kernel(double n) {
  WorkEstimate w;
  w.flops = 4.0 * n;
  w.bytes_read = 16.0 * n;
  w.bytes_written = 8.0 * n;
  w.launches = 1.0;
  w.parallel_items = n;
  return w;
}

WorkEstimate compute_kernel(double n) {
  WorkEstimate w;
  w.flops = 500.0 * n;
  w.bytes_read = 16.0 * n;
  w.bytes_written = 8.0 * n;
  w.launches = 1.0;
  w.parallel_items = n;
  return w;
}

}  // namespace

TEST(SimDevice, ZeroWorkCostsNothing) {
  SimDevice dev;
  WorkEstimate w;
  w.launches = 0.0;
  EXPECT_DOUBLE_EQ(dev.kernel_time(w), 0.0);
  EXPECT_DOUBLE_EQ(dev.exec_time(w), 0.0);
}

TEST(SimDevice, TimeIsMonotonicInWork) {
  SimDevice dev;
  const double t1 = dev.kernel_time(streaming_kernel(1e6));
  const double t2 = dev.kernel_time(streaming_kernel(2e6));
  const double t4 = dev.kernel_time(streaming_kernel(4e6));
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t4);
}

TEST(SimDevice, LargeKernelsScaleLinearly) {
  SimDevice dev;
  // Past saturation, doubling the work should roughly double the time.
  const double t1 = dev.kernel_time(streaming_kernel(1e9));
  const double t2 = dev.kernel_time(streaming_kernel(2e9));
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(SimDevice, SmallKernelsAreLaunchBound) {
  SimDevice dev;
  const WorkEstimate w = streaming_kernel(100.0);
  EXPECT_GT(dev.exec_time(w), dev.spec().launch_latency);
  EXPECT_LT(dev.kernel_time(w), dev.spec().launch_latency);
}

TEST(SimDevice, MemoryBoundVsComputeBound) {
  SimDevice dev;
  // The streaming kernel has arithmetic intensity 4/24 flop/byte, far below
  // the A100 roofline ridge, so it must be memory-bound; the compute kernel
  // at ~20 flop/byte must be compute-bound.
  const double n = 1e9;
  const WorkEstimate ws = streaming_kernel(n);
  const double t_mem_only =
      ws.total_bytes() / (dev.spec().hbm_bandwidth * dev.spec().hbm_efficiency);
  EXPECT_NEAR(dev.kernel_time(ws), t_mem_only, 0.05 * t_mem_only);

  const WorkEstimate wc = compute_kernel(n);
  const double t_cmp_only = wc.flops / (dev.spec().fp64_flops *
                                        dev.spec().compute_efficiency);
  EXPECT_NEAR(dev.kernel_time(wc), t_cmp_only, 0.05 * t_cmp_only);
}

TEST(SimDevice, DivergenceSlowsComputeBoundKernels) {
  SimDevice dev;
  WorkEstimate w = compute_kernel(1e9);
  const double base = dev.kernel_time(w);
  w.divergence = 3.0;
  EXPECT_NEAR(dev.kernel_time(w) / base, 3.0, 0.01);
}

TEST(SimDevice, ConflictingAtomicsAddTime) {
  SimDevice dev;
  WorkEstimate w = streaming_kernel(1e8);
  const double base = dev.kernel_time(w);
  w.atomic_ops = 1e8;
  w.atomic_conflict_rate = 0.5;
  EXPECT_GT(dev.kernel_time(w), base);
  // Conflict-free atomics are free in the model (covered by write traffic).
  w.atomic_conflict_rate = 0.0;
  EXPECT_DOUBLE_EQ(dev.kernel_time(w), base);
}

TEST(SimDevice, MpsSharingDividesThroughput) {
  SimDevice solo;
  SimDevice shared;
  shared.set_sharing(Sharing::kMps, 4);
  const WorkEstimate w = streaming_kernel(1e9);
  const double t_solo = solo.exec_time(w);
  const double t_shared = shared.exec_time(w);
  EXPECT_NEAR(t_shared / t_solo, 4.0, 0.1);
}

TEST(SimDevice, TimeSlicingPaysContextSwitches) {
  SimDevice mps;
  mps.set_sharing(Sharing::kMps, 4);
  SimDevice sliced;
  sliced.set_sharing(Sharing::kTimeSliced, 4);
  // Many small launches: the no-MPS path must be much slower, which is the
  // paper's observation that MPS is required for oversubscription (§3.1.2).
  WorkEstimate w = streaming_kernel(1e5);
  w.launches = 100.0;
  EXPECT_GT(sliced.exec_time(w), 3.0 * mps.exec_time(w));
}

TEST(SimDevice, SharingWithOneProcessIsExclusive) {
  SimDevice dev;
  dev.set_sharing(Sharing::kMps, 1);
  EXPECT_EQ(dev.sharing(), Sharing::kExclusive);
}

TEST(SimDevice, TransfersShareLink) {
  SimDevice solo;
  SimDevice shared;
  shared.set_sharing(Sharing::kMps, 2);
  const double bytes = 1e9;
  EXPECT_GT(shared.transfer_time(bytes), 1.9 * solo.transfer_time(bytes) -
                                             solo.spec().pcie_latency);
  EXPECT_DOUBLE_EQ(solo.transfer_time(0.0), 0.0);
}

TEST(SimDevice, AllocationTrackingAndOom) {
  SimDevice dev;
  const std::size_t cap = dev.capacity_bytes();
  dev.allocate(cap / 2);
  EXPECT_EQ(dev.allocated_bytes(), cap / 2);
  dev.allocate(cap / 4);
  EXPECT_THROW(dev.allocate(cap / 2), accel::DeviceOomError);
  dev.deallocate(cap / 2);
  EXPECT_NO_THROW(dev.allocate(cap / 2));
  dev.deallocate(2 * cap);  // over-free clamps to zero
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(SimDevice, OomErrorMessageIsDiagnostic) {
  SimDevice dev;
  const std::size_t cap = dev.capacity_bytes();
  dev.allocate(cap - 100);
  try {
    dev.allocate(1000);
    FAIL() << "allocation past capacity must throw";
  } catch (const accel::DeviceOomError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("simulated device out of memory"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("requested 1000 B"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(cap - 100)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(cap) + " B capacity"),
              std::string::npos)
        << msg;
  }
  // A failed allocation leaves the accounting untouched.
  EXPECT_EQ(dev.allocated_bytes(), cap - 100);
}

TEST(SimDevice, DeallocateUnderflowClampsToZero) {
  SimDevice dev;
  dev.deallocate(64);  // free on an empty device is a no-op
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  dev.allocate(10);
  dev.deallocate(4);
  EXPECT_EQ(dev.allocated_bytes(), 6u);
  dev.deallocate(100);  // over-free clamps instead of wrapping
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  EXPECT_NO_THROW(dev.allocate(dev.capacity_bytes()));
}

TEST(SimDevice, TransferCountersSplitByDirection) {
  SimDevice dev;
  dev.note_transfer(1000.0, 2.0, /*to_device=*/true);
  dev.note_transfer(300.0, 0.5, /*to_device=*/false);
  EXPECT_DOUBLE_EQ(dev.total_h2d_bytes(), 1000.0);
  EXPECT_DOUBLE_EQ(dev.total_d2h_bytes(), 300.0);
  EXPECT_DOUBLE_EQ(dev.total_h2d_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(dev.total_d2h_seconds(), 0.5);
  // Direction splits always sum to the aggregate counters.
  EXPECT_DOUBLE_EQ(dev.total_transfer_bytes(),
                   dev.total_h2d_bytes() + dev.total_d2h_bytes());
  EXPECT_DOUBLE_EQ(dev.total_transfer_seconds(),
                   dev.total_h2d_seconds() + dev.total_d2h_seconds());
  dev.reset_counters();
  EXPECT_DOUBLE_EQ(dev.total_h2d_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(dev.total_d2h_seconds(), 0.0);
}

TEST(HostModel, ThreadScalingComputeBound) {
  accel::HostModel host;
  const WorkEstimate w = compute_kernel(1e8);
  const double t1 = host.exec_time(w, 1, 1);
  const double t16 = host.exec_time(w, 16, 16);
  // Sub-linear: 16 threads deliver 16x work through a documented
  // thread-scaling efficiency of 1/(1 + 0.025 (t-1)).
  const double eff = 1.0 / (1.0 + 0.025 * 15.0);
  EXPECT_NEAR(t1 / t16, 16.0 * eff, 0.5);
  EXPECT_GT(t1 / t16, 8.0);
}

TEST(HostModel, MemoryBoundKernelsDontScalePastBandwidth) {
  accel::HostModel host;
  const WorkEstimate w = streaming_kernel(2e9);
  // All 64 threads active on the socket: using 16 vs 64 threads of a fully
  // busy socket changes only this kernel's *share*.
  const double t_full = host.exec_time(w, 64, 64);
  const double t_quarter = host.exec_time(w, 16, 64);
  EXPECT_NEAR(t_quarter / t_full, 4.0, 0.2);
}

TEST(HostModel, DivergenceCostsVectorizationOnly) {
  accel::HostModel host;
  WorkEstimate w = compute_kernel(1e8);
  const double base = host.exec_time(w, 8, 8);
  w.divergence = 2.0;
  const double slowed = host.exec_time(w, 8, 8);
  // CPU penalty for divergence is bounded (no lockstep execution).
  EXPECT_GT(slowed, base);
  EXPECT_LT(slowed, 2.5 * base);
}

TEST(HostModel, SerialIsSlowerThanThreaded) {
  accel::HostModel host;
  const WorkEstimate w = compute_kernel(1e8);
  EXPECT_GT(host.exec_time_serial(w), host.exec_time(w, 32, 32));
}

TEST(Problem, SizesMatchPaper) {
  const auto medium = toast::bench_model::medium_problem();
  EXPECT_DOUBLE_EQ(medium.paper_total_samples, 5.0e9);
  EXPECT_EQ(medium.nodes, 1);
  // ~1 TB of data as the paper states.
  EXPECT_NEAR(medium.paper_total_bytes(), 1.0e12, 2e11);

  const auto large = toast::bench_model::large_problem();
  EXPECT_DOUBLE_EQ(large.paper_total_samples, 5.0e10);
  EXPECT_EQ(large.nodes, 8);
  EXPECT_NEAR(large.paper_total_bytes(), 1.0e13, 2e12);
}

TEST(Problem, ThreadSplit) {
  auto p = toast::bench_model::medium_problem();
  p.procs_per_node = 16;
  EXPECT_EQ(p.threads_per_proc(), 4);
  p.procs_per_node = 64;
  EXPECT_EQ(p.threads_per_proc(), 1);
  p.procs_per_node = 1;
  EXPECT_EQ(p.threads_per_proc(), 64);
}

TEST(Problem, ScaleFactorIsConsistent) {
  const auto p = toast::bench_model::medium_problem();
  const double actual = static_cast<double>(p.actual_n_detectors) *
                        static_cast<double>(p.actual_n_samples) *
                        static_cast<double>(p.observations_per_proc);
  EXPECT_NEAR(p.sample_scale() * actual * p.total_procs(),
              p.paper_total_samples, 1.0);
}

TEST(WorkEstimateTest, ScalingLeavesStructureAlone) {
  WorkEstimate w = compute_kernel(1e3);
  w.divergence = 2.5;
  w.launches = 7.0;
  const WorkEstimate s = w.scaled(100.0);
  EXPECT_DOUBLE_EQ(s.flops, w.flops * 100.0);
  EXPECT_DOUBLE_EQ(s.bytes_read, w.bytes_read * 100.0);
  EXPECT_DOUBLE_EQ(s.divergence, 2.5);
  EXPECT_DOUBLE_EQ(s.launches, 7.0);
}

TEST(WorkEstimateTest, AccumulationWeightsStructure) {
  WorkEstimate a = compute_kernel(1e6);
  a.divergence = 1.0;
  WorkEstimate b = compute_kernel(1e6);
  b.divergence = 3.0;
  WorkEstimate sum = a;
  sum += b;
  EXPECT_DOUBLE_EQ(sum.divergence, 2.0);
  EXPECT_DOUBLE_EQ(sum.flops, a.flops + b.flops);
  EXPECT_DOUBLE_EQ(sum.launches, 2.0);
}
