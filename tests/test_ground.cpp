// Tests of the ground-telescope simulation and its interaction with the
// kernels (the same pipelines must run on ground scans unchanged).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/pipeline.hpp"
#include "kernels/jax.hpp"
#include "qarray/qarray.hpp"
#include "sim/ground.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
using core::Backend;

TEST(Ground, ObservationStructure) {
  const auto fp = sim::hex_focalplane(4, 37.0);
  const auto ob = sim::simulate_ground("ground", fp, 8192, {}, 1);
  EXPECT_EQ(ob.n_samples(), 8192);
  EXPECT_TRUE(ob.has_field(core::fields::kBoresight));
  EXPECT_TRUE(ob.has_field(core::fields::kHwpAngle));
  EXPECT_TRUE(ob.has_field(core::fields::kSharedFlags));
  EXPECT_GT(ob.intervals().size(), 2u);
}

TEST(Ground, TurnaroundsAreFlaggedAndOutsideIntervals) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  const auto ob = sim::simulate_ground("ground", fp, 8192, {}, 2);
  const auto flags = ob.field(core::fields::kSharedFlags).u8();
  // Some flagged samples exist (the turnarounds).
  long flagged = 0;
  for (const auto f : flags) flagged += f;
  EXPECT_GT(flagged, 0);
  EXPECT_LT(flagged, ob.n_samples() / 2);
  // Intervals cover only unflagged samples.
  for (const auto& ival : ob.intervals()) {
    for (std::int64_t s = ival.start; s < ival.stop; ++s) {
      EXPECT_EQ(flags[static_cast<std::size_t>(s)], 0)
          << "flagged sample " << s << " inside interval";
    }
  }
}

TEST(Ground, SweepIntervalLengthsVary) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  const auto ob = sim::simulate_ground("ground", fp, 16384, {}, 3);
  std::set<std::int64_t> lengths;
  for (const auto& ival : ob.intervals()) {
    lengths.insert(ival.length());
  }
  // The per-sweep turnaround jitter must produce varying lengths.
  EXPECT_GT(lengths.size(), 3u);
}

TEST(Ground, BoresightSweepsAzimuthBand) {
  const auto fp = sim::hex_focalplane(1, 37.0);
  sim::GroundScanParams params;
  params.azimuth_throw_deg = 60.0;
  const auto ob = sim::simulate_ground("ground", fp, 16384, params, 4);
  const auto bore = ob.field(core::fields::kBoresight).f64();
  // Directions must cover an angular band, not stare at one point: the
  // 60 degree azimuth throw at 50 degree elevation spans ~0.67 rad on
  // the sky.
  toast::qarray::Vec3 first{0.0, 0.0, 0.0};
  double min_dot = 1.0;
  for (std::int64_t s = 0; s < ob.n_samples(); s += 7) {
    const toast::qarray::Quat q{
        bore[static_cast<std::size_t>(4 * s)],
        bore[static_cast<std::size_t>(4 * s + 1)],
        bore[static_cast<std::size_t>(4 * s + 2)],
        bore[static_cast<std::size_t>(4 * s + 3)]};
    const auto dir = toast::qarray::rotate(q, {0.0, 0.0, 1.0});
    EXPECT_NEAR(dir[0] * dir[0] + dir[1] * dir[1] + dir[2] * dir[2], 1.0,
                1e-9);
    if (s == 0) {
      first = dir;
      continue;
    }
    min_dot = std::min(min_dot, first[0] * dir[0] + first[1] * dir[1] +
                                    first[2] * dir[2]);
  }
  EXPECT_LT(min_dot, std::cos(0.3));
}

TEST(Ground, FullPipelineRunsOnGroundData) {
  // The benchmark pipeline is scan-agnostic: the same operators process a
  // ground observation, and all backends agree bit-for-bit.
  const auto fp = sim::hex_focalplane(4, 37.0);
  auto make = [&] {
    core::Data data;
    data.observations.push_back(
        sim::simulate_ground("ground", fp, 4096, {}, 5));
    return data;
  };
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;

  auto run = [&](Backend b) {
    auto data = make();
    core::ExecConfig cfg;
    cfg.backend = b;
    core::ExecContext ctx(cfg);
    toast::kernels::jax::clear_jit_caches();
    auto pipeline = sim::make_benchmark_pipeline(wf);
    pipeline.exec(data, ctx);
    return data;
  };

  const auto cpu = run(Backend::kCpu);
  const auto omp = run(Backend::kOmpTarget);
  const auto jax = run(Backend::kJax);
  for (const char* field : {"signal", "zmap"}) {
    const auto a = cpu.observations[0].field(field).f64();
    const auto b = omp.observations[0].field(field).f64();
    const auto c = jax.observations[0].field(field).f64();
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_DOUBLE_EQ(a[i], b[i]) << field << " " << i;
      ASSERT_DOUBLE_EQ(a[i], c[i]) << field << " " << i;
    }
  }
}

TEST(OmpScopedDataRegion, MapsAndUnmaps) {
  toast::accel::SimDevice device;
  toast::accel::VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  toast::omptarget::Runtime rt(device, clock, tracer);

  std::vector<double> in(64, 2.0);
  std::vector<double> out(64, 0.0);
  {
    toast::omptarget::ScopedDataRegion region(
        rt, {{in.data(), in.size() * sizeof(double), true, false},
             {out.data(), out.size() * sizeof(double), false, true}});
    EXPECT_TRUE(rt.data_present(in.data()));
    EXPECT_TRUE(rt.data_present(out.data()));
    // "Kernel": copy doubled input to output on the device shadows.
    const double* din = rt.device_ptr(in.data());
    double* dout = rt.device_ptr(out.data());
    for (std::size_t i = 0; i < in.size(); ++i) {
      dout[i] = 2.0 * din[i];
    }
  }
  // Region closed: unmapped, and map(from:) copied the result back.
  EXPECT_FALSE(rt.data_present(in.data()));
  EXPECT_FALSE(rt.data_present(out.data()));
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[63], 4.0);
}
