// Schedule-space config layer (src/config/, docs/MODEL.md §12): canonical
// serialization, strict parsing, hash stability, and the bitwise oracle
// that a default ScheduleConfig reproduces the pre-refactor defaults.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_model/problem.hpp"
#include "config/schedule.hpp"
#include "mpisim/job.hpp"

namespace {

using toast::config::CommAlgorithm;
using toast::config::CommMode;
using toast::config::ScheduleConfig;
using toast::config::SolverComm;
using toast::config::Staging;

/// The fully explicit document from the schedule.hpp header comment:
/// every key spelled out at its documented default.
constexpr const char* kExplicitDefaults = R"({
  "schema": "toastcase-schedule-v1",
  "backend": "cpu",
  "staging": {"mode": "pipelined", "prefetch": false, "evict": false},
  "streams": 1,
  "comm": {"mode": "model", "algorithm": "ring", "chunk_bytes": 0},
  "solver": {"async_comm": "staged"},
  "shape": {"nodes": 0, "procs_per_node": 0},
  "device": {"mps": true, "jax_preallocate": false}
})";

ScheduleConfig non_default_config() {
  ScheduleConfig c;
  c.backend = "jax";
  c.staging.mode = Staging::kNaive;
  c.staging.prefetch = true;
  c.staging.evict = true;
  c.streams = 4;
  c.comm.mode = CommMode::kEngine;
  c.comm.algorithm = CommAlgorithm::kTree;
  c.comm.chunk_bytes = 1048576.0;
  c.solver.async_comm = SolverComm::kOverlap;
  c.shape.nodes = 2;
  c.shape.procs_per_node = 8;
  c.device.mps = false;
  c.device.jax_preallocate = true;
  return c;
}

TEST(ScheduleConfig, RoundTripsThroughCanonicalJson) {
  const ScheduleConfig original = non_default_config();
  const ScheduleConfig reparsed = ScheduleConfig::parse(original.json());
  EXPECT_EQ(reparsed, original);
  EXPECT_EQ(reparsed.hash(), original.hash());
  EXPECT_EQ(reparsed.json(), original.json());
}

TEST(ScheduleConfig, RoundTripsThroughFile) {
  const std::string path = testing::TempDir() + "schedule_roundtrip.json";
  const ScheduleConfig original = non_default_config();
  original.save_file(path);
  EXPECT_EQ(ScheduleConfig::load_file(path), original);
  std::remove(path.c_str());
}

TEST(ScheduleConfig, EveryKeyIsOptional) {
  const auto minimal =
      ScheduleConfig::parse(R"({"schema": "toastcase-schedule-v1"})");
  EXPECT_EQ(minimal, ScheduleConfig{});
}

TEST(ScheduleConfig, ExplicitDefaultsMatchDefaultConstruction) {
  // The header's documented defaults must be the real defaults: spelling
  // every knob out changes nothing, bit for bit.
  const auto parsed = ScheduleConfig::parse(kExplicitDefaults);
  EXPECT_EQ(parsed, ScheduleConfig{});
  EXPECT_EQ(parsed.hash(), ScheduleConfig{}.hash());
}

TEST(ScheduleConfig, CanonicalSerializationIsPinned) {
  // The canonical form feeds the hash, the plan-cache keys and every
  // saved artifact; changing it invalidates all of them, so it is pinned
  // here verbatim.
  EXPECT_EQ(
      ScheduleConfig{}.json(),
      "{\"schema\":\"toastcase-schedule-v1\",\"backend\":\"cpu\","
      "\"staging\":{\"mode\":\"pipelined\",\"prefetch\":false,"
      "\"evict\":false},\"streams\":1,\"comm\":{\"mode\":\"model\","
      "\"algorithm\":\"ring\",\"chunk_bytes\":0},"
      "\"solver\":{\"async_comm\":\"staged\"},"
      "\"shape\":{\"nodes\":0,\"procs_per_node\":0},"
      "\"device\":{\"mps\":true,\"jax_preallocate\":false}}");
  EXPECT_EQ(ScheduleConfig{}.hash_hex(), "99026a826263fd34");
}

TEST(ScheduleConfig, HashDistinguishesEveryAxis) {
  const std::uint64_t base = ScheduleConfig{}.hash();
  auto mutated = [&](auto&& mutate) {
    ScheduleConfig c;
    mutate(c);
    return c.hash();
  };
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.backend = "jax"; }), base);
  EXPECT_NE(
      mutated([](ScheduleConfig& c) { c.staging.mode = Staging::kNaive; }),
      base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.staging.prefetch = true; }),
            base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.staging.evict = true; }), base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.streams = 2; }), base);
  EXPECT_NE(
      mutated([](ScheduleConfig& c) { c.comm.mode = CommMode::kEngine; }),
      base);
  EXPECT_NE(mutated([](ScheduleConfig& c) {
              c.comm.algorithm = CommAlgorithm::kRecursive;
            }),
            base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.comm.chunk_bytes = 1.0; }),
            base);
  EXPECT_NE(mutated([](ScheduleConfig& c) {
              c.solver.async_comm = SolverComm::kSync;
            }),
            base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.shape.nodes = 1; }), base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.shape.procs_per_node = 1; }),
            base);
  EXPECT_NE(mutated([](ScheduleConfig& c) { c.device.mps = false; }), base);
  EXPECT_NE(
      mutated([](ScheduleConfig& c) { c.device.jax_preallocate = true; }),
      base);
}

TEST(ScheduleConfig, RejectsUnknownKeysAtEveryNestingLevel) {
  const auto rejects = [](const std::string& doc) {
    EXPECT_THROW(ScheduleConfig::parse(doc), std::runtime_error) << doc;
  };
  rejects(R"({"schema": "toastcase-schedule-v1", "stagnig": {}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "staging": {"mode": "pipelined", "prefetc": true}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "comm": {"algoritm": "ring"}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "solver": {"async": "staged"}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "shape": {"nodes": 0, "procs": 16}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "device": {"mps": true, "preallocate": false}})");
}

TEST(ScheduleConfig, RejectsMissingOrWrongSchema) {
  EXPECT_THROW(ScheduleConfig::parse(R"({"backend": "cpu"})"),
               std::runtime_error);
  EXPECT_THROW(ScheduleConfig::parse(R"({"schema": "toastcase-fault-plan-v1"})"),
               std::runtime_error);
  EXPECT_THROW(ScheduleConfig::parse("[]"), std::runtime_error);
}

TEST(ScheduleConfig, RejectsInvalidValues) {
  const auto rejects = [](const std::string& doc) {
    EXPECT_THROW(ScheduleConfig::parse(doc), std::runtime_error) << doc;
  };
  rejects(R"({"schema": "toastcase-schedule-v1", "backend": "cuda"})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "staging": {"mode": "eager"}})");
  rejects(R"({"schema": "toastcase-schedule-v1", "streams": 0})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "comm": {"chunk_bytes": -1}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "shape": {"nodes": -1}})");
  rejects(R"({"schema": "toastcase-schedule-v1",
              "solver": {"async_comm": "async"}})");
}

TEST(ScheduleConfig, BackendSlotRoundTripsThroughManifest) {
  using toast::core::Backend;
  for (const Backend b : {Backend::kCpu, Backend::kOmpTarget, Backend::kJax,
                          Backend::kJaxCpu, Backend::kJaxCompiled}) {
    ScheduleConfig c;
    c.set_backend(b);
    EXPECT_EQ(c.backend_id(), b);
  }
  ScheduleConfig bad;
  bad.backend = "tpu";
  EXPECT_THROW(bad.backend_id(), std::runtime_error);
}

// --- the pre-refactor oracle ------------------------------------------------

/// A default-constructed ScheduleConfig must reproduce the pre-refactor
/// per-layer defaults bit for bit: running the modelled job with the
/// implicit defaults and with the fully spelled-out document must agree
/// on every virtual-clock number.
TEST(ScheduleConfigOracle, DefaultsReproducePreRefactorJobBitwise) {
  using toast::core::Backend;
  for (const Backend backend :
       {Backend::kCpu, Backend::kJax, Backend::kOmpTarget}) {
    toast::mpisim::JobConfig implicit{toast::bench_model::medium_problem(),
                                      backend};

    toast::mpisim::JobConfig explicit_cfg = implicit;
    explicit_cfg.schedule = ScheduleConfig::parse(kExplicitDefaults);
    explicit_cfg.schedule.set_backend(backend);

    ASSERT_EQ(implicit.schedule, explicit_cfg.schedule);
    const auto a = toast::mpisim::run_benchmark_job(implicit);
    const auto b = toast::mpisim::run_benchmark_job(explicit_cfg);
    EXPECT_EQ(a.oom, b.oom);
    EXPECT_EQ(a.runtime, b.runtime) << toast::core::to_string(backend);
    EXPECT_EQ(a.host_seconds, b.host_seconds);
    EXPECT_EQ(a.device_seconds, b.device_seconds);
    EXPECT_EQ(a.transfer_seconds, b.transfer_seconds);
    EXPECT_EQ(a.comm_seconds, b.comm_seconds);
    EXPECT_EQ(a.plan_counters, b.plan_counters);
  }
}

}  // namespace
