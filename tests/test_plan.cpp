// Tests of the pipeline compilation layer (docs/MODEL.md "Pipeline
// compilation"): plan/interpreter bitwise equivalence, plan-cache
// behaviour, the runtime guards that make static plans safe, fault
// degradation as plan patching, prefetch hoisting and liveness eviction.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "fault/fault.hpp"
#include "kernels/jax.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
namespace fault = toast::fault;
using core::Backend;

namespace {

core::Data make_data(int n_obs = 2) {
  const auto fp = sim::hex_focalplane(4, 37.0);
  core::Data data;
  for (int ob = 0; ob < n_obs; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = 1024.0 / 37.0 / 4.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, 1024, scan,
        7 + static_cast<std::uint64_t>(ob)));
  }
  return data;
}

core::ExecContext make_ctx(Backend b,
                           const fault::FaultPlan& fplan = {}) {
  core::ExecConfig cfg;
  cfg.backend = b;
  cfg.fault_plan = fplan;
  return core::ExecContext(cfg);
}

core::Pipeline make_pipeline(
    core::Pipeline::Staging staging = core::Pipeline::Staging::kPipelined) {
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;
  return sim::make_benchmark_pipeline(wf, staging);
}

struct RunResult {
  double runtime = 0.0;
  toast::accel::TimeLog log;
  core::Data data;
};

RunResult run(Backend b, core::Pipeline::Staging staging, bool interpret,
              const fault::FaultPlan& fplan = {},
              const core::PlanOptions* popt = nullptr) {
  RunResult r;
  r.data = make_data();
  auto ctx = make_ctx(b, fplan);
  toast::kernels::jax::clear_jit_caches();
  auto pipeline = make_pipeline(staging);
  if (popt != nullptr) {
    pipeline.set_plan_options(*popt);
  }
  if (interpret) {
    pipeline.exec_interpreted(r.data, ctx);
  } else {
    pipeline.exec(r.data, ctx);
  }
  r.runtime = ctx.clock().now();
  r.log = ctx.log();
  return r;
}

void expect_logs_equal(const toast::accel::TimeLog& a,
                       const toast::accel::TimeLog& b) {
  ASSERT_EQ(a.categories(), b.categories());
  for (const auto& c : a.categories()) {
    EXPECT_EQ(a.seconds(c), b.seconds(c)) << c;
    EXPECT_EQ(a.calls(c), b.calls(c)) << c;
  }
}

void expect_fields_equal(const core::Data& a, const core::Data& b,
                         const char* field) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t o = 0; o < a.observations.size(); ++o) {
    const auto sa = a.observations[o].field(field).f64();
    const auto sb = b.observations[o].field(field).f64();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << field << " obs " << o << " index " << i;
    }
  }
}

/// An accelerated operator that declares a provides field it never
/// creates: the planner emits Map/Upload/Download steps for it and the
/// runtime guards must skip them all.
class GhostProvidesOp final : public core::Operator {
 public:
  std::string name() const override { return "ghost_provides"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override {
    return {std::string(core::fields::kSignal)};
  }
  std::vector<std::string> provides_fields() const override {
    return {"ghost"};
  }
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, Backend backend) override {
    (void)ob;
    (void)accel;
    (void)backend;
    ctx.charge_serial("ghost_provides", 1.0e-6);
  }
};

}  // namespace

// --- bitwise equivalence ---------------------------------------------------

TEST(PlanEquivalence, SyncPlanMatchesInterpreterPipelined) {
  const auto plan =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kPipelined, false);
  const auto interp =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kPipelined, true);
  EXPECT_EQ(plan.runtime, interp.runtime);
  expect_logs_equal(plan.log, interp.log);
  expect_fields_equal(plan.data, interp.data, "signal");
  expect_fields_equal(plan.data, interp.data, "zmap");
}

TEST(PlanEquivalence, SyncPlanMatchesInterpreterNaive) {
  const auto plan =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kNaive, false);
  const auto interp =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kNaive, true);
  EXPECT_EQ(plan.runtime, interp.runtime);
  expect_logs_equal(plan.log, interp.log);
  expect_fields_equal(plan.data, interp.data, "signal");
}

TEST(PlanEquivalence, SyncPlanMatchesInterpreterJax) {
  const auto plan =
      run(Backend::kJax, core::Pipeline::Staging::kPipelined, false);
  const auto interp =
      run(Backend::kJax, core::Pipeline::Staging::kPipelined, true);
  EXPECT_EQ(plan.runtime, interp.runtime);
  expect_logs_equal(plan.log, interp.log);
}

// --- fault handling --------------------------------------------------------

TEST(PlanFaults, NaiveStagingSurvivesTransferFaults) {
  // Injected transfer faults under naive staging: the cleanup downloads
  // swallow persistent failures (the op already ran; re-running in-place
  // ops would double-apply) and the run must complete with correct
  // science products.
  fault::FaultPlan fplan;
  fplan.seed = 11;
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kTransfer;
  rule.site = "accel_data_update";
  rule.probability = 1.0;
  rule.max_fires = 4;
  fplan.rules.push_back(rule);

  const auto chaotic =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kNaive, false, fplan);
  const auto clean =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kNaive, false);
  expect_fields_equal(chaotic.data, clean.data, "signal");
  expect_fields_equal(chaotic.data, clean.data, "zmap");
  EXPECT_GT(chaotic.runtime, clean.runtime);  // retries cost virtual time

  // And the planned chaos run still matches the interpreter bit for bit.
  const auto interp =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kNaive, true, fplan);
  EXPECT_EQ(chaotic.runtime, interp.runtime);
  expect_logs_equal(chaotic.log, interp.log);
}

TEST(PlanFaults, BackendOverrideRespectsDegradedKernels) {
  // A kernel degraded by a persistent fault stays on its CPU
  // implementation even through a pipeline-level accel override — the
  // plan key and the baked on_accel bit must both see degraded().
  auto data = make_data(1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  ctx.faults().mark_degraded("scan_map");
  auto pipeline = make_pipeline();
  pipeline.set_backend_override(Backend::kOmpTarget);
  const auto plan = pipeline.plan_for(data.observations.front(), ctx);
  bool saw_scan_map = false;
  bool saw_accel = false;
  for (std::size_t k = 0; k < plan->op_names.size(); ++k) {
    if (plan->op_names[k] == "scan_map") {
      saw_scan_map = true;
      EXPECT_EQ(plan->op_on_accel[k], 0) << "degraded kernel planned on GPU";
    }
    saw_accel = saw_accel || plan->op_on_accel[k] != 0;
  }
  EXPECT_TRUE(saw_scan_map);
  EXPECT_TRUE(saw_accel);  // the rest of the pipeline still uses the GPU

  pipeline.exec(data, ctx);  // and execution completes
  EXPECT_GT(ctx.log().seconds("scan_map"), 0.0);
}

TEST(PlanFaults, MidRunDegradeCountsReplans) {
  // Persistent launch faults on scan_map degrade it mid-run: the executor
  // patches the group to the host fallback and counts a replan; later
  // observations re-key the cache (miss) with scan_map on the host.
  fault::FaultPlan fplan;
  fplan.seed = 7;
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kLaunch;
  rule.site = "scan_map";
  rule.probability = 1.0;
  fplan.rules.push_back(rule);

  auto data = make_data();
  auto ctx = make_ctx(Backend::kOmpTarget, fplan);
  auto pipeline = make_pipeline();
  pipeline.exec(data, ctx);
  EXPECT_GE(pipeline.plan_stats().replans, 1.0);
  EXPECT_GE(pipeline.plan_stats().cache_misses, 2.0);  // re-keyed after degrade
  EXPECT_TRUE(ctx.faults().degraded("scan_map"));
  const auto counters = ctx.faults().counters();
  EXPECT_GT(counters.at("fault_plan_replans"), 0.0);

  const auto clean =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kPipelined, false);
  expect_fields_equal(data, clean.data, "zmap");
}

// --- runtime guards --------------------------------------------------------

TEST(PlanGuards, ProvidesFieldNeverMaterializedIsSkipped) {
  // ensure_fields never creates "ghost", so every planned step for it
  // must be skipped by the has_field guard — no crash, no mapping.
  auto data = make_data(1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  core::Pipeline pipeline({std::make_shared<GhostProvidesOp>()});
  pipeline.set_outputs({"ghost"});  // even the epilogue download is guarded
  pipeline.exec(data, ctx);
  EXPECT_FALSE(data.observations.front().has_field("ghost"));
  EXPECT_GT(ctx.log().seconds("ghost_provides"), 0.0);
}

// --- plan cache ------------------------------------------------------------

TEST(PlanCache, HitOnSecondObservationMissAfterOptionsChange) {
  auto data = make_data(2);
  auto ctx = make_ctx(Backend::kOmpTarget);
  auto pipeline = make_pipeline();
  pipeline.exec(data, ctx);
  EXPECT_EQ(pipeline.plan_stats().cache_misses, 1.0);
  EXPECT_EQ(pipeline.plan_stats().cache_hits, 1.0);  // same field layout

  core::PlanOptions popt;
  popt.prefetch = true;
  pipeline.set_plan_options(popt);  // clears the cache
  auto data2 = make_data(2);
  pipeline.exec(data2, ctx);
  EXPECT_EQ(pipeline.plan_stats().cache_misses, 2.0);
  EXPECT_EQ(pipeline.plan_stats().cache_hits, 2.0);
}

TEST(PlanCache, SameSeedTwiceIsBitwiseDeterministic) {
  const auto a =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kPipelined, false);
  const auto b =
      run(Backend::kOmpTarget, core::Pipeline::Staging::kPipelined, false);
  EXPECT_EQ(a.runtime, b.runtime);
  expect_logs_equal(a.log, b.log);
  expect_fields_equal(a.data, b.data, "signal");
  expect_fields_equal(a.data, b.data, "zmap");
}

// --- plan structure --------------------------------------------------------

TEST(PlanStructure, PipelinedAvoidsTransfersNaiveDoesNot) {
  auto data = make_data(1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  auto pipelined = make_pipeline(core::Pipeline::Staging::kPipelined);
  auto naive = make_pipeline(core::Pipeline::Staging::kNaive);
  const auto p = pipelined.plan_for(data.observations.front(), ctx);
  const auto n = naive.plan_for(data.observations.front(), ctx);
  EXPECT_GT(p->transfers_avoided, 0);
  EXPECT_EQ(n->transfers_avoided, 0);
  EXPECT_LT(p->planned_transfers, n->planned_transfers);
}

TEST(PlanStructure, PrefetchHoistsOnlyFieldsTheCurrentOpDoesNotTouch) {
  // The distance-1 hoist rule: an async upload placed during group k must
  // belong to op k+1 and name a field op k does not touch (uploading a
  // field k writes would stage stale host data).
  auto data = make_data(1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  auto pipeline = make_pipeline();
  core::PlanOptions popt;
  popt.prefetch = true;
  pipeline.set_plan_options(popt);
  const auto plan = pipeline.plan_for(data.observations.front(), ctx);
  const auto& meta = pipeline.metadata();
  EXPECT_GT(plan->prefetch_uploads, 0);
  int seen = 0;
  for (const auto& g : plan->groups) {
    if (g.op < 0) {
      continue;
    }
    for (int i = g.try_begin; i < g.post_begin; ++i) {
      const auto& s = plan->steps[static_cast<std::size_t>(i)];
      if (s.kind != core::StepKind::kUpload || !s.async) {
        continue;
      }
      ++seen;
      EXPECT_EQ(s.op, g.op + 1);
      const auto& cur = meta[static_cast<std::size_t>(g.op)].touched;
      const std::string& name =
          plan->field_names[static_cast<std::size_t>(s.field)];
      EXPECT_EQ(std::find(cur.begin(), cur.end(), name), cur.end())
          << "hoisted " << name << " which op " << g.op << " touches";
    }
  }
  EXPECT_EQ(seen, plan->prefetch_uploads);
}

TEST(PlanStructure, PrefetchAndEvictPreserveProductsAndLowerFootprint) {
  core::PlanOptions popt;
  popt.prefetch = true;
  popt.evict = true;

  auto base_data = make_data();
  auto base_ctx = make_ctx(Backend::kOmpTarget);
  auto base_pipeline = make_pipeline();
  base_pipeline.exec(base_data, base_ctx);

  auto opt_data = make_data();
  auto opt_ctx = make_ctx(Backend::kOmpTarget);
  auto opt_pipeline = make_pipeline();
  opt_pipeline.set_plan_options(popt);
  opt_pipeline.exec(opt_data, opt_ctx);

  expect_fields_equal(base_data, opt_data, "signal");
  expect_fields_equal(base_data, opt_data, "zmap");
  // Prefetch hides transfer time behind compute...
  EXPECT_LT(opt_ctx.clock().now(), base_ctx.clock().now());
  // ...and eviction lowers the peak device footprint.
  EXPECT_GT(opt_pipeline.plan_stats().evictions, 0.0);
  EXPECT_GT(base_pipeline.plan_stats().peak_mapped_bytes, 0.0);
  EXPECT_LT(opt_pipeline.plan_stats().peak_mapped_bytes,
            base_pipeline.plan_stats().peak_mapped_bytes);
}

TEST(PlanStructure, MetadataIsHoistedOnce) {
  auto pipeline = make_pipeline();
  const auto& meta = pipeline.metadata();
  ASSERT_EQ(meta.size(), pipeline.operators().size());
  for (std::size_t k = 0; k < meta.size(); ++k) {
    EXPECT_EQ(meta[k].name, pipeline.operators()[k]->name());
    EXPECT_EQ(meta[k].reads, pipeline.operators()[k]->requires_fields());
    EXPECT_EQ(meta[k].writes, pipeline.operators()[k]->provides_fields());
    for (std::size_t i = 1; i < meta[k].touched.size(); ++i) {
      EXPECT_LT(meta[k].touched[i - 1], meta[k].touched[i]);  // sorted set
    }
  }
}
