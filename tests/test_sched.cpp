// Tests for the virtual stream/event scheduler: in-order streams, event
// ordering, PCIe-link serialization, launch pipelining, and the exact
// equivalence of the 1-stream / synchronous paths with the plain
// clock-advance timeline.

#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace accel = toast::accel;
namespace sched = toast::sched;

namespace {

accel::WorkEstimate kernel(double n) {
  accel::WorkEstimate w;
  w.flops = 100.0 * n;
  w.bytes_read = 16.0 * n;
  w.bytes_written = 8.0 * n;
  w.launches = 1.0;
  w.parallel_items = n;
  return w;
}

struct Fixture {
  accel::SimDevice device;
  accel::VirtualClock clock;
  sched::Scheduler sch{device, clock, nullptr, /*n_streams=*/4};
};

}  // namespace

// --- schedule_batch --------------------------------------------------------

TEST(ScheduleBatch, OneStreamIsTheSerialSumExactly) {
  // With one stream the placement must reproduce the seed's
  // left-associative accumulation bit for bit, not just approximately.
  const double lead_in = 6.25e-6;
  std::vector<sched::BatchOp> ops;
  double serial = lead_in;
  for (const double t : {1.0e-3, 3.33e-4, 7.77e-5, 1.23e-6}) {
    ops.push_back({"op", t, /*launch_part=*/4.0e-6, {}});
  }
  const auto placed = sched::schedule_batch(ops, 1, lead_in);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(placed.start[i], serial) << "op " << i;
    serial += ops[i].duration;
    EXPECT_EQ(placed.end[i], serial) << "op " << i;
    EXPECT_EQ(placed.stream[i], 0);
  }
  EXPECT_EQ(placed.makespan, serial);
}

TEST(ScheduleBatch, EmptyBatchCostsTheLeadIn) {
  const auto placed = sched::schedule_batch({}, 4, 1.5e-5);
  EXPECT_DOUBLE_EQ(placed.makespan, 1.5e-5);
}

TEST(ScheduleBatch, IndependentOpsPipelineLaunchLatency) {
  // Two independent kernels on two streams: the second one's launch slice
  // hides in the first one's tail, so the makespan shrinks by exactly
  // launch_part versus the serial sum.
  const double lp = 4.0e-6;
  const std::vector<sched::BatchOp> ops = {
      {"a", 1.0e-3, lp, {}},
      {"b", 2.0e-3, lp, {}},
  };
  const auto one = sched::schedule_batch(ops, 1, 0.0);
  const auto two = sched::schedule_batch(ops, 2, 0.0);
  EXPECT_NE(two.stream[0], two.stream[1]);
  EXPECT_DOUBLE_EQ(two.start[1], one.end[0] - lp);
  EXPECT_NEAR(one.makespan - two.makespan, lp, 1e-15);
}

TEST(ScheduleBatch, DependentOpsDoNotOverlap) {
  // b reads a's output: no pipelining even with streams to spare.
  const std::vector<sched::BatchOp> ops = {
      {"a", 1.0e-3, 4.0e-6, {}},
      {"b", 2.0e-3, 4.0e-6, {0}},
  };
  const auto placed = sched::schedule_batch(ops, 4, 0.0);
  EXPECT_GE(placed.start[1], placed.end[0]);
  EXPECT_DOUBLE_EQ(placed.makespan, placed.end[1]);
}

// --- async engine ----------------------------------------------------------

TEST(SchedAsync, StreamsCompleteInOrder) {
  Fixture f;
  const double end1 = f.sch.launch_async(0, "a", kernel(1e6));
  const double end2 = f.sch.launch_async(0, "b", kernel(1e6));
  EXPECT_GT(end2, end1);
  ASSERT_EQ(f.sch.ops().size(), 2u);
  EXPECT_GE(f.sch.ops()[1].start, f.sch.ops()[0].end);
}

TEST(SchedAsync, TransfersSerializeOnTheLink) {
  // Different streams, one PCIe link: the second transfer starts exactly
  // when the first completes.
  Fixture f;
  const double end1 = f.sch.transfer_async(0, "h2d_a", 1e8, true);
  f.sch.transfer_async(1, "h2d_b", 1e8, true);
  EXPECT_DOUBLE_EQ(f.sch.ops()[1].start, end1);
}

TEST(SchedAsync, TransferOverlapsCompute) {
  // A transfer on one stream starts immediately even while a kernel owns
  // the compute engine on another.
  Fixture f;
  f.sch.launch_async(0, "k", kernel(1e8));
  f.sch.transfer_async(1, "h2d", 1e8, true);
  EXPECT_DOUBLE_EQ(f.sch.ops()[1].start, 0.0);
}

TEST(SchedAsync, LaunchLatencyPipelinesAcrossStreams) {
  Fixture f;
  const accel::WorkEstimate w = kernel(1e7);
  const double lp = w.launches * f.device.spec().launch_latency;
  const double end1 = f.sch.launch_async(0, "a", w);
  f.sch.launch_async(1, "b", w);
  // Kernel bodies serialize on the compute engine; only the launch slice
  // overlaps the first kernel's tail.
  EXPECT_DOUBLE_EQ(f.sch.ops()[1].start, end1 - lp);
}

TEST(SchedAsync, EventsOrderWorkAcrossStreams) {
  Fixture f;
  const double t_end = f.sch.transfer_async(0, "h2d", 1e8, true);
  const sched::EventId ev = f.sch.record_event(0);
  EXPECT_DOUBLE_EQ(f.sch.event_time(ev), t_end);
  // A kernel elsewhere that depends on the upload starts no earlier.
  f.sch.launch_async(1, "consume", kernel(1e6), {ev});
  EXPECT_GE(f.sch.ops().back().start, t_end);
  // Without the dependency it would have started immediately.
  Fixture g;
  g.sch.transfer_async(0, "h2d", 1e8, true);
  g.sch.launch_async(1, "consume", kernel(1e6));
  EXPECT_DOUBLE_EQ(g.sch.ops().back().start, 0.0);
}

TEST(SchedAsync, StreamWaitEventBlocksTheWholeStream) {
  Fixture f;
  const double t_end = f.sch.transfer_async(0, "h2d", 1e8, true);
  const sched::EventId ev = f.sch.record_event(0);
  f.sch.stream_wait_event(1, ev);
  f.sch.launch_async(1, "k", kernel(1e6));
  EXPECT_GE(f.sch.ops().back().start, t_end);
}

TEST(SchedAsync, SyncStreamWaitsOnlyForThatStream) {
  Fixture f;
  const double short_end = f.sch.launch_async(0, "short", kernel(1e5));
  f.sch.transfer_async(1, "long", 1e9, true);
  f.sch.sync_stream(0);
  EXPECT_DOUBLE_EQ(f.clock.now(), short_end);
  EXPECT_FALSE(f.sch.idle());
  f.sch.sync_all();
  EXPECT_TRUE(f.sch.idle());
}

TEST(SchedAsync, PendingTransferCompletionDrains) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.sch.pending_transfer_completion(), 0.0);
  const double end = f.sch.transfer_async(0, "h2d", 1e8, true);
  EXPECT_DOUBLE_EQ(f.sch.pending_transfer_completion(), end);
  f.sch.sync_transfers();
  EXPECT_DOUBLE_EQ(f.sch.pending_transfer_completion(), 0.0);
}

// --- synchronous path ------------------------------------------------------

TEST(SchedSync, DrainedEnginesUseSeedArithmetic) {
  // On a drained device the sync ops must advance the clock by exactly
  // the model times — the same doubles a bare clock.advance() would add.
  Fixture f;
  accel::VirtualClock ref;
  const accel::WorkEstimate w = kernel(1e6);

  f.sch.transfer_sync("h2d", 1e8, true);
  ref.advance(f.device.transfer_time(1e8));
  EXPECT_EQ(f.clock.now(), ref.now());

  f.sch.kernel_sync("k", w, /*host_overhead=*/6.0e-6);
  ref.advance(f.device.exec_time(w) + 6.0e-6);
  EXPECT_EQ(f.clock.now(), ref.now());

  f.sch.fill_sync("fill", 1e8);
  ref.advance(f.device.fill_time(1e8));
  EXPECT_EQ(f.clock.now(), ref.now());
}

TEST(SchedSync, OneStreamPipelineEqualsSyncBitForBit) {
  // The serial-equivalence guarantee behind bench_overlap: submitting a
  // whole H2D+kernel pipeline on one stream and draining it lands the
  // clock on exactly the synchronous timeline.
  Fixture async_f;
  Fixture sync_f;
  const accel::WorkEstimate w = kernel(3e6);
  for (int i = 0; i < 5; ++i) {
    async_f.sch.transfer_async(0, "h2d", 1e8, true);
    async_f.sch.launch_async(0, "k", w);
    sync_f.sch.transfer_sync("h2d", 1e8, true);
    sync_f.sch.kernel_sync("k", w);
  }
  async_f.sch.sync_all();
  EXPECT_EQ(async_f.clock.now(), sync_f.clock.now());
}

TEST(SchedSync, WaitAfterAsyncChargesOnlyTheRemainder) {
  // Async transfer, then a sync kernel long enough to cover it: the
  // transfer wait is free (the omptarget wait_transfers semantics).
  Fixture f;
  f.sch.transfer_async(0, "h2d", 1e6, true);
  f.sch.kernel_sync("k", kernel(1e9));
  const double before = f.clock.now();
  f.sch.sync_transfers();
  EXPECT_DOUBLE_EQ(f.clock.now(), before);
}

TEST(SchedSync, CountersSplitByDirection) {
  Fixture f;
  f.sch.transfer_sync("h2d", 1000.0, true);
  f.sch.transfer_async(0, "d2h", 500.0, false);
  EXPECT_DOUBLE_EQ(f.device.total_h2d_bytes(), 1000.0);
  EXPECT_DOUBLE_EQ(f.device.total_d2h_bytes(), 500.0);
  EXPECT_GT(f.device.total_h2d_seconds(), 0.0);
  EXPECT_GT(f.device.total_d2h_seconds(), 0.0);
}

TEST(SchedSync, NegativeStreamIdThrows) {
  Fixture f;
  EXPECT_THROW(f.sch.launch_async(-1, "k", kernel(1.0)),
               std::out_of_range);
}

TEST(SchedSync, StreamsGrowOnDemand) {
  Fixture f;
  EXPECT_EQ(f.sch.n_streams(), 4);
  f.sch.launch_async(7, "k", kernel(1.0));
  EXPECT_EQ(f.sch.n_streams(), 8);
}
