// Tests of the async task-graph runtime (docs/MODEL.md §11): dependency
// derivation from declared resource uses, the engine's two faces (serial
// bitwise oracle, overlap placement with explicit wait charges), and
// bitwise equivalence of lowered graph runs with staged plan replay —
// including under a pinned launch-chaos plan that re-routes a group to
// its patch tasks.

#include "async/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "async/lower.hpp"
#include "async/registry.hpp"
#include "core/pipeline.hpp"
#include "fault/fault.hpp"
#include "kernels/jax.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

namespace accel = toast::accel;
namespace async = toast::async;
namespace core = toast::core;
namespace fault = toast::fault;
namespace obs = toast::obs;
namespace sim = toast::sim;
using core::Backend;

namespace {

core::Data make_data(int n_obs = 2) {
  const auto fp = sim::hex_focalplane(4, 37.0);
  core::Data data;
  for (int ob = 0; ob < n_obs; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = 1024.0 / 37.0 / 4.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, 1024, scan,
        7 + static_cast<std::uint64_t>(ob)));
  }
  return data;
}

struct RunResult {
  double runtime = 0.0;
  toast::accel::TimeLog log;
  core::Data data;
  async::GraphReport report;  // task-graph runs only
};

RunResult run(Backend b, bool task_graph,
              const fault::FaultPlan& fplan = {}) {
  RunResult r;
  r.data = make_data();
  core::ExecConfig cfg;
  cfg.backend = b;
  cfg.fault_plan = fplan;
  core::ExecContext ctx(cfg);
  toast::kernels::jax::clear_jit_caches();
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  if (task_graph) {
    core::PlanStats stats;
    for (auto& ob : r.data.observations) {
      r.report.merge(async::run_plan_async(pipeline, ob, ctx, stats));
    }
  } else {
    pipeline.exec(r.data, ctx);
  }
  r.runtime = ctx.clock().now();
  r.log = ctx.log();
  return r;
}

void expect_logs_equal(const toast::accel::TimeLog& a,
                       const toast::accel::TimeLog& b) {
  ASSERT_EQ(a.categories(), b.categories());
  for (const auto& c : a.categories()) {
    EXPECT_EQ(a.seconds(c), b.seconds(c)) << c;
    EXPECT_EQ(a.calls(c), b.calls(c)) << c;
  }
}

void expect_fields_equal(const core::Data& a, const core::Data& b,
                         const char* field) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t o = 0; o < a.observations.size(); ++o) {
    const auto sa = a.observations[o].field(field).f64();
    const auto sb = b.observations[o].field(field).f64();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << field << " obs " << o << " index " << i;
    }
  }
}

async::Task named(const char* name) {
  async::Task t;
  t.name = name;
  return t;
}

}  // namespace

// --- dependency derivation --------------------------------------------------

TEST(TaskRegistry, DerivesRawWawWarDeps) {
  async::TaskGraph g;
  async::TaskRegistry reg(g);
  const int w0 = reg.add(named("w0"), {async::writes("x")});
  const int r1 = reg.add(named("r1"), {async::reads("x")});
  const int r2 = reg.add(named("r2"), {async::reads("x")});
  const int w3 = reg.add(named("w3"), {async::writes("x")});
  const int r4 = reg.add(named("r4"), {async::reads("x")});
  EXPECT_TRUE(g.tasks[static_cast<std::size_t>(w0)].deps.empty());
  // RAW: readers depend on the last writer.
  EXPECT_EQ(g.tasks[static_cast<std::size_t>(r1)].deps, std::vector<int>{w0});
  EXPECT_EQ(g.tasks[static_cast<std::size_t>(r2)].deps, std::vector<int>{w0});
  // WAW on w0 plus WAR on both readers, sorted.
  EXPECT_EQ(g.tasks[static_cast<std::size_t>(w3)].deps,
            (std::vector<int>{w0, r1, r2}));
  // The second write retired the readers: only RAW on w3.
  EXPECT_EQ(g.tasks[static_cast<std::size_t>(r4)].deps, std::vector<int>{w3});
  // Each write bumped the version.
  EXPECT_EQ(reg.epoch_of("x"), 2);
  EXPECT_EQ(reg.epoch_of("never_touched"), 0);
}

TEST(TaskRegistry, DisjointResourcesStayIndependent) {
  async::TaskGraph g;
  async::TaskRegistry reg(g);
  reg.add(named("wx"), {async::writes("x")});
  const int wy = reg.add(named("wy"), {async::writes("y")});
  const int rw =
      reg.add(named("rw"), {async::reads("x"), async::writes("y")});
  EXPECT_TRUE(g.tasks[static_cast<std::size_t>(wy)].deps.empty());
  // Mixed-use task: RAW on x's writer + WAW on y's writer.
  EXPECT_EQ(g.tasks[static_cast<std::size_t>(rw)].deps,
            (std::vector<int>{0, wy}));
}

TEST(TaskRegistry, PatchTasksBypassTheVersionTable) {
  async::TaskGraph g;
  async::TaskRegistry reg(g);
  reg.add(named("body"), {async::writes("x")});
  const int alt = reg.add_alt(named("patch"));
  EXPECT_EQ(alt, 0);
  ASSERT_EQ(g.alt_tasks.size(), 1u);
  EXPECT_TRUE(g.alt_tasks[0].deps.empty());
  EXPECT_EQ(reg.epoch_of("x"), 1);  // the patch did not bump anything
}

// --- serial face: the bitwise oracle ----------------------------------------

TEST(Engine, SerialSubmitChargesLikeTheBlockingCall) {
  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  async::Engine eng(clock, &tracer);  // Mode::kSerial
  const int lane = eng.lane("comm");
  const auto f =
      eng.submit(lane, "allreduce", "comm", [](double) { return 0.25; });
  // Serial submit charges immediately: the future is already resolved.
  EXPECT_EQ(clock.now(), 0.25);
  EXPECT_EQ(f.ready, 0.25);
  EXPECT_EQ(eng.pending_count(), 0);
  EXPECT_EQ(eng.await(f, "allreduce_wait"), 0.0);
  EXPECT_EQ(eng.drain("drain"), 0.0);
  EXPECT_EQ(clock.now(), 0.25);  // the no-op await charged nothing

  // Bit-for-bit what the blocking code would have logged.
  accel::VirtualClock manual_clock;
  obs::Tracer manual(&manual_clock);
  manual_clock.advance(0.25);
  manual.record("allreduce", "comm", 0.25);
  EXPECT_EQ(clock.now(), manual_clock.now());
  expect_logs_equal(tracer.timelog(), manual.timelog());
}

TEST(Engine, OverlapGraphRunPlacesAgainstDeps) {
  // Hand-built graph: two independent 1s charges on different lanes plus
  // a task depending on both.  The serial sum is 3s; the placed makespan
  // overlaps the independent pair, landing the clock on 2s — while the
  // functional order (and thus every charge the bodies make) stays the
  // serial one.
  auto build = [](accel::VirtualClock& clock) {
    async::TaskGraph g;
    g.lane_names = {"host", "compute"};
    for (int i = 0; i < 3; ++i) {
      async::Task t;
      t.id = i;
      t.name = "t" + std::to_string(i);
      t.lane = i == 0 ? 0 : 1;
      if (i == 2) {
        t.lane = 0;
        t.deps = {0, 1};
      }
      t.run = [&clock](bool) { clock.advance(1.0); };
      g.tasks.push_back(std::move(t));
    }
    async::TaskGroup all;
    all.begin = 0;
    all.body_begin = all.post_begin = all.tail_begin = all.end = 3;
    g.groups.push_back(std::move(all));
    return g;
  };

  accel::VirtualClock serial_clock;
  obs::Tracer serial_tracer(&serial_clock);
  async::Engine serial(serial_clock, &serial_tracer);
  auto sg = build(serial_clock);
  const auto srep = serial.run(sg);
  EXPECT_EQ(serial_clock.now(), 3.0);
  EXPECT_EQ(srep.makespan_s, 3.0);

  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  async::Options opt;
  opt.mode = async::Mode::kOverlap;
  async::Engine eng(clock, &tracer, opt);
  auto g = build(clock);
  const auto rep = eng.run(g);
  // Busy time (the TimeLog view) is unchanged; the clock lands on the
  // placed makespan: t0 and t1 overlap, t2 waits for both.
  EXPECT_EQ(rep.total_busy_s, srep.total_busy_s);
  EXPECT_EQ(rep.makespan_s, 2.0);
  EXPECT_EQ(clock.now(), 2.0);
  // Placed times: t1 starts at 0 on its own lane, t2 at max(dep ends).
  EXPECT_EQ(g.tasks[0].start, 0.0);
  EXPECT_EQ(g.tasks[1].start, 0.0);
  EXPECT_EQ(g.tasks[2].start, 1.0);
}

// --- overlap face: placement and wait charges --------------------------------

TEST(Engine, OverlapPlacesAtMaxOfNowLaneAndDeps) {
  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  async::Options opt;
  opt.mode = async::Mode::kOverlap;
  async::Engine eng(clock, &tracer, opt);
  const int a = eng.lane("a");
  const int b = eng.lane("b");

  const auto f1 = eng.submit(a, "one", "comm", [](double) { return 1.0; });
  EXPECT_EQ(clock.now(), 0.0);  // submit never advances the clock
  EXPECT_EQ(f1.ready, 1.0);
  const auto f2 = eng.submit(a, "two", "comm", [](double) { return 1.0; });
  EXPECT_EQ(f2.ready, 2.0);  // same lane serializes
  const auto f3 =
      eng.submit(b, "three", "comm", [](double) { return 0.5; }, {f2});
  EXPECT_EQ(f3.ready, 2.5);  // dep-bound, not lane-bound
  EXPECT_EQ(eng.pending_count(), 3);

  // Awaiting charges the remaining slack as an explicit wait span.
  EXPECT_EQ(eng.await(f3, "three_wait"), 2.5);
  EXPECT_EQ(clock.now(), 2.5);
  EXPECT_EQ(tracer.seconds("three_wait"), 2.5);
  EXPECT_EQ(eng.pending_count(), 0);
  EXPECT_EQ(eng.await(f3, "again"), 0.0);  // already resolved: no-op
}

TEST(Engine, OverlapCostIsAFunctionOfPlacedStartTime) {
  // The cost callback sees the *placed* start, not submission time: a
  // task queued behind its lane must price itself at the later epoch.
  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  async::Options opt;
  opt.mode = async::Mode::kOverlap;
  async::Engine eng(clock, &tracer, opt);
  const int lane = eng.lane("comm");
  std::vector<double> starts;
  const auto cost = [&starts](double start) {
    starts.push_back(start);
    return 1.0;
  };
  eng.submit(lane, "one", "comm", cost);
  eng.submit(lane, "two", "comm", cost);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0.0);
  EXPECT_EQ(starts[1], 1.0);
  EXPECT_EQ(eng.drain("drain"), 2.0);
  EXPECT_EQ(clock.now(), 2.0);
}

TEST(Engine, OverlapReplayIsBitwiseDeterministic) {
  const auto episode = [] {
    accel::VirtualClock clock;
    obs::Tracer tracer(&clock);
    async::Options opt;
    opt.mode = async::Mode::kOverlap;
    async::Engine eng(clock, &tracer, opt);
    const int a = eng.lane("a");
    const int b = eng.lane("b");
    async::Future last{};
    for (int i = 0; i < 8; ++i) {
      last = eng.submit(i % 2 == 0 ? a : b, "tick", "comm",
                        [i](double) { return 0.125 * (i + 1); },
                        last.valid() ? std::vector<async::Future>{last}
                                     : std::vector<async::Future>{});
    }
    eng.drain("drain");
    return clock.now();
  };
  EXPECT_EQ(episode(), episode());
}

// --- lowered graph vs staged replay ------------------------------------------

TEST(AsyncLowering, SerialGraphRunMatchesStagedReplayBitwise) {
  const auto staged = run(Backend::kOmpTarget, false);
  const auto graph = run(Backend::kOmpTarget, true);
  EXPECT_EQ(graph.runtime, staged.runtime);
  expect_logs_equal(graph.log, staged.log);
  expect_fields_equal(graph.data, staged.data, "signal");
  expect_fields_equal(graph.data, staged.data, "zmap");

  // And the report sees real graph structure.
  EXPECT_GT(graph.report.n_tasks, 0);
  EXPECT_GT(graph.report.n_groups, 0);
  EXPECT_EQ(graph.report.patched, 0);
  EXPECT_GT(graph.report.critical_path_s, 0.0);
  EXPECT_LE(graph.report.critical_path_s, graph.report.total_busy_s);
  EXPECT_GE(graph.report.overlap_fraction, 0.0);
  EXPECT_LT(graph.report.overlap_fraction, 1.0);
}

TEST(AsyncLowering, GraphRunMatchesStagedReplayUnderLaunchChaos) {
  // A pinned launch-fault plan forces scan_map to degrade mid-run: the
  // graph must take the same decide/attempt/patch route as staged replay
  // and stay bitwise identical.
  fault::FaultPlan fplan;
  fplan.seed = 7;
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kLaunch;
  rule.site = "scan_map";
  rule.probability = 1.0;
  fplan.rules.push_back(rule);

  const auto staged = run(Backend::kOmpTarget, false, fplan);
  const auto graph = run(Backend::kOmpTarget, true, fplan);
  EXPECT_EQ(graph.runtime, staged.runtime);
  expect_logs_equal(graph.log, staged.log);
  expect_fields_equal(graph.data, staged.data, "signal");
  expect_fields_equal(graph.data, staged.data, "zmap");
  EXPECT_GT(graph.report.patched, 0);  // the degrade re-routed to patches
}
