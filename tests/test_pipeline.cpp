// Integration tests of the hybrid pipeline: cross-backend equivalence of
// the full benchmark workflow, staging state-machine correctness, naive
// vs pipelined transfer behaviour, and dispatch overrides.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "kernels/jax.hpp"
#include "kernels/operators.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
using core::Backend;

namespace {

core::Data make_data(std::int64_t n_det = 4, std::int64_t n_samp = 1024,
                     int n_obs = 2) {
  const auto fp = sim::hex_focalplane(n_det, 37.0);
  core::Data data;
  for (int ob = 0; ob < n_obs; ++ob) {
    sim::ScanParams scan;
    scan.spin_period = static_cast<double>(n_samp) / 37.0 / 4.0;
    data.observations.push_back(sim::simulate_satellite(
        "obs" + std::to_string(ob), fp, n_samp, scan,
        7 + static_cast<std::uint64_t>(ob)));
  }
  return data;
}

core::ExecContext make_ctx(Backend b) {
  core::ExecConfig cfg;
  cfg.backend = b;
  return core::ExecContext(cfg);
}

core::Data run_workflow(Backend b,
                        core::Pipeline::Staging staging =
                            core::Pipeline::Staging::kPipelined) {
  auto data = make_data();
  auto ctx = make_ctx(b);
  toast::kernels::jax::clear_jit_caches();
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;
  auto pipeline = sim::make_benchmark_pipeline(wf, staging);
  pipeline.exec(data, ctx);
  return data;
}

void expect_fields_equal(const core::Data& a, const core::Data& b,
                         const char* field) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t o = 0; o < a.observations.size(); ++o) {
    const auto& fa = a.observations[o].field(field);
    const auto& fb = b.observations[o].field(field);
    ASSERT_EQ(fa.count(), fb.count());
    const auto sa = fa.f64();
    const auto sb = fb.f64();
    for (std::int64_t i = 0; i < fa.count(); ++i) {
      ASSERT_DOUBLE_EQ(sa[static_cast<std::size_t>(i)],
                       sb[static_cast<std::size_t>(i)])
          << field << " obs " << o << " index " << i;
    }
  }
}

}  // namespace

TEST(PipelineEquivalence, FullWorkflowAcrossBackends) {
  // The complete benchmark pipeline must produce bit-identical science
  // products on every backend (the paper's ports preserved outputs).
  const auto cpu = run_workflow(Backend::kCpu);
  const auto omp = run_workflow(Backend::kOmpTarget);
  const auto jax = run_workflow(Backend::kJax);
  const auto jax_cpu = run_workflow(Backend::kJaxCpu);

  for (const char* field : {"signal", "zmap", "amplitudes"}) {
    expect_fields_equal(cpu, omp, field);
    expect_fields_equal(cpu, jax, field);
    expect_fields_equal(cpu, jax_cpu, field);
  }
}

TEST(PipelineEquivalence, NaiveStagingSameResults) {
  const auto a = run_workflow(Backend::kOmpTarget,
                              core::Pipeline::Staging::kPipelined);
  const auto b =
      run_workflow(Backend::kOmpTarget, core::Pipeline::Staging::kNaive);
  for (const char* field : {"signal", "zmap", "amplitudes"}) {
    expect_fields_equal(a, b, field);
  }
}

TEST(PipelineEquivalence, PerKernelOverride) {
  // Route just pixels_healpix to JAX inside an otherwise OMP run
  // (paper §3.2.1: per-kernel implementation selection).
  auto data = make_data();
  auto ctx = make_ctx(Backend::kOmpTarget);
  ctx.set_kernel_backend("pixels_healpix", Backend::kJax);
  toast::kernels::jax::clear_jit_caches();
  sim::WorkflowConfig wf;
  wf.nside = 32;
  wf.map_iterations = 2;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);
  EXPECT_GT(ctx.log().seconds("pixels_healpix"), 0.0);
  EXPECT_GT(ctx.log().seconds("jit_compile"), 0.0);  // proof JAX ran

  const auto reference = run_workflow(Backend::kOmpTarget);
  expect_fields_equal(reference, data, "signal");
  expect_fields_equal(reference, data, "zmap");
}

TEST(PipelineStaging, TransfersOnlyAtBoundaries) {
  core::ExecContext ctx = make_ctx(Backend::kOmpTarget);
  auto data = make_data(2, 512, 1);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  wf.map_iterations = 3;
  wf.include_unported = false;  // pure GPU section: minimal movement
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);
  // With no host-only operators inside the GPU section, each field is
  // uploaded at most once and downloaded at most once per observation;
  // the map-making iterations run entirely on the device.
  // One upload per distinct input field (boresight, flags, fp_quats, hwp,
  // pol_eff, sky_map, signal, det_weights, det_scale, zmap, amplitudes)
  // and one download per science product.
  const long uploads = ctx.log().calls("accel_data_update_device");
  const long downloads = ctx.log().calls("accel_data_update_host");
  EXPECT_LE(uploads, 12);
  EXPECT_LE(downloads, 5);
}

TEST(PipelineStaging, NaiveMovesMuchMoreData) {
  core::ExecContext a = make_ctx(Backend::kOmpTarget);
  core::ExecContext b = make_ctx(Backend::kOmpTarget);
  auto d1 = make_data(2, 512, 1);
  auto d2 = make_data(2, 512, 1);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  wf.map_iterations = 3;
  auto staged = sim::make_benchmark_pipeline(
      wf, core::Pipeline::Staging::kPipelined);
  auto naive =
      sim::make_benchmark_pipeline(wf, core::Pipeline::Staging::kNaive);
  staged.exec(d1, a);
  naive.exec(d2, b);
  EXPECT_GT(b.log().calls("accel_data_update_device"),
            3 * a.log().calls("accel_data_update_device"));
}

TEST(PipelineStaging, HostOperatorForcesReadback) {
  // A host-only operator between GPU operators must see up-to-date data.
  auto data = make_data(2, 256, 1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  wf.map_iterations = 1;
  wf.include_unported = true;  // unported host ops touch "signal"
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);
  EXPECT_GT(ctx.log().calls("accel_data_update_host"), 0);
}

TEST(PipelineStaging, CpuBackendDoesNoStaging) {
  core::ExecContext ctx = make_ctx(Backend::kCpu);
  auto data = make_data(2, 256, 1);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  wf.map_iterations = 1;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.exec(data, ctx);
  EXPECT_EQ(ctx.log().calls("accel_data_update_device"), 0);
  EXPECT_EQ(ctx.log().calls("accel_data_create"), 0);
}

TEST(PipelineStaging, PipelineOverrideForcesBackend) {
  auto data = make_data(2, 256, 1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  wf.map_iterations = 1;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.set_backend_override(Backend::kCpu);
  pipeline.exec(data, ctx);
  // Everything forced to CPU: no device activity at all.
  EXPECT_EQ(ctx.log().calls("accel_data_update_device"), 0);
  EXPECT_EQ(ctx.device().total_launches(), 0u);
}

TEST(PipelineStaging, CustomOutputsControlCopyBack) {
  // Restricting the output list must skip the copy-back of everything
  // else; the skipped field keeps its stale host content.
  auto data = make_data(2, 256, 1);
  auto ctx = make_ctx(Backend::kOmpTarget);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  wf.map_iterations = 1;
  wf.include_unported = false;
  auto pipeline = sim::make_benchmark_pipeline(wf);
  pipeline.set_outputs({std::string(core::fields::kZmap)});
  pipeline.exec(data, ctx);
  const auto& ob = data.observations[0];
  // zmap came back with content...
  double zpower = 0.0;
  for (const double v : ob.field(core::fields::kZmap).f64()) zpower += v * v;
  EXPECT_GT(zpower, 0.0);
  // ...while quats (a device-only intermediate) is still all zeros on
  // the host.
  double qpower = 0.0;
  for (const double v : ob.field(core::fields::kQuats).f64()) qpower += v * v;
  EXPECT_DOUBLE_EQ(qpower, 0.0);
}

TEST(PipelineStaging, ScienceOutputsAreFinite) {
  const auto data = run_workflow(Backend::kOmpTarget);
  for (const auto& ob : data.observations) {
    for (const double v : ob.field("signal").f64()) {
      ASSERT_TRUE(std::isfinite(v));
    }
    double map_power = 0.0;
    for (const double v : ob.field("zmap").f64()) {
      ASSERT_TRUE(std::isfinite(v));
      map_power += v * v;
    }
    EXPECT_GT(map_power, 0.0);  // the map actually accumulated something
  }
}
