// Unit, property and consistency tests for the HEALPix substrate.

#include "healpix/healpix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

using toast::healpix::Healpix;

namespace {

constexpr double kPi = std::numbers::pi;

struct Dir {
  double theta;
  double phi;
};

std::vector<Dir> random_directions(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> uz(-1.0, 1.0);
  std::uniform_real_distribution<double> uphi(-2.0 * kPi, 2.0 * kPi);
  std::vector<Dir> dirs(n);
  for (auto& d : dirs) {
    d.theta = std::acos(uz(gen));
    d.phi = uphi(gen);
  }
  return dirs;
}

}  // namespace

TEST(HealpixBits, InterleaveRoundTrip) {
  std::mt19937 gen(1);
  std::uniform_int_distribution<std::uint32_t> dist;
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint32_t x = dist(gen);
    const std::uint32_t y = dist(gen);
    std::uint32_t x2 = 0, y2 = 0;
    toast::healpix::deinterleave_bits(toast::healpix::interleave_bits(x, y),
                                      x2, y2);
    EXPECT_EQ(x, x2);
    EXPECT_EQ(y, y2);
  }
}

TEST(HealpixBits, InterleaveKnownValues) {
  EXPECT_EQ(toast::healpix::interleave_bits(0, 0), 0u);
  EXPECT_EQ(toast::healpix::interleave_bits(1, 0), 1u);
  EXPECT_EQ(toast::healpix::interleave_bits(0, 1), 2u);
  EXPECT_EQ(toast::healpix::interleave_bits(1, 1), 3u);
  EXPECT_EQ(toast::healpix::interleave_bits(2, 3), 0b1110u);
}

TEST(Healpix, ConstructionValidatesNside) {
  EXPECT_THROW(Healpix(0), std::invalid_argument);
  EXPECT_THROW(Healpix(3), std::invalid_argument);
  EXPECT_THROW(Healpix(-8), std::invalid_argument);
  EXPECT_NO_THROW(Healpix(1));
  EXPECT_NO_THROW(Healpix(1024));
}

TEST(Healpix, GeometryCounts) {
  const Healpix hp(16);
  EXPECT_EQ(hp.npix(), 12 * 16 * 16);
  EXPECT_EQ(hp.ncap(), 2 * 16 * 15);
  EXPECT_EQ(hp.nrings(), 63);
  EXPECT_NEAR(hp.pixarea() * static_cast<double>(hp.npix()), 4.0 * kPi,
              1e-12);
}

TEST(Healpix, Nside1FaceCenters) {
  // At nside=1 the 12 pixels are the base faces; NESTED face 4 is on the
  // equator at phi=0 (Gorski et al. 2005, Fig. 4).
  const Healpix hp(1);
  double theta = 0.0, phi = 0.0;
  hp.pix2ang_nest(4, theta, phi);
  EXPECT_NEAR(theta, kPi / 2.0, 1e-12);
  EXPECT_NEAR(phi, 0.0, 1e-12);
  // Faces 0-3 are in the northern cap, 8-11 in the southern.
  for (int f = 0; f < 4; ++f) {
    hp.pix2ang_nest(f, theta, phi);
    EXPECT_LT(theta, kPi / 2.0);
  }
  for (int f = 8; f < 12; ++f) {
    hp.pix2ang_nest(f, theta, phi);
    EXPECT_GT(theta, kPi / 2.0);
  }
}

TEST(Healpix, PolesMapToValidPixels) {
  for (const std::int64_t nside : {1, 2, 16, 256}) {
    const Healpix hp(nside);
    // Exactly at the poles.
    const auto n_ring = hp.ang2pix_ring(0.0, 0.3);
    const auto s_ring = hp.ang2pix_ring(kPi, 0.3);
    EXPECT_GE(n_ring, 0);
    EXPECT_LT(n_ring, 4);  // first ring has 4 pixels
    EXPECT_GE(s_ring, hp.npix() - 4);
    EXPECT_LT(s_ring, hp.npix());
    const auto n_nest = hp.ang2pix_nest(0.0, 0.3);
    const auto s_nest = hp.ang2pix_nest(kPi, 0.3);
    EXPECT_GE(n_nest, 0);
    EXPECT_LT(n_nest, hp.npix());
    EXPECT_GE(s_nest, 0);
    EXPECT_LT(s_nest, hp.npix());
  }
}

class HealpixNsides : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HealpixNsides, RingNestSchemesAgree) {
  const Healpix hp(GetParam());
  for (const auto& d : random_directions(2000, 7)) {
    const auto ring = hp.ang2pix_ring(d.theta, d.phi);
    const auto nest = hp.ang2pix_nest(d.theta, d.phi);
    EXPECT_EQ(hp.ring2nest(ring), nest)
        << "theta=" << d.theta << " phi=" << d.phi;
    EXPECT_EQ(hp.nest2ring(nest), ring);
  }
}

TEST_P(HealpixNsides, SchemeConversionIsBijective) {
  const Healpix hp(GetParam());
  if (hp.npix() > 12288) {
    GTEST_SKIP() << "full-sphere sweep limited to small nside";
  }
  std::vector<bool> seen(static_cast<std::size_t>(hp.npix()), false);
  for (std::int64_t p = 0; p < hp.npix(); ++p) {
    const auto n = hp.ring2nest(p);
    ASSERT_GE(n, 0);
    ASSERT_LT(n, hp.npix());
    EXPECT_FALSE(seen[static_cast<std::size_t>(n)]);
    seen[static_cast<std::size_t>(n)] = true;
    EXPECT_EQ(hp.nest2ring(n), p);
  }
}

TEST_P(HealpixNsides, PixelCenterRoundTrip) {
  const Healpix hp(GetParam());
  const std::int64_t stride = std::max<std::int64_t>(1, hp.npix() / 4096);
  for (std::int64_t p = 0; p < hp.npix(); p += stride) {
    double theta = 0.0, phi = 0.0;
    hp.pix2ang_ring(p, theta, phi);
    EXPECT_EQ(hp.ang2pix_ring(theta, phi), p) << "ring pixel " << p;
    hp.pix2ang_nest(p, theta, phi);
    EXPECT_EQ(hp.ang2pix_nest(theta, phi), p) << "nest pixel " << p;
  }
}

TEST_P(HealpixNsides, VecAndAngAgree) {
  const Healpix hp(GetParam());
  for (const auto& d : random_directions(500, 11)) {
    const double x = std::sin(d.theta) * std::cos(d.phi);
    const double y = std::sin(d.theta) * std::sin(d.phi);
    const double z = std::cos(d.theta);
    EXPECT_EQ(hp.vec2pix_ring(x, y, z), hp.ang2pix_ring(d.theta, d.phi));
    EXPECT_EQ(hp.vec2pix_nest(x, y, z), hp.ang2pix_nest(d.theta, d.phi));
    // Scaling the vector must not change the pixel.
    EXPECT_EQ(hp.vec2pix_nest(3.0 * x, 3.0 * y, 3.0 * z),
              hp.vec2pix_nest(x, y, z));
  }
}

INSTANTIATE_TEST_SUITE_P(Nsides, HealpixNsides,
                         ::testing::Values<std::int64_t>(1, 2, 4, 8, 16, 64,
                                                         256, 1024));

TEST(Healpix, EqualAreaOccupancy) {
  // Uniform random directions should hit pixels nearly uniformly: all
  // HEALPix pixels have equal area.
  const Healpix hp(4);
  const std::size_t n_dirs = 192000;
  std::vector<int> counts(static_cast<std::size_t>(hp.npix()), 0);
  for (const auto& d : random_directions(n_dirs, 21)) {
    counts[static_cast<std::size_t>(hp.ang2pix_ring(d.theta, d.phi))]++;
  }
  const double expected =
      static_cast<double>(n_dirs) / static_cast<double>(hp.npix());
  for (std::int64_t p = 0; p < hp.npix(); ++p) {
    // 5-sigma Poisson window.
    EXPECT_NEAR(counts[static_cast<std::size_t>(p)], expected,
                5.0 * std::sqrt(expected))
        << "pixel " << p;
  }
}

TEST(Healpix, PhiWrapsConsistently) {
  const Healpix hp(32);
  for (const auto& d : random_directions(300, 31)) {
    const auto base = hp.ang2pix_nest(d.theta, d.phi);
    EXPECT_EQ(hp.ang2pix_nest(d.theta, d.phi + 2.0 * kPi), base);
    EXPECT_EQ(hp.ang2pix_nest(d.theta, d.phi - 2.0 * kPi), base);
    EXPECT_EQ(hp.ang2pix_ring(d.theta, d.phi + 4.0 * kPi),
              hp.ang2pix_ring(d.theta, d.phi));
  }
}

TEST(Healpix, NestXyfRoundTrip) {
  const Healpix hp(64);
  std::mt19937 gen(5);
  std::uniform_int_distribution<std::int64_t> dist(0, hp.npix() - 1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::int64_t p = dist(gen);
    std::uint32_t x = 0, y = 0;
    int face = 0;
    hp.nest2xyf(p, x, y, face);
    EXPECT_GE(face, 0);
    EXPECT_LT(face, 12);
    EXPECT_LT(x, 64u);
    EXPECT_LT(y, 64u);
    EXPECT_EQ(hp.xyf2nest(x, y, face), p);
  }
}

TEST(Healpix, Npix2Nside) {
  using toast::healpix::npix2nside;
  EXPECT_EQ(npix2nside(12), 1);
  EXPECT_EQ(npix2nside(12 * 64 * 64), 64);
  EXPECT_EQ(npix2nside(0), 0);
  EXPECT_EQ(npix2nside(11), 0);
  EXPECT_EQ(npix2nside(12 * 3 * 3), 0);  // nside 3 not a power of two
  EXPECT_EQ(npix2nside(13), 0);
}

TEST(Healpix, Pix2VecRoundTrip) {
  const Healpix hp(32);
  for (std::int64_t p = 0; p < hp.npix(); p += 37) {
    double x = 0.0, y = 0.0, z = 0.0;
    hp.pix2vec_ring(p, x, y, z);
    EXPECT_NEAR(x * x + y * y + z * z, 1.0, 1e-12);
    EXPECT_EQ(hp.vec2pix_ring(x, y, z), p);
    hp.pix2vec_nest(p, x, y, z);
    EXPECT_EQ(hp.vec2pix_nest(x, y, z), p);
  }
}

TEST(Healpix, NeighbouringDirectionsLandNearby) {
  // Two directions separated by much less than the pixel size are usually
  // in the same pixel; they must never be further apart than ~2 pixels in
  // angle.  This guards against gross indexing errors.
  const Healpix hp(128);
  const double pixscale = std::sqrt(hp.pixarea());
  for (const auto& d : random_directions(200, 13)) {
    const auto p1 = hp.ang2pix_ring(d.theta, d.phi);
    double th1 = 0.0, ph1 = 0.0;
    hp.pix2ang_ring(p1, th1, ph1);
    // Angular distance between the input direction and its pixel center
    // must be within a couple of pixel scales.
    const double cosd =
        std::cos(th1) * std::cos(d.theta) +
        std::sin(th1) * std::sin(d.theta) * std::cos(ph1 - d.phi);
    const double dist = std::acos(std::clamp(cosd, -1.0, 1.0));
    EXPECT_LT(dist, 2.0 * pixscale);
  }
}
