// Cross-implementation equivalence tests: every kernel must produce the
// same result from its CPU baseline, its OpenMP-target port (device and
// host-fallback paths) and its JAX port.  This is the correctness core of
// the reproduction - the paper's ports had to preserve the science
// outputs exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "qarray/qarray.hpp"

namespace core = toast::core;
namespace k = toast::kernels;
using core::Backend;
using core::Interval;

namespace {

struct TestData {
  std::int64_t n_det = 3;
  std::int64_t n_samp = 257;
  std::vector<Interval> intervals{{0, 100}, {120, 200}, {210, 257}};
  std::vector<double> fp_quats;
  std::vector<double> boresight;
  std::vector<double> quats;  // per-detector pointing
  std::vector<std::uint8_t> flags;
  std::vector<double> hwp;
  std::vector<double> pol_eff;
  std::vector<double> signal;
  std::vector<std::int64_t> pixels;
  std::vector<double> weights;  // nnz = 3

  TestData() {
    std::mt19937 gen(1234);
    std::normal_distribution<double> nd(0.0, 1.0);
    std::uniform_real_distribution<double> ud(0.0, 1.0);
    auto unit_quat = [&] {
      toast::qarray::Quat q{nd(gen), nd(gen), nd(gen), nd(gen)};
      return toast::qarray::normalize(q);
    };
    fp_quats.resize(static_cast<std::size_t>(4 * n_det));
    for (std::int64_t d = 0; d < n_det; ++d) {
      const auto q = unit_quat();
      for (int c = 0; c < 4; ++c) fp_quats[static_cast<std::size_t>(4 * d + c)] = q[static_cast<std::size_t>(c)];
    }
    boresight.resize(static_cast<std::size_t>(4 * n_samp));
    for (std::int64_t s = 0; s < n_samp; ++s) {
      const auto q = unit_quat();
      for (int c = 0; c < 4; ++c) boresight[static_cast<std::size_t>(4 * s + c)] = q[static_cast<std::size_t>(c)];
    }
    quats.resize(static_cast<std::size_t>(4 * n_det * n_samp));
    for (std::int64_t i = 0; i < n_det * n_samp; ++i) {
      const auto q = unit_quat();
      for (int c = 0; c < 4; ++c) quats[static_cast<std::size_t>(4 * i + c)] = q[static_cast<std::size_t>(c)];
    }
    flags.resize(static_cast<std::size_t>(n_samp), 0);
    for (std::int64_t s = 0; s < n_samp; s += 17) flags[static_cast<std::size_t>(s)] = 1;
    hwp.resize(static_cast<std::size_t>(n_samp));
    for (auto& v : hwp) v = 2.0 * 3.141592653589793 * ud(gen);
    pol_eff = {0.95, 1.0, 0.9};
    signal.resize(static_cast<std::size_t>(n_det * n_samp));
    for (auto& v : signal) v = nd(gen);
    pixels.resize(static_cast<std::size_t>(n_det * n_samp));
    std::uniform_int_distribution<std::int64_t> pd(0, 12 * 16 * 16 - 1);
    for (auto& v : pixels) v = pd(gen);
    // A few flagged pixels.
    for (std::int64_t i = 0; i < n_det * n_samp; i += 31) pixels[static_cast<std::size_t>(i)] = -1;
    weights.resize(static_cast<std::size_t>(3 * n_det * n_samp));
    for (auto& v : weights) v = nd(gen);
  }
};

core::ExecContext make_ctx(Backend b) {
  core::ExecConfig cfg;
  cfg.backend = b;
  return core::ExecContext(cfg);
}

void expect_equal(const std::vector<double>& a, const std::vector<double>& b,
                  const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << what << " index " << i;
  }
}

void expect_equal_i(const std::vector<std::int64_t>& a,
                    const std::vector<std::int64_t>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " index " << i;
  }
}

}  // namespace

TEST(KernelEquivalence, PointingDetector) {
  TestData d;
  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);

  std::vector<double> out_cpu(d.quats.size(), 0.0);
  std::vector<double> out_omp_dev(d.quats.size(), 0.0);
  std::vector<double> out_omp_host(d.quats.size(), 0.0);
  std::vector<double> out_jax(d.quats.size(), 0.0);

  k::cpu::pointing_detector(d.fp_quats, d.boresight, d.flags, 1, d.intervals,
                            d.n_det, d.n_samp, out_cpu, ctx_cpu);
  k::omp::pointing_detector(d.fp_quats.data(), d.boresight.data(),
                            d.flags.data(), 1, d.intervals, d.n_det,
                            d.n_samp, out_omp_dev.data(), ctx_omp, true);
  k::omp::pointing_detector(d.fp_quats.data(), d.boresight.data(),
                            d.flags.data(), 1, d.intervals, d.n_det,
                            d.n_samp, out_omp_host.data(), ctx_omp, false);
  k::jax::pointing_detector(d.fp_quats.data(), d.boresight.data(),
                            d.flags.data(), 1, d.intervals, d.n_det,
                            d.n_samp, out_jax.data(), ctx_jax);

  expect_equal(out_cpu, out_omp_dev, "omp-device");
  expect_equal(out_cpu, out_omp_host, "omp-host");
  expect_equal(out_cpu, out_jax, "jax");
}

class PixelsHealpixEquivalence
    : public ::testing::TestWithParam<std::tuple<std::int64_t, bool>> {};

TEST_P(PixelsHealpixEquivalence, AllBackendsAgree) {
  const auto [nside, nest] = GetParam();
  TestData d;
  // Use realistic pointing: detector quaternions from the test data are
  // already random rotations covering the sphere.
  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);

  std::vector<std::int64_t> out_cpu(static_cast<std::size_t>(d.n_det * d.n_samp), 0);
  std::vector<std::int64_t> out_omp(out_cpu.size(), 0);
  std::vector<std::int64_t> out_host(out_cpu.size(), 0);
  std::vector<std::int64_t> out_jax(out_cpu.size(), 0);

  k::cpu::pixels_healpix(d.quats, d.flags, 1, nside, nest, d.intervals,
                         d.n_det, d.n_samp, out_cpu, ctx_cpu);
  k::omp::pixels_healpix(d.quats.data(), d.flags.data(), 1, nside, nest,
                         d.intervals, d.n_det, d.n_samp, out_omp.data(),
                         ctx_omp, true);
  k::omp::pixels_healpix(d.quats.data(), d.flags.data(), 1, nside, nest,
                         d.intervals, d.n_det, d.n_samp, out_host.data(),
                         ctx_omp, false);
  k::jax::pixels_healpix(d.quats.data(), d.flags.data(), 1, nside, nest,
                         d.intervals, d.n_det, d.n_samp, out_jax.data(),
                         ctx_jax);

  expect_equal_i(out_cpu, out_omp, "omp-device");
  expect_equal_i(out_cpu, out_host, "omp-host");
  expect_equal_i(out_cpu, out_jax, "jax");

  // Flagged samples must be -1, in-interval unflagged samples valid.
  for (const auto& ival : d.intervals) {
    for (std::int64_t s = ival.start; s < ival.stop; ++s) {
      const auto v = out_cpu[static_cast<std::size_t>(s)];
      if (d.flags[static_cast<std::size_t>(s)] & 1) {
        EXPECT_EQ(v, -1);
      } else {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 12 * nside * nside);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NsideSchemes, PixelsHealpixEquivalence,
    ::testing::Combine(::testing::Values<std::int64_t>(16, 64, 256),
                       ::testing::Bool()));

TEST(KernelEquivalence, StokesWeightsIqu) {
  TestData d;
  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);

  const std::size_t n = static_cast<std::size_t>(3 * d.n_det * d.n_samp);
  std::vector<double> out_cpu(n, 0.0), out_omp(n, 0.0), out_host(n, 0.0),
      out_jax(n, 0.0);

  k::cpu::stokes_weights_iqu(d.quats, d.hwp, d.pol_eff, d.intervals, d.n_det,
                             d.n_samp, out_cpu, ctx_cpu);
  k::omp::stokes_weights_iqu(d.quats.data(), d.hwp.data(), d.pol_eff.data(),
                             d.intervals, d.n_det, d.n_samp, out_omp.data(),
                             ctx_omp, true);
  k::omp::stokes_weights_iqu(d.quats.data(), d.hwp.data(), d.pol_eff.data(),
                             d.intervals, d.n_det, d.n_samp, out_host.data(),
                             ctx_omp, false);
  k::jax::stokes_weights_iqu(d.quats.data(), d.hwp.data(), d.pol_eff.data(),
                             d.intervals, d.n_det, d.n_samp, out_jax.data(),
                             ctx_jax);

  expect_equal(out_cpu, out_omp, "omp-device");
  expect_equal(out_cpu, out_host, "omp-host");
  expect_equal(out_cpu, out_jax, "jax");

  // Physics sanity: |Q/U weight| <= eta, I weight == 1 inside intervals.
  for (const auto& ival : d.intervals) {
    for (std::int64_t s = ival.start; s < ival.stop; ++s) {
      for (std::int64_t det = 0; det < d.n_det; ++det) {
        const std::size_t off =
            static_cast<std::size_t>(3 * (det * d.n_samp + s));
        EXPECT_DOUBLE_EQ(out_cpu[off], 1.0);
        const double eta = d.pol_eff[static_cast<std::size_t>(det)];
        EXPECT_LE(std::abs(out_cpu[off + 1]), eta + 1e-12);
        EXPECT_LE(std::abs(out_cpu[off + 2]), eta + 1e-12);
        EXPECT_NEAR(out_cpu[off + 1] * out_cpu[off + 1] +
                        out_cpu[off + 2] * out_cpu[off + 2],
                    eta * eta, 1e-9);
      }
    }
  }
}

TEST(KernelEquivalence, StokesWeightsIquNoHwp) {
  TestData d;
  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_jax = make_ctx(Backend::kJax);
  const std::size_t n = static_cast<std::size_t>(3 * d.n_det * d.n_samp);
  std::vector<double> out_cpu(n, 0.0), out_jax(n, 0.0);
  k::cpu::stokes_weights_iqu(d.quats, {}, d.pol_eff, d.intervals, d.n_det,
                             d.n_samp, out_cpu, ctx_cpu);
  k::jax::stokes_weights_iqu(d.quats.data(), nullptr, d.pol_eff.data(),
                             d.intervals, d.n_det, d.n_samp, out_jax.data(),
                             ctx_jax);
  expect_equal(out_cpu, out_jax, "jax-nohwp");
}

TEST(KernelEquivalence, StokesWeightsI) {
  TestData d;
  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);
  const std::size_t n = static_cast<std::size_t>(d.n_det * d.n_samp);
  std::vector<double> out_cpu(n, -5.0), out_omp(n, -5.0), out_jax(n, -5.0);
  k::cpu::stokes_weights_i(d.intervals, d.n_det, d.n_samp, out_cpu, ctx_cpu);
  k::omp::stokes_weights_i(d.intervals, d.n_det, d.n_samp, out_omp.data(),
                           ctx_omp, true);
  k::jax::stokes_weights_i(d.intervals, d.n_det, d.n_samp, out_jax.data(),
                           ctx_jax);
  expect_equal(out_cpu, out_omp, "omp");
  expect_equal(out_cpu, out_jax, "jax");
  // Outside the intervals the buffer is untouched (sample 205 is in the
  // gap between the second and third interval).
  EXPECT_DOUBLE_EQ(out_cpu[205], -5.0);
}

TEST(KernelEquivalence, ScanMap) {
  TestData d;
  const std::int64_t nside = 16, nnz = 3;
  const std::int64_t n_pix = 12 * nside * nside;
  std::vector<double> sky(static_cast<std::size_t>(n_pix * nnz));
  std::mt19937 gen(5);
  std::normal_distribution<double> nd(0.0, 1.0);
  for (auto& v : sky) v = nd(gen);

  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);

  std::vector<double> sig_cpu = d.signal, sig_omp = d.signal,
                      sig_host = d.signal, sig_jax = d.signal;
  k::cpu::scan_map(sky, nnz, d.pixels, d.weights, 1.25, d.intervals, d.n_det,
                   d.n_samp, sig_cpu, ctx_cpu);
  k::omp::scan_map(sky.data(), nnz, d.pixels.data(), d.weights.data(), 1.25,
                   d.intervals, d.n_det, d.n_samp, sig_omp.data(), ctx_omp,
                   true);
  k::omp::scan_map(sky.data(), nnz, d.pixels.data(), d.weights.data(), 1.25,
                   d.intervals, d.n_det, d.n_samp, sig_host.data(), ctx_omp,
                   false);
  k::jax::scan_map(sky.data(), n_pix, nnz, d.pixels.data(), d.weights.data(),
                   1.25, d.intervals, d.n_det, d.n_samp, sig_jax.data(),
                   ctx_jax);
  expect_equal(sig_cpu, sig_omp, "omp-device");
  expect_equal(sig_cpu, sig_host, "omp-host");
  expect_equal(sig_cpu, sig_jax, "jax");
}

TEST(KernelEquivalence, NoiseWeight) {
  TestData d;
  const std::vector<double> det_w = {0.5, 2.0, 1.5};
  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);
  std::vector<double> s_cpu = d.signal, s_omp = d.signal, s_jax = d.signal;
  k::cpu::noise_weight(det_w, d.intervals, d.n_det, d.n_samp, s_cpu, ctx_cpu);
  k::omp::noise_weight(det_w.data(), d.intervals, d.n_det, d.n_samp,
                       s_omp.data(), ctx_omp, true);
  k::jax::noise_weight(det_w.data(), d.intervals, d.n_det, d.n_samp,
                       s_jax.data(), ctx_jax);
  expect_equal(s_cpu, s_omp, "omp");
  expect_equal(s_cpu, s_jax, "jax");
}

TEST(KernelEquivalence, BuildNoiseWeighted) {
  TestData d;
  const std::int64_t nside = 16, nnz = 3;
  const std::int64_t n_pix = 12 * nside * nside;
  const std::vector<double> det_scale = {1.0, 0.8, 1.2};

  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);

  std::vector<double> z_cpu(static_cast<std::size_t>(n_pix * nnz), 0.0);
  std::vector<double> z_omp = z_cpu, z_host = z_cpu, z_jax = z_cpu;

  k::cpu::build_noise_weighted(d.pixels, d.weights, nnz, d.signal, det_scale,
                               d.flags, 1, d.intervals, d.n_det, d.n_samp,
                               z_cpu, ctx_cpu);
  k::omp::build_noise_weighted(d.pixels.data(), d.weights.data(), nnz,
                               d.signal.data(), det_scale.data(),
                               d.flags.data(), 1, d.intervals, d.n_det,
                               d.n_samp, z_omp.data(), ctx_omp, true);
  k::omp::build_noise_weighted(d.pixels.data(), d.weights.data(), nnz,
                               d.signal.data(), det_scale.data(),
                               d.flags.data(), 1, d.intervals, d.n_det,
                               d.n_samp, z_host.data(), ctx_omp, false);
  k::jax::build_noise_weighted(d.pixels.data(), d.weights.data(), n_pix, nnz,
                               d.signal.data(), det_scale.data(),
                               d.flags.data(), 1, d.intervals, d.n_det,
                               d.n_samp, z_jax.data(), ctx_jax);
  expect_equal(z_cpu, z_omp, "omp-device");
  expect_equal(z_cpu, z_host, "omp-host");
  expect_equal(z_cpu, z_jax, "jax");
}

TEST(KernelEquivalence, TemplateOffsetAddToSignal) {
  TestData d;
  const std::int64_t step = 32;
  const std::int64_t n_amp_det = (d.n_samp + step - 1) / step;
  std::vector<double> amps(static_cast<std::size_t>(d.n_det * n_amp_det));
  std::mt19937 gen(9);
  std::normal_distribution<double> nd(0.0, 1.0);
  for (auto& v : amps) v = nd(gen);

  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);
  std::vector<double> s_cpu = d.signal, s_omp = d.signal, s_jax = d.signal;
  k::cpu::template_offset_add_to_signal(step, amps, n_amp_det, d.intervals,
                                        d.n_det, d.n_samp, s_cpu, ctx_cpu);
  k::omp::template_offset_add_to_signal(step, amps.data(), n_amp_det,
                                        d.intervals, d.n_det, d.n_samp,
                                        s_omp.data(), ctx_omp, true);
  k::jax::template_offset_add_to_signal(step, amps.data(), n_amp_det,
                                        d.intervals, d.n_det, d.n_samp,
                                        s_jax.data(), ctx_jax);
  expect_equal(s_cpu, s_omp, "omp");
  expect_equal(s_cpu, s_jax, "jax");
}

TEST(KernelEquivalence, TemplateOffsetProjectSignal) {
  TestData d;
  const std::int64_t step = 32;
  const std::int64_t n_amp_det = (d.n_samp + step - 1) / step;
  const std::size_t namps = static_cast<std::size_t>(d.n_det * n_amp_det);

  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);
  std::vector<double> a_cpu(namps, 0.0), a_omp(namps, 0.0), a_jax(namps, 0.0);
  k::cpu::template_offset_project_signal(step, d.signal, d.intervals, d.n_det,
                                         d.n_samp, a_cpu, n_amp_det, ctx_cpu);
  k::omp::template_offset_project_signal(step, d.signal.data(), d.intervals,
                                         d.n_det, d.n_samp, a_omp.data(),
                                         n_amp_det, ctx_omp, true);
  k::jax::template_offset_project_signal(step, d.signal.data(), d.intervals,
                                         d.n_det, d.n_samp, a_jax.data(),
                                         n_amp_det, ctx_jax);
  expect_equal(a_cpu, a_omp, "omp");
  expect_equal(a_cpu, a_jax, "jax");
}

TEST(KernelEquivalence, TemplateOffsetPrecond) {
  const std::int64_t n = 77;
  std::vector<double> var(static_cast<std::size_t>(n)), in(static_cast<std::size_t>(n));
  std::mt19937 gen(3);
  std::uniform_real_distribution<double> ud(0.1, 2.0);
  for (auto& v : var) v = ud(gen);
  for (auto& v : in) v = ud(gen);

  auto ctx_cpu = make_ctx(Backend::kCpu);
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);
  std::vector<double> o_cpu(static_cast<std::size_t>(n)), o_omp = o_cpu, o_jax = o_cpu;
  k::cpu::template_offset_apply_diag_precond(var, in, o_cpu, ctx_cpu);
  k::omp::template_offset_apply_diag_precond(var.data(), in.data(), n,
                                             o_omp.data(), ctx_omp, true);
  k::jax::template_offset_apply_diag_precond(var.data(), in.data(), n,
                                             o_jax.data(), ctx_jax);
  expect_equal(o_cpu, o_omp, "omp");
  expect_equal(o_cpu, o_jax, "jax");
}

TEST(KernelBehaviour, JaxPaysForPadding) {
  // Intervals of very different lengths: the JAX port must execute
  // (and be charged for) the padded index space.
  TestData d;
  d.intervals = {{0, 200}, {200, 210}, {210, 215}};  // max_len = 200
  auto ctx_jax = make_ctx(Backend::kJax);
  ctx_jax.jax().set_work_scale(1e6);  // lift above dispatch overheads
  std::vector<double> sig = d.signal;
  const std::vector<double> det_w = {1.0, 1.0, 1.0};
  k::jax::noise_weight(det_w.data(), d.intervals, d.n_det, d.n_samp,
                       sig.data(), ctx_jax);
  // 3 intervals padded to 200 each = 600 lanes per det vs 215 true.
  // The kernel's device work must reflect the padded flop count: compare
  // against an equal-size problem without padding waste.
  auto ctx_ref = make_ctx(Backend::kJax);
  ctx_ref.jax().set_work_scale(1e6);
  std::vector<double> sig2 = d.signal;
  std::vector<Interval> uniform = {{0, 72}, {72, 144}, {144, 215}};
  k::jax::noise_weight(det_w.data(), uniform, d.n_det, d.n_samp, sig2.data(),
                       ctx_ref);
  const double padded = ctx_jax.log().seconds("noise_weight");
  const double compact = ctx_ref.log().seconds("noise_weight");
  EXPECT_GT(padded, compact);
}

TEST(KernelBehaviour, OmpGuardCutsPaddingCost) {
  // The OpenMP port's guard makes overhang iterations nearly free: padded
  // and compact interval layouts cost about the same.
  TestData d;
  auto ctx_a = make_ctx(Backend::kOmpTarget);
  auto ctx_b = make_ctx(Backend::kOmpTarget);
  std::vector<double> s1 = d.signal, s2 = d.signal;
  const std::vector<double> det_w = {1.0, 1.0, 1.0};
  std::vector<Interval> skewed = {{0, 200}, {200, 210}, {210, 215}};
  std::vector<Interval> uniform = {{0, 72}, {72, 144}, {144, 215}};
  k::omp::noise_weight(det_w.data(), skewed, d.n_det, d.n_samp, s1.data(),
                       ctx_a, true);
  k::omp::noise_weight(det_w.data(), uniform, d.n_det, d.n_samp, s2.data(),
                       ctx_b, true);
  const double t_skewed = ctx_a.log().seconds("noise_weight");
  const double t_uniform = ctx_b.log().seconds("noise_weight");
  // Within 1.5x of each other (guard iterations cost only the test).
  EXPECT_LT(t_skewed / t_uniform, 1.5);
}

TEST(KernelBehaviour, ProjectSignalLowersToSegmentedReduce) {
  // The JAX project_signal scatter has sorted indices; the OMP version
  // pays atomic conflicts.  Check the resulting asymmetry in modelled
  // device time for a compute-equal problem.
  TestData d;
  const std::int64_t step = 64;
  const std::int64_t n_amp_det = (d.n_samp + step - 1) / step;
  auto ctx_omp = make_ctx(Backend::kOmpTarget);
  auto ctx_jax = make_ctx(Backend::kJax);
  ctx_omp.omp().set_work_scale(1e6);
  ctx_jax.jax().set_work_scale(1e6);
  std::vector<double> a1(static_cast<std::size_t>(d.n_det * n_amp_det), 0.0);
  std::vector<double> a2 = a1;
  k::omp::template_offset_project_signal(step, d.signal.data(), d.intervals,
                                         d.n_det, d.n_samp, a1.data(),
                                         n_amp_det, ctx_omp, true);
  k::jax::template_offset_project_signal(step, d.signal.data(), d.intervals,
                                         d.n_det, d.n_samp, a2.data(),
                                         n_amp_det, ctx_jax);
  const double t_omp = ctx_omp.log().seconds("template_offset_project_signal");
  const double t_jax = ctx_jax.log().seconds("template_offset_project_signal");
  EXPECT_GT(t_omp, t_jax);
}
