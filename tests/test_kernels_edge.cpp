// Edge-case tests for the kernels: degenerate interval lists, single
// samples, fully flagged data, extreme template step lengths - each run
// across all three implementations and compared.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "qarray/qarray.hpp"

namespace core = toast::core;
namespace k = toast::kernels;
using core::Backend;
using core::Interval;

namespace {

core::ExecContext make_ctx(Backend b) {
  core::ExecConfig cfg;
  cfg.backend = b;
  return core::ExecContext(cfg);
}

std::vector<double> random_unit_quats(std::int64_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<double> nd(0.0, 1.0);
  std::vector<double> out(static_cast<std::size_t>(4 * n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto q =
        toast::qarray::normalize({nd(gen), nd(gen), nd(gen), nd(gen)});
    for (int c = 0; c < 4; ++c) {
      out[static_cast<std::size_t>(4 * i + c)] =
          q[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

}  // namespace

TEST(KernelEdge, EmptyIntervalList) {
  // No intervals: every implementation must leave outputs untouched and
  // charge (almost) nothing.
  const std::int64_t n_det = 2, n_samp = 64;
  const std::vector<Interval> none;
  const auto quats = random_unit_quats(n_det * n_samp, 1);
  auto cpu = make_ctx(Backend::kCpu);
  auto omp = make_ctx(Backend::kOmpTarget);
  auto jax = make_ctx(Backend::kJax);

  std::vector<std::int64_t> p_cpu(static_cast<std::size_t>(n_det * n_samp), -7);
  auto p_omp = p_cpu;
  auto p_jax = p_cpu;
  k::cpu::pixels_healpix(quats, {}, 1, 16, true, none, n_det, n_samp, p_cpu,
                         cpu);
  k::omp::pixels_healpix(quats.data(), nullptr, 1, 16, true, none, n_det,
                         n_samp, p_omp.data(), omp, true);
  k::jax::pixels_healpix(quats.data(), nullptr, 1, 16, true, none, n_det,
                         n_samp, p_jax.data(), jax);
  for (std::size_t i = 0; i < p_cpu.size(); ++i) {
    EXPECT_EQ(p_cpu[i], -7);
    EXPECT_EQ(p_omp[i], -7);
    EXPECT_EQ(p_jax[i], -7);
  }
}

TEST(KernelEdge, SingleSampleIntervals) {
  const std::int64_t n_det = 3, n_samp = 32;
  const std::vector<Interval> ivals{{0, 1}, {5, 6}, {31, 32}};
  const std::vector<double> det_w{2.0, 3.0, 4.0};
  std::vector<double> sig(static_cast<std::size_t>(n_det * n_samp), 1.0);
  auto s_cpu = sig, s_omp = sig, s_jax = sig;
  auto cpu = make_ctx(Backend::kCpu);
  auto omp = make_ctx(Backend::kOmpTarget);
  auto jax = make_ctx(Backend::kJax);
  k::cpu::noise_weight(det_w, ivals, n_det, n_samp, s_cpu, cpu);
  k::omp::noise_weight(det_w.data(), ivals, n_det, n_samp, s_omp.data(), omp,
                       true);
  k::jax::noise_weight(det_w.data(), ivals, n_det, n_samp, s_jax.data(), jax);
  for (std::int64_t d = 0; d < n_det; ++d) {
    for (std::int64_t s = 0; s < n_samp; ++s) {
      const auto i = static_cast<std::size_t>(d * n_samp + s);
      const bool inside = s == 0 || s == 5 || s == 31;
      const double expect =
          inside ? det_w[static_cast<std::size_t>(d)] : 1.0;
      EXPECT_DOUBLE_EQ(s_cpu[i], expect);
      EXPECT_DOUBLE_EQ(s_omp[i], expect);
      EXPECT_DOUBLE_EQ(s_jax[i], expect);
    }
  }
}

TEST(KernelEdge, AllSamplesFlagged) {
  const std::int64_t n_det = 2, n_samp = 48;
  const std::vector<Interval> ivals{{0, 48}};
  const auto quats = random_unit_quats(n_det * n_samp, 2);
  std::vector<std::uint8_t> flags(static_cast<std::size_t>(n_samp), 1);
  auto cpu = make_ctx(Backend::kCpu);
  auto jax = make_ctx(Backend::kJax);
  std::vector<std::int64_t> p_cpu(static_cast<std::size_t>(n_det * n_samp), 0);
  auto p_jax = p_cpu;
  k::cpu::pixels_healpix(quats, flags, 1, 16, true, ivals, n_det, n_samp,
                         p_cpu, cpu);
  k::jax::pixels_healpix(quats.data(), flags.data(), 1, 16, true, ivals,
                         n_det, n_samp, p_jax.data(), jax);
  for (std::size_t i = 0; i < p_cpu.size(); ++i) {
    EXPECT_EQ(p_cpu[i], -1);
    EXPECT_EQ(p_jax[i], -1);
  }
}

TEST(KernelEdge, ScanMapSingleComponent) {
  // nnz = 1 (intensity-only mapping).
  const std::int64_t n_det = 2, n_samp = 40, n_pix = 12 * 4 * 4;
  const std::vector<Interval> ivals{{0, 40}};
  std::vector<double> map(static_cast<std::size_t>(n_pix), 0.0);
  for (std::size_t i = 0; i < map.size(); ++i) map[i] = static_cast<double>(i);
  std::vector<std::int64_t> pixels(static_cast<std::size_t>(n_det * n_samp));
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<std::int64_t>(i % static_cast<std::size_t>(n_pix));
  }
  std::vector<double> ones(static_cast<std::size_t>(n_det * n_samp), 1.0);
  std::vector<double> s_cpu(ones.size(), 0.0), s_jax = s_cpu, s_omp = s_cpu;
  auto cpu = make_ctx(Backend::kCpu);
  auto omp = make_ctx(Backend::kOmpTarget);
  auto jax = make_ctx(Backend::kJax);
  k::cpu::scan_map(map, 1, pixels, ones, 1.0, ivals, n_det, n_samp, s_cpu,
                   cpu);
  k::omp::scan_map(map.data(), 1, pixels.data(), ones.data(), 1.0, ivals,
                   n_det, n_samp, s_omp.data(), omp, true);
  k::jax::scan_map(map.data(), n_pix, 1, pixels.data(), ones.data(), 1.0,
                   ivals, n_det, n_samp, s_jax.data(), jax);
  for (std::size_t i = 0; i < s_cpu.size(); ++i) {
    EXPECT_DOUBLE_EQ(s_cpu[i],
                     static_cast<double>(pixels[i]));
    EXPECT_DOUBLE_EQ(s_omp[i], s_cpu[i]);
    EXPECT_DOUBLE_EQ(s_jax[i], s_cpu[i]);
  }
}

class OffsetStepLengths : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(OffsetStepLengths, AllBackendsAgree) {
  // Sweep step lengths from 1 (one amplitude per sample) to larger than
  // the whole observation.
  const std::int64_t step = GetParam();
  const std::int64_t n_det = 2, n_samp = 96;
  const std::vector<Interval> ivals{{0, 50}, {60, 96}};
  const std::int64_t n_amp_det = (n_samp + step - 1) / step;
  std::mt19937 gen(static_cast<unsigned>(step));
  std::normal_distribution<double> nd(0.0, 1.0);
  std::vector<double> amps(static_cast<std::size_t>(n_det * n_amp_det));
  for (auto& v : amps) v = nd(gen);
  std::vector<double> sig(static_cast<std::size_t>(n_det * n_samp));
  for (auto& v : sig) v = nd(gen);

  auto cpu = make_ctx(Backend::kCpu);
  auto omp = make_ctx(Backend::kOmpTarget);
  auto jax = make_ctx(Backend::kJax);

  auto s_cpu = sig, s_omp = sig, s_jax = sig;
  k::cpu::template_offset_add_to_signal(step, amps, n_amp_det, ivals, n_det,
                                        n_samp, s_cpu, cpu);
  k::omp::template_offset_add_to_signal(step, amps.data(), n_amp_det, ivals,
                                        n_det, n_samp, s_omp.data(), omp,
                                        true);
  k::jax::template_offset_add_to_signal(step, amps.data(), n_amp_det, ivals,
                                        n_det, n_samp, s_jax.data(), jax);
  for (std::size_t i = 0; i < s_cpu.size(); ++i) {
    ASSERT_DOUBLE_EQ(s_cpu[i], s_omp[i]) << "step " << step;
    ASSERT_DOUBLE_EQ(s_cpu[i], s_jax[i]) << "step " << step;
  }

  std::vector<double> a_cpu(amps.size(), 0.0), a_omp = a_cpu, a_jax = a_cpu;
  k::cpu::template_offset_project_signal(step, sig, ivals, n_det, n_samp,
                                         a_cpu, n_amp_det, cpu);
  k::omp::template_offset_project_signal(step, sig.data(), ivals, n_det,
                                         n_samp, a_omp.data(), n_amp_det,
                                         omp, true);
  k::jax::template_offset_project_signal(step, sig.data(), ivals, n_det,
                                         n_samp, a_jax.data(), n_amp_det,
                                         jax);
  for (std::size_t i = 0; i < a_cpu.size(); ++i) {
    ASSERT_DOUBLE_EQ(a_cpu[i], a_omp[i]) << "step " << step;
    ASSERT_DOUBLE_EQ(a_cpu[i], a_jax[i]) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, OffsetStepLengths,
                         ::testing::Values<std::int64_t>(1, 2, 7, 32, 96,
                                                         1000));

TEST(KernelEdge, SingleDetector) {
  const std::int64_t n_det = 1, n_samp = 128;
  const std::vector<Interval> ivals{{10, 100}};
  const auto quats = random_unit_quats(n_det * n_samp, 3);
  std::vector<double> hwp(static_cast<std::size_t>(n_samp), 0.5);
  const std::vector<double> eff{0.9};
  auto cpu = make_ctx(Backend::kCpu);
  auto jax = make_ctx(Backend::kJax);
  std::vector<double> w_cpu(static_cast<std::size_t>(3 * n_samp), 0.0);
  auto w_jax = w_cpu;
  k::cpu::stokes_weights_iqu(quats, hwp, eff, ivals, n_det, n_samp, w_cpu,
                             cpu);
  k::jax::stokes_weights_iqu(quats.data(), hwp.data(), eff.data(), ivals,
                             n_det, n_samp, w_jax.data(), jax);
  for (std::size_t i = 0; i < w_cpu.size(); ++i) {
    ASSERT_DOUBLE_EQ(w_cpu[i], w_jax[i]);
  }
}

TEST(KernelEdge, BuildNoiseWeightedIgnoresBadPixels) {
  // All pixels flagged/-1: the map must remain exactly zero everywhere.
  const std::int64_t n_det = 2, n_samp = 32, n_pix = 12 * 4 * 4, nnz = 3;
  const std::vector<Interval> ivals{{0, 32}};
  std::vector<std::int64_t> pixels(static_cast<std::size_t>(n_det * n_samp),
                                   -1);
  std::vector<double> weights(static_cast<std::size_t>(nnz * n_det * n_samp),
                              1.0);
  std::vector<double> signal(static_cast<std::size_t>(n_det * n_samp), 5.0);
  const std::vector<double> scale{1.0, 1.0};
  auto cpu = make_ctx(Backend::kCpu);
  auto jax = make_ctx(Backend::kJax);
  std::vector<double> z_cpu(static_cast<std::size_t>(n_pix * nnz), 0.0);
  auto z_jax = z_cpu;
  k::cpu::build_noise_weighted(pixels, weights, nnz, signal, scale, {}, 0,
                               ivals, n_det, n_samp, z_cpu, cpu);
  k::jax::build_noise_weighted(pixels.data(), weights.data(), n_pix, nnz,
                               signal.data(), scale.data(), nullptr, 0,
                               ivals, n_det, n_samp, z_jax.data(), jax);
  for (std::size_t i = 0; i < z_cpu.size(); ++i) {
    EXPECT_DOUBLE_EQ(z_cpu[i], 0.0);
    EXPECT_DOUBLE_EQ(z_jax[i], 0.0);
  }
}

TEST(KernelEdge, IntervalCoveringEverything) {
  // One interval spanning the full range: padding ratio exactly 1 and
  // every implementation touches every sample.
  const std::int64_t n_det = 2, n_samp = 64;
  const std::vector<Interval> ivals{{0, n_samp}};
  EXPECT_DOUBLE_EQ(toast::kernels::padding_ratio(ivals), 1.0);
  std::vector<double> s(static_cast<std::size_t>(n_det * n_samp), 2.0);
  const std::vector<double> w{0.5, 0.25};
  auto jax = make_ctx(Backend::kJax);
  k::jax::noise_weight(w.data(), ivals, n_det, n_samp, s.data(), jax);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(n_samp)], 0.5);
}

TEST(KernelEdge, ConflictRateHelper) {
  using toast::kernels::estimate_conflict_rate;
  // Distinct indices in each window: no conflicts.
  std::vector<std::int64_t> distinct(64);
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    distinct[i] = static_cast<std::int64_t>(i);
  }
  EXPECT_DOUBLE_EQ(estimate_conflict_rate(distinct), 0.0);
  // Identical indices: (window-1)/window conflicts.
  std::vector<std::int64_t> same(64, 7);
  EXPECT_NEAR(estimate_conflict_rate(same), 31.0 / 32.0, 1e-12);
  // Negative (flagged) entries are ignored.
  std::vector<std::int64_t> flagged(64, -1);
  EXPECT_DOUBLE_EQ(estimate_conflict_rate(flagged), 0.0);
  const std::vector<std::int64_t> empty;
  EXPECT_DOUBLE_EQ(estimate_conflict_rate(empty), 0.0);
}
