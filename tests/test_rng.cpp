// Unit and statistical tests for the Threefry counter-based RNG.

#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

using toast::rng::RngStream;
using toast::rng::threefry2x64;

TEST(Rng, Deterministic) {
  const auto a = threefry2x64({1, 2}, {3, 4});
  const auto b = threefry2x64({1, 2}, {3, 4});
  EXPECT_EQ(a, b);
}

TEST(Rng, KeySensitivity) {
  const auto a = threefry2x64({1, 2}, {3, 4});
  const auto b = threefry2x64({1, 3}, {3, 4});
  const auto c = threefry2x64({2, 2}, {3, 4});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(Rng, CounterSensitivity) {
  const auto a = threefry2x64({1, 2}, {3, 4});
  const auto b = threefry2x64({1, 2}, {3, 5});
  const auto c = threefry2x64({1, 2}, {4, 4});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Rng, AvalancheSingleBitFlip) {
  // Flipping one counter bit should change roughly half the output bits.
  const auto a = threefry2x64({11, 22}, {33, 44});
  const auto b = threefry2x64({11, 22}, {33, 44 ^ 1});
  int flipped = 0;
  flipped += std::popcount(a[0] ^ b[0]);
  flipped += std::popcount(a[1] ^ b[1]);
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

TEST(Rng, UniformRange) {
  RngStream stream({5, 6}, {7, 0});
  std::vector<double> out(10001);
  stream.uniform_01(out);
  for (const double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  RngStream stream({9, 10}, {0, 0});
  std::vector<double> out(200000);
  stream.uniform_01(out);
  double mean = 0.0;
  for (const double v : out) mean += v;
  mean /= static_cast<double>(out.size());
  double var = 0.0;
  for (const double v : out) var += (v - mean) * (v - mean);
  var /= static_cast<double>(out.size());
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, GaussianMoments) {
  RngStream stream({1, 1}, {0, 0});
  std::vector<double> out(200000);
  stream.gaussian(out);
  double mean = 0.0;
  for (const double v : out) mean += v;
  mean /= static_cast<double>(out.size());
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (const double v : out) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(out.size());
  m3 /= static_cast<double>(out.size());
  m4 /= static_cast<double>(out.size());
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(m2, 1.0, 0.02);
  EXPECT_NEAR(m3 / std::pow(m2, 1.5), 0.0, 0.03);  // skewness
  EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.1);           // kurtosis
}

TEST(Rng, StreamsAreIndependentOfChunking) {
  // Drawing 100 values at once must equal drawing 50 + 50 (streams are
  // seekable by whole blocks; fills always consume whole blocks).
  RngStream one({3, 4}, {5, 0});
  std::vector<double> all(100);
  one.uniform_01(all);

  RngStream two({3, 4}, {5, 0});
  std::vector<double> first(50), second(50);
  two.uniform_01(first);
  two.uniform_01(second);

  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(all[i], first[i]);
    EXPECT_DOUBLE_EQ(all[50 + i], second[i]);
  }
}

TEST(Rng, SkipMatchesConsumption) {
  RngStream a({8, 8}, {0, 0});
  std::vector<double> burn(20);  // consumes 10 blocks
  a.uniform_01(burn);

  RngStream b({8, 8}, {0, 0});
  b.skip(10);
  std::vector<double> va(20), vb(20);
  a.uniform_01(va);
  b.uniform_01(vb);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(va[i], vb[i]);
  }
}

TEST(Rng, OddLengthFills) {
  RngStream a({2, 3}, {0, 0});
  std::vector<double> odd(7);
  a.uniform_01(odd);
  for (const double v : odd) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BitsUnbiased) {
  RngStream stream({42, 43}, {0, 0});
  std::vector<std::uint64_t> words(10000);
  stream.bits(words);
  // Count ones across all words; expect ~50%.
  std::uint64_t ones = 0;
  for (const auto w : words) ones += std::popcount(w);
  const double frac =
      static_cast<double>(ones) / (64.0 * static_cast<double>(words.size()));
  EXPECT_NEAR(frac, 0.5, 0.005);
}

TEST(Rng, SerialCorrelationLow) {
  RngStream stream({12, 13}, {0, 0});
  std::vector<double> v(100000);
  stream.uniform_01(v);
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    num += (v[i] - mean) * (v[i + 1] - mean);
    den += (v[i] - mean) * (v[i] - mean);
  }
  EXPECT_LT(std::abs(num / den), 0.01);
}

TEST(Rng, FunctionalApiMatchesStream) {
  std::vector<double> a(16), b(16);
  toast::rng::random_gaussian(1, 2, 3, 0, a);
  RngStream stream({1, 2}, {3, 0});
  stream.gaussian(b);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}
