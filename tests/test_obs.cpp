// Tests for the span tracer and its exporters: nested-span arithmetic,
// the TimeLog aggregation view, and the JSON export round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "accel/sim_device.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace {

using toast::accel::VirtualClock;
using toast::accel::WorkEstimate;
using toast::obs::ScopedSpan;
using toast::obs::Span;
using toast::obs::SpanId;
using toast::obs::Tracer;
namespace json = toast::obs::json;

// --- span structure --------------------------------------------------------

TEST(Tracer, NestedSpanTimingArithmetic) {
  VirtualClock clock;
  Tracer tracer(&clock);

  const SpanId outer = tracer.begin("outer", "phase");
  clock.advance(1.0);
  const SpanId inner = tracer.begin("inner", "phase");
  clock.advance(2.0);
  tracer.record("leaf", "kernel", 2.0);  // ends at now(), lasted 2 s
  tracer.end(inner);
  clock.advance(0.5);
  tracer.end(outer);

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);

  const Span& s_outer = spans[0];
  const Span& s_inner = spans[1];
  const Span& s_leaf = spans[2];

  EXPECT_DOUBLE_EQ(s_outer.start, 0.0);
  EXPECT_DOUBLE_EQ(s_outer.duration, 3.5);
  EXPECT_DOUBLE_EQ(s_inner.start, 1.0);
  EXPECT_DOUBLE_EQ(s_inner.duration, 2.0);
  EXPECT_DOUBLE_EQ(s_leaf.start, 1.0);
  EXPECT_DOUBLE_EQ(s_leaf.duration, 2.0);

  // Parent / depth bookkeeping.
  EXPECT_EQ(s_outer.parent, toast::obs::kInvalidSpan);
  EXPECT_EQ(s_inner.parent, 0);
  EXPECT_EQ(s_leaf.parent, 1);
  EXPECT_EQ(s_outer.depth, 0);
  EXPECT_EQ(s_inner.depth, 1);
  EXPECT_EQ(s_leaf.depth, 2);

  // Exclusive time: outer minus its direct child.
  EXPECT_DOUBLE_EQ(tracer.self_seconds(0), 1.5);
  EXPECT_DOUBLE_EQ(tracer.self_seconds(1), 0.0);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(Tracer, EndClosesAbandonedChildren) {
  VirtualClock clock;
  Tracer tracer(&clock);

  const SpanId outer = tracer.begin("outer", "phase");
  tracer.begin("forgotten", "phase");
  clock.advance(1.0);
  tracer.end(outer);  // must pop "forgotten" too

  EXPECT_EQ(tracer.open_depth(), 0u);
  EXPECT_DOUBLE_EQ(tracer.spans()[1].duration, 1.0);
}

TEST(Tracer, ScopedSpanRaii) {
  VirtualClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan scope(tracer, "scope", "phase", "cpu");
    clock.advance(2.5);
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].duration, 2.5);
  EXPECT_EQ(tracer.spans()[0].backend, "cpu");
  EXPECT_FALSE(tracer.spans()[0].logged);
}

// --- TimeLog aggregation view ---------------------------------------------

TEST(Tracer, TimelogViewMatchesLoggedSpans) {
  VirtualClock clock;
  Tracer tracer(&clock);

  // Structural spans must NOT enter the TimeLog view.
  const SpanId scope = tracer.begin("pipeline", "pipeline");
  clock.advance(1.0);
  tracer.record("kern_a", "kernel", 1.0, "omptarget");
  clock.advance(0.5);
  tracer.record("kern_a", "kernel", 0.5, "omptarget");
  clock.advance(2.0);
  tracer.record("kern_b", "kernel", 2.0, "omptarget");
  tracer.end(scope);

  const auto log = tracer.timelog();
  EXPECT_DOUBLE_EQ(log.seconds("kern_a"), 1.5);
  EXPECT_EQ(log.calls("kern_a"), 2);
  EXPECT_DOUBLE_EQ(log.seconds("kern_b"), 2.0);
  EXPECT_EQ(log.calls("kern_b"), 1);
  EXPECT_DOUBLE_EQ(log.seconds("pipeline"), 0.0);

  // Convenience accessors agree with the view.
  EXPECT_DOUBLE_EQ(tracer.seconds("kern_a"), log.seconds("kern_a"));
  EXPECT_EQ(tracer.calls("kern_b"), log.calls("kern_b"));
}

TEST(Tracer, DeviceSinkEmitsDeviceSpans) {
  VirtualClock clock;
  Tracer tracer(&clock);
  toast::accel::SimDevice device;
  device.set_trace_sink(&tracer);

  clock.advance(0.25);
  WorkEstimate w;
  w.flops = 1e9;
  device.note_execution(w, 0.25);
  device.note_transfer(4096.0, 0.01, /*to_device=*/true);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& exec = tracer.spans()[0];
  EXPECT_EQ(exec.name, "device_exec");
  EXPECT_TRUE(exec.device);
  EXPECT_FALSE(exec.logged);
  EXPECT_TRUE(exec.has_work);
  EXPECT_DOUBLE_EQ(exec.work.flops, 1e9);

  const Span& h2d = tracer.spans()[1];
  EXPECT_EQ(h2d.name, "h2d_transfer");
  EXPECT_DOUBLE_EQ(h2d.counters.at("bytes"), 4096.0);
  EXPECT_DOUBLE_EQ(device.total_transfer_bytes(), 4096.0);
}

// --- aggregation + export round-trips -------------------------------------

Tracer make_populated_tracer(VirtualClock& clock) {
  Tracer tracer(&clock);
  WorkEstimate w;
  w.flops = 2e9;
  w.bytes_read = 1e6;
  w.bytes_written = 5e5;
  w.launches = 3;

  const SpanId scope = tracer.begin("pipeline", "pipeline", "omptarget");
  clock.advance(1.0);
  const SpanId k1 = tracer.record("kern", "kernel", 1.0, "omptarget", &w);
  tracer.add_counter(k1, "peak_temp_bytes", 1e5);
  clock.advance(0.5);
  const SpanId k2 = tracer.record("kern", "kernel", 0.5, "omptarget", &w);
  tracer.add_counter(k2, "peak_temp_bytes", 3e5);
  clock.advance(0.125);
  tracer.record("h2d", "transfer", 0.125, "omptarget");
  tracer.end(scope);
  return tracer;
}

TEST(Export, CounterAggregationMatchesTimelog) {
  VirtualClock clock;
  const Tracer tracer = make_populated_tracer(clock);

  const auto rows = toast::obs::aggregate_metrics(tracer.spans());
  const auto log = tracer.timelog();

  // Only the logged spans aggregate; calls/seconds match the TimeLog.
  ASSERT_EQ(rows.size(), 2u);
  const auto& kern = rows.at("kern");
  EXPECT_EQ(kern.calls, log.calls("kern"));
  EXPECT_DOUBLE_EQ(kern.seconds, log.seconds("kern"));
  EXPECT_DOUBLE_EQ(kern.seconds, 1.5);
  // WorkEstimate fields sum across calls.
  EXPECT_DOUBLE_EQ(kern.flops, 4e9);
  EXPECT_DOUBLE_EQ(kern.bytes_read, 2e6);
  EXPECT_DOUBLE_EQ(kern.bytes_written, 1e6);
  EXPECT_DOUBLE_EQ(kern.launches, 6.0);
  // Extra counters sum too.
  EXPECT_DOUBLE_EQ(kern.counters.at("peak_temp_bytes"), 4e5);
  EXPECT_DOUBLE_EQ(rows.at("h2d").seconds, log.seconds("h2d"));
}

TEST(Export, MetricsJsonRoundTrip) {
  VirtualClock clock;
  const Tracer tracer = make_populated_tracer(clock);

  std::ostringstream out;
  toast::obs::write_metrics_json(tracer.spans(), out,
                                 {{"benchmark", "unit-test"}});
  const json::Value doc = json::Value::parse(out.str());
  EXPECT_EQ(doc.at("schema").string, "toastcase-metrics-v1");
  EXPECT_EQ(doc.at("meta").at("benchmark").string, "unit-test");

  const auto rows = toast::obs::read_metrics_json(doc);
  const auto expect = toast::obs::aggregate_metrics(tracer.spans());
  ASSERT_EQ(rows.size(), expect.size());
  for (const auto& [name, row] : expect) {
    const auto& got = rows.at(name);
    EXPECT_EQ(got.calls, row.calls) << name;
    EXPECT_DOUBLE_EQ(got.seconds, row.seconds) << name;
    EXPECT_DOUBLE_EQ(got.flops, row.flops) << name;
    EXPECT_DOUBLE_EQ(got.bytes_read, row.bytes_read) << name;
    EXPECT_DOUBLE_EQ(got.bytes_written, row.bytes_written) << name;
    EXPECT_DOUBLE_EQ(got.launches, row.launches) << name;
    EXPECT_EQ(got.counters, row.counters) << name;
  }
  EXPECT_DOUBLE_EQ(doc.at("total_seconds").number, 1.625);
}

TEST(Export, ChromeTraceRoundTrip) {
  VirtualClock clock;
  const Tracer tracer = make_populated_tracer(clock);

  std::ostringstream out;
  toast::obs::write_chrome_trace(tracer.spans(), out, "unit-test");
  const json::Value doc = json::Value::parse(out.str());

  const auto& events = doc.at("traceEvents").array;
  // 3 metadata events + one "X" event per span.
  ASSERT_EQ(events.size(), 3u + tracer.spans().size());
  EXPECT_EQ(events[0].at("ph").string, "M");
  EXPECT_EQ(events[0].at("args").at("name").string, "unit-test");

  // Timestamps are microseconds on the virtual timeline.
  std::size_t i = 3;
  for (const auto& span : tracer.spans()) {
    const json::Value& ev = events[i++];
    EXPECT_EQ(ev.at("ph").string, "X");
    EXPECT_EQ(ev.at("name").string, span.name);
    EXPECT_NEAR(ev.at("ts").number, span.start * 1e6, 1e-9);
    EXPECT_NEAR(ev.at("dur").number, span.duration * 1e6, 1e-9);
  }
}

TEST(Export, MetricsCsvHasOneRowPerCategory) {
  VirtualClock clock;
  const Tracer tracer = make_populated_tracer(clock);

  std::ostringstream out;
  toast::obs::write_metrics_csv(tracer.spans(), out);
  const std::string csv = out.str();
  int lines = 0;
  for (const char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 3);  // header + kern + h2d
  EXPECT_NE(csv.find("category,calls,seconds"), std::string::npos);
  EXPECT_NE(csv.find("kern,2,1.5"), std::string::npos);
}

// --- json parser edge cases ------------------------------------------------

TEST(Json, ParsesEscapesAndNumbers) {
  const json::Value v = json::Value::parse(
      R"({"s":"a\"b\\c\ndA","n":-1.5e3,"t":true,"z":null,"a":[1,2]})");
  EXPECT_EQ(v.at("s").string, "a\"b\\c\ndA");
  EXPECT_DOUBLE_EQ(v.at("n").number, -1500.0);
  EXPECT_TRUE(v.at("t").boolean);
  EXPECT_TRUE(v.at("z").is_null());
  ASSERT_EQ(v.at("a").array.size(), 2u);
}

TEST(Json, ThrowsOnMalformedInput) {
  EXPECT_THROW(json::Value::parse("{"), json::ParseError);
  EXPECT_THROW(json::Value::parse("[1,]"), json::ParseError);
  EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"), json::ParseError);
  EXPECT_THROW(json::Value::parse(""), json::ParseError);
}

TEST(Json, ThrowsOnEveryTruncatedPrefix) {
  // Cut a representative document at every byte: the parser must throw a
  // ParseError for each prefix, never crash or silently accept (fault
  // plans and metrics files are loaded through this path).
  const std::string full = R"({"a":[1,2.5e-3,"x\n"],"b":{"c":true}})";
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_THROW(json::Value::parse(full.substr(0, n)), json::ParseError)
        << "prefix length " << n;
  }
  EXPECT_NO_THROW(json::Value::parse(full));
}

TEST(Json, NumberOrFallsBackOnWrongTypes) {
  const json::Value v = json::Value::parse(
      R"({"s":"12","b":true,"z":null,"o":{"n":1},"a":[1],"n":2.5})");
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);  // string, not coerced
  EXPECT_DOUBLE_EQ(v.number_or("b", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("z", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("o", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("a", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 2.5);
}

TEST(Export, FaultCounterRoundTrip) {
  // The recovery layer's fault_* spans and their counters must survive
  // the metrics JSON round trip: `toast-trace faults` and the chaos CI
  // read them back from disk.
  VirtualClock clock;
  Tracer tracer(&clock);
  const SpanId retry = tracer.record("fault_retry_launch", "fault", 3.0e-4);
  tracer.add_counter(retry, "failures", 2.0);
  const SpanId fallback = tracer.record("fault_fallback", "fault", 0.0);
  tracer.add_counter(fallback, "kernel_noise_weight", 1.0);
  tracer.add_counter(fallback, "reason_persistent_fault", 1.0);

  std::ostringstream out;
  toast::obs::write_metrics_json(tracer.spans(), out);
  const auto rows =
      toast::obs::read_metrics_json(json::Value::parse(out.str()));
  EXPECT_DOUBLE_EQ(rows.at("fault_retry_launch").counters.at("failures"),
                   2.0);
  EXPECT_DOUBLE_EQ(rows.at("fault_retry_launch").seconds, 3.0e-4);
  EXPECT_DOUBLE_EQ(
      rows.at("fault_fallback").counters.at("kernel_noise_weight"), 1.0);
  EXPECT_DOUBLE_EQ(
      rows.at("fault_fallback").counters.at("reason_persistent_fault"), 1.0);
}

}  // namespace
