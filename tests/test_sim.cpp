// Tests of the satellite simulation workload generator.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/context.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"

namespace core = toast::core;
namespace sim = toast::sim;

TEST(Focalplane, HexLayoutProperties) {
  const auto fp = sim::hex_focalplane(64, 37.0);
  EXPECT_EQ(fp.n_detectors(), 64);
  EXPECT_EQ(fp.names.size(), 64u);
  EXPECT_EQ(fp.net.size(), 64u);
  // All detector offsets are unit quaternions.
  for (const auto& q : fp.quats) {
    EXPECT_NEAR(toast::qarray::norm(q), 1.0, 1e-12);
  }
  // Detectors come in pairs with orthogonal polarization.
  for (int d = 0; d + 1 < 64; d += 2) {
    const double delta = std::abs(fp.pol_angles[static_cast<std::size_t>(d + 1)] -
                                  fp.pol_angles[static_cast<std::size_t>(d)]);
    EXPECT_NEAR(delta, M_PI / 2.0, 1e-12);
  }
}

TEST(Focalplane, OddCountsWork) {
  EXPECT_EQ(sim::hex_focalplane(1, 37.0).n_detectors(), 1);
  EXPECT_EQ(sim::hex_focalplane(7, 37.0).n_detectors(), 7);
  EXPECT_EQ(sim::hex_focalplane(2048, 37.0).n_detectors(), 2048);
}

TEST(Satellite, ObservationStructure) {
  const auto fp = sim::hex_focalplane(4, 37.0);
  const auto ob = sim::simulate_satellite("test", fp, 4096, {}, 1);
  EXPECT_EQ(ob.n_samples(), 4096);
  EXPECT_EQ(ob.n_detectors(), 4);
  EXPECT_TRUE(ob.has_field(core::fields::kBoresight));
  EXPECT_TRUE(ob.has_field(core::fields::kHwpAngle));
  EXPECT_TRUE(ob.has_field(core::fields::kTimes));
  EXPECT_TRUE(ob.has_field(core::fields::kSharedFlags));
  EXPECT_FALSE(ob.intervals().empty());
}

TEST(Satellite, BoresightQuaternionsAreUnit) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  const auto ob = sim::simulate_satellite("test", fp, 2048, {}, 2);
  const auto bore = ob.field(core::fields::kBoresight).f64();
  for (std::int64_t s = 0; s < ob.n_samples(); s += 17) {
    const std::size_t off = static_cast<std::size_t>(4 * s);
    const double n = std::sqrt(bore[off] * bore[off] +
                               bore[off + 1] * bore[off + 1] +
                               bore[off + 2] * bore[off + 2] +
                               bore[off + 3] * bore[off + 3]);
    EXPECT_NEAR(n, 1.0, 1e-12);
  }
}

TEST(Satellite, ScanCoversSkyBand) {
  // The precession+spin motion must sweep a wide band of the sphere, not
  // stare at one spot.
  const auto fp = sim::hex_focalplane(1, 37.0);
  sim::ScanParams params;
  params.spin_period = 60.0;
  params.prec_period = 600.0;
  const auto ob = sim::simulate_satellite("test", fp, 16384, params, 3);
  const auto bore = ob.field(core::fields::kBoresight).f64();
  double zmin = 1.0, zmax = -1.0;
  for (std::int64_t s = 0; s < ob.n_samples(); ++s) {
    const toast::qarray::Quat q{
        bore[static_cast<std::size_t>(4 * s)],
        bore[static_cast<std::size_t>(4 * s + 1)],
        bore[static_cast<std::size_t>(4 * s + 2)],
        bore[static_cast<std::size_t>(4 * s + 3)]};
    const auto dir = toast::qarray::rotate(q, {0.0, 0.0, 1.0});
    zmin = std::min(zmin, dir[2]);
    zmax = std::max(zmax, dir[2]);
  }
  EXPECT_LT(zmin, -0.3);
  EXPECT_GT(zmax, 0.3);
}

TEST(Satellite, IntervalsVaryTileAndStayInRange) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  sim::ScanParams params;
  params.spin_period = 20.0;  // many intervals
  const auto ob = sim::simulate_satellite("test", fp, 8192, params, 4);
  const auto& ivals = ob.intervals();
  ASSERT_GT(ivals.size(), 4u);
  std::set<std::int64_t> lengths;
  std::int64_t prev_stop = 0;
  for (const auto& v : ivals) {
    EXPECT_GE(v.start, prev_stop);
    EXPECT_GT(v.stop, v.start);
    EXPECT_LE(v.stop, ob.n_samples());
    lengths.insert(v.length());
    prev_stop = v.stop;
  }
  // Jitter produces genuinely varying lengths (the padding stressor).
  EXPECT_GT(lengths.size(), 2u);
}

TEST(Satellite, DeterministicPerSeed) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  const auto a = sim::simulate_satellite("a", fp, 1024, {}, 42);
  const auto b = sim::simulate_satellite("b", fp, 1024, {}, 42);
  const auto c = sim::simulate_satellite("c", fp, 1024, {}, 43);
  EXPECT_EQ(a.intervals().size(), b.intervals().size());
  const auto fa = a.field(core::fields::kSharedFlags).u8();
  const auto fb = b.field(core::fields::kSharedFlags).u8();
  const auto fc = c.field(core::fields::kSharedFlags).u8();
  EXPECT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin()));
  EXPECT_FALSE(std::equal(fa.begin(), fa.end(), fc.begin()));
}

TEST(SyntheticSky, SmoothAndFinite) {
  const auto map = sim::synthetic_sky(16, 3);
  ASSERT_EQ(map.size(), 12u * 16 * 16 * 3);
  double power = 0.0;
  for (const double v : map) {
    ASSERT_TRUE(std::isfinite(v));
    power += v * v;
  }
  EXPECT_GT(power, 0.0);
  // Reproducible for the same seed.
  EXPECT_EQ(map, sim::synthetic_sky(16, 3));
  EXPECT_NE(map, sim::synthetic_sky(16, 3, 99));
}

TEST(SimNoise, NoiseHasOneOverFCharacter) {
  // Strong 1/f: knee well inside the sampled band.
  const auto fp = sim::hex_focalplane(2, 37.0, 10.0, 50.0e-6, 2.0, 1.5);
  auto ob = sim::simulate_satellite("test", fp, 16384, {}, 5);
  core::ExecConfig cfg;
  core::ExecContext ctx(cfg);
  sim::SimNoiseOp noise(777);
  noise.ensure_fields(ob);
  noise.exec(ob, ctx, nullptr, core::Backend::kCpu);

  const auto signal = ob.det_f64(core::fields::kSignal, 0);
  // Nonzero and finite.
  double var = 0.0, mean = 0.0;
  for (const double v : signal) {
    ASSERT_TRUE(std::isfinite(v));
    mean += v;
  }
  mean /= static_cast<double>(signal.size());
  for (const double v : signal) var += (v - mean) * (v - mean);
  var /= static_cast<double>(signal.size());
  EXPECT_GT(var, 0.0);

  // 1/f character: power in long-timescale differences exceeds white
  // expectation.  Compare lag-1 and lag-1024 structure functions: for
  // white noise they are equal; 1/f noise has more large-scale power.
  double d1 = 0.0, dlong = 0.0;
  const std::size_t n = signal.size();
  for (std::size_t i = 0; i + 1024 < n; ++i) {
    d1 += (signal[i + 1] - signal[i]) * (signal[i + 1] - signal[i]);
    dlong += (signal[i + 1024] - signal[i]) * (signal[i + 1024] - signal[i]);
  }
  EXPECT_GT(dlong, 1.5 * d1);
}

TEST(SimNoise, DetectorsAreIndependent) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  auto ob = sim::simulate_satellite("test", fp, 4096, {}, 6);
  core::ExecConfig cfg;
  core::ExecContext ctx(cfg);
  sim::SimNoiseOp noise(888);
  noise.ensure_fields(ob);
  noise.exec(ob, ctx, nullptr, core::Backend::kCpu);
  const auto s0 = ob.det_f64(core::fields::kSignal, 0);
  const auto s1 = ob.det_f64(core::fields::kSignal, 1);
  double dot = 0.0, n0 = 0.0, n1 = 0.0;
  for (std::size_t i = 0; i < s0.size(); ++i) {
    dot += s0[i] * s1[i];
    n0 += s0[i] * s0[i];
    n1 += s1[i] * s1[i];
  }
  EXPECT_LT(std::abs(dot) / std::sqrt(n0 * n1), 0.2);
}

TEST(Workflow, BenchmarkPipelineComposition) {
  sim::WorkflowConfig cfg;
  cfg.map_iterations = 3;
  const auto pipeline = sim::make_benchmark_pipeline(cfg);
  // 2 sim + 4 pointing/scan + 2 unported + 3*4 mapmaking + 2 unported.
  EXPECT_EQ(pipeline.operators().size(), 2u + 4u + 2u + 12u + 2u);
  cfg.include_unported = false;
  EXPECT_EQ(sim::make_benchmark_pipeline(cfg).operators().size(),
            2u + 4u + 12u);
  EXPECT_EQ(sim::make_pointing_pipeline(cfg).operators().size(), 3u);
  EXPECT_EQ(sim::make_mapmaking_pipeline(cfg).operators().size(), 5u);
}
