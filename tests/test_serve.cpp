// Tests of the multi-tenant job service: strict toastcase-serve-v1
// parsing (unknown keys reject at every nesting level, including the
// nested fault-plan / resilience-policy / schedule documents), schedule
// library lookup, fair-share vs strict-priority ordering, memory-aware
// packing (admission rejects, queueing under exclusivity), per-tenant
// chaos isolation (bitwise), elastic world-shrink containment,
// same-seed bitwise repeats, and the served-equals-standalone oracle.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "serve/service.hpp"
#include "serve/spec.hpp"
#include "tune/library.hpp"

namespace {

using toast::serve::SchedPolicy;
using toast::serve::ServedJob;
using toast::serve::Service;
using toast::serve::ServiceReport;
using toast::serve::ServiceSpec;

// A minimal exclusive (MPS-off) accelerator schedule: on a one-node
// fleet these jobs serialize, which makes ordering observable.
constexpr const char* kExclusiveOmp =
    R"({"schema": "toastcase-schedule-v1", "backend": "omp-target",
        "device": {"mps": false}})";

std::string result_string(const ServiceReport& r) {
  std::ostringstream ss;
  toast::serve::write_result_json(ss, r);
  return ss.str();
}

const ServedJob& job_named(const ServiceReport& r, const std::string& name) {
  for (const ServedJob& j : r.jobs) {
    if (j.name == name) {
      return j;
    }
  }
  throw std::runtime_error("no job named " + name);
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(ServeSpec, ParsesFullDocument) {
  const ServiceSpec spec = ServiceSpec::parse(R"({
    "schema": "toastcase-serve-v1",
    "policy": "priority",
    "fleet": {"nodes": 3, "gpus_per_node": 2},
    "tenants": [
      {"name": "a", "share": 2.0, "max_running": 1, "priority": 4,
       "faults": {"schema": "toastcase-fault-plan-v1", "seed": 9,
                  "rules": [{"kind": "transfer", "probability": 0.1}]},
       "resilience": {"schema": "toastcase-resilience-policy-v1",
                      "elastic": {"enabled": true, "min_ranks": 2}}},
      {"name": "b"}
    ],
    "jobs": [
      {"name": "j0", "tenant": "a", "workload": "tiny",
       "backend": "jax", "submit_s": 1.5, "priority": 7, "seed": 42,
       "map_iterations": 2, "pipeline": "overlap"},
      {"name": "j1", "tenant": "b",
       "schedule": )" + std::string(kExclusiveOmp) + R"(}
    ]
  })");
  EXPECT_EQ(spec.policy, SchedPolicy::kPriority);
  EXPECT_EQ(spec.fleet.nodes, 3);
  EXPECT_EQ(spec.fleet.gpus_per_node, 2);
  ASSERT_EQ(spec.tenants.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.tenants[0].share, 2.0);
  EXPECT_EQ(spec.tenants[0].max_running, 1);
  EXPECT_EQ(spec.tenants[0].priority, 4);
  EXPECT_FALSE(spec.tenants[0].faults.rules.empty());
  EXPECT_TRUE(spec.tenants[0].resilience.elastic.enabled);
  EXPECT_TRUE(spec.tenants[1].faults.rules.empty());
  ASSERT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.jobs[0].backend, "jax");
  EXPECT_TRUE(spec.jobs[0].has_priority);
  EXPECT_EQ(spec.jobs[0].priority, 7);
  EXPECT_DOUBLE_EQ(spec.jobs[0].submit_s, 1.5);
  EXPECT_EQ(spec.jobs[0].seed, 42u);
  EXPECT_EQ(spec.jobs[0].pipeline, toast::mpisim::PipelineRun::kGraphOverlap);
  EXPECT_TRUE(spec.jobs[1].has_schedule);
  EXPECT_EQ(spec.jobs[1].schedule.backend, "omp-target");
  EXPECT_FALSE(spec.jobs[1].schedule.device.mps);
}

TEST(ServeSpec, RejectsUnknownKeysAtEveryNestingLevel) {
  const auto reject = [](const std::string& body) {
    EXPECT_THROW(ServiceSpec::parse(body), std::runtime_error) << body;
  };
  const std::string tenants =
      R"("tenants": [{"name": "a"}], )";
  const std::string jobs =
      R"("jobs": [{"name": "j", "tenant": "a"}])";
  // Top level.
  reject(R"({"schema": "toastcase-serve-v1", "polcy": "fair_share", )" +
         tenants + jobs + "}");
  // Wrong schema string.
  reject(R"({"schema": "toastcase-serve-v2", )" + tenants + jobs + "}");
  // Fleet.
  reject(R"({"schema": "toastcase-serve-v1",
             "fleet": {"nodez": 2}, )" + tenants + jobs + "}");
  // Tenant.
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a", "shar": 1.0}], )" + jobs + "}");
  // Job.
  reject(R"({"schema": "toastcase-serve-v1", )" + tenants +
         R"("jobs": [{"name": "j", "tenant": "a", "submit": 0}]})");
  // Nested fault plan.
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a",
               "faults": {"schema": "toastcase-fault-plan-v1",
                          "rulez": []}}], )" + jobs + "}");
  // Nested resilience policy.
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a",
               "resilience": {"schema": "toastcase-resilience-policy-v1",
                              "elastic": {"enable": true}}}], )" +
         jobs + "}");
  // Nested schedule.
  reject(R"({"schema": "toastcase-serve-v1", )" + tenants +
         R"("jobs": [{"name": "j", "tenant": "a",
             "schedule": {"schema": "toastcase-schedule-v1",
                          "backend": "cpu", "streemz": 2}}]})");
}

TEST(ServeSpec, ValidatesCrossReferencesAndRanges) {
  const auto reject = [](const std::string& body) {
    EXPECT_THROW(ServiceSpec::parse(body), std::runtime_error) << body;
  };
  // Unknown tenant reference.
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "nope"}]})");
  // Duplicate tenant / duplicate job.
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}, {"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a"}]})");
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a"},
                      {"name": "j", "tenant": "a"}]})");
  // backend + schedule are mutually exclusive.
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a", "backend": "jax",
                       "schedule": {"schema": "toastcase-schedule-v1"}}]})");
  // Bad enums and ranges.
  reject(R"({"schema": "toastcase-serve-v1", "policy": "fifo",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a"}]})");
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a", "workload": "huge"}]})");
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a", "pipeline": "async"}]})");
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}],
             "jobs": [{"name": "j", "tenant": "a", "submit_s": -1.0}]})");
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a", "share": 0.0}],
             "jobs": [{"name": "j", "tenant": "a"}]})");
  // Empty tenant / job arrays.
  reject(R"({"schema": "toastcase-serve-v1", "tenants": [],
             "jobs": [{"name": "j", "tenant": "a"}]})");
  reject(R"({"schema": "toastcase-serve-v1",
             "tenants": [{"name": "a"}], "jobs": []})");
}

TEST(ScheduleLibrary, LookupPrefersMostSpecificEntry) {
  const std::string omp = write_temp("lib_omp.json", std::string(R"({
    "schema": "toastcase-schedule-v1", "backend": "omp-target"})"));
  const std::string jax = write_temp("lib_jax.json", std::string(R"({
    "schema": "toastcase-schedule-v1", "backend": "jax"})"));
  const std::string index = write_temp("lib_index.json", std::string(R"({
    "schema": "toastcase-schedule-library-v1",
    "entries": [
      {"workload": "tiny", "path": ")") + jax + R"("},
      {"workload": "tiny", "backend": "omp-target", "nodes": 1,
       "procs_per_node": 1, "path": ")" + omp + R"("}
    ]
  })");
  const auto lib = toast::tune::ScheduleLibrary::load_file(index);
  ASSERT_EQ(lib.entries().size(), 2u);

  toast::tune::LibraryQuery q;
  q.workload = "tiny";
  q.nodes = 1;
  q.procs_per_node = 1;
  q.backend = "omp-target";
  const auto* exact = toast::tune::library_lookup(lib, q);
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->backend, "omp-target");

  // Different backend: only the wildcard entry matches.
  q.backend = "cpu";
  const auto* wild = toast::tune::library_lookup(lib, q);
  ASSERT_NE(wild, nullptr);
  EXPECT_EQ(wild->backend, "jax");

  // Unknown workload: miss.
  q.workload = "medium";
  EXPECT_EQ(toast::tune::library_lookup(lib, q), nullptr);

  // Unknown index keys reject.
  EXPECT_THROW(toast::tune::ScheduleLibrary::parse(
                   R"({"schema": "toastcase-schedule-library-v1",
                       "entriez": []})",
                   "."),
               std::runtime_error);
}

TEST(ServeService, TunedJobsConsultTheLibrary) {
  const std::string art = write_temp("tuned_tiny.json", std::string(R"({
    "schema": "toastcase-schedule-v1", "backend": "omp-target",
    "staging": {"mode": "pipelined", "prefetch": true, "evict": true}})"));
  const std::string index = write_temp("serve_index.json", std::string(R"({
    "schema": "toastcase-schedule-library-v1",
    "entries": [{"workload": "tiny", "path": ")") + art + R"("}]
  })");
  ServiceSpec spec = ServiceSpec::parse(R"({
    "schema": "toastcase-serve-v1",
    "tenants": [{"name": "a"}],
    "jobs": [{"name": "hit", "tenant": "a", "tuned": true},
             {"name": "miss", "tenant": "a", "workload": "medium",
              "tuned": true, "backend": "jax"}]
  })");
  spec.schedule_library = index;
  spec.fleet.nodes = 4;
  const ServiceReport r = Service(spec).run();
  EXPECT_EQ(r.library_hits, 1);
  EXPECT_EQ(r.library_misses, 1);
  const ServedJob& hit = job_named(r, "hit");
  EXPECT_TRUE(hit.library_hit);
  EXPECT_EQ(hit.config.schedule.backend, "omp-target");
  EXPECT_TRUE(hit.config.schedule.staging.prefetch);
  // The miss falls back to the job's backend override.
  const ServedJob& miss = job_named(r, "miss");
  EXPECT_FALSE(miss.library_hit);
  EXPECT_EQ(miss.config.schedule.backend, "jax");
}

// One-node fleet + exclusive jobs: the service runs one job at a time,
// so the start order IS the policy order.
std::string ordering_spec(const std::string& policy) {
  return R"({
    "schema": "toastcase-serve-v1",
    "policy": ")" + policy + R"(",
    "fleet": {"nodes": 1, "gpus_per_node": 4},
    "tenants": [{"name": "a", "share": 1.0, "priority": 1},
                {"name": "b", "share": 4.0, "priority": 5}],
    "jobs": [
      {"name": "a0", "tenant": "a", "schedule": )" + kExclusiveOmp + R"(},
      {"name": "a1", "tenant": "a", "schedule": )" + kExclusiveOmp + R"(},
      {"name": "b0", "tenant": "b", "schedule": )" + kExclusiveOmp + R"(},
      {"name": "b1", "tenant": "b", "schedule": )" + kExclusiveOmp + R"(}
    ]
  })";
}

TEST(ServeService, FairShareInterleavesByChargedShare) {
  const ServiceReport r =
      Service(ServiceSpec::parse(ordering_spec("fair_share"))).run();
  EXPECT_EQ(r.completed, 4);
  EXPECT_TRUE(r.work_conserving);
  // First slot: all charges zero, tie broken by declaration order -> a0.
  // a is then charged, so b (4x share) runs both jobs before a1.
  EXPECT_LT(job_named(r, "a0").start_s, job_named(r, "b0").start_s);
  EXPECT_LT(job_named(r, "b0").start_s, job_named(r, "b1").start_s);
  EXPECT_LT(job_named(r, "b1").start_s, job_named(r, "a1").start_s);
  // Exclusive jobs on one node serialize: no overlap, positive waits.
  EXPECT_GT(job_named(r, "a1").queue_wait_s, 0.0);
}

TEST(ServeService, PriorityPolicyIsStrict) {
  const ServiceReport r =
      Service(ServiceSpec::parse(ordering_spec("priority"))).run();
  EXPECT_EQ(r.completed, 4);
  // b's level 5 beats a's level 1; FIFO within a level.
  EXPECT_LT(job_named(r, "b0").start_s, job_named(r, "b1").start_s);
  EXPECT_LT(job_named(r, "b1").start_s, job_named(r, "a0").start_s);
  EXPECT_LT(job_named(r, "a0").start_s, job_named(r, "a1").start_s);
}

TEST(ServeService, AdmissionRejectsNeverFitJobs) {
  // The large workload wants 8 nodes; the fleet has 2.
  ServiceSpec spec = ServiceSpec::parse(R"({
    "schema": "toastcase-serve-v1",
    "fleet": {"nodes": 2, "gpus_per_node": 4},
    "tenants": [{"name": "a"}],
    "jobs": [{"name": "big", "tenant": "a", "workload": "large",
              "backend": "omp-target"},
             {"name": "ok", "tenant": "a", "workload": "tiny",
              "backend": "cpu"}]
  })");
  const ServiceReport r = Service(spec).run();
  EXPECT_EQ(r.rejected, 1);
  EXPECT_EQ(r.completed, 1);
  const ServedJob& big = job_named(r, "big");
  EXPECT_FALSE(big.admitted);
  EXPECT_NE(big.reject_reason.find("nodes"), std::string::npos);
  EXPECT_TRUE(job_named(r, "ok").completed);

  // Shrink the device: the accel job's footprint no longer fits a GPU,
  // but the CPU job never touches one and still completes.
  ServiceSpec tight = ServiceSpec::parse(R"({
    "schema": "toastcase-serve-v1",
    "fleet": {"nodes": 2, "gpus_per_node": 4},
    "tenants": [{"name": "a"}],
    "jobs": [{"name": "gpu", "tenant": "a", "backend": "omp-target"},
             {"name": "cpu", "tenant": "a", "backend": "cpu"}]
  })");
  tight.fleet.device.memory_bytes = 1.0;
  const ServiceReport tr = Service(tight).run();
  const ServedJob& gpu = job_named(tr, "gpu");
  EXPECT_FALSE(gpu.admitted);
  EXPECT_NE(gpu.reject_reason.find("device footprint"), std::string::npos);
  EXPECT_TRUE(job_named(tr, "cpu").completed);
}

TEST(ServeService, ExclusiveJobsQueueUntilNodesFree) {
  const ServiceReport r = Service(ServiceSpec::parse(R"({
    "schema": "toastcase-serve-v1",
    "fleet": {"nodes": 1, "gpus_per_node": 4},
    "tenants": [{"name": "a"}],
    "jobs": [
      {"name": "first", "tenant": "a", "schedule": )" +
      std::string(kExclusiveOmp) + R"(},
      {"name": "second", "tenant": "a", "schedule": )" +
      std::string(kExclusiveOmp) + R"(}
    ]
  })")).run();
  const ServedJob& first = job_named(r, "first");
  const ServedJob& second = job_named(r, "second");
  EXPECT_TRUE(first.completed);
  EXPECT_TRUE(second.completed);
  EXPECT_DOUBLE_EQ(first.start_s, 0.0);
  // Preemption-free: the second starts exactly when the first finishes.
  EXPECT_DOUBLE_EQ(second.start_s, first.finish_s);
  EXPECT_GT(second.queue_wait_s, 0.0);
  EXPECT_TRUE(r.work_conserving);
}

std::string chaos_spec(bool with_chaos) {
  const std::string faults = with_chaos ? R"(,
       "faults": {"schema": "toastcase-fault-plan-v1", "seed": 20230923,
                  "rules": [{"kind": "transfer", "probability": 0.05},
                            {"kind": "launch", "probability": 0.05},
                            {"kind": "straggler", "probability": 0.1,
                             "factor": 3.0}]})"
                                        : "";
  return R"({
    "schema": "toastcase-serve-v1",
    "fleet": {"nodes": 2, "gpus_per_node": 4},
    "tenants": [{"name": "alpha", "share": 1.0)" + faults + R"(},
                {"name": "beta", "share": 2.0}],
    "jobs": [
      {"name": "a0", "tenant": "alpha", "backend": "omp-target"},
      {"name": "b0", "tenant": "beta", "backend": "omp-target"},
      {"name": "b1", "tenant": "beta", "backend": "jax",
       "submit_s": 0.25}
    ]
  })";
}

TEST(ServeService, ChaosIsolationIsBitwise) {
  const ServiceReport with = Service(ServiceSpec::parse(chaos_spec(true))).run();
  const ServiceReport without =
      Service(ServiceSpec::parse(chaos_spec(false))).run();
  // Alpha's chaos fired...
  EXPECT_FALSE(job_named(with, "a0").result.fault_counters.empty());
  // ...and did not move a single bit of beta's results.
  for (const char* name : {"b0", "b1"}) {
    EXPECT_TRUE(toast::serve::results_bitwise_equal(
        job_named(with, name).result, job_named(without, name).result))
        << name;
  }
}

TEST(ServeService, ElasticShrinkStaysInsideTheTenant) {
  // Tenant alpha: guaranteed rank deaths + an elastic policy; its jobs
  // run in a 2x2 world (schedule shape override).  Tenant beta shares
  // the fleet with the same shape but no chaos: its world must stay
  // whole.
  const std::string shaped = R"({"schema": "toastcase-schedule-v1",
    "backend": "cpu", "shape": {"nodes": 2, "procs_per_node": 2}})";
  const ServiceReport r = Service(ServiceSpec::parse(R"({
    "schema": "toastcase-serve-v1",
    "fleet": {"nodes": 4, "gpus_per_node": 4},
    "tenants": [
      {"name": "alpha",
       "faults": {"schema": "toastcase-fault-plan-v1", "seed": 31,
                  "retry": {"max_attempts": 2},
                  "rules": [{"kind": "rank", "site": "mpisim_rank",
                             "probability": 1.0}]},
       "resilience": {"schema": "toastcase-resilience-policy-v1",
                      "elastic": {"enabled": true, "min_ranks": 1,
                                  "rebuild_seconds": 1e-3,
                                  "requeue": true}}},
      {"name": "beta"}
    ],
    "jobs": [
      {"name": "a0", "tenant": "alpha", "schedule": )" + shaped + R"(},
      {"name": "b0", "tenant": "beta", "schedule": )" + shaped + R"(}
    ]
  })")).run();
  const ServedJob& a0 = job_named(r, "a0");
  const ServedJob& b0 = job_named(r, "b0");
  ASSERT_TRUE(a0.completed);
  ASSERT_TRUE(b0.completed);
  EXPECT_LT(a0.result.world_ranks, 4);
  EXPECT_GT(a0.result.fault_counters.at("resilience_world_shrinks"), 0.0);
  EXPECT_EQ(b0.result.world_ranks, 4);
  EXPECT_TRUE(b0.result.fault_counters.empty());
}

TEST(ServeService, SameSeedRunsAreByteIdentical) {
  const ServiceSpec spec = ServiceSpec::parse(chaos_spec(true));
  const ServiceReport a = Service(spec).run();
  const ServiceReport b = Service(spec).run();
  EXPECT_EQ(result_string(a), result_string(b));
}

TEST(ServeService, ServedResultsMatchStandaloneRuns) {
  // The figure-5 style oracle: every job the service completed must
  // carry exactly the JobResult a standalone run of its resolved
  // config produces.
  const ServiceReport r = Service(ServiceSpec::parse(chaos_spec(true))).run();
  EXPECT_EQ(r.completed, 3);
  for (const ServedJob& j : r.jobs) {
    ASSERT_TRUE(j.completed) << j.name;
    const toast::mpisim::JobResult fresh =
        toast::mpisim::run_benchmark_job(j.config);
    EXPECT_TRUE(toast::serve::results_bitwise_equal(j.result, fresh))
        << j.name;
    // Contention can stretch wall time but never below the standalone
    // runtime.
    EXPECT_GE(j.served_s, j.service_s - 1e-12);
  }
}

}  // namespace
