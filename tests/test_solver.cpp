// Tests of the destriping map-maker: convergence, cross-backend
// agreement, and actual removal of injected noise offsets.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "kernels/jax.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"
#include "solver/destriper.hpp"

namespace core = toast::core;
namespace sim = toast::sim;
using core::Backend;
using toast::solver::Destriper;
using toast::solver::DestriperConfig;

namespace {

// An observation with pointing expanded and a signal consisting of the
// scanned sky plus known step-wise offsets (the thing the destriper must
// recover) plus a little white noise.
struct Scenario {
  core::Observation ob;
  std::vector<double> injected;  // true offsets per (det, step)
  DestriperConfig cfg;
};

Scenario make_scenario(std::uint64_t seed = 11, double white_sigma = 1e-7) {
  DestriperConfig cfg;
  cfg.nside = 16;
  cfg.step_length = 128;
  cfg.max_iterations = 150;
  cfg.tolerance = 1e-8;

  const auto fp = sim::hex_focalplane(4, 37.0, 10.0, 50e-6);
  sim::ScanParams scan;
  scan.spin_period = 60.0;
  Scenario s{sim::simulate_satellite("destripe", fp, 8192, scan, seed), {},
             cfg};

  // Sky synthesis + pointing + scan in one pipeline (weights stay on the
  // device between the operators).
  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  sim::WorkflowConfig wf;
  wf.nside = cfg.nside;
  core::Data data;
  data.observations.push_back(std::move(s.ob));
  sim::make_scan_pipeline(wf).exec(data, ctx);
  s.ob = std::move(data.observations[0]);

  // Inject known offsets + white noise.
  const std::int64_t n_det = s.ob.n_detectors();
  const std::int64_t n_samp = s.ob.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + cfg.step_length - 1) / cfg.step_length;
  std::mt19937 gen(static_cast<unsigned>(seed));
  std::normal_distribution<double> off(0.0, 1e-4);
  std::normal_distribution<double> white(0.0, white_sigma);
  s.injected.resize(static_cast<std::size_t>(n_det * n_amp_det));
  for (auto& v : s.injected) v = off(gen);
  auto signal = s.ob.field(core::fields::kSignal).f64();
  for (std::int64_t d = 0; d < n_det; ++d) {
    for (std::int64_t t = 0; t < n_samp; ++t) {
      signal[static_cast<std::size_t>(d * n_samp + t)] +=
          s.injected[static_cast<std::size_t>(d * n_amp_det +
                                              t / cfg.step_length)] +
          white(gen);
    }
  }
  return s;
}

double tod_rms(const core::Observation& ob) {
  const auto s = ob.field(core::fields::kSignal).f64();
  double acc = 0.0;
  for (const double v : s) acc += v * v;
  return std::sqrt(acc / static_cast<double>(s.size()));
}

}  // namespace

TEST(Destriper, ConvergesOnCpu) {
  auto sc = make_scenario();
  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  Destriper destriper(sc.cfg);
  const auto result = destriper.solve(sc.ob, ctx, Backend::kCpu);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.reduction(), 1e-7);
  EXPECT_GT(result.iterations, 1);
  // Residuals decrease overall.
  EXPECT_LT(result.residuals.back(), result.residuals.front());
}

TEST(Destriper, RecoversInjectedOffsets) {
  auto sc = make_scenario(21);
  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  Destriper destriper(sc.cfg);
  const auto result = destriper.solve(sc.ob, ctx, Backend::kCpu);
  ASSERT_TRUE(result.converged);

  // The solved amplitudes match the injected ones up to a common offset
  // per detector (the absolute level is degenerate with the sky).
  const std::int64_t n_det = sc.ob.n_detectors();
  const auto n_amp_det =
      static_cast<std::int64_t>(result.amplitudes.size()) / n_det;
  double err = 0.0, sig = 0.0;
  for (std::int64_t d = 0; d < n_det; ++d) {
    double mean_diff = 0.0;
    for (std::int64_t a = 0; a < n_amp_det; ++a) {
      const auto i = static_cast<std::size_t>(d * n_amp_det + a);
      mean_diff += result.amplitudes[i] - sc.injected[i];
    }
    mean_diff /= static_cast<double>(n_amp_det);
    for (std::int64_t a = 0; a < n_amp_det; ++a) {
      const auto i = static_cast<std::size_t>(d * n_amp_det + a);
      const double diff =
          result.amplitudes[i] - sc.injected[i] - mean_diff;
      err += diff * diff;
      sig += sc.injected[i] * sc.injected[i];
    }
  }
  EXPECT_LT(std::sqrt(err / sig), 0.15);
}

TEST(Destriper, ApplyReducesStriping) {
  auto sc = make_scenario(31);
  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  Destriper destriper(sc.cfg);
  const double rms_before = tod_rms(sc.ob);
  const auto result = destriper.solve(sc.ob, ctx, Backend::kCpu);
  destriper.apply(sc.ob, result, ctx, Backend::kCpu);
  const double rms_after = tod_rms(sc.ob);
  // The offsets dominate the signal in this scenario; destriping must
  // remove most of the variance.
  EXPECT_LT(rms_after, 0.5 * rms_before);
}

TEST(Destriper, BackendsAgree) {
  auto sc_cpu = make_scenario(41);
  auto sc_omp = make_scenario(41);
  auto sc_jax = make_scenario(41);
  core::ExecConfig ec;
  core::ExecContext c1(ec), c2(ec), c3(ec);
  toast::kernels::jax::clear_jit_caches();
  Destriper destriper(sc_cpu.cfg);
  const auto r_cpu = destriper.solve(sc_cpu.ob, c1, Backend::kCpu);
  const auto r_omp = destriper.solve(sc_omp.ob, c2, Backend::kOmpTarget);
  const auto r_jax = destriper.solve(sc_jax.ob, c3, Backend::kJax);
  ASSERT_EQ(r_cpu.amplitudes.size(), r_omp.amplitudes.size());
  ASSERT_EQ(r_cpu.amplitudes.size(), r_jax.amplitudes.size());
  for (std::size_t i = 0; i < r_cpu.amplitudes.size(); ++i) {
    ASSERT_DOUBLE_EQ(r_cpu.amplitudes[i], r_omp.amplitudes[i]) << i;
    ASSERT_DOUBLE_EQ(r_cpu.amplitudes[i], r_jax.amplitudes[i]) << i;
  }
}

TEST(Destriper, RequiresPointing) {
  const auto fp = sim::hex_focalplane(2, 37.0);
  auto ob = sim::simulate_satellite("nopointing", fp, 512, {}, 3);
  ob.create_detdata(core::fields::kSignal, core::FieldType::kF64);
  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  Destriper destriper;
  EXPECT_THROW(destriper.solve(ob, ctx, Backend::kCpu),
               std::invalid_argument);
}

TEST(Destriper, DistributedCommChargesTimeNotValues) {
  // Running the solve with a simulated multi-rank comm config must charge
  // allreduce time on the virtual clock without perturbing the numerics:
  // every rank computes the same global dot products, so amplitudes and
  // residuals stay bitwise identical to the single-rank solve.
  auto solo = make_scenario(33);
  core::ExecConfig ec;
  core::ExecContext ctx_solo(ec);
  const auto r_solo =
      Destriper(solo.cfg).solve(solo.ob, ctx_solo, Backend::kCpu);

  auto dist = make_scenario(33);
  dist.cfg.comm_ranks = 4;
  dist.cfg.comm_ranks_per_node = 2;
  core::ExecContext ctx_dist(ec);
  const auto r_dist =
      Destriper(dist.cfg).solve(dist.ob, ctx_dist, Backend::kCpu);

  ASSERT_EQ(r_solo.amplitudes.size(), r_dist.amplitudes.size());
  for (std::size_t i = 0; i < r_solo.amplitudes.size(); ++i) {
    ASSERT_EQ(r_solo.amplitudes[i], r_dist.amplitudes[i]) << i;
  }
  ASSERT_EQ(r_solo.residuals.size(), r_dist.residuals.size());
  for (std::size_t i = 0; i < r_solo.residuals.size(); ++i) {
    ASSERT_EQ(r_solo.residuals[i], r_dist.residuals[i]) << i;
  }

  // The comm charges show up on the clock and in the trace.
  EXPECT_GT(ctx_dist.elapsed(), ctx_solo.elapsed());
  int dot_spans = 0;
  int map_spans = 0;
  for (const auto& s : ctx_dist.tracer().spans()) {
    if (s.name == "destriper_allreduce_dot") ++dot_spans;
    if (s.name == "destriper_allreduce_map") ++map_spans;
  }
  EXPECT_GT(dot_spans, 0);
  EXPECT_GT(map_spans, 0);

  // And the distributed run itself is deterministic.
  auto again = make_scenario(33);
  again.cfg.comm_ranks = 4;
  again.cfg.comm_ranks_per_node = 2;
  core::ExecContext ctx_again(ec);
  const auto r_again =
      Destriper(again.cfg).solve(again.ob, ctx_again, Backend::kCpu);
  EXPECT_EQ(ctx_dist.elapsed(), ctx_again.elapsed());
  ASSERT_EQ(r_dist.amplitudes.size(), r_again.amplitudes.size());
  for (std::size_t i = 0; i < r_dist.amplitudes.size(); ++i) {
    ASSERT_EQ(r_dist.amplitudes[i], r_again.amplitudes[i]) << i;
  }
}

TEST(Destriper, AsyncSerialCommIsBitwiseStaged) {
  // Routing the CG collectives through the task engine in serial mode is
  // the oracle case: runtime, TimeLog and solver products must all be
  // bitwise identical to the staged (blocking) collectives.
  auto staged = make_scenario(33);
  staged.cfg.comm_ranks = 4;
  staged.cfg.comm_ranks_per_node = 2;
  core::ExecConfig ec;
  core::ExecContext ctx_staged(ec);
  const auto r_staged =
      Destriper(staged.cfg).solve(staged.ob, ctx_staged, Backend::kCpu);

  auto sync = make_scenario(33);
  sync.cfg.comm_ranks = 4;
  sync.cfg.comm_ranks_per_node = 2;
  sync.cfg.async_comm = toast::solver::AsyncComm::kSync;
  core::ExecContext ctx_sync(ec);
  const auto r_sync =
      Destriper(sync.cfg).solve(sync.ob, ctx_sync, Backend::kCpu);

  EXPECT_EQ(ctx_staged.elapsed(), ctx_sync.elapsed());
  const auto log_staged = ctx_staged.log();
  const auto log_sync = ctx_sync.log();
  ASSERT_EQ(log_staged.categories(), log_sync.categories());
  for (const auto& c : log_staged.categories()) {
    EXPECT_EQ(log_staged.seconds(c), log_sync.seconds(c)) << c;
    EXPECT_EQ(log_staged.calls(c), log_sync.calls(c)) << c;
  }
  ASSERT_EQ(r_staged.amplitudes.size(), r_sync.amplitudes.size());
  for (std::size_t i = 0; i < r_staged.amplitudes.size(); ++i) {
    ASSERT_EQ(r_staged.amplitudes[i], r_sync.amplitudes[i]) << i;
  }
  ASSERT_EQ(r_staged.residuals, r_sync.residuals);
}

TEST(Destriper, AsyncOverlapHidesCollectivesKeepsProducts) {
  // Overlap mode pipelines each allreduce behind the next matvec: the
  // solve must get strictly faster while amplitudes and residuals stay
  // bitwise (the awaited values are the same numbers, just later).
  auto staged = make_scenario(33);
  staged.cfg.comm_ranks = 4;
  staged.cfg.comm_ranks_per_node = 2;
  core::ExecConfig ec;
  core::ExecContext ctx_staged(ec);
  const auto r_staged =
      Destriper(staged.cfg).solve(staged.ob, ctx_staged, Backend::kCpu);

  auto ov = make_scenario(33);
  ov.cfg.comm_ranks = 4;
  ov.cfg.comm_ranks_per_node = 2;
  ov.cfg.async_comm = toast::solver::AsyncComm::kOverlap;
  core::ExecContext ctx_ov(ec);
  const auto r_ov = Destriper(ov.cfg).solve(ov.ob, ctx_ov, Backend::kCpu);

  EXPECT_LT(ctx_ov.elapsed(), ctx_staged.elapsed());
  ASSERT_EQ(r_staged.amplitudes.size(), r_ov.amplitudes.size());
  for (std::size_t i = 0; i < r_staged.amplitudes.size(); ++i) {
    ASSERT_EQ(r_staged.amplitudes[i], r_ov.amplitudes[i]) << i;
  }
  ASSERT_EQ(r_staged.residuals, r_ov.residuals);

  // Unhidden latency surfaces as explicit wait spans on the trace.
  double wait_s = 0.0;
  bool saw_engine_lane = false;
  for (const auto& s : ctx_ov.tracer().spans()) {
    if (s.category == "wait") {
      wait_s += s.duration;
    }
  }
  for (const auto& [stream, name] : ctx_ov.tracer().stream_names()) {
    (void)stream;
    if (name == "async:comm") {
      saw_engine_lane = true;
    }
  }
  EXPECT_GE(wait_s, 0.0);
  EXPECT_TRUE(saw_engine_lane);
}

TEST(Destriper, PriorStabilizesUnhitSteps) {
  // With a tiny prior the solve must still converge even though flagged
  // samples leave some steps weakly constrained.
  auto sc = make_scenario(51);
  sc.cfg.prior_weight = 1e-8;
  core::ExecConfig ec;
  core::ExecContext ctx(ec);
  Destriper destriper(sc.cfg);
  const auto result = destriper.solve(sc.ob, ctx, Backend::kCpu);
  EXPECT_TRUE(result.converged);
  for (const double a : result.amplitudes) {
    ASSERT_TRUE(std::isfinite(a));
  }
}
