// Tests for the extended mini-XLA features: new ops (sign/tanh/
// reduce_max), the algebraic-simplification pass, and the module
// verifier.

#include <gtest/gtest.h>

#include <cmath>

#include "xla/jit.hpp"
#include "xla/passes.hpp"

namespace xla = toast::xla;
namespace accel = toast::accel;
using xla::Array;
using xla::Literal;
using xla::Shape;

namespace {

struct Fixture {
  accel::SimDevice device;
  accel::VirtualClock clock;
  toast::obs::Tracer tracer{&clock};
  xla::Runtime rt{device, clock, tracer};
};

Literal vec(std::initializer_list<double> values) {
  std::vector<double> v(values);
  return Literal::from_f64(Shape{static_cast<std::int64_t>(v.size())}, v);
}

}  // namespace

TEST(XlaNewOps, SignAndTanh) {
  Fixture f;
  xla::Jit fn("st", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::sign(in[0]), xla::tanh(in[0])};
  });
  const auto out = fn.call(f.rt, {vec({-2.5, 0.0, 3.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], -1.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], 0.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[2], 1.0);
  EXPECT_NEAR(out[1].f64()[0], std::tanh(-2.5), 1e-15);
  EXPECT_NEAR(out[1].f64()[2], std::tanh(3.0), 1e-15);
}

TEST(XlaNewOps, SignInteger) {
  Fixture f;
  xla::Jit fn("si", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::sign(in[0])};
  });
  std::vector<std::int64_t> v{-7, 0, 9};
  const auto out = fn.call(f.rt, {Literal::from_i64(Shape{3}, v)});
  EXPECT_EQ(out[0].i64()[0], -1);
  EXPECT_EQ(out[0].i64()[1], 0);
  EXPECT_EQ(out[0].i64()[2], 1);
}

TEST(XlaNewOps, ReduceMax) {
  Fixture f;
  xla::Jit fn("rm", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::reduce_max(in[0])};
  });
  const auto out = fn.call(f.rt, {vec({1.0, -5.0, 4.5, 2.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 4.5);
}

TEST(XlaNewOps, ReduceMaxClosesFusionGroup) {
  Fixture f;
  xla::Jit fn("rmg", [](const std::vector<Array>& in) {
    const Array m = xla::reduce_max(in[0] * 2.0);
    return std::vector<Array>{m + 1.0};
  });
  xla::ExecutionReport report;
  const auto out = fn.call_reported(f.rt, {vec({1.0, 3.0})}, "", report);
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 7.0);
  int launches = 0;
  for (const auto& w : report.group_work) {
    if (w.launches > 0.0) ++launches;
  }
  EXPECT_EQ(launches, 2);  // reduce closes one group; the +1 is a second
}

TEST(XlaSimplify, RemovesIdentities) {
  Fixture f;
  xla::Jit fn("idn", [](const std::vector<Array>& in) {
    Array x = in[0];
    x = x * 1.0;               // mul by one
    x = x + 0.0;               // add zero
    x = x - 0.0;               // sub zero
    x = x / 1.0;               // div by one
    x = xla::neg(xla::neg(x)); // double negation
    return std::vector<Array>{x};
  });
  const auto out = fn.call(f.rt, {vec({3.0, -4.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 3.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], -4.0);
  const auto* compiled = fn.lookup({vec({3.0, -4.0})});
  ASSERT_NE(compiled, nullptr);
  EXPECT_GE(compiled->pass_stats.simplified, 5);
  // After simplification + DCE only the param and (possibly) a copy-free
  // root remain; certainly fewer than 4 instructions.
  EXPECT_LE(compiled->module.size(), 3u);
}

TEST(XlaSimplify, SelectSameBranches) {
  Fixture f;
  xla::Jit fn("sel", [](const std::vector<Array>& in) {
    const Array p = xla::gt(in[0], xla::constant(0.0));
    return std::vector<Array>{xla::select(p, in[0], in[0])};
  });
  const auto out = fn.call(f.rt, {vec({-1.0, 2.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], -1.0);
  const auto* compiled = fn.lookup({vec({-1.0, 2.0})});
  EXPECT_GE(compiled->pass_stats.simplified, 1);
}

TEST(XlaSimplify, DoesNotChangeScalarShapedResults) {
  // x(scalar param) + 0(vector)?  Not expressible; but 0 + x where x is
  // scalar and the output vector must NOT forward.  Use vector-zero:
  Fixture f;
  xla::Jit fn("shape", [](const std::vector<Array>& in) {
    // in[0] is a scalar; adding the vector constant must broadcast, and
    // simplification must not break that.
    const Array zeros = xla::constant_array(
        Literal::from_f64(Shape{3}, std::vector<double>{0.0, 0.0, 0.0}));
    return std::vector<Array>{in[0] + zeros};
  });
  const auto out = fn.call(f.rt, {Literal::scalar_f64(5.0)});
  ASSERT_EQ(out[0].num_elements(), 3);
  EXPECT_DOUBLE_EQ(out[0].f64()[2], 5.0);
}

TEST(XlaVerify, AcceptsValidModules) {
  Fixture f;
  xla::Jit fn("ok", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::sqrt(xla::abs(in[0]))};
  });
  EXPECT_NO_THROW(fn.call(f.rt, {vec({1.0, -2.0})}));
}

TEST(XlaVerify, DetectsSsaViolations) {
  xla::HloModule m;
  xla::HloInstruction p;
  p.opcode = xla::Opcode::kParam;
  p.dtype = xla::DType::kF64;
  p.shape = Shape{2};
  p.i0 = 0;
  m.instructions.push_back(p);
  xla::HloInstruction bad;
  bad.opcode = xla::Opcode::kNeg;
  bad.dtype = xla::DType::kF64;
  bad.shape = Shape{2};
  bad.operands = {5};  // forward reference
  m.instructions.push_back(bad);
  m.params = {0};
  m.roots = {1};
  const auto problems = xla::verify(m);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("SSA"), std::string::npos);
}

TEST(XlaVerify, DetectsMissingConstantPayload) {
  xla::HloModule m;
  xla::HloInstruction c;
  c.opcode = xla::Opcode::kConstant;
  c.dtype = xla::DType::kF64;
  c.shape = Shape{};
  m.instructions.push_back(c);  // no literal
  m.roots = {0};
  const auto problems = xla::verify(m);
  ASSERT_FALSE(problems.empty());
}

TEST(XlaVerify, DetectsDuplicateParams) {
  xla::HloModule m;
  for (int i = 0; i < 2; ++i) {
    xla::HloInstruction p;
    p.opcode = xla::Opcode::kParam;
    p.dtype = xla::DType::kF64;
    p.shape = Shape{};
    p.i0 = 0;  // duplicate index
    m.instructions.push_back(p);
  }
  m.params = {0, 1};
  m.roots = {0};
  const auto problems = xla::verify(m);
  ASSERT_FALSE(problems.empty());
}

TEST(XlaVerify, DetectsBadRoots) {
  xla::HloModule m;
  m.roots = {3};
  const auto problems = xla::verify(m);
  ASSERT_FALSE(problems.empty());
}
