// Tests for the mini-XLA: tracing, op semantics through jit, optimization
// passes, fusion grouping and the execution cost model.

#include "xla/jit.hpp"
#include "xla/passes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "xla/compiled.hpp"

namespace xla = toast::xla;
namespace accel = toast::accel;
using xla::Array;
using xla::DType;
using xla::Literal;
using xla::Shape;

namespace {

struct Fixture {
  accel::SimDevice device;
  accel::VirtualClock clock;
  toast::obs::Tracer tracer{&clock};
  xla::Runtime rt{device, clock, tracer};
};

Literal vec(std::initializer_list<double> values) {
  std::vector<double> v(values);
  return Literal::from_f64(Shape{static_cast<std::int64_t>(v.size())}, v);
}

Literal ivec(std::initializer_list<std::int64_t> values) {
  std::vector<std::int64_t> v(values);
  return Literal::from_i64(Shape{static_cast<std::int64_t>(v.size())}, v);
}

}  // namespace

TEST(XlaTrace, OpsOutsideJitThrow) {
  EXPECT_THROW(xla::constant(1.0), std::logic_error);
}

TEST(XlaJit, BasicArithmetic) {
  Fixture f;
  xla::Jit fn("axpy", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] * 2.0 + in[1]};
  });
  const auto out = fn.call(f.rt, {vec({1.0, 2.0, 3.0}), vec({10.0, 20.0, 30.0})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 12.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], 24.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[2], 36.0);
}

TEST(XlaJit, TranscendentalOps) {
  Fixture f;
  xla::Jit fn("trig", [](const std::vector<Array>& in) {
    const Array s = xla::sin(in[0]);
    const Array c = xla::cos(in[0]);
    return std::vector<Array>{s * s + c * c, xla::atan2(s, c)};
  });
  const auto out = fn.call(f.rt, {vec({0.3, 1.2, -2.0})});
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(out[0].f64()[i], 1.0, 1e-15);
  }
  EXPECT_NEAR(out[1].f64()[0], 0.3, 1e-12);
  EXPECT_NEAR(out[1].f64()[2], -2.0, 1e-12);
}

TEST(XlaJit, SelectComparison) {
  Fixture f;
  xla::Jit fn("relu", [](const std::vector<Array>& in) {
    return std::vector<Array>{
        xla::select(xla::gt(in[0], xla::constant(0.0)), in[0],
                    xla::constant(0.0))};
  });
  const auto out = fn.call(f.rt, {vec({-1.0, 2.0, -3.0, 4.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 0.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], 2.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[3], 4.0);
}

TEST(XlaJit, IntegerBitOps) {
  Fixture f;
  xla::Jit fn("bits", [](const std::vector<Array>& in) {
    const Array two = xla::constant_i64(2);
    return std::vector<Array>{
        xla::bitwise_or(xla::shift_left(in[0], two), xla::constant_i64(1)),
        xla::bitwise_and(in[0], xla::constant_i64(3))};
  });
  const auto out = fn.call(f.rt, {ivec({1, 2, 7})});
  EXPECT_EQ(out[0].i64()[0], 5);
  EXPECT_EQ(out[0].i64()[2], 29);
  EXPECT_EQ(out[1].i64()[2], 3);
}

TEST(XlaJit, CastAndFloor) {
  Fixture f;
  xla::Jit fn("cast", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::to_i64(xla::floor(in[0])),
                              xla::to_f64(xla::to_i64(xla::floor(in[0])))};
  });
  const auto out = fn.call(f.rt, {vec({1.7, -0.2, 3.0})});
  EXPECT_EQ(out[0].i64()[0], 1);
  EXPECT_EQ(out[0].i64()[1], -1);
  EXPECT_EQ(out[0].i64()[2], 3);
  EXPECT_DOUBLE_EQ(out[1].f64()[1], -1.0);
}

TEST(XlaJit, BroadcastAndSlice) {
  Fixture f;
  xla::Jit fn("bc", [](const std::vector<Array>& in) {
    const Array m = xla::broadcast_col(in[0], 3);   // [2,3]
    const Array r = xla::broadcast_row(in[1], 2);   // [2,3]
    const Array sum = m + r;
    return std::vector<Array>{xla::slice_col(sum, 0),
                              xla::reduce_sum(sum, 1)};
  });
  const auto out =
      fn.call(f.rt, {vec({10.0, 20.0}), vec({1.0, 2.0, 3.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 11.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], 21.0);
  EXPECT_DOUBLE_EQ(out[1].f64()[0], 36.0);  // 11+12+13
  EXPECT_DOUBLE_EQ(out[1].f64()[1], 66.0);  // 21+22+23
}

TEST(XlaJit, GatherClampsOutOfRange) {
  Fixture f;
  xla::Jit fn("g", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::gather(in[0], in[1])};
  });
  const auto out =
      fn.call(f.rt, {vec({10.0, 20.0, 30.0}), ivec({0, 2, 5, -3})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 10.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], 30.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[2], 30.0);  // clamped high
  EXPECT_DOUBLE_EQ(out[0].f64()[3], 10.0);  // clamped low
}

TEST(XlaJit, ScatterAddDropsOutOfRange) {
  Fixture f;
  xla::Jit fn("s", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::scatter_add(in[0], in[1], in[2])};
  });
  const auto out = fn.call(
      f.rt, {vec({0.0, 0.0, 0.0}), ivec({0, 1, 1, 7}), vec({1.0, 2.0, 3.0, 99.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 1.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[1], 5.0);
  EXPECT_DOUBLE_EQ(out[0].f64()[2], 0.0);
}

TEST(XlaJit, IotaAndReduce) {
  Fixture f;
  xla::Jit fn("i", [](const std::vector<Array>&) {
    const Array idx = xla::iota(10);
    return std::vector<Array>{xla::reduce_sum(xla::to_f64(idx))};
  });
  const auto out = fn.call(f.rt, {});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 45.0);
}

TEST(XlaJit, DotMatchesManualSum) {
  Fixture f;
  xla::Jit fn("d", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::dot(in[0], in[1])};
  });
  const auto out =
      fn.call(f.rt, {vec({1.0, 2.0, 3.0}), vec({4.0, 5.0, 6.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 32.0);
}

TEST(XlaJit, CacheHitsPerSignature) {
  Fixture f;
  xla::Jit fn("c", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] + 1.0};
  });
  fn.call(f.rt, {vec({1.0, 2.0})});
  EXPECT_EQ(fn.cache_size(), 1u);
  fn.call(f.rt, {vec({3.0, 4.0})});  // same shape: cache hit
  EXPECT_EQ(fn.cache_size(), 1u);
  fn.call(f.rt, {vec({1.0, 2.0, 3.0})});  // new shape: retrace
  EXPECT_EQ(fn.cache_size(), 2u);
  fn.call(f.rt, {vec({1.0, 2.0})}, "pad=7");  // static arg: retrace
  EXPECT_EQ(fn.cache_size(), 3u);
}

TEST(XlaJit, CompileChargedOncePerSignature) {
  Fixture f;
  xla::Jit fn("c", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] * 3.0};
  });
  fn.call(f.rt, {vec({1.0})});
  const double t_compile = f.tracer.seconds("jit_compile");
  EXPECT_GT(t_compile, 0.0);
  fn.call(f.rt, {vec({2.0})});
  EXPECT_DOUBLE_EQ(f.tracer.seconds("jit_compile"), t_compile);
  EXPECT_EQ(f.tracer.calls("c"), 2);
}

TEST(XlaJit, ArgumentValidation) {
  Fixture f;
  // Too few arguments: the traced body touches a parameter that does not
  // exist, which surfaces as a trace-time error (like JAX's arity errors).
  xla::Jit fn("v", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] + in.at(1)};
  });
  EXPECT_THROW(fn.call(f.rt, {vec({1.0})}), std::exception);
  // Wrong shape on a later call against a cached signature is fine (it
  // retraces); wrong shape against the *module* is caught by execute().
  xla::Jit ok("ok", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] + 1.0};
  });
  const auto out = ok.call(f.rt, {vec({1.0, 2.0})});
  EXPECT_EQ(out[0].num_elements(), 2);
}

TEST(XlaPasses, ConstantFolding) {
  Fixture f;
  xla::Jit fn("fold", [](const std::vector<Array>& in) {
    // 2*3+4 should fold to a single constant.
    const Array c = xla::constant(2.0) * xla::constant(3.0) + xla::constant(4.0);
    return std::vector<Array>{in[0] + c};
  });
  fn.call(f.rt, {vec({1.0})});
  const auto* compiled = fn.lookup({vec({1.0})});
  ASSERT_NE(compiled, nullptr);
  EXPECT_GE(compiled->pass_stats.folded, 2);
}

TEST(XlaPasses, CseMergesDuplicates) {
  Fixture f;
  xla::Jit fn("cse", [](const std::vector<Array>& in) {
    const Array a = xla::sin(in[0]);
    const Array b = xla::sin(in[0]);  // duplicate
    return std::vector<Array>{a + b};
  });
  fn.call(f.rt, {vec({0.5})});
  const auto* compiled = fn.lookup({vec({0.5})});
  ASSERT_NE(compiled, nullptr);
  EXPECT_GE(compiled->pass_stats.cse_removed, 1);
}

TEST(XlaPasses, DceRemovesUnusedWork) {
  Fixture f;
  xla::Jit fn("dce", [](const std::vector<Array>& in) {
    [[maybe_unused]] const Array dead = xla::exp(in[0]) * 7.0;
    return std::vector<Array>{in[0] + 1.0};
  });
  fn.call(f.rt, {vec({0.5})});
  const auto* compiled = fn.lookup({vec({0.5})});
  ASSERT_NE(compiled, nullptr);
  EXPECT_GE(compiled->pass_stats.dce_removed, 2);
}

TEST(XlaPasses, DotPatternRecognized) {
  Fixture f;
  xla::Jit fn("proj", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::reduce_sum(in[0] * in[1])};
  });
  const auto out =
      fn.call(f.rt, {vec({1.0, 2.0}), vec({3.0, 4.0})});
  EXPECT_DOUBLE_EQ(out[0].f64()[0], 11.0);
  const auto* compiled = fn.lookup({vec({1.0, 2.0}), vec({3.0, 4.0})});
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->pass_stats.dot_rewrites, 1);
}

TEST(XlaFusion, ElementwiseChainIsOneLaunch) {
  Fixture f;
  xla::Jit fn("chain", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::sqrt(xla::abs(in[0] * 2.0 + 1.0))};
  });
  xla::ExecutionReport report;
  fn.call_reported(f.rt, {vec({1.0, 2.0, 3.0, 4.0})}, "", report);
  int launches = 0;
  for (const auto& w : report.group_work) {
    if (w.launches > 0.0) ++launches;
  }
  EXPECT_EQ(launches, 1);
}

TEST(XlaFusion, HeavyOpsSplitLaunches) {
  Fixture f;
  // Gathers input-fuse; reduce/scatter close groups.
  xla::Jit fn("split", [](const std::vector<Array>& in) {
    const Array g = xla::gather(in[0], in[1]);      // fuses with consumers
    const Array e = g * 2.0 + 1.0;
    const Array r = xla::reduce_sum(e);             // closes launch 1
    return std::vector<Array>{r + 1.0};             // launch 2
  });
  xla::ExecutionReport report;
  fn.call_reported(f.rt, {vec({1.0, 2.0, 3.0}), ivec({0, 1, 2, 1})}, "",
                   report);
  int launches = 0;
  for (const auto& w : report.group_work) {
    if (w.launches > 0.0) ++launches;
  }
  EXPECT_EQ(launches, 2);
}

TEST(XlaFusion, FusionElidesIntermediateTraffic) {
  Fixture f;
  // One fused chain writes only the final output; the same chain split by
  // a reduce in the middle writes the intermediate too.
  xla::Jit fused("fused", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] * 2.0 + 3.0};
  });
  xla::ExecutionReport report;
  fused.call_reported(f.rt, {vec({1.0, 2.0, 3.0, 4.0})}, "", report);
  // Read one input vector (4 doubles = 32 B, constants are scalars),
  // write one output vector.
  EXPECT_DOUBLE_EQ(report.total.bytes_written, 32.0);
  EXPECT_LE(report.total.bytes_read, 32.0 + 16.0);
}

TEST(XlaScatter, SortedIndicesUseSegmentLowering) {
  Fixture f;
  xla::Jit fn("seg", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::scatter_add(in[0], in[1], in[2])};
  });
  xla::ExecutionReport report;
  fn.call_reported(
      f.rt,
      {vec({0.0, 0.0}), ivec({0, 0, 1, 1}), vec({1.0, 1.0, 1.0, 1.0})}, "",
      report);
  EXPECT_TRUE(report.segment_lowering_used);
  EXPECT_DOUBLE_EQ(report.total.atomic_ops, 0.0);
}

TEST(XlaScatter, UnsortedIndicesPayAtomics) {
  Fixture f;
  xla::Jit fn("atom", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::scatter_add(in[0], in[1], in[2])};
  });
  xla::ExecutionReport report;
  fn.call_reported(
      f.rt,
      {vec({0.0, 0.0}), ivec({1, 0, 1, 0}), vec({1.0, 1.0, 1.0, 1.0})}, "",
      report);
  EXPECT_FALSE(report.segment_lowering_used);
  EXPECT_DOUBLE_EQ(report.total.atomic_ops, 4.0);
  EXPECT_NEAR(report.total.atomic_conflict_rate, 0.5, 1e-12);
}

TEST(XlaRuntime, PreallocationClaimsDeviceMemory) {
  Fixture f;
  EXPECT_EQ(f.device.allocated_bytes(), 0u);
  f.rt.enable_preallocation(0.5);
  EXPECT_GT(f.device.allocated_bytes(),
            static_cast<std::size_t>(0.4 * f.device.spec().memory_bytes));
  f.rt.disable_preallocation();
  EXPECT_EQ(f.device.allocated_bytes(), 0u);
}

TEST(XlaRuntime, PreallocationPoolCoversTemporaries) {
  Fixture f;
  f.rt.enable_preallocation(0.75);
  const std::size_t claimed = f.device.allocated_bytes();
  EXPECT_EQ(claimed, f.rt.pool_bytes());
  // Enabling twice is a no-op, not a second claim.
  f.rt.enable_preallocation(0.75);
  EXPECT_EQ(f.device.allocated_bytes(), claimed);
  // With the pool claimed, call temporaries come out of it: the device
  // allocator balance must not move.
  xla::Jit fn("pool", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::sqrt(in[0] * 2.0 + 1.0)};
  });
  fn.call(f.rt, {vec({1.0, 2.0, 3.0, 4.0})});
  EXPECT_EQ(f.device.allocated_bytes(), claimed);
  f.rt.disable_preallocation();
  EXPECT_EQ(f.device.allocated_bytes(), 0u);
  EXPECT_EQ(f.rt.pool_bytes(), 0u);
}

namespace {

/// Two independent reduce chains: four fusion groups, two dependency
/// edges, no edge between the chains.
xla::Jit independent_chains() {
  return xla::Jit("chains", [](const std::vector<Array>& in) {
    const Array r0 = xla::reduce_sum(in[0] * 2.0);
    const Array r1 = xla::reduce_sum(in[1] * 3.0);
    return std::vector<Array>{r0 + 1.0, r1 + 1.0};
  });
}

}  // namespace

TEST(XlaStreams, GroupDepsExposeTheFusionDag) {
  Fixture f;
  xla::Jit fn = independent_chains();
  xla::ExecutionReport report;
  fn.call_reported(f.rt, {vec({1.0, 2.0}), vec({3.0, 4.0})}, "", report);
  ASSERT_EQ(report.group_deps.size(), report.group_work.size());
  // The two reduce chains read only parameters (independent roots); the
  // fused +1.0 epilogue group reads both of their results.  Edges point
  // backwards, sorted and deduplicated.
  std::vector<int> roots;
  std::vector<int> dependents;
  for (std::size_t g = 0; g < report.group_deps.size(); ++g) {
    if (report.group_work[g].launches <= 0.0) {
      continue;
    }
    const auto& deps = report.group_deps[g];
    EXPECT_TRUE(std::is_sorted(deps.begin(), deps.end()));
    for (const int d : deps) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, static_cast<int>(g));
    }
    (deps.empty() ? roots : dependents).push_back(static_cast<int>(g));
  }
  EXPECT_EQ(roots.size(), 2u);
  ASSERT_EQ(dependents.size(), 1u);
  EXPECT_EQ(report.group_deps[static_cast<std::size_t>(dependents[0])],
            roots);
}

TEST(XlaStreams, OneStreamIsDeterministicAndMultiStreamNeverSlower) {
  // Elapsed time of a cached call (compile charged on the first one).
  const auto elapsed = [](int streams) {
    Fixture f;
    f.rt.set_streams(streams);
    xla::Jit fn = independent_chains();
    const std::vector<Literal> args = {vec({1.0, 2.0}), vec({3.0, 4.0})};
    fn.call(f.rt, args);
    const double t0 = f.clock.now();
    fn.call(f.rt, args);
    return f.clock.now() - t0;
  };
  const double serial = elapsed(1);
  // 1-stream runs are bit-for-bit repeatable (the seed timeline).
  EXPECT_EQ(serial, elapsed(1));
  // Independent chains on two streams pipeline their launch latency.
  const double overlapped = elapsed(2);
  EXPECT_LT(overlapped, serial);
  // More streams than independent work: no further change, never slower.
  EXPECT_LE(elapsed(4), serial);
}

TEST(XlaStreams, StreamCountIsClampedToOne) {
  Fixture f;
  EXPECT_EQ(f.rt.streams(), 1);
  f.rt.set_streams(0);
  EXPECT_EQ(f.rt.streams(), 1);
  f.rt.set_streams(-3);
  EXPECT_EQ(f.rt.streams(), 1);
  f.rt.set_streams(4);
  EXPECT_EQ(f.rt.streams(), 4);
}

TEST(XlaRuntime, DispatchOverheadCharged) {
  Fixture f;
  xla::Jit fn("o", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] + 1.0};
  });
  fn.call(f.rt, {vec({1.0})});
  const double after_compile = f.tracer.seconds("o");
  EXPECT_GE(after_compile, f.rt.dispatch_overhead());
}

TEST(XlaRuntime, WorkScaleScalesKernelTime) {
  Fixture a;
  Fixture b;
  b.rt.set_work_scale(1e6);
  xla::Jit fn("w", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::sqrt(in[0]) * 2.0};
  });
  std::vector<double> big(4096, 2.0);
  const Literal arg = Literal::from_f64(Shape{4096}, big);
  fn.call(a.rt, {arg});
  fn.call(b.rt, {arg});
  EXPECT_GT(b.tracer.seconds("w"), a.tracer.seconds("w"));
}

TEST(XlaLiteral, TypedAccessAndValidation) {
  const Literal l = vec({1.0, 2.0});
  EXPECT_EQ(l.byte_size(), 16u);
  EXPECT_DOUBLE_EQ(l.as_double(1), 2.0);
  EXPECT_THROW(Literal::from_f64(Shape{3}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(Shape({1, 2, 3}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fused-loop executor (xla/compiled.hpp): the interpreter is the oracle.
// ---------------------------------------------------------------------------

namespace {

void expect_literal_bits(const Literal& a, const Literal& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_TRUE(a.shape() == b.shape());
  switch (a.dtype()) {
    case DType::kF64:
      ASSERT_EQ(std::memcmp(a.f64().data(), b.f64().data(), a.byte_size()),
                0);
      break;
    case DType::kI64:
      ASSERT_EQ(std::memcmp(a.i64().data(), b.i64().data(), a.byte_size()),
                0);
      break;
    case DType::kPred:
      ASSERT_EQ(std::memcmp(a.pred().data(), b.pred().data(), a.byte_size()),
                0);
      break;
  }
}

void expect_report_equal(const xla::ExecutionReport& a,
                         const xla::ExecutionReport& b) {
  EXPECT_EQ(a.peak_temp_bytes, b.peak_temp_bytes);
  EXPECT_EQ(a.segment_lowering_used, b.segment_lowering_used);
  EXPECT_EQ(a.group_heavy, b.group_heavy);
  EXPECT_EQ(a.group_deps, b.group_deps);
  ASSERT_EQ(a.group_work.size(), b.group_work.size());
  const auto expect_work_equal = [](const accel::WorkEstimate& x,
                                    const accel::WorkEstimate& y) {
    EXPECT_EQ(x.flops, y.flops);
    EXPECT_EQ(x.bytes_read, y.bytes_read);
    EXPECT_EQ(x.bytes_written, y.bytes_written);
    EXPECT_EQ(x.launches, y.launches);
    EXPECT_EQ(x.parallel_items, y.parallel_items);
    EXPECT_EQ(x.divergence, y.divergence);
    EXPECT_EQ(x.atomic_ops, y.atomic_ops);
    EXPECT_EQ(x.atomic_conflict_rate, y.atomic_conflict_rate);
    EXPECT_EQ(x.cpu_vector_eff, y.cpu_vector_eff);
  };
  for (std::size_t g = 0; g < a.group_work.size(); ++g) {
    expect_work_equal(a.group_work[g], b.group_work[g]);
  }
  expect_work_equal(a.total, b.total);
}

/// Run the module both ways and require bitwise-identical products and
/// bitwise-identical ExecutionReports.
void expect_bitwise_parity(xla::Jit& fn, const std::vector<Literal>& args) {
  Fixture f;
  fn.call(f.rt, args);
  const auto* compiled = fn.lookup(args);
  ASSERT_NE(compiled, nullptr);
  xla::ExecutionReport ri;
  xla::ExecutionReport rc;
  const auto oi = xla::execute(*compiled, args, &ri);
  const auto oc = xla::execute_compiled(*compiled, args, &rc);
  ASSERT_EQ(oi.size(), oc.size());
  for (std::size_t k = 0; k < oi.size(); ++k) {
    expect_literal_bits(oi[k], oc[k]);
  }
  expect_report_equal(ri, rc);
}

}  // namespace

TEST(XlaCompiled, ParityElementwiseChain) {
  xla::Jit fn("chain", [](const std::vector<Array>& in) {
    const Array t = xla::sqrt(xla::abs(in[0] * 2.0 + 1.0));
    return std::vector<Array>{xla::sin(t) * xla::cos(t) + xla::tanh(t),
                              xla::atan2(t, in[0]) - xla::exp(-t)};
  });
  expect_bitwise_parity(fn, {vec({0.3, -1.7, 2.9, 4.2, -0.01})});
}

TEST(XlaCompiled, ParityBroadcastSliceReduce) {
  xla::Jit fn("bc", [](const std::vector<Array>& in) {
    const Array m = xla::broadcast_col(in[0], 3) + xla::broadcast_row(in[1], 2);
    return std::vector<Array>{xla::slice_col(m, 1), xla::reduce_sum(m, 1),
                              xla::reduce_sum(m), xla::reduce_max(m)};
  });
  expect_bitwise_parity(fn, {vec({10.0, 20.0}), vec({1.0, 2.0, 3.0})});
}

TEST(XlaCompiled, ParityGatherScatter) {
  xla::Jit fn("gs", [](const std::vector<Array>& in) {
    const Array g = xla::gather(in[0], in[1]) * 2.0;
    return std::vector<Array>{xla::scatter_add(in[0], in[1], g),
                              xla::scatter_set(in[0], in[1], g)};
  });
  // Unsorted indices with out-of-range lanes: atomics path + dropped lanes.
  expect_bitwise_parity(
      fn, {vec({1.0, 2.0, 3.0, 4.0}), ivec({2, 0, 2, 9, -1, 1})});
  // Sorted indices: segment-reduction path.
  expect_bitwise_parity(
      fn, {vec({1.0, 2.0, 3.0, 4.0}), ivec({0, 0, 1, 2, 3, 3})});
}

TEST(XlaCompiled, ParityIntegerAndPredOps) {
  xla::Jit fn("bits", [](const std::vector<Array>& in) {
    const Array two = xla::constant_i64(2);
    const Array p = xla::lt(in[0], xla::constant_i64(5));
    const Array q = xla::ge(in[0], xla::constant_i64(0));
    return std::vector<Array>{
        xla::bitwise_xor(xla::shift_left(in[0], two),
                         xla::shift_right(in[0], xla::constant_i64(1))),
        xla::select(xla::logical_and(p, xla::logical_not(q)),
                    in[0] + xla::constant_i64(100), xla::mod(in[0], two)),
        xla::to_f64(xla::logical_or(p, q))};
  });
  expect_bitwise_parity(fn, {ivec({1, -3, 7, 0, 12, -8})});
}

TEST(XlaCompiled, ParityIotaCastClampSign) {
  xla::Jit fn("misc", [](const std::vector<Array>& in) {
    const Array i = xla::iota(6);
    const Array f = xla::to_f64(i) - 2.5;
    return std::vector<Array>{
        xla::clamp(in[0], xla::constant(-1.0), xla::constant(1.0)),
        xla::sign(f) * xla::floor(xla::abs(f)),
        xla::to_i64(in[0] * 10.0) + i};
  });
  expect_bitwise_parity(fn, {vec({-2.0, -0.5, 0.0, 0.3, 1.7, 9.0})});
}

TEST(XlaCompiled, ParityDotAndScalarBroadcast) {
  xla::Jit fn("dotty", [](const std::vector<Array>& in) {
    // reduce_sum(a*b) is rewritten to dot; the scalar result then
    // broadcasts into the next elementwise group.
    const Array d = xla::reduce_sum(in[0] * in[1]);
    return std::vector<Array>{in[0] * d + xla::maximum(in[1], in[0]),
                              xla::minimum(in[0], in[1]) / d};
  });
  expect_bitwise_parity(
      fn, {vec({1.0, 2.0, 3.0, 4.0}), vec({0.5, -0.25, 8.0, 1.0 / 3.0})});
}

TEST(XlaCompiled, ParityLargeDomainCrossesBlocks) {
  // > 1024 elements so the blocked loop takes more than one pass, and an
  // odd size so the last block is partial.
  xla::Jit fn("big", [](const std::vector<Array>& in) {
    const Array t = in[0] * 1.0000001 + 0.5;
    return std::vector<Array>{xla::sqrt(xla::abs(t)),
                              xla::reduce_sum(t * t),
                              xla::reduce_max(t)};
  });
  std::vector<double> big(3000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = std::sin(static_cast<double>(i) * 0.7) * 100.0;
  }
  expect_bitwise_parity(
      fn, {Literal::from_f64(Shape{static_cast<std::int64_t>(big.size())},
                             big)});
}

TEST(XlaCompiled, ParamOnlyAndConstantOnlyRoots) {
  // Roots that are leaves (a parameter, a folded constant) produce no
  // loops at all; the executable just forwards the materialized values.
  xla::Jit fn("leaves", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0], xla::constant(2.0) * xla::constant(3.0)};
  });
  expect_bitwise_parity(fn, {vec({1.0, 2.0, 3.0})});
}

TEST(XlaCompiled, SingleOpGroup) {
  xla::Jit fn("one", [](const std::vector<Array>& in) {
    return std::vector<Array>{in[0] + in[1]};
  });
  expect_bitwise_parity(fn, {vec({1.0, 2.0}), vec({3.0, 4.0})});
}

TEST(XlaCompiled, FusedStatsExposedAndCached) {
  Fixture f;
  xla::Jit fn("stats", [](const std::vector<Array>& in) {
    return std::vector<Array>{xla::reduce_sum(xla::sqrt(in[0]) * 2.0 + 1.0)};
  });
  const std::vector<Literal> args = {vec({1.0, 4.0, 9.0})};
  fn.call(f.rt, args);
  const auto* compiled = fn.lookup(args);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->fused, nullptr);  // lowering is lazy
  xla::execute_compiled(*compiled, args);
  ASSERT_NE(compiled->fused, nullptr);
  const auto exe = compiled->fused;
  EXPECT_GE(exe->loop_count(), 1u);
  EXPECT_GE(exe->step_count(), exe->loop_count());
  EXPECT_GE(exe->materialized_count(), exe->loop_count());
  // The lowering runs once per Compiled; later calls reuse it.
  xla::execute_compiled(*compiled, args);
  EXPECT_EQ(compiled->fused, exe);
}

TEST(XlaCompiled, DtypeMixedModuleRaisesLoweringError) {
  // Hand-built module (the tracer cannot produce this): f64 + i64.  The
  // interpreter would die on it too; the fused lowering must reject it
  // with LoweringError so the Jit knows to fall back.
  xla::HloModule m;
  m.name = "mixed";
  xla::HloInstruction p0;
  p0.opcode = xla::Opcode::kParam;
  p0.dtype = DType::kF64;
  p0.shape = Shape{2};
  p0.i0 = 0;
  xla::HloInstruction p1;
  p1.opcode = xla::Opcode::kParam;
  p1.dtype = DType::kI64;
  p1.shape = Shape{2};
  p1.i0 = 1;
  xla::HloInstruction add;
  add.opcode = xla::Opcode::kAdd;
  add.dtype = DType::kF64;
  add.shape = Shape{2};
  add.operands = {0, 1};
  m.instructions = {p0, p1, add};
  m.params = {0, 1};
  m.roots = {2};
  const xla::Compiled compiled = xla::compile(std::move(m));
  const std::vector<Literal> args = {vec({1.0, 2.0}), ivec({3, 4})};
  EXPECT_THROW(xla::execute_compiled(compiled, args), xla::LoweringError);
  // Rejection must not poison the cache slot with a bad executable.
  EXPECT_EQ(compiled.fused, nullptr);
}

TEST(XlaCompiled, JitCompiledModeMatchesInterpretedTimeline) {
  // End to end through the Jit: same products, same virtual clock, same
  // tracer totals — the executor mode must be invisible to the model.
  const auto run = [](xla::ExecMode mode) {
    Fixture f;
    f.rt.set_executor(mode);
    xla::Jit fn("e2e", [](const std::vector<Array>& in) {
      const Array g = xla::gather(in[0], in[1]) * 2.0 + 1.0;
      const Array r = xla::reduce_sum(g);
      return std::vector<Array>{xla::scatter_add(in[0], in[1], g + r)};
    });
    const std::vector<Literal> args = {vec({1.0, 2.0, 3.0}),
                                       ivec({2, 0, 1, 5})};
    auto out = fn.call(f.rt, args);
    out = fn.call(f.rt, args);  // cached-call timing too
    return std::make_tuple(std::move(out), f.clock.now(),
                           f.tracer.seconds("e2e"), f.tracer.calls("e2e"));
  };
  const auto [oi, ti, si, ci] = run(xla::ExecMode::kInterpreted);
  const auto [oc, tc, sc, cc] = run(xla::ExecMode::kCompiled);
  ASSERT_EQ(oi.size(), oc.size());
  for (std::size_t k = 0; k < oi.size(); ++k) {
    expect_literal_bits(oi[k], oc[k]);
  }
  EXPECT_EQ(ti, tc);
  EXPECT_EQ(si, sc);
  EXPECT_EQ(ci, cc);
}
