// Tests of the simulated MPI layer and the job-level benchmark model,
// including the OOM pattern of Figure 4 and the qualitative orderings the
// reproduced figures depend on.

#include <gtest/gtest.h>

#include "mpisim/comm.hpp"
#include "mpisim/job.hpp"

using namespace toast;
using core::Backend;
using mpisim::JobConfig;
using mpisim::run_benchmark_job;

namespace {

JobConfig medium_cfg(Backend b, int procs) {
  auto p = bench_model::medium_problem();
  p.procs_per_node = procs;
  return JobConfig{p, b};
}

}  // namespace

TEST(CommModel, AllreduceScaling) {
  mpisim::CommModel comm;
  EXPECT_DOUBLE_EQ(comm.allreduce_seconds(1e6, 1), 0.0);
  const double t2 = comm.allreduce_seconds(1e6, 2);
  const double t16 = comm.allreduce_seconds(1e6, 16);
  EXPECT_GT(t2, 0.0);
  EXPECT_GT(t16, t2);
  // Bandwidth term saturates at 2x bytes/bw for large rank counts.
  const double t512 = comm.allreduce_seconds(1e9, 512);
  EXPECT_NEAR(t512, 2.0 * 1e9 / 25.0e9, 0.01);
}

TEST(CommModel, BcastLogScaling) {
  mpisim::CommModel comm;
  const double t2 = comm.bcast_seconds(1e6, 2);
  const double t8 = comm.bcast_seconds(1e6, 8);
  EXPECT_NEAR(t8 / t2, 3.0, 0.01);  // log2(8)/log2(2)
}

TEST(CommModel, ClosedFormGoldenValues) {
  // slingshot_spec: 25 GB/s per NIC, 2 us latency.
  mpisim::CommModel comm;
  // allreduce: 2(n-1) rounds of latency + (bytes/n)/bandwidth.
  EXPECT_NEAR(comm.allreduce_seconds(1e6, 8),
              2.0 * 7.0 / 8.0 * 1e6 / 25.0e9 + 14.0 * 2.0e-6, 1e-12);
  // bcast: ceil(log2 n) rounds of latency + bytes/bandwidth; n=5 pays
  // the same 3 rounds as n=8.
  const double bcast_round = 2.0e-6 + 1e6 / 25.0e9;
  EXPECT_NEAR(comm.bcast_seconds(1e6, 8), 3.0 * bcast_round, 1e-12);
  EXPECT_NEAR(comm.bcast_seconds(1e6, 5), 3.0 * bcast_round, 1e-12);
  // gather: n-1 serial arrivals at the root.
  EXPECT_NEAR(comm.gather_seconds(1e6, 8), 7.0 * bcast_round, 1e-12);
}

TEST(CommModel, BoundariesAreExactlyZero) {
  mpisim::CommModel comm;
  EXPECT_EQ(comm.allreduce_seconds(1e6, 1), 0.0);
  EXPECT_EQ(comm.allreduce_seconds(1e6, 0), 0.0);
  EXPECT_EQ(comm.allreduce_seconds(0.0, 8), 0.0);
  EXPECT_EQ(comm.allreduce_seconds(-1.0, 8), 0.0);
  EXPECT_EQ(comm.bcast_seconds(1e6, 1), 0.0);
  EXPECT_EQ(comm.bcast_seconds(0.0, 8), 0.0);
  EXPECT_EQ(comm.bcast_seconds(-5.0, 8), 0.0);
  EXPECT_EQ(comm.gather_seconds(1e6, 1), 0.0);
  EXPECT_EQ(comm.gather_seconds(0.0, 8), 0.0);
  EXPECT_EQ(comm.gather_seconds(-5.0, 8), 0.0);
}

TEST(LocalComm, AllreduceSumValues) {
  const mpisim::LocalComm comm(3);
  const auto out =
      comm.allreduce_sum({{1.0, 2.0}, {10.0, 20.0}, {100.0, 200.0}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 111.0);
  EXPECT_DOUBLE_EQ(out[1], 222.0);
  EXPECT_THROW(comm.allreduce_sum({{1.0}, {1.0, 2.0}, {3.0}}),
               std::invalid_argument);
}

TEST(LocalComm, AllreduceSumValidatesWorldSize) {
  const mpisim::LocalComm comm(3);
  EXPECT_THROW(comm.allreduce_sum({{1.0}, {2.0}}), std::invalid_argument);
  EXPECT_THROW(comm.allreduce_sum({}), std::invalid_argument);
  EXPECT_THROW(
      comm.allreduce_sum({{1.0}, {2.0}, {3.0}, {4.0}}),
      std::invalid_argument);
}

TEST(JobMemory, Figure4OomPattern) {
  // JAX cannot run the medium problem with 1 or 64 processes; the OpenMP
  // port runs with 1 but not 64; the CPU baseline runs everywhere.
  for (const int procs : {1, 2, 4, 8, 16, 32, 64}) {
    const auto jax = mpisim::estimate_memory(medium_cfg(Backend::kJax, procs));
    const auto omp =
        mpisim::estimate_memory(medium_cfg(Backend::kOmpTarget, procs));
    const auto cpu = mpisim::estimate_memory(medium_cfg(Backend::kCpu, procs));

    const bool jax_oom = jax.device_oom || jax.host_oom;
    const bool omp_oom = omp.device_oom || omp.host_oom;
    const bool cpu_oom = cpu.host_oom;
    EXPECT_EQ(jax_oom, procs == 1 || procs == 64) << "jax procs=" << procs;
    EXPECT_EQ(omp_oom, procs == 64) << "omp procs=" << procs;
    EXPECT_FALSE(cpu_oom) << "cpu procs=" << procs;
  }
}

TEST(JobMemory, JaxUsesMoreDeviceMemoryThanOmp) {
  const auto jax = mpisim::estimate_memory(medium_cfg(Backend::kJax, 16));
  const auto omp =
      mpisim::estimate_memory(medium_cfg(Backend::kOmpTarget, 16));
  EXPECT_GT(jax.device_bytes_per_proc, omp.device_bytes_per_proc);
}

TEST(JobModel, GpuPortsBeatCpuAtDefaultConfig) {
  const auto cpu = run_benchmark_job(medium_cfg(Backend::kCpu, 16));
  const auto jax = run_benchmark_job(medium_cfg(Backend::kJax, 16));
  const auto omp = run_benchmark_job(medium_cfg(Backend::kOmpTarget, 16));
  ASSERT_FALSE(cpu.oom);
  ASSERT_FALSE(jax.oom);
  ASSERT_FALSE(omp.oom);
  // Paper: jax 2.3x, omp 2.7x at 16 procs; require the right ordering and
  // a generous band around the values.
  const double s_jax = cpu.runtime / jax.runtime;
  const double s_omp = cpu.runtime / omp.runtime;
  EXPECT_GT(s_jax, 1.6);
  EXPECT_LT(s_jax, 3.2);
  EXPECT_GT(s_omp, 2.0);
  EXPECT_LT(s_omp, 3.6);
  EXPECT_GT(s_omp, s_jax);  // omp-target consistently faster (§4.1)
  // ...by roughly 10-35%.
  EXPECT_GT(jax.runtime / omp.runtime, 1.05);
  EXPECT_LT(jax.runtime / omp.runtime, 1.45);
}

TEST(JobModel, CpuRuntimeFallsWithProcessCount) {
  double prev = 1e30;
  for (const int procs : {1, 4, 16, 64}) {
    const auto r = run_benchmark_job(medium_cfg(Backend::kCpu, procs));
    ASSERT_FALSE(r.oom);
    EXPECT_LT(r.runtime, prev) << "procs=" << procs;
    prev = r.runtime;
  }
}

TEST(JobModel, OversubscriptionHelps) {
  // Going from 1 to 2 processes per GPU (4 -> 8 procs) must improve the
  // GPU ports more than the CPU baseline (paper §4.1).
  const auto cpu4 = run_benchmark_job(medium_cfg(Backend::kCpu, 4));
  const auto cpu8 = run_benchmark_job(medium_cfg(Backend::kCpu, 8));
  const auto omp4 = run_benchmark_job(medium_cfg(Backend::kOmpTarget, 4));
  const auto omp8 = run_benchmark_job(medium_cfg(Backend::kOmpTarget, 8));
  const double cpu_gain = cpu4.runtime / cpu8.runtime;
  const double omp_gain = omp4.runtime / omp8.runtime;
  EXPECT_GT(omp_gain, cpu_gain);
}

TEST(JobModel, MpsOffCapsOversubscription) {
  auto on = medium_cfg(Backend::kOmpTarget, 16);
  auto off = medium_cfg(Backend::kOmpTarget, 16);
  off.schedule.device.mps = false;
  const auto r_on = run_benchmark_job(on);
  const auto r_off = run_benchmark_job(off);
  // Without MPS, 16 procs perform like ~4 (one per device): much slower.
  EXPECT_GT(r_off.runtime, 1.5 * r_on.runtime);
  // With one process per GPU, MPS is irrelevant.
  auto on4 = medium_cfg(Backend::kOmpTarget, 4);
  auto off4 = medium_cfg(Backend::kOmpTarget, 4);
  off4.schedule.device.mps = false;
  EXPECT_NEAR(run_benchmark_job(on4).runtime,
              run_benchmark_job(off4).runtime, 1e-9);
}

TEST(JobModel, StagingBeatsNaive) {
  auto staged = medium_cfg(Backend::kOmpTarget, 16);
  auto naive = medium_cfg(Backend::kOmpTarget, 16);
  naive.schedule.staging.mode = core::Pipeline::Staging::kNaive;
  const auto a = run_benchmark_job(staged);
  const auto b = run_benchmark_job(naive);
  EXPECT_GT(b.runtime, 1.2 * a.runtime);
  EXPECT_GT(b.transfer_seconds, 3.0 * a.transfer_seconds);
}

TEST(JobModel, LargeProblemMatchesPaperBand) {
  auto p = bench_model::large_problem();
  const auto cpu = run_benchmark_job({p, Backend::kCpu});
  const auto jax = run_benchmark_job({p, Backend::kJax});
  const auto omp = run_benchmark_job({p, Backend::kOmpTarget});
  ASSERT_FALSE(jax.oom);
  ASSERT_FALSE(omp.oom);
  // Paper: 2.28x and 2.58x.
  EXPECT_NEAR(cpu.runtime / jax.runtime, 2.28, 0.5);
  EXPECT_NEAR(cpu.runtime / omp.runtime, 2.58, 0.5);
}

TEST(JobModel, JaxCpuBackendMuchSlower) {
  auto p = bench_model::large_problem();
  const auto cpu = run_benchmark_job({p, Backend::kCpu});
  const auto jax_cpu = run_benchmark_job({p, Backend::kJaxCpu});
  // Paper: 7.4x slower; require "several times slower".
  EXPECT_GT(jax_cpu.runtime, 3.0 * cpu.runtime);
  EXPECT_LT(jax_cpu.runtime, 12.0 * cpu.runtime);
}

TEST(JobModel, CommIncludedAndSmall) {
  const auto r = run_benchmark_job(medium_cfg(Backend::kOmpTarget, 16));
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_LT(r.comm_seconds, 0.05 * r.runtime);
}

TEST(JobModel, NetworkSpecPlumbsThroughJobConfig) {
  auto fast = medium_cfg(Backend::kCpu, 16);
  auto slow = medium_cfg(Backend::kCpu, 16);
  slow.network.bandwidth /= 10.0;
  slow.network.latency *= 10.0;
  const auto rf = run_benchmark_job(fast);
  const auto rs = run_benchmark_job(slow);
  EXPECT_GT(rs.comm_seconds, 5.0 * rf.comm_seconds);
  // The default spec is the slingshot model the seed hard-coded.
  mpisim::CommModel seed_model;
  const double map_bytes = 12.0 * 512.0 * 512.0 * 3.0 * 8.0;
  EXPECT_EQ(rf.comm_seconds,
            seed_model.allreduce_seconds(map_bytes,
                                         fast.problem.total_procs()));
}

TEST(JobModel, EngineCommModeIsDeterministicAndTraced) {
  auto cfg = medium_cfg(Backend::kCpu, 16);
  cfg.schedule.comm.mode = mpisim::CommMode::kEngine;
  const auto a = run_benchmark_job(cfg);
  const auto b = run_benchmark_job(cfg);
  ASSERT_FALSE(a.oom);
  EXPECT_GT(a.comm_seconds, 0.0);
  // Bitwise deterministic for a fixed seed/config.
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.runtime, b.runtime);
  // Per-step chunk spans land on NIC lanes above the compute streams.
  int lane_spans = 0;
  for (const auto& s : a.rank_spans) {
    if (s.category == "comm" && s.stream >= 16) {
      ++lane_spans;
    }
  }
  EXPECT_GT(lane_spans, 0);
}
