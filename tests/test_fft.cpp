// Unit and property tests for the FFT substrate.

#include "fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

namespace fft = toast::fft;
using cd = std::complex<double>;

namespace {

// O(n^2) reference DFT.
std::vector<cd> naive_dft(const std::vector<cd>& x) {
  const std::size_t n = x.size();
  std::vector<cd> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cd acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += x[j] * cd(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<cd> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<cd> x(n);
  for (auto& v : x) v = cd(dist(gen), dist(gen));
  return x;
}

}  // namespace

TEST(Fft, NextPow2) {
  EXPECT_EQ(fft::next_pow2(1), 1u);
  EXPECT_EQ(fft::next_pow2(2), 2u);
  EXPECT_EQ(fft::next_pow2(3), 4u);
  EXPECT_EQ(fft::next_pow2(1000), 1024u);
  EXPECT_EQ(fft::next_pow2(1024), 1024u);
  EXPECT_EQ(fft::next_pow2(1025), 2048u);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(fft::is_pow2(1));
  EXPECT_TRUE(fft::is_pow2(64));
  EXPECT_FALSE(fft::is_pow2(0));
  EXPECT_FALSE(fft::is_pow2(12));
}

TEST(Fft, RejectsNonPow2) {
  std::vector<cd> x(12);
  EXPECT_THROW(fft::fft_inplace(x), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cd> x(8, cd(0.0, 0.0));
  x[0] = cd(1.0, 0.0);
  fft::fft_inplace(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-14);
    EXPECT_NEAR(v.imag(), 0.0, 1e-14);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  std::vector<cd> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k0 * i) /
                       static_cast<double>(n);
    x[i] = cd(std::cos(ang), std::sin(ang));
  }
  fft::fft_inplace(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == k0) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expected, 1e-10) << "bin " << k;
  }
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, static_cast<unsigned>(n));
  const auto ref = naive_dft(x);
  fft::fft_inplace(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k] - ref[k]), 0.0, 1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftSizes, RoundTripIdentity) {
  const std::size_t n = GetParam();
  const auto orig = random_signal(n, static_cast<unsigned>(n) + 100);
  auto x = orig;
  fft::fft_inplace(x);
  fft::ifft_inplace(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-12 * static_cast<double>(n));
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, static_cast<unsigned>(n) + 200);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft::fft_inplace(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(n);
  EXPECT_NEAR(time_energy, freq_energy, 1e-9 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           512));

TEST(Fft, LinearityProperty) {
  const std::size_t n = 128;
  auto x = random_signal(n, 1);
  auto y = random_signal(n, 2);
  const cd alpha(0.7, -0.2), beta(-1.3, 0.4);
  std::vector<cd> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * x[i] + beta * y[i];
  fft::fft_inplace(combo);
  fft::fft_inplace(x);
  fft::fft_inplace(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(combo[i] - (alpha * x[i] + beta * y[i])), 0.0, 1e-9);
  }
}

TEST(Fft, RealRoundTrip) {
  const std::size_t n = 256;
  std::mt19937 gen(33);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(gen);
  const auto spec = fft::rfft(x);
  EXPECT_EQ(spec.size(), n / 2 + 1);
  const auto back = fft::irfft(spec, n);
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-12);
  }
}

TEST(Fft, RealSpectrumDcAndNyquistAreReal) {
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.1 * i) + 2.0;
  const auto spec = fft::rfft(x);
  EXPECT_NEAR(spec.front().imag(), 0.0, 1e-12);
  EXPECT_NEAR(spec.back().imag(), 0.0, 1e-12);
}

TEST(Fft, IrfftValidatesSizes) {
  std::vector<cd> spec(9);
  EXPECT_THROW(fft::irfft(spec, 12), std::invalid_argument);
  EXPECT_THROW(fft::irfft(spec, 32), std::invalid_argument);
  EXPECT_NO_THROW(fft::irfft(spec, 16));
}
