// Tests of the deterministic fault-injection + recovery layer: plan
// parsing, the counter-based RNG's determinism, retry/backoff accounting
// on the virtual clock, the structured OOM error, and the end-to-end
// recovery paths (CPU fallback, pool shrink, checkpoint restore, rank
// replay) through the mpisim job and the destriper.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "fault/fault.hpp"
#include "mpisim/job.hpp"
#include "obs/trace.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"
#include "solver/destriper.hpp"

namespace core = toast::core;
namespace fault = toast::fault;
namespace sim = toast::sim;
using toast::accel::DeviceOomError;
using toast::accel::SimDevice;
using toast::accel::VirtualClock;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultRule;

namespace {

FaultPlan one_rule(FaultKind kind, double probability,
                   const std::string& site = "", int max_fires = -1) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rules = {FaultRule{kind, site, probability, max_fires}};
  return plan;
}

// --- plan parsing ----------------------------------------------------------

TEST(FaultPlan, ParsesFullDocument) {
  const FaultPlan plan = FaultPlan::parse(R"({
    "schema": "toastcase-fault-plan-v1",
    "seed": 42,
    "retry": {"max_attempts": 5, "backoff_seconds": 1e-3,
              "backoff_multiplier": 3.0, "failed_fraction": 0.25},
    "rules": [
      {"kind": "transfer", "site": "update", "probability": 0.5},
      {"kind": "straggler", "probability": 0.1, "factor": 4.0},
      {"kind": "oom", "probability": 1.0, "pressure_threshold": 0.8,
       "max_fires": 2}
    ]
  })");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.retry.max_attempts, 5);
  EXPECT_DOUBLE_EQ(plan.retry.backoff_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(plan.retry.backoff_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(plan.retry.failed_fraction, 0.25);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kTransfer);
  EXPECT_EQ(plan.rules[0].site, "update");
  EXPECT_DOUBLE_EQ(plan.rules[1].factor, 4.0);
  EXPECT_EQ(plan.rules[2].max_fires, 2);
  EXPECT_DOUBLE_EQ(plan.rules[2].pressure_threshold, 0.8);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, DefaultsApplyWhenOmitted) {
  const FaultPlan plan = FaultPlan::parse(
      R"({"schema": "toastcase-fault-plan-v1",
          "rules": [{"kind": "launch", "probability": 1.0}]})");
  EXPECT_EQ(plan.seed, 0u);
  EXPECT_EQ(plan.retry.max_attempts, 3);
  EXPECT_DOUBLE_EQ(plan.retry.failed_fraction, 0.5);
  EXPECT_EQ(plan.rules[0].max_fires, -1);
}

TEST(FaultPlan, RejectsBadDocuments) {
  EXPECT_THROW(FaultPlan::parse("[]"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse(R"({"schema": "nope"})"),
               std::runtime_error);
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema": "toastcase-fault-plan-v1",
                           "rules": [{"kind": "gremlin"}]})"),
      std::runtime_error);
}

TEST(FaultPlan, RejectsUnknownKeys) {
  // A typo must be an error, not a silently applied default.
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema": "toastcase-fault-plan-v1",
                           "sede": 7})"),
      std::runtime_error);
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema": "toastcase-fault-plan-v1",
                           "retry": {"max_attempt": 5}})"),
      std::runtime_error);
  EXPECT_THROW(
      FaultPlan::parse(R"({"schema": "toastcase-fault-plan-v1",
                           "rules": [{"kind": "launch", "probability": 1.0,
                                      "max_fire": 2}]})"),
      std::runtime_error);
}

// --- disarmed injector -----------------------------------------------------

TEST(FaultInjector, EmptyPlanIsCompletelyInert) {
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  FaultInjector inj(FaultPlan{}, &clock, &tracer);

  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.attempt_sync(FaultKind::kTransfer, "anywhere", 1.0), 0);
  const fault::ProbeResult pr = inj.probe(FaultKind::kLaunch, "x", 1.0);
  EXPECT_EQ(pr.failures, 0);
  EXPECT_FALSE(pr.persistent);
  EXPECT_DOUBLE_EQ(inj.straggler_factor("x"), 1.0);
  EXPECT_FALSE(inj.rank_failure("x"));
  EXPECT_FALSE(inj.oom_should_fire("x", 1, 0, 100));
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(inj.counters().empty());
}

// --- determinism -----------------------------------------------------------

TEST(FaultInjector, SameSeedSameDrawSequence) {
  const FaultPlan plan = one_rule(FaultKind::kLaunch, 0.3);
  FaultInjector a(plan, nullptr, nullptr);
  FaultInjector b(plan, nullptr, nullptr);
  for (int i = 0; i < 200; ++i) {
    const auto ra = a.probe(FaultKind::kLaunch, "kernel", 1.0);
    const auto rb = b.probe(FaultKind::kLaunch, "kernel", 1.0);
    EXPECT_EQ(ra.failures, rb.failures) << i;
    EXPECT_DOUBLE_EQ(ra.penalty, rb.penalty) << i;
  }
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan plan_a = one_rule(FaultKind::kLaunch, 0.5);
  FaultPlan plan_b = plan_a;
  plan_b.seed = plan_a.seed + 1;
  FaultInjector a(plan_a, nullptr, nullptr);
  FaultInjector b(plan_b, nullptr, nullptr);
  int diffs = 0;
  for (int i = 0; i < 200; ++i) {
    diffs += a.probe(FaultKind::kLaunch, "k", 1.0).failures !=
                     b.probe(FaultKind::kLaunch, "k", 1.0).failures
                 ? 1
                 : 0;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, DrawsAreIndependentPerSite) {
  // The counter-based RNG keys on (kind, site): interleaving draws for
  // another site must not shift a site's own sequence.
  const FaultPlan plan = one_rule(FaultKind::kTransfer, 0.4);
  FaultInjector lone(plan, nullptr, nullptr);
  FaultInjector interleaved(plan, nullptr, nullptr);
  for (int i = 0; i < 50; ++i) {
    const auto want = lone.probe(FaultKind::kTransfer, "site_a", 1.0);
    interleaved.probe(FaultKind::kTransfer, "site_b", 1.0);
    const auto got = interleaved.probe(FaultKind::kTransfer, "site_a", 1.0);
    EXPECT_EQ(want.failures, got.failures) << i;
  }
}

// --- retry / backoff accounting --------------------------------------------

TEST(FaultInjector, AttemptSyncChargesWastedWorkAndBackoff) {
  FaultPlan plan = one_rule(FaultKind::kTransfer, 1.0, "", 2);
  plan.retry.max_attempts = 5;
  plan.retry.backoff_seconds = 1e-3;
  plan.retry.backoff_multiplier = 2.0;
  plan.retry.failed_fraction = 0.5;
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  FaultInjector inj(plan, &clock, &tracer);

  // The rule fires exactly twice (max_fires), so the op succeeds on the
  // third attempt: two wasted half-ops plus backoff(0) + backoff(1).
  const int failures = inj.attempt_sync(FaultKind::kTransfer, "t", 2.0);
  EXPECT_EQ(failures, 2);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0 * 0.5 * 2.0 + 1e-3 + 2e-3);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "fault_retry_transfer");
  EXPECT_EQ(tracer.spans()[0].category, "fault");
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_transfer_retries"), 2.0);

  // Spent rule: subsequent attempts are clean and charge nothing.
  const double t = clock.now();
  EXPECT_EQ(inj.attempt_sync(FaultKind::kTransfer, "t", 2.0), 0);
  EXPECT_DOUBLE_EQ(clock.now(), t);
}

TEST(FaultInjector, PersistentFaultThrowsAfterRetryBudget) {
  FaultPlan plan = one_rule(FaultKind::kLaunch, 1.0);
  plan.retry.max_attempts = 3;
  VirtualClock clock;
  FaultInjector inj(plan, &clock, nullptr);
  EXPECT_THROW(inj.attempt_sync(FaultKind::kLaunch, "k", 1.0),
               fault::PersistentFaultError);
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_persistent"), 1.0);
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_launch_retries"), 3.0);
  EXPECT_GT(clock.now(), 0.0);  // the wasted attempts were still charged
}

TEST(FaultInjector, ProbeHasNoSideEffects) {
  const FaultPlan plan = one_rule(FaultKind::kLaunch, 1.0);
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  FaultInjector inj(plan, &clock, &tracer);
  const auto pr = inj.probe(FaultKind::kLaunch, "k", 4.0);
  EXPECT_TRUE(pr.persistent);
  EXPECT_EQ(pr.failures, 3);
  EXPECT_GT(pr.penalty, 0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(FaultInjector, SiteSubstringMatching) {
  FaultInjector inj(one_rule(FaultKind::kLaunch, 1.0, "pool"), nullptr,
                    nullptr);
  EXPECT_EQ(inj.probe(FaultKind::kLaunch, "omptarget_pool", 1.0).failures, 3);
  EXPECT_EQ(inj.probe(FaultKind::kLaunch, "elsewhere", 1.0).failures, 0);
  EXPECT_EQ(inj.probe(FaultKind::kTransfer, "omptarget_pool", 1.0).failures,
            0);
}

TEST(FaultInjector, StragglerFactorAndRankFailure) {
  FaultPlan plan;
  plan.seed = 3;
  plan.rules = {FaultRule{FaultKind::kStraggler, "", 1.0, -1, 3.5},
                FaultRule{FaultKind::kRankFailure, "", 1.0, 2}};
  FaultInjector inj(plan, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(inj.straggler_factor("stream"), 3.5);
  EXPECT_TRUE(inj.rank_failure("rank"));
  EXPECT_TRUE(inj.rank_failure("rank"));
  EXPECT_FALSE(inj.rank_failure("rank"));  // max_fires = 2 spent
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_rank_failures"), 2.0);
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_stragglers"), 1.0);
}

TEST(FaultInjector, CommKindsRoundTripAndPlanParse) {
  EXPECT_EQ(fault::kind_from_string("link"), FaultKind::kLinkDegrade);
  EXPECT_EQ(fault::kind_from_string("chunk"), FaultKind::kChunkLoss);
  EXPECT_STREQ(fault::to_string(FaultKind::kLinkDegrade), "link");
  EXPECT_STREQ(fault::to_string(FaultKind::kChunkLoss), "chunk");
  const FaultPlan plan = FaultPlan::parse(
      R"({"schema": "toastcase-fault-plan-v1",
          "rules": [{"kind": "link", "probability": 0.5, "factor": 3.0},
                    {"kind": "chunk", "site": "comm", "probability": 0.1}]})");
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kChunkLoss);
}

TEST(FaultInjector, LinkDegradeFactorIsDeterministic) {
  // Disarmed injector never degrades.
  FaultInjector inert(FaultPlan{}, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(inert.link_degrade_factor("comm/link/0>1"), 1.0);

  FaultPlan plan;
  plan.seed = 17;
  plan.rules = {FaultRule{FaultKind::kLinkDegrade, "link", 1.0, -1, 2.5}};
  FaultInjector inj(plan, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(inj.link_degrade_factor("comm/link/0>1"), 2.5);
  EXPECT_DOUBLE_EQ(inj.link_degrade_factor("comm/chunk/0>1"), 1.0)
      << "site filter must apply";
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_link_degrades"), 1.0);

  // Same seed, fresh injector: identical factor sequence.
  plan.rules[0].probability = 0.5;
  FaultInjector a(plan, nullptr, nullptr);
  FaultInjector b(plan, nullptr, nullptr);
  for (int i = 0; i < 16; ++i) {
    const std::string site = "comm/link/" + std::to_string(i) + ">0";
    EXPECT_EQ(a.link_degrade_factor(site), b.link_degrade_factor(site));
  }
}

// --- structured OOM --------------------------------------------------------

TEST(DeviceOom, RealOverflowCarriesStructuredFields) {
  SimDevice dev;
  const std::size_t cap = dev.capacity_bytes();
  dev.allocate(cap / 2, "pool");
  dev.allocate(cap / 4, "jit_temp");
  try {
    dev.allocate(cap / 2, "pool");
    FAIL() << "expected DeviceOomError";
  } catch (const DeviceOomError& e) {
    EXPECT_EQ(e.info().requested_bytes, cap / 2);
    EXPECT_EQ(e.info().in_use_bytes, cap / 2 + cap / 4);
    EXPECT_EQ(e.info().capacity_bytes, cap);
    EXPECT_FALSE(e.info().injected);
    ASSERT_EQ(e.info().top_consumers.size(), 2u);
    // Largest holder first.
    EXPECT_EQ(e.info().top_consumers[0].first, "pool");
    EXPECT_EQ(e.info().top_consumers[0].second, cap / 2);
    EXPECT_NE(std::string(e.what()).find("simulated device out of memory"),
              std::string::npos);
  }
}

TEST(DeviceOom, InjectedFaultFiresUnderPressureOnly) {
  FaultPlan plan = one_rule(FaultKind::kDeviceOom, 1.0);
  plan.rules[0].pressure_threshold = 0.5;
  FaultInjector inj(plan, nullptr, nullptr);
  SimDevice dev;
  dev.set_fault_hook(&inj);

  const std::size_t cap = dev.capacity_bytes();
  dev.allocate(cap / 4, "pool");  // 25% pressure: below the threshold
  try {
    dev.allocate(cap / 2, "pool");  // 75% pressure: the hook fires
    FAIL() << "expected injected DeviceOomError";
  } catch (const DeviceOomError& e) {
    EXPECT_TRUE(e.info().injected);
    EXPECT_EQ(e.info().in_use_bytes, cap / 4);
  }
  EXPECT_DOUBLE_EQ(inj.counters().at("fault_oom_injected"), 1.0);
}

TEST(DeviceOom, OnOomRetriesInjectedFaultsOnly) {
  FaultPlan plan = one_rule(FaultKind::kDeviceOom, 1.0);
  plan.retry.max_attempts = 3;
  VirtualClock clock;
  FaultInjector inj(plan, &clock, nullptr);

  toast::accel::OomInfo injected;
  injected.injected = true;
  EXPECT_TRUE(inj.on_oom("site", DeviceOomError(injected), 0));
  EXPECT_TRUE(inj.on_oom("site", DeviceOomError(injected), 1));
  EXPECT_FALSE(inj.on_oom("site", DeviceOomError(injected), 2));  // budget
  EXPECT_GT(clock.now(), 0.0);

  toast::accel::OomInfo real;  // real overflow: never retried
  EXPECT_FALSE(inj.on_oom("site", DeviceOomError(real), 0));
}

// --- end-to-end recovery ---------------------------------------------------

toast::mpisim::JobResult tiny_job(core::Backend backend,
                                  const FaultPlan& plan) {
  toast::mpisim::JobConfig cfg;
  cfg.problem = toast::bench_model::tiny_problem();
  cfg.schedule.set_backend(backend);
  cfg.fault_plan = plan;
  return toast::mpisim::run_benchmark_job(cfg);
}

TEST(FaultRecovery, EmptyPlanIsBitForBitIdentical) {
  const auto base = tiny_job(core::Backend::kOmpTarget, FaultPlan{});
  const auto zero = tiny_job(core::Backend::kOmpTarget, FaultPlan{});
  EXPECT_EQ(base.runtime, zero.runtime);
  EXPECT_EQ(base.rank_spans.size(), zero.rank_spans.size());
  EXPECT_TRUE(zero.fault_counters.empty());
  EXPECT_TRUE(zero.degraded_kernels.empty());
}

TEST(FaultRecovery, PersistentLaunchFaultsFallBackToCpu) {
  const auto r =
      tiny_job(core::Backend::kOmpTarget, one_rule(FaultKind::kLaunch, 1.0));
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.runtime, 0.0);
  EXPECT_GT(r.fault_counters.at("fault_fallbacks"), 0.0);
  EXPECT_GT(r.fault_counters.at("fault_launch_retries"), 0.0);
  EXPECT_FALSE(r.degraded_kernels.empty());
}

TEST(FaultRecovery, RankFailuresReplayBoundedly) {
  FaultPlan plan = one_rule(FaultKind::kRankFailure, 1.0, "", 2);
  const auto clean = tiny_job(core::Backend::kCpu, FaultPlan{});
  const auto r = tiny_job(core::Backend::kCpu, plan);
  EXPECT_DOUBLE_EQ(r.fault_counters.at("fault_rank_failures"), 2.0);
  EXPECT_GT(r.runtime, clean.runtime);  // the replays were charged
}

TEST(FaultRecovery, SameSeedTwiceIsDeterministic) {
  FaultPlan plan;
  plan.seed = 20230923;
  plan.rules = {FaultRule{FaultKind::kTransfer, "", 0.1},
                FaultRule{FaultKind::kLaunch, "", 0.1},
                FaultRule{FaultKind::kStraggler, "", 0.2, -1, 2.5},
                FaultRule{FaultKind::kRankFailure, "", 0.3, 1}};
  const auto a = tiny_job(core::Backend::kJax, plan);
  const auto b = tiny_job(core::Backend::kJax, plan);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
  EXPECT_EQ(a.degraded_kernels, b.degraded_kernels);
}

TEST(FaultRecovery, DestriperCheckpointRestoreMatchesCleanSolve) {
  // A rank failure mid-CG restores the last checkpoint and replays; the
  // replayed iterations recompute the same numbers, so the solution must
  // equal the fault-free solve exactly — only the charged time grows.
  const auto fp = sim::hex_focalplane(3, 37.0, 10.0, 50e-6);
  sim::ScanParams scan;
  scan.spin_period = 60.0;

  const auto make_ob = [&]() {
    core::ExecConfig ec;
    core::ExecContext ctx(ec);
    sim::WorkflowConfig wf;
    wf.nside = 16;
    core::Data data;
    data.observations.push_back(
        sim::simulate_satellite("ckpt", fp, 4096, scan, 11));
    sim::make_scan_pipeline(wf).exec(data, ctx);
    return std::move(data.observations[0]);
  };

  toast::solver::DestriperConfig dc;
  dc.nside = 16;
  dc.step_length = 128;
  dc.max_iterations = 25;
  dc.tolerance = 1e-10;
  dc.checkpoint_interval = 4;
  toast::solver::Destriper destriper(dc);

  core::Observation clean_ob = make_ob();
  core::ExecConfig clean_ec;
  core::ExecContext clean_ctx(clean_ec);
  const auto clean =
      destriper.solve(clean_ob, clean_ctx, core::Backend::kCpu);

  core::Observation chaos_ob = make_ob();
  core::ExecConfig chaos_ec;
  chaos_ec.fault_plan =
      one_rule(FaultKind::kRankFailure, 0.4, "destriper_cg");
  core::ExecContext chaos_ctx(chaos_ec);
  const auto chaos =
      destriper.solve(chaos_ob, chaos_ctx, core::Backend::kCpu);

  EXPECT_GT(chaos_ctx.faults().counters().at("fault_checkpoint_restores"),
            0.0);
  EXPECT_EQ(chaos.iterations, clean.iterations);
  ASSERT_EQ(chaos.amplitudes.size(), clean.amplitudes.size());
  for (std::size_t i = 0; i < clean.amplitudes.size(); ++i) {
    EXPECT_EQ(chaos.amplitudes[i], clean.amplitudes[i]) << i;
  }
}

}  // namespace
