// Unit tests for the quaternion array substrate.

#include "qarray/qarray.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

namespace qa = toast::qarray;
using qa::Quat;
using qa::Vec3;

namespace {

constexpr double kPi = std::numbers::pi;

Quat random_unit_quat(std::mt19937& gen) {
  std::normal_distribution<double> dist(0.0, 1.0);
  Quat q{dist(gen), dist(gen), dist(gen), dist(gen)};
  return qa::normalize(q);
}

double vec_dist(const Vec3& a, const Vec3& b) {
  return std::sqrt((a[0] - b[0]) * (a[0] - b[0]) +
                   (a[1] - b[1]) * (a[1] - b[1]) +
                   (a[2] - b[2]) * (a[2] - b[2]));
}

}  // namespace

TEST(QArray, IdentityLeavesVectorsUnchanged) {
  const Quat id{0.0, 0.0, 0.0, 1.0};
  const Vec3 v{0.3, -1.2, 2.5};
  const Vec3 r = qa::rotate(id, v);
  EXPECT_NEAR(vec_dist(r, v), 0.0, 1e-15);
}

TEST(QArray, NormalizeZeroGivesIdentity) {
  const Quat z{0.0, 0.0, 0.0, 0.0};
  const Quat n = qa::normalize(z);
  EXPECT_DOUBLE_EQ(n[3], 1.0);
  EXPECT_DOUBLE_EQ(qa::norm(n), 1.0);
}

TEST(QArray, MultMatchesComposedRotation) {
  std::mt19937 gen(42);
  for (int trial = 0; trial < 50; ++trial) {
    const Quat p = random_unit_quat(gen);
    const Quat q = random_unit_quat(gen);
    const Vec3 v{1.0, 0.5, -0.25};
    const Vec3 via_product = qa::rotate(qa::mult(p, q), v);
    const Vec3 via_steps = qa::rotate(p, qa::rotate(q, v));
    EXPECT_NEAR(vec_dist(via_product, via_steps), 0.0, 1e-12);
  }
}

TEST(QArray, ConjugateInvertsRotation) {
  std::mt19937 gen(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Quat q = random_unit_quat(gen);
    const Vec3 v{-0.4, 1.1, 0.9};
    const Vec3 back = qa::rotate(qa::conj(q), qa::rotate(q, v));
    EXPECT_NEAR(vec_dist(back, v), 0.0, 1e-12);
  }
}

TEST(QArray, AxisAngleRotatesByExpectedAngle) {
  // 90 degrees about z takes x to y.
  const Quat q = qa::from_axisangle(Vec3{0.0, 0.0, 1.0}, kPi / 2.0);
  const Vec3 r = qa::rotate(q, Vec3{1.0, 0.0, 0.0});
  EXPECT_NEAR(r[0], 0.0, 1e-15);
  EXPECT_NEAR(r[1], 1.0, 1e-15);
  EXPECT_NEAR(r[2], 0.0, 1e-15);
}

TEST(QArray, RotationPreservesNorm) {
  std::mt19937 gen(3);
  std::normal_distribution<double> dist(0.0, 2.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Quat q = random_unit_quat(gen);
    const Vec3 v{dist(gen), dist(gen), dist(gen)};
    const Vec3 r = qa::rotate(q, v);
    const double n0 = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    const double n1 = std::sqrt(r[0] * r[0] + r[1] * r[1] + r[2] * r[2]);
    EXPECT_NEAR(n0, n1, 1e-12);
  }
}

TEST(QArray, IsoAnglesRoundTrip) {
  std::mt19937 gen(11);
  std::uniform_real_distribution<double> uth(0.05, kPi - 0.05);
  std::uniform_real_distribution<double> uph(-kPi, kPi);
  std::uniform_real_distribution<double> ups(-kPi, kPi);
  for (int trial = 0; trial < 100; ++trial) {
    const double theta = uth(gen);
    const double phi = uph(gen);
    const double psi = ups(gen);
    const Quat q = qa::from_iso_angles(theta, phi, psi);
    double th2 = 0.0, ph2 = 0.0, ps2 = 0.0;
    qa::to_iso_angles(q, th2, ph2, ps2);
    EXPECT_NEAR(theta, th2, 1e-9);
    EXPECT_NEAR(std::remainder(phi - ph2, 2.0 * kPi), 0.0, 1e-9);
    EXPECT_NEAR(std::remainder(psi - ps2, 2.0 * kPi), 0.0, 1e-9);
  }
}

TEST(QArray, IsoAnglesDirectionMatchesSpherical) {
  const double theta = 1.1, phi = -2.0;
  const Quat q = qa::from_iso_angles(theta, phi, 0.33);
  const Vec3 dir = qa::rotate(q, Vec3{0.0, 0.0, 1.0});
  EXPECT_NEAR(dir[0], std::sin(theta) * std::cos(phi), 1e-12);
  EXPECT_NEAR(dir[1], std::sin(theta) * std::sin(phi), 1e-12);
  EXPECT_NEAR(dir[2], std::cos(theta), 1e-12);
}

TEST(QArray, SlerpEndpointsAndMidpoint) {
  std::mt19937 gen(5);
  const Quat a = random_unit_quat(gen);
  const Quat b = random_unit_quat(gen);
  const Quat s0 = qa::slerp(a, b, 0.0);
  const Quat s1 = qa::slerp(a, b, 1.0);
  // Endpoints up to sign (q and -q are the same rotation).
  const Vec3 v{0.2, -0.7, 1.3};
  EXPECT_NEAR(vec_dist(qa::rotate(s0, v), qa::rotate(a, v)), 0.0, 1e-10);
  EXPECT_NEAR(vec_dist(qa::rotate(s1, v), qa::rotate(b, v)), 0.0, 1e-10);
  // Midpoint is unit norm.
  EXPECT_NEAR(qa::norm(qa::slerp(a, b, 0.5)), 1.0, 1e-12);
}

TEST(QArray, SlerpConstantAngularVelocity) {
  const Quat a{0.0, 0.0, 0.0, 1.0};
  const Quat b = qa::from_axisangle(Vec3{0.0, 0.0, 1.0}, 1.0);
  // slerp(t) should equal a rotation of t radians about z.
  for (double t : {0.25, 0.5, 0.75}) {
    const Quat s = qa::slerp(a, b, t);
    const Quat expect = qa::from_axisangle(Vec3{0.0, 0.0, 1.0}, t);
    const Vec3 v{1.0, 0.0, 0.0};
    EXPECT_NEAR(vec_dist(qa::rotate(s, v), qa::rotate(expect, v)), 0.0,
                1e-12);
  }
}

TEST(QArray, MultManyMatchesScalar) {
  std::mt19937 gen(17);
  const std::size_t n = 33;
  std::vector<double> p(4 * n), q(4 * n), out(4 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat pi = random_unit_quat(gen);
    const Quat qi = random_unit_quat(gen);
    for (int k = 0; k < 4; ++k) {
      p[4 * i + k] = pi[k];
      q[4 * i + k] = qi[k];
    }
  }
  qa::mult_many(p, q, out);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat pi{p[4 * i], p[4 * i + 1], p[4 * i + 2], p[4 * i + 3]};
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Quat r = qa::mult(pi, qi);
    for (int k = 0; k < 4; ++k) {
      EXPECT_DOUBLE_EQ(out[4 * i + k], r[k]);
    }
  }
}

TEST(QArray, MultOneManyAndManyOne) {
  std::mt19937 gen(19);
  const std::size_t n = 16;
  const Quat fixed = random_unit_quat(gen);
  std::vector<double> q(4 * n), left(4 * n), right(4 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi = random_unit_quat(gen);
    for (int k = 0; k < 4; ++k) q[4 * i + k] = qi[k];
  }
  qa::mult_one_many(fixed, q, left);
  qa::mult_many_one(q, fixed, right);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Quat l = qa::mult(fixed, qi);
    const Quat r = qa::mult(qi, fixed);
    for (int k = 0; k < 4; ++k) {
      EXPECT_DOUBLE_EQ(left[4 * i + k], l[k]);
      EXPECT_DOUBLE_EQ(right[4 * i + k], r[k]);
    }
  }
}

TEST(QArray, RotateManyOneMatchesScalar) {
  std::mt19937 gen(23);
  const std::size_t n = 20;
  std::vector<double> q(4 * n), out(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi = random_unit_quat(gen);
    for (int k = 0; k < 4; ++k) q[4 * i + k] = qi[k];
  }
  const Vec3 z{0.0, 0.0, 1.0};
  qa::rotate_many_one(q, z, out);
  for (std::size_t i = 0; i < n; ++i) {
    const Quat qi{q[4 * i], q[4 * i + 1], q[4 * i + 2], q[4 * i + 3]};
    const Vec3 r = qa::rotate(qi, z);
    for (int k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(out[3 * i + k], r[k]);
    }
  }
}

TEST(QArray, FromVectorsShortestArc) {
  std::mt19937 gen(29);
  std::normal_distribution<double> nd(0.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    Vec3 a{nd(gen), nd(gen), nd(gen)};
    Vec3 b{nd(gen), nd(gen), nd(gen)};
    const double na = std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]);
    const double nb = std::sqrt(b[0] * b[0] + b[1] * b[1] + b[2] * b[2]);
    for (int i = 0; i < 3; ++i) {
      a[static_cast<std::size_t>(i)] /= na;
      b[static_cast<std::size_t>(i)] /= nb;
    }
    const Quat q = qa::from_vectors(a, b);
    EXPECT_NEAR(qa::norm(q), 1.0, 1e-12);
    EXPECT_NEAR(vec_dist(qa::rotate(q, a), b), 0.0, 1e-12);
  }
}

TEST(QArray, FromVectorsDegenerateCases) {
  // Identity for parallel vectors.
  const Vec3 x{1.0, 0.0, 0.0};
  const Quat qid = qa::from_vectors(x, x);
  EXPECT_NEAR(vec_dist(qa::rotate(qid, x), x), 0.0, 1e-14);
  // A half-turn for antiparallel vectors.
  const Vec3 mx{-1.0, 0.0, 0.0};
  const Quat qpi = qa::from_vectors(x, mx);
  EXPECT_NEAR(qa::norm(qpi), 1.0, 1e-12);
  EXPECT_NEAR(vec_dist(qa::rotate(qpi, x), mx), 0.0, 1e-12);
  const Vec3 z{0.0, 0.0, 1.0};
  const Vec3 mz{0.0, 0.0, -1.0};
  EXPECT_NEAR(vec_dist(qa::rotate(qa::from_vectors(z, mz), z), mz), 0.0,
              1e-12);
}

TEST(QArray, RotationMatrixMatchesQuaternion) {
  std::mt19937 gen(37);
  for (int trial = 0; trial < 30; ++trial) {
    const Quat q = random_unit_quat(gen);
    const auto m = qa::to_rotmat(q);
    std::normal_distribution<double> nd(0.0, 1.0);
    const Vec3 v{nd(gen), nd(gen), nd(gen)};
    const Vec3 rq = qa::rotate(q, v);
    const Vec3 rm{m[0] * v[0] + m[1] * v[1] + m[2] * v[2],
                  m[3] * v[0] + m[4] * v[1] + m[5] * v[2],
                  m[6] * v[0] + m[7] * v[1] + m[8] * v[2]};
    EXPECT_NEAR(vec_dist(rq, rm), 0.0, 1e-12);
    // Orthonormality: M M^T = I (spot-check the diagonal).
    for (int r = 0; r < 3; ++r) {
      const double row = m[static_cast<std::size_t>(3 * r)] * m[static_cast<std::size_t>(3 * r)] +
                         m[static_cast<std::size_t>(3 * r + 1)] * m[static_cast<std::size_t>(3 * r + 1)] +
                         m[static_cast<std::size_t>(3 * r + 2)] * m[static_cast<std::size_t>(3 * r + 2)];
      EXPECT_NEAR(row, 1.0, 1e-12);
    }
  }
}

TEST(QArray, NormalizeInplace) {
  std::vector<double> q = {2.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0, 4.0};
  qa::normalize_inplace(q);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_NEAR(q[5], 0.6, 1e-15);
  EXPECT_NEAR(q[7], 0.8, 1e-15);
}
