// Tests of the declarative resilience policy engine: strict policy
// parsing, the deterministic circuit-breaker state machine
// (closed -> open -> half-open -> closed on the virtual clock),
// per-site retry overrides, retry-penalty deadlines, degradation
// ladders, and elastic world-shrink recovery through the destriper CG
// and the mpisim job — all under pinned seeds with bitwise-identical
// repeat runs, and with the empty-policy pass-through guarantee.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "accel/sim_device.hpp"
#include "fault/fault.hpp"
#include "mpisim/job.hpp"
#include "obs/trace.hpp"
#include "resilience/manager.hpp"
#include "resilience/policy.hpp"
#include "sim/satellite.hpp"
#include "sim/workflow.hpp"
#include "solver/destriper.hpp"

namespace core = toast::core;
namespace fault = toast::fault;
namespace resilience = toast::resilience;
namespace sim = toast::sim;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultRule;
using resilience::BreakerState;
using resilience::Manager;
using resilience::Policy;
using toast::accel::VirtualClock;

namespace {

Policy breaker_policy(int open_after, double open_seconds, int close_after) {
  Policy p;
  resilience::SitePolicy sp;
  sp.breaker.open_after = open_after;
  sp.breaker.open_seconds = open_seconds;
  sp.breaker.close_after = close_after;
  p.sites.push_back(std::move(sp));
  return p;
}

// --- policy parsing --------------------------------------------------------

TEST(ResiliencePolicy, ParsesFullDocument) {
  const Policy p = Policy::parse(R"({
    "schema": "toastcase-resilience-policy-v1",
    "sites": [
      {"site": "xla/", "deadline_seconds": 0.01,
       "retry": {"max_attempts": 5, "backoff_seconds": 1e-3,
                 "backoff_multiplier": 3.0, "failed_fraction": 0.25},
       "breaker": {"open_after": 3, "open_seconds": 0.05,
                   "close_after": 2, "jitter": 0.1}}
    ],
    "ladders": [{"domain": "solver_comm", "escalate_after": 2,
                 "max_level": 2}],
    "elastic": {"enabled": true, "min_ranks": 2,
                "rebuild_seconds": 1e-3, "requeue": false}
  })");
  ASSERT_EQ(p.sites.size(), 1u);
  EXPECT_EQ(p.sites[0].site, "xla/");
  EXPECT_TRUE(p.sites[0].has_retry);
  EXPECT_EQ(p.sites[0].retry.max_attempts, 5);
  EXPECT_DOUBLE_EQ(p.sites[0].retry.failed_fraction, 0.25);
  EXPECT_DOUBLE_EQ(p.sites[0].deadline_seconds, 0.01);
  EXPECT_EQ(p.sites[0].breaker.open_after, 3);
  EXPECT_EQ(p.sites[0].breaker.close_after, 2);
  EXPECT_DOUBLE_EQ(p.sites[0].breaker.jitter, 0.1);
  ASSERT_EQ(p.ladders.size(), 1u);
  EXPECT_EQ(p.ladders[0].domain, "solver_comm");
  EXPECT_EQ(p.ladders[0].escalate_after, 2);
  EXPECT_TRUE(p.elastic.enabled);
  EXPECT_EQ(p.elastic.min_ranks, 2);
  EXPECT_FALSE(p.elastic.requeue);
  EXPECT_FALSE(p.empty());
}

TEST(ResiliencePolicy, EmptyDocumentIsEmptyPolicy) {
  const Policy p =
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1"})");
  EXPECT_TRUE(p.empty());
  // Elastic present but disabled is still empty.
  const Policy q = Policy::parse(
      R"({"schema": "toastcase-resilience-policy-v1",
          "elastic": {"enabled": false}})");
  EXPECT_TRUE(q.empty());
}

TEST(ResiliencePolicy, RejectsUnknownKeysEverywhere) {
  EXPECT_THROW(Policy::parse(R"({"schema": "nope"})"), std::runtime_error);
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "sitez": []})"),
      std::runtime_error);
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "sites": [{"deadline_second": 1.0}]})"),
      std::runtime_error);
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "sites": [{"retry": {"max_attempt": 5}}]})"),
      std::runtime_error);
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "sites": [{"breaker": {"open_afte": 3}}]})"),
      std::runtime_error);
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "ladders": [{"domain": "x", "max_leve": 2}]})"),
      std::runtime_error);
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "elastic": {"enable": true}})"),
      std::runtime_error);
  // Ladders must name their domain.
  EXPECT_THROW(
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1",
                        "ladders": [{"escalate_after": 2}]})"),
      std::runtime_error);
}

// --- disarmed manager ------------------------------------------------------

TEST(ResilienceManager, DisarmedManagerIsPassThrough) {
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  Manager m(Policy{}, &clock, &tracer, 7);
  EXPECT_FALSE(m.armed());
  EXPECT_EQ(m.site_for("anywhere"), nullptr);
  EXPECT_TRUE(m.admit("anywhere"));
  m.on_failure("anywhere");
  m.on_success("anywhere");
  m.report_fault("solver_comm", "x");
  EXPECT_EQ(m.level("solver_comm"), 0);
  EXPECT_FALSE(m.elastic_enabled());
  EXPECT_FALSE(m.allow_shrink(64));
  EXPECT_EQ(m.breaker_state("anywhere"), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(m.counters().empty());
}

// --- circuit breaker -------------------------------------------------------

TEST(ResilienceBreaker, OpenHalfOpenClosedTransitions) {
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  Manager m(breaker_policy(2, 0.5, 1), &clock, &tracer, 7);

  // Two consecutive failures trip the breaker open.
  EXPECT_TRUE(m.admit("site_a"));
  m.on_failure("site_a");
  EXPECT_EQ(m.breaker_state("site_a"), BreakerState::kClosed);
  m.on_failure("site_a");
  EXPECT_EQ(m.breaker_state("site_a"), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_breaker_opens"), 1.0);

  // Open: ops fast-fail until the cool-down elapses.
  EXPECT_FALSE(m.admit("site_a"));
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_breaker_fast_fails"), 1.0);

  // Cool-down elapsed: the next attempt is a half-open probe.
  clock.advance(0.6);
  EXPECT_TRUE(m.admit("site_a"));
  EXPECT_EQ(m.breaker_state("site_a"), BreakerState::kHalfOpen);
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_breaker_half_opens"), 1.0);

  // One half-open success closes it (close_after = 1).
  m.on_success("site_a");
  EXPECT_EQ(m.breaker_state("site_a"), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_breaker_closes"), 1.0);

  // A failed half-open probe goes straight back to open.
  m.on_failure("site_a");
  m.on_failure("site_a");
  clock.advance(0.6);
  EXPECT_TRUE(m.admit("site_a"));
  m.on_failure("site_a");
  EXPECT_EQ(m.breaker_state("site_a"), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_breaker_opens"), 3.0);
}

TEST(ResilienceBreaker, StateIsPerConcreteSite) {
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  Manager m(breaker_policy(1, 1.0, 1), &clock, &tracer, 7);
  m.on_failure("site_a");
  EXPECT_EQ(m.breaker_state("site_a"), BreakerState::kOpen);
  EXPECT_EQ(m.breaker_state("site_b"), BreakerState::kClosed);
  EXPECT_TRUE(m.admit("site_b"));
}

TEST(ResilienceBreaker, FastFailThroughInjectorThrowsWithoutCharge) {
  // An open breaker makes attempt_sync throw persistent with zero
  // failures and zero clock charge — the op must not silently run.
  FaultPlan plan;
  plan.seed = 17;
  plan.rules = {FaultRule{FaultKind::kLaunch, "", 1.0, 2}};
  plan.retry.max_attempts = 2;

  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  Manager m(breaker_policy(2, 0.5, 1), &clock, &tracer, plan.seed);
  FaultInjector inj(plan, &clock, &tracer);
  inj.set_resilience(&m);

  // First op: both attempts fail (p = 1), breaker trips, throw.
  EXPECT_THROW(inj.attempt_sync(FaultKind::kLaunch, "xla/launch", 1e-3),
               fault::PersistentFaultError);
  EXPECT_EQ(m.breaker_state("xla/launch"), BreakerState::kOpen);
  const double t_open = clock.now();

  // Second op: the rule is exhausted (max_fires = 2) so the op itself
  // would succeed — but the breaker is open, so it fast-fails free.
  try {
    inj.attempt_sync(FaultKind::kLaunch, "xla/launch", 1e-3);
    FAIL() << "expected PersistentFaultError";
  } catch (const fault::PersistentFaultError& e) {
    EXPECT_EQ(e.failures(), 0);
  }
  EXPECT_DOUBLE_EQ(clock.now(), t_open);
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_breaker_fast_fails"), 1.0);

  // Cool-down over: half-open probe succeeds and the breaker closes.
  clock.advance(0.6);
  EXPECT_EQ(inj.attempt_sync(FaultKind::kLaunch, "xla/launch", 1e-3), 0);
  EXPECT_EQ(m.breaker_state("xla/launch"), BreakerState::kClosed);
}

TEST(ResilienceBreaker, PinnedSeedRepeatsBitwise) {
  FaultPlan plan;
  plan.seed = 20260809;
  plan.rules = {FaultRule{FaultKind::kTransfer, "", 0.6}};
  plan.retry.max_attempts = 2;

  auto run = [&]() {
    VirtualClock clock;
    toast::obs::Tracer tracer(&clock);
    Policy policy = breaker_policy(2, 1e-3, 1);
    policy.sites[0].breaker.jitter = 0.5;  // exercise the jitter draw
    Manager m(std::move(policy), &clock, &tracer, plan.seed);
    FaultInjector inj(plan, &clock, &tracer);
    inj.set_resilience(&m);
    for (int i = 0; i < 40; ++i) {
      try {
        inj.attempt_sync(FaultKind::kTransfer, "accel_update", 1e-4);
      } catch (const fault::PersistentFaultError&) {
      }
      clock.advance(2e-4);
    }
    return std::make_pair(clock.now(), m.counters());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second.at("resilience_breaker_opens"), 0.0);
}

// --- retry overrides and deadlines ----------------------------------------

TEST(ResilienceRetry, PerSiteBudgetOverridesPlan) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rules = {FaultRule{FaultKind::kLaunch, "", 1.0}};
  plan.retry.max_attempts = 3;

  Policy policy;
  resilience::SitePolicy sp;
  sp.site = "xla/";
  sp.has_retry = true;
  sp.retry.max_attempts = 6;
  policy.sites.push_back(sp);

  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  Manager m(policy, &clock, &tracer, plan.seed);
  FaultInjector inj(plan, &clock, &tracer);
  inj.set_resilience(&m);

  // Matching site: the override's six attempts all fail.
  const fault::ProbeResult a = inj.probe(FaultKind::kLaunch, "xla/kernel", 0.0);
  EXPECT_TRUE(a.persistent);
  EXPECT_EQ(a.failures, 6);
  // Non-matching site: the plan's three attempts.
  const fault::ProbeResult b = inj.probe(FaultKind::kLaunch, "omp/kernel", 0.0);
  EXPECT_TRUE(b.persistent);
  EXPECT_EQ(b.failures, 3);
}

TEST(ResilienceDeadline, CapsRetryPenaltyUnderPinnedSeed) {
  FaultPlan plan;
  plan.seed = 13;
  plan.rules = {FaultRule{FaultKind::kTransfer, "", 1.0}};
  plan.retry.max_attempts = 5;
  plan.retry.backoff_seconds = 1e-3;
  plan.retry.backoff_multiplier = 1.0;
  plan.retry.failed_fraction = 0.0;

  Policy policy;
  resilience::SitePolicy sp;
  sp.deadline_seconds = 2.5e-3;  // hit after the third 1 ms backoff
  policy.sites.push_back(sp);

  auto run = [&]() {
    VirtualClock clock;
    toast::obs::Tracer tracer(&clock);
    Manager m(policy, &clock, &tracer, plan.seed);
    FaultInjector inj(plan, &clock, &tracer);
    inj.set_resilience(&m);
    const fault::ProbeResult r = inj.probe(FaultKind::kTransfer, "up", 1.0);
    return std::make_tuple(r.failures, r.persistent, r.penalty,
                           m.counters());
  };
  const auto a = run();
  EXPECT_TRUE(std::get<1>(a));
  EXPECT_EQ(std::get<0>(a), 3);  // not the plan's five
  EXPECT_DOUBLE_EQ(std::get<2>(a), 3e-3);
  EXPECT_DOUBLE_EQ(std::get<3>(a).at("resilience_deadline_exceeded"), 1.0);
  // Bitwise repeat.
  const auto b = run();
  EXPECT_EQ(a, b);
}

// --- degradation ladders ---------------------------------------------------

TEST(ResilienceLadder, EscalatesEveryNFaultsUpToMaxLevel) {
  Policy policy;
  policy.ladders.push_back(resilience::LadderSpec{"solver_comm", 2, 2});
  VirtualClock clock;
  toast::obs::Tracer tracer(&clock);
  Manager m(policy, &clock, &tracer, 1);

  EXPECT_EQ(m.level("solver_comm"), 0);
  m.report_fault("solver_comm", "x");
  EXPECT_EQ(m.level("solver_comm"), 0);
  m.report_fault("solver_comm", "x");
  EXPECT_EQ(m.level("solver_comm"), 1);
  m.report_fault("solver_comm", "x");
  m.report_fault("solver_comm", "x");
  EXPECT_EQ(m.level("solver_comm"), 2);
  for (int i = 0; i < 6; ++i) {
    m.report_fault("solver_comm", "x");
  }
  EXPECT_EQ(m.level("solver_comm"), 2);  // capped
  EXPECT_DOUBLE_EQ(m.counters().at("resilience_degrades"), 2.0);
  // Undeclared domains never escalate.
  m.report_fault("executor", "x");
  EXPECT_EQ(m.level("executor"), 0);
}

// --- elastic recovery through the destriper CG -----------------------------

struct SolveOut {
  std::vector<double> amplitudes;
  std::vector<double> residuals;
  double clock_end = 0.0;
  std::map<std::string, double> fault_counters;
  std::map<std::string, double> resilience_counters;
};

SolveOut destriper_solve(const FaultPlan& plan, const Policy& policy,
                         toast::solver::AsyncComm comm_mode) {
  const auto fp = sim::hex_focalplane(3, 37.0, 10.0, 50e-6);
  sim::ScanParams scan;
  scan.spin_period = 60.0;

  core::ExecConfig ec;
  ec.fault_plan = plan;
  ec.resilience_policy = policy;
  core::ExecContext ctx(ec);
  sim::WorkflowConfig wf;
  wf.nside = 16;
  core::Data data;
  data.observations.push_back(
      sim::simulate_satellite("elastic", fp, 4096, scan, 11));
  sim::make_scan_pipeline(wf).exec(data, ctx);

  toast::solver::DestriperConfig dc;
  dc.nside = 16;
  dc.step_length = 128;
  dc.max_iterations = 12;
  dc.tolerance = 0.0;
  dc.checkpoint_interval = 4;
  dc.comm_ranks = 4;
  dc.comm_ranks_per_node = 2;
  dc.async_comm = comm_mode;
  toast::solver::Destriper destriper(dc);
  const auto r = destriper.solve(data.observations[0], ctx,
                                 core::Backend::kCpu);
  SolveOut out;
  out.amplitudes = r.amplitudes;
  out.residuals = r.residuals;
  out.clock_end = ctx.clock().now();
  out.fault_counters = ctx.faults().counters();
  out.resilience_counters = ctx.resilience().counters();
  return out;
}

Policy elastic_policy(int min_ranks, bool requeue = true) {
  Policy p;
  p.elastic.enabled = true;
  p.elastic.min_ranks = min_ranks;
  p.elastic.rebuild_seconds = 1e-3;
  p.elastic.requeue = requeue;
  return p;
}

TEST(ResilienceElastic, DestriperWorldShrinkMatchesCleanSolve) {
  FaultPlan plan;
  plan.seed = 17;
  plan.retry.max_attempts = 1;
  plan.rules = {FaultRule{FaultKind::kRankFailure, "destriper_cg", 1.0, 3}};

  const SolveOut clean = destriper_solve(FaultPlan{}, Policy{},
                                         toast::solver::AsyncComm::kStaged);
  const SolveOut chaos = destriper_solve(plan, elastic_policy(2),
                                         toast::solver::AsyncComm::kStaged);

  // The exhausted restore budget dropped a rank instead of giving up.
  EXPECT_DOUBLE_EQ(
      chaos.resilience_counters.at("resilience_world_shrinks"), 1.0);
  EXPECT_GT(chaos.fault_counters.at("fault_checkpoint_restores"), 0.0);
  // The collectives are cost-only, so the checkpoint restart on the
  // shrunken world recomputes the same numbers: amplitudes match the
  // clean solve exactly.
  ASSERT_EQ(chaos.amplitudes.size(), clean.amplitudes.size());
  for (std::size_t i = 0; i < clean.amplitudes.size(); ++i) {
    EXPECT_EQ(chaos.amplitudes[i], clean.amplitudes[i]) << i;
  }
  // Recovery was charged: the chaos run is slower.
  EXPECT_GT(chaos.clock_end, clean.clock_end);
}

TEST(ResilienceElastic, ShrinkDecisionsRepeatBitwise) {
  FaultPlan plan;
  plan.seed = 2026;
  plan.retry.max_attempts = 1;
  plan.rules = {FaultRule{FaultKind::kRankFailure, "destriper_cg", 0.6, 5}};

  const SolveOut a = destriper_solve(plan, elastic_policy(2),
                                     toast::solver::AsyncComm::kOverlap);
  const SolveOut b = destriper_solve(plan, elastic_policy(2),
                                     toast::solver::AsyncComm::kOverlap);
  EXPECT_EQ(a.clock_end, b.clock_end);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
  EXPECT_EQ(a.resilience_counters, b.resilience_counters);
  EXPECT_EQ(a.amplitudes, b.amplitudes);
  EXPECT_EQ(a.residuals, b.residuals);
}

TEST(ResilienceElastic, EmptyPolicyIsBitForBitIdentical) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rules = {FaultRule{FaultKind::kRankFailure, "destriper_cg", 0.4}};

  const Policy parsed_empty =
      Policy::parse(R"({"schema": "toastcase-resilience-policy-v1"})");
  const SolveOut a = destriper_solve(plan, Policy{},
                                     toast::solver::AsyncComm::kOverlap);
  const SolveOut b = destriper_solve(plan, parsed_empty,
                                     toast::solver::AsyncComm::kOverlap);
  EXPECT_EQ(a.clock_end, b.clock_end);
  EXPECT_EQ(a.fault_counters, b.fault_counters);
  EXPECT_EQ(a.amplitudes, b.amplitudes);
  EXPECT_TRUE(b.resilience_counters.empty());
}

// --- elastic recovery through the mpisim job -------------------------------

toast::bench_model::ProblemSize small_cluster() {
  // tiny_problem is a single rank, which can never shrink; give the job
  // a 2x2 world so dropping a rank is possible.
  auto p = toast::bench_model::tiny_problem();
  p.nodes = 2;
  p.procs_per_node = 2;
  return p;
}

toast::mpisim::JobResult elastic_job(const FaultPlan& plan,
                                     const Policy& policy) {
  toast::mpisim::JobConfig cfg;
  cfg.problem = small_cluster();
  cfg.schedule.set_backend(core::Backend::kCpu);
  cfg.fault_plan = plan;
  cfg.resilience_policy = policy;
  return toast::mpisim::run_benchmark_job(cfg);
}

TEST(ResilienceElastic, JobShrinksWorldWhenReplayBudgetExhausts) {
  FaultPlan plan;
  plan.seed = 31;
  plan.retry.max_attempts = 2;
  plan.rules = {FaultRule{FaultKind::kRankFailure, "mpisim_rank", 1.0}};

  const auto clean = elastic_job(FaultPlan{}, Policy{});
  const int total = small_cluster().total_procs();
  EXPECT_EQ(clean.world_ranks, total);

  const auto shrunk = elastic_job(plan, elastic_policy(1));
  EXPECT_LT(shrunk.world_ranks, total);
  EXPECT_GE(shrunk.world_ranks, 1);
  EXPECT_GT(shrunk.fault_counters.at("resilience_world_shrinks"), 0.0);
  EXPECT_GT(shrunk.fault_counters.at("resilience_redistributed_obs"), 0.0);
  EXPECT_GT(shrunk.runtime, clean.runtime);

  // Same seed twice: identical shrink decisions, runtime and counters.
  const auto repeat = elastic_job(plan, elastic_policy(1));
  EXPECT_EQ(shrunk.runtime, repeat.runtime);
  EXPECT_EQ(shrunk.world_ranks, repeat.world_ranks);
  EXPECT_EQ(shrunk.fault_counters, repeat.fault_counters);

  // Without the elastic policy the same plan replays in place forever:
  // full world at the end, no shrink counters.
  const auto inelastic = elastic_job(plan, Policy{});
  EXPECT_EQ(inelastic.world_ranks, total);
  EXPECT_EQ(inelastic.fault_counters.count("resilience_world_shrinks"), 0u);
}

}  // namespace
