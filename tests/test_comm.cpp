// Tests for the step-scheduled collective-communication engine: topology
// accessors, bitwise equivalence of the uniform-topology schedules with
// the closed-form CommModel, algorithm orderings (recursive halving vs
// ring, tree at small messages, cluster contention), functional payload
// execution against LocalComm, fault hooks and NIC-lane tracing.

#include "comm/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "comm/topology.hpp"
#include "mpisim/comm.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"

namespace accel = toast::accel;
namespace comm = toast::comm;
namespace fault = toast::fault;
namespace obs = toast::obs;
using toast::mpisim::LocalComm;

namespace {

/// Per-rank integer-valued buffers: the sums are exact in double no
/// matter which order an algorithm reduces in.
std::vector<std::vector<double>> rank_buffers(int ranks, std::size_t m) {
  std::vector<std::vector<double>> bufs(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& b = bufs[static_cast<std::size_t>(r)];
    b.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      b[i] = static_cast<double>((r + 1) * 1000) + static_cast<double>(i);
    }
  }
  return bufs;
}

fault::FaultPlan link_plan(double probability, double factor,
                           std::uint64_t seed = 7) {
  fault::FaultPlan plan;
  plan.seed = seed;
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kLinkDegrade;
  rule.probability = probability;
  rule.factor = factor;
  plan.rules.push_back(rule);
  return plan;
}

fault::FaultPlan chunk_plan(double probability, std::uint64_t seed = 7) {
  fault::FaultPlan plan;
  plan.seed = seed;
  // Generous retry budget so a moderate loss rate never turns persistent
  // (the persistent path has its own test with probability 1).
  plan.retry.max_attempts = 12;
  fault::FaultRule rule;
  rule.kind = fault::FaultKind::kChunkLoss;
  rule.probability = probability;
  plan.rules.push_back(rule);
  return plan;
}

}  // namespace

// --- topology ---------------------------------------------------------------

TEST(Topology, UniformLayoutIsCongestionFree) {
  const auto topo = comm::Topology::uniform(8);
  EXPECT_EQ(topo.n_ranks(), 8);
  EXPECT_EQ(topo.ranks_per_node(), 1);
  EXPECT_EQ(topo.n_nodes(), 8);
  EXPECT_EQ(topo.n_nics(), 8);
  EXPECT_TRUE(topo.congestion_free());
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(topo.node_of(r), r);
    EXPECT_EQ(topo.nic_of(r), r);
  }
  EXPECT_FALSE(topo.same_node(0, 1));
}

TEST(Topology, ClusterPacksRanksOntoSharedNics) {
  // Perlmutter-like: 16 ranks/node, 4 NICs each.
  const auto topo = comm::Topology::cluster(32, 16);
  EXPECT_EQ(topo.n_nodes(), 2);
  EXPECT_EQ(topo.nics_per_node(), 4);
  EXPECT_EQ(topo.n_nics(), 8);
  EXPECT_FALSE(topo.congestion_free());
  EXPECT_TRUE(topo.same_node(0, 15));
  EXPECT_FALSE(topo.same_node(15, 16));
  // Round-robin NIC assignment: ranks 0 and 4 share node 0's NIC 0.
  EXPECT_EQ(topo.nic_of(0), topo.nic_of(4));
  EXPECT_NE(topo.nic_of(0), topo.nic_of(1));
  EXPECT_EQ(topo.nic_of(16), 4);  // node 1's first NIC
  // Intra-node link is the faster one.
  EXPECT_LT(topo.step_seconds(0, 1, 1e6), topo.step_seconds(15, 16, 1e6));
}

TEST(Topology, ValidatesItsParameters) {
  EXPECT_THROW(comm::Topology::uniform(0), std::invalid_argument);
  EXPECT_THROW(comm::Topology::cluster(8, 0), std::invalid_argument);
  accel::NetworkSpec bad;
  bad.bandwidth = 0.0;
  EXPECT_THROW(comm::Topology::uniform(4, bad), std::invalid_argument);
  bad = {};
  bad.nics_per_node = 0;
  EXPECT_THROW(comm::Topology::cluster(8, 4, bad), std::invalid_argument);
}

TEST(Topology, ShrinkValidatesSurvivorSets) {
  const auto topo = comm::Topology::cluster(8, 4);
  // Count form: out-of-range counts are structured errors.
  EXPECT_THROW(topo.shrink(0), comm::TopologyError);
  EXPECT_THROW(topo.shrink(9), comm::TopologyError);
  EXPECT_EQ(topo.shrink(5).n_ranks(), 5);
  // Set form: empty, duplicate and out-of-range survivor ranks reject,
  // and the error names the offending rank.
  EXPECT_THROW(topo.shrink(std::vector<int>{}), comm::TopologyError);
  try {
    topo.shrink(std::vector<int>{0, 3, 3});
    FAIL() << "duplicate survivor rank must reject";
  } catch (const comm::TopologyError& e) {
    EXPECT_EQ(e.field(), "survivors");
    EXPECT_EQ(e.value(), 3);
  }
  try {
    topo.shrink(std::vector<int>{0, 8});
    FAIL() << "out-of-range survivor rank must reject";
  } catch (const comm::TopologyError& e) {
    EXPECT_EQ(e.field(), "survivors");
    EXPECT_EQ(e.value(), 8);
  }
  // A valid set re-packs densely: same packing, fewer ranks.
  const auto small = topo.shrink(std::vector<int>{0, 2, 5});
  EXPECT_EQ(small.n_ranks(), 3);
  EXPECT_EQ(small.ranks_per_node(), 4);
  // TopologyError still is-a std::invalid_argument for legacy catch sites.
  EXPECT_THROW(topo.shrink(0), std::invalid_argument);
}

// --- bitwise equivalence with the closed forms ------------------------------

TEST(EngineOracle, RingAllreduceEqualsCommModelBitwise) {
  const toast::mpisim::CommModel model;
  for (const int ranks : {2, 3, 4, 5, 8, 16, 32, 64, 128}) {
    const comm::Engine engine(comm::Topology::uniform(ranks));
    for (const double bytes : {8.0, 8.0e3, 1.0e6, 75497472.0}) {
      EXPECT_EQ(engine.allreduce_seconds(bytes, comm::Algorithm::kRing),
                model.allreduce_seconds(bytes, ranks))
          << "ranks=" << ranks << " bytes=" << bytes;
    }
  }
}

TEST(EngineOracle, BcastAndGatherEqualCommModelBitwise) {
  const toast::mpisim::CommModel model;
  for (const int ranks : {2, 3, 5, 8, 16, 64}) {
    const comm::Engine engine(comm::Topology::uniform(ranks));
    for (const double bytes : {8.0, 1.0e6, 75497472.0}) {
      EXPECT_EQ(engine.bcast_seconds(bytes), model.bcast_seconds(bytes, ranks))
          << "bcast ranks=" << ranks << " bytes=" << bytes;
      EXPECT_EQ(engine.gather_seconds(bytes),
                model.gather_seconds(bytes, ranks))
          << "gather ranks=" << ranks << " bytes=" << bytes;
    }
  }
}

TEST(EngineOracle, BoundariesMatchClosedFormZeros) {
  const comm::Engine engine(comm::Topology::uniform(1));
  EXPECT_EQ(engine.allreduce_seconds(1e6), 0.0);
  EXPECT_EQ(engine.bcast_seconds(1e6), 0.0);
  EXPECT_EQ(engine.gather_seconds(1e6), 0.0);
  const comm::Engine engine8(comm::Topology::uniform(8));
  EXPECT_EQ(engine8.allreduce_seconds(0.0), 0.0);
  EXPECT_EQ(engine8.allreduce_seconds(-4.0), 0.0);
}

TEST(EngineOracle, ScheduleIsDeterministic) {
  const comm::Engine engine(comm::Topology::cluster(32, 16));
  const auto dag = comm::ring_allreduce(32, 1.0e6);
  const auto a = engine.schedule(dag);
  const auto b = engine.schedule(dag);
  ASSERT_EQ(a.start.size(), b.start.size());
  for (std::size_t i = 0; i < a.start.size(); ++i) {
    EXPECT_EQ(a.start[i], b.start[i]);
    EXPECT_EQ(a.end[i], b.end[i]);
  }
  EXPECT_EQ(a.makespan, b.makespan);
}

// --- algorithm orderings ----------------------------------------------------

TEST(EngineAlgorithms, RecursiveHalvingBeatsRingLatency) {
  // Same bandwidth term, 2 log2(n) instead of 2(n-1) latency terms: the
  // recursive decomposition can never lose on a uniform topology.
  for (const int ranks : {4, 16, 64}) {
    const comm::Engine engine(comm::Topology::uniform(ranks));
    for (const double bytes : {8.0e3, 1.0e6, 75497472.0}) {
      EXPECT_LE(engine.allreduce_seconds(bytes, comm::Algorithm::kRecursive),
                engine.allreduce_seconds(bytes, comm::Algorithm::kRing))
          << "ranks=" << ranks << " bytes=" << bytes;
    }
  }
}

TEST(EngineAlgorithms, TreeWinsAtSmallMessages) {
  // 2 ceil(log2 n) rounds vs 2(n-1): latency-bound small messages favour
  // the tree once n > 2.
  for (const int ranks : {4, 16, 64}) {
    const comm::Engine engine(comm::Topology::uniform(ranks));
    EXPECT_LT(engine.allreduce_seconds(8.0, comm::Algorithm::kTree),
              engine.allreduce_seconds(8.0, comm::Algorithm::kRing))
        << "ranks=" << ranks;
    // ...and loses at bandwidth-bound large messages.
    EXPECT_GT(engine.allreduce_seconds(75497472.0, comm::Algorithm::kTree),
              engine.allreduce_seconds(75497472.0, comm::Algorithm::kRing))
        << "ranks=" << ranks;
  }
}

TEST(EngineAlgorithms, SharedNicsContendOnClusterTopology) {
  // Recursive halving's long-distance rounds leave every rank sending
  // inter-node at once; with 16 ranks sharing 4 NICs the lanes serialize
  // 4-deep, which the congestion-free uniform layout never sees.
  const double bytes = 75497472.0;
  const comm::Engine uniform(comm::Topology::uniform(64));
  const comm::Engine cluster(comm::Topology::cluster(64, 16));
  EXPECT_GT(cluster.allreduce_seconds(bytes, comm::Algorithm::kRecursive),
            uniform.allreduce_seconds(bytes, comm::Algorithm::kRecursive));
}

TEST(EngineAlgorithms, IntraNodeLinkIsFasterThanNic) {
  // All 8 ranks on one node: every step rides the shared-memory link.
  const comm::Engine packed(comm::Topology::cluster(8, 8));
  const comm::Engine spread(comm::Topology::uniform(8));
  EXPECT_LT(packed.allreduce_seconds(1.0e6, comm::Algorithm::kRing),
            spread.allreduce_seconds(1.0e6, comm::Algorithm::kRing));
}

// --- functional payloads ----------------------------------------------------

TEST(EnginePayload, AllreduceMatchesLocalCommForAllAlgorithms) {
  for (const int ranks : {2, 3, 4, 5, 8, 16}) {
    const std::size_t m = 37;  // deliberately not divisible by ranks
    const auto bufs = rank_buffers(ranks, m);
    const auto expected = LocalComm(ranks).allreduce_sum(bufs);
    const comm::Engine engine(comm::Topology::uniform(ranks));
    for (const auto alg :
         {comm::Algorithm::kRing, comm::Algorithm::kRecursive,
          comm::Algorithm::kTree}) {
      const auto out = engine.allreduce(bufs, alg);
      ASSERT_EQ(out.size(), bufs.size());
      for (int r = 0; r < ranks; ++r) {
        ASSERT_EQ(out[static_cast<std::size_t>(r)].size(), m);
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_EQ(out[static_cast<std::size_t>(r)][i], expected[i])
              << "alg=" << comm::to_string(alg) << " ranks=" << ranks
              << " rank=" << r << " i=" << i;
        }
      }
    }
  }
}

TEST(EnginePayload, ClusterTopologyDoesNotChangeValues) {
  const int ranks = 32;
  const auto bufs = rank_buffers(ranks, 16);
  const auto expected = LocalComm(ranks).allreduce_sum(bufs);
  const comm::Engine engine(comm::Topology::cluster(ranks, 16));
  const auto out = engine.allreduce(bufs, comm::Algorithm::kRecursive);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[31][i], expected[i]);
  }
}

TEST(EnginePayload, BcastCopiesRootEverywhere) {
  const int ranks = 5;
  auto bufs = rank_buffers(ranks, 9);
  const comm::Engine engine(comm::Topology::uniform(ranks));
  const auto out = engine.bcast(bufs);
  for (int r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(r)][i], bufs[0][i]);
    }
  }
}

TEST(EnginePayload, GatherConcatenatesRankBlocks) {
  const int ranks = 4;
  const std::size_t m = 3;
  const auto bufs = rank_buffers(ranks, m);
  const comm::Engine engine(comm::Topology::uniform(ranks));
  const auto out = engine.gather(bufs);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(ranks) * m);
  for (int r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(r) * m + i],
                bufs[static_cast<std::size_t>(r)][i]);
    }
  }
}

TEST(EnginePayload, ValidatesWorldShape) {
  const comm::Engine engine(comm::Topology::uniform(4));
  EXPECT_THROW(engine.allreduce(rank_buffers(3, 8)), std::invalid_argument);
  auto ragged = rank_buffers(4, 8);
  ragged[2].resize(5);
  EXPECT_THROW(engine.allreduce(ragged), std::invalid_argument);
}

TEST(EnginePayload, SingleRankIsIdentity) {
  const comm::Engine engine(comm::Topology::uniform(1));
  const auto bufs = rank_buffers(1, 4);
  const auto out = engine.allreduce(bufs);
  EXPECT_EQ(out[0], bufs[0]);
  EXPECT_EQ(engine.gather(bufs), bufs[0]);
}

// --- lane tracing -----------------------------------------------------------

TEST(EngineTrace, InterNodeStepsLandOnNicLanes) {
  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  const comm::Engine engine(comm::Topology::uniform(4));
  comm::RunOptions opt;
  opt.tracer = &tracer;
  opt.lane_base = 16;
  const double t = engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt);
  EXPECT_GT(t, 0.0);
  // 2(n-1) rounds x n ranks of chunk spans, all unlogged, on NIC lanes.
  int lane_spans = 0;
  for (const auto& s : tracer.spans()) {
    if (s.category != "comm") {
      continue;
    }
    EXPECT_FALSE(s.logged);
    EXPECT_GE(s.stream, 16);
    EXPECT_LT(s.stream, 16 + 4);
    EXPECT_EQ(s.name, "comm_allreduce_ring");
    EXPECT_GT(s.counters.count("bytes"), 0u);
    ++lane_spans;
  }
  EXPECT_EQ(lane_spans, 2 * 3 * 4);
  // TimeLog aggregation is untouched by the unlogged chunk spans.
  EXPECT_EQ(tracer.timelog().total_seconds(), 0.0);
}

TEST(EngineTrace, IntraNodeStepsTracedOnlyOnRequest) {
  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  const comm::Engine engine(comm::Topology::cluster(4, 4));  // one node
  comm::RunOptions opt;
  opt.tracer = &tracer;
  engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt);
  EXPECT_TRUE(tracer.spans().empty());
  opt.trace_intra = true;
  engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt);
  EXPECT_FALSE(tracer.spans().empty());
}

// --- fault hooks ------------------------------------------------------------

TEST(EngineFaults, ZeroFaultPlanIsBitForBitIdentical) {
  const comm::Engine engine(comm::Topology::cluster(32, 16));
  const double clean = engine.allreduce_seconds(1.0e6);

  fault::FaultInjector disarmed;  // empty plan: hooks are no-ops
  comm::RunOptions opt;
  opt.faults = &disarmed;
  EXPECT_EQ(engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt),
            clean);
  EXPECT_TRUE(disarmed.counters().empty());
}

TEST(EngineFaults, LinkDegradeSlowsDeterministically) {
  const comm::Engine engine(comm::Topology::uniform(8));
  const double clean = engine.allreduce_seconds(1.0e6);

  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  fault::FaultInjector inj_a(link_plan(0.5, 3.0), &clock, &tracer);
  comm::RunOptions opt;
  opt.faults = &inj_a;
  const double slow_a = engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing,
                                                 opt);
  EXPECT_GT(slow_a, clean);
  EXPECT_GT(inj_a.counters().at("fault_link_degrades"), 0.0);

  // Same seed, fresh injector: bit-identical makespan.
  fault::FaultInjector inj_b(link_plan(0.5, 3.0), &clock, &tracer);
  opt.faults = &inj_b;
  EXPECT_EQ(engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt),
            slow_a);
}

TEST(EngineFaults, ChunkLossChargesRetriesOnTheLanes) {
  const comm::Engine engine(comm::Topology::uniform(8));
  const double clean = engine.allreduce_seconds(1.0e6);

  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  fault::FaultInjector inj(chunk_plan(0.4), &clock, &tracer);
  comm::RunOptions opt;
  opt.faults = &inj;
  const double lossy =
      engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt);
  EXPECT_GT(lossy, clean);
  EXPECT_GT(inj.counters().at("fault_chunk_retries"), 0.0);
  // The retry spans are in the trace.
  bool saw_retry = false;
  for (const auto& s : tracer.spans()) {
    if (s.name == "fault_retry_chunk") {
      saw_retry = true;
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(EngineFaults, PersistentChunkLossThrows) {
  const comm::Engine engine(comm::Topology::uniform(4));
  accel::VirtualClock clock;
  obs::Tracer tracer(&clock);
  fault::FaultInjector inj(chunk_plan(1.0), &clock, &tracer);
  comm::RunOptions opt;
  opt.faults = &inj;
  EXPECT_THROW(engine.allreduce_seconds(1.0e6, comm::Algorithm::kRing, opt),
               fault::PersistentFaultError);
  EXPECT_GT(inj.counters().at("fault_persistent"), 0.0);
}

// --- step-at-a-time scheduling (the async runtime's cursor) -----------------

TEST(StepScheduler, IncrementalPlacementEqualsOneShot) {
  // place_next() one step at a time must land every step exactly where
  // Engine::schedule puts it — bitwise, on a contended cluster topology.
  const comm::Engine engine(comm::Topology::cluster(16, 8));
  const auto dag = comm::ring_allreduce(16, 1.0e6);
  comm::RunOptions opt;
  opt.epoch = 3.0;
  const auto oneshot = engine.schedule(dag, opt);

  comm::StepScheduler cursor(engine, dag, opt);
  std::vector<double> ends;
  while (!cursor.done()) {
    ends.push_back(cursor.place_next());
  }
  const auto placed = cursor.finish();
  ASSERT_EQ(placed.start.size(), oneshot.start.size());
  ASSERT_EQ(ends.size(), oneshot.end.size());
  for (std::size_t i = 0; i < placed.start.size(); ++i) {
    EXPECT_EQ(placed.start[i], oneshot.start[i]) << i;
    EXPECT_EQ(placed.end[i], oneshot.end[i]) << i;
    EXPECT_EQ(ends[i], oneshot.end[i]) << i;
  }
  EXPECT_EQ(placed.makespan, oneshot.makespan);
}

TEST(StepScheduler, IncrementalMatchesOneShotUnderFaults) {
  // The per-(kind, site) counter RNG streams give two fresh injectors of
  // the same plan identical draws, so incremental scheduling stays
  // bitwise even with link degradation and chunk retries in play.
  const comm::Engine engine(comm::Topology::uniform(8));
  const auto dag = comm::ring_allreduce(8, 1.0e6);
  auto plan = link_plan(0.5, 2.0);
  fault::FaultRule loss;
  loss.kind = fault::FaultKind::kChunkLoss;
  loss.probability = 0.3;
  plan.rules.push_back(loss);
  plan.retry.max_attempts = 12;

  accel::VirtualClock clock_a;
  obs::Tracer tracer_a(&clock_a);
  fault::FaultInjector inj_a(plan, &clock_a, &tracer_a);
  comm::RunOptions opt_a;
  opt_a.faults = &inj_a;
  const auto oneshot = engine.schedule(dag, opt_a);

  accel::VirtualClock clock_b;
  obs::Tracer tracer_b(&clock_b);
  fault::FaultInjector inj_b(plan, &clock_b, &tracer_b);
  comm::RunOptions opt_b;
  opt_b.faults = &inj_b;
  comm::StepScheduler cursor(engine, dag, opt_b);
  while (!cursor.done()) {
    cursor.place_next();
  }
  const auto placed = cursor.finish();

  ASSERT_EQ(placed.start.size(), oneshot.start.size());
  for (std::size_t i = 0; i < placed.start.size(); ++i) {
    EXPECT_EQ(placed.start[i], oneshot.start[i]) << i;
    EXPECT_EQ(placed.end[i], oneshot.end[i]) << i;
  }
  EXPECT_EQ(placed.makespan, oneshot.makespan);
  EXPECT_EQ(inj_a.counters().at("fault_chunk_retries"),
            inj_b.counters().at("fault_chunk_retries"));
}

// --- generic lane scheduler (sched::schedule_lanes) -------------------------

TEST(ScheduleLanes, SingleLaneChainIsTheSerialFold) {
  std::vector<toast::sched::LaneOp> ops(3);
  for (auto& op : ops) {
    op.seconds = 0.125;
    op.lanes = {0};
  }
  const auto placed = toast::sched::schedule_lanes(ops, 1.0);
  EXPECT_EQ(placed.start[0], 1.0);
  EXPECT_EQ(placed.end[2], ((1.0 + 0.125) + 0.125) + 0.125);
  EXPECT_EQ(placed.makespan, placed.end[2]);
}

TEST(ScheduleLanes, DisjointLanesRunConcurrently) {
  std::vector<toast::sched::LaneOp> ops(2);
  ops[0].seconds = 1.0;
  ops[0].lanes = {0, 3};
  ops[1].seconds = 2.0;
  ops[1].lanes = {1, 2};
  const auto placed = toast::sched::schedule_lanes(ops);
  EXPECT_EQ(placed.start[1], 0.0);
  EXPECT_EQ(placed.makespan, 2.0);
}

TEST(ScheduleLanes, DepsAndLeadDelayTheOp) {
  std::vector<toast::sched::LaneOp> ops(3);
  ops[0].seconds = 1.0;
  ops[0].lanes = {0};
  ops[1].seconds = 1.0;
  ops[1].lanes = {1};
  ops[1].deps = {0};
  ops[2].seconds = 1.0;
  ops[2].lanes = {1};
  ops[2].lead = 0.5;  // retry penalty ahead of the op on its lane
  const auto placed = toast::sched::schedule_lanes(ops);
  EXPECT_EQ(placed.start[1], 1.0);  // waits for dep, not its own lane
  EXPECT_EQ(placed.start[2], 2.5);
  EXPECT_EQ(placed.makespan, 3.5);
}

TEST(ScheduleLanes, RejectsMalformedOps) {
  std::vector<toast::sched::LaneOp> bad_lane(1);
  bad_lane[0].lanes = {-1};
  EXPECT_THROW(toast::sched::schedule_lanes(bad_lane), std::invalid_argument);
  std::vector<toast::sched::LaneOp> fwd_dep(1);
  fwd_dep[0].lanes = {0};
  fwd_dep[0].deps = {0};  // self/forward dep
  EXPECT_THROW(toast::sched::schedule_lanes(fwd_dep), std::invalid_argument);
}
