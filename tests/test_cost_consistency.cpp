// Cost-model consistency: the OpenMP-target kernels *declare* their
// per-iteration work (a performance engineer's reasoning), while the
// mini-XLA *counts* work from the executed graph.  The two estimates
// describe the same mathematics, so they must agree to within the
// factors the paper attributes to the frameworks themselves (padding,
// gathers, predication) - never by an order of magnitude.
//
// This pins the relative per-kernel behaviour of Figure 6 to mechanisms
// rather than to free parameters: if someone edits a declared IterCost
// or a graph, a divergence beyond the modelled overheads fails here.

#include <gtest/gtest.h>

#include <random>

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "qarray/qarray.hpp"

namespace core = toast::core;
namespace k = toast::kernels;
using core::Backend;
using core::Interval;

namespace {

struct Env {
  std::int64_t n_det = 4;
  std::int64_t n_samp = 2048;
  std::vector<Interval> intervals{{0, 700}, {750, 1500}, {1600, 2048}};
  std::vector<double> quats;
  std::vector<double> hwp;
  std::vector<double> pol_eff;
  std::vector<double> signal;

  Env() {
    std::mt19937 gen(7);
    std::normal_distribution<double> nd(0.0, 1.0);
    quats.resize(static_cast<std::size_t>(4 * n_det * n_samp));
    for (std::int64_t i = 0; i < n_det * n_samp; ++i) {
      const auto q =
          toast::qarray::normalize({nd(gen), nd(gen), nd(gen), nd(gen)});
      for (int c = 0; c < 4; ++c) {
        quats[static_cast<std::size_t>(4 * i + c)] =
            q[static_cast<std::size_t>(c)];
      }
    }
    hwp.resize(static_cast<std::size_t>(n_samp));
    for (auto& v : hwp) v = nd(gen);
    pol_eff.assign(static_cast<std::size_t>(n_det), 0.95);
    signal.resize(static_cast<std::size_t>(n_det * n_samp));
    for (auto& v : signal) v = nd(gen);
  }
};

core::ExecContext make_ctx(Backend b) {
  core::ExecConfig cfg;
  cfg.backend = b;
  return core::ExecContext(cfg);
}

/// flops per executed sample implied by a context's device counters.
struct Measured {
  double flops_per_iter;
  double bytes_per_iter;
};

}  // namespace

TEST(CostConsistency, StokesWeightsDeclaredVsCounted) {
  Env env;
  const double iters = static_cast<double>(
      env.n_det * k::total_interval_samples(env.intervals));

  // OMP declared cost: run and read back the work estimate.
  auto omp_ctx = make_ctx(Backend::kOmpTarget);
  std::vector<double> w_omp(static_cast<std::size_t>(3 * env.n_det * env.n_samp));
  k::omp::stokes_weights_iqu(env.quats.data(), env.hwp.data(),
                             env.pol_eff.data(), env.intervals, env.n_det,
                             env.n_samp, w_omp.data(), omp_ctx, true);
  const double omp_flops = 112.0;  // declared in the kernel

  // JAX counted cost: total flops of the executed graph over iterations
  // (includes padding and gather arithmetic).
  auto jax_ctx = make_ctx(Backend::kJax);
  std::vector<double> w_jax(w_omp.size());
  k::jax::stokes_weights_iqu(env.quats.data(), env.hwp.data(),
                             env.pol_eff.data(), env.intervals, env.n_det,
                             env.n_samp, w_jax.data(), jax_ctx);
  // Recover total flops from the device model: find it via the counters.
  // (exec seconds are compute-bound here, so flops = t * rate only up to
  // occupancy; instead re-derive from the padding ratio bound.)
  const double padding = k::padding_ratio(env.intervals);
  // The jax graph computes the same math plus index arithmetic, so its
  // per-iteration flop count must be within [1x, 3x] of the declaration
  // after removing the padding factor.
  // Use kernel_time proxy: both contexts ran the same device model.
  const double t_omp = omp_ctx.log().seconds("stokes_weights_IQU");
  const double t_jax = jax_ctx.log().seconds("stokes_weights_IQU");
  ASSERT_GT(t_omp, 0.0);
  ASSERT_GT(t_jax, 0.0);
  const double ratio = t_jax / t_omp / padding;
  EXPECT_GT(ratio, 0.5) << "jax unrealistically cheap vs declared cost";
  EXPECT_LT(ratio, 8.0) << "jax overhead beyond modelled mechanisms";
  (void)omp_flops;
  (void)iters;
}

TEST(CostConsistency, NoiseWeightIsMemoryBoundEverywhere) {
  Env env;
  const std::vector<double> det_w(static_cast<std::size_t>(env.n_det), 0.5);
  auto omp_ctx = make_ctx(Backend::kOmpTarget);
  auto jax_ctx = make_ctx(Backend::kJax);
  omp_ctx.omp().set_work_scale(1e6);
  jax_ctx.jax().set_work_scale(1e6);
  auto s1 = env.signal, s2 = env.signal;
  k::omp::noise_weight(det_w.data(), env.intervals, env.n_det, env.n_samp,
                       s1.data(), omp_ctx, true);
  k::jax::noise_weight(det_w.data(), env.intervals, env.n_det, env.n_samp,
                       s2.data(), jax_ctx);
  const double t_omp = omp_ctx.log().seconds("noise_weight");
  const double t_jax = jax_ctx.log().seconds("noise_weight");
  // Streaming kernel: jax pays padding + an extra gather stream, bounded
  // by ~4x of the omp time; never less than ~0.8x.
  EXPECT_GT(t_jax / t_omp, 0.8);
  EXPECT_LT(t_jax / t_omp, 4.0);
}

TEST(CostConsistency, PixelsHealpixDivergenceShowsOnBothPorts) {
  // The compute-dense kernels (branchy pixels_healpix, transcendental
  // stokes_weights) must show a much larger jax/omp gap than the
  // streaming noise_weight: predication + register pressure + gather
  // trains are compute-side costs, the mechanism behind Figure 6's
  // 41x-vs-11x and 61x-vs-18x splits.
  Env env;
  auto ratio_for = [&](auto run_omp, auto run_jax, const char* name) {
    auto omp_ctx = make_ctx(Backend::kOmpTarget);
    auto jax_ctx = make_ctx(Backend::kJax);
    omp_ctx.omp().set_work_scale(1e6);
    jax_ctx.jax().set_work_scale(1e6);
    run_omp(omp_ctx);
    run_jax(jax_ctx);
    return jax_ctx.log().seconds(name) / omp_ctx.log().seconds(name);
  };

  std::vector<std::int64_t> pix(static_cast<std::size_t>(env.n_det * env.n_samp));
  const double r_pixels = ratio_for(
      [&](core::ExecContext& c) {
        k::omp::pixels_healpix(env.quats.data(), nullptr, 0, 64, true,
                               env.intervals, env.n_det, env.n_samp,
                               pix.data(), c, true);
      },
      [&](core::ExecContext& c) {
        k::jax::pixels_healpix(env.quats.data(), nullptr, 0, 64, true,
                               env.intervals, env.n_det, env.n_samp,
                               pix.data(), c);
      },
      "pixels_healpix");

  std::vector<double> w(static_cast<std::size_t>(3 * env.n_det * env.n_samp));
  const double r_stokes = ratio_for(
      [&](core::ExecContext& c) {
        k::omp::stokes_weights_iqu(env.quats.data(), env.hwp.data(),
                                   env.pol_eff.data(), env.intervals,
                                   env.n_det, env.n_samp, w.data(), c, true);
      },
      [&](core::ExecContext& c) {
        k::jax::stokes_weights_iqu(env.quats.data(), env.hwp.data(),
                                   env.pol_eff.data(), env.intervals,
                                   env.n_det, env.n_samp, w.data(), c);
      },
      "stokes_weights_IQU");

  const std::vector<double> det_w(static_cast<std::size_t>(env.n_det), 0.5);
  std::vector<double> sig = env.signal;
  const double r_noise = ratio_for(
      [&](core::ExecContext& c) {
        k::omp::noise_weight(det_w.data(), env.intervals, env.n_det,
                             env.n_samp, sig.data(), c, true);
      },
      [&](core::ExecContext& c) {
        k::jax::noise_weight(det_w.data(), env.intervals, env.n_det,
                             env.n_samp, sig.data(), c);
      },
      "noise_weight");

  // Ordering: the compute-dense kernels lose more on JAX than the
  // streaming one, and all GPU-port gaps are bounded (no runaway
  // constants).
  EXPECT_GT(r_pixels, r_noise)
      << "the branchy kernel must favour OMP more than streaming";
  EXPECT_GT(r_stokes, r_noise)
      << "the trig kernel must favour OMP more than streaming";
  EXPECT_GT(r_pixels, 2.0);
  EXPECT_GT(r_stokes, 2.0);
  EXPECT_LT(r_pixels, 10.0);
  EXPECT_LT(r_stokes, 10.0);
}

TEST(CostConsistency, ProjectSignalCrossoverIsStructural) {
  // The crossover of Figure 6 must persist across step lengths and
  // interval layouts (it is the sorted-scatter lowering, not a tuned
  // constant).
  Env env;
  for (const std::int64_t step : {32, 128, 512}) {
    const std::int64_t n_amp_det = (env.n_samp + step - 1) / step;
    auto omp_ctx = make_ctx(Backend::kOmpTarget);
    auto jax_ctx = make_ctx(Backend::kJax);
    omp_ctx.omp().set_work_scale(1e6);
    jax_ctx.jax().set_work_scale(1e6);
    std::vector<double> a1(static_cast<std::size_t>(env.n_det * n_amp_det));
    auto a2 = a1;
    k::omp::template_offset_project_signal(
        step, env.signal.data(), env.intervals, env.n_det, env.n_samp,
        a1.data(), n_amp_det, omp_ctx, true);
    k::jax::template_offset_project_signal(
        step, env.signal.data(), env.intervals, env.n_det, env.n_samp,
        a2.data(), n_amp_det, jax_ctx);
    EXPECT_LT(jax_ctx.log().seconds("template_offset_project_signal"),
              omp_ctx.log().seconds("template_offset_project_signal"))
        << "step " << step;
  }
}
