// Tests for the mini OpenMP-target-offload runtime: memory pool, data
// environment (shadow-copy semantics), and the collapse(3) launch model.

#include "omptarget/runtime.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace accel = toast::accel;
namespace omp = toast::omptarget;

namespace {

struct Fixture {
  accel::SimDevice device;
  accel::VirtualClock clock;
  toast::obs::Tracer tracer{&clock};
  omp::Runtime rt{device, clock, tracer};
};

}  // namespace

TEST(DevicePool, SizeClasses) {
  EXPECT_EQ(omp::DevicePool::size_class(1), 64u);
  EXPECT_EQ(omp::DevicePool::size_class(64), 64u);
  EXPECT_EQ(omp::DevicePool::size_class(65), 128u);
  EXPECT_EQ(omp::DevicePool::size_class(1000), 1024u);
}

TEST(DevicePool, ReusesReleasedBlocks) {
  accel::SimDevice dev;
  omp::DevicePool pool(dev);
  double cost = 0.0;
  const auto a = pool.allocate(1000, cost);
  EXPECT_GT(cost, 0.0);  // first allocation is a raw omp_target_alloc
  EXPECT_EQ(pool.misses(), 1u);
  pool.release(a);
  const auto b = pool.allocate(900, cost);  // same 1024-byte class
  EXPECT_DOUBLE_EQ(cost, 0.0);              // pool hit
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(b.id, a.id);
}

TEST(DevicePool, TracksDeviceMemory) {
  accel::SimDevice dev;
  {
    omp::DevicePool pool(dev);
    double cost = 0.0;
    const auto a = pool.allocate(1 << 20, cost);
    EXPECT_EQ(dev.allocated_bytes(), std::size_t{1} << 20);
    pool.release(a);
    // Pool keeps the block (device memory still claimed).
    EXPECT_EQ(dev.allocated_bytes(), std::size_t{1} << 20);
    pool.release_all();
    EXPECT_EQ(dev.allocated_bytes(), 0u);
  }
}

TEST(DevicePool, DoubleReleaseIsHarmless) {
  accel::SimDevice dev;
  omp::DevicePool pool(dev);
  double cost = 0.0;
  const auto a = pool.allocate(128, cost);
  pool.release(a);
  pool.release(a);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
}

TEST(DevicePool, HighWaterMark) {
  accel::SimDevice dev;
  omp::DevicePool pool(dev);
  double cost = 0.0;
  const auto a = pool.allocate(1024, cost);
  const auto b = pool.allocate(2048, cost);
  EXPECT_EQ(pool.high_water_bytes(), 3072u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.high_water_bytes(), 3072u);
}

TEST(OmpTargetData, CreateUpdateDeleteRoundTrip) {
  Fixture f;
  std::vector<double> host(128, 1.5);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  EXPECT_TRUE(f.rt.data_present(host.data()));
  f.rt.data_update_device(host.data());

  double* dev = f.rt.device_ptr(host.data());
  ASSERT_NE(dev, nullptr);
  EXPECT_DOUBLE_EQ(dev[0], 1.5);
  dev[0] = 9.0;

  // Host copy untouched until update_host.
  EXPECT_DOUBLE_EQ(host[0], 1.5);
  f.rt.data_update_host(host.data());
  EXPECT_DOUBLE_EQ(host[0], 9.0);

  f.rt.data_delete(host.data());
  EXPECT_FALSE(f.rt.data_present(host.data()));
}

TEST(OmpTargetData, StaleShadowWithoutUpdate) {
  // Forgetting update_device leaves stale data on the device, like a real
  // offload bug.
  Fixture f;
  std::vector<double> host(8, 1.0);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  f.rt.data_update_device(host.data());
  host[0] = 42.0;  // modified on host only
  EXPECT_DOUBLE_EQ(f.rt.device_ptr(host.data())[0], 1.0);
}

TEST(OmpTargetData, UnmappedAccessThrows) {
  Fixture f;
  double x = 0.0;
  EXPECT_THROW(f.rt.device_ptr(&x), std::logic_error);
  EXPECT_THROW(f.rt.data_update_device(&x), std::logic_error);
  EXPECT_THROW(f.rt.data_update_host(&x), std::logic_error);
  EXPECT_THROW(f.rt.data_reset(&x), std::logic_error);
}

TEST(OmpTargetData, DoubleCreateThrows) {
  Fixture f;
  std::vector<double> host(8);
  f.rt.data_create(host.data(), 64);
  EXPECT_THROW(f.rt.data_create(host.data(), 64), std::logic_error);
}

TEST(OmpTargetData, ResetZeroesDeviceCopy) {
  Fixture f;
  std::vector<double> host(16, 3.0);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  f.rt.data_update_device(host.data());
  f.rt.data_reset(host.data());
  EXPECT_DOUBLE_EQ(f.rt.device_ptr(host.data())[5], 0.0);
  EXPECT_DOUBLE_EQ(host[5], 3.0);
  EXPECT_GT(f.tracer.seconds("accel_data_reset"), 0.0);
}

TEST(OmpTargetData, TransfersAdvanceClockAndLog) {
  Fixture f;
  std::vector<double> host(1 << 16, 1.0);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  const double t0 = f.clock.now();
  f.rt.data_update_device(host.data());
  EXPECT_GT(f.clock.now(), t0);
  EXPECT_GT(f.tracer.seconds("accel_data_update_device"), 0.0);
  EXPECT_EQ(f.tracer.calls("accel_data_update_device"), 1);
}

TEST(OmpTargetData, WorkScaleScalesTransfers) {
  Fixture a;
  Fixture b;
  b.rt.set_work_scale(1000.0);
  std::vector<double> host(1 << 14, 0.0);
  a.rt.data_create(host.data(), host.size() * sizeof(double));
  b.rt.data_create(host.data(), host.size() * sizeof(double));
  a.rt.data_update_device(host.data());
  b.rt.data_update_device(host.data());
  EXPECT_GT(b.tracer.seconds("accel_data_update_device"),
            100.0 * a.tracer.seconds("accel_data_update_device"));
}

TEST(OmpTargetAsync, TransfersHideBehindKernels) {
  // An async upload followed by enough kernel work costs nothing extra at
  // the synchronization point.
  Fixture f;
  f.rt.set_work_scale(1e6);
  std::vector<double> host(1 << 10, 1.0);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  f.rt.data_update_device_async(host.data());
  // Long kernel while the transfer is in flight (kernel time must exceed
  // the modelled transfer time for full overlap).
  omp::IterCost cost;
  cost.flops = 2000.0;
  cost.bytes_read = 64.0;
  f.rt.target_for("busy", 1 << 13, cost, [](std::int64_t) { return true; });
  const double before = f.clock.now();
  f.rt.wait_transfers();
  EXPECT_NEAR(f.clock.now(), before, 1e-12);
  // The device copy is nevertheless up to date.
  EXPECT_DOUBLE_EQ(f.rt.device_ptr(host.data())[0], 1.0);
}

TEST(OmpTargetAsync, ImmediateWaitPaysFullTransfer) {
  Fixture f;
  f.rt.set_work_scale(1e6);
  std::vector<double> host(1 << 12, 2.0);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  const double t_sync_ref = f.device.transfer_time(
      static_cast<double>(host.size() * sizeof(double)) * 1e6);
  f.rt.data_update_device_async(host.data());
  const double before = f.clock.now();
  f.rt.wait_transfers();
  EXPECT_NEAR(f.clock.now() - before, t_sync_ref, 1e-9);
  // A second wait is free.
  const double after = f.clock.now();
  f.rt.wait_transfers();
  EXPECT_DOUBLE_EQ(f.clock.now(), after);
}

TEST(OmpTargetAsync, TransfersSerializeOnTheLink) {
  Fixture f;
  f.rt.set_work_scale(1e6);
  std::vector<double> a(1 << 12, 1.0), b(1 << 12, 2.0);
  f.rt.data_create(a.data(), a.size() * sizeof(double));
  f.rt.data_create(b.data(), b.size() * sizeof(double));
  const double t_one = f.device.transfer_time(
      static_cast<double>(a.size() * sizeof(double)) * 1e6);
  f.rt.data_update_device_async(a.data());
  f.rt.data_update_device_async(b.data());
  const double before = f.clock.now();
  f.rt.wait_transfers();
  EXPECT_NEAR(f.clock.now() - before, 2.0 * t_one, 1e-6);
}

TEST(OmpTargetAsync, UnmappedAsyncThrows) {
  Fixture f;
  double x = 0.0;
  EXPECT_THROW(f.rt.data_update_device_async(&x), std::logic_error);
  EXPECT_THROW(f.rt.data_update_host_async(&x), std::logic_error);
}

TEST(OmpTargetAsync, NowaitLaunchReturnsAfterDispatch) {
  // A nowait region costs the host only the submission; the kernel body
  // runs on its stream until a synchronization point.
  Fixture f;
  f.rt.set_work_scale(1e6);
  omp::IterCost cost;
  cost.flops = 2000.0;
  cost.bytes_read = 64.0;
  omp::LaunchOptions nowait;
  nowait.nowait = true;
  const double t0 = f.clock.now();
  const auto w = f.rt.target_for("k", 1 << 13, cost,
                                 [](std::int64_t) { return true; }, nowait);
  EXPECT_DOUBLE_EQ(f.clock.now() - t0, f.rt.dispatch_overhead());
  const double body = f.device.exec_time(w);
  f.rt.sync_all();
  EXPECT_NEAR(f.clock.now() - t0, f.rt.dispatch_overhead() + body, 1e-12);
  EXPECT_GT(f.tracer.seconds("accel_device_wait"), 0.0);
}

TEST(OmpTargetAsync, DependsOrdersKernelAfterTransfer) {
  // depend(in: buf) on a nowait region: the kernel waits for the async
  // upload even though they sit on different streams.
  Fixture f;
  f.rt.set_work_scale(1e6);
  std::vector<double> host(1 << 12, 1.0);
  f.rt.data_create(host.data(), host.size() * sizeof(double));
  f.rt.data_update_device_async(host.data(), /*stream=*/0);
  const auto ev = f.rt.record_event(0);

  omp::IterCost cost;
  cost.flops = 10.0;
  omp::LaunchOptions opts;
  opts.nowait = true;
  opts.stream = 1;
  opts.depends = {ev};
  f.rt.target_for("consume", 64, cost, [](std::int64_t) { return true; },
                  opts);
  const auto& ops = f.rt.scheduler().ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_GE(ops[1].start, ops[0].end);

  // Without the depend clause the kernel starts immediately.
  Fixture g;
  g.rt.set_work_scale(1e6);
  g.rt.data_create(host.data(), host.size() * sizeof(double));
  g.rt.data_update_device_async(host.data(), /*stream=*/0);
  omp::LaunchOptions free_opts;
  free_opts.nowait = true;
  free_opts.stream = 1;
  const double dispatched = g.clock.now() + g.rt.dispatch_overhead();
  g.rt.target_for("consume", 64, cost, [](std::int64_t) { return true; },
                  free_opts);
  EXPECT_DOUBLE_EQ(g.rt.scheduler().ops()[1].start, dispatched);
}

TEST(OmpTargetAsync, StreamedPipelineBeatsTheSerialOne) {
  // The bench_overlap shape in miniature: H2D + nowait kernel per chunk,
  // round-robin over two streams, versus the same ops one stream.
  const auto pipeline = [](int n_streams) {
    Fixture f;
    f.rt.set_work_scale(1e6);
    f.rt.set_dispatch_overhead(0.0);
    std::vector<std::vector<double>> chunks(4,
                                            std::vector<double>(1 << 10, 1.0));
    omp::IterCost cost;
    cost.flops = 100.0;
    cost.bytes_read = 64.0;
    for (int i = 0; i < 4; ++i) {
      auto& c = chunks[static_cast<std::size_t>(i)];
      f.rt.data_create(c.data(), c.size() * sizeof(double));
      const toast::sched::StreamId s = i % n_streams;
      f.rt.data_update_device_async(c.data(), s);
      omp::LaunchOptions opts;
      opts.nowait = true;
      opts.stream = s;
      f.rt.target_for("chunk", 1 << 10, cost,
                      [](std::int64_t) { return true; }, opts);
    }
    f.rt.sync_all();
    return f.clock.now();
  };
  EXPECT_LT(pipeline(2), pipeline(1));
}

TEST(OmpTargetLaunch, ExecutesFullIndexSpace) {
  Fixture f;
  const std::int64_t na = 3, nb = 4, nc = 5;
  std::vector<int> hits(static_cast<std::size_t>(na * nb * nc), 0);
  omp::IterCost cost;
  cost.flops = 1.0;
  f.rt.target_for_collapse3("k", na, nb, nc, cost,
                            [&](std::int64_t a, std::int64_t b,
                                std::int64_t c) {
                              hits[static_cast<std::size_t>(
                                  (a * nb + b) * nc + c)]++;
                              return true;
                            });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(OmpTargetLaunch, GuardCutIterationsChargeOnlyGuard) {
  Fixture f;
  omp::IterCost cost;
  cost.flops = 100.0;
  cost.guard_flops = 2.0;
  // Half the iterations are cut by the guard.
  const auto w = f.rt.target_for(
      "k", 1000, cost, [](std::int64_t i) { return i < 500; });
  EXPECT_DOUBLE_EQ(w.flops, 500.0 * 100.0 + 500.0 * 2.0);
  EXPECT_DOUBLE_EQ(w.parallel_items, 1000.0);
}

TEST(OmpTargetLaunch, OneLaunchPerTargetRegion) {
  Fixture f;
  omp::IterCost cost;
  cost.flops = 1.0;
  f.rt.target_for("a", 10, cost, [](std::int64_t) { return true; });
  f.rt.target_for("a", 10, cost, [](std::int64_t) { return true; });
  f.rt.target_for("b", 10, cost, [](std::int64_t) { return true; });
  EXPECT_EQ(f.device.total_launches(), 3u);
  EXPECT_EQ(f.tracer.calls("a"), 2);
  EXPECT_EQ(f.tracer.calls("b"), 1);
}

TEST(OmpTargetLaunch, DispatchOverheadBoundsSmallKernels) {
  Fixture f;
  omp::IterCost cost;
  cost.flops = 1.0;
  const double t0 = f.clock.now();
  f.rt.target_for("k", 1, cost, [](std::int64_t) { return true; });
  EXPECT_GE(f.clock.now() - t0, f.rt.dispatch_overhead());
}

TEST(OmpTargetLaunch, WorkScaleMultipliesWork) {
  Fixture f;
  f.rt.set_work_scale(1e6);
  omp::IterCost cost;
  cost.flops = 10.0;
  cost.bytes_read = 8.0;
  const auto w = f.rt.target_for("k", 100, cost,
                                 [](std::int64_t) { return true; });
  EXPECT_DOUBLE_EQ(w.flops, 10.0 * 100.0 * 1e6);
  EXPECT_DOUBLE_EQ(w.bytes_read, 8.0 * 100.0 * 1e6);
  EXPECT_DOUBLE_EQ(w.launches, 1.0);
}
