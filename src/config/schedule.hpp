#pragma once

// The unified schedule-space configuration (docs/MODEL.md §12).
//
// Every scheduling knob the stack grew — backend slot, staging strategy,
// prefetch/evict plan options, stream count, comm algorithm + chunk size,
// solver async-comm mode, ranks×threads shape, MPS/preallocate device
// flags — used to live in a different layer's struct (mpisim::JobConfig,
// core::PlanOptions, solver::DestriperConfig, comm::Algorithm, sched
// stream counts).  ScheduleConfig is the one typed, serializable artifact
// those layers now consume: mpisim builds its job from it, the pipeline
// keys its plan cache off its hash, the exec context applies its stream
// count to both backend runtimes, the comm engine takes its algorithm and
// chunk bound, and the destriper its comm view.  The autotuner
// (src/tune/) searches this space and emits winners as reusable
// "toastcase-schedule-v1" JSON.
//
// JSON schema "toastcase-schedule-v1" (parse/load_file; every key is
// optional and defaults to the value a default-constructed config holds,
// which is bit-for-bit the pre-refactor behaviour):
//
// {
//   "schema": "toastcase-schedule-v1",
//   "backend": "cpu",                       // manifest slot name
//   "staging": {"mode": "pipelined", "prefetch": false, "evict": false},
//   "streams": 1,
//   "comm": {"mode": "model", "algorithm": "ring", "chunk_bytes": 0},
//   "solver": {"async_comm": "staged"},
//   "shape": {"nodes": 0, "procs_per_node": 0},   // 0 = workload default
//   "device": {"mps": true, "jax_preallocate": false}
// }
//
// Parsing is strict, like the fault-plan and resilience-policy schemas:
// unknown keys anywhere in the document are rejected (a typo must not
// silently become a default).

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/types.hpp"
#include "obs/json.hpp"

namespace toast::config {

/// Device-staging strategy of the pipeline (paper §3.2.2).
enum class Staging {
  kPipelined,  ///< keep data resident across operator sequences (default)
  kNaive,      ///< transfer in/out around every accelerated operator
};

/// How job-level collectives are costed.
enum class CommMode {
  kModel,   ///< closed-form CommModel (the seed behaviour)
  kEngine,  ///< step-scheduled comm::Engine on the cluster topology
};

/// Collective decomposition algorithm.
enum class CommAlgorithm {
  kRing,       ///< ring allreduce (reduce-scatter ring + all-gather ring)
  kRecursive,  ///< recursive halving/doubling (power-of-two ranks)
  kTree,       ///< binomial tree (reduce to root + broadcast)
};

/// Solver collective scheduling mode (docs/MODEL.md §11).
enum class SolverComm {
  kStaged,   ///< blocking charge at the call site (historical behaviour)
  kSync,     ///< async engine, serial mode (the bitwise oracle)
  kOverlap,  ///< depth-1 pipelined CG collectives
};

const char* to_string(Staging s);
const char* to_string(CommMode m);
const char* to_string(CommAlgorithm a);
const char* to_string(SolverComm c);
Staging staging_from_string(const std::string& s);
CommMode comm_mode_from_string(const std::string& s);
CommAlgorithm comm_algorithm_from_string(const std::string& s);
SolverComm solver_comm_from_string(const std::string& s);

/// Pipeline staging axis: strategy plus the two plan options.
struct StagingConfig {
  Staging mode = Staging::kPipelined;
  /// Overlap the next operator's uploads with compute (plan prefetch).
  bool prefetch = false;
  /// Emit liveness-driven evictions of dead device intermediates.
  bool evict = false;

  bool operator==(const StagingConfig&) const = default;
};

/// Collective-communication axis.
struct CommConfig {
  CommMode mode = CommMode::kModel;
  CommAlgorithm algorithm = CommAlgorithm::kRing;
  /// Upper bound on the wire bytes of one engine step; larger steps are
  /// split into sequential sub-steps.  0 = the algorithm's natural chunk
  /// size (bit-for-bit the pre-knob schedule).
  double chunk_bytes = 0.0;

  bool operator==(const CommConfig&) const = default;
};

/// Solver collective-scheduling axis.
struct SolverConfig {
  SolverComm async_comm = SolverComm::kStaged;

  bool operator==(const SolverConfig&) const = default;
};

/// Ranks×threads shape override.  0 keeps the workload's own value; a
/// positive procs_per_node re-partitions the node (threads-per-proc
/// follows from the fixed core count).
struct ShapeConfig {
  int nodes = 0;
  int procs_per_node = 0;

  bool operator==(const ShapeConfig&) const = default;
};

/// Device-sharing axis.
struct DeviceConfig {
  /// NVIDIA MPS (required for oversubscription, paper §3.1.2).
  bool mps = true;
  /// JAX device-memory pool preallocation (paper §3.1.3).
  bool jax_preallocate = false;

  bool operator==(const DeviceConfig&) const = default;
};

struct ScheduleConfig {
  /// Backend manifest slot name ("cpu", "omp-target", "jax", "jax-cpu",
  /// "jax-compiled").
  std::string backend = "cpu";
  StagingConfig staging;
  /// Device stream count both backend runtimes schedule on.
  int streams = 1;
  CommConfig comm;
  SolverConfig solver;
  ShapeConfig shape;
  DeviceConfig device;

  bool operator==(const ScheduleConfig&) const = default;

  /// Resolved core enum of the backend slot; throws std::runtime_error
  /// when the slot name is not in the manifest.
  core::Backend backend_id() const;
  /// Set the slot from the core enum (manifest display name).
  void set_backend(core::Backend b);

  /// Canonical serialization (stable key order, %.17g numbers): equal
  /// configs serialize identically, so the hash and the plan-cache keys
  /// derived from it are stable across runs and platforms.
  std::string json() const;
  void write_json(std::ostream& out) const;
  void save_file(const std::string& path) const;

  /// FNV-1a over the canonical serialization.
  std::uint64_t hash() const;
  /// hash() as fixed-width hex (plan-cache key prefix, bench artifacts).
  std::string hash_hex() const;

  /// Parse a "toastcase-schedule-v1" document; throws std::runtime_error
  /// on malformed input or unknown keys at any nesting level.
  static ScheduleConfig parse(const std::string& text);
  static ScheduleConfig load_file(const std::string& path);
  /// Parse an already-decoded JSON value (e.g. a schedule nested inside
  /// a larger document); `where` prefixes every error message.
  static ScheduleConfig from_value(const obs::json::Value& doc,
                                   const std::string& where);
};

}  // namespace toast::config
