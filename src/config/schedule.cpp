#include "config/schedule.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "backend/manifest.hpp"
#include "obs/json.hpp"

namespace toast::config {

const char* to_string(Staging s) {
  switch (s) {
    case Staging::kPipelined:
      return "pipelined";
    case Staging::kNaive:
      return "naive";
  }
  return "unknown";
}

const char* to_string(CommMode m) {
  switch (m) {
    case CommMode::kModel:
      return "model";
    case CommMode::kEngine:
      return "engine";
  }
  return "unknown";
}

const char* to_string(CommAlgorithm a) {
  switch (a) {
    case CommAlgorithm::kRing:
      return "ring";
    case CommAlgorithm::kRecursive:
      return "recursive";
    case CommAlgorithm::kTree:
      return "tree";
  }
  return "unknown";
}

const char* to_string(SolverComm c) {
  switch (c) {
    case SolverComm::kStaged:
      return "staged";
    case SolverComm::kSync:
      return "sync";
    case SolverComm::kOverlap:
      return "overlap";
  }
  return "unknown";
}

Staging staging_from_string(const std::string& s) {
  if (s == "pipelined") return Staging::kPipelined;
  if (s == "naive") return Staging::kNaive;
  throw std::runtime_error("unknown staging mode: " + s);
}

CommMode comm_mode_from_string(const std::string& s) {
  if (s == "model") return CommMode::kModel;
  if (s == "engine") return CommMode::kEngine;
  throw std::runtime_error("unknown comm mode: " + s);
}

CommAlgorithm comm_algorithm_from_string(const std::string& s) {
  if (s == "ring") return CommAlgorithm::kRing;
  if (s == "recursive") return CommAlgorithm::kRecursive;
  if (s == "tree") return CommAlgorithm::kTree;
  throw std::runtime_error("unknown comm algorithm: " + s);
}

SolverComm solver_comm_from_string(const std::string& s) {
  if (s == "staged") return SolverComm::kStaged;
  if (s == "sync") return SolverComm::kSync;
  if (s == "overlap") return SolverComm::kOverlap;
  throw std::runtime_error("unknown solver async-comm mode: " + s);
}

core::Backend ScheduleConfig::backend_id() const {
  for (std::size_t i = 0; i < backend::backend_count; ++i) {
    if (backend == backend::name_of(i)) {
      return backend::id_of(i);
    }
  }
  throw std::runtime_error("schedule config: unknown backend slot '" +
                           backend + "'");
}

void ScheduleConfig::set_backend(core::Backend b) {
  const std::size_t idx = backend::index_of(b);
  if (idx == backend::npos) {
    throw std::runtime_error("schedule config: backend not in manifest");
  }
  backend = backend::name_of(idx);
}

namespace {

/// %.17g like the bench JsonWriter: round-trips doubles exactly, so the
/// canonical serialization (and the hash over it) is stable.
std::string fmt_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void ScheduleConfig::write_json(std::ostream& out) const {
  out << "{\"schema\":\"toastcase-schedule-v1\""
      << ",\"backend\":\"" << obs::json::escape(backend) << "\""
      << ",\"staging\":{\"mode\":\"" << to_string(staging.mode) << "\""
      << ",\"prefetch\":" << (staging.prefetch ? "true" : "false")
      << ",\"evict\":" << (staging.evict ? "true" : "false") << "}"
      << ",\"streams\":" << streams
      << ",\"comm\":{\"mode\":\"" << to_string(comm.mode) << "\""
      << ",\"algorithm\":\"" << to_string(comm.algorithm) << "\""
      << ",\"chunk_bytes\":" << fmt_number(comm.chunk_bytes) << "}"
      << ",\"solver\":{\"async_comm\":\"" << to_string(solver.async_comm)
      << "\"}"
      << ",\"shape\":{\"nodes\":" << shape.nodes
      << ",\"procs_per_node\":" << shape.procs_per_node << "}"
      << ",\"device\":{\"mps\":" << (device.mps ? "true" : "false")
      << ",\"jax_preallocate\":"
      << (device.jax_preallocate ? "true" : "false") << "}}";
}

std::string ScheduleConfig::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void ScheduleConfig::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  write_json(out);
  out << "\n";
}

std::uint64_t ScheduleConfig::hash() const {
  // FNV-1a over the canonical serialization.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : json()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string ScheduleConfig::hash_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash()));
  return buf;
}

namespace {

using obs::json::Value;

void reject_unknown_keys(const Value& v, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, member] : v.object) {
    (void)member;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(where + ": unknown key '" + key + "'");
    }
  }
}

std::string string_at(const Value& v, const char* key,
                      const std::string& fallback) {
  const Value* m = v.find(key);
  return m != nullptr && m->is_string() ? m->string : fallback;
}

bool bool_at(const Value& v, const char* key, bool fallback) {
  const Value* m = v.find(key);
  return m != nullptr ? m->boolean : fallback;
}

ScheduleConfig config_from_value(const Value& doc, const std::string& where) {
  if (!doc.is_object()) {
    throw std::runtime_error(where + ": schedule config must be an object");
  }
  const Value* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "toastcase-schedule-v1") {
    throw std::runtime_error(where +
                             ": expected schema toastcase-schedule-v1");
  }
  reject_unknown_keys(doc, where,
                      {"schema", "backend", "staging", "streams", "comm",
                       "solver", "shape", "device"});

  ScheduleConfig cfg;
  cfg.backend = string_at(doc, "backend", cfg.backend);
  // Resolve eagerly so a bad slot name fails at parse time, not at use.
  (void)cfg.backend_id();
  if (const Value* staging = doc.find("staging")) {
    reject_unknown_keys(*staging, where + ": staging",
                        {"mode", "prefetch", "evict"});
    cfg.staging.mode = staging_from_string(
        string_at(*staging, "mode", to_string(cfg.staging.mode)));
    cfg.staging.prefetch = bool_at(*staging, "prefetch", false);
    cfg.staging.evict = bool_at(*staging, "evict", false);
  }
  cfg.streams = static_cast<int>(doc.number_or("streams", 1.0));
  if (cfg.streams < 1) {
    throw std::runtime_error(where + ": streams must be >= 1");
  }
  if (const Value* comm = doc.find("comm")) {
    reject_unknown_keys(*comm, where + ": comm",
                        {"mode", "algorithm", "chunk_bytes"});
    cfg.comm.mode = comm_mode_from_string(
        string_at(*comm, "mode", to_string(cfg.comm.mode)));
    cfg.comm.algorithm = comm_algorithm_from_string(
        string_at(*comm, "algorithm", to_string(cfg.comm.algorithm)));
    cfg.comm.chunk_bytes = comm->number_or("chunk_bytes", 0.0);
    if (cfg.comm.chunk_bytes < 0.0) {
      throw std::runtime_error(where + ": comm chunk_bytes must be >= 0");
    }
  }
  if (const Value* solver = doc.find("solver")) {
    reject_unknown_keys(*solver, where + ": solver", {"async_comm"});
    cfg.solver.async_comm = solver_comm_from_string(
        string_at(*solver, "async_comm", to_string(cfg.solver.async_comm)));
  }
  if (const Value* shape = doc.find("shape")) {
    reject_unknown_keys(*shape, where + ": shape",
                        {"nodes", "procs_per_node"});
    cfg.shape.nodes = static_cast<int>(shape->number_or("nodes", 0.0));
    cfg.shape.procs_per_node =
        static_cast<int>(shape->number_or("procs_per_node", 0.0));
    if (cfg.shape.nodes < 0 || cfg.shape.procs_per_node < 0) {
      throw std::runtime_error(where + ": shape values must be >= 0");
    }
  }
  if (const Value* device = doc.find("device")) {
    reject_unknown_keys(*device, where + ": device",
                        {"mps", "jax_preallocate"});
    cfg.device.mps = bool_at(*device, "mps", true);
    cfg.device.jax_preallocate = bool_at(*device, "jax_preallocate", false);
  }
  return cfg;
}

}  // namespace

ScheduleConfig ScheduleConfig::parse(const std::string& text) {
  return config_from_value(Value::parse(text), "schedule config");
}

ScheduleConfig ScheduleConfig::load_file(const std::string& path) {
  return config_from_value(obs::json::load_file(path), path);
}

ScheduleConfig ScheduleConfig::from_value(const obs::json::Value& doc,
                                          const std::string& where) {
  return config_from_value(doc, where);
}

}  // namespace toast::config
