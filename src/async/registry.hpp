#pragma once

// Dependency derivation for the task graph (docs/MODEL.md §11).
//
// Producers declare which named resources a task reads or writes; the
// registry keeps a per-resource version table {last_writer, readers,
// epoch} and derives the task's data dependencies from it:
//   read  after write  (RAW): depend on the last writer;
//   write after write  (WAW): depend on the last writer;
//   write after read   (WAR): depend on every reader since that write.
// A write retires the reader list and bumps the resource epoch — the
// version number Futures pin (future.hpp).  Dependency lists come out
// sorted and deduplicated, so graph construction is deterministic for
// a given submission order.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "async/task.hpp"

namespace toast::async {

struct ResourceUse {
  std::string name;
  bool write = false;
};

inline ResourceUse reads(std::string name) { return {std::move(name), false}; }
inline ResourceUse writes(std::string name) { return {std::move(name), true}; }

class TaskRegistry {
 public:
  explicit TaskRegistry(TaskGraph& graph) : graph_(graph) {}

  /// Append `t` to the graph, deriving its deps from `uses` against the
  /// version table, and commit the uses.  Returns the task id.
  int add(Task t, const std::vector<ResourceUse>& uses);

  /// Append a patch task to alt_tasks.  Patches run driver-ordered on
  /// the serial host lane, so no dependencies are derived and the
  /// version table is untouched (the patch replaces a body that never
  /// committed).  Returns the alt index.
  int add_alt(Task t);

  /// Current version of a resource (0: never written).
  std::int64_t epoch_of(const std::string& resource) const;

 private:
  struct Res {
    int last_writer = -1;
    std::vector<int> readers;  ///< readers since the last write
    std::int64_t epoch = 0;
  };

  TaskGraph& graph_;
  std::map<std::string, Res> res_;
};

}  // namespace toast::async
