#pragma once

// Deterministic async task engine (docs/MODEL.md §11).
//
// One runtime, two faces, one virtual clock:
//
//  - run(TaskGraph&): execute a lowered pipeline graph.  The serial
//    schedule visits tasks in id order inside each group's driver
//    ranges — by construction the exact step order of staged replay
//    (core::execute_plan), so products, TimeLog and final clock are
//    bitwise identical, including when a group faults and re-routes to
//    its patch tasks.  The report then computes what the dependency
//    structure would allow: critical path over the data deps, lane
//    busy time, achievable overlap.  In Mode::kOverlap the same driver
//    runs in the same functional order (products, TimeLog and fault
//    decisions stay bit-for-bit the serial run), then the executed
//    tasks are re-timed against the dependency structure and the clock
//    lands on the placed makespan — pipeline graph runs overlap whole
//    jobs without changing a single science bit.
//
//  - submit()/await(): incremental dataflow for ad-hoc work (the
//    destriper's pipelined CG).  In Mode::kSerial a submit charges the
//    clock immediately — bit-for-bit what the blocking code did.  In
//    Mode::kOverlap a submit places the task on its lane at
//    max(now, lane ready, dep futures ready) and only await() advances
//    the clock, charging the remaining slack as an explicit "wait"
//    span — latency the caller failed to hide.
//
// Determinism: placement is a pure fold over submission order (the
// fixed tie-break is task id, i.e. submission order); costs are pure
// functions of the start time; no wall clock, no randomness.  Replays
// are bitwise.

#include <array>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "async/future.hpp"
#include "async/task.hpp"
#include "obs/trace.hpp"

namespace toast::async {

enum class Mode {
  kSerial,   ///< bitwise oracle: submit == charge immediately
  kOverlap,  ///< dataflow: submit places, await charges slack
};

struct Options {
  Mode mode = Mode::kSerial;
  /// First Tracer stream id for engine lanes (clear of the sched
  /// stream ids, which start at 0).
  int lane_base = 32;
  /// Emit per-task structural spans on their lane during graph runs
  /// (trace-only; never enters the TimeLog).
  bool trace_tasks = true;
};

/// Cost of a task as a pure function of its start time (virtual
/// seconds).  Purity is what makes overlap placement replayable.
using CostFn = std::function<double(double start)>;

struct LaneStat {
  std::string name;
  int tasks = 0;
  double busy_s = 0.0;
};

struct GraphReport {
  int n_tasks = 0;   ///< tasks executed (including patch tasks)
  int n_groups = 0;
  int patched = 0;   ///< groups re-routed to their patch
  std::array<int, kNumTaskKinds> by_kind{};
  double total_busy_s = 0.0;      ///< sum of executed task durations
  double makespan_s = 0.0;        ///< clock delta across the run
  double critical_path_s = 0.0;   ///< longest data-dep chain
  /// 1 - critical/busy: the fraction of busy time the dependency
  /// structure allows off the critical path (0 = fully serial).
  double overlap_fraction = 0.0;
  std::vector<LaneStat> lanes;

  /// Fold another observation's report into this one (serial
  /// composition: busy/makespan/critical path add, counts add).
  void merge(const GraphReport& other);
};

/// Dump "toastcase-tasks-v1" JSON: the report plus every executed
/// task with kind/lane/start/seconds/deps (toast-trace tasks reads
/// this).
void write_tasks_json(std::ostream& out, const TaskGraph& graph,
                      const GraphReport& report);

class Engine {
 public:
  Engine(accel::VirtualClock& clock, obs::Tracer* tracer,
         Options opt = {});

  Mode mode() const { return opt_.mode; }

  // --- incremental face -------------------------------------------------

  /// Find-or-create a named lane; names the tracer stream on creation.
  int lane(const std::string& name);

  /// Submit one task.  Serial: charge now (bitwise equal to the
  /// blocking call).  Overlap: place at max(now, lane ready, deps
  /// ready) without advancing the clock.
  Future submit(int lane, const std::string& name,
                const std::string& category, const CostFn& cost,
                const std::vector<Future>& deps = {});

  /// Block on a future: advance the clock to its ready time, charging
  /// the slack as a logged "wait" span named `label`.  No-op (returns
  /// 0) when the future already resolved.
  double await(const Future& f, const std::string& label);

  /// Block on every lane (checkpoint barriers, end of solve).
  double drain(const std::string& label);

  /// Cancel every in-flight placement: a real graph edit, not a wait.
  /// Lane ready times roll back to now and submitted ends after now are
  /// marked done, so no slack is ever charged for the cancelled work —
  /// the tasks will be re-submitted by the recovery path (requeue).
  /// Callers must invalidate any Futures they still hold for them.
  /// Returns the number of cancelled tasks (always 0 in serial mode,
  /// where nothing is ever in flight).
  int cancel_pending(const std::string& label);

  /// Submitted tasks whose completion lies after the current clock.
  int pending_count() const;

  // --- graph face -------------------------------------------------------

  /// Execute a lowered pipeline graph.  Serial mode is the bitwise
  /// oracle (see file comment).  Overlap mode runs the *same* driver in
  /// the same functional order — products, TimeLog and every fault
  /// decision are bit-for-bit the serial run — then re-times the
  /// executed tasks against the dependency structure (a task starts at
  /// max(lane ready, deps' placed ends); patch ranges are placement
  /// barriers because recovery serializes) and advances the clock by
  /// the placed makespan instead of the serial sum.  Task `start`
  /// fields and the structural trace spans carry the placed times.
  GraphReport run(TaskGraph& graph);

 private:
  /// One executed-task record in driver order (overlap re-timing).
  struct ExecRecord {
    bool alt = false;      ///< task lives in graph.alt_tasks
    bool barrier = false;  ///< recovery point: serialize placement
    int index = 0;
  };

  void run_task(Task& t, bool recovering);
  void run_range(std::vector<Task>& tasks, int begin, int end,
                 bool recovering, bool alt = false);
  GraphReport report(const TaskGraph& graph) const;
  /// Overlap re-timing pass over graph_order_; returns the placed
  /// makespan (seconds past run_start).
  double place_overlap(TaskGraph& graph, double run_start);

  accel::VirtualClock& clock_;
  obs::Tracer* tracer_;
  Options opt_;
  std::vector<std::string> lane_names_;
  std::vector<double> lane_ready_;
  std::vector<double> submitted_ends_;
  bool graph_running_ = false;
  std::vector<ExecRecord> graph_order_;
};

}  // namespace toast::async
