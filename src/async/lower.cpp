#include "async/lower.hpp"

#include <string>
#include <vector>

#include "async/registry.hpp"

namespace toast::async {

namespace {

TaskKind kind_of(core::StepKind k) {
  switch (k) {
    case core::StepKind::kChargeOverhead:
      return TaskKind::kOverhead;
    case core::StepKind::kEnsureFields:
      return TaskKind::kEnsure;
    case core::StepKind::kMapField:
      return TaskKind::kMap;
    case core::StepKind::kUpload:
      return TaskKind::kUpload;
    case core::StepKind::kLaunch:
      return TaskKind::kLaunch;
    case core::StepKind::kDownload:
      return TaskKind::kDownload;
    case core::StepKind::kEvict:
      return TaskKind::kEvict;
    case core::StepKind::kSyncTransfers:
      return TaskKind::kSyncTransfers;
  }
  return TaskKind::kLaunch;
}

int lane_of(const core::PlanStep& s) {
  switch (s.kind) {
    case core::StepKind::kChargeOverhead:
    case core::StepKind::kEnsureFields:
      return kLaneHost;
    case core::StepKind::kMapField:
    case core::StepKind::kEvict:
      return kLaneCompute;
    case core::StepKind::kLaunch:
      return s.on_device ? kLaneCompute : kLaneHost;
    case core::StepKind::kUpload:
    case core::StepKind::kDownload:
    case core::StepKind::kSyncTransfers:
      return kLaneCopy;
  }
  return kLaneHost;
}

/// Declared resource uses of one step.  Versions of "host:<field>" and
/// "dev:<field>" carry the data dependencies; "host" serializes the
/// driver thread; "copy_engine" orders prefetched uploads before the
/// drain that awaits them.
std::vector<ResourceUse> uses_of(const core::ExecutionPlan& plan,
                                 const std::vector<core::OpMeta>& meta,
                                 const core::PlanStep& s) {
  std::vector<ResourceUse> uses;
  auto field = [&](int idx) {
    return plan.field_names[static_cast<std::size_t>(idx)];
  };
  switch (s.kind) {
    case core::StepKind::kChargeOverhead:
      uses.push_back(writes("host"));
      break;
    case core::StepKind::kEnsureFields:
      uses.push_back(writes("host"));
      for (const std::string& f :
           meta[static_cast<std::size_t>(s.op)].touched) {
        uses.push_back(writes("host:" + f));
      }
      break;
    case core::StepKind::kMapField:
      uses.push_back(writes("dev:" + field(s.field)));
      break;
    case core::StepKind::kUpload:
      uses.push_back(reads("host:" + field(s.field)));
      uses.push_back(writes("dev:" + field(s.field)));
      if (s.async) {
        uses.push_back(writes("copy_engine"));
      }
      break;
    case core::StepKind::kLaunch: {
      const core::OpMeta& m = meta[static_cast<std::size_t>(s.op)];
      const char* space = s.on_device ? "dev:" : "host:";
      for (const std::string& f : m.reads) {
        uses.push_back(reads(space + f));
      }
      for (const std::string& f : m.writes) {
        uses.push_back(writes(space + f));
      }
      if (!s.on_device) {
        uses.push_back(writes("host"));
      }
      break;
    }
    case core::StepKind::kDownload:
      uses.push_back(reads("dev:" + field(s.field)));
      uses.push_back(writes("host:" + field(s.field)));
      break;
    case core::StepKind::kEvict:
      uses.push_back(writes("dev:" + field(s.field)));
      break;
    case core::StepKind::kSyncTransfers:
      uses.push_back(reads("copy_engine"));
      break;
  }
  return uses;
}

std::string name_of(const core::ExecutionPlan& plan,
                    const std::vector<core::OpMeta>& meta,
                    const core::PlanStep& s) {
  if (s.field >= 0) {
    return plan.field_names[static_cast<std::size_t>(s.field)];
  }
  if (s.op >= 0) {
    return meta[static_cast<std::size_t>(s.op)].name;
  }
  return "pipeline";
}

}  // namespace

TaskGraph lower_plan(const core::ExecutionPlan& plan,
                     const std::vector<core::OpMeta>& meta,
                     core::PlanExecutor& pe) {
  TaskGraph graph;
  graph.lane_names = {"host", "compute", "copy", "comm"};
  TaskRegistry reg(graph);

  for (const core::PlanStep& s : plan.steps) {
    Task t;
    t.kind = kind_of(s.kind);
    t.name = name_of(plan, meta, s);
    t.lane = lane_of(s);
    const core::PlanStep* sp = &s;
    t.run = [&pe, sp](bool recovering) { pe.run_step(*sp, recovering); };
    reg.add(std::move(t), uses_of(plan, meta, s));
  }
  for (const core::PlanStep& s : plan.alt_steps) {
    Task t;
    t.kind = kind_of(s.kind);
    t.name = name_of(plan, meta, s);
    t.lane = kLaneHost;  // patches run on the serial host driver
    const core::PlanStep* sp = &s;
    t.run = [&pe, sp](bool recovering) { pe.run_step(*sp, recovering); };
    reg.add_alt(std::move(t));
  }

  graph.groups.reserve(plan.groups.size());
  for (const core::PlanGroup& g : plan.groups) {
    TaskGroup tg;
    tg.begin = g.begin;
    tg.body_begin = g.try_begin;
    tg.post_begin = g.post_begin;
    tg.tail_begin = g.post_end;
    tg.end = g.end;
    tg.alt_begin = g.alt_begin;
    tg.alt_end = g.alt_end;
    if (g.op >= 0) {
      tg.name = meta[static_cast<std::size_t>(g.op)].name;
      tg.expect_accel = g.on_accel;
      const core::PlanGroup* gp = &g;
      tg.decide = [&pe, gp] { return pe.decide(*gp); };
      tg.attempt = [&pe](const std::function<void()>& body) {
        return pe.attempt(body);
      };
      tg.on_fault = [&pe, gp](const char* reason) {
        pe.mark_degraded(*gp, reason);
      };
    }
    graph.groups.push_back(std::move(tg));
  }
  return graph;
}

GraphReport run_plan_async(core::Pipeline& pipeline, core::Observation& ob,
                           core::ExecContext& ctx, core::PlanStats& stats,
                           const Options& opt) {
  const auto plan = pipeline.plan_for(ob, ctx);
  obs::ScopedSpan pipeline_span(ctx.tracer(), "pipeline:" + ob.name(),
                                "pipeline");
  core::PlanExecutor pe(*plan, pipeline.metadata(), ob, ctx,
                        pipeline.backend_override(), stats);
  TaskGraph graph = lower_plan(*plan, pipeline.metadata(), pe);
  Engine engine(ctx.clock(), &ctx.tracer(), opt);
  GraphReport report = engine.run(graph);
  pe.finish(pipeline_span.id());
  return report;
}

}  // namespace toast::async
