#include "async/registry.hpp"

#include <set>

namespace toast::async {

const char* to_string(TaskKind k) {
  switch (k) {
    case TaskKind::kOverhead:
      return "overhead";
    case TaskKind::kEnsure:
      return "ensure";
    case TaskKind::kMap:
      return "map";
    case TaskKind::kUpload:
      return "upload";
    case TaskKind::kLaunch:
      return "launch";
    case TaskKind::kDownload:
      return "download";
    case TaskKind::kEvict:
      return "evict";
    case TaskKind::kSyncTransfers:
      return "sync_transfers";
    case TaskKind::kCollective:
      return "collective";
    case TaskKind::kWait:
      return "wait";
  }
  return "unknown";
}

int TaskRegistry::add(Task t, const std::vector<ResourceUse>& uses) {
  const int id = static_cast<int>(graph_.tasks.size());
  std::set<int> deps;
  for (const ResourceUse& use : uses) {
    const Res& r = res_[use.name];
    if (r.last_writer >= 0) deps.insert(r.last_writer);  // RAW / WAW
    if (use.write) {
      for (int rd : r.readers) deps.insert(rd);  // WAR
    }
  }
  for (const ResourceUse& use : uses) {
    Res& r = res_[use.name];
    if (use.write) {
      r.last_writer = id;
      r.readers.clear();
      r.epoch += 1;
    } else {
      r.readers.push_back(id);
    }
  }
  t.id = id;
  t.deps.assign(deps.begin(), deps.end());
  graph_.tasks.push_back(std::move(t));
  return id;
}

int TaskRegistry::add_alt(Task t) {
  const int idx = static_cast<int>(graph_.alt_tasks.size());
  t.id = idx;
  graph_.alt_tasks.push_back(std::move(t));
  return idx;
}

std::int64_t TaskRegistry::epoch_of(const std::string& resource) const {
  auto it = res_.find(resource);
  return it == res_.end() ? 0 : it->second.epoch;
}

}  // namespace toast::async
