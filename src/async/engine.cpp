#include "async/engine.hpp"

#include <algorithm>
#include <iomanip>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace toast::async {

namespace {

/// Numbers are written with enough digits to round-trip a double.
struct Num {
  double v;
};

std::ostream& operator<<(std::ostream& out, Num n) {
  const auto flags = out.flags();
  const auto prec = out.precision();
  out << std::setprecision(17) << n.v;
  out.flags(flags);
  out.precision(prec);
  return out;
}

}  // namespace

void GraphReport::merge(const GraphReport& other) {
  n_tasks += other.n_tasks;
  n_groups += other.n_groups;
  patched += other.patched;
  for (int k = 0; k < kNumTaskKinds; ++k) {
    by_kind[static_cast<std::size_t>(k)] +=
        other.by_kind[static_cast<std::size_t>(k)];
  }
  total_busy_s += other.total_busy_s;
  makespan_s += other.makespan_s;
  critical_path_s += other.critical_path_s;
  overlap_fraction =
      total_busy_s > 0.0 ? 1.0 - critical_path_s / total_busy_s : 0.0;
  for (const LaneStat& l : other.lanes) {
    auto it = std::find_if(lanes.begin(), lanes.end(), [&](const LaneStat& m) {
      return m.name == l.name;
    });
    if (it == lanes.end()) {
      lanes.push_back(l);
    } else {
      it->tasks += l.tasks;
      it->busy_s += l.busy_s;
    }
  }
}

Engine::Engine(accel::VirtualClock& clock, obs::Tracer* tracer, Options opt)
    : clock_(clock), tracer_(tracer), opt_(opt) {}

int Engine::lane(const std::string& name) {
  for (std::size_t i = 0; i < lane_names_.size(); ++i) {
    if (lane_names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  const int id = static_cast<int>(lane_names_.size());
  lane_names_.push_back(name);
  lane_ready_.push_back(clock_.now());
  if (tracer_ != nullptr) {
    tracer_->set_stream_name(opt_.lane_base + id, "async:" + name);
  }
  return id;
}

Future Engine::submit(int lane, const std::string& name,
                      const std::string& category, const CostFn& cost,
                      const std::vector<Future>& deps) {
  if (lane < 0 || static_cast<std::size_t>(lane) >= lane_names_.size()) {
    throw std::invalid_argument("async::Engine::submit: unknown lane");
  }
  const int id = static_cast<int>(submitted_ends_.size());
  if (opt_.mode == Mode::kSerial) {
    // Bitwise oracle: identical to the blocking call it replaces
    // (advance then record, like ExecContext::charge_serial).
    const double t = cost(clock_.now());
    clock_.advance(t);
    if (tracer_ != nullptr) {
      tracer_->record(name, category, t);
    }
    const double end = clock_.now();
    lane_ready_[static_cast<std::size_t>(lane)] = end;
    submitted_ends_.push_back(end);
    return Future{id, 0, end};
  }
  // Overlap: place on the lane without advancing the caller's clock.
  double start = clock_.now();
  for (const Future& d : deps) {
    if (d.valid()) {
      start = std::max(start, d.ready);
    }
  }
  start = std::max(start, lane_ready_[static_cast<std::size_t>(lane)]);
  const double t = cost(start);
  const double end = start + t;
  lane_ready_[static_cast<std::size_t>(lane)] = end;
  submitted_ends_.push_back(end);
  if (tracer_ != nullptr) {
    const obs::SpanId span =
        tracer_->record_at(name, category, start, t, {}, nullptr,
                           /*logged=*/true);
    tracer_->set_stream(span, opt_.lane_base + lane);
  }
  return Future{id, 0, end};
}

double Engine::await(const Future& f, const std::string& label) {
  if (!f.valid()) {
    return 0.0;
  }
  const double slack = f.ready - clock_.now();
  if (slack <= 0.0) {
    return 0.0;
  }
  clock_.advance(slack);
  if (tracer_ != nullptr) {
    tracer_->record(label, "wait", slack);
  }
  return slack;
}

double Engine::drain(const std::string& label) {
  double ready = clock_.now();
  for (double r : lane_ready_) {
    ready = std::max(ready, r);
  }
  const double slack = ready - clock_.now();
  if (slack <= 0.0) {
    return 0.0;
  }
  clock_.advance(slack);
  if (tracer_ != nullptr) {
    tracer_->record(label, "wait", slack);
  }
  return slack;
}

int Engine::cancel_pending(const std::string& label) {
  const double now = clock_.now();
  int n = 0;
  for (double& end : submitted_ends_) {
    if (end > now) {
      ++n;
      end = now;
    }
  }
  for (double& r : lane_ready_) {
    r = std::min(r, now);
  }
  if (n > 0 && tracer_ != nullptr) {
    const obs::SpanId id = tracer_->record(label, "resilience", 0.0);
    tracer_->add_counter(id, "tasks", n);
  }
  return n;
}

int Engine::pending_count() const {
  const double now = clock_.now();
  int n = 0;
  for (double end : submitted_ends_) {
    if (end > now) {
      ++n;
    }
  }
  return n;
}

void Engine::run_task(Task& t, bool recovering) {
  const double t0 = clock_.now();
  t.run(recovering);
  t.start = t0;
  t.seconds = clock_.now() - t0;
  t.ran = true;
  // Overlap graph runs re-time tasks afterwards; the structural span is
  // emitted at the placed start by place_overlap instead.
  const bool defer = graph_running_ && opt_.mode == Mode::kOverlap;
  if (!defer && opt_.trace_tasks && tracer_ != nullptr && t.seconds > 0.0) {
    const obs::SpanId span =
        tracer_->record_at(to_string(t.kind) + (":" + t.name), "task",
                           t.start, t.seconds, {}, nullptr,
                           /*logged=*/false);
    tracer_->set_stream(span, opt_.lane_base + t.lane);
  }
}

void Engine::run_range(std::vector<Task>& tasks, int begin, int end,
                       bool recovering, bool alt) {
  const bool record = graph_running_ && opt_.mode == Mode::kOverlap;
  if (record && alt && begin < end) {
    // Entering a patch range is a placement barrier (recovery
    // serializes against everything in flight) — and so is leaving it.
    graph_order_.push_back(ExecRecord{false, true, 0});
  }
  for (int i = begin; i < end; ++i) {
    run_task(tasks[static_cast<std::size_t>(i)], recovering);
    if (record) {
      graph_order_.push_back(ExecRecord{alt, false, i});
    }
  }
  if (record && alt && begin < end) {
    graph_order_.push_back(ExecRecord{false, true, 0});
  }
}

double Engine::place_overlap(TaskGraph& graph, double run_start) {
  std::vector<double> lane_end(graph.lane_names.size(), run_start);
  std::vector<double> task_end(graph.tasks.size(), run_start);
  double global_end = run_start;
  for (const ExecRecord& rec : graph_order_) {
    if (rec.barrier) {
      // Recovery serializes: nothing placed after this point may start
      // before everything placed so far has finished.
      for (double& e : lane_end) {
        e = global_end;
      }
      continue;
    }
    Task& t = rec.alt ? graph.alt_tasks[static_cast<std::size_t>(rec.index)]
                      : graph.tasks[static_cast<std::size_t>(rec.index)];
    if (static_cast<std::size_t>(t.lane) >= lane_end.size()) {
      lane_end.resize(static_cast<std::size_t>(t.lane) + 1, run_start);
    }
    double start = std::max(run_start, lane_end[static_cast<std::size_t>(
                                           t.lane)]);
    if (!rec.alt) {
      // Patch tasks carry no derived deps (they replace a body that
      // never committed); main tasks wait on their data dependencies.
      for (int d : t.deps) {
        start = std::max(start, task_end[static_cast<std::size_t>(d)]);
      }
    }
    const double end = start + t.seconds;
    t.start = start;
    lane_end[static_cast<std::size_t>(t.lane)] = end;
    if (!rec.alt) {
      task_end[static_cast<std::size_t>(rec.index)] = end;
    }
    global_end = std::max(global_end, end);
    if (opt_.trace_tasks && tracer_ != nullptr && t.seconds > 0.0) {
      const obs::SpanId span =
          tracer_->record_at(to_string(t.kind) + (":" + t.name), "task",
                             t.start, t.seconds, {}, nullptr,
                             /*logged=*/false);
      tracer_->set_stream(span, opt_.lane_base + t.lane);
    }
  }
  return global_end - run_start;
}

GraphReport Engine::run(TaskGraph& graph) {
  const double run_start = clock_.now();
  if (tracer_ != nullptr) {
    for (std::size_t i = 0; i < graph.lane_names.size(); ++i) {
      tracer_->set_stream_name(opt_.lane_base + static_cast<int>(i),
                               "async:" + graph.lane_names[i]);
    }
  }
  graph_running_ = true;
  graph_order_.clear();
  int patched = 0;
  for (TaskGroup& g : graph.groups) {
    if (!g.decide) {
      run_range(graph.tasks, g.begin, g.end, false);
      continue;
    }
    std::optional<obs::ScopedSpan> span;
    if (tracer_ != nullptr && !g.name.empty()) {
      span.emplace(*tracer_, g.name, "operator");
    }
    run_range(graph.tasks, g.begin, g.body_begin, false);
    if (!g.decide()) {
      // Host dispatch: the graph re-routes to the patch tasks.
      run_range(graph.alt_tasks, g.alt_begin, g.alt_end, false,
                /*alt=*/true);
      if (g.expect_accel) {
        ++patched;
      }
    } else {
      const char* reason = g.attempt([&] {
        run_range(graph.tasks, g.body_begin, g.post_begin, false);
      });
      if (reason != nullptr) {
        // Recovery is a graph edit: degrade, then re-enqueue the
        // group as its patch tasks.
        g.on_fault(reason);
        run_range(graph.alt_tasks, g.alt_begin, g.alt_end, true,
                  /*alt=*/true);
        ++patched;
      } else {
        run_range(graph.tasks, g.post_begin, g.tail_begin, false);
      }
    }
    run_range(graph.tasks, g.tail_begin, g.end, false);
  }
  GraphReport rep = report(graph);
  rep.patched = patched;
  if (opt_.mode == Mode::kOverlap) {
    // The functional pass above charged the serial sum; re-time against
    // the dependency structure and land the clock on the placed
    // makespan instead (products and TimeLog are already final and
    // bit-for-bit the serial run).
    const double serial_s = clock_.now() - run_start;
    const double placed_s = place_overlap(graph, run_start);
    clock_.advance(placed_s - serial_s);
    rep.makespan_s = placed_s;
  } else {
    rep.makespan_s = clock_.now() - run_start;
  }
  graph_running_ = false;
  graph_order_.clear();
  return rep;
}

GraphReport Engine::report(const TaskGraph& graph) const {
  GraphReport rep;
  rep.n_groups = static_cast<int>(graph.groups.size());
  rep.lanes.resize(graph.lane_names.size());
  for (std::size_t i = 0; i < graph.lane_names.size(); ++i) {
    rep.lanes[i].name = graph.lane_names[i];
  }
  auto count = [&](const Task& t) {
    ++rep.n_tasks;
    ++rep.by_kind[static_cast<std::size_t>(t.kind)];
    rep.total_busy_s += t.seconds;
    if (static_cast<std::size_t>(t.lane) < rep.lanes.size()) {
      ++rep.lanes[static_cast<std::size_t>(t.lane)].tasks;
      rep.lanes[static_cast<std::size_t>(t.lane)].busy_s += t.seconds;
    }
  };
  // Longest data-dependency chain over executed tasks.  Patch tasks
  // carry no derived deps (they replace a body that never committed)
  // and run serially on the host lane, so they add to busy time but
  // chain as a block via the driver, not the dep graph.
  std::vector<double> path(graph.tasks.size(), 0.0);
  for (std::size_t i = 0; i < graph.tasks.size(); ++i) {
    const Task& t = graph.tasks[i];
    if (!t.ran) {
      continue;
    }
    count(t);
    double at = 0.0;
    for (int d : t.deps) {
      at = std::max(at, path[static_cast<std::size_t>(d)]);
    }
    path[i] = at + t.seconds;
    rep.critical_path_s = std::max(rep.critical_path_s, path[i]);
  }
  double alt_busy = 0.0;
  for (const Task& t : graph.alt_tasks) {
    if (!t.ran) {
      continue;
    }
    count(t);
    alt_busy += t.seconds;
  }
  rep.critical_path_s += alt_busy;
  rep.overlap_fraction =
      rep.total_busy_s > 0.0 ? 1.0 - rep.critical_path_s / rep.total_busy_s
                             : 0.0;
  return rep;
}

void write_tasks_json(std::ostream& out, const TaskGraph& graph,
                      const GraphReport& report) {
  out << "{\"schema\":\"toastcase-tasks-v1\"";
  out << ",\"n_tasks\":" << report.n_tasks
      << ",\"n_groups\":" << report.n_groups
      << ",\"patched\":" << report.patched
      << ",\"total_busy_s\":" << Num{report.total_busy_s}
      << ",\"makespan_s\":" << Num{report.makespan_s}
      << ",\"critical_path_s\":" << Num{report.critical_path_s}
      << ",\"overlap_fraction\":" << Num{report.overlap_fraction};
  out << ",\"by_kind\":{";
  bool first = true;
  for (int k = 0; k < kNumTaskKinds; ++k) {
    const int n = report.by_kind[static_cast<std::size_t>(k)];
    if (n == 0) {
      continue;
    }
    out << (first ? "" : ",") << "\""
        << to_string(static_cast<TaskKind>(k)) << "\":" << n;
    first = false;
  }
  out << "},\"lanes\":[";
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const LaneStat& l = report.lanes[i];
    out << (i == 0 ? "" : ",") << "{\"name\":\""
        << obs::json::escape(l.name) << "\",\"tasks\":" << l.tasks
        << ",\"busy_s\":" << Num{l.busy_s} << "}";
  }
  out << "],\"tasks\":[";
  bool first_task = true;
  auto dump = [&](const Task& t, bool alt) {
    if (!t.ran) {
      return;
    }
    out << (first_task ? "" : ",") << "\n{\"id\":" << t.id
        << ",\"kind\":\"" << to_string(t.kind) << "\",\"name\":\""
        << obs::json::escape(t.name) << "\",\"lane\":" << t.lane
        << ",\"alt\":" << (alt ? "true" : "false")
        << ",\"start_s\":" << Num{t.start}
        << ",\"seconds\":" << Num{t.seconds} << ",\"deps\":[";
    for (std::size_t d = 0; d < t.deps.size(); ++d) {
      out << (d == 0 ? "" : ",") << t.deps[d];
    }
    out << "]}";
    first_task = false;
  };
  for (const Task& t : graph.tasks) {
    dump(t, false);
  }
  for (const Task& t : graph.alt_tasks) {
    dump(t, true);
  }
  out << "\n]}\n";
}

}  // namespace toast::async
