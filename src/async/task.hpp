#pragma once

// Task-graph vocabulary of the async runtime (docs/MODEL.md §11).
//
// A Task is one unit of pipeline work — a kernel launch, an H2D/D2H
// transfer, an eviction, a collective step — with *explicit data
// dependencies* (indices of earlier tasks) instead of the implicit
// program-order dependencies of staged replay.  TaskGroups mirror
// core::PlanGroup: each carries the runtime dispatch decision
// (decide), the recovery filter (attempt) and the degrade hook
// (on_fault) of one operator, bound by the lowering to a
// core::PlanExecutor, so fault recovery means re-routing the group to
// its patch tasks — recovery is a graph edit, not an exception path.
//
// Determinism rules (the §11 contract): task ids are submission order,
// dependency lists are sorted, the engine's ready-queue tie-break is
// lowest task id, and no task body may read wall clock or randomness.
// Under those rules a graph run is a pure function of (graph, cost
// model, fault plan) and the serial schedule is bitwise equal to
// staged replay.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace toast::async {

enum class TaskKind : std::uint8_t {
  kOverhead,       ///< serial framework overhead charge
  kEnsure,         ///< host field allocation (op->ensure_fields)
  kMap,            ///< device shadow allocation
  kUpload,         ///< H2D transfer
  kLaunch,         ///< operator kernel execution (device or host)
  kDownload,       ///< D2H transfer
  kEvict,          ///< drop a device mapping
  kSyncTransfers,  ///< drain the prefetch copy engine
  kCollective,     ///< one communication collective (allreduce, ...)
  kWait,           ///< explicit await of a future (slack charge)
};

inline constexpr int kNumTaskKinds = 10;

const char* to_string(TaskKind k);

using TaskFn = std::function<void(bool recovering)>;

struct Task {
  int id = -1;
  TaskKind kind = TaskKind::kLaunch;
  std::string name;
  /// Attribution lane (index into TaskGraph::lane_names).
  int lane = 0;
  /// Data dependencies (RAW/WAW/WAR), sorted ascending; always earlier
  /// task ids.  Derived by TaskRegistry from declared resource uses.
  std::vector<int> deps;
  TaskFn run;

  // Measured by the engine during a run:
  double start = 0.0;
  double seconds = 0.0;
  bool ran = false;
};

/// One operator's slice of the graph; ranges mirror core::PlanGroup.
///   [begin, body_begin)      pre: overhead + host allocation
///   [body_begin, post_begin) accel body, wrapped in the recovery filter
///   [post_begin, tail_begin) post-body cleanup (skipped after a fault)
///   [tail_begin, end)        always-run tail (liveness evictions)
/// [alt_begin, alt_end) indexes TaskGraph::alt_tasks — the host patch
/// the group re-routes to when decide() is false or the body faults.
struct TaskGroup {
  std::string name;  ///< operator span name ("": epilogue, no span)
  bool expect_accel = false;  ///< staged for the device at plan time
  int begin = 0;
  int body_begin = 0;
  int post_begin = 0;
  int tail_begin = 0;
  int end = 0;
  int alt_begin = 0;
  int alt_end = 0;
  /// Runtime dispatch: run the accel body?  Null: no decision — run
  /// [begin, end) unconditionally (the epilogue group).
  std::function<bool()> decide;
  /// Recovery filter around the body; returns nullptr when it ran
  /// clean, else the degrade reason.
  std::function<const char*(const std::function<void()>&)> attempt;
  /// Mid-body degrade bookkeeping, before the patch re-route.
  std::function<void(const char*)> on_fault;
};

struct TaskGraph {
  std::vector<Task> tasks;
  std::vector<Task> alt_tasks;  ///< patch tasks (driver-ordered, no deps)
  std::vector<TaskGroup> groups;
  std::vector<std::string> lane_names;
};

}  // namespace toast::async
