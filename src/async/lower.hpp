#pragma once

// Lowering cached ExecutionPlans into the task graph (MODEL.md §11).
//
// lower_plan() maps every plan step 1:1 onto a Task bound to a
// core::PlanExecutor — the shared step-semantics layer both runtimes
// use — and derives data dependencies from each step's declared
// resource uses (host/device field versions, the serial host driver,
// the prefetch copy engine).  Task indices equal step indices, so
// PlanGroup ranges carry over unchanged, and each group's
// decide/attempt/on_fault callbacks bind to the same executor.
//
// run_plan_async() is the drop-in planned-exec entry point: compile
// (cached) via Pipeline::plan_for, lower, run on an async::Engine.
// In serial mode it is bitwise identical to Pipeline::exec —
// products, TimeLog and final clock — including under pinned fault
// plans, and additionally returns the GraphReport (task counts,
// critical path, achievable overlap).

#include "async/engine.hpp"
#include "async/task.hpp"
#include "core/pipeline.hpp"
#include "core/plan.hpp"

namespace toast::async {

/// Lane indices of the lowered graph (TaskGraph::lane_names order).
enum : int {
  kLaneHost = 0,     ///< serial driver: overhead, ensure, host patches
  kLaneCompute = 1,  ///< device kernels, device alloc/evict
  kLaneCopy = 2,     ///< H2D/D2H transfers, prefetch drains
  kLaneComm = 3,     ///< collectives (reserved for the solver face)
};

/// Build the task graph for one (plan, observation) run.  `pe` must
/// outlive the graph: every task body calls back into it.
TaskGraph lower_plan(const core::ExecutionPlan& plan,
                     const std::vector<core::OpMeta>& meta,
                     core::PlanExecutor& pe);

/// Planned execution through the task-graph runtime.  Accumulates into
/// `stats` exactly what execute_plan would (replans, evictions, ...).
GraphReport run_plan_async(core::Pipeline& pipeline, core::Observation& ob,
                           core::ExecContext& ctx, core::PlanStats& stats,
                           const Options& opt = {});

}  // namespace toast::async
