#pragma once

// Futures over the virtual timeline (docs/MODEL.md §11).
//
// A Future is the handle a submitted task returns: which task produces
// the value, which *epoch* (version) of the underlying resource that is,
// and when the value is ready on the virtual clock.  Epochs are the
// versioning scheme the task registry keeps per resource — every write
// bumps the resource's epoch, so a future pinned to epoch k can never be
// confused with the value a later writer produces.  Completion is a pure
// function of the submission order and the cost model: nothing here reads
// wall clock or randomness, which is what keeps replays bitwise.

#include <cstdint>

namespace toast::async {

struct Future {
  /// Producing task id in the submitting engine (-1: no task, already
  /// resolved — await() is a no-op).
  int task = -1;
  /// Version of the produced value (the resource epoch at production).
  std::int64_t epoch = 0;
  /// Completion time on the virtual timeline (absolute seconds).
  double ready = 0.0;

  bool valid() const { return task >= 0; }
};

}  // namespace toast::async
