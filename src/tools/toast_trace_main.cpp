// toast-trace: inspect the JSON files the observability layer writes.
//
//   toast-trace summarize <file>    per-category table, sorted by time
//   toast-trace top <N> <file>      top-N categories by total seconds
//   toast-trace diff <a> <b>        per-category comparison of two files
//   toast-trace lanes <file>        per-stream occupancy and overlap
//   toast-trace faults <file>       fault/recovery events and totals
//   toast-trace comm <file>         per-rank NIC-lane occupancy (comm engine)
//   toast-trace plan <file>         ExecutionPlan dump (toastcase-plan-v1)
//   toast-trace tasks <file>        task-graph dump (toastcase-tasks-v1)
//   toast-trace serve <file>        job-service day (toastcase-serve-result-v1)
//
// summarize/top/diff accept either a metrics file ("toastcase-metrics-v1",
// as written by write_metrics_json) or a Chrome trace-event file (as
// written by write_chrome_trace); trace events are aggregated by span
// name.  lanes needs the per-lane timing and therefore only accepts a
// Chrome trace.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace {

using toast::obs::MetricRow;
namespace json = toast::obs::json;

int usage() {
  std::fprintf(stderr,
               "usage: toast-trace summarize <file>\n"
               "       toast-trace top <N> <file>\n"
               "       toast-trace diff <a> <b>\n"
               "       toast-trace lanes <trace-file>\n"
               "       toast-trace faults <file>\n"
               "       toast-trace comm <trace-file>\n"
               "       toast-trace plan <plan-file>\n"
               "       toast-trace tasks <tasks-file>\n"
               "       toast-trace serve <serve-result-file>\n"
               "\n"
               "<file> is a toastcase metrics JSON or a Chrome trace-event\n"
               "JSON produced by the benchmarks' --json / --trace flags;\n"
               "lanes requires a Chrome trace (it reads per-lane timing).\n");
  return 2;
}

/// Aggregate the "X" events of a Chrome trace by span name.
std::map<std::string, MetricRow> rows_from_chrome_trace(
    const json::Value& doc) {
  std::map<std::string, MetricRow> rows;
  for (const auto& ev : doc.at("traceEvents").array) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || ph->string != "X") {
      continue;
    }
    auto& row = rows[ev.at("name").string];
    row.calls += 1;
    row.seconds += ev.number_or("dur", 0.0) * 1e-6;
    if (const json::Value* args = ev.find("args");
        args != nullptr && args->is_object()) {
      row.flops += args->number_or("flops", 0.0);
      row.bytes_read += args->number_or("bytes_read", 0.0);
      row.bytes_written += args->number_or("bytes_written", 0.0);
      row.launches += args->number_or("launches", 0.0);
      row.atomic_ops += args->number_or("atomic_ops", 0.0);
      // Extra counters (bytes_h2d, seconds_d2h, ...) ride along so the
      // transfer-direction summary works on traces too.
      for (const auto& [key, value] : args->object) {
        if (key == "flops" || key == "bytes_read" || key == "bytes_written" ||
            key == "launches" || key == "atomic_ops" || !value.is_number()) {
          continue;
        }
        row.counters[key] += value.number;
      }
    }
  }
  return rows;
}

std::map<std::string, MetricRow> load_rows(const std::string& path) {
  const json::Value doc = json::load_file(path);
  if (!doc.is_object()) {
    throw json::ParseError(path + ": top-level value is not an object");
  }
  if (doc.find("traceEvents") != nullptr) {
    return rows_from_chrome_trace(doc);
  }
  return toast::obs::read_metrics_json(doc);
}

std::vector<std::pair<std::string, MetricRow>> by_seconds(
    const std::map<std::string, MetricRow>& rows) {
  std::vector<std::pair<std::string, MetricRow>> sorted(rows.begin(),
                                                        rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.seconds > b.second.seconds;
  });
  return sorted;
}

std::string fmt_bytes(double b) {
  char buf[32];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  } else if (b > 0.0) {
    std::snprintf(buf, sizeof(buf), "%.1f kB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "-");
  }
  return buf;
}

void print_table(const std::map<std::string, MetricRow>& rows,
                 std::size_t limit) {
  double total = 0.0;
  for (const auto& [name, row] : rows) {
    total += row.seconds;
  }
  std::printf("%-36s %7s %12s %7s %12s %12s\n", "category", "calls",
              "seconds", "share", "bytes moved", "gflops");
  std::printf("%.*s\n", 92,
              "--------------------------------------------------------------"
              "------------------------------");
  std::size_t shown = 0;
  for (const auto& [name, row] : by_seconds(rows)) {
    if (shown++ == limit) {
      std::printf("  ... %zu more categories\n", rows.size() - limit);
      break;
    }
    std::printf("%-36s %7ld %11.4fs %6.1f%% %12s %12.3f\n", name.c_str(),
                row.calls, row.seconds,
                total > 0.0 ? 100.0 * row.seconds / total : 0.0,
                fmt_bytes(row.bytes_read + row.bytes_written).c_str(),
                row.flops / 1e9);
  }
  std::printf("%-36s %7s %11.4fs\n", "total", "", total);
}

/// Direction-split transfer traffic summed over every category.
void print_transfer_directions(const std::map<std::string, MetricRow>& rows) {
  double bytes_h2d = 0.0;
  double bytes_d2h = 0.0;
  double seconds_h2d = 0.0;
  double seconds_d2h = 0.0;
  for (const auto& [name, row] : rows) {
    const auto counter = [&row](const char* key) {
      const auto it = row.counters.find(key);
      return it == row.counters.end() ? 0.0 : it->second;
    };
    bytes_h2d += counter("bytes_h2d");
    bytes_d2h += counter("bytes_d2h");
    seconds_h2d += counter("seconds_h2d");
    seconds_d2h += counter("seconds_d2h");
  }
  if (bytes_h2d == 0.0 && bytes_d2h == 0.0) {
    return;
  }
  std::printf("\ntransfers: H2D %s in %.4fs, D2H %s in %.4fs\n",
              fmt_bytes(bytes_h2d).c_str(), seconds_h2d,
              fmt_bytes(bytes_d2h).c_str(), seconds_d2h);
}

int cmd_summarize(const std::string& path, std::size_t limit) {
  const auto rows = load_rows(path);
  std::printf("%s: %zu categories\n\n", path.c_str(), rows.size());
  print_table(rows, limit);
  print_transfer_directions(rows);
  return 0;
}

/// Per-lane (Chrome tid) occupancy plus the overlap fraction across the
/// stream lanes (tid >= 2): 1 - union/sum of their busy time, i.e. the
/// share of stream work that ran concurrently with another stream.
int cmd_lanes(const std::string& path) {
  const json::Value doc = json::load_file(path);
  if (!doc.is_object() || doc.find("traceEvents") == nullptr) {
    std::fprintf(stderr,
                 "toast-trace: %s is not a Chrome trace-event file "
                 "(lanes needs one; pass the --trace output)\n",
                 path.c_str());
    return 1;
  }
  struct Lane {
    std::string name;
    long spans = 0;
    std::vector<std::pair<double, double>> intervals;  // seconds
  };
  std::map<long, Lane> lanes;
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  for (const auto& ev : doc.at("traceEvents").array) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr) {
      continue;
    }
    const long tid = static_cast<long>(ev.number_or("tid", 0.0));
    if (ph->string == "M") {
      const json::Value* name = ev.find("name");
      const json::Value* args = ev.find("args");
      if (name != nullptr && name->string == "thread_name" &&
          args != nullptr && args->find("name") != nullptr) {
        lanes[tid].name = args->at("name").string;
      }
      continue;
    }
    if (ph->string != "X") {
      continue;
    }
    const double start = ev.number_or("ts", 0.0) * 1e-6;
    const double end = start + ev.number_or("dur", 0.0) * 1e-6;
    auto& lane = lanes[tid];
    lane.spans += 1;
    lane.intervals.emplace_back(start, end);
    t_min = any ? std::min(t_min, start) : start;
    t_max = any ? std::max(t_max, end) : end;
    any = true;
  }
  if (!any) {
    std::printf("%s: no spans\n", path.c_str());
    return 0;
  }

  // Busy time of a set of intervals = length of their union.
  const auto merged_length = [](std::vector<std::pair<double, double>> iv) {
    std::sort(iv.begin(), iv.end());
    double busy = 0.0;
    double hi = -1.0;
    for (const auto& [a, b] : iv) {
      if (a > hi) {
        busy += b - a;
        hi = b;
      } else if (b > hi) {
        busy += b - hi;
        hi = b;
      }
    }
    return busy;
  };

  const double window = t_max - t_min;
  std::printf("%s: window %.4fs\n\n", path.c_str(), window);
  std::printf("%-4s %-24s %7s %12s %10s\n", "tid", "lane", "spans", "busy",
              "occupancy");
  std::printf("%.*s\n", 61,
              "--------------------------------------------------------------"
              "------------------------------");
  std::vector<std::pair<double, double>> stream_intervals;
  double stream_busy_sum = 0.0;
  int stream_lanes = 0;
  for (const auto& [tid, lane] : lanes) {
    if (lane.spans == 0) {
      continue;  // named but empty lane
    }
    const double busy = merged_length(lane.intervals);
    std::printf("%-4ld %-24s %7ld %11.4fs %9.1f%%\n", tid,
                lane.name.empty() ? "(unnamed)" : lane.name.c_str(),
                lane.spans, busy, window > 0.0 ? 100.0 * busy / window : 0.0);
    if (tid >= 2) {
      stream_intervals.insert(stream_intervals.end(), lane.intervals.begin(),
                              lane.intervals.end());
      stream_busy_sum += busy;
      ++stream_lanes;
    }
  }
  if (stream_lanes == 0) {
    std::printf("\nno stream lanes (tid >= 2); run with more than one "
                "virtual stream to get overlap\n");
    return 0;
  }
  const double stream_union = merged_length(std::move(stream_intervals));
  const double overlap = stream_busy_sum > 0.0
                             ? 1.0 - stream_union / stream_busy_sum
                             : 0.0;
  std::printf("\n%d stream lane%s: %.4fs busy across lanes, %.4fs of "
              "timeline covered\noverlap fraction: %.1f%% of stream work ran "
              "concurrently with another stream\n",
              stream_lanes, stream_lanes == 1 ? "" : "s", stream_busy_sum,
              stream_union, 100.0 * overlap);
  return 0;
}

/// Fault-injection view: the fault_* categories the recovery layer emits
/// (retries, fallbacks, OOM recoveries, checkpoint restores, stragglers,
/// rank restarts) plus the resilience_* categories the policy manager
/// emits (task requeues, degradation-ladder escalations, circuit-breaker
/// transitions, elastic world shrinks), their time cost, and which
/// kernels degraded to CPU.
int cmd_faults(const std::string& path) {
  const auto rows = load_rows(path);
  std::map<std::string, MetricRow> faults;
  for (const auto& [name, row] : rows) {
    if (name.rfind("fault_", 0) == 0 || name.rfind("resilience_", 0) == 0) {
      faults.emplace(name, row);
    }
  }
  if (faults.empty()) {
    std::printf("%s: no fault events (clean run or disarmed fault plan)\n",
                path.c_str());
    return 0;
  }
  std::printf("%s: %zu fault categories\n\n", path.c_str(), faults.size());
  print_table(faults, static_cast<std::size_t>(-1));

  double failed_attempts = 0.0;
  double requeued_tasks = 0.0;
  double breaker_opens = 0.0;
  double breaker_half_opens = 0.0;
  double breaker_closes = 0.0;
  double breaker_fast_fails = 0.0;
  double escalations = 0.0;
  double world_shrinks = 0.0;
  std::set<std::string> degraded;
  for (const auto& [name, row] : faults) {
    const auto counter = [&row](const std::string& key) {
      const auto it = row.counters.find(key);
      return it == row.counters.end() ? 0.0 : it->second;
    };
    if (name.rfind("fault_retry_", 0) == 0) {
      failed_attempts += counter("failures");
    }
    if (name == "fault_task_requeue" || name == "resilience_task_requeue" ||
        name == "destriper_comm_requeue") {
      requeued_tasks += counter("tasks");
    }
    if (name == "resilience_breaker_open") {
      breaker_opens += static_cast<double>(row.calls);
    }
    if (name == "resilience_breaker_half_open") {
      breaker_half_opens += static_cast<double>(row.calls);
    }
    if (name == "resilience_breaker_close") {
      breaker_closes += static_cast<double>(row.calls);
    }
    if (name == "resilience_breaker_fast_fail") {
      breaker_fast_fails += static_cast<double>(row.calls);
    }
    if (name == "resilience_degrade") {
      escalations += static_cast<double>(row.calls);
    }
    if (name == "resilience_world_shrink") {
      world_shrinks += static_cast<double>(row.calls);
    }
    if (name == "fault_fallback") {
      for (const auto& [key, value] : row.counters) {
        if (key.rfind("kernel_", 0) == 0 && value > 0.0) {
          degraded.insert(key.substr(7));
        }
      }
    }
  }
  std::printf("\nfailed attempts retried: %.0f\n", failed_attempts);
  if (requeued_tasks > 0.0) {
    std::printf("async tasks requeued: %.0f\n", requeued_tasks);
  }
  if (breaker_opens + breaker_half_opens + breaker_closes +
          breaker_fast_fails >
      0.0) {
    std::printf(
        "circuit breakers: %.0f opened, %.0f half-opened, %.0f closed, "
        "%.0f fast-failed ops\n",
        breaker_opens, breaker_half_opens, breaker_closes,
        breaker_fast_fails);
  }
  if (escalations > 0.0) {
    std::printf("degradation-ladder escalations: %.0f\n", escalations);
  }
  if (world_shrinks > 0.0) {
    std::printf("elastic world shrinks: %.0f\n", world_shrinks);
  }
  if (!degraded.empty()) {
    std::printf("kernels degraded to CPU:");
    for (const auto& kernel : degraded) {
      std::printf(" %s", kernel.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

/// Comm-engine view: the per-rank NIC lanes the collective engine emits
/// ("comm"-category spans on tid >= 2).  Shows per-lane chunk counts,
/// busy time and occupancy over the collective's window, plus per-
/// collective totals (bytes moved, steps).
int cmd_comm(const std::string& path) {
  const json::Value doc = json::load_file(path);
  if (!doc.is_object() || doc.find("traceEvents") == nullptr) {
    std::fprintf(stderr,
                 "toast-trace: %s is not a Chrome trace-event file "
                 "(comm needs one; pass the --trace output)\n",
                 path.c_str());
    return 1;
  }
  struct Lane {
    std::string name;
    long steps = 0;
    double bytes = 0.0;
    std::vector<std::pair<double, double>> intervals;  // seconds
  };
  std::map<long, Lane> lanes;
  struct Collective {
    long steps = 0;
    double bytes = 0.0;
    double seconds = 0.0;
  };
  std::map<std::string, Collective> collectives;
  double t_min = 0.0;
  double t_max = 0.0;
  bool any = false;
  for (const auto& ev : doc.at("traceEvents").array) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr) {
      continue;
    }
    const long tid = static_cast<long>(ev.number_or("tid", 0.0));
    if (ph->string == "M") {
      const json::Value* name = ev.find("name");
      const json::Value* args = ev.find("args");
      if (name != nullptr && name->string == "thread_name" &&
          args != nullptr && args->find("name") != nullptr) {
        lanes[tid].name = args->at("name").string;
      }
      continue;
    }
    if (ph->string != "X") {
      continue;
    }
    const json::Value* cat = ev.find("cat");
    if (cat == nullptr || cat->string != "comm") {
      continue;
    }
    const double start = ev.number_or("ts", 0.0) * 1e-6;
    const double dur = ev.number_or("dur", 0.0) * 1e-6;
    const double bytes =
        ev.find("args") != nullptr ? ev.at("args").number_or("bytes", 0.0)
                                   : 0.0;
    auto& lane = lanes[tid];
    lane.steps += 1;
    lane.bytes += bytes;
    lane.intervals.emplace_back(start, start + dur);
    auto& coll = collectives[ev.at("name").string];
    coll.steps += 1;
    coll.bytes += bytes;
    coll.seconds += dur;
    t_min = any ? std::min(t_min, start) : start;
    t_max = any ? std::max(t_max, start + dur) : start + dur;
    any = true;
  }
  if (!any) {
    std::printf("%s: no comm-engine spans (run a job with --comm engine or "
                "bench_comm --trace)\n",
                path.c_str());
    return 0;
  }

  const auto merged_length = [](std::vector<std::pair<double, double>> iv) {
    std::sort(iv.begin(), iv.end());
    double busy = 0.0;
    double hi = -1.0;
    for (const auto& [a, b] : iv) {
      if (a > hi) {
        busy += b - a;
        hi = b;
      } else if (b > hi) {
        busy += b - hi;
        hi = b;
      }
    }
    return busy;
  };

  const double window = t_max - t_min;
  std::printf("%s: comm window %.6fs\n\n", path.c_str(), window);
  std::printf("%-4s %-24s %7s %12s %12s %10s\n", "tid", "lane", "steps",
              "busy", "bytes", "occupancy");
  std::printf("%.*s\n", 74,
              "--------------------------------------------------------------"
              "------------------------------");
  for (const auto& [tid, lane] : lanes) {
    if (lane.steps == 0) {
      continue;  // named but carried no comm spans
    }
    const double busy = merged_length(lane.intervals);
    std::printf("%-4ld %-24s %7ld %11.6fs %12s %9.1f%%\n", tid,
                lane.name.empty() ? "(unnamed)" : lane.name.c_str(),
                lane.steps, busy, fmt_bytes(lane.bytes).c_str(),
                window > 0.0 ? 100.0 * busy / window : 0.0);
  }
  std::printf("\n%-36s %7s %12s %12s\n", "collective", "steps", "bytes",
              "lane-sec");
  std::printf("%.*s\n", 70,
              "--------------------------------------------------------------"
              "------------------------------");
  for (const auto& [name, coll] : collectives) {
    std::printf("%-36s %7ld %12s %11.6fs\n", name.c_str(), coll.steps,
                fmt_bytes(coll.bytes).c_str(), coll.seconds);
  }
  return 0;
}

/// Compiled-pipeline view: the step schedule a bench dumped with
/// --dump-plan (bench_plan) or tests wrote via ExecutionPlan::write_json.
int cmd_plan(const std::string& path) {
  const json::Value doc = json::load_file(path);
  if (!doc.is_object() || doc.find("schema") == nullptr ||
      doc.at("schema").string != "toastcase-plan-v1") {
    std::fprintf(stderr,
                 "toast-trace: %s is not a toastcase-plan-v1 file "
                 "(pass bench_plan's --dump-plan output)\n",
                 path.c_str());
    return 1;
  }
  const auto& ops = doc.at("ops").array;
  const auto& steps = doc.at("steps").array;
  const auto& alt_steps = doc.at("alt_steps").array;
  const json::Value& opt = doc.at("options");
  const auto flag = [&opt](const char* key) {
    const json::Value* v = opt.find(key);
    return v != nullptr && v->boolean;
  };
  std::printf("%s: %zu operators, %zu steps (+%zu fallback)\n",
              path.c_str(), ops.size(), steps.size(), alt_steps.size());
  std::printf("options: staging=%s prefetch=%s evict=%s\n\n",
              flag("naive_staging") ? "naive" : "pipelined",
              flag("prefetch") ? "on" : "off", flag("evict") ? "on" : "off");

  // Per-operator step histogram.
  struct OpSteps {
    long maps = 0;
    long uploads = 0;
    long prefetched = 0;
    long downloads = 0;
    long evicts = 0;
  };
  std::vector<OpSteps> per_op(ops.size());
  for (const auto& s : steps) {
    const long op = static_cast<long>(s.number_or("op", -1.0));
    if (op < 0 || op >= static_cast<long>(per_op.size())) {
      continue;
    }
    auto& row = per_op[static_cast<std::size_t>(op)];
    const std::string& kind = s.at("kind").string;
    if (kind == "map_field") {
      row.maps += 1;
    } else if (kind == "upload") {
      row.uploads += 1;
      if (const json::Value* a = s.find("async");
          a != nullptr && a->boolean) {
        row.prefetched += 1;
      }
    } else if (kind == "download") {
      row.downloads += 1;
    } else if (kind == "evict") {
      row.evicts += 1;
    }
  }
  std::printf("%-32s %-10s %6s %5s %7s %9s %5s %6s\n", "operator", "backend",
              "accel", "maps", "uploads", "prefetch", "down", "evict");
  std::printf("%.*s\n", 88,
              "--------------------------------------------------------------"
              "------------------------------");
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const auto& op = ops[k];
    const auto& row = per_op[k];
    std::printf("%-32s %-10s %6s %5ld %7ld %9ld %5ld %6ld\n",
                op.at("name").string.c_str(), op.at("backend").string.c_str(),
                op.at("on_accel").boolean ? "yes" : "-", row.maps,
                row.uploads, row.prefetched, row.downloads, row.evicts);
  }

  const json::Value& stats = doc.at("stats");
  std::printf("\nstatic dataflow: %ld transfers planned vs %ld naive "
              "(%ld avoided), %ld liveness evictions, %ld prefetch uploads\n",
              static_cast<long>(stats.number_or("planned_transfers", 0.0)),
              static_cast<long>(stats.number_or("naive_transfers", 0.0)),
              static_cast<long>(stats.number_or("transfers_avoided", 0.0)),
              static_cast<long>(stats.number_or("planned_evictions", 0.0)),
              static_cast<long>(stats.number_or("prefetch_uploads", 0.0)));
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const auto a = load_rows(path_a);
  const auto b = load_rows(path_b);
  std::set<std::string> names;
  for (const auto& [name, row] : a) {
    names.insert(name);
  }
  for (const auto& [name, row] : b) {
    names.insert(name);
  }

  struct DiffRow {
    std::string name;
    double a_s = 0.0;
    double b_s = 0.0;
  };
  std::vector<DiffRow> diffs;
  for (const auto& name : names) {
    DiffRow d{name, 0.0, 0.0};
    if (const auto it = a.find(name); it != a.end()) {
      d.a_s = it->second.seconds;
    }
    if (const auto it = b.find(name); it != b.end()) {
      d.b_s = it->second.seconds;
    }
    diffs.push_back(d);
  }
  std::sort(diffs.begin(), diffs.end(), [](const auto& x, const auto& y) {
    return std::abs(x.b_s - x.a_s) > std::abs(y.b_s - y.a_s);
  });

  std::printf("a = %s\nb = %s\n\n", path_a.c_str(), path_b.c_str());
  std::printf("%-36s %12s %12s %12s %9s\n", "category", "a", "b", "delta",
              "b/a");
  std::printf("%.*s\n", 85,
              "--------------------------------------------------------------"
              "------------------------------");
  double total_a = 0.0;
  double total_b = 0.0;
  for (const auto& d : diffs) {
    total_a += d.a_s;
    total_b += d.b_s;
    char ratio[32];
    if (d.a_s > 0.0 && d.b_s > 0.0) {
      std::snprintf(ratio, sizeof(ratio), "%.2fx", d.b_s / d.a_s);
    } else {
      std::snprintf(ratio, sizeof(ratio), "%s", d.a_s > 0.0 ? "gone" : "new");
    }
    std::printf("%-36s %11.4fs %11.4fs %+11.4fs %9s\n", d.name.c_str(), d.a_s,
                d.b_s, d.b_s - d.a_s, ratio);
  }
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.2fx",
                total_a > 0.0 ? total_b / total_a : 0.0);
  std::printf("%-36s %11.4fs %11.4fs %+11.4fs %9s\n", "total", total_a,
              total_b, total_b - total_a, ratio);
  return 0;
}

int cmd_tasks(const std::string& path) {
  const json::Value doc = json::load_file(path);
  if (!doc.is_object() || doc.find("schema") == nullptr ||
      doc.at("schema").string != "toastcase-tasks-v1") {
    std::fprintf(stderr,
                 "toast-trace: %s is not a toastcase-tasks-v1 file "
                 "(pass bench_async's --dump-tasks output)\n",
                 path.c_str());
    return 1;
  }
  const double busy = doc.number_or("total_busy_s", 0.0);
  const double critical = doc.number_or("critical_path_s", 0.0);
  const double makespan = doc.number_or("makespan_s", 0.0);
  const double overlap = doc.number_or("overlap_fraction", 0.0);
  std::printf("%s: %.0f tasks in %.0f groups (%.0f patched)\n", path.c_str(),
              doc.number_or("n_tasks", 0.0), doc.number_or("n_groups", 0.0),
              doc.number_or("patched", 0.0));
  std::printf("staged replay (busy) %10.3f ms\n", busy * 1e3);
  std::printf("critical path        %10.3f ms\n", critical * 1e3);
  std::printf("makespan             %10.3f ms\n", makespan * 1e3);
  std::printf("overlap fraction     %10.1f %%  (potential speedup %.2fx "
              "vs staged replay)\n",
              overlap * 100.0, critical > 0.0 ? busy / critical : 1.0);

  std::printf("\n%-16s %8s\n", "task kind", "count");
  std::printf("-------------------------\n");
  if (const json::Value* by_kind = doc.find("by_kind");
      by_kind != nullptr && by_kind->is_object()) {
    for (const auto& [kind, n] : by_kind->object) {
      std::printf("%-16s %8.0f\n", kind.c_str(), n.number);
    }
  }

  std::printf("\n%-12s %8s %12s %10s\n", "lane", "tasks", "busy", "occup");
  std::printf("---------------------------------------------\n");
  if (const json::Value* lanes = doc.find("lanes");
      lanes != nullptr && lanes->is_array()) {
    for (const auto& lane : lanes->array) {
      const double lane_busy = lane.number_or("busy_s", 0.0);
      std::printf("%-12s %8.0f %10.3fms %9.1f%%\n",
                  lane.at("name").string.c_str(),
                  lane.number_or("tasks", 0.0), lane_busy * 1e3,
                  makespan > 0.0 ? 100.0 * lane_busy / makespan : 0.0);
    }
  }
  return 0;
}

/// Multi-tenant service view: the per-tenant accounting and per-job
/// timeline of a simulated service day (bench_serve's --result output).
int cmd_serve(const std::string& path) {
  const json::Value doc = json::load_file(path);
  if (!doc.is_object() || doc.find("schema") == nullptr ||
      doc.at("schema").string != "toastcase-serve-result-v1") {
    std::fprintf(stderr,
                 "toast-trace: %s is not a toastcase-serve-result-v1 file "
                 "(pass bench_serve's --result output)\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: %s policy, %.0f submitted / %.0f admitted / "
              "%.0f rejected / %.0f completed\n",
              path.c_str(), doc.at("policy").string.c_str(),
              doc.number_or("submitted", 0.0), doc.number_or("admitted", 0.0),
              doc.number_or("rejected", 0.0),
              doc.number_or("completed", 0.0));
  std::printf("makespan %.4fs, node occupancy %.1f%%, work-conserving %s, "
              "library %.0f hit%s / %.0f miss%s\n",
              doc.number_or("makespan_s", 0.0),
              100.0 * doc.number_or("utilization", 0.0),
              doc.at("work_conserving").boolean ? "yes" : "NO",
              doc.number_or("library_hits", 0.0),
              doc.number_or("library_hits", 0.0) == 1.0 ? "" : "s",
              doc.number_or("library_misses", 0.0),
              doc.number_or("library_misses", 0.0) == 1.0 ? "" : "es");
  std::printf("queue wait p50 %.4fs, p95 %.4fs, p99 %.4fs\n",
              doc.number_or("queue_wait_p50_s", 0.0),
              doc.number_or("queue_wait_p95_s", 0.0),
              doc.number_or("queue_wait_p99_s", 0.0));

  std::printf("\n%-12s %6s %5s %5s %5s %5s %11s %10s %10s\n", "tenant",
              "share", "sub", "adm", "rej", "done", "node-sec", "max wait",
              "mean wait");
  std::printf("%.*s\n", 77,
              "--------------------------------------------------------------"
              "------------------------------");
  for (const auto& t : doc.at("tenants").array) {
    const double completed = t.number_or("completed", 0.0);
    const double sum_wait = t.number_or("sum_wait_s", 0.0);
    std::printf("%-12s %6.2f %5.0f %5.0f %5.0f %5.0f %10.3fs %9.4fs "
                "%9.4fs\n",
                t.at("name").string.c_str(), t.number_or("share", 0.0),
                t.number_or("submitted", 0.0), t.number_or("admitted", 0.0),
                t.number_or("rejected", 0.0), completed,
                t.number_or("node_seconds", 0.0),
                t.number_or("max_wait_s", 0.0),
                completed > 0.0 ? sum_wait / completed : 0.0);
  }

  std::printf("\n%-12s %-10s %-8s %-12s %9s %9s %9s %9s  %s\n", "job",
              "tenant", "workload", "backend", "submit", "start", "finish",
              "wait", "status");
  std::printf("%.*s\n", 98,
              "--------------------------------------------------------------"
              "--------------------------------------");
  for (const auto& j : doc.at("jobs").array) {
    char status[96];
    if (!j.at("admitted").boolean) {
      std::snprintf(status, sizeof(status), "rejected: %s",
                    j.at("reject_reason").string.c_str());
    } else if (!j.at("completed").boolean) {
      std::snprintf(status, sizeof(status), "incomplete");
    } else {
      const auto& nodes = j.at("nodes").array;
      std::string node_list;
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        node_list += (n > 0 ? "," : "") + std::to_string(
            static_cast<long>(nodes[n].number));
      }
      std::snprintf(status, sizeof(status), "done on node%s %s%s",
                    nodes.size() == 1 ? "" : "s", node_list.c_str(),
                    j.at("library_hit").boolean ? " (library hit)" : "");
    }
    std::printf("%-12s %-10s %-8s %-12s %8.3fs %8.3fs %8.3fs %8.4fs  %s\n",
                j.at("name").string.c_str(), j.at("tenant").string.c_str(),
                j.at("workload").string.c_str(),
                j.at("backend").string.c_str(), j.number_or("submit_s", 0.0),
                j.number_or("start_s", 0.0), j.number_or("finish_s", 0.0),
                j.number_or("queue_wait_s", 0.0), status);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "summarize" && argc == 3) {
      return cmd_summarize(argv[2], static_cast<std::size_t>(-1));
    }
    if (cmd == "top" && argc == 4) {
      const long n = std::strtol(argv[2], nullptr, 10);
      if (n <= 0) {
        std::fprintf(stderr, "toast-trace: top expects a positive N\n");
        return 2;
      }
      return cmd_summarize(argv[3], static_cast<std::size_t>(n));
    }
    if (cmd == "diff" && argc == 4) {
      return cmd_diff(argv[2], argv[3]);
    }
    if (cmd == "lanes" && argc == 3) {
      return cmd_lanes(argv[2]);
    }
    if (cmd == "faults" && argc == 3) {
      return cmd_faults(argv[2]);
    }
    if (cmd == "comm" && argc == 3) {
      return cmd_comm(argv[2]);
    }
    if (cmd == "plan" && argc == 3) {
      return cmd_plan(argv[2]);
    }
    if (cmd == "tasks" && argc == 3) {
      return cmd_tasks(argv[2]);
    }
    if (cmd == "serve" && argc == 3) {
      return cmd_serve(argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "toast-trace: %s\n", e.what());
    return 1;
  }
  return usage();
}
