#pragma once

// A cloc-like line counter (paper Figures 2-3 measure lines of code with
// cloc v1.82, excluding blanks and comments).  Handles C and C++ comments
// and string literals well enough for this codebase's style.

#include <map>
#include <string>
#include <vector>

namespace toast::tools {

struct LocCount {
  int code = 0;
  int comment = 0;
  int blank = 0;

  LocCount& operator+=(const LocCount& o) {
    code += o.code;
    comment += o.comment;
    blank += o.blank;
    return *this;
  }
};

/// Count lines in a C/C++ source string.
LocCount count_cpp(const std::string& source);

/// Count lines in a file (throws if unreadable).
LocCount count_file(const std::string& path);

/// Sum over several files.
LocCount count_files(const std::vector<std::string>& paths);

/// Count the code lines of one function body in a source string: from the
/// first occurrence of `name` followed by '(' through the matching close
/// of its outermost brace.  Returns zeros if not found.  Used to isolate
/// the *array-program* part of the JAX ports (what would be the Python
/// function in the paper) from the C++ marshalling around it.
LocCount count_function(const std::string& source, const std::string& name);

/// The graph-builder function names of each JAX kernel (the direct
/// analogue of the paper's Python kernel bodies).
std::map<std::string, std::pair<std::string, std::vector<std::string>>>
jax_graph_manifest();

/// The per-kernel source manifest of this repository: kernel name ->
/// { implementation name -> list of files relative to the repo root }.
/// Used by the Figure 2/3 benchmarks.
std::map<std::string, std::map<std::string, std::vector<std::string>>>
kernel_source_manifest();

/// Implementation-level dependency/support files (Figure 2's "lines of
/// code" bar includes them; the "kernel code" bar does not).
std::map<std::string, std::vector<std::string>> support_source_manifest();

}  // namespace toast::tools
