// Timing-merge CLI (paper §3.2.3): merge several timing CSV files (as
// written by core::write_timing_csv) into one comparative table with
// speedup columns relative to the first file.
//
// Usage: toast_timing_merge run_a.csv run_b.csv [run_c.csv ...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/timing.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <timing.csv> [more.csv ...]\n"
                 "Merges timing CSVs into a comparative table; speedups are\n"
                 "relative to the first file.\n",
                 argv[0]);
    return 2;
  }
  std::vector<std::pair<std::string, toast::accel::TimeLog>> runs;
  for (int i = 1; i < argc; ++i) {
    try {
      runs.emplace_back(argv[i], toast::core::read_timing_csv_file(argv[i]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const auto cmp = toast::core::compare_timings(runs);
  std::fputs(cmp.to_table().c_str(), stdout);
  std::printf("\nCSV:\n%s", cmp.to_csv().c_str());
  return 0;
}
