#include "tools/loc.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace toast::tools {

LocCount count_cpp(const std::string& source) {
  LocCount count;
  bool in_block_comment = false;
  std::istringstream stream(source);
  std::string line;
  while (std::getline(stream, line)) {
    bool has_code = false;
    bool has_comment = in_block_comment;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block_comment) {
        has_comment = true;
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (c == '/' && next == '/') {
        has_comment = true;
        break;  // rest of line is comment
      }
      if (c == '/' && next == '*') {
        has_comment = true;
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"') {
        // Skip string literal (handles escapes).
        has_code = true;
        for (++i; i < line.size(); ++i) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == '"') {
            break;
          }
        }
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        has_code = true;
      }
    }
    if (has_code) {
      ++count.code;
    } else if (has_comment) {
      ++count.comment;
    } else {
      ++count.blank;
    }
  }
  return count;
}

LocCount count_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("loc: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return count_cpp(buf.str());
}

LocCount count_files(const std::vector<std::string>& paths) {
  LocCount total;
  for (const auto& p : paths) {
    total += count_file(p);
  }
  return total;
}

LocCount count_function(const std::string& source, const std::string& name) {
  // Find "name" followed (possibly after whitespace) by '('.
  std::size_t pos = 0;
  std::size_t start = std::string::npos;
  while ((pos = source.find(name, pos)) != std::string::npos) {
    std::size_t after = pos + name.size();
    while (after < source.size() &&
           std::isspace(static_cast<unsigned char>(source[after]))) {
      ++after;
    }
    if (after < source.size() && source[after] == '(') {
      start = pos;
      break;
    }
    pos += name.size();
  }
  if (start == std::string::npos) {
    return {};
  }
  // Walk to the opening brace, then to its match.
  std::size_t i = source.find('{', start);
  if (i == std::string::npos) {
    return {};
  }
  int depth = 0;
  std::size_t end = i;
  for (; end < source.size(); ++end) {
    if (source[end] == '{') ++depth;
    if (source[end] == '}') {
      --depth;
      if (depth == 0) {
        break;
      }
    }
  }
  // Count from the start of the signature line through the closing brace.
  const std::size_t line_start = source.rfind('\n', start);
  const std::size_t from = line_start == std::string::npos ? 0 : line_start + 1;
  return count_cpp(source.substr(from, end - from + 1));
}

std::map<std::string, std::pair<std::string, std::vector<std::string>>>
jax_graph_manifest() {
  return {
      {"pointing_detector",
       {"src/kernels/jax/pointing_detector.cpp", {"graph"}}},
      {"pixels_healpix",
       {"src/kernels/jax/pixels_healpix.cpp", {"spread_bits", "graph"}}},
      {"stokes_weights",
       {"src/kernels/jax/stokes_weights.cpp", {"iqu_graph", "i_graph"}}},
      {"scan_map", {"src/kernels/jax/scan_map.cpp", {"graph"}}},
      {"noise_weight", {"src/kernels/jax/noise_weight.cpp", {"graph"}}},
      {"build_noise_weighted",
       {"src/kernels/jax/build_noise_weighted.cpp", {"graph"}}},
      {"template_offset",
       {"src/kernels/jax/template_offset.cpp",
        {"amplitude_index", "add_graph", "project_graph", "precond_graph"}}},
  };
}

std::map<std::string, std::map<std::string, std::vector<std::string>>>
kernel_source_manifest() {
  // Kernel implementation files only (Figure 3).  The shared
  // cpu.hpp/omptarget.hpp/jax.hpp declarations are support code.
  return {
      {"pointing_detector",
       {{"cpu", {"src/kernels/cpu/pointing_detector.cpp"}},
        {"omptarget", {"src/kernels/omptarget/pointing_detector.cpp"}},
        {"jax", {"src/kernels/jax/pointing_detector.cpp"}}}},
      {"pixels_healpix",
       {{"cpu", {"src/kernels/cpu/pixels_healpix.cpp"}},
        {"omptarget", {"src/kernels/omptarget/pixels_healpix.cpp"}},
        {"jax", {"src/kernels/jax/pixels_healpix.cpp"}}}},
      {"stokes_weights",
       {{"cpu", {"src/kernels/cpu/stokes_weights.cpp"}},
        {"omptarget", {"src/kernels/omptarget/stokes_weights.cpp"}},
        {"jax", {"src/kernels/jax/stokes_weights.cpp"}}}},
      {"scan_map",
       {{"cpu", {"src/kernels/cpu/scan_map.cpp"}},
        {"omptarget", {"src/kernels/omptarget/scan_map.cpp"}},
        {"jax", {"src/kernels/jax/scan_map.cpp"}}}},
      {"noise_weight",
       {{"cpu", {"src/kernels/cpu/noise_weight.cpp"}},
        {"omptarget", {"src/kernels/omptarget/noise_weight.cpp"}},
        {"jax", {"src/kernels/jax/noise_weight.cpp"}}}},
      {"build_noise_weighted",
       {{"cpu", {"src/kernels/cpu/build_noise_weighted.cpp"}},
        {"omptarget", {"src/kernels/omptarget/build_noise_weighted.cpp"}},
        {"jax", {"src/kernels/jax/build_noise_weighted.cpp"}}}},
      {"template_offset",
       {{"cpu", {"src/kernels/cpu/template_offset.cpp"}},
        {"omptarget", {"src/kernels/omptarget/template_offset.cpp"}},
        {"jax", {"src/kernels/jax/template_offset.cpp"}}}},
  };
}

std::map<std::string, std::vector<std::string>> support_source_manifest() {
  // Accelerator-related dependencies per implementation: data movement,
  // GPU types, launch plumbing (Figure 2's upper bars).
  return {
      {"cpu", {"src/kernels/cpu.hpp", "src/kernels/common.hpp",
               "src/kernels/common.cpp"}},
      {"omptarget",
       {"src/kernels/omptarget.hpp", "src/kernels/common.hpp",
        "src/kernels/common.cpp", "src/omptarget/runtime.hpp",
        "src/omptarget/runtime.cpp", "src/omptarget/pool.hpp",
        "src/omptarget/pool.cpp"}},
      {"jax", {"src/kernels/jax.hpp", "src/kernels/jax/support.hpp",
               "src/kernels/jax/support.cpp"}},
  };
}

}  // namespace toast::tools
