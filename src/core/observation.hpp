#pragma once

// The observation data model: one contiguous chunk of telescope data held
// by one process.  Mirrors TOAST's Observation: a focalplane, shared
// (per-sample) fields, detector-data (per detector x sample) fields, and
// scan intervals.  Fields are named buffers so the pipeline can reason
// about data movement generically (paper §3.2.2).

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "qarray/qarray.hpp"

namespace toast::core {

/// Instrument description: detector pointing offsets and noise properties.
struct Focalplane {
  double sample_rate = 37.0;  // Hz
  std::vector<std::string> names;
  /// Quaternion offset of each detector from the boresight.
  std::vector<qarray::Quat> quats;
  /// Polarization angle (radians) and efficiency per detector.
  std::vector<double> pol_angles;
  std::vector<double> pol_eff;
  /// 1/f noise model per detector: NET (K*sqrt(s)), knee & minimum
  /// frequency (Hz), slope.
  std::vector<double> net;
  std::vector<double> fknee;
  std::vector<double> fmin;
  std::vector<double> alpha;

  std::int64_t n_detectors() const {
    return static_cast<std::int64_t>(quats.size());
  }
};

enum class FieldType : std::uint8_t { kF64, kI64, kU8 };

/// A named data buffer inside an observation.
class Field {
 public:
  Field() = default;
  Field(FieldType type, std::int64_t width, std::int64_t count,
        bool scalable = true);

  FieldType type() const { return type_; }
  /// Whether the field's size grows with the sample count (timestream
  /// domain) or is fixed (map domain).  Decides which scale factor the
  /// paper-scale cost models apply.
  bool scalable() const { return scalable_; }
  /// Elements per (detector, sample) tuple (e.g. 4 for quaternions).
  std::int64_t width() const { return width_; }
  std::int64_t count() const { return count_; }
  std::size_t byte_size() const;

  std::span<double> f64();
  std::span<const double> f64() const;
  std::span<std::int64_t> i64();
  std::span<const std::int64_t> i64() const;
  std::span<std::uint8_t> u8();
  std::span<const std::uint8_t> u8() const;

  void* raw();
  const void* raw() const;
  void zero();

 private:
  FieldType type_ = FieldType::kF64;
  std::int64_t width_ = 1;
  std::int64_t count_ = 0;
  bool scalable_ = true;
  std::variant<std::vector<double>, std::vector<std::int64_t>,
               std::vector<std::uint8_t>>
      data_;
};

class Observation {
 public:
  Observation(std::string name, Focalplane fp, std::int64_t n_samples);

  const std::string& name() const { return name_; }
  const Focalplane& focalplane() const { return fp_; }
  std::int64_t n_detectors() const { return fp_.n_detectors(); }
  std::int64_t n_samples() const { return n_samples_; }

  std::vector<Interval>& intervals() { return intervals_; }
  const std::vector<Interval>& intervals() const { return intervals_; }
  /// Longest interval (the padding target of both GPU ports).
  std::int64_t max_interval_length() const;

  // --- field management --------------------------------------------------

  /// Per-detector data: count = n_detectors * n_samples * width.
  Field& create_detdata(const std::string& name, FieldType type,
                        std::int64_t width = 1);
  /// Shared per-sample data: count = n_samples * width.
  Field& create_shared(const std::string& name, FieldType type,
                       std::int64_t width = 1);
  /// Free-size buffer.  `scalable` says whether the buffer grows with the
  /// sample count (template amplitudes: yes; map-domain accumulators: no).
  Field& create_buffer(const std::string& name, FieldType type,
                       std::int64_t count, bool scalable = false);

  bool has_field(const std::string& name) const;
  Field& field(const std::string& name);
  const Field& field(const std::string& name) const;
  void remove_field(const std::string& name);
  std::vector<std::string> field_names() const;

  /// Span over one detector's slice of a per-detector F64 field.
  std::span<double> det_f64(const std::string& name, std::int64_t det);
  std::span<const double> det_f64(const std::string& name,
                                  std::int64_t det) const;
  std::span<std::int64_t> det_i64(const std::string& name, std::int64_t det);
  std::span<const std::int64_t> det_i64(const std::string& name,
                                        std::int64_t det) const;

  /// Total bytes across all fields (memory-model input).
  std::size_t byte_size() const;

 private:
  std::string name_;
  Focalplane fp_;
  std::int64_t n_samples_ = 0;
  std::vector<Interval> intervals_;
  std::map<std::string, Field> fields_;
};

/// All observations owned by one process.
struct Data {
  std::vector<Observation> observations;

  std::size_t byte_size() const {
    std::size_t total = 0;
    for (const auto& ob : observations) {
      total += ob.byte_size();
    }
    return total;
  }
};

// Canonical field names used by the kernels (TOAST operator defaults).
namespace fields {
inline constexpr const char* kBoresight = "boresight";
inline constexpr const char* kHwpAngle = "hwp_angle";
inline constexpr const char* kTimes = "times";
inline constexpr const char* kSharedFlags = "shared_flags";
inline constexpr const char* kQuats = "quats";
inline constexpr const char* kPixels = "pixels";
inline constexpr const char* kWeights = "weights";
inline constexpr const char* kSignal = "signal";
inline constexpr const char* kDetFlags = "det_flags";
inline constexpr const char* kZmap = "zmap";
inline constexpr const char* kAmplitudes = "amplitudes";
inline constexpr const char* kSkyMap = "sky_map";
}  // namespace fields

}  // namespace toast::core
