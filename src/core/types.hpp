#pragma once

// Shared framework vocabulary: sample intervals, kernel backends.

#include <cstdint>
#include <string>

namespace toast::core {

/// Half-open range of time samples [start, stop).  TOAST pipelines operate
/// on lists of such intervals with *varying lengths*; the varying lengths
/// are what forces the padding / guard-cut strategies of the two GPU ports.
struct Interval {
  std::int64_t start = 0;
  std::int64_t stop = 0;
  std::int64_t length() const { return stop - start; }
};

/// Which implementation of a kernel to run (paper §3.2.1: selectable for
/// the entire code, individual pipelines, or individual kernels).
enum class Backend {
  kCpu,          ///< original OpenMP CPU kernels (the baseline)
  kOmpTarget,    ///< OpenMP Target Offload port
  kJax,          ///< JAX port on the GPU backend
  kJaxCpu,       ///< JAX port forced onto its CPU backend (paper §4.2)
  kJaxCompiled,  ///< JAX port on the compiled fused-loop xla executor
};

const char* to_string(Backend b);

/// True when the backend executes kernels on the accelerator.
inline bool is_accel(Backend b) {
  return b == Backend::kOmpTarget || b == Backend::kJax ||
         b == Backend::kJaxCompiled;
}

}  // namespace toast::core
