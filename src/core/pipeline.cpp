#include "core/pipeline.hpp"

#include <map>

#include "accel/sim_device.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace toast::core {

namespace {

struct FieldState {
  bool host_valid = true;
  bool device_valid = false;
};

}  // namespace

Backend Pipeline::dispatch_backend(const std::string& kernel,
                                   ExecContext& ctx) const {
  if (backend_override_.has_value()) {
    return *backend_override_;
  }
  return ctx.backend_for(kernel);
}

PlanOptions Pipeline::effective_options() const {
  PlanOptions options;
  options.naive_staging = schedule_.staging.mode == Staging::kNaive;
  options.prefetch = schedule_.staging.prefetch;
  options.evict = schedule_.staging.evict;
  return options;
}

// --- planned execution (the default) ---------------------------------------

std::string Pipeline::plan_key(const Observation& ob, ExecContext& ctx) const {
  // Keyed like the xla JIT cache: the schedule-space config hash (which
  // covers staging mode, prefetch/evict and every other schedule axis),
  // the pipeline signature (operators, outputs), the backend map
  // (dispatch + degradation at key time) and the observation field
  // layout.  Re-keying off the config hash is what lets the autotuner
  // evaluate many schedules against one pipeline without plan aliasing.
  std::string key;
  key += "cfg=";
  key += schedule_.hash_hex();
  for (const auto& m : meta_) {
    const Backend b = dispatch_backend(m.name, ctx);
    const bool accel =
        m.supports_accel && is_accel(b) && !ctx.faults().degraded(m.name);
    key += ";";
    key += m.name;
    key += ":";
    key += to_string(b);
    key += accel ? ":a" : ":h";
  }
  key += ";out=";
  for (const auto& name : outputs_) {
    key += name;
    key += ",";
  }
  key += ";fields=";
  for (const auto& name : ob.field_names()) {
    key += name;
    key += ",";
  }
  return key;
}

std::shared_ptr<const ExecutionPlan> Pipeline::plan_for(const Observation& ob,
                                                        ExecContext& ctx) {
  const PlanOptions options = effective_options();
  const std::string key = plan_key(ob, ctx);
  const auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    plan_stats_.cache_hits += 1.0;
    return it->second;
  }
  plan_stats_.cache_misses += 1.0;
  std::vector<Backend> backends;
  std::vector<char> on_accel;
  backends.reserve(meta_.size());
  on_accel.reserve(meta_.size());
  for (const auto& m : meta_) {
    const Backend b = dispatch_backend(m.name, ctx);
    backends.push_back(b);
    on_accel.push_back(
        (m.supports_accel && is_accel(b) && !ctx.faults().degraded(m.name))
            ? 1
            : 0);
  }
  auto plan = std::make_shared<const ExecutionPlan>(
      build_plan(meta_, options, outputs_, backends, on_accel, key));
  plan_cache_.emplace(key, plan);
  // Plan build is charged once per cache entry as a structural span:
  // zero virtual seconds, so the default plan stays bit-for-bit equal to
  // the interpreter (the per-operator pipeline_overhead already models
  // the framework layer; see docs/MODEL.md).
  const obs::SpanId span = ctx.tracer().record_at(
      "plan_build", "plan", ctx.clock().now(), 0.0,
      to_string(ctx.config().backend), nullptr, /*logged=*/false);
  ctx.tracer().add_counter(span, "steps",
                           static_cast<double>(plan->steps.size()));
  ctx.tracer().add_counter(span, "operators",
                           static_cast<double>(operators_.size()));
  ctx.tracer().add_counter(span, "transfers_avoided",
                           static_cast<double>(plan->transfers_avoided));
  ctx.tracer().add_counter(span, "planned_evictions",
                           static_cast<double>(plan->planned_evictions));
  return plan;
}

void Pipeline::exec(Data& data, ExecContext& ctx) {
  for (auto& ob : data.observations) {
    exec(ob, ctx);
  }
}

void Pipeline::exec(Observation& ob, ExecContext& ctx) {
  // Executor degradation ladder: once the policy escalates the
  // "executor" domain, compiled plan replay gives way to the
  // interpreter — safe because the interpreter is the plan's bitwise
  // oracle (identical products, clock and TimeLog).
  if (ctx.resilience().level("executor") > 0) {
    exec_interpreted(ob, ctx);
    return;
  }
  const auto plan = plan_for(ob, ctx);
  execute_plan(*plan, meta_, ob, ctx, backend_override_, plan_stats_);
}

// --- the interpreter (equivalence oracle) ----------------------------------

void Pipeline::exec_interpreted(Data& data, ExecContext& ctx) {
  for (auto& ob : data.observations) {
    exec_interpreted(ob, ctx);
  }
}

void Pipeline::exec_interpreted(Observation& ob, ExecContext& ctx) {
  obs::ScopedSpan pipeline_span(ctx.tracer(), "pipeline:" + ob.name(),
                                "pipeline");
  AccelStore store(ctx);
  std::map<Field*, FieldState> state;

  auto ensure_mapped = [&](Field& f) {
    if (!store.present(f)) {
      store.create(f);
      state[&f];  // host_valid=true, device_valid=false
    }
  };

  // The one download dance shared by the host-execution path, the naive
  // cleanup and the end-of-pipeline loop: copy back if the host copy is
  // stale.  The functional copy precedes the time charge, so a persistent
  // transfer fault still leaves the host data correct — callers that may
  // swallow it only lose the charge.
  auto download = [&](const std::string& name, bool swallow) -> Field* {
    if (!ob.has_field(name)) {
      return nullptr;
    }
    Field& f = ob.field(name);
    const auto it = state.find(&f);
    if (it != state.end() && !it->second.host_valid && store.present(f)) {
      try {
        store.update_host(f);
      } catch (const fault::PersistentFaultError&) {
        if (!swallow) {
          throw;
        }
      }
      it->second.host_valid = true;
    }
    return &f;
  };

  for (const auto& m : meta_) {
    obs::ScopedSpan op_span(ctx.tracer(), m.name, "operator");
    ctx.charge_serial("pipeline_overhead", kOperatorOverheadSeconds);
    m.op->ensure_fields(ob);

    const Backend backend = dispatch_backend(m.name, ctx);
    // Kernels degraded by persistent faults stay on their CPU
    // implementation even through a pipeline-level backend override.
    const bool on_accel = m.supports_accel && is_accel(backend) &&
                          !ctx.faults().degraded(m.name);

    // Host execution path, also the fault-recovery target.
    auto run_host = [&](Backend host_backend, bool recovering) {
      for (const auto& name : m.touched) {
        download(name, /*swallow=*/recovering);
      }
      m.op->exec(ob, ctx, nullptr, host_backend);
      for (const auto& name : m.writes) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        const auto it = state.find(&f);
        if (it != state.end()) {
          it->second.host_valid = true;
          it->second.device_valid = false;
        }
      }
    };

    auto degrade_to_host = [&](const std::string& reason) {
      ctx.faults().note_fallback(m.name, reason);
      ctx.set_kernel_backend(m.name, Backend::kCpu);
      run_host(Backend::kCpu, /*recovering=*/true);
    };

    if (on_accel) {
      bool accel_ok = true;
      try {
        // Map every touched field; stage *in* only the inputs (in-place
        // outputs appear in requires too).  Pure outputs get a device
        // buffer without an upload.
        for (const auto& name : m.touched) {
          if (ob.has_field(name)) {
            ensure_mapped(ob.field(name));
          }
        }
        for (const auto& name : m.reads) {
          if (!ob.has_field(name)) {
            continue;
          }
          Field& f = ob.field(name);
          if (!state[&f].device_valid) {
            store.update_device(f);
            state[&f].device_valid = true;
          }
        }
        m.op->exec(ob, ctx, &store, backend);
        for (const auto& name : m.writes) {
          if (!ob.has_field(name)) {
            continue;
          }
          Field& f = ob.field(name);
          state[&f].device_valid = true;
          state[&f].host_valid = false;
        }
      } catch (const fault::PersistentFaultError&) {
        // Retry budget exhausted on a launch or transfer: degrade this
        // kernel to its CPU implementation and re-run.  The functional
        // work in both runtimes happens on shadow copies before the
        // time charge throws, so host data is untouched and the re-run
        // computes from a consistent state.
        accel_ok = false;
        degrade_to_host("persistent_fault");
      } catch (const accel::DeviceOomError& e) {
        if (!e.info().injected) {
          throw;  // real capacity overflow: the fig4 OOM points rely on it
        }
        accel_ok = false;
        degrade_to_host("device_oom");
      }
      if (accel_ok && schedule_.staging.mode == Staging::kNaive) {
        // Naive strategy: everything comes straight back and the device
        // copies are dropped after every kernel.  This runs outside the
        // recovery try: the op already completed, so a persistent
        // transfer fault here must not re-run it (in-place ops would
        // double-apply).
        for (const auto& name : m.touched) {
          Field* f = download(name, /*swallow=*/true);
          if (f != nullptr && store.present(*f)) {
            store.remove(*f);
            state.erase(f);
          }
        }
      }
    } else {
      run_host(backend, /*recovering=*/false);
    }
  }

  // End of pipeline: final products back to the host; device-only
  // intermediates are dropped without a transfer.
  for (const auto& name : outputs_) {
    download(name, /*swallow=*/true);
  }
  store.clear();
}

}  // namespace toast::core
