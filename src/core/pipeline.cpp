#include "core/pipeline.hpp"

#include <map>
#include <set>

#include "accel/sim_device.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace toast::core {

namespace {

struct FieldState {
  bool host_valid = true;
  bool device_valid = false;
};

}  // namespace

Backend Pipeline::dispatch_backend(const Operator& op,
                                   ExecContext& ctx) const {
  if (backend_override_.has_value()) {
    return *backend_override_;
  }
  return ctx.backend_for(op.name());
}

void Pipeline::exec(Data& data, ExecContext& ctx) {
  for (auto& ob : data.observations) {
    exec(ob, ctx);
  }
}

void Pipeline::exec(Observation& ob, ExecContext& ctx) {
  obs::ScopedSpan pipeline_span(ctx.tracer(), "pipeline:" + ob.name(),
                                "pipeline");
  AccelStore store(ctx);
  std::map<Field*, FieldState> state;

  auto ensure_mapped = [&](Field& f) {
    if (!store.present(f)) {
      store.create(f);
      state[&f];  // host_valid=true, device_valid=false
    }
  };

  for (const auto& op : operators_) {
    obs::ScopedSpan op_span(ctx.tracer(), op->name(), "operator");
    ctx.charge_serial("pipeline_overhead", kOperatorOverheadSeconds);
    op->ensure_fields(ob);

    const Backend backend = dispatch_backend(*op, ctx);
    // Kernels degraded by persistent faults stay on their CPU
    // implementation even through a pipeline-level backend override.
    const bool on_accel = op->supports_accel() && is_accel(backend) &&
                          !ctx.faults().degraded(op->name());

    std::set<std::string> touched;
    for (const auto& name : op->requires_fields()) touched.insert(name);
    for (const auto& name : op->provides_fields()) touched.insert(name);

    // Host execution path, also the fault-recovery target: any field
    // whose current copy lives on the device comes back first (the
    // functional copy precedes the time charge, so a persistent
    // transfer fault during recovery still leaves the host data
    // correct — the charge is simply lost).
    auto run_host = [&](Backend host_backend, bool recovering) {
      for (const auto& name : touched) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        auto it = state.find(&f);
        if (it != state.end() && !it->second.host_valid) {
          try {
            store.update_host(f);
          } catch (const fault::PersistentFaultError&) {
            if (!recovering) {
              throw;
            }
          }
          it->second.host_valid = true;
        }
      }
      op->exec(ob, ctx, nullptr, host_backend);
      for (const auto& name : op->provides_fields()) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        auto it = state.find(&f);
        if (it != state.end()) {
          it->second.host_valid = true;
          it->second.device_valid = false;
        }
      }
    };

    auto degrade_to_host = [&](const std::string& reason) {
      ctx.faults().note_fallback(op->name(), reason);
      ctx.set_kernel_backend(op->name(), Backend::kCpu);
      run_host(Backend::kCpu, /*recovering=*/true);
    };

    if (on_accel) {
      bool accel_ok = true;
      try {
        // Map every touched field; stage *in* only the inputs (in-place
        // outputs appear in requires too).  Pure outputs get a device
        // buffer without an upload.
        for (const auto& name : touched) {
          if (ob.has_field(name)) {
            ensure_mapped(ob.field(name));
          }
        }
        for (const auto& name : op->requires_fields()) {
          if (!ob.has_field(name)) {
            continue;
          }
          Field& f = ob.field(name);
          if (!state[&f].device_valid) {
            store.update_device(f);
            state[&f].device_valid = true;
          }
        }
        op->exec(ob, ctx, &store, backend);
        for (const auto& name : op->provides_fields()) {
          if (!ob.has_field(name)) {
            continue;
          }
          Field& f = ob.field(name);
          state[&f].device_valid = true;
          state[&f].host_valid = false;
        }
      } catch (const fault::PersistentFaultError&) {
        // Retry budget exhausted on a launch or transfer: degrade this
        // kernel to its CPU implementation and re-run.  The functional
        // work in both runtimes happens on shadow copies before the
        // time charge throws, so host data is untouched and the re-run
        // computes from a consistent state.
        accel_ok = false;
        degrade_to_host("persistent_fault");
      } catch (const accel::DeviceOomError& e) {
        if (!e.info().injected) {
          throw;  // real capacity overflow: the fig4 OOM points rely on it
        }
        accel_ok = false;
        degrade_to_host("device_oom");
      }
      if (accel_ok && staging_ == Staging::kNaive) {
        // Naive strategy: everything comes straight back and the device
        // copies are dropped after every kernel.  This runs outside the
        // recovery try: the op already completed, so a persistent
        // transfer fault here must not re-run it (in-place ops would
        // double-apply); the functional copy precedes the charge, so
        // only the time accounting is lost.
        for (const auto& name : touched) {
          if (!ob.has_field(name)) {
            continue;
          }
          Field& f = ob.field(name);
          if (store.present(f)) {
            if (!state[&f].host_valid) {
              try {
                store.update_host(f);
              } catch (const fault::PersistentFaultError&) {
              }
              state[&f].host_valid = true;
            }
            store.remove(f);
            state.erase(&f);
          }
        }
      }
    } else {
      run_host(backend, /*recovering=*/false);
    }
  }

  // End of pipeline: final products back to the host; device-only
  // intermediates are dropped without a transfer.
  for (const auto& name : outputs_) {
    if (!ob.has_field(name)) {
      continue;
    }
    Field& f = ob.field(name);
    const auto it = state.find(&f);
    if (it != state.end() && !it->second.host_valid) {
      try {
        store.update_host(f);
      } catch (const fault::PersistentFaultError&) {
        // Functional copy already landed; only the charge is lost.
      }
      it->second.host_valid = true;
    }
  }
  store.clear();
}

}  // namespace toast::core
