#include "core/pipeline.hpp"

#include <map>
#include <set>

#include "obs/trace.hpp"

namespace toast::core {

namespace {

struct FieldState {
  bool host_valid = true;
  bool device_valid = false;
};

}  // namespace

Backend Pipeline::dispatch_backend(const Operator& op,
                                   ExecContext& ctx) const {
  if (backend_override_.has_value()) {
    return *backend_override_;
  }
  return ctx.backend_for(op.name());
}

void Pipeline::exec(Data& data, ExecContext& ctx) {
  for (auto& ob : data.observations) {
    exec(ob, ctx);
  }
}

void Pipeline::exec(Observation& ob, ExecContext& ctx) {
  obs::ScopedSpan pipeline_span(ctx.tracer(), "pipeline:" + ob.name(),
                                "pipeline");
  AccelStore store(ctx);
  std::map<Field*, FieldState> state;

  auto ensure_mapped = [&](Field& f) {
    if (!store.present(f)) {
      store.create(f);
      state[&f];  // host_valid=true, device_valid=false
    }
  };

  for (const auto& op : operators_) {
    obs::ScopedSpan op_span(ctx.tracer(), op->name(), "operator");
    ctx.charge_serial("pipeline_overhead", kOperatorOverheadSeconds);
    op->ensure_fields(ob);

    const Backend backend = dispatch_backend(*op, ctx);
    const bool on_accel = op->supports_accel() && is_accel(backend);

    std::set<std::string> touched;
    for (const auto& name : op->requires_fields()) touched.insert(name);
    for (const auto& name : op->provides_fields()) touched.insert(name);

    if (on_accel) {
      // Map every touched field; stage *in* only the inputs (in-place
      // outputs appear in requires too).  Pure outputs get a device
      // buffer without an upload.
      for (const auto& name : touched) {
        if (ob.has_field(name)) {
          ensure_mapped(ob.field(name));
        }
      }
      for (const auto& name : op->requires_fields()) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        if (!state[&f].device_valid) {
          store.update_device(f);
          state[&f].device_valid = true;
        }
      }
      op->exec(ob, ctx, &store, backend);
      for (const auto& name : op->provides_fields()) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        state[&f].device_valid = true;
        state[&f].host_valid = false;
      }
      if (staging_ == Staging::kNaive) {
        // Naive strategy: everything comes straight back and the device
        // copies are dropped after every kernel.
        for (const auto& name : touched) {
          if (!ob.has_field(name)) {
            continue;
          }
          Field& f = ob.field(name);
          if (store.present(f)) {
            if (!state[&f].host_valid) {
              store.update_host(f);
              state[&f].host_valid = true;
            }
            store.remove(f);
            state.erase(&f);
          }
        }
      }
    } else {
      // Host execution: any field whose current copy lives on the device
      // must come back first.
      for (const auto& name : touched) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        auto it = state.find(&f);
        if (it != state.end() && !it->second.host_valid) {
          store.update_host(f);
          it->second.host_valid = true;
        }
      }
      op->exec(ob, ctx, nullptr, backend);
      for (const auto& name : op->provides_fields()) {
        if (!ob.has_field(name)) {
          continue;
        }
        Field& f = ob.field(name);
        auto it = state.find(&f);
        if (it != state.end()) {
          it->second.host_valid = true;
          it->second.device_valid = false;
        }
      }
    }
  }

  // End of pipeline: final products back to the host; device-only
  // intermediates are dropped without a transfer.
  for (const auto& name : outputs_) {
    if (!ob.has_field(name)) {
      continue;
    }
    Field& f = ob.field(name);
    const auto it = state.find(&f);
    if (it != state.end() && !it->second.host_valid) {
      store.update_host(f);
      it->second.host_valid = true;
    }
  }
  store.clear();
}

}  // namespace toast::core
