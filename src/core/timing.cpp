#include "core/timing.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace toast::core {

void write_timing_csv(const accel::TimeLog& log, std::ostream& out) {
  out << "category,calls,seconds\n";
  for (const auto& name : log.categories()) {
    out << name << "," << log.calls(name) << "," << std::setprecision(12)
        << log.seconds(name) << "\n";
  }
}

void write_timing_csv(const accel::TimeLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  write_timing_csv(log, out);
}

accel::TimeLog read_timing_csv(std::istream& in) {
  accel::TimeLog log;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      throw std::runtime_error("malformed timing CSV line: " + line);
    }
    const std::string name = line.substr(0, c1);
    const long calls = std::stol(line.substr(c1 + 1, c2 - c1 - 1));
    const double seconds = std::stod(line.substr(c2 + 1));
    // Reconstruct: one add per call would lose the total; add once with
    // the full time then pad call count.
    log.add(name, seconds);
    for (long k = 1; k < calls; ++k) {
      log.add(name, 0.0);
    }
  }
  return log;
}

accel::TimeLog read_timing_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return read_timing_csv(in);
}

TimingComparison compare_timings(
    const std::vector<std::pair<std::string, accel::TimeLog>>& runs) {
  TimingComparison cmp;
  for (const auto& [label, log] : runs) {
    cmp.labels.push_back(label);
  }
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const auto& name : runs[r].second.categories()) {
      auto& row = cmp.rows[name];
      row.resize(runs.size(), 0.0);
      row[r] = runs[r].second.seconds(name);
    }
  }
  for (auto& [name, row] : cmp.rows) {
    row.resize(runs.size(), 0.0);
  }
  return cmp;
}

std::string TimingComparison::to_csv() const {
  std::ostringstream out;
  out << "category";
  for (const auto& label : labels) {
    out << "," << label;
  }
  if (labels.size() > 1) {
    for (std::size_t i = 1; i < labels.size(); ++i) {
      out << ",speedup_" << labels[i];
    }
  }
  out << "\n";
  for (const auto& [name, row] : rows) {
    out << name;
    for (const double v : row) {
      out << "," << std::setprecision(9) << v;
    }
    if (labels.size() > 1) {
      for (std::size_t i = 1; i < row.size(); ++i) {
        out << "," << (row[i] > 0.0 ? row[0] / row[i] : 0.0);
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string TimingComparison::to_table() const {
  std::ostringstream out;
  out << std::left << std::setw(34) << "category";
  for (const auto& label : labels) {
    out << std::right << std::setw(14) << label;
  }
  out << "\n";
  for (const auto& [name, row] : rows) {
    out << std::left << std::setw(34) << name;
    for (const double v : row) {
      out << std::right << std::setw(14) << std::scientific
          << std::setprecision(3) << v;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace toast::core
