#pragma once

// Operator base class: one modular processing step (paper §3.1).  Each
// operator declares GPU support and the fields it reads/writes, which is
// exactly the information the hybrid pipeline uses to place data movement
// (paper §3.2.2).

#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/observation.hpp"

namespace toast::core {

class AccelStore;

class Operator {
 public:
  virtual ~Operator() = default;

  /// Kernel/operator name; also the dispatch and timing key.
  virtual std::string name() const = 0;

  /// Whether a GPU implementation exists.  The paper's benchmark has >30
  /// unported kernels; those return false and force data back to host.
  virtual bool supports_accel() const { return false; }

  /// Fields read (must be valid wherever the operator runs).
  virtual std::vector<std::string> requires_fields() const { return {}; }
  /// Fields written (become valid where the operator ran).  Fields that
  /// do not exist yet are created by the operator itself.
  virtual std::vector<std::string> provides_fields() const { return {}; }

  /// Create any output fields that do not exist yet (host side).  Called
  /// by the pipeline before staging so device copies can be mapped.
  virtual void ensure_fields(Observation& ob) { (void)ob; }

  /// Execute on one observation.  `accel` is the device-copy store when
  /// the pipeline placed this call on the accelerator (the operator must
  /// then run its device implementation against store pointers), or
  /// nullptr for a host execution.  `backend` is the dispatched kernel
  /// implementation (it may be an accel backend with accel == nullptr
  /// when the operator itself has no GPU support, or kJaxCpu which always
  /// runs host-side).
  virtual void exec(Observation& ob, ExecContext& ctx, AccelStore* accel,
                    Backend backend) = 0;
};

}  // namespace toast::core
