#include "core/context.hpp"

namespace toast::core {

ExecContext::ExecContext(const ExecConfig& config)
    : config_(config),
      device_(config.device_spec),
      tracer_(&clock_),
      faults_(config.fault_plan, &clock_, &tracer_),
      resilience_(config.resilience_policy, &clock_, &tracer_,
                  config.fault_plan.seed),
      host_(config.host_spec),
      omp_rt_(device_, clock_, tracer_),
      jax_rt_(device_, clock_, tracer_) {
  device_.set_trace_sink(&tracer_);
  device_.set_sharing(config.sharing, config.procs_per_gpu);
  faults_.set_resilience(&resilience_);
  if (faults_.armed()) {
    device_.set_fault_hook(&faults_);
    omp_rt_.set_fault_injector(&faults_);
    jax_rt_.set_fault_injector(&faults_);
  }
  omp_rt_.set_dispatch_overhead(config.omp_dispatch_overhead);
  omp_rt_.set_work_scale(config.work_scale);
  jax_rt_.set_work_scale(config.work_scale);
  if (config.schedule.streams > 1) {
    // The schedule's stream count drives both backend runtimes; the
    // default (1) leaves them exactly as constructed, bit-for-bit.
    jax_rt_.set_streams(config.schedule.streams);
    omp_rt_.scheduler().set_streams(config.schedule.streams);
  }
  if ((config.backend == Backend::kJax ||
       config.backend == Backend::kJaxCompiled) &&
      config.schedule.device.jax_preallocate) {
    jax_rt_.enable_preallocation();
  }
  if (config.backend == Backend::kJaxCompiled) {
    jax_rt_.set_executor(xla::ExecMode::kCompiled);
  }
  if (config.backend == Backend::kJaxCpu) {
    jax_rt_.set_cpu_backend(config.host_spec, config.threads,
                            config.socket_active_threads);
  }
}

Backend ExecContext::backend_for(const std::string& kernel) const {
  const auto it = overrides_.find(kernel);
  return it == overrides_.end() ? config_.backend : it->second;
}

void ExecContext::set_kernel_backend(const std::string& kernel, Backend b) {
  overrides_[kernel] = b;
}

void ExecContext::charge_host_kernel(const std::string& name,
                                     const accel::WorkEstimate& work) {
  const accel::WorkEstimate scaled = work.scaled(config_.work_scale);
  const double t = host_.exec_time(scaled, config_.threads,
                                   config_.socket_active_threads);
  clock_.advance(t);
  tracer_.record(name, "kernel", t, "cpu", &scaled);
}

void ExecContext::charge_host_kernel_raw(const std::string& name,
                                         const accel::WorkEstimate& work) {
  const double t = host_.exec_time(work, config_.threads,
                                   config_.socket_active_threads);
  clock_.advance(t);
  tracer_.record(name, "kernel", t, "cpu", &work);
}

void ExecContext::charge_serial(const std::string& name, double seconds) {
  clock_.advance(seconds);
  tracer_.record(name, "serial", seconds);
}

}  // namespace toast::core
