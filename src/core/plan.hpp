#pragma once

// Pipeline compilation (ROADMAP: plan/execute architecture).
//
// The hybrid pipeline of paper §3.2.2 places data movement from each
// operator's requires/provides declarations.  This layer lifts that
// placement out of the exec loop: from the operator list, the backend
// dispatch and the observation field layout it builds the operator×field
// dataflow graph once and emits a linear ExecutionPlan of typed steps
// (EnsureFields, MapField, Upload, Launch, Download, Evict, ...) with
// per-field liveness — uploads only before first device use, downloads
// only for live-out or host-consumed fields, Evict at a dead device
// intermediate's last use.  Plans are cached per (pipeline signature,
// backend map, staging mode, observation layout), like the xla JIT
// cache.
//
// The default (synchronous, no prefetch, no evict) plan executes the
// exact step sequence of the historical interpreter, with the same
// runtime guards, so its virtual-time results are bit-for-bit identical
// — including under deterministic fault plans, where a degraded kernel
// triggers the plan's host-fallback patch instead of an inline lambda.
// PlanOptions::prefetch and PlanOptions::evict trade that guarantee for
// transfer/compute overlap (via the sched copy engine) and a lower peak
// device footprint.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "backend/manifest.hpp"
#include "core/accel_store.hpp"
#include "core/context.hpp"
#include "core/observation.hpp"
#include "core/operator.hpp"
#include "core/types.hpp"
#include "sched/scheduler.hpp"

namespace toast::core {

/// Per-operator host-side framework overhead (the Python layer driving
/// the kernels), charged as serial time before every operator.
inline constexpr double kPipelineOverheadSeconds = 5.0e-5;

/// Immutable per-operator metadata, queried once at pipeline construction
/// instead of re-querying requires/provides/name per operator per
/// observation ("requires" is a C++20 keyword, hence reads/writes).
struct OpMeta {
  std::shared_ptr<Operator> op;
  std::string name;
  bool supports_accel = false;
  std::vector<std::string> reads;   ///< requires_fields(), vector order
  std::vector<std::string> writes;  ///< provides_fields(), vector order
  std::vector<std::string> touched;  ///< sorted unique reads ∪ writes
};

std::vector<OpMeta> build_op_metadata(
    const std::vector<std::shared_ptr<Operator>>& operators);

struct PlanOptions {
  /// Transfer in/out around every accelerated operator (Staging::kNaive).
  bool naive_staging = false;
  /// Hoist the next accel operator's uploads onto the sched copy engine
  /// while the current operator computes (no bitwise guarantee).
  bool prefetch = false;
  /// Unmap dead device intermediates at their last use (no bitwise
  /// guarantee: returning blocks to the pool changes later alloc costs).
  bool evict = false;
};

enum class StepKind : std::uint8_t {
  kChargeOverhead,  ///< per-operator serial framework overhead
  kEnsureFields,    ///< op->ensure_fields(ob)
  kMapField,        ///< allocate the device shadow if not mapped
  kUpload,          ///< H2D if the device copy is stale (async: prefetch)
  kLaunch,          ///< operator execution (device or host)
  kDownload,        ///< D2H if the host copy is stale
  kEvict,           ///< drop the device mapping
  kSyncTransfers,   ///< drain the prefetch copy engine
};

const char* to_string(StepKind k);

struct PlanStep {
  StepKind kind = StepKind::kLaunch;
  int op = -1;     ///< operator index (kEnsureFields/kLaunch/kCharge...)
  int field = -1;  ///< index into ExecutionPlan::field_names
  bool on_device = false;          ///< kLaunch: device implementation
  bool async = false;              ///< kUpload: placed on the copy engine
  bool swallow_persistent = false;  ///< kDownload: swallow persistent faults
  bool liveness = false;  ///< kEvict: placed by liveness (not naive cleanup)
};

/// One operator's slice of the plan.  Step ranges (indices into steps):
///   [begin, try_begin)      pre: overhead charge + ensure_fields
///   [try_begin, post_begin) accel body, wrapped in the recovery try
///   [post_begin, post_end)  naive-staging cleanup (skipped after a fault)
///   [post_end, end)         liveness evictions (always run)
/// [alt_begin, alt_end) indexes alt_steps: the host-fallback patch that
/// replaces the accel body when the operator is (or becomes) degraded or
/// host-dispatched.  Host-planned groups have an empty accel body and run
/// the patch unconditionally.
struct PlanGroup {
  int op = -1;  ///< -1: epilogue (end-of-pipeline output downloads)
  Backend backend = Backend::kCpu;  ///< dispatch result at plan time
  /// Manifest slot of `backend` (backend::index_of); backend::npos for
  /// the epilogue group.  Gives the dump and any consumer the tag name
  /// without re-deriving the enum mapping.
  std::size_t tag = backend::npos;
  bool on_accel = false;            ///< staged for the device at plan time
  int begin = 0;
  int try_begin = 0;
  int post_begin = 0;
  int post_end = 0;
  int end = 0;
  int alt_begin = 0;
  int alt_end = 0;
};

/// A kLaunch body bound at plan time: invokes one operator's exec with
/// whatever store/backend the executing group resolved at runtime.
using LaunchFn =
    std::function<void(Observation&, ExecContext&, AccelStore*, Backend)>;

struct ExecutionPlan {
  std::string key;
  PlanOptions options;
  std::vector<std::string> field_names;
  std::vector<PlanStep> steps;
  std::vector<PlanStep> alt_steps;
  std::vector<PlanGroup> groups;
  /// Plan-time-bound launch callables, one per operator.  execute_plan
  /// threads kLaunch steps through these instead of re-resolving the
  /// operator object per step, so the plan carries everything a launch
  /// needs except the runtime dispatch decision.
  std::vector<LaunchFn> launches;
  /// Names/backends baked at plan time, for the dump (index = op).
  std::vector<std::string> op_names;
  std::vector<Backend> op_backends;
  std::vector<char> op_on_accel;

  // Static dataflow statistics (modelled per observation, assuming every
  // declared field exists): what the naive strategy would transfer vs
  // what this plan schedules, and how many liveness evictions it placed.
  int naive_transfers = 0;
  int planned_transfers = 0;
  int transfers_avoided = 0;
  int planned_evictions = 0;
  int prefetch_uploads = 0;

  /// Dump as "toastcase-plan-v1" JSON (toast-trace plan reads this).
  void write_json(std::ostream& out) const;
};

/// Cumulative plan/execute statistics of one Pipeline.
struct PlanStats {
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  /// Groups whose baked accel decision was patched to the host fallback
  /// (mid-run degradation) — the plan-level view of fault recovery.
  double replans = 0.0;
  /// Static transfers avoided vs the naive strategy, accumulated per
  /// executed observation.
  double transfers_avoided = 0.0;
  /// Liveness evictions actually performed.
  double evictions = 0.0;
  /// Uploads that ran on the copy engine (prefetch mode).
  double prefetched_uploads = 0.0;
  /// High-water device shadow footprint across executed observations.
  double peak_mapped_bytes = 0.0;
};

/// Compile the operator list into a plan.  `backends`/`on_accel` are the
/// dispatch decisions at plan time (one entry per operator).
ExecutionPlan build_plan(const std::vector<OpMeta>& meta,
                         const PlanOptions& options,
                         const std::vector<std::string>& outputs,
                         const std::vector<Backend>& backends,
                         const std::vector<char>& on_accel, std::string key);

/// Execute a plan on one observation.  Re-evaluates each group's dispatch
/// at runtime: a kernel degraded since plan build runs the group's
/// host-fallback patch (counted as a replan) instead of the accel body.
void execute_plan(const ExecutionPlan& plan, const std::vector<OpMeta>& meta,
                  Observation& ob, ExecContext& ctx,
                  const std::optional<Backend>& backend_override,
                  PlanStats& stats);

/// Step-level executor for one (plan, observation) run: owns the device
/// store, per-field validity state, the optional prefetch copy engine and
/// the degrade bookkeeping.  Both drivers — execute_plan's staged replay
/// loop and the async task-graph lowering (src/async/lower.*) — run every
/// step through this class, so "what a step does" is defined exactly once
/// and the two runtimes stay bit-for-bit interchangeable; a driver only
/// decides *when* each step runs.
class PlanExecutor {
 public:
  PlanExecutor(const ExecutionPlan& plan, const std::vector<OpMeta>& meta,
               Observation& ob, ExecContext& ctx,
               const std::optional<Backend>& backend_override,
               PlanStats& stats);

  /// Run one plan (or alt) step.  `recovering` lets downloads swallow
  /// persistent transfer faults, as the interpreter's recovery path did.
  void run_step(const PlanStep& s, bool recovering);

  /// Run a group's host-fallback patch [alt_begin, alt_end).
  void run_patch(const PlanGroup& g, bool recovering);

  /// Resolve the group's dispatch at run time; returns whether the accel
  /// body should execute.  When the plan staged the group for the device
  /// but the kernel has since degraded, the replan is counted here.
  bool decide(const PlanGroup& g);

  /// Run `body` under the recovery filter: returns nullptr when it ran
  /// clean, else the degrade reason of the recoverable fault (persistent
  /// retry exhaustion, injected OOM) that aborted it.  Non-recoverable
  /// exceptions propagate.
  const char* attempt(const std::function<void()>& body);

  /// Mid-body degrade bookkeeping: fallback + replan notes, pin the
  /// kernel to the CPU.  The caller then runs the patch (recovering).
  void mark_degraded(const PlanGroup& g, const char* reason);

  /// Drain in-flight prefetches, fold the plan counters into the stats
  /// and the pipeline span, release the device store.
  void finish(obs::SpanId pipeline_span);

  const ExecutionPlan& plan() const { return plan_; }

 private:
  Field* field_ptr(int idx);
  void download(Field& f, bool swallow);

  struct FieldRt {
    bool host_valid = true;
    bool device_valid = false;
  };

  const ExecutionPlan& plan_;
  const std::vector<OpMeta>& meta_;
  Observation& ob_;
  ExecContext& ctx_;
  const std::optional<Backend> backend_override_;
  PlanStats& stats_;
  AccelStore store_;
  std::map<Field*, FieldRt> state_;
  std::optional<sched::Scheduler> engine_;
  Backend cur_backend_ = Backend::kCpu;
};

}  // namespace toast::core
