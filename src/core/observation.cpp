#include "core/observation.hpp"

#include <algorithm>

namespace toast::core {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kCpu:
      return "cpu";
    case Backend::kOmpTarget:
      return "omptarget";
    case Backend::kJax:
      return "jax";
    case Backend::kJaxCpu:
      return "jax-cpu";
    case Backend::kJaxCompiled:
      return "jax-compiled";
  }
  return "?";
}

Field::Field(FieldType type, std::int64_t width, std::int64_t count,
             bool scalable)
    : type_(type), width_(width), count_(count), scalable_(scalable) {
  const auto n = static_cast<std::size_t>(count);
  switch (type_) {
    case FieldType::kF64:
      data_ = std::vector<double>(n, 0.0);
      break;
    case FieldType::kI64:
      data_ = std::vector<std::int64_t>(n, 0);
      break;
    case FieldType::kU8:
      data_ = std::vector<std::uint8_t>(n, 0);
      break;
  }
}

std::size_t Field::byte_size() const {
  switch (type_) {
    case FieldType::kF64:
    case FieldType::kI64:
      return static_cast<std::size_t>(count_) * 8;
    case FieldType::kU8:
      return static_cast<std::size_t>(count_);
  }
  return 0;
}

std::span<double> Field::f64() { return std::get<std::vector<double>>(data_); }
std::span<const double> Field::f64() const {
  return std::get<std::vector<double>>(data_);
}
std::span<std::int64_t> Field::i64() {
  return std::get<std::vector<std::int64_t>>(data_);
}
std::span<const std::int64_t> Field::i64() const {
  return std::get<std::vector<std::int64_t>>(data_);
}
std::span<std::uint8_t> Field::u8() {
  return std::get<std::vector<std::uint8_t>>(data_);
}
std::span<const std::uint8_t> Field::u8() const {
  return std::get<std::vector<std::uint8_t>>(data_);
}

void* Field::raw() {
  switch (type_) {
    case FieldType::kF64:
      return f64().data();
    case FieldType::kI64:
      return i64().data();
    case FieldType::kU8:
      return u8().data();
  }
  return nullptr;
}

const void* Field::raw() const {
  return const_cast<Field*>(this)->raw();
}

void Field::zero() {
  switch (type_) {
    case FieldType::kF64:
      std::fill(f64().begin(), f64().end(), 0.0);
      break;
    case FieldType::kI64:
      std::fill(i64().begin(), i64().end(), 0);
      break;
    case FieldType::kU8:
      std::fill(u8().begin(), u8().end(), 0);
      break;
  }
}

Observation::Observation(std::string name, Focalplane fp,
                         std::int64_t n_samples)
    : name_(std::move(name)), fp_(std::move(fp)), n_samples_(n_samples) {}

std::int64_t Observation::max_interval_length() const {
  std::int64_t m = 0;
  for (const auto& ival : intervals_) {
    m = std::max(m, ival.length());
  }
  return m;
}

Field& Observation::create_detdata(const std::string& name, FieldType type,
                                   std::int64_t width) {
  return fields_[name] =
             Field(type, width, n_detectors() * n_samples_ * width);
}

Field& Observation::create_shared(const std::string& name, FieldType type,
                                  std::int64_t width) {
  return fields_[name] = Field(type, width, n_samples_ * width);
}

Field& Observation::create_buffer(const std::string& name, FieldType type,
                                  std::int64_t count, bool scalable) {
  return fields_[name] = Field(type, 1, count, scalable);
}

bool Observation::has_field(const std::string& name) const {
  return fields_.count(name) != 0;
}

Field& Observation::field(const std::string& name) {
  const auto it = fields_.find(name);
  if (it == fields_.end()) {
    throw std::out_of_range("Observation: no field named '" + name + "'");
  }
  return it->second;
}

const Field& Observation::field(const std::string& name) const {
  return const_cast<Observation*>(this)->field(name);
}

void Observation::remove_field(const std::string& name) {
  fields_.erase(name);
}

std::vector<std::string> Observation::field_names() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& [name, f] : fields_) {
    names.push_back(name);
  }
  return names;
}

std::span<double> Observation::det_f64(const std::string& name,
                                       std::int64_t det) {
  Field& f = field(name);
  const std::int64_t stride = n_samples_ * f.width();
  return f.f64().subspan(static_cast<std::size_t>(det * stride),
                         static_cast<std::size_t>(stride));
}

std::span<const double> Observation::det_f64(const std::string& name,
                                             std::int64_t det) const {
  return const_cast<Observation*>(this)->det_f64(name, det);
}

std::span<std::int64_t> Observation::det_i64(const std::string& name,
                                             std::int64_t det) {
  Field& f = field(name);
  const std::int64_t stride = n_samples_ * f.width();
  return f.i64().subspan(static_cast<std::size_t>(det * stride),
                         static_cast<std::size_t>(stride));
}

std::span<const std::int64_t> Observation::det_i64(const std::string& name,
                                                   std::int64_t det) const {
  return const_cast<Observation*>(this)->det_i64(name, det);
}

std::size_t Observation::byte_size() const {
  std::size_t total = 0;
  for (const auto& [name, f] : fields_) {
    total += f.byte_size();
  }
  total += intervals_.size() * sizeof(Interval);
  return total;
}

}  // namespace toast::core
