#pragma once

// The framework-agnostic memory abstraction layer of paper §3.2.1: named
// device copies of observation fields, with explicit create / update /
// reset / delete operations whose costs depend on the backend:
//   - OpenMP Target Offload: pooled omp_target_alloc, synchronous PCIe
//     copies, device-side memset for reset;
//   - JAX: allocator pool with pinned/asynchronous staging (cheaper
//     update_device) and pool-recycled buffers (near-free reset) - the
//     behaviour behind Figure 6's accel_data_* differences.
//
// Functionally, the device copy is a real shadow buffer: kernels read and
// write the shadow, so forgetting a transfer produces stale data (and
// failing tests), just like a real hybrid pipeline bug.

#include <cstddef>
#include <map>
#include <vector>

#include "core/context.hpp"
#include "core/observation.hpp"
#include "omptarget/pool.hpp"

namespace toast::sched {
class Scheduler;
}  // namespace toast::sched

namespace toast::core {

class AccelStore {
 public:
  explicit AccelStore(ExecContext& ctx);

  /// Map a field: allocate a device shadow (no copy yet).
  void create(Field& field);
  bool present(const Field& field) const;
  void update_device(Field& field);
  /// Asynchronous H2D on `engine`'s copy engine (the plan executor's
  /// prefetch path): the functional copy happens now, the transfer time
  /// is placed on the PCIe link and overlaps compute; a later
  /// sync_transfers() charges any unhidden remainder.
  void update_device_async(Field& field, sched::Scheduler& engine);
  void update_host(Field& field);
  /// Zero the device copy.
  void reset(Field& field);
  void remove(Field& field);
  /// Drop every mapping (end of pipeline).
  void clear();

  /// Device address of the shadow copy.  Throws if not mapped.
  template <typename T>
  T* device_ptr(const Field& field) {
    return reinterpret_cast<T*>(raw_ptr(field));
  }

  std::size_t mapped_bytes() const { return mapped_bytes_; }
  /// High-water mark of mapped_bytes() over this store's lifetime (what
  /// liveness eviction lowers).
  std::size_t peak_mapped_bytes() const { return peak_mapped_bytes_; }
  std::size_t n_mapped() const { return shadows_.size(); }

 private:
  std::byte* raw_ptr(const Field& field);

  ExecContext& ctx_;
  omptarget::DevicePool pool_;
  struct Shadow {
    omptarget::DevicePtr dptr;
    std::vector<std::byte> data;
  };
  std::map<const Field*, Shadow> shadows_;
  std::size_t mapped_bytes_ = 0;
  std::size_t peak_mapped_bytes_ = 0;
};

}  // namespace toast::core
