#pragma once

// Timing export and comparison (paper §3.2.3): TOAST dumps per-function
// timing to CSV, and the authors built a script merging several CSV files
// into a comparative spreadsheet — "the most significant productivity
// boost throughout the project".  This is that tool.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "accel/timelog.hpp"

namespace toast::core {

/// Write a TimeLog as CSV: category,calls,seconds.
void write_timing_csv(const accel::TimeLog& log, std::ostream& out);
void write_timing_csv(const accel::TimeLog& log, const std::string& path);

/// Parse a CSV produced by write_timing_csv.
accel::TimeLog read_timing_csv(std::istream& in);
accel::TimeLog read_timing_csv_file(const std::string& path);

/// A merged comparison of several runs: rows are categories, columns are
/// run labels, cells are seconds (0 when absent).
struct TimingComparison {
  std::vector<std::string> labels;
  std::map<std::string, std::vector<double>> rows;

  /// Render as CSV with a ratio column (each run vs the first).
  std::string to_csv() const;
  /// Human-readable aligned table.
  std::string to_table() const;
};

TimingComparison compare_timings(
    const std::vector<std::pair<std::string, accel::TimeLog>>& runs);

}  // namespace toast::core
