#include "core/plan.hpp"

#include <algorithm>
#include <set>

#include "accel/sim_device.hpp"
#include "core/accel_store.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"

namespace toast::core {

const char* to_string(StepKind k) {
  switch (k) {
    case StepKind::kChargeOverhead:
      return "charge_overhead";
    case StepKind::kEnsureFields:
      return "ensure_fields";
    case StepKind::kMapField:
      return "map_field";
    case StepKind::kUpload:
      return "upload";
    case StepKind::kLaunch:
      return "launch";
    case StepKind::kDownload:
      return "download";
    case StepKind::kEvict:
      return "evict";
    case StepKind::kSyncTransfers:
      return "sync_transfers";
  }
  return "?";
}

std::vector<OpMeta> build_op_metadata(
    const std::vector<std::shared_ptr<Operator>>& operators) {
  std::vector<OpMeta> meta;
  meta.reserve(operators.size());
  for (const auto& op : operators) {
    OpMeta m;
    m.op = op;
    m.name = op->name();
    m.supports_accel = op->supports_accel();
    m.reads = op->requires_fields();
    m.writes = op->provides_fields();
    std::set<std::string> touched(m.reads.begin(), m.reads.end());
    touched.insert(m.writes.begin(), m.writes.end());
    m.touched.assign(touched.begin(), touched.end());
    meta.push_back(std::move(m));
  }
  return meta;
}

// --- planner ---------------------------------------------------------------

namespace {

class Planner {
 public:
  Planner(const std::vector<OpMeta>& meta, const PlanOptions& options,
          const std::vector<std::string>& outputs,
          const std::vector<Backend>& backends,
          const std::vector<char>& on_accel)
      : meta_(meta),
        options_(options),
        outputs_(outputs),
        backends_(backends),
        on_accel_(on_accel) {}

  ExecutionPlan build(std::string key) {
    plan_.key = std::move(key);
    plan_.options = options_;
    for (std::size_t k = 0; k < meta_.size(); ++k) {
      plan_.op_names.push_back(meta_[k].name);
      plan_.op_backends.push_back(backends_[k]);
      plan_.op_on_accel.push_back(on_accel_[k]);
      // Bind the launch body now: the plan owns the operator reference,
      // the executing group supplies store + runtime backend.
      plan_.launches.push_back(
          [op = meta_[k].op](Observation& ob, ExecContext& ctx,
                             AccelStore* store, Backend b) {
            op->exec(ob, ctx, store, b);
          });
    }
    compute_liveness();
    bool prev_hoisted = false;
    for (int k = 0; k < static_cast<int>(meta_.size()); ++k) {
      prev_hoisted = emit_group(k, prev_hoisted);
    }
    emit_epilogue();
    model_transfers();
    return std::move(plan_);
  }

 private:
  int fidx(const std::string& name) {
    for (std::size_t i = 0; i < plan_.field_names.size(); ++i) {
      if (plan_.field_names[i] == name) {
        return static_cast<int>(i);
      }
    }
    plan_.field_names.push_back(name);
    return static_cast<int>(plan_.field_names.size()) - 1;
  }

  bool is_output(const std::string& name) const {
    return std::find(outputs_.begin(), outputs_.end(), name) !=
           outputs_.end();
  }

  /// Last pipeline position touching each field, and whether any
  /// device-staged operator maps it at all (the eviction candidates).
  void compute_liveness() {
    for (std::size_t k = 0; k < meta_.size(); ++k) {
      for (const auto& name : meta_[k].touched) {
        last_use_[name] = static_cast<int>(k);
        if (on_accel_[k] != 0) {
          mapped_.insert(name);
        }
      }
    }
  }

  /// Fields of accel op `next` worth staging during op `k`: everything
  /// `next` touches that `k` does not (uploading a field `k` writes would
  /// stage stale host data ahead of the kernel that produces it).
  std::vector<std::string> hoistable(int k, int next) const {
    std::vector<std::string> out;
    const auto& cur = meta_[static_cast<std::size_t>(k)].touched;
    for (const auto& name :
         meta_[static_cast<std::size_t>(next)].touched) {
      if (std::find(cur.begin(), cur.end(), name) == cur.end()) {
        out.push_back(name);
      }
    }
    return out;
  }

  /// Returns whether this group hoisted prefetch steps for its successor.
  bool emit_group(int k, bool prev_hoisted) {
    const OpMeta& m = meta_[static_cast<std::size_t>(k)];
    PlanGroup g;
    g.op = k;
    g.backend = backends_[static_cast<std::size_t>(k)];
    g.tag = backend::index_of(g.backend);
    g.on_accel = on_accel_[static_cast<std::size_t>(k)] != 0;
    g.begin = static_cast<int>(plan_.steps.size());
    plan_.steps.push_back({StepKind::kChargeOverhead, k});
    plan_.steps.push_back({StepKind::kEnsureFields, k});
    g.try_begin = static_cast<int>(plan_.steps.size());

    bool hoisted = false;
    if (g.on_accel) {
      if (prev_hoisted) {
        plan_.steps.push_back({StepKind::kSyncTransfers, k});
      }
      for (const auto& name : m.touched) {
        plan_.steps.push_back({StepKind::kMapField, k, fidx(name)});
      }
      for (const auto& name : m.reads) {
        plan_.steps.push_back({StepKind::kUpload, k, fidx(name)});
      }
      // Distance-1 prefetch: stage the next accel operator's fields on
      // the copy engine while this operator computes.
      const int next = k + 1;
      if (options_.prefetch && next < static_cast<int>(meta_.size()) &&
          on_accel_[static_cast<std::size_t>(next)] != 0) {
        const auto hoist = hoistable(k, next);
        const OpMeta& nm = meta_[static_cast<std::size_t>(next)];
        for (const auto& name : hoist) {
          plan_.steps.push_back({StepKind::kMapField, next, fidx(name)});
        }
        for (const auto& name : nm.reads) {
          if (std::find(hoist.begin(), hoist.end(), name) != hoist.end()) {
            PlanStep s{StepKind::kUpload, next, fidx(name)};
            s.async = true;
            plan_.steps.push_back(s);
            plan_.prefetch_uploads += 1;
            hoisted = true;
          }
        }
      }
      PlanStep launch{StepKind::kLaunch, k};
      launch.on_device = true;
      plan_.steps.push_back(launch);
    }
    g.post_begin = static_cast<int>(plan_.steps.size());
    if (g.on_accel && options_.naive_staging) {
      for (const auto& name : m.touched) {
        PlanStep dl{StepKind::kDownload, k, fidx(name)};
        dl.swallow_persistent = true;
        plan_.steps.push_back(dl);
        plan_.steps.push_back({StepKind::kEvict, k, fidx(name)});
      }
    }
    g.post_end = static_cast<int>(plan_.steps.size());
    if (options_.evict && !options_.naive_staging) {
      for (const auto& name : m.touched) {
        if (last_use_.at(name) == k && mapped_.count(name) != 0 &&
            !is_output(name)) {
          PlanStep ev{StepKind::kEvict, k, fidx(name)};
          ev.liveness = true;
          plan_.steps.push_back(ev);
          plan_.planned_evictions += 1;
        }
      }
    }
    g.end = static_cast<int>(plan_.steps.size());

    // Host-fallback patch: what the interpreter's run_host did — bring
    // device-resident touched fields back, execute on the host, mark
    // outputs host-valid.
    g.alt_begin = static_cast<int>(plan_.alt_steps.size());
    for (const auto& name : m.touched) {
      plan_.alt_steps.push_back({StepKind::kDownload, k, fidx(name)});
    }
    plan_.alt_steps.push_back({StepKind::kLaunch, k});
    g.alt_end = static_cast<int>(plan_.alt_steps.size());

    plan_.groups.push_back(g);
    return hoisted;
  }

  void emit_epilogue() {
    PlanGroup g;
    g.op = -1;
    g.begin = static_cast<int>(plan_.steps.size());
    for (const auto& name : outputs_) {
      PlanStep dl{StepKind::kDownload, -1, fidx(name)};
      dl.swallow_persistent = true;
      plan_.steps.push_back(dl);
    }
    // The epilogue executes [begin, end) directly (no try / post split).
    g.try_begin = g.post_begin = g.post_end = g.end =
        static_cast<int>(plan_.steps.size());
    plan_.groups.push_back(g);
  }

  /// Static validity simulation (every declared field assumed to exist)
  /// counting the transfers the plan's guards will let through.
  int simulate_transfers(bool naive_staging) const {
    std::map<std::string, bool> hvalid;
    std::map<std::string, bool> dvalid;
    auto host_ok = [&](const std::string& n) {
      const auto it = hvalid.find(n);
      return it == hvalid.end() || it->second;
    };
    int count = 0;
    for (std::size_t k = 0; k < meta_.size(); ++k) {
      const OpMeta& m = meta_[k];
      if (on_accel_[k] != 0) {
        for (const auto& r : m.reads) {
          if (!dvalid[r]) {
            count += 1;
            dvalid[r] = true;
          }
        }
        for (const auto& w : m.writes) {
          dvalid[w] = true;
          hvalid[w] = false;
        }
        if (naive_staging) {
          for (const auto& t : m.touched) {
            if (!host_ok(t)) {
              count += 1;
            }
            hvalid[t] = true;
            dvalid[t] = false;
          }
        }
      } else {
        for (const auto& t : m.touched) {
          if (!host_ok(t)) {
            count += 1;
            hvalid[t] = true;
          }
        }
        for (const auto& w : m.writes) {
          hvalid[w] = true;
          dvalid[w] = false;
        }
      }
    }
    for (const auto& out : outputs_) {
      if (!host_ok(out)) {
        count += 1;
        hvalid[out] = true;
      }
    }
    return count;
  }

  /// Transfer counts of this plan vs the naive strategy (Staging::kNaive
  /// semantics, guards included): what the §3.2.2 staging win avoids.  A
  /// naive-staging plan avoids exactly nothing by construction.
  void model_transfers() {
    plan_.naive_transfers = simulate_transfers(/*naive_staging=*/true);
    plan_.planned_transfers = simulate_transfers(options_.naive_staging);
    plan_.transfers_avoided =
        std::max(0, plan_.naive_transfers - plan_.planned_transfers);
  }

  const std::vector<OpMeta>& meta_;
  PlanOptions options_;
  const std::vector<std::string>& outputs_;
  const std::vector<Backend>& backends_;
  const std::vector<char>& on_accel_;
  std::map<std::string, int> last_use_;
  std::set<std::string> mapped_;
  ExecutionPlan plan_;
};

}  // namespace

ExecutionPlan build_plan(const std::vector<OpMeta>& meta,
                         const PlanOptions& options,
                         const std::vector<std::string>& outputs,
                         const std::vector<Backend>& backends,
                         const std::vector<char>& on_accel,
                         std::string key) {
  return Planner(meta, options, outputs, backends, on_accel)
      .build(std::move(key));
}

// --- executor --------------------------------------------------------------

PlanExecutor::PlanExecutor(const ExecutionPlan& plan,
                           const std::vector<OpMeta>& meta, Observation& ob,
                           ExecContext& ctx,
                           const std::optional<Backend>& backend_override,
                           PlanStats& stats)
    : plan_(plan),
      meta_(meta),
      ob_(ob),
      ctx_(ctx),
      backend_override_(backend_override),
      stats_(stats),
      store_(ctx) {
  if (plan_.options.prefetch) {
    engine_.emplace(ctx_.device(), ctx_.clock(), &ctx_.tracer(), 1,
                    std::string(to_string(ctx_.config().backend)));
    if (ctx_.faults().armed()) {
      engine_->set_fault_injector(&ctx_.faults());
    }
  }
}

Field* PlanExecutor::field_ptr(int idx) {
  const std::string& name =
      plan_.field_names[static_cast<std::size_t>(idx)];
  return ob_.has_field(name) ? &ob_.field(name) : nullptr;
}

// The one download dance (host-consumed, naive cleanup, recovery and
// live-out all share it): copy back if the host copy is stale; a
// persistent transfer fault after the functional copy only loses the
// charge when the caller may swallow it.
void PlanExecutor::download(Field& f, bool swallow) {
  const auto it = state_.find(&f);
  if (it == state_.end() || it->second.host_valid || !store_.present(f)) {
    return;
  }
  try {
    store_.update_host(f);
  } catch (const fault::PersistentFaultError&) {
    if (!swallow) {
      throw;
    }
  }
  it->second.host_valid = true;
}

void PlanExecutor::run_step(const PlanStep& s, bool recovering) {
  switch (s.kind) {
    case StepKind::kChargeOverhead:
      ctx_.charge_serial("pipeline_overhead", kPipelineOverheadSeconds);
      break;
    case StepKind::kEnsureFields:
      meta_[static_cast<std::size_t>(s.op)].op->ensure_fields(ob_);
      break;
    case StepKind::kMapField: {
      Field* f = field_ptr(s.field);
      if (f != nullptr && !store_.present(*f)) {
        store_.create(*f);
        state_[f];  // host_valid=true, device_valid=false
      }
      break;
    }
    case StepKind::kUpload: {
      Field* f = field_ptr(s.field);
      if (f == nullptr) {
        break;
      }
      FieldRt& fs = state_[f];
      if (fs.device_valid) {
        break;
      }
      if (s.async && engine_.has_value()) {
        try {
          store_.update_device_async(*f, *engine_);
          fs.device_valid = true;
          stats_.prefetched_uploads += 1.0;
        } catch (const fault::PersistentFaultError&) {
          // Prefetch failed persistently: leave the device copy stale
          // so the owning operator's synchronous upload retries (and
          // degrades *that* operator, not the one it overlapped).
        }
      } else {
        store_.update_device(*f);
        fs.device_valid = true;
      }
      break;
    }
    case StepKind::kLaunch: {
      const OpMeta& m = meta_[static_cast<std::size_t>(s.op)];
      const LaunchFn& launch =
          plan_.launches[static_cast<std::size_t>(s.op)];
      if (s.on_device) {
        launch(ob_, ctx_, &store_, cur_backend_);
        for (const auto& name : m.writes) {
          if (!ob_.has_field(name)) {
            continue;
          }
          Field& f = ob_.field(name);
          state_[&f].device_valid = true;
          state_[&f].host_valid = false;
        }
      } else {
        launch(ob_, ctx_, nullptr, cur_backend_);
        for (const auto& name : m.writes) {
          if (!ob_.has_field(name)) {
            continue;
          }
          Field& f = ob_.field(name);
          const auto it = state_.find(&f);
          if (it != state_.end()) {
            it->second.host_valid = true;
            it->second.device_valid = false;
          }
        }
      }
      break;
    }
    case StepKind::kDownload: {
      Field* f = field_ptr(s.field);
      if (f != nullptr) {
        download(*f, s.swallow_persistent || recovering);
      }
      break;
    }
    case StepKind::kEvict: {
      Field* f = field_ptr(s.field);
      if (f != nullptr && store_.present(*f)) {
        store_.remove(*f);
        state_.erase(f);
        if (s.liveness) {
          stats_.evictions += 1.0;
        }
      }
      break;
    }
    case StepKind::kSyncTransfers:
      if (engine_.has_value()) {
        engine_->sync_transfers("accel_prefetch_wait");
      }
      break;
  }
}

void PlanExecutor::run_patch(const PlanGroup& g, bool recovering) {
  for (int i = g.alt_begin; i < g.alt_end; ++i) {
    run_step(plan_.alt_steps[static_cast<std::size_t>(i)], recovering);
  }
}

bool PlanExecutor::decide(const PlanGroup& g) {
  const OpMeta& m = meta_[static_cast<std::size_t>(g.op)];
  cur_backend_ = backend_override_.has_value() ? *backend_override_
                                               : ctx_.backend_for(m.name);
  const bool on_accel = m.supports_accel && is_accel(cur_backend_) &&
                        !ctx_.faults().degraded(m.name);
  if (!on_accel && g.on_accel) {
    // The cached plan staged this operator for the device, but the
    // kernel degraded since plan build: patch to the host fallback.
    stats_.replans += 1.0;
    ctx_.faults().note_replan(m.name);
  }
  return on_accel;
}

const char* PlanExecutor::attempt(const std::function<void()>& body) {
  try {
    body();
  } catch (const fault::PersistentFaultError&) {
    // Retry budget exhausted on a launch or transfer: the plan's
    // host-fallback patch re-runs this operator on the CPU.  The
    // functional work in both runtimes happens on shadow copies
    // before the time charge throws, so host data is untouched.
    return "persistent_fault";
  } catch (const accel::DeviceOomError& e) {
    if (!e.info().injected) {
      throw;  // real capacity overflow: the fig4 OOM points rely on it
    }
    return "device_oom";
  }
  return nullptr;
}

void PlanExecutor::mark_degraded(const PlanGroup& g, const char* reason) {
  const OpMeta& m = meta_[static_cast<std::size_t>(g.op)];
  ctx_.faults().note_fallback(m.name, reason);
  ctx_.set_kernel_backend(m.name, Backend::kCpu);
  ctx_.faults().note_replan(m.name);
  ctx_.resilience().report_fault("executor", m.name);
  stats_.replans += 1.0;
  cur_backend_ = Backend::kCpu;
}

void PlanExecutor::finish(obs::SpanId pipeline_span) {
  if (engine_.has_value()) {
    // Prefetches issued for an operator that then degraded may still be
    // in flight; account for them before the pipeline closes.
    engine_->sync_transfers("accel_prefetch_wait");
  }
  stats_.transfers_avoided += static_cast<double>(plan_.transfers_avoided);
  stats_.peak_mapped_bytes =
      std::max(stats_.peak_mapped_bytes,
               static_cast<double>(store_.peak_mapped_bytes()));
  ctx_.tracer().add_counter(pipeline_span, "transfers_avoided",
                            static_cast<double>(plan_.transfers_avoided));
  ctx_.tracer().add_counter(pipeline_span, "peak_mapped_bytes",
                            static_cast<double>(store_.peak_mapped_bytes()));
  store_.clear();
}

void execute_plan(const ExecutionPlan& plan, const std::vector<OpMeta>& meta,
                  Observation& ob, ExecContext& ctx,
                  const std::optional<Backend>& backend_override,
                  PlanStats& stats) {
  obs::ScopedSpan pipeline_span(ctx.tracer(), "pipeline:" + ob.name(),
                                "pipeline");
  PlanExecutor pe(plan, meta, ob, ctx, backend_override, stats);

  for (const PlanGroup& g : plan.groups) {
    if (g.op < 0) {
      for (int i = g.begin; i < g.end; ++i) {
        pe.run_step(plan.steps[static_cast<std::size_t>(i)], false);
      }
      continue;
    }
    const OpMeta& m = meta[static_cast<std::size_t>(g.op)];
    obs::ScopedSpan op_span(ctx.tracer(), m.name, "operator");
    for (int i = g.begin; i < g.try_begin; ++i) {
      pe.run_step(plan.steps[static_cast<std::size_t>(i)], false);
    }
    if (!pe.decide(g)) {
      pe.run_patch(g, /*recovering=*/false);
    } else {
      const char* reason = pe.attempt([&] {
        for (int i = g.try_begin; i < g.post_begin; ++i) {
          pe.run_step(plan.steps[static_cast<std::size_t>(i)], false);
        }
      });
      if (reason != nullptr) {
        pe.mark_degraded(g, reason);
        pe.run_patch(g, /*recovering=*/true);
      } else {
        // Naive-staging cleanup runs outside the recovery try: the op
        // already completed, so a persistent transfer fault here must
        // not re-run it (in-place ops would double-apply).
        for (int i = g.post_begin; i < g.post_end; ++i) {
          pe.run_step(plan.steps[static_cast<std::size_t>(i)], false);
        }
      }
    }
    for (int i = g.post_end; i < g.end; ++i) {
      pe.run_step(plan.steps[static_cast<std::size_t>(i)], false);
    }
  }

  pe.finish(pipeline_span.id());
}

// --- dump ------------------------------------------------------------------

namespace {

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

void write_steps(std::ostream& out, const ExecutionPlan& plan,
                 const std::vector<PlanStep>& steps) {
  bool first = true;
  for (const auto& s : steps) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n    {\"kind\":" << json_str(to_string(s.kind));
    if (s.op >= 0) {
      out << ",\"op\":" << s.op;
    }
    if (s.field >= 0) {
      out << ",\"field\":"
          << json_str(plan.field_names[static_cast<std::size_t>(s.field)]);
    }
    if (s.on_device) {
      out << ",\"on_device\":true";
    }
    if (s.async) {
      out << ",\"async\":true";
    }
    if (s.swallow_persistent) {
      out << ",\"swallow_persistent\":true";
    }
    if (s.liveness) {
      out << ",\"liveness\":true";
    }
    out << "}";
  }
}

}  // namespace

void ExecutionPlan::write_json(std::ostream& out) const {
  out << "{\n  \"schema\":\"toastcase-plan-v1\",\n";
  out << "  \"key\":" << json_str(key) << ",\n";
  out << "  \"options\":{\"naive_staging\":"
      << (options.naive_staging ? "true" : "false")
      << ",\"prefetch\":" << (options.prefetch ? "true" : "false")
      << ",\"evict\":" << (options.evict ? "true" : "false") << "},\n";
  out << "  \"ops\":[";
  for (std::size_t k = 0; k < op_names.size(); ++k) {
    if (k != 0) {
      out << ",";
    }
    out << "\n    {\"name\":" << json_str(op_names[k])
        << ",\"backend\":" << json_str(core::to_string(op_backends[k]))
        << ",\"tag\":"
        << json_str(backend::name_of(backend::index_of(op_backends[k])))
        << ",\"on_accel\":" << (op_on_accel[k] != 0 ? "true" : "false")
        << "}";
  }
  out << "\n  ],\n";
  out << "  \"groups\":[";
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (g != 0) {
      out << ",";
    }
    const PlanGroup& pg = groups[g];
    out << "\n    {\"op\":" << pg.op << ",\"tag\":"
        << json_str(backend::name_of(pg.tag))
        << ",\"on_accel\":" << (pg.on_accel ? "true" : "false") << "}";
  }
  out << "\n  ],\n";
  out << "  \"field_names\":[";
  for (std::size_t i = 0; i < field_names.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    out << json_str(field_names[i]);
  }
  out << "],\n";
  out << "  \"steps\":[";
  write_steps(out, *this, steps);
  out << "\n  ],\n";
  out << "  \"alt_steps\":[";
  write_steps(out, *this, alt_steps);
  out << "\n  ],\n";
  out << "  \"stats\":{\"naive_transfers\":" << naive_transfers
      << ",\"planned_transfers\":" << planned_transfers
      << ",\"transfers_avoided\":" << transfers_avoided
      << ",\"planned_evictions\":" << planned_evictions
      << ",\"prefetch_uploads\":" << prefetch_uploads << "}\n";
  out << "}\n";
}

}  // namespace toast::core
