#pragma once

// ExecContext: everything one process needs to execute kernels — the
// simulated device, virtual clock, time log, host model, both backend
// runtimes, and the kernel dispatch table (paper §3.2.1: implementations
// selectable globally, per pipeline, or per kernel).

#include <map>
#include <memory>
#include <string>

#include "accel/host_model.hpp"
#include "accel/sim_device.hpp"
#include "accel/timelog.hpp"
#include "config/schedule.hpp"
#include "core/types.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "omptarget/runtime.hpp"
#include "resilience/manager.hpp"
#include "xla/jit.hpp"

namespace toast::core {

struct ExecConfig {
  Backend backend = Backend::kCpu;
  /// OpenMP threads of this process and total busy threads on the socket.
  int threads = 4;
  int socket_active_threads = 64;
  /// GPU sharing situation for this process.
  accel::Sharing sharing = accel::Sharing::kExclusive;
  int procs_per_gpu = 1;
  /// Paper-scale over executed-scale work ratio (timestream domain).
  double work_scale = 1.0;
  /// Paper-scale over executed-scale size ratio for map-domain buffers
  /// (e.g. (512/nside)^2 for production-resolution maps).
  double map_scale = 1.0;
  /// The unified schedule-space view of this process (docs/MODEL.md §12).
  /// The context applies its stream count to both backend runtimes and
  /// reads the JAX pool-preallocation flag from it; `backend` above is
  /// the *resolved* dispatch default — callers deriving an ExecConfig
  /// from a ScheduleConfig (mpisim does) keep the two coherent.
  config::ScheduleConfig schedule;
  /// Host-side cost of submitting one OpenMP target region; varies by
  /// compiler runtime (NVHPC/Clang/GCC differ, paper §3.3).
  double omp_dispatch_overhead = 6.0e-6;
  accel::DeviceSpec device_spec = accel::a100_spec();
  accel::HostSpec host_spec = accel::milan_spec();
  /// Fault-injection schedule (empty: injector disarmed, all hooks are
  /// no-ops and execution is bit-for-bit the no-fault timeline).
  fault::FaultPlan fault_plan;
  /// Declarative recovery policy (empty: resilience manager disarmed,
  /// every consult is a pass-through and execution is bit-for-bit the
  /// policy-free timeline).
  resilience::Policy resilience_policy;
};

class ExecContext {
 public:
  explicit ExecContext(const ExecConfig& config);

  const ExecConfig& config() const { return config_; }
  Backend backend() const { return config_.backend; }

  accel::SimDevice& device() { return device_; }
  accel::VirtualClock& clock() { return clock_; }
  /// The span tracer: source of truth for all charged time.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Flat per-category view (the seed's TimeLog), aggregated from the
  /// tracer's logged spans on demand.
  accel::TimeLog log() const { return tracer_.timelog(); }
  const accel::HostModel& host() const { return host_; }
  omptarget::Runtime& omp() { return omp_rt_; }
  xla::Runtime& jax() { return jax_rt_; }
  /// The fault injector every layer of this context shares (disarmed
  /// when the config's plan is empty).
  fault::FaultInjector& faults() { return faults_; }
  const fault::FaultInjector& faults() const { return faults_; }
  /// The resilience policy manager the injector and the recovery paths
  /// consult (disarmed when the config's policy is empty).
  resilience::Manager& resilience() { return resilience_; }
  const resilience::Manager& resilience() const { return resilience_; }

  // --- dispatch ----------------------------------------------------------

  /// Backend used for a given kernel: the per-kernel override if present,
  /// otherwise the context default.
  Backend backend_for(const std::string& kernel) const;
  void set_kernel_backend(const std::string& kernel, Backend b);
  void clear_kernel_backends() { overrides_.clear(); }

  // --- charging helpers ---------------------------------------------------

  /// Charge a CPU (OpenMP-threaded) kernel execution (timestream-domain
  /// work: scaled by work_scale).
  void charge_host_kernel(const std::string& name,
                          const accel::WorkEstimate& work);
  /// Same, but the estimate is already at paper scale (map-domain ops
  /// apply map_scale themselves).
  void charge_host_kernel_raw(const std::string& name,
                              const accel::WorkEstimate& work);
  /// Charge host-serial framework time (Python-side work in the paper).
  void charge_serial(const std::string& name, double seconds);

  double elapsed() const { return clock_.now(); }

 private:
  ExecConfig config_;
  accel::SimDevice device_;
  accel::VirtualClock clock_;
  obs::Tracer tracer_;
  fault::FaultInjector faults_;
  resilience::Manager resilience_;
  accel::HostModel host_;
  omptarget::Runtime omp_rt_;
  xla::Runtime jax_rt_;
  std::map<std::string, Backend> overrides_;
};

}  // namespace toast::core
