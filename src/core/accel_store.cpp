#include "core/accel_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "sched/scheduler.hpp"

namespace toast::core {

namespace {

// JAX transfers overlap with pinned staging buffers; the OpenMP port uses
// synchronous omp_target_update.  The paper notes the JAX implementation
// spends significantly less time in update_device and reset (§4.2) and
// attributes it to the respective implementations.
constexpr double kJaxUpdateDeviceFactor = 0.55;
constexpr double kJaxUpdateHostFactor = 0.80;
constexpr double kJaxResetSeconds = 2.0e-6;  // pool swap, no memset

bool jax_like(const ExecContext& ctx) {
  return ctx.config().backend == Backend::kJax ||
         ctx.config().backend == Backend::kJaxCompiled;
}

}  // namespace

AccelStore::AccelStore(ExecContext& ctx)
    : ctx_(ctx), pool_(ctx.device()) {
  if (ctx.faults().armed()) {
    pool_.set_fault_injector(&ctx.faults());
  }
}

void AccelStore::create(Field& field) {
  if (shadows_.count(&field) != 0) {
    throw std::logic_error("AccelStore: field already mapped");
  }
  double alloc_cost = 0.0;
  Shadow s;
  if (jax_like(ctx_) && ctx_.jax().preallocation()) {
    // The XLA pool already owns the memory; sub-allocation is free.
    alloc_cost = 0.0;
  } else {
    s.dptr = pool_.allocate(field.byte_size(), alloc_cost);
  }
  s.data.resize(field.byte_size());
  mapped_bytes_ += field.byte_size();
  peak_mapped_bytes_ = std::max(peak_mapped_bytes_, mapped_bytes_);
  shadows_.emplace(&field, std::move(s));
  ctx_.clock().advance(alloc_cost);
  ctx_.tracer().record("accel_data_create", "alloc", alloc_cost,
                       to_string(ctx_.config().backend));
}

bool AccelStore::present(const Field& field) const {
  return shadows_.count(&field) != 0;
}

std::byte* AccelStore::raw_ptr(const Field& field) {
  const auto it = shadows_.find(&field);
  if (it == shadows_.end()) {
    throw std::logic_error("AccelStore: field not mapped to device");
  }
  return it->second.data.data();
}

namespace {
double paper_bytes(const core::Field& field, const ExecContext& ctx) {
  const double scale = field.scalable() ? ctx.config().work_scale
                                        : ctx.config().map_scale;
  return static_cast<double>(field.byte_size()) * scale;
}
}  // namespace

void AccelStore::update_device(Field& field) {
  std::byte* shadow = raw_ptr(field);
  std::memcpy(shadow, field.raw(), field.byte_size());
  const double factor = jax_like(ctx_) ? kJaxUpdateDeviceFactor : 1.0;
  const double bytes = paper_bytes(field, ctx_);
  const double t = factor * ctx_.device().transfer_time(bytes);
  if (ctx_.faults().armed()) {
    // The functional copy above already happened, so a persistent fault
    // thrown here leaves the shadow consistent for the CPU fallback.
    ctx_.faults().attempt_sync(fault::FaultKind::kTransfer,
                               "accel_data_update_device", t);
  }
  ctx_.clock().advance(t);
  ctx_.device().note_transfer(bytes, t, /*to_device=*/true);
  const auto span =
      ctx_.tracer().record("accel_data_update_device", "transfer", t,
                           to_string(ctx_.config().backend));
  ctx_.tracer().add_counter(span, "bytes_h2d", bytes);
  ctx_.tracer().add_counter(span, "seconds_h2d", t);
}

void AccelStore::update_device_async(Field& field, sched::Scheduler& engine) {
  std::byte* shadow = raw_ptr(field);
  std::memcpy(shadow, field.raw(), field.byte_size());
  const double factor = jax_like(ctx_) ? kJaxUpdateDeviceFactor : 1.0;
  const double bytes = paper_bytes(field, ctx_);
  const double t = factor * ctx_.device().transfer_time(bytes);
  // The engine places the transfer on the PCIe link without advancing the
  // clock; it probes the fault injector itself (attached by the executor)
  // and records the span with the stream lane, so no attempt_sync /
  // tracer.record here.  note_transfer is likewise counted by the engine.
  engine.transfer_async_timed(0, "accel_data_update_device", bytes, t,
                              /*to_device=*/true);
}

void AccelStore::update_host(Field& field) {
  const std::byte* shadow = raw_ptr(field);
  std::memcpy(field.raw(), shadow, field.byte_size());
  const double factor = jax_like(ctx_) ? kJaxUpdateHostFactor : 1.0;
  const double bytes = paper_bytes(field, ctx_);
  const double t = factor * ctx_.device().transfer_time(bytes);
  if (ctx_.faults().armed()) {
    ctx_.faults().attempt_sync(fault::FaultKind::kTransfer,
                               "accel_data_update_host", t);
  }
  ctx_.clock().advance(t);
  ctx_.device().note_transfer(bytes, t, /*to_device=*/false);
  const auto span =
      ctx_.tracer().record("accel_data_update_host", "transfer", t,
                           to_string(ctx_.config().backend));
  ctx_.tracer().add_counter(span, "bytes_d2h", bytes);
  ctx_.tracer().add_counter(span, "seconds_d2h", t);
}

void AccelStore::reset(Field& field) {
  std::byte* shadow = raw_ptr(field);
  std::memset(shadow, 0, field.byte_size());
  const double t = jax_like(ctx_)
                       ? kJaxResetSeconds
                       : ctx_.device().fill_time(paper_bytes(field, ctx_));
  ctx_.clock().advance(t);
  ctx_.tracer().record("accel_data_reset", "transfer", t,
                       to_string(ctx_.config().backend));
}

void AccelStore::remove(Field& field) {
  const auto it = shadows_.find(&field);
  if (it == shadows_.end()) {
    return;
  }
  if (it->second.dptr.valid()) {
    pool_.release(it->second.dptr);
  }
  mapped_bytes_ -= field.byte_size();
  shadows_.erase(it);
  ctx_.tracer().record("accel_data_delete", "alloc", 0.0,
                       to_string(ctx_.config().backend));
}

void AccelStore::clear() {
  for (auto& [field, shadow] : shadows_) {
    if (shadow.dptr.valid()) {
      pool_.release(shadow.dptr);
    }
  }
  shadows_.clear();
  mapped_bytes_ = 0;
}

}  // namespace toast::core
