#pragma once

// Hybrid CPU/GPU pipeline (paper §3.2.2).
//
// A Pipeline runs a sequence of operators over each observation.  Using
// each operator's requires/provides declarations it keeps data resident on
// the device across consecutive GPU operators, moves fields back to the
// host only when a host-only operator (or the end of the pipeline) needs
// them, and deletes device data when done.  The paper measured this
// staging at ~40% faster than naively transferring around every kernel;
// Staging::kNaive reproduces the naive strategy for that ablation.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/accel_store.hpp"
#include "core/context.hpp"
#include "core/observation.hpp"
#include "core/operator.hpp"

namespace toast::core {

class Pipeline {
 public:
  enum class Staging {
    kPipelined,  ///< move data across operator sequences (default)
    kNaive,      ///< transfer in/out around every accelerated operator
  };

  explicit Pipeline(std::vector<std::shared_ptr<Operator>> operators,
                    Staging staging = Staging::kPipelined)
      : operators_(std::move(operators)), staging_(staging) {}

  /// Fields copied back to the host at the end of the pipeline.  Device-
  /// only intermediates (expanded pointing, Stokes weights...) are simply
  /// deleted, which is a large part of the staging win of §3.2.2.  By
  /// default the science products are kept.
  void set_outputs(std::vector<std::string> outputs) {
    outputs_ = std::move(outputs);
  }
  const std::vector<std::string>& outputs() const { return outputs_; }

  /// Force every operator of this pipeline onto one backend, regardless
  /// of the context default (paper §3.2.1: per-pipeline selection).
  void set_backend_override(std::optional<Backend> backend) {
    backend_override_ = backend;
  }

  /// Per-operator host-side framework overhead (the Python layer driving
  /// the kernels), charged as serial time.
  static constexpr double kOperatorOverheadSeconds = 5.0e-5;

  void exec(Data& data, ExecContext& ctx);
  void exec(Observation& ob, ExecContext& ctx);

  const std::vector<std::shared_ptr<Operator>>& operators() const {
    return operators_;
  }

 private:
  Backend dispatch_backend(const Operator& op, ExecContext& ctx) const;

  std::vector<std::shared_ptr<Operator>> operators_;
  Staging staging_;
  std::optional<Backend> backend_override_;
  std::vector<std::string> outputs_ = {
      std::string(fields::kSignal), std::string(fields::kZmap),
      std::string(fields::kAmplitudes), std::string(fields::kPixels)};
};

}  // namespace toast::core
