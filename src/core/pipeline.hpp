#pragma once

// Hybrid CPU/GPU pipeline (paper §3.2.2).
//
// A Pipeline runs a sequence of operators over each observation.  Using
// each operator's requires/provides declarations it keeps data resident on
// the device across consecutive GPU operators, moves fields back to the
// host only when a host-only operator (or the end of the pipeline) needs
// them, and deletes device data when done.  The paper measured this
// staging at ~40% faster than naively transferring around every kernel;
// Staging::kNaive reproduces the naive strategy for that ablation.
//
// Since the plan/execute split (docs/MODEL.md "Pipeline compilation"),
// exec() compiles the operator list into a cached ExecutionPlan and runs
// that; the historical interpreter is kept as exec_interpreted(), the
// bit-for-bit oracle the plan-equivalence tests and benches compare
// against.  set_plan_options() opts into prefetch (transfer/compute
// overlap on the sched copy engine) and liveness eviction.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/schedule.hpp"
#include "core/accel_store.hpp"
#include "core/context.hpp"
#include "core/observation.hpp"
#include "core/operator.hpp"
#include "core/plan.hpp"

namespace toast::core {

class Pipeline {
 public:
  /// The staging strategy is a schedule-space axis; the canonical enum
  /// (kPipelined / kNaive) lives in the unified config layer and the
  /// pipeline re-exports it under its historical name.
  using Staging = config::Staging;

  explicit Pipeline(std::vector<std::shared_ptr<Operator>> operators,
                    Staging staging = Staging::kPipelined)
      : operators_(std::move(operators)),
        meta_(build_op_metadata(operators_)) {
    schedule_.staging.mode = staging;
  }

  /// Fields copied back to the host at the end of the pipeline.  Device-
  /// only intermediates (expanded pointing, Stokes weights...) are simply
  /// deleted, which is a large part of the staging win of §3.2.2.  By
  /// default the science products are kept.
  void set_outputs(std::vector<std::string> outputs) {
    outputs_ = std::move(outputs);
    plan_cache_.clear();
  }
  const std::vector<std::string>& outputs() const { return outputs_; }

  /// Force every operator of this pipeline onto one backend, regardless
  /// of the context default (paper §3.2.1: per-pipeline selection).
  void set_backend_override(std::optional<Backend> backend) {
    backend_override_ = backend;
    plan_cache_.clear();
  }
  const std::optional<Backend>& backend_override() const {
    return backend_override_;
  }

  /// Opt into prefetch / liveness eviction (the naive_staging bit is
  /// derived from the Staging mode and ignored here).  A convenience
  /// view onto set_schedule(): the bits land in the schedule's staging
  /// axis.
  void set_plan_options(const PlanOptions& options) {
    schedule_.staging.prefetch = options.prefetch;
    schedule_.staging.evict = options.evict;
    plan_cache_.clear();
  }
  PlanOptions plan_options() const { return effective_options(); }

  /// Adopt a full schedule-space config.  The pipeline consumes its
  /// staging axis (mode + prefetch/evict) and keys the plan cache off
  /// the config's hash, so distinct schedules never share a plan.
  void set_schedule(const config::ScheduleConfig& schedule) {
    schedule_ = schedule;
    plan_cache_.clear();
  }
  const config::ScheduleConfig& schedule() const { return schedule_; }

  /// Per-operator host-side framework overhead (the Python layer driving
  /// the kernels), charged as serial time.
  static constexpr double kOperatorOverheadSeconds =
      kPipelineOverheadSeconds;

  /// Planned execution (the default): compile-on-miss against the plan
  /// cache, then run the ExecutionPlan.
  void exec(Data& data, ExecContext& ctx);
  void exec(Observation& ob, ExecContext& ctx);

  /// The historical interpreter: places every transfer greedily at exec
  /// time.  Kept as the equivalence oracle; the default plan reproduces
  /// its virtual-time results bit for bit.
  void exec_interpreted(Data& data, ExecContext& ctx);
  void exec_interpreted(Observation& ob, ExecContext& ctx);

  /// The plan exec() would use for this observation right now (cached;
  /// builds on miss).  Exposed for the dump tooling and tests.
  std::shared_ptr<const ExecutionPlan> plan_for(const Observation& ob,
                                                ExecContext& ctx);

  /// Cumulative plan/execute statistics (cache hits/misses, replans,
  /// transfers avoided, evictions, peak mapped bytes).
  const PlanStats& plan_stats() const { return plan_stats_; }

  const std::vector<std::shared_ptr<Operator>>& operators() const {
    return operators_;
  }
  /// Immutable per-operator metadata (name/reads/writes/touched), built
  /// once at construction.
  const std::vector<OpMeta>& metadata() const { return meta_; }

 private:
  Backend dispatch_backend(const std::string& kernel,
                           ExecContext& ctx) const;
  PlanOptions effective_options() const;
  std::string plan_key(const Observation& ob, ExecContext& ctx) const;

  std::vector<std::shared_ptr<Operator>> operators_;
  std::vector<OpMeta> meta_;
  /// The unified schedule-space view; the pipeline reads its staging
  /// axis and hashes the whole config into every plan-cache key.
  config::ScheduleConfig schedule_;
  std::optional<Backend> backend_override_;
  std::vector<std::string> outputs_ = {
      std::string(fields::kSignal), std::string(fields::kZmap),
      std::string(fields::kAmplitudes), std::string(fields::kPixels)};
  std::map<std::string, std::shared_ptr<const ExecutionPlan>> plan_cache_;
  PlanStats plan_stats_;
};

}  // namespace toast::core
