#include "obs/export.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace toast::obs {

namespace {

void open_or_throw(std::ofstream& out, const std::string& path) {
  out.open(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
}

/// Numbers are written with enough digits to round-trip a double.
struct Num {
  double v;
};

std::ostream& operator<<(std::ostream& out, Num n) {
  const auto flags = out.flags();
  const auto prec = out.precision();
  out << std::setprecision(17) << n.v;
  out.flags(flags);
  out.precision(prec);
  return out;
}

void write_counters(std::ostream& out, const MetricRow& row) {
  out << "\"calls\":" << row.calls << ",\"seconds\":" << Num{row.seconds}
      << ",\"flops\":" << Num{row.flops}
      << ",\"bytes_read\":" << Num{row.bytes_read}
      << ",\"bytes_written\":" << Num{row.bytes_written}
      << ",\"launches\":" << Num{row.launches}
      << ",\"atomic_ops\":" << Num{row.atomic_ops};
  for (const auto& [key, value] : row.counters) {
    out << ",\"" << json::escape(key) << "\":" << Num{value};
  }
}

}  // namespace

std::map<std::string, MetricRow> aggregate_metrics(
    const std::vector<Span>& spans) {
  std::map<std::string, MetricRow> rows;
  for (const auto& s : spans) {
    if (!s.logged) {
      continue;
    }
    auto& row = rows[s.name];
    row.calls += 1;
    row.seconds += s.duration;
    if (s.has_work) {
      row.flops += s.work.flops;
      row.bytes_read += s.work.bytes_read;
      row.bytes_written += s.work.bytes_written;
      row.launches += s.work.launches;
      row.atomic_ops += s.work.atomic_ops;
    }
    for (const auto& [key, value] : s.counters) {
      row.counters[key] += value;
    }
  }
  return rows;
}

void write_chrome_trace(const std::vector<Span>& spans, std::ostream& out,
                        const std::string& process_name,
                        const std::map<int, std::string>& stream_names) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{"
         "\"name\":\""
      << json::escape(process_name) << "\"}},\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"host (virtual)\"}},\n";
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"device (virtual)\"}}";
  // One overlap lane per virtual stream that actually appears.
  int max_stream = -1;
  for (const auto& s : spans) {
    max_stream = std::max(max_stream, s.stream);
  }
  for (int st = 0; st <= max_stream; ++st) {
    const auto named = stream_names.find(st);
    out << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << (2 + st)
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (named != stream_names.end()) {
      out << json::escape(named->second);
    } else {
      out << "stream " << st;
    }
    out << "\"}}";
  }
  for (const auto& s : spans) {
    const int tid = s.stream >= 0 ? 2 + s.stream : (s.device ? 1 : 0);
    out << ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
        << ",\"name\":\"" << json::escape(s.name) << "\",\"cat\":\""
        << json::escape(s.category.empty() ? "span" : s.category)
        << "\",\"ts\":" << Num{s.start * 1e6}
        << ",\"dur\":" << Num{s.duration * 1e6} << ",\"args\":{";
    bool first = true;
    auto arg = [&](const char* key, double value) {
      if (value == 0.0) {
        return;
      }
      out << (first ? "" : ",") << "\"" << key << "\":" << Num{value};
      first = false;
    };
    if (!s.backend.empty()) {
      out << "\"backend\":\"" << json::escape(s.backend) << "\"";
      first = false;
    }
    if (s.has_work) {
      arg("flops", s.work.flops);
      arg("bytes_read", s.work.bytes_read);
      arg("bytes_written", s.work.bytes_written);
      arg("launches", s.work.launches);
      arg("atomic_ops", s.work.atomic_ops);
    }
    for (const auto& [key, value] : s.counters) {
      out << (first ? "" : ",") << "\"" << json::escape(key)
          << "\":" << Num{value};
      first = false;
    }
    out << "}}";
  }
  out << "\n]}\n";
}

void write_chrome_trace_file(const std::vector<Span>& spans,
                             const std::string& path,
                             const std::string& process_name,
                             const std::map<int, std::string>& stream_names) {
  std::ofstream out;
  open_or_throw(out, path);
  write_chrome_trace(spans, out, process_name, stream_names);
}

void write_metrics_json(const std::vector<Span>& spans, std::ostream& out,
                        const std::map<std::string, std::string>& meta) {
  const auto rows = aggregate_metrics(spans);
  out << "{\"schema\":\"toastcase-metrics-v1\"";
  if (!meta.empty()) {
    out << ",\"meta\":{";
    bool first = true;
    for (const auto& [key, value] : meta) {
      out << (first ? "" : ",") << "\"" << json::escape(key) << "\":\""
          << json::escape(value) << "\"";
      first = false;
    }
    out << "}";
  }
  out << ",\"categories\":{";
  bool first = true;
  double total = 0.0;
  for (const auto& [name, row] : rows) {
    out << (first ? "" : ",") << "\n\"" << json::escape(name) << "\":{";
    write_counters(out, row);
    out << "}";
    first = false;
    total += row.seconds;
  }
  out << "\n},\"total_seconds\":" << Num{total} << "}\n";
}

void write_metrics_json_file(const std::vector<Span>& spans,
                             const std::string& path,
                             const std::map<std::string, std::string>& meta) {
  std::ofstream out;
  open_or_throw(out, path);
  write_metrics_json(spans, out, meta);
}

void write_metrics_csv(const std::vector<Span>& spans, std::ostream& out) {
  out << "category,calls,seconds,flops,bytes_read,bytes_written,launches,"
         "bytes_h2d,bytes_d2h,seconds_h2d,seconds_d2h\n";
  auto counter = [](const MetricRow& row, const char* key) {
    const auto it = row.counters.find(key);
    return it == row.counters.end() ? 0.0 : it->second;
  };
  for (const auto& [name, row] : aggregate_metrics(spans)) {
    out << name << "," << row.calls << "," << std::setprecision(17)
        << row.seconds << "," << row.flops << "," << row.bytes_read << ","
        << row.bytes_written << "," << row.launches << ","
        << counter(row, "bytes_h2d") << "," << counter(row, "bytes_d2h")
        << "," << counter(row, "seconds_h2d") << ","
        << counter(row, "seconds_d2h") << "\n";
  }
}

std::map<std::string, MetricRow> read_metrics_json(const json::Value& doc) {
  if (!doc.is_object()) {
    throw json::ParseError("not a toastcase-metrics-v1 document");
  }
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "toastcase-metrics-v1") {
    throw json::ParseError("not a toastcase-metrics-v1 document");
  }
  std::map<std::string, MetricRow> rows;
  for (const auto& [name, cat] : doc.at("categories").object) {
    MetricRow row;
    row.calls = static_cast<long>(cat.number_or("calls", 0.0));
    row.seconds = cat.number_or("seconds", 0.0);
    row.flops = cat.number_or("flops", 0.0);
    row.bytes_read = cat.number_or("bytes_read", 0.0);
    row.bytes_written = cat.number_or("bytes_written", 0.0);
    row.launches = cat.number_or("launches", 0.0);
    row.atomic_ops = cat.number_or("atomic_ops", 0.0);
    for (const auto& [key, value] : cat.object) {
      if (key == "calls" || key == "seconds" || key == "flops" ||
          key == "bytes_read" || key == "bytes_written" ||
          key == "launches" || key == "atomic_ops") {
        continue;
      }
      if (value.is_number()) {
        row.counters[key] = value.number;
      }
    }
    rows.emplace(name, std::move(row));
  }
  return rows;
}

}  // namespace toast::obs
