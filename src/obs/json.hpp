#pragma once

// Minimal JSON value + recursive-descent parser, enough to read back the
// trace/metrics files the exporters write (toast-trace CLI, round-trip
// tests, scripts).  No external dependencies.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace toast::obs::json {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member or nullptr.
  const Value* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  /// Object member; throws if absent.
  const Value& at(const std::string& key) const {
    const Value* v = find(key);
    if (v == nullptr) {
      throw ParseError("missing key: " + key);
    }
    return *v;
  }
  double number_or(const std::string& key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
  }

  /// Parse a complete JSON document; throws ParseError on malformed input.
  static Value parse(const std::string& text);
};

/// Escape a string for embedding in a JSON document (no quotes added).
std::string escape(const std::string& s);

/// Load and parse a JSON file; throws on I/O or parse failure.
Value load_file(const std::string& path);

}  // namespace toast::obs::json
