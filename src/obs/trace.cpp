#include "obs/trace.hpp"

#include <algorithm>

namespace toast::obs {

SpanId Tracer::push(Span span) {
  span.parent = open_.empty() ? kInvalidSpan : open_.back();
  span.depth = static_cast<int>(open_.size());
  const SpanId id = static_cast<SpanId>(spans_.size());
  spans_.push_back(std::move(span));
  return id;
}

SpanId Tracer::begin(std::string name, std::string category,
                     std::string backend) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.backend = std::move(backend);
  s.start = now();
  const SpanId id = push(std::move(s));
  open_.push_back(id);
  return id;
}

void Tracer::end(SpanId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) {
    return;
  }
  // Close any scopes opened inside `id` that were left open (exceptions,
  // early returns), then `id` itself.
  while (!open_.empty()) {
    const SpanId top = open_.back();
    open_.pop_back();
    spans_[static_cast<std::size_t>(top)].duration =
        now() - spans_[static_cast<std::size_t>(top)].start;
    if (top == id) {
      return;
    }
  }
}

SpanId Tracer::record(const std::string& name, const std::string& category,
                      double seconds, const std::string& backend,
                      const accel::WorkEstimate* work) {
  return record_at(name, category, now() - seconds, seconds, backend, work,
                   /*logged=*/true);
}

SpanId Tracer::record_at(const std::string& name, const std::string& category,
                         double start, double seconds,
                         const std::string& backend,
                         const accel::WorkEstimate* work, bool logged) {
  Span s;
  s.name = name;
  s.category = category;
  s.backend = backend;
  s.start = start;
  s.duration = seconds;
  s.logged = logged;
  if (work != nullptr) {
    s.work = *work;
    s.has_work = true;
  }
  return push(std::move(s));
}

void Tracer::add_counter(SpanId id, const std::string& key, double value) {
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) {
    return;
  }
  spans_[static_cast<std::size_t>(id)].counters[key] += value;
}

void Tracer::set_stream(SpanId id, int stream) {
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) {
    return;
  }
  spans_[static_cast<std::size_t>(id)].stream = stream;
}

void Tracer::set_stream_name(int stream, std::string name) {
  if (stream < 0) {
    return;
  }
  stream_names_[stream] = std::move(name);
}

void Tracer::device_span(const char* name, const char* category,
                         double seconds, double bytes,
                         const accel::WorkEstimate* work) {
  const SpanId id = record_at(name, category, now() - seconds, seconds, "",
                              work, /*logged=*/false);
  spans_[static_cast<std::size_t>(id)].device = true;
  if (bytes > 0.0) {
    spans_[static_cast<std::size_t>(id)].counters["bytes"] = bytes;
  }
}

accel::TimeLog Tracer::timelog() const {
  accel::TimeLog log;
  for (const auto& s : spans_) {
    if (s.logged) {
      log.add(s.name, s.duration);
    }
  }
  return log;
}

double Tracer::seconds(const std::string& name) const {
  double t = 0.0;
  for (const auto& s : spans_) {
    if (s.logged && s.name == name) {
      t += s.duration;
    }
  }
  return t;
}

long Tracer::calls(const std::string& name) const {
  long n = 0;
  for (const auto& s : spans_) {
    if (s.logged && s.name == name) {
      ++n;
    }
  }
  return n;
}

double Tracer::self_seconds(SpanId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) {
    return 0.0;
  }
  double t = spans_[static_cast<std::size_t>(id)].duration;
  for (const auto& s : spans_) {
    if (s.parent == id) {
      t -= s.duration;
    }
  }
  return std::max(0.0, t);
}

void Tracer::clear() {
  spans_.clear();
  open_.clear();
  stream_names_.clear();
}

}  // namespace toast::obs
