#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace toast::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type = Value::Type::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
          }
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Keep it simple: encode BMP code points as UTF-8.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    Value v;
    v.type = Value::Type::kNumber;
    char* end = nullptr;
    const std::string num = text_.substr(start, pos_ - start);
    v.number = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number: " + num);
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Value load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Value::parse(buf.str());
}

}  // namespace toast::obs::json
