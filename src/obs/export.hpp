#pragma once

// Exporters for the span tracer: Chrome trace-event JSON (load in
// chrome://tracing or Perfetto) and a flat machine-readable metrics
// JSON/CSV that CI threshold-checks (scripts/check_bench.py) and the
// toast-trace CLI consume.  See docs/OBSERVABILITY.md for the formats.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace toast::obs {

/// Aggregated counters for one category name (one row of the metrics
/// export; `calls` and `seconds` match the TimeLog view exactly).
struct MetricRow {
  long calls = 0;
  double seconds = 0.0;
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  double launches = 0.0;
  double atomic_ops = 0.0;
  std::map<std::string, double> counters;  // extra counters, summed
};

/// Aggregate logged spans by name.
std::map<std::string, MetricRow> aggregate_metrics(
    const std::vector<Span>& spans);

// --- Chrome trace-event JSON ---------------------------------------------

/// Complete ("ph":"X") events, microsecond timestamps on the virtual
/// timeline; framework spans on tid 0, device-emitted spans on tid 1,
/// stream-scheduled spans on tid 2+stream (one overlap lane per stream).
/// `stream_names` (Tracer::stream_names()) labels lanes; unnamed
/// streams render as "stream N".
void write_chrome_trace(const std::vector<Span>& spans, std::ostream& out,
                        const std::string& process_name = "toastcase",
                        const std::map<int, std::string>& stream_names = {});
void write_chrome_trace_file(const std::vector<Span>& spans,
                             const std::string& path,
                             const std::string& process_name = "toastcase",
                             const std::map<int, std::string>& stream_names =
                                 {});

// --- flat metrics ----------------------------------------------------------

/// {"schema":"toastcase-metrics-v1","meta":{...},"categories":{...},
///  "total_seconds":...}
void write_metrics_json(const std::vector<Span>& spans, std::ostream& out,
                        const std::map<std::string, std::string>& meta = {});
void write_metrics_json_file(
    const std::vector<Span>& spans, const std::string& path,
    const std::map<std::string, std::string>& meta = {});

/// category,calls,seconds,flops,bytes_read,bytes_written,launches,
/// bytes_h2d,bytes_d2h,seconds_h2d,seconds_d2h (direction-split transfer
/// traffic comes from the producer-attached counters of the same names).
void write_metrics_csv(const std::vector<Span>& spans, std::ostream& out);

/// Parse a metrics JSON document (as written by write_metrics_json) back
/// into rows; throws json::ParseError on schema mismatch.
std::map<std::string, MetricRow> read_metrics_json(const json::Value& doc);

}  // namespace toast::obs
