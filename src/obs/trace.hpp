#pragma once

// Span-based tracing over the virtual clock (paper §3.2.3, grown up).
//
// The seed repo recorded a flat category -> seconds map (accel::TimeLog).
// This layer replaces it as the source of truth: every charge against the
// virtual clock is a *span* — a named interval with a category, a backend
// label, an optional parent (nested scopes), and counters carrying the
// WorkEstimate that produced it (flops, bytes moved, launches).  The old
// TimeLog is now a thin aggregation view computed from the spans, so
// Figure 6 output is unchanged, while the full structure exports to
// Chrome trace-event JSON and flat metrics JSON/CSV (obs/export.hpp) for
// the CI pipeline to threshold-check.
//
// Two kinds of spans:
//   - *logged* spans enter the TimeLog aggregation (they are the exact
//     equivalents of the seed's log.add() calls);
//   - *structural* spans (begin/end scopes, device-emitted sub-events)
//     appear only in the trace export.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "accel/timelog.hpp"
#include "accel/trace_sink.hpp"
#include "accel/work.hpp"

namespace toast::obs {

using SpanId = std::int64_t;
inline constexpr SpanId kInvalidSpan = -1;

struct Span {
  std::string name;
  std::string category;  // kernel | transfer | alloc | exec | serial | ...
  std::string backend;   // cpu | jax | omptarget | "" (framework)
  double start = 0.0;    // virtual seconds
  double duration = 0.0;
  SpanId parent = kInvalidSpan;
  int depth = 0;
  /// Whether this span enters the TimeLog aggregation view.
  bool logged = false;
  /// Device-emitted sub-event (rendered on the device track).
  bool device = false;
  /// Virtual stream this span executed on (-1: not stream-scheduled).
  /// Stream spans render on their own Chrome-trace lane.
  int stream = -1;
  /// Work counters (zero when the producer supplied none).
  accel::WorkEstimate work;
  bool has_work = false;
  /// Extra counters: peak_temp_bytes, bytes, pass statistics...
  std::map<std::string, double> counters;
};

class Tracer final : public accel::TraceSink {
 public:
  explicit Tracer(const accel::VirtualClock* clock = nullptr)
      : clock_(clock) {}

  void set_clock(const accel::VirtualClock* clock) { clock_ = clock; }
  double now() const { return clock_ != nullptr ? clock_->now() : 0.0; }

  // --- structural scopes --------------------------------------------------

  /// Open a nested scope starting at the current virtual time.
  SpanId begin(std::string name, std::string category,
               std::string backend = {});
  /// Close a scope (and any scopes opened inside it that are still open).
  void end(SpanId id);
  std::size_t open_depth() const { return open_.size(); }

  // --- completed events ---------------------------------------------------

  /// Record a completed leaf span that lasted `seconds` and ended at the
  /// current virtual time.  Logged: enters the TimeLog view.  This is the
  /// drop-in replacement for the seed's `clock.advance(t); log.add(n, t)`.
  SpanId record(const std::string& name, const std::string& category,
                double seconds, const std::string& backend = {},
                const accel::WorkEstimate* work = nullptr);

  /// Explicit-interval variant (async transfers, per-group breakdowns).
  SpanId record_at(const std::string& name, const std::string& category,
                   double start, double seconds,
                   const std::string& backend = {},
                   const accel::WorkEstimate* work = nullptr,
                   bool logged = true);

  /// Attach an extra counter to a span.
  void add_counter(SpanId id, const std::string& key, double value);

  /// Tag a span with the virtual stream it executed on (sched::Scheduler).
  void set_stream(SpanId id, int stream);

  /// Name a virtual stream lane ("thread_name" metadata in the Chrome
  /// trace export); unnamed streams render as "stream N".
  void set_stream_name(int stream, std::string name);
  const std::map<int, std::string>& stream_names() const {
    return stream_names_;
  }

  // --- accel::TraceSink ---------------------------------------------------

  void device_span(const char* name, const char* category, double seconds,
                   double bytes, const accel::WorkEstimate* work) override;

  // --- views --------------------------------------------------------------

  const std::vector<Span>& spans() const { return spans_; }

  /// The seed's flat TimeLog, aggregated from the logged spans: identical
  /// categories, call counts and totals to what log.add() produced.
  accel::TimeLog timelog() const;

  /// Sum of `seconds` over logged spans named `name` (convenience for
  /// tests; equals timelog().seconds(name)).
  double seconds(const std::string& name) const;
  long calls(const std::string& name) const;

  /// Exclusive time of a span: duration minus direct children.
  double self_seconds(SpanId id) const;

  void clear();

 private:
  SpanId push(Span span);

  const accel::VirtualClock* clock_;
  std::vector<Span> spans_;
  std::vector<SpanId> open_;
  std::map<int, std::string> stream_names_;
};

/// RAII guard for a structural scope.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string name, std::string category,
             std::string backend = {})
      : tracer_(tracer),
        id_(tracer.begin(std::move(name), std::move(category),
                         std::move(backend))) {}
  ~ScopedSpan() { tracer_.end(id_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }

 private:
  Tracer& tracer_;
  SpanId id_;
};

}  // namespace toast::obs
