#pragma once

// Counter-based random number generation (Threefry-2x64), modelled on the
// random123 generator TOAST uses.  Counter-based RNGs are the natural choice
// for reproducible, massively parallel noise simulation: any (key, counter)
// pair can be evaluated independently, so detector i / sample j always sees
// the same value regardless of process decomposition.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace toast::rng {

/// One 2x64 Threefry block: two 64-bit words of key, two of counter,
/// producing two 64-bit outputs.  20 rounds (the recommended safe margin).
std::array<std::uint64_t, 2> threefry2x64(
    const std::array<std::uint64_t, 2>& key,
    const std::array<std::uint64_t, 2>& counter);

/// A seekable stream view over the Threefry generator.
///
/// `key` identifies the logical stream (e.g. {telescope, observation}) and
/// `counter[0]` a sub-stream (e.g. detector); `counter[1]` indexes the
/// position inside the stream and is advanced by the fill functions.
class RngStream {
 public:
  RngStream(std::array<std::uint64_t, 2> key,
            std::array<std::uint64_t, 2> counter)
      : key_(key), counter_(counter) {}

  /// Uniform doubles in [0, 1).
  void uniform_01(std::span<double> out);

  /// Uniform doubles in [-1, 1).
  void uniform_m11(std::span<double> out);

  /// Standard normal deviates via Box-Muller.
  void gaussian(std::span<double> out);

  /// Raw 64-bit words.
  void bits(std::span<std::uint64_t> out);

  /// Skip ahead `n` positions without generating output.
  void skip(std::uint64_t n) { counter_[1] += n; }

  std::array<std::uint64_t, 2> counter() const { return counter_; }

 private:
  std::array<std::uint64_t, 2> key_;
  std::array<std::uint64_t, 2> counter_;
};

/// Convenience one-shot fills matching TOAST's functional rng API.
void random_uniform_01(std::uint64_t key1, std::uint64_t key2,
                       std::uint64_t counter1, std::uint64_t counter2,
                       std::span<double> out);
void random_gaussian(std::uint64_t key1, std::uint64_t key2,
                     std::uint64_t counter1, std::uint64_t counter2,
                     std::span<double> out);

}  // namespace toast::rng
