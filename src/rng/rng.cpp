#include "rng/rng.hpp"

#include <cmath>
#include <numbers>

namespace toast::rng {

namespace {

// Threefry-2x64 rotation constants (from the Threefish cipher family).
constexpr std::array<unsigned, 8> kRot = {16, 42, 12, 31, 16, 32, 24, 21};
constexpr std::uint64_t kParity = 0x1BD11BDAA9FC1A22ULL;

inline std::uint64_t rotl64(std::uint64_t x, unsigned r) {
  return (x << r) | (x >> (64 - r));
}

// Convert a 64-bit word to a double in [0, 1) with 53 bits of precision.
inline double to_unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::array<std::uint64_t, 2> threefry2x64(
    const std::array<std::uint64_t, 2>& key,
    const std::array<std::uint64_t, 2>& counter) {
  const std::array<std::uint64_t, 3> ks = {key[0], key[1],
                                           kParity ^ key[0] ^ key[1]};
  std::uint64_t x0 = counter[0] + ks[0];
  std::uint64_t x1 = counter[1] + ks[1];
  // 20 rounds with key injection every 4 rounds.
  for (unsigned round = 0; round < 20; ++round) {
    x0 += x1;
    x1 = rotl64(x1, kRot[round % 8]);
    x1 ^= x0;
    if ((round + 1) % 4 == 0) {
      const unsigned s = (round + 1) / 4;
      x0 += ks[s % 3];
      x1 += ks[(s + 1) % 3] + s;
    }
  }
  return {x0, x1};
}

void RngStream::bits(std::span<std::uint64_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    const auto block = threefry2x64(key_, counter_);
    out[i] = block[0];
    if (i + 1 < out.size()) {
      out[i + 1] = block[1];
    }
    counter_[1] += 1;
    i += 2;
  }
}

void RngStream::uniform_01(std::span<double> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    const auto block = threefry2x64(key_, counter_);
    out[i] = to_unit_double(block[0]);
    if (i + 1 < out.size()) {
      out[i + 1] = to_unit_double(block[1]);
    }
    counter_[1] += 1;
    i += 2;
  }
}

void RngStream::uniform_m11(std::span<double> out) {
  uniform_01(out);
  for (auto& v : out) {
    v = 2.0 * v - 1.0;
  }
}

void RngStream::gaussian(std::span<double> out) {
  // Box-Muller on pairs of uniforms.  The first uniform is mapped away from
  // exactly zero so the log is finite.
  std::size_t i = 0;
  while (i < out.size()) {
    const auto block = threefry2x64(key_, counter_);
    counter_[1] += 1;
    const double u1 = to_unit_double(block[0]);
    const double u2 = to_unit_double(block[1]);
    const double r = std::sqrt(-2.0 * std::log1p(-u1));
    const double a = 2.0 * std::numbers::pi * u2;
    out[i] = r * std::cos(a);
    if (i + 1 < out.size()) {
      out[i + 1] = r * std::sin(a);
    }
    i += 2;
  }
}

void random_uniform_01(std::uint64_t key1, std::uint64_t key2,
                       std::uint64_t counter1, std::uint64_t counter2,
                       std::span<double> out) {
  RngStream stream({key1, key2}, {counter1, counter2});
  stream.uniform_01(out);
}

void random_gaussian(std::uint64_t key1, std::uint64_t key2,
                     std::uint64_t counter1, std::uint64_t counter2,
                     std::span<double> out) {
  RngStream stream({key1, key2}, {counter1, counter2});
  stream.gaussian(out);
}

}  // namespace toast::rng
