#pragma once

// Destriping map-maker: the iterative solver the paper's benchmark kernels
// exist to serve.  TOAST's map-making estimates step-wise noise-offset
// amplitudes `a` by solving the normal equations
//
//     (F^T N^-1 Z F) a = F^T N^-1 Z d
//
// with preconditioned conjugate gradients, where F scans amplitudes onto
// timestreams (template_offset_add_to_signal), F^T projects timestreams
// onto amplitudes (template_offset_project_signal), N^-1 is the detector
// noise weighting (noise_weight) and Z = I - P (P^T N^-1 P)^-1 P^T N^-1
// removes the sky signal through the binned map (build_noise_weighted +
// scan_map).  Every matrix-vector product is a pipeline of the paper's
// kernels, so the solver runs on any backend and its convergence is a
// strong end-to-end correctness check.
//
// This implements the common simplification used for benchmark-scale
// destriping: Z built from the *hit-weighted intensity* bin/unbin pair.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "accel/specs.hpp"
#include "async/engine.hpp"
#include "comm/engine.hpp"
#include "core/context.hpp"
#include "core/observation.hpp"
#include "kernels/operators.hpp"

namespace toast::solver {

/// How the solver schedules its simulated collectives.  The canonical
/// enum is the unified config layer's solver axis (kStaged = blocking
/// charge at the call site, kSync = async engine in serial mode — the
/// bitwise oracle, kOverlap = depth-1 pipelined CG collectives whose
/// unhidden latency is charged as logged "*_wait" spans); the solver
/// re-exports it under its historical name.
using AsyncComm = config::SolverComm;

struct DestriperConfig {
  std::int64_t nside = 64;
  std::int64_t step_length = 256;
  int max_iterations = 50;
  double tolerance = 1.0e-10;
  /// Tikhonov-style amplitude prior (stabilizes poorly hit steps).
  double prior_weight = 1.0e-6;
  /// CG iterations between checkpoints of the solver state (used only
  /// when the context's fault injector is armed: a simulated rank
  /// failure mid-solve restores the last checkpoint and replays,
  /// recharging the replayed kernels honestly, instead of recomputing
  /// the whole solve).
  int checkpoint_interval = 5;
  /// Simulated communicator for a distributed solve: with comm_ranks > 1
  /// every binned-map reduction and every CG dot product is followed by a
  /// step-scheduled allreduce (comm::Engine) on the cluster topology,
  /// charged to the context clock as logged "destriper_allreduce_*"
  /// spans.  The amplitudes are untouched — all ranks are statistically
  /// identical, so only the communication *cost* is modelled.  The
  /// default (1 rank) skips the engine entirely: bit-for-bit the
  /// single-rank solve.
  int comm_ranks = 1;
  int comm_ranks_per_node = 1;
  accel::NetworkSpec network = accel::slingshot_spec();
  /// Collective axis of the schedule space: algorithm + chunk bound the
  /// step-scheduled allreduces run with (the comm mode is ignored here —
  /// the destriper always uses the engine for multi-rank solves).
  config::CommConfig comm;
  /// Collective scheduling mode (no effect with a single rank).
  AsyncComm async_comm = AsyncComm::kStaged;

  /// Adopt the relevant axes of a full schedule-space config (collective
  /// algorithm + chunk bound, solver async-comm mode).
  void apply_schedule(const config::ScheduleConfig& s) {
    comm = s.comm;
    async_comm = s.solver.async_comm;
  }
};

struct DestriperResult {
  /// Solved offset amplitudes, one block per detector.
  std::vector<double> amplitudes;
  /// Residual norm per CG iteration (index 0 = initial residual).
  std::vector<double> residuals;
  int iterations = 0;
  bool converged = false;

  /// Convergence factor: final / initial residual norm.
  double reduction() const {
    return residuals.empty() ? 1.0 : residuals.back() / residuals.front();
  }
};

class Destriper {
 public:
  explicit Destriper(DestriperConfig config = {}) : config_(config) {}

  /// Solve for the noise offsets of one observation's "signal" field.
  /// The observation must carry pointing ("pixels") already; the signal
  /// is left untouched.
  DestriperResult solve(core::Observation& ob, core::ExecContext& ctx,
                        core::Backend backend);

  /// Subtract the solved offsets from the signal (destriped timestream).
  void apply(core::Observation& ob, const DestriperResult& result,
             core::ExecContext& ctx, core::Backend backend) const;

  const DestriperConfig& config() const { return config_; }

 private:
  /// Per-call-site communication slot (overlap mode keeps one pending
  /// future per slot; slots never alias, so independent reductions of
  /// one iteration don't serialize against each other).
  enum CommSlot : int {
    kSlotMap = 0,   ///< binned signal+hit map reduction
    kSlotRz,        ///< initial r.z
    kSlotRnorm0,    ///< initial residual norm
    kSlotPap,       ///< p.Ap
    kSlotRnorm,     ///< per-iteration residual norm
    kSlotRzNew,     ///< updated r.z
    kNumSlots,
  };

  /// y = (F^T N^-1 Z F) x + prior * x : one CG matrix application.
  std::vector<double> normal_matrix(core::Observation& ob,
                                    const std::vector<double>& x,
                                    core::ExecContext& ctx,
                                    core::Backend backend);

  /// Z v: bin v into a hit-weighted intensity map and subtract the
  /// scanned map from v (in place).
  void signal_subtract_binned(core::Observation& ob,
                              std::vector<double>& tod,
                              core::ExecContext& ctx,
                              core::Backend backend);

  /// Charge (kStaged/kSync) or submit (kOverlap) a step-scheduled
  /// allreduce of `bytes` across the simulated communicator (no-op for
  /// a single live rank).  Overlap mode first awaits the slot's previous
  /// reduction — the depth-1 pipeline.
  void charge_allreduce(core::ExecContext& ctx, double bytes,
                        const char* label, CommSlot slot);

  /// (Re)build the solve-scoped async runtime for `mode` — called at
  /// solve entry and whenever the "solver_comm" degradation ladder
  /// changes the effective scheduling mode mid-solve.
  void init_taskrt(core::ExecContext& ctx, AsyncComm mode);

  DestriperConfig config_;
  /// Solve-scoped async runtime (kSync/kOverlap with live_ranks_ > 1).
  std::optional<async::Engine> taskrt_;
  int comm_lane_ = -1;
  std::array<async::Future, kNumSlots> pending_{};
  /// Communicator size of the current solve: config_.comm_ranks until an
  /// elastic world shrink drops dead ranks from it.
  int live_ranks_ = 1;
  /// Effective scheduling mode of the current solve (the configured mode
  /// stepped down the "solver_comm" ladder: overlap -> sync -> staged).
  AsyncComm active_comm_ = AsyncComm::kStaged;
};

}  // namespace toast::solver
