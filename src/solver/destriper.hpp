#pragma once

// Destriping map-maker: the iterative solver the paper's benchmark kernels
// exist to serve.  TOAST's map-making estimates step-wise noise-offset
// amplitudes `a` by solving the normal equations
//
//     (F^T N^-1 Z F) a = F^T N^-1 Z d
//
// with preconditioned conjugate gradients, where F scans amplitudes onto
// timestreams (template_offset_add_to_signal), F^T projects timestreams
// onto amplitudes (template_offset_project_signal), N^-1 is the detector
// noise weighting (noise_weight) and Z = I - P (P^T N^-1 P)^-1 P^T N^-1
// removes the sky signal through the binned map (build_noise_weighted +
// scan_map).  Every matrix-vector product is a pipeline of the paper's
// kernels, so the solver runs on any backend and its convergence is a
// strong end-to-end correctness check.
//
// This implements the common simplification used for benchmark-scale
// destriping: Z built from the *hit-weighted intensity* bin/unbin pair.

#include <cstdint>
#include <vector>

#include "accel/specs.hpp"
#include "comm/engine.hpp"
#include "core/context.hpp"
#include "core/observation.hpp"
#include "kernels/operators.hpp"

namespace toast::solver {

struct DestriperConfig {
  std::int64_t nside = 64;
  std::int64_t step_length = 256;
  int max_iterations = 50;
  double tolerance = 1.0e-10;
  /// Tikhonov-style amplitude prior (stabilizes poorly hit steps).
  double prior_weight = 1.0e-6;
  /// CG iterations between checkpoints of the solver state (used only
  /// when the context's fault injector is armed: a simulated rank
  /// failure mid-solve restores the last checkpoint and replays,
  /// recharging the replayed kernels honestly, instead of recomputing
  /// the whole solve).
  int checkpoint_interval = 5;
  /// Simulated communicator for a distributed solve: with comm_ranks > 1
  /// every binned-map reduction and every CG dot product is followed by a
  /// step-scheduled allreduce (comm::Engine) on the cluster topology,
  /// charged to the context clock as logged "destriper_allreduce_*"
  /// spans.  The amplitudes are untouched — all ranks are statistically
  /// identical, so only the communication *cost* is modelled.  The
  /// default (1 rank) skips the engine entirely: bit-for-bit the
  /// single-rank solve.
  int comm_ranks = 1;
  int comm_ranks_per_node = 1;
  accel::NetworkSpec network = accel::slingshot_spec();
  comm::Algorithm comm_algorithm = comm::Algorithm::kRing;
};

struct DestriperResult {
  /// Solved offset amplitudes, one block per detector.
  std::vector<double> amplitudes;
  /// Residual norm per CG iteration (index 0 = initial residual).
  std::vector<double> residuals;
  int iterations = 0;
  bool converged = false;

  /// Convergence factor: final / initial residual norm.
  double reduction() const {
    return residuals.empty() ? 1.0 : residuals.back() / residuals.front();
  }
};

class Destriper {
 public:
  explicit Destriper(DestriperConfig config = {}) : config_(config) {}

  /// Solve for the noise offsets of one observation's "signal" field.
  /// The observation must carry pointing ("pixels") already; the signal
  /// is left untouched.
  DestriperResult solve(core::Observation& ob, core::ExecContext& ctx,
                        core::Backend backend);

  /// Subtract the solved offsets from the signal (destriped timestream).
  void apply(core::Observation& ob, const DestriperResult& result,
             core::ExecContext& ctx, core::Backend backend) const;

  const DestriperConfig& config() const { return config_; }

 private:
  /// y = (F^T N^-1 Z F) x + prior * x : one CG matrix application.
  std::vector<double> normal_matrix(core::Observation& ob,
                                    const std::vector<double>& x,
                                    core::ExecContext& ctx,
                                    core::Backend backend) const;

  /// Z v: bin v into a hit-weighted intensity map and subtract the
  /// scanned map from v (in place).
  void signal_subtract_binned(core::Observation& ob,
                              std::vector<double>& tod,
                              core::ExecContext& ctx,
                              core::Backend backend) const;

  /// Charge a step-scheduled allreduce of `bytes` across the simulated
  /// communicator to the context clock (no-op for a single rank).
  void charge_allreduce(core::ExecContext& ctx, double bytes,
                        const char* label) const;

  DestriperConfig config_;
};

}  // namespace toast::solver
