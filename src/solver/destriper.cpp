#include "solver/destriper.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"

namespace toast::solver {

namespace {

using core::Backend;

// Backend dispatch for the kernels the solver composes.  The solver works
// on scratch host vectors (it owns the CG state), so device pointers and
// the pipeline staging machinery are not involved; the performance model
// still meters every call.

void k_offset_add(Backend b, std::int64_t step, const std::vector<double>& a,
                  std::int64_t n_amp_det,
                  std::span<const core::Interval> ivals, std::int64_t n_det,
                  std::int64_t n_samp, std::vector<double>& tod,
                  core::ExecContext& ctx) {
  switch (b) {
    case Backend::kCpu:
      kernels::cpu::template_offset_add_to_signal(step, a, n_amp_det, ivals,
                                                  n_det, n_samp, tod, ctx);
      break;
    case Backend::kOmpTarget:
      kernels::omp::template_offset_add_to_signal(
          step, a.data(), n_amp_det, ivals, n_det, n_samp, tod.data(), ctx,
          true);
      break;
    default:
      kernels::jax::template_offset_add_to_signal(
          step, a.data(), n_amp_det, ivals, n_det, n_samp, tod.data(), ctx);
      break;
  }
}

void k_offset_project(Backend b, std::int64_t step,
                      const std::vector<double>& tod,
                      std::span<const core::Interval> ivals,
                      std::int64_t n_det, std::int64_t n_samp,
                      std::vector<double>& amps, std::int64_t n_amp_det,
                      core::ExecContext& ctx) {
  switch (b) {
    case Backend::kCpu:
      kernels::cpu::template_offset_project_signal(step, tod, ivals, n_det,
                                                   n_samp, amps, n_amp_det,
                                                   ctx);
      break;
    case Backend::kOmpTarget:
      kernels::omp::template_offset_project_signal(
          step, tod.data(), ivals, n_det, n_samp, amps.data(), n_amp_det,
          ctx, true);
      break;
    default:
      kernels::jax::template_offset_project_signal(
          step, tod.data(), ivals, n_det, n_samp, amps.data(), n_amp_det,
          ctx);
      break;
  }
}

void k_noise_weight(Backend b, const std::vector<double>& det_weights,
                    std::span<const core::Interval> ivals, std::int64_t n_det,
                    std::int64_t n_samp, std::vector<double>& tod,
                    core::ExecContext& ctx) {
  switch (b) {
    case Backend::kCpu:
      kernels::cpu::noise_weight(det_weights, ivals, n_det, n_samp, tod,
                                 ctx);
      break;
    case Backend::kOmpTarget:
      kernels::omp::noise_weight(det_weights.data(), ivals, n_det, n_samp,
                                 tod.data(), ctx, true);
      break;
    default:
      kernels::jax::noise_weight(det_weights.data(), ivals, n_det, n_samp,
                                 tod.data(), ctx);
      break;
  }
}

void k_bin(Backend b, const std::vector<std::int64_t>& pixels,
           const std::vector<double>& ones, const std::vector<double>& tod,
           const std::vector<double>& det_scale, std::int64_t n_pix,
           std::span<const core::Interval> ivals, std::int64_t n_det,
           std::int64_t n_samp, std::vector<double>& zmap,
           core::ExecContext& ctx) {
  switch (b) {
    case Backend::kCpu:
      kernels::cpu::build_noise_weighted(pixels, ones, 1, tod, det_scale,
                                         {}, 0, ivals, n_det, n_samp, zmap,
                                         ctx);
      break;
    case Backend::kOmpTarget:
      kernels::omp::build_noise_weighted(pixels.data(), ones.data(), 1,
                                         tod.data(), det_scale.data(),
                                         nullptr, 0, ivals, n_det, n_samp,
                                         zmap.data(), ctx, true);
      break;
    default:
      kernels::jax::build_noise_weighted(pixels.data(), ones.data(), n_pix,
                                         1, tod.data(), det_scale.data(),
                                         nullptr, 0, ivals, n_det, n_samp,
                                         zmap.data(), ctx);
      break;
  }
}

void k_scan(Backend b, const std::vector<double>& map, std::int64_t n_pix,
            const std::vector<std::int64_t>& pixels,
            const std::vector<double>& ones, double scale,
            std::span<const core::Interval> ivals, std::int64_t n_det,
            std::int64_t n_samp, std::vector<double>& tod,
            core::ExecContext& ctx) {
  switch (b) {
    case Backend::kCpu:
      kernels::cpu::scan_map(map, 1, pixels, ones, scale, ivals, n_det,
                             n_samp, tod, ctx);
      break;
    case Backend::kOmpTarget:
      kernels::omp::scan_map(map.data(), 1, pixels.data(), ones.data(),
                             scale, ivals, n_det, n_samp, tod.data(), ctx,
                             true);
      break;
    default:
      kernels::jax::scan_map(map.data(), n_pix, 1, pixels.data(),
                             ones.data(), scale, ivals, n_det, n_samp,
                             tod.data(), ctx);
      break;
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a[i] * b[i];
  }
  return s;
}

/// The configured scheduling mode stepped `level` rungs down the
/// "solver_comm" degradation ladder: overlap (0) -> sync (1) -> staged
/// (2).  Level 0 is always the configured mode.
AsyncComm ladder_mode(AsyncComm configured, int level) {
  auto rung = [](AsyncComm m) {
    switch (m) {
      case AsyncComm::kOverlap:
        return 0;
      case AsyncComm::kSync:
        return 1;
      case AsyncComm::kStaged:
        return 2;
    }
    return 2;
  };
  switch (std::min(2, rung(configured) + level)) {
    case 0:
      return AsyncComm::kOverlap;
    case 1:
      return AsyncComm::kSync;
    default:
      return AsyncComm::kStaged;
  }
}

}  // namespace

void Destriper::charge_allreduce(core::ExecContext& ctx, double bytes,
                                 const char* label, CommSlot slot) {
  if (live_ranks_ <= 1) {
    return;
  }
  if (!taskrt_.has_value()) {
    // Staged: blocking charge at the call site (the historical path).
    const comm::Engine engine(comm::Topology::cluster(
        live_ranks_, std::max(1, config_.comm_ranks_per_node),
        config_.network));
    comm::RunOptions opt;
    opt.epoch = ctx.clock().now();
    opt.site = label;
    opt.faults = &ctx.faults();
    opt.max_chunk_bytes = config_.comm.chunk_bytes;
    const double t =
        engine.allreduce_seconds(bytes, config_.comm.algorithm, opt);
    ctx.clock().advance(t);
    ctx.tracer().record(label, "comm", t);
    return;
  }
  // Depth-1 pipeline: this slot's previous reduction must have landed
  // before the next one is issued (await is a no-op in serial mode and
  // whenever the matvec already hid the latency).
  taskrt_->await(pending_[static_cast<std::size_t>(slot)],
                 std::string(label) + "_wait");
  auto cost = [this, &ctx, bytes, label](double start) {
    const comm::Engine engine(comm::Topology::cluster(
        live_ranks_, std::max(1, config_.comm_ranks_per_node),
        config_.network));
    comm::RunOptions opt;
    opt.epoch = start;
    opt.site = label;
    opt.faults = &ctx.faults();
    opt.max_chunk_bytes = config_.comm.chunk_bytes;
    return engine.allreduce_seconds(bytes, config_.comm.algorithm, opt);
  };
  pending_[static_cast<std::size_t>(slot)] =
      taskrt_->submit(comm_lane_, label, "comm", cost);
}

void Destriper::init_taskrt(core::ExecContext& ctx, AsyncComm mode) {
  taskrt_.reset();
  pending_.fill(async::Future{});
  if (live_ranks_ > 1 && mode != AsyncComm::kStaged) {
    async::Options aopt;
    aopt.mode = mode == AsyncComm::kOverlap ? async::Mode::kOverlap
                                            : async::Mode::kSerial;
    taskrt_.emplace(ctx.clock(), &ctx.tracer(), aopt);
    comm_lane_ = taskrt_->lane("comm");
  }
}

void Destriper::signal_subtract_binned(core::Observation& ob,
                                       std::vector<double>& tod,
                                       core::ExecContext& ctx,
                                       Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_pix = 12 * config_.nside * config_.nside;
  const auto& ivals = ob.intervals();
  const auto& fp = ob.focalplane();

  const std::vector<std::int64_t> pixels(
      ob.field(core::fields::kPixels).i64().begin(),
      ob.field(core::fields::kPixels).i64().end());
  const std::vector<double> ones(static_cast<std::size_t>(n_det * n_samp),
                                 1.0);
  std::vector<double> det_scale(static_cast<std::size_t>(n_det));
  std::vector<double> invvar_tod(static_cast<std::size_t>(n_det * n_samp));
  for (std::int64_t d = 0; d < n_det; ++d) {
    const double net = fp.net[static_cast<std::size_t>(d)];
    const double w = 1.0 / (net * net * fp.sample_rate);
    det_scale[static_cast<std::size_t>(d)] = 1.0;
    for (std::int64_t s = 0; s < n_samp; ++s) {
      invvar_tod[static_cast<std::size_t>(d * n_samp + s)] = w;
    }
  }

  // Noise-weighted bin of the timestream and of the weights themselves.
  std::vector<double> wtod = tod;
  k_noise_weight(backend, [&] {
    std::vector<double> w(static_cast<std::size_t>(n_det));
    for (std::int64_t d = 0; d < n_det; ++d) {
      const double net = fp.net[static_cast<std::size_t>(d)];
      w[static_cast<std::size_t>(d)] = 1.0 / (net * net * fp.sample_rate);
    }
    return w;
  }(), ivals, n_det, n_samp, wtod, ctx);

  std::vector<double> zmap(static_cast<std::size_t>(n_pix), 0.0);
  std::vector<double> whits(static_cast<std::size_t>(n_pix), 0.0);
  k_bin(backend, pixels, ones, wtod, det_scale, n_pix, ivals, n_det, n_samp,
        zmap, ctx);
  k_bin(backend, pixels, ones, invvar_tod, det_scale, n_pix, ivals, n_det,
        n_samp, whits, ctx);
  // Distributed binning sums the signal and hit maps across ranks.
  charge_allreduce(ctx, 2.0 * static_cast<double>(n_pix) * 8.0,
                   "destriper_allreduce_map", kSlotMap);

  for (std::int64_t p = 0; p < n_pix; ++p) {
    const auto i = static_cast<std::size_t>(p);
    zmap[i] = whits[i] > 0.0 ? zmap[i] / whits[i] : 0.0;
  }
  // tod -= P m
  k_scan(backend, zmap, n_pix, pixels, ones, -1.0, ivals, n_det, n_samp,
         tod, ctx);
}

std::vector<double> Destriper::normal_matrix(core::Observation& ob,
                                             const std::vector<double>& x,
                                             core::ExecContext& ctx,
                                             Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + config_.step_length - 1) / config_.step_length;
  const auto& ivals = ob.intervals();
  const auto& fp = ob.focalplane();

  std::vector<double> det_weights(static_cast<std::size_t>(n_det));
  for (std::int64_t d = 0; d < n_det; ++d) {
    const double net = fp.net[static_cast<std::size_t>(d)];
    det_weights[static_cast<std::size_t>(d)] =
        1.0 / (net * net * fp.sample_rate);
  }

  std::vector<double> tod(static_cast<std::size_t>(n_det * n_samp), 0.0);
  k_offset_add(backend, config_.step_length, x, n_amp_det, ivals, n_det,
               n_samp, tod, ctx);
  signal_subtract_binned(ob, tod, ctx, backend);
  k_noise_weight(backend, det_weights, ivals, n_det, n_samp, tod, ctx);

  std::vector<double> y(x.size(), 0.0);
  k_offset_project(backend, config_.step_length, tod, ivals, n_det, n_samp,
                   y, n_amp_det, ctx);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] += config_.prior_weight * x[i];
  }
  return y;
}

DestriperResult Destriper::solve(core::Observation& ob,
                                 core::ExecContext& ctx, Backend backend) {
  if (!ob.has_field(core::fields::kPixels)) {
    throw std::invalid_argument("Destriper: observation has no pointing");
  }
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + config_.step_length - 1) / config_.step_length;
  const auto n_amp = static_cast<std::size_t>(n_det * n_amp_det);
  const auto& ivals = ob.intervals();
  const auto& fp = ob.focalplane();

  // Solve-scoped async runtime: kSync is the serial bitwise oracle of
  // the staged path, kOverlap pipelines the collectives (depth-1
  // slots) so they hide behind the next matvec.  The effective mode is
  // the configured one stepped down the "solver_comm" ladder, and the
  // communicator starts at the configured size (an elastic shrink
  // drops dead ranks from it mid-solve).
  resilience::Manager& rm = ctx.resilience();
  live_ranks_ = config_.comm_ranks;
  active_comm_ = rm.armed()
                     ? ladder_mode(config_.async_comm, rm.level("solver_comm"))
                     : config_.async_comm;
  init_taskrt(ctx, active_comm_);

  std::vector<double> det_weights(static_cast<std::size_t>(n_det));
  for (std::int64_t d = 0; d < n_det; ++d) {
    const double net = fp.net[static_cast<std::size_t>(d)];
    det_weights[static_cast<std::size_t>(d)] =
        1.0 / (net * net * fp.sample_rate);
  }

  // RHS: b = F^T N^-1 Z d.
  std::vector<double> tod(ob.field(core::fields::kSignal).f64().begin(),
                          ob.field(core::fields::kSignal).f64().end());
  signal_subtract_binned(ob, tod, ctx, backend);
  k_noise_weight(backend, det_weights, ivals, n_det, n_samp, tod, ctx);
  std::vector<double> b(n_amp, 0.0);
  k_offset_project(backend, config_.step_length, tod, ivals, n_det, n_samp,
                   b, n_amp_det, ctx);

  // Diagonal preconditioner: 1 / (invvar * step + prior).
  std::vector<double> precond(n_amp);
  for (std::int64_t d = 0; d < n_det; ++d) {
    const double w = det_weights[static_cast<std::size_t>(d)];
    for (std::int64_t a = 0; a < n_amp_det; ++a) {
      precond[static_cast<std::size_t>(d * n_amp_det + a)] =
          1.0 / (w * static_cast<double>(config_.step_length) +
                 config_.prior_weight);
    }
  }
  auto apply_precond = [&](const std::vector<double>& v) {
    std::vector<double> out(v.size());
    switch (backend) {
      case Backend::kCpu:
        kernels::cpu::template_offset_apply_diag_precond(precond, v, out,
                                                         ctx);
        break;
      case Backend::kOmpTarget:
        kernels::omp::template_offset_apply_diag_precond(
            precond.data(), v.data(), static_cast<std::int64_t>(v.size()),
            out.data(), ctx, true);
        break;
      default:
        kernels::jax::template_offset_apply_diag_precond(
            precond.data(), v.data(), static_cast<std::int64_t>(v.size()),
            out.data(), ctx);
        break;
    }
    return out;
  };

  // Preconditioned CG.
  DestriperResult result;
  result.amplitudes.assign(n_amp, 0.0);
  std::vector<double> r = b;
  std::vector<double> z = apply_precond(r);
  std::vector<double> p = z;
  double rz = dot(r, z);
  charge_allreduce(ctx, 8.0, "destriper_allreduce_dot", kSlotRz);
  result.residuals.push_back(std::sqrt(dot(r, r)));
  charge_allreduce(ctx, 8.0, "destriper_allreduce_dot", kSlotRnorm0);
  const double target = config_.tolerance * result.residuals.front();

  // Checkpoint/restart: with an armed fault injector the solver snapshots
  // its CG state every checkpoint_interval iterations; a simulated rank
  // failure restores the snapshot and replays from there (the replayed
  // kernel charges land on the clock — recovery is not free), instead of
  // recomputing the whole solve.  Disarmed, the loop is the plain CG
  // iteration, bit for bit.
  struct CgCheckpoint {
    std::vector<double> amplitudes;
    std::vector<double> r;
    std::vector<double> p;
    double rz = 0.0;
    std::vector<double> residuals;
    int iterations = 0;
    int iter = 0;
  };
  const bool chaos = ctx.faults().armed();
  const int ckpt_interval = std::max(1, config_.checkpoint_interval);
  resilience::RetrySpec plan_retry;
  plan_retry.max_attempts = ctx.faults().plan().retry.max_attempts;
  plan_retry.backoff_seconds = ctx.faults().plan().retry.backoff_seconds;
  plan_retry.backoff_multiplier =
      ctx.faults().plan().retry.backoff_multiplier;
  plan_retry.failed_fraction = ctx.faults().plan().retry.failed_fraction;
  const resilience::RetrySpec cg_retry =
      rm.armed() ? rm.retry_for("destriper_cg", plan_retry) : plan_retry;
  const int max_restores = std::max(1, cg_retry.max_attempts);
  CgCheckpoint ckpt;
  int restores = 0;

  int iter = 0;
  while (iter < config_.max_iterations) {
    if (chaos) {
      if (iter % ckpt_interval == 0) {
        ckpt = {result.amplitudes, r,    p,
                rz,                result.residuals, result.iterations,
                iter};
      }
      const bool can_restore = restores < max_restores;
      const bool can_shrink =
          !can_restore && rm.armed() && rm.allow_shrink(live_ranks_);
      if ((can_restore || can_shrink) &&
          ctx.faults().rank_failure("destriper_cg")) {
        if (taskrt_.has_value()) {
          // Roll back in-flight collectives with the solver state.
          // With requeue enabled this is a real graph edit: the
          // placements are cancelled (no slack charged) and the replay
          // re-submits them; otherwise the historical drain charges
          // their remaining latency first.
          const int in_flight = taskrt_->pending_count();
          if (in_flight > 0 && rm.requeue_enabled()) {
            taskrt_->cancel_pending("destriper_comm_requeue");
            rm.note_requeue("destriper_cg", in_flight);
          } else {
            taskrt_->drain("destriper_comm_drain");
          }
          if (in_flight > 0) {
            ctx.faults().note_task_requeue("destriper_cg", in_flight);
          }
          pending_.fill(async::Future{});
        }
        result.amplitudes = ckpt.amplitudes;
        r = ckpt.r;
        p = ckpt.p;
        rz = ckpt.rz;
        result.residuals = ckpt.residuals;
        result.iterations = ckpt.iterations;
        iter = ckpt.iter;
        if (can_restore) {
          ++restores;
        } else {
          // Elastic recovery: the restore budget is exhausted, so the
          // dead rank leaves the communicator — the CG restarts from
          // the checkpoint on the shrunken world with a fresh budget.
          rm.note_world_shrink("destriper_cg", live_ranks_,
                               live_ranks_ - 1);
          live_ranks_ -= 1;
          restores = 0;
        }
        ctx.faults().note_checkpoint_restore("destriper_cg", iter);
        if (rm.armed()) {
          rm.report_fault("solver_comm", "destriper_cg");
          const AsyncComm target =
              ladder_mode(config_.async_comm, rm.level("solver_comm"));
          if (target != active_comm_) {
            active_comm_ = target;
            init_taskrt(ctx, target);
          }
        }
        continue;
      }
    }
    const auto ap = normal_matrix(ob, p, ctx, backend);
    const double pap = dot(p, ap);
    charge_allreduce(ctx, 8.0, "destriper_allreduce_dot", kSlotPap);
    if (pap <= 0.0) {
      break;  // matrix numerically singular along p
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n_amp; ++i) {
      result.amplitudes[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rnorm = std::sqrt(dot(r, r));
    charge_allreduce(ctx, 8.0, "destriper_allreduce_dot", kSlotRnorm);
    result.residuals.push_back(rnorm);
    result.iterations = iter + 1;
    if (rnorm <= target) {
      result.converged = true;
      break;
    }
    z = apply_precond(r);
    const double rz_new = dot(r, z);
    charge_allreduce(ctx, 8.0, "destriper_allreduce_dot", kSlotRzNew);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n_amp; ++i) {
      p[i] = z[i] + beta * p[i];
    }
    ++iter;
  }
  if (taskrt_.has_value()) {
    // The last iteration's collectives must land before solve returns.
    taskrt_->drain("destriper_comm_drain");
    taskrt_.reset();
  }
  return result;
}

void Destriper::apply(core::Observation& ob, const DestriperResult& result,
                      core::ExecContext& ctx, Backend backend) const {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_amp_det =
      (n_samp + config_.step_length - 1) / config_.step_length;
  // signal -= F a: scan the negated amplitudes onto the signal.
  std::vector<double> neg(result.amplitudes.size());
  for (std::size_t i = 0; i < neg.size(); ++i) {
    neg[i] = -result.amplitudes[i];
  }
  std::vector<double> tod(ob.field(core::fields::kSignal).f64().begin(),
                          ob.field(core::fields::kSignal).f64().end());
  k_offset_add(backend, config_.step_length, neg, n_amp_det, ob.intervals(),
               n_det, n_samp, tod, ctx);
  auto out = ob.field(core::fields::kSignal).f64();
  std::copy(tod.begin(), tod.end(), out.begin());
}

}  // namespace toast::solver
