#pragma once

// Minimal FFT substrate used by the 1/f noise simulation.
//
// The paper's kernels rely on FFTW/cuFFT through TOAST; our noise generator
// only needs power-of-two sizes, so an iterative radix-2 Cooley-Tukey
// transform plus real-transform wrappers is sufficient and dependency free.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace toast::fft {

/// Round n up to the next power of two (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a nonzero power of two.
bool is_pow2(std::size_t n);

/// In-place forward complex FFT (unnormalized).  data.size() must be a
/// power of two.
void fft_inplace(std::span<std::complex<double>> data);

/// In-place inverse complex FFT, normalized by 1/N.
void ifft_inplace(std::span<std::complex<double>> data);

/// Forward real-to-complex transform: returns n/2 + 1 spectrum bins for a
/// real input of power-of-two length n.
std::vector<std::complex<double>> rfft(std::span<const double> input);

/// Inverse complex-to-real transform: spectrum of n/2 + 1 bins to n real
/// samples (n a power of two), normalized so irfft(rfft(x)) == x.
std::vector<double> irfft(std::span<const std::complex<double>> spectrum,
                          std::size_t n);

}  // namespace toast::fft
