#include "fft/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace toast::fft {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void transform(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Iterative butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(std::span<std::complex<double>> data) {
  transform(data, false);
}

void ifft_inplace(std::span<std::complex<double>> data) {
  transform(data, true);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) {
    v *= inv;
  }
}

std::vector<std::complex<double>> rfft(std::span<const double> input) {
  const std::size_t n = input.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("rfft: size must be a power of two");
  }
  std::vector<std::complex<double>> work(input.begin(), input.end());
  fft_inplace(work);
  work.resize(n / 2 + 1);
  return work;
}

std::vector<double> irfft(std::span<const std::complex<double>> spectrum,
                          std::size_t n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("irfft: size must be a power of two");
  }
  if (spectrum.size() != n / 2 + 1) {
    throw std::invalid_argument("irfft: spectrum must hold n/2 + 1 bins");
  }
  std::vector<std::complex<double>> work(n);
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    work[i] = spectrum[i];
  }
  // Hermitian symmetry for the upper half.
  for (std::size_t i = 1; i < n / 2; ++i) {
    work[n - i] = std::conj(spectrum[i]);
  }
  ifft_inplace(work);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = work[i].real();
  }
  return out;
}

}  // namespace toast::fft
