#include "resilience/manager.hpp"

#include <algorithm>
#include <utility>

namespace toast::resilience {

namespace {

// Same counter-based RNG family as the fault injector (fault.cpp): the
// breaker jitter draw is keyed on (fault seed, site, trip count) so it
// never perturbs the injector's own draw streams and repeats bitwise.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

double uniform01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Manager::Manager(Policy policy, accel::VirtualClock* clock,
                 obs::Tracer* tracer, std::uint64_t seed)
    : policy_(std::move(policy)),
      clock_(clock),
      tracer_(tracer),
      seed_(seed),
      armed_(!policy_.empty()),
      breakers_(policy_.sites.size()) {}

int Manager::site_index(const std::string& site) const {
  if (!armed_) {
    return -1;
  }
  for (std::size_t i = 0; i < policy_.sites.size(); ++i) {
    const SitePolicy& sp = policy_.sites[i];
    if (sp.site.empty() || site.find(sp.site) != std::string::npos) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const SitePolicy* Manager::site_for(const std::string& site) const {
  const int i = site_index(site);
  return i < 0 ? nullptr : &policy_.sites[static_cast<std::size_t>(i)];
}

RetrySpec Manager::retry_for(const std::string& site,
                             const RetrySpec& fallback) const {
  const SitePolicy* sp = site_for(site);
  return sp != nullptr && sp->has_retry ? sp->retry : fallback;
}

double Manager::deadline_for(const std::string& site) const {
  const SitePolicy* sp = site_for(site);
  return sp != nullptr ? sp->deadline_seconds : 0.0;
}

Manager::Breaker* Manager::breaker_for(const std::string& site, int* entry) {
  const int i = site_index(site);
  if (i < 0 ||
      policy_.sites[static_cast<std::size_t>(i)].breaker.open_after <= 0) {
    return nullptr;
  }
  if (entry != nullptr) {
    *entry = i;
  }
  return &breakers_[static_cast<std::size_t>(i)][site];
}

void Manager::note(const std::string& name, const std::string& site,
                   double seconds, const std::string& counter_key,
                   double counter_value) {
  add_count(counter_key, counter_value);
  if (tracer_ != nullptr) {
    const obs::SpanId id = tracer_->record(name, "resilience", seconds);
    tracer_->add_counter(id, "site_" + site, 1.0);
  }
}

void Manager::open_breaker(Breaker& b, const std::string& site) {
  const BreakerSpec& spec = site_for(site)->breaker;
  double window = spec.open_seconds;
  if (spec.jitter > 0.0) {
    const double u = uniform01(
        splitmix64(seed_ ^ fnv1a("breaker@" + site) ^
                   splitmix64(static_cast<std::uint64_t>(b.trips))));
    window *= 1.0 + spec.jitter * u;
  }
  b.state = BreakerState::kOpen;
  b.open_until = (clock_ != nullptr ? clock_->now() : 0.0) + window;
  b.consecutive_failures = 0;
  b.half_open_successes = 0;
  ++b.trips;
  note("resilience_breaker_open", site, 0.0, "resilience_breaker_opens");
}

bool Manager::admit(const std::string& site) {
  Breaker* b = breaker_for(site);
  if (b == nullptr) {
    return true;
  }
  if (b->state == BreakerState::kOpen) {
    const double now = clock_ != nullptr ? clock_->now() : 0.0;
    if (now < b->open_until) {
      note("resilience_breaker_fast_fail", site, 0.0,
           "resilience_breaker_fast_fails");
      return false;
    }
    b->state = BreakerState::kHalfOpen;
    b->half_open_successes = 0;
    note("resilience_breaker_half_open", site, 0.0,
         "resilience_breaker_half_opens");
  }
  return true;
}

void Manager::on_failure(const std::string& site) {
  Breaker* b = breaker_for(site);
  if (b == nullptr) {
    return;
  }
  if (b->state == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open with a fresh window.
    open_breaker(*b, site);
    return;
  }
  if (b->state == BreakerState::kClosed) {
    ++b->consecutive_failures;
    if (b->consecutive_failures >= site_for(site)->breaker.open_after) {
      open_breaker(*b, site);
    }
  }
}

void Manager::on_success(const std::string& site) {
  Breaker* b = breaker_for(site);
  if (b == nullptr) {
    return;
  }
  if (b->state == BreakerState::kHalfOpen) {
    ++b->half_open_successes;
    if (b->half_open_successes >=
        std::max(1, site_for(site)->breaker.close_after)) {
      b->state = BreakerState::kClosed;
      b->consecutive_failures = 0;
      b->half_open_successes = 0;
      note("resilience_breaker_close", site, 0.0,
           "resilience_breaker_closes");
    }
    return;
  }
  b->consecutive_failures = 0;
}

void Manager::note_deadline_exceeded(const std::string& site, double spent) {
  add_count("resilience_deadline_exceeded");
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("resilience_deadline_exceeded", "resilience", 0.0);
    tracer_->add_counter(id, "site_" + site, 1.0);
    tracer_->add_counter(id, "spent_s", spent);
  }
}

BreakerState Manager::breaker_state(const std::string& site) const {
  const int i = site_index(site);
  if (i < 0) {
    return BreakerState::kClosed;
  }
  const auto& per_site = breakers_[static_cast<std::size_t>(i)];
  const auto it = per_site.find(site);
  return it == per_site.end() ? BreakerState::kClosed : it->second.state;
}

int Manager::level(const std::string& domain) const {
  if (!armed_) {
    return 0;
  }
  const auto it = ladder_levels_.find(domain);
  return it == ladder_levels_.end() ? 0 : it->second;
}

void Manager::report_fault(const std::string& domain,
                           const std::string& why) {
  if (!armed_) {
    return;
  }
  const LadderSpec* spec = nullptr;
  for (const LadderSpec& l : policy_.ladders) {
    if (l.domain == domain) {
      spec = &l;
      break;
    }
  }
  if (spec == nullptr) {
    return;
  }
  const int faults = ++ladder_faults_[domain];
  const int target = std::min(
      spec->max_level, faults / std::max(1, spec->escalate_after));
  int& level = ladder_levels_[domain];
  if (target <= level) {
    return;
  }
  level = target;
  add_count("resilience_degrades");
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("resilience_degrade", "resilience", 0.0);
    tracer_->add_counter(id, "domain_" + domain, 1.0);
    tracer_->add_counter(id, "level", level);
    tracer_->add_counter(id, "why_" + why, 1.0);
  }
}

void Manager::note_world_shrink(const std::string& site, int from, int to) {
  const double cost = std::max(0.0, policy_.elastic.rebuild_seconds);
  if (clock_ != nullptr) {
    clock_->advance(cost);
  }
  add_count("resilience_world_shrinks");
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("resilience_world_shrink", "resilience", cost);
    tracer_->add_counter(id, "site_" + site, 1.0);
    tracer_->add_counter(id, "from_ranks", from);
    tracer_->add_counter(id, "to_ranks", to);
  }
}

void Manager::note_redistribute(const std::string& site, double seconds,
                                int observations) {
  if (clock_ != nullptr) {
    clock_->advance(seconds);
  }
  add_count("resilience_redistributed_obs", observations);
  if (tracer_ != nullptr) {
    const obs::SpanId id =
        tracer_->record("resilience_redistribute", "resilience", seconds);
    tracer_->add_counter(id, "site_" + site, 1.0);
    tracer_->add_counter(id, "observations", observations);
  }
}

void Manager::note_requeue(const std::string& site, int count) {
  if (count <= 0) {
    return;
  }
  note("resilience_task_requeue", site, 0.0, "resilience_task_requeues",
       count);
  if (tracer_ != nullptr) {
    // The span above carries the site; tasks ride as a separate counter
    // on a dedicated span would be noise — attach to the latest note.
  }
}

}  // namespace toast::resilience
