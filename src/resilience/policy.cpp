#include "resilience/policy.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace toast::resilience {

namespace {

using obs::json::Value;

void reject_unknown_keys(const Value& v, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, member] : v.object) {
    (void)member;
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(where + ": unknown key '" + key + "'");
    }
  }
}

RetrySpec retry_from(const Value& v, const std::string& where) {
  reject_unknown_keys(v, where,
                      {"max_attempts", "backoff_seconds",
                       "backoff_multiplier", "failed_fraction"});
  RetrySpec r;
  r.max_attempts = static_cast<int>(v.number_or("max_attempts", 3.0));
  r.backoff_seconds = v.number_or("backoff_seconds", 1e-4);
  r.backoff_multiplier = v.number_or("backoff_multiplier", 2.0);
  r.failed_fraction = v.number_or("failed_fraction", 0.5);
  return r;
}

Policy policy_from_value(const Value& doc, const std::string& where) {
  if (!doc.is_object()) {
    throw std::runtime_error(where + ": resilience policy must be an object");
  }
  const Value* schema = doc.find("schema");
  if (schema == nullptr ||
      schema->string != "toastcase-resilience-policy-v1") {
    throw std::runtime_error(
        where + ": expected schema toastcase-resilience-policy-v1");
  }
  reject_unknown_keys(doc, where, {"schema", "sites", "ladders", "elastic"});

  Policy policy;
  if (const Value* sites = doc.find("sites")) {
    for (const Value& s : sites->array) {
      reject_unknown_keys(s, where + ": site",
                          {"site", "retry", "deadline_seconds", "breaker"});
      SitePolicy sp;
      if (const Value* site = s.find("site")) {
        sp.site = site->string;
      }
      if (const Value* retry = s.find("retry")) {
        sp.has_retry = true;
        sp.retry = retry_from(*retry, where + ": retry");
      }
      sp.deadline_seconds = s.number_or("deadline_seconds", 0.0);
      if (const Value* breaker = s.find("breaker")) {
        reject_unknown_keys(
            *breaker, where + ": breaker",
            {"open_after", "open_seconds", "close_after", "jitter"});
        sp.breaker.open_after =
            static_cast<int>(breaker->number_or("open_after", 0.0));
        sp.breaker.open_seconds = breaker->number_or("open_seconds", 1e-3);
        sp.breaker.close_after =
            static_cast<int>(breaker->number_or("close_after", 1.0));
        sp.breaker.jitter = breaker->number_or("jitter", 0.0);
      }
      policy.sites.push_back(std::move(sp));
    }
  }
  if (const Value* ladders = doc.find("ladders")) {
    for (const Value& l : ladders->array) {
      reject_unknown_keys(l, where + ": ladder",
                          {"domain", "escalate_after", "max_level"});
      LadderSpec ls;
      ls.domain = l.at("domain").string;
      if (ls.domain.empty()) {
        throw std::runtime_error(where + ": ladder domain must be non-empty");
      }
      ls.escalate_after =
          static_cast<int>(l.number_or("escalate_after", 1.0));
      ls.max_level = static_cast<int>(l.number_or("max_level", 1.0));
      policy.ladders.push_back(std::move(ls));
    }
  }
  if (const Value* elastic = doc.find("elastic")) {
    reject_unknown_keys(
        *elastic, where + ": elastic",
        {"enabled", "min_ranks", "rebuild_seconds", "requeue"});
    const Value* enabled = elastic->find("enabled");
    policy.elastic.enabled = enabled != nullptr && enabled->boolean;
    policy.elastic.min_ranks =
        static_cast<int>(elastic->number_or("min_ranks", 1.0));
    policy.elastic.rebuild_seconds =
        elastic->number_or("rebuild_seconds", 1e-3);
    const Value* requeue = elastic->find("requeue");
    policy.elastic.requeue = requeue == nullptr || requeue->boolean;
  }
  return policy;
}

}  // namespace

Policy Policy::parse(const std::string& text) {
  return policy_from_value(obs::json::Value::parse(text),
                           "resilience policy");
}

Policy Policy::load_file(const std::string& path) {
  return policy_from_value(obs::json::load_file(path), path);
}

Policy Policy::from_value(const obs::json::Value& doc,
                          const std::string& where) {
  return policy_from_value(doc, where);
}

}  // namespace toast::resilience
