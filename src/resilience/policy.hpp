#pragma once

// Declarative resilience policy (docs/ROBUSTNESS.md).
//
// PR 3 gave the stack deterministic fault *injection*; recovery, however,
// was a scatter of hard-coded knobs: one global retry budget in the fault
// plan, fixed in-place rank replay in mpisim, a trace-only task-requeue
// note in the async engine.  A resilience Policy replaces those knobs
// with per-site declarations the subsystems consult through one API:
//
//   - per-site retry budgets with backoff (overriding the fault plan's
//     single global RetryPolicy for matching hook sites),
//   - virtual-clock deadlines: a cap on the total retry penalty one op
//     may accumulate before it is declared persistently failed,
//   - deterministic circuit breakers (closed -> open -> half-open ->
//     closed, driven by the injected failure pattern and the virtual
//     clock, optionally jittered from the fault RNG so repeats stay
//     bitwise),
//   - graceful-degradation ladders: named escalation domains
//     ("solver_comm" overlap->sync->staged, "executor"
//     compiled->interpreter, "collectives" engine->model) that step up
//     one rung per `escalate_after` reported faults,
//   - the elastic world-shrink switch: when a rank-failure replay budget
//     is exhausted, drop the rank, rebuild the comm topology over the
//     survivors and redistribute its work instead of retrying forever.
//
// An empty policy disarms the Manager entirely: every consult is a no-op
// and execution is bit-for-bit identical to the policy-free build — the
// same guarantee the fault layer itself makes for an empty plan.
//
// JSON schema "toastcase-resilience-policy-v1" (parse/load_file):
//
// {
//   "schema": "toastcase-resilience-policy-v1",
//   "sites": [
//     {"site": "xla/", "deadline_seconds": 0.01,
//      "retry": {"max_attempts": 5, "backoff_seconds": 1e-4,
//                "backoff_multiplier": 2.0, "failed_fraction": 0.5},
//      "breaker": {"open_after": 3, "open_seconds": 0.05,
//                  "close_after": 2, "jitter": 0.0}}
//   ],
//   "ladders": [{"domain": "solver_comm", "escalate_after": 2,
//                "max_level": 2}],
//   "elastic": {"enabled": true, "min_ranks": 2,
//               "rebuild_seconds": 1e-3, "requeue": true}
// }
//
// Parsing is strict: unknown keys anywhere in the document are rejected
// (typos must not silently become defaults).

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace toast::resilience {

/// Per-site override of the fault plan's global retry policy.  Fields
/// mirror fault::RetryPolicy.
struct RetrySpec {
  int max_attempts = 3;
  double backoff_seconds = 1e-4;
  double backoff_multiplier = 2.0;
  double failed_fraction = 0.5;
};

/// Deterministic circuit breaker.  `open_after` consecutive failures at
/// one concrete site trip the breaker (subsequent ops fail fast, no
/// retry work); after `open_seconds` of virtual time it half-opens and
/// admits probes again; `close_after` consecutive half-open successes
/// close it.  `jitter` widens the open window by up to that fraction,
/// drawn from the fault RNG keyed on (seed, site, trip count) — still
/// bitwise across repeats.
struct BreakerSpec {
  int open_after = 0;  ///< 0 disables the breaker
  double open_seconds = 1e-3;
  int close_after = 1;
  double jitter = 0.0;
};

/// One per-site policy.  `site` is a substring matched against hook site
/// names (same convention as FaultRule::site; empty matches all sites);
/// the first matching entry wins.
struct SitePolicy {
  std::string site;
  bool has_retry = false;  ///< true when `retry` overrides the plan's
  RetrySpec retry;
  /// Cap on the total retry penalty (virtual seconds) one op may
  /// accumulate before it is declared persistent.  0 = no deadline.
  double deadline_seconds = 0.0;
  BreakerSpec breaker;
};

/// One graceful-degradation ladder.  Every `escalate_after` faults
/// reported for `domain` the level rises one rung, up to `max_level`.
/// Subsystems map levels to rungs themselves (e.g. the destriper maps
/// "solver_comm" levels onto overlap -> sync -> staged).
struct LadderSpec {
  std::string domain;
  int escalate_after = 1;
  int max_level = 1;
};

/// Elastic world-shrink behaviour for exhausted rank-failure budgets.
struct ElasticSpec {
  bool enabled = false;
  /// Never shrink the world below this many ranks.
  int min_ranks = 1;
  /// Virtual-clock cost of rebuilding the comm topology over the
  /// survivors (charged once per shrink).
  double rebuild_seconds = 1e-3;
  /// Perform a real async task requeue on rollback (cancel in-flight
  /// placements as a graph edit) instead of draining them.
  bool requeue = true;
};

struct Policy {
  std::vector<SitePolicy> sites;
  std::vector<LadderSpec> ladders;
  ElasticSpec elastic;

  /// True when no consult can ever change behaviour (the Manager stays
  /// disarmed and the run is bit-for-bit the policy-free timeline).
  bool empty() const {
    return sites.empty() && ladders.empty() && !elastic.enabled;
  }

  /// Parse a "toastcase-resilience-policy-v1" document; throws
  /// std::runtime_error on malformed input or unknown keys.
  static Policy parse(const std::string& text);
  static Policy load_file(const std::string& path);
  /// Parse an already-decoded JSON value (e.g. a policy nested inside a
  /// larger document); `where` prefixes every error message.
  static Policy from_value(const obs::json::Value& doc,
                           const std::string& where);
};

}  // namespace toast::resilience
