#pragma once

// resilience::Manager: the runtime behind a declarative Policy.
//
// One Manager lives in every ExecContext next to the FaultInjector; the
// injector consults it for per-site retry budgets, deadlines and circuit
// breakers, the pipeline/solver/mpisim layers consult its degradation
// ladders and elastic world-shrink switch.  Disarmed (empty policy),
// every consult returns the pass-through answer without touching the
// clock, the tracer or any counter — policy-free runs stay bit-for-bit
// identical to the seed behaviour.
//
// Determinism: breaker transitions are driven by the injected failure
// pattern (itself counter-based RNG) and the virtual clock; the optional
// open-window jitter draws from the same splitmix64 family keyed on
// (fault seed, site, trip count).  Nothing here reads wall time — the
// same seed run twice makes the same decisions, including shrinks.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "obs/trace.hpp"
#include "resilience/policy.hpp"

namespace toast::resilience {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

class Manager {
 public:
  /// Disarmed manager: every consult is a pass-through no-op.
  Manager() = default;
  /// `seed` keys the breaker jitter draws (pass the fault plan's seed so
  /// one number pins the whole chaos schedule).
  Manager(Policy policy, accel::VirtualClock* clock, obs::Tracer* tracer,
          std::uint64_t seed);

  bool armed() const { return armed_; }
  const Policy& policy() const { return policy_; }

  // --- per-site consults (fault injector) ---------------------------------

  /// First site policy matching `site` (substring, empty matches all),
  /// or nullptr.  Always nullptr when disarmed.
  const SitePolicy* site_for(const std::string& site) const;
  /// The effective retry policy for `site`: the site override when one
  /// is declared, `fallback` (the fault plan's global policy) otherwise.
  RetrySpec retry_for(const std::string& site,
                      const RetrySpec& fallback) const;
  /// Retry-penalty deadline for `site` (0 = none).
  double deadline_for(const std::string& site) const;

  /// Breaker gate before an attempt sequence.  False = the breaker is
  /// open: fail fast without attempting (counted as a fast fail).  An
  /// open breaker whose cool-down has elapsed transitions to half-open
  /// here and admits the probe.
  bool admit(const std::string& site);
  /// Record one failed attempt at `site` (may trip the breaker open).
  void on_failure(const std::string& site);
  /// Record a clean attempt at `site` (may close a half-open breaker).
  void on_success(const std::string& site);
  /// An op exceeded its deadline after accumulating `spent` seconds of
  /// retry penalty.
  void note_deadline_exceeded(const std::string& site, double spent);

  /// Breaker state for a concrete site (kClosed when no breaker is
  /// declared); exposed for tests and tooling.
  BreakerState breaker_state(const std::string& site) const;

  // --- degradation ladders -------------------------------------------------

  /// Current escalation level of `domain` (0 = no degradation, and
  /// always 0 for undeclared domains or a disarmed manager).
  int level(const std::string& domain) const;
  /// Report one fault against `domain`; every `escalate_after` reports
  /// raise the level one rung up to `max_level`.
  void report_fault(const std::string& domain, const std::string& why);

  // --- elastic world shrink ------------------------------------------------

  bool elastic_enabled() const { return armed_ && policy_.elastic.enabled; }
  int min_ranks() const { return policy_.elastic.min_ranks; }
  /// True when an exhausted replay budget may drop a rank from a world
  /// of `world` ranks (elastic enabled and above the floor).
  bool allow_shrink(int world) const {
    return elastic_enabled() && world > policy_.elastic.min_ranks;
  }
  bool requeue_enabled() const {
    return elastic_enabled() && policy_.elastic.requeue;
  }
  /// Record one world shrink (`from` -> `to` ranks) at `site`, charging
  /// the topology-rebuild cost to the virtual clock.
  void note_world_shrink(const std::string& site, int from, int to);
  /// Record the deterministic redistribution of a dead rank's work:
  /// `seconds` of extra observation work charged to this rank.
  void note_redistribute(const std::string& site, double seconds,
                         int observations);
  /// Record a real async task requeue of `count` in-flight tasks.
  void note_requeue(const std::string& site, int count);

  // --- counters ------------------------------------------------------------

  /// Flat counters ("resilience_breaker_opens", ...); empty when nothing
  /// fired.  Merged into JobResult::fault_counters next to the fault
  /// layer's own.
  const std::map<std::string, double>& counters() const { return counters_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    int half_open_successes = 0;
    double open_until = 0.0;
    int trips = 0;
  };

  /// Index of the first matching site policy, or -1.
  int site_index(const std::string& site) const;
  Breaker* breaker_for(const std::string& site, int* entry = nullptr);
  void open_breaker(Breaker& b, const std::string& site);
  void note(const std::string& name, const std::string& site,
            double seconds, const std::string& counter_key,
            double counter_value = 1.0);
  void add_count(const std::string& key, double v = 1.0) {
    counters_[key] += v;
  }

  Policy policy_;
  accel::VirtualClock* clock_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t seed_ = 0;
  bool armed_ = false;
  /// Per site-policy entry, per concrete site name.
  std::vector<std::map<std::string, Breaker>> breakers_;
  std::map<std::string, int> ladder_faults_;
  std::map<std::string, int> ladder_levels_;
  std::map<std::string, double> counters_;
};

}  // namespace toast::resilience
