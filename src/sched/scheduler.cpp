#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace toast::sched {

// --- batch scheduling ------------------------------------------------------

BatchPlacement schedule_batch(const std::vector<BatchOp>& ops, int n_streams,
                              double lead_in) {
  const int streams = std::max(1, n_streams);
  BatchPlacement out;
  out.start.resize(ops.size());
  out.end.resize(ops.size());
  out.stream.resize(ops.size());
  out.makespan = lead_in;

  std::vector<double> stream_ready(static_cast<std::size_t>(streams),
                                   lead_in);
  double compute_ready = 0.0;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& op = ops[i];
    double dep_ready = 0.0;
    for (const int d : op.deps) {
      if (d >= 0 && static_cast<std::size_t>(d) < i) {
        dep_ready = std::max(dep_ready, out.end[static_cast<std::size_t>(d)]);
      }
    }
    // Earliest-start stream assignment (ties -> lowest id).
    int best = 0;
    double best_issue = std::max(stream_ready[0], dep_ready);
    for (int s = 1; s < streams; ++s) {
      const double issue =
          std::max(stream_ready[static_cast<std::size_t>(s)], dep_ready);
      if (issue < best_issue) {
        best = s;
        best_issue = issue;
      }
    }
    // One compute engine: kernel bodies serialize, launch latency
    // pipelines into the previous kernel's tail.
    const double start =
        std::max(best_issue, compute_ready - op.launch_part);
    const double end = start + op.duration;
    stream_ready[static_cast<std::size_t>(best)] = end;
    compute_ready = end;
    out.start[i] = start;
    out.end[i] = end;
    out.stream[i] = best;
    out.makespan = std::max(out.makespan, end);
  }
  return out;
}

// --- multi-lane DAG scheduling ---------------------------------------------

int LaneSchedule::push(const LaneOp& op) {
  for (const int l : op.lanes) {
    if (l < 0) {
      throw std::invalid_argument("schedule_lanes: negative lane id");
    }
    if (static_cast<std::size_t>(l) >= lane_ready_.size()) {
      lane_ready_.resize(static_cast<std::size_t>(l) + 1, epoch_);
    }
  }
  double ready = epoch_;
  for (const int d : op.deps) {
    if (d < 0 || static_cast<std::size_t>(d) >= start_.size()) {
      throw std::invalid_argument(
          "schedule_lanes: deps must point at earlier ops");
    }
    ready = std::max(ready, end_[static_cast<std::size_t>(d)]);
  }
  for (const int l : op.lanes) {
    ready = std::max(ready, lane_ready_[static_cast<std::size_t>(l)]);
  }
  // The retry lead occupies the lanes too (a lost chunk is re-sent on
  // the same wire); with lead == 0 this adds exactly 0.0 and the chain
  // on a lane stays the plain left-associative sum.
  const double start = ready + op.lead;
  const double end = start + op.seconds;
  start_.push_back(start);
  end_.push_back(end);
  for (const int l : op.lanes) {
    lane_ready_[static_cast<std::size_t>(l)] = end;
  }
  makespan_ = std::max(makespan_, end);
  return static_cast<int>(start_.size()) - 1;
}

double LaneSchedule::lane_ready(int l) const {
  if (l < 0 || static_cast<std::size_t>(l) >= lane_ready_.size()) {
    return epoch_;
  }
  return lane_ready_[static_cast<std::size_t>(l)];
}

LanePlacement schedule_lanes(const std::vector<LaneOp>& ops, double epoch) {
  LaneSchedule sched(epoch);
  for (const LaneOp& op : ops) {
    sched.push(op);
  }
  LanePlacement out;
  out.start.resize(ops.size());
  out.end.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    out.start[i] = sched.start(static_cast<int>(i));
    out.end[i] = sched.end(static_cast<int>(i));
  }
  out.makespan = sched.makespan();
  return out;
}

// --- absolute-time engine --------------------------------------------------

Scheduler::Scheduler(accel::SimDevice& device, accel::VirtualClock& clock,
                     obs::Tracer* tracer, int n_streams, std::string backend)
    : device_(device),
      clock_(clock),
      tracer_(tracer),
      backend_(std::move(backend)),
      stream_ready_(static_cast<std::size_t>(std::max(1, n_streams)), 0.0) {}

void Scheduler::set_streams(int n) {
  stream_ready_.resize(static_cast<std::size_t>(std::max(1, n)), 0.0);
}

StreamId Scheduler::ensure_stream(StreamId s) {
  if (s < 0) {
    throw std::out_of_range("sched: negative stream id");
  }
  if (static_cast<std::size_t>(s) >= stream_ready_.size()) {
    stream_ready_.resize(static_cast<std::size_t>(s) + 1, 0.0);
  }
  return s;
}

double Scheduler::deps_ready(const std::vector<EventId>& depends) const {
  double t = 0.0;
  for (const EventId e : depends) {
    if (e >= 0 && static_cast<std::size_t>(e) < events_.size()) {
      t = std::max(t, events_[static_cast<std::size_t>(e)]);
    }
  }
  return t;
}

obs::SpanId Scheduler::emit(const std::string& name,
                            const std::string& category, double start,
                            double seconds, StreamId stream,
                            const accel::WorkEstimate* work) {
  if (tracer_ == nullptr) {
    return obs::kInvalidSpan;
  }
  const obs::SpanId id =
      tracer_->record_at(name, category, start, seconds, backend_, work);
  tracer_->set_stream(id, stream);
  return id;
}

void Scheduler::note_direction(obs::SpanId span, double bytes, double seconds,
                               bool to_device) {
  if (tracer_ == nullptr || span == obs::kInvalidSpan) {
    return;
  }
  tracer_->add_counter(span, to_device ? "bytes_h2d" : "bytes_d2h", bytes);
  tracer_->add_counter(span, to_device ? "seconds_h2d" : "seconds_d2h",
                       seconds);
}

void Scheduler::advance_sync(double start, double t) {
  const double now = clock_.now();
  if (start <= now) {
    // Engines drained: the seed's arithmetic, bit for bit.
    clock_.advance(t);
  } else {
    clock_.advance((start - now) + t);
  }
}

double Scheduler::launch_async(StreamId s, const std::string& name,
                               const accel::WorkEstimate& work,
                               const std::vector<EventId>& depends) {
  ensure_stream(s);
  const double t_base = device_.exec_time(work);
  double t = t_base;
  double penalty = 0.0;
  fault::ProbeResult pr;
  if (faults_ != nullptr && faults_->armed()) {
    t *= faults_->straggler_factor(name);
    pr = faults_->probe(fault::FaultKind::kLaunch, name, t);
    if (pr.persistent) {
      faults_->note_async_retries(fault::FaultKind::kLaunch, name,
                                  clock_.now(), pr);
      throw fault::PersistentFaultError(fault::FaultKind::kLaunch, name,
                                        pr.failures);
    }
    penalty = pr.penalty;
  }
  const double launch_part =
      std::min(t, work.launches * device_.spec().launch_latency);
  const double issue =
      std::max({clock_.now(), stream_ready_[static_cast<std::size_t>(s)],
                deps_ready(depends)});
  const double start = std::max(issue, compute_ready_ - launch_part) + penalty;
  if (pr.failures > 0 && faults_ != nullptr) {
    faults_->note_async_retries(fault::FaultKind::kLaunch, name,
                                start - penalty, pr);
  }
  const double end = start + t;
  stream_ready_[static_cast<std::size_t>(s)] = end;
  compute_ready_ = end;
  device_.count_execution(work, t);
  emit(name, "kernel", start, t, s, &work);
  if (t > t_base && faults_ != nullptr) {
    faults_->note_straggler(name, start + t_base, t - t_base);
  }
  ops_.push_back({OpKind::kKernel, name, s, start, end, 0.0});
  return end;
}

double Scheduler::transfer_async(StreamId s, const std::string& name,
                                 double bytes, bool to_device,
                                 const std::vector<EventId>& depends) {
  return transfer_async_timed(s, name, bytes, device_.transfer_time(bytes),
                              to_device, depends);
}

double Scheduler::transfer_async_timed(StreamId s, const std::string& name,
                                       double bytes, double seconds,
                                       bool to_device,
                                       const std::vector<EventId>& depends) {
  ensure_stream(s);
  const double t = seconds;
  double penalty = 0.0;
  fault::ProbeResult pr;
  if (faults_ != nullptr && faults_->armed()) {
    pr = faults_->probe(fault::FaultKind::kTransfer, name, t);
    if (pr.persistent) {
      faults_->note_async_retries(fault::FaultKind::kTransfer, name,
                                  clock_.now(), pr);
      throw fault::PersistentFaultError(fault::FaultKind::kTransfer, name,
                                        pr.failures);
    }
    penalty = pr.penalty;
  }
  const double issue =
      std::max({clock_.now(), stream_ready_[static_cast<std::size_t>(s)],
                deps_ready(depends)});
  // One copy engine: concurrent transfers serialize on the PCIe link.
  const double start = std::max(issue, link_ready_) + penalty;
  if (pr.failures > 0 && faults_ != nullptr) {
    faults_->note_async_retries(fault::FaultKind::kTransfer, name,
                                start - penalty, pr);
  }
  const double end = start + t;
  stream_ready_[static_cast<std::size_t>(s)] = end;
  link_ready_ = end;
  device_.count_transfer(bytes, t, to_device);
  const obs::SpanId span = emit(name, "transfer", start, t, s, nullptr);
  note_direction(span, bytes, t, to_device);
  ops_.push_back({to_device ? OpKind::kTransferH2D : OpKind::kTransferD2H,
                  name, s, start, end, bytes});
  return end;
}

double Scheduler::fill_async(StreamId s, const std::string& name,
                             double bytes,
                             const std::vector<EventId>& depends) {
  ensure_stream(s);
  const double t = device_.fill_time(bytes);
  const double launch_part = std::min(t, device_.spec().launch_latency);
  const double issue =
      std::max({clock_.now(), stream_ready_[static_cast<std::size_t>(s)],
                deps_ready(depends)});
  const double start = std::max(issue, compute_ready_ - launch_part);
  const double end = start + t;
  stream_ready_[static_cast<std::size_t>(s)] = end;
  compute_ready_ = end;
  emit(name, "transfer", start, t, s, nullptr);
  ops_.push_back({OpKind::kFill, name, s, start, end, bytes});
  return end;
}

EventId Scheduler::record_event(StreamId s) {
  ensure_stream(s);
  events_.push_back(stream_ready_[static_cast<std::size_t>(s)]);
  return static_cast<EventId>(events_.size()) - 1;
}

double Scheduler::event_time(EventId e) const {
  if (e < 0 || static_cast<std::size_t>(e) >= events_.size()) {
    return 0.0;
  }
  return events_[static_cast<std::size_t>(e)];
}

void Scheduler::stream_wait_event(StreamId s, EventId e) {
  ensure_stream(s);
  stream_ready_[static_cast<std::size_t>(s)] =
      std::max(stream_ready_[static_cast<std::size_t>(s)], event_time(e));
}

double Scheduler::transfer_sync(const std::string& name, double bytes,
                                bool to_device) {
  const double t = device_.transfer_time(bytes);
  if (faults_ != nullptr && faults_->armed()) {
    // Charges retry/backoff to the clock; throws on a persistent fault.
    faults_->attempt_sync(fault::FaultKind::kTransfer, name, t);
  }
  const double start = std::max(clock_.now(), link_ready_);
  advance_sync(start, t);
  const double end = clock_.now();
  link_ready_ = end;
  device_.note_transfer(bytes, t, to_device);
  if (tracer_ != nullptr) {
    const obs::SpanId span =
        tracer_->record(name, "transfer", t, backend_);
    note_direction(span, bytes, t, to_device);
  }
  ops_.push_back({to_device ? OpKind::kTransferH2D : OpKind::kTransferD2H,
                  name, -1, end - t, end, bytes});
  return end;
}

double Scheduler::kernel_sync(const std::string& name,
                              const accel::WorkEstimate& work,
                              double host_overhead) {
  double t = device_.exec_time(work) + host_overhead;
  if (faults_ != nullptr && faults_->armed()) {
    const double stretched = t * faults_->straggler_factor(name);
    if (stretched > t) {
      faults_->note_straggler(name, clock_.now(), stretched - t);
      t = stretched;
    }
    faults_->attempt_sync(fault::FaultKind::kLaunch, name, t);
  }
  const double start = std::max(clock_.now(), compute_ready_);
  advance_sync(start, t);
  const double end = clock_.now();
  compute_ready_ = end;
  device_.note_execution(work, t);
  if (tracer_ != nullptr) {
    tracer_->record(name, "kernel", t, backend_, &work);
  }
  ops_.push_back({OpKind::kKernel, name, -1, end - t, end, 0.0});
  return end;
}

double Scheduler::fill_sync(const std::string& name, double bytes) {
  const double t = device_.fill_time(bytes);
  const double start = std::max(clock_.now(), compute_ready_);
  advance_sync(start, t);
  const double end = clock_.now();
  compute_ready_ = end;
  if (tracer_ != nullptr) {
    tracer_->record(name, "transfer", t, backend_);
  }
  ops_.push_back({OpKind::kFill, name, -1, end - t, end, bytes});
  return end;
}

double Scheduler::sync_stream(StreamId s, const std::string& name) {
  ensure_stream(s);
  const double now = clock_.now();
  const double target = stream_ready_[static_cast<std::size_t>(s)];
  if (target > now) {
    const double wait = target - now;
    clock_.advance(wait);
    if (tracer_ != nullptr) {
      tracer_->record(name, "sync", wait, backend_);
    }
  }
  return clock_.now();
}

double Scheduler::sync_transfers(const std::string& name) {
  const double now = clock_.now();
  if (link_ready_ > now) {
    const double wait = link_ready_ - now;
    clock_.advance(wait);
    if (tracer_ != nullptr) {
      tracer_->record(name, "transfer", wait, backend_);
    }
  }
  return clock_.now();
}

double Scheduler::sync_all(const std::string& name) {
  const double now = clock_.now();
  double target = std::max(compute_ready_, link_ready_);
  for (const double r : stream_ready_) {
    target = std::max(target, r);
  }
  if (target > now) {
    const double wait = target - now;
    clock_.advance(wait);
    if (tracer_ != nullptr) {
      tracer_->record(name, "sync", wait, backend_);
    }
  }
  return clock_.now();
}

double Scheduler::stream_ready(StreamId s) const {
  if (s < 0 || static_cast<std::size_t>(s) >= stream_ready_.size()) {
    return 0.0;
  }
  return stream_ready_[static_cast<std::size_t>(s)];
}

double Scheduler::pending_transfer_completion() const {
  return link_ready_ > clock_.now() ? link_ready_ : 0.0;
}

bool Scheduler::idle() const {
  const double now = clock_.now();
  if (compute_ready_ > now || link_ready_ > now) {
    return false;
  }
  for (const double r : stream_ready_) {
    if (r > now) {
      return false;
    }
  }
  return true;
}

}  // namespace toast::sched
