#pragma once

// Virtual stream/event execution engine over accel::SimDevice and
// accel::VirtualClock (paper §4.1–§4.2: launch overhead, dispatch cost and
// data movement are what streams exist to hide).
//
// The model is CUDA-shaped:
//   - a *stream* is an independent virtual timeline with in-order
//     completion: each op starts no earlier than the previous op on the
//     same stream finished;
//   - an *event* snapshots a stream's completion front; other streams (or
//     individual ops, via `depends`) wait on it;
//   - the device has one copy engine and one compute engine.  Concurrent
//     transfers fully serialize on the PCIe link (one engine, one link);
//     kernel *bodies* serialize on the compute engine, but the launch
//     latency of a kernel overlaps the tail of the previous kernel when
//     they come from different submission points (launch pipelining).
//     Transfers and compute overlap freely — that is the whole point.
//
// Synchronous ops use the same placement rules but advance the clock with
// the seed's exact arithmetic (`clock.advance(t)` when the engines are
// drained), so a program that never goes async reproduces the old
// single-timeline numbers bit for bit.  `schedule_batch()` is the
// relative-time variant used by the XLA executor: it places a DAG of
// kernels onto N streams starting from a common epoch and reports the
// makespan; with one stream it degenerates to the seed's left-associative
// serial sum, again bit for bit.
//
// Every async op is also reported to obs::Tracer with its stream id, so
// Chrome traces render one overlap lane per stream.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/sim_device.hpp"
#include "accel/work.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace toast::sched {

using StreamId = int;
using EventId = std::int64_t;
inline constexpr EventId kNoEvent = -1;

enum class OpKind { kKernel, kTransferH2D, kTransferD2H, kFill };

/// One placed op (async or sync), for inspection and occupancy reports.
struct OpRecord {
  OpKind kind = OpKind::kKernel;
  std::string name;
  StreamId stream = -1;  // -1: host-synchronous op, no stream
  double start = 0.0;    // virtual seconds
  double end = 0.0;
  double bytes = 0.0;  // transfers/fills only
};

// --- relative-time batch scheduling (the XLA path) -------------------------

/// One kernel in a dependency DAG to be placed onto streams.
struct BatchOp {
  std::string name;
  double duration = 0.0;     // device execution time of the kernel body
  double launch_part = 0.0;  // leading slice that pipelines across streams
  std::vector<int> deps;     // indices of earlier BatchOps
};

struct BatchPlacement {
  std::vector<double> start;  // relative to the batch epoch
  std::vector<double> end;
  std::vector<StreamId> stream;
  /// Completion of the last op (>= lead_in even for an empty batch).
  double makespan = 0.0;
};

/// Place `ops` (in submission order; deps must point backwards) onto
/// `n_streams` streams that all become available at `lead_in` (the host
/// dispatch overhead).  Each op goes to the stream where it can start
/// earliest; one compute engine serializes kernel bodies across streams
/// while launch latency pipelines.  With n_streams == 1 the result is the
/// seed's serial sum: start_i = lead_in + t_1 + ... + t_{i-1}, exactly.
BatchPlacement schedule_batch(const std::vector<BatchOp>& ops, int n_streams,
                              double lead_in);

// --- generic multi-lane DAG scheduling (the comm path) ---------------------

/// One op occupying a *set* of engine lanes for its whole duration — e.g.
/// a point-to-point chunk transfer holding the sender's TX and the
/// receiver's RX NIC engine — with DAG dependencies on earlier ops.
struct LaneOp {
  double seconds = 0.0;
  /// Extra delay charged on the op's lanes ahead of it (fault-retry
  /// penalty placed by the caller).
  double lead = 0.0;
  std::vector<int> lanes;
  std::vector<int> deps;  // indices of earlier LaneOps
};

struct LanePlacement {
  std::vector<double> start;  // absolute (>= epoch)
  std::vector<double> end;
  double makespan = 0.0;  // max end, or epoch for an empty op list
};

/// Place `ops` (submission order; deps must point backwards) onto their
/// lanes, all idle at `epoch`: an op starts once its dependencies are done
/// and every lane it occupies is free, then holds those lanes until it
/// ends.  A chain of ops on one lane degenerates to the left-associative
/// serial sum `epoch + t_0 + t_1 + ...`, exactly — the equivalence the
/// comm engine's uniform-topology guarantee rests on (docs/MODEL.md §9).
/// Throws std::invalid_argument on negative lane ids or out-of-order deps.
LanePlacement schedule_lanes(const std::vector<LaneOp>& ops,
                             double epoch = 0.0);

/// Incremental form of schedule_lanes: ops are pushed one at a time and
/// placed immediately.  schedule_lanes is a batch push loop over this
/// class, so feeding the same op sequence step-at-a-time (the async task
/// runtime's mode of operation) is bit-for-bit the one-shot placement.
/// Lanes grow on demand and start idle at the epoch.
class LaneSchedule {
 public:
  explicit LaneSchedule(double epoch = 0.0)
      : epoch_(epoch), makespan_(epoch) {}

  /// Place one op (deps index earlier pushes); returns its index.
  int push(const LaneOp& op);

  double start(int i) const { return start_[static_cast<std::size_t>(i)]; }
  double end(int i) const { return end_[static_cast<std::size_t>(i)]; }
  /// When lane `l` frees up; epoch for lanes no op has touched yet.
  double lane_ready(int l) const;
  double epoch() const { return epoch_; }
  double makespan() const { return makespan_; }
  std::size_t size() const { return start_.size(); }

 private:
  double epoch_;
  double makespan_;
  std::vector<double> start_;
  std::vector<double> end_;
  std::vector<double> lane_ready_;
};

// --- absolute-time engine (the omptarget path) -----------------------------

class Scheduler {
 public:
  /// `tracer` may be null (no spans emitted).  `backend` labels the spans.
  Scheduler(accel::SimDevice& device, accel::VirtualClock& clock,
            obs::Tracer* tracer = nullptr, int n_streams = 1,
            std::string backend = {});

  int n_streams() const { return static_cast<int>(stream_ready_.size()); }
  /// Streams also grow on demand when an op names a new stream id.
  void set_streams(int n);

  /// Attach a fault injector (nullptr detaches).  Not owned.  Kernel and
  /// transfer ops then probe for injected failures: sync ops charge
  /// retry/backoff to the clock before placement; async ops are delayed
  /// by the retry penalty on their stream; stragglers stretch the op.  A
  /// disarmed injector leaves every placement bit-for-bit unchanged.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  // --- async submission (returns the op's completion time) ---------------

  /// Enqueue a kernel: waits for the stream front, any `depends` events,
  /// and the compute engine (minus the launch-pipelining overlap).
  double launch_async(StreamId s, const std::string& name,
                      const accel::WorkEstimate& work,
                      const std::vector<EventId>& depends = {});
  /// Enqueue an H2D/D2H transfer; concurrent transfers serialize on the
  /// PCIe link but overlap with compute.
  double transfer_async(StreamId s, const std::string& name, double bytes,
                        bool to_device,
                        const std::vector<EventId>& depends = {});
  /// Like transfer_async, but with the duration supplied by the caller —
  /// for backend-scaled transfer costs (the AccelStore jax factors) that
  /// the device's raw transfer_time does not know about.
  double transfer_async_timed(StreamId s, const std::string& name,
                              double bytes, double seconds, bool to_device,
                              const std::vector<EventId>& depends = {});
  /// Enqueue a device-side fill (compute engine, like a memset kernel).
  double fill_async(StreamId s, const std::string& name, double bytes,
                    const std::vector<EventId>& depends = {});

  // --- events -------------------------------------------------------------

  /// Snapshot stream `s`'s completion front.
  EventId record_event(StreamId s);
  double event_time(EventId e) const;
  /// Make stream `s` wait for `e` (cudaStreamWaitEvent).
  void stream_wait_event(StreamId s, EventId e);

  // --- synchronous ops (seed-exact clock arithmetic) ----------------------

  /// Blocking transfer: places on the link, advances the clock to
  /// completion, updates device counters and logs `name`.  When the link
  /// is drained this is exactly the seed's `advance(transfer_time(b))`.
  double transfer_sync(const std::string& name, double bytes,
                       bool to_device);
  /// Blocking kernel: `host_overhead` (dispatch) is charged inside the
  /// logged duration, exactly like the seed's charge() path.
  double kernel_sync(const std::string& name, const accel::WorkEstimate& work,
                     double host_overhead = 0.0);
  /// Blocking fill (the data_reset path).
  double fill_sync(const std::string& name, double bytes);

  // --- host-side waits ----------------------------------------------------

  /// Block until stream `s` drains; logs `name` for the waited time only.
  double sync_stream(StreamId s, const std::string& name = "stream_wait");
  /// Block until the PCIe link drains (the wait_transfers path).
  double sync_transfers(const std::string& name = "transfer_wait");
  /// Block until every engine and stream drains.
  double sync_all(const std::string& name = "device_wait");

  // --- inspection ---------------------------------------------------------

  double stream_ready(StreamId s) const;
  double link_ready() const { return link_ready_; }
  double compute_ready() const { return compute_ready_; }
  /// Completion time of in-flight transfers, 0.0 when the link is drained.
  double pending_transfer_completion() const;
  /// True when nothing is in flight beyond the current clock time.
  bool idle() const;
  const std::vector<OpRecord>& ops() const { return ops_; }

 private:
  StreamId ensure_stream(StreamId s);
  double deps_ready(const std::vector<EventId>& depends) const;
  obs::SpanId emit(const std::string& name, const std::string& category,
                   double start, double seconds, StreamId stream,
                   const accel::WorkEstimate* work);
  void note_direction(obs::SpanId span, double bytes, double seconds,
                      bool to_device);
  /// Advance the clock to `target` using the seed's arithmetic: when the
  /// op starts "now" (all engines drained) the advance is exactly `t`.
  void advance_sync(double start, double t);

  accel::SimDevice& device_;
  accel::VirtualClock& clock_;
  obs::Tracer* tracer_;
  fault::FaultInjector* faults_ = nullptr;
  std::string backend_;
  std::vector<double> stream_ready_;
  double link_ready_ = 0.0;
  double compute_ready_ = 0.0;
  std::vector<double> events_;
  std::vector<OpRecord> ops_;
};

}  // namespace toast::sched
