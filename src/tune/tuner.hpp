#pragma once

// Deterministic cost-model autotuner over the schedule space
// (docs/MODEL.md §12).
//
// The tuner searches config::ScheduleConfig candidates for one
// (workload, topology) pair — a mpisim::JobConfig whose non-schedule
// fields (problem, device spec, network, fault plan) stay fixed — and
// picks the candidate with the smallest modelled job runtime.  Every
// evaluation is one run_benchmark_job() on the virtual clock, so the
// search is exactly reproducible: same base job + same search space =
// same winner, bit for bit.  Winners serialize as reusable
// "toastcase-schedule-v1" artifacts (ScheduleConfig::save_file) that
// `--schedule <file>` feeds back into any bench.
//
// Search strategy (TuneOptions::exhaustive = false, the default):
// greedy coordinate descent in a fixed, documented axis order —
//
//   staging.mode -> staging.prefetch -> staging.evict -> streams ->
//   comm.mode -> comm.algorithm -> comm.chunk_bytes ->
//   solver.async_comm -> shape.nodes -> shape.procs_per_node ->
//   device.mps -> device.jax_preallocate -> backend
//
// — iterated to a fixpoint.  A candidate is adopted only on *strict*
// runtime improvement (ties keep the incumbent, so the earliest value in
// the axis list wins and the result never depends on map ordering or
// float tie-breaking).  Evaluations are memoized by config hash; OOM
// configurations are infeasible (infinite runtime), never winners.
//
// Exhaustive mode enumerates the full Cartesian product in nested-loop
// order (last axis fastest) under the same strict-improvement rule —
// the oracle the greedy search is benchmarked against.

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "comm/engine.hpp"
#include "config/schedule.hpp"
#include "mpisim/job.hpp"

namespace toast::tune {

/// Candidate values per schedule axis.  An empty axis is not searched:
/// the base job's value is kept.  Axis value order is significant — on
/// runtime ties the earliest listed value wins.
struct SearchSpace {
  std::vector<std::string> backends;
  std::vector<config::Staging> staging_modes;
  std::vector<bool> prefetch;
  std::vector<bool> evict;
  std::vector<int> streams;
  std::vector<config::CommMode> comm_modes;
  std::vector<config::CommAlgorithm> comm_algorithms;
  std::vector<double> chunk_bytes;
  std::vector<config::SolverComm> solver_comms;
  std::vector<int> nodes;
  std::vector<int> procs_per_node;
  std::vector<bool> mps;
  std::vector<bool> jax_preallocate;

  /// The default schedule search: staging axes, stream counts, the comm
  /// axes (engine algorithms + chunk bounds) and the solver modes.
  /// Backend and shape are left pinned to the base job — the benches
  /// tune per (backend, shape) row.
  static SearchSpace full();
};

struct TuneOptions {
  /// Enumerate the full Cartesian product instead of coordinate descent.
  bool exhaustive = false;
  /// Cap on cost-model evaluations (cache hits don't count); 0 = none.
  int max_evaluations = 0;
};

/// One evaluated candidate, in evaluation order.
struct Evaluation {
  config::ScheduleConfig config;
  double runtime = std::numeric_limits<double>::infinity();
  bool feasible = false;  ///< false = the footprint model said OOM
};

struct TuneReport {
  config::ScheduleConfig best;
  double best_runtime = std::numeric_limits<double>::infinity();
  int evaluations = 0;  ///< cost-model runs (cache misses)
  int cache_hits = 0;   ///< memoized re-visits during the descent
  int sweeps = 0;       ///< coordinate-descent passes until fixpoint
  std::vector<Evaluation> trials;
};

/// Tune the schedule of `base` over `space`.  base.schedule is the
/// starting point of the descent (and the incumbent every candidate must
/// strictly beat).
TuneReport tune_job(const mpisim::JobConfig& base, const SearchSpace& space,
                    const TuneOptions& opt = {});

/// The comm micro-tuner: argmin over the engine's allreduce algorithms
/// for one message size on one topology.  Strict `<` keeps the earliest
/// algorithm in enum order (ring, recursive, tree) on ties.
struct AllreduceChoice {
  comm::Algorithm algorithm = comm::Algorithm::kRing;
  double seconds = std::numeric_limits<double>::infinity();
  /// Modelled seconds per algorithm, keyed by to_string(algorithm).
  std::map<std::string, double> per_algorithm;
};

AllreduceChoice best_allreduce_algorithm(const comm::Engine& engine,
                                         double bytes,
                                         const comm::RunOptions& opt = {});

}  // namespace toast::tune
