#include "tune/library.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace toast::tune {

namespace {

using obs::json::Value;

void reject_unknown_keys(const Value& v, const std::string& where,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, _] : v.object) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(where + ": unknown key '" + key + "'");
    }
  }
}

std::string string_at(const Value& v, const std::string& key,
                      const std::string& where) {
  const Value* m = v.find(key);
  if (m == nullptr || !m->is_string()) {
    throw std::runtime_error(where + ": '" + key + "' must be a string");
  }
  return m->string;
}

int int_or(const Value& v, const std::string& key, int fallback,
           const std::string& where) {
  const Value* m = v.find(key);
  if (m == nullptr) {
    return fallback;
  }
  if (!m->is_number()) {
    throw std::runtime_error(where + ": '" + key + "' must be a number");
  }
  return static_cast<int>(m->number);
}

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string join(const std::string& dir, const std::string& rel) {
  if (!rel.empty() && rel.front() == '/') {
    return rel;  // absolute artifact path: use as-is
  }
  return dir.empty() ? rel : dir + "/" + rel;
}

}  // namespace

ScheduleLibrary ScheduleLibrary::parse(const std::string& text,
                                       const std::string& base_dir) {
  const Value doc = Value::parse(text);
  const std::string where = "schedule library";
  if (!doc.is_object()) {
    throw std::runtime_error(where + ": index must be an object");
  }
  const Value* schema = doc.find("schema");
  if (schema == nullptr ||
      schema->string != "toastcase-schedule-library-v1") {
    throw std::runtime_error(
        where + ": expected schema toastcase-schedule-library-v1");
  }
  reject_unknown_keys(doc, where, {"schema", "entries"});

  ScheduleLibrary lib;
  const Value* entries = doc.find("entries");
  if (entries == nullptr) {
    return lib;
  }
  if (!entries->is_array()) {
    throw std::runtime_error(where + ": 'entries' must be an array");
  }
  int i = 0;
  for (const Value& e : entries->array) {
    const std::string ew = where + ".entries[" + std::to_string(i++) + "]";
    if (!e.is_object()) {
      throw std::runtime_error(ew + ": entry must be an object");
    }
    reject_unknown_keys(
        e, ew, {"workload", "backend", "nodes", "procs_per_node", "path"});
    LibraryEntry entry;
    entry.workload = string_at(e, "workload", ew);
    if (entry.workload.empty()) {
      throw std::runtime_error(ew + ": 'workload' must not be empty");
    }
    if (e.find("backend") != nullptr) {
      entry.backend = string_at(e, "backend", ew);
    }
    entry.nodes = int_or(e, "nodes", 0, ew);
    entry.procs_per_node = int_or(e, "procs_per_node", 0, ew);
    if (entry.nodes < 0 || entry.procs_per_node < 0) {
      throw std::runtime_error(ew + ": topology fields must be >= 0");
    }
    entry.path = string_at(e, "path", ew);
    entry.schedule =
        config::ScheduleConfig::load_file(join(base_dir, entry.path));
    lib.entries_.push_back(std::move(entry));
  }
  return lib;
}

ScheduleLibrary ScheduleLibrary::load_file(const std::string& index_path) {
  std::ifstream in(index_path);
  if (!in) {
    throw std::runtime_error("schedule library: cannot open " + index_path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), dir_of(index_path));
}

const LibraryEntry* ScheduleLibrary::lookup(const LibraryQuery& q) const {
  const LibraryEntry* best = nullptr;
  int best_score = -1;
  for (const LibraryEntry& e : entries_) {
    if (e.workload != q.workload) {
      continue;
    }
    int score = 0;
    if (!e.backend.empty()) {
      if (e.backend != q.backend) {
        continue;
      }
      ++score;
    }
    if (e.nodes != 0) {
      if (e.nodes != q.nodes) {
        continue;
      }
      ++score;
    }
    if (e.procs_per_node != 0) {
      if (e.procs_per_node != q.procs_per_node) {
        continue;
      }
      ++score;
    }
    // Strict >: ties keep the earliest entry (declaration order).
    if (score > best_score) {
      best = &e;
      best_score = score;
    }
  }
  return best;
}

const config::ScheduleConfig* library_lookup(const ScheduleLibrary& lib,
                                             const LibraryQuery& q) {
  const LibraryEntry* e = lib.lookup(q);
  return e == nullptr ? nullptr : &e->schedule;
}

}  // namespace toast::tune
