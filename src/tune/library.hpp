#pragma once

// Persisted schedule library (PR 9 follow-on; docs/MODEL.md §12-13).
//
// The autotuner emits winners as "toastcase-schedule-v1" artifacts; the
// library is the per-(workload, topology) index over those artifacts
// that lets a *service* pick a tuned schedule for a job it has never
// seen tuned itself.  The index file ("toastcase-schedule-library-v1",
// strict parsing like every toastcase schema — unknown keys reject at
// every nesting level) lives beside the artifacts it references:
//
// {
//   "schema": "toastcase-schedule-library-v1",
//   "entries": [
//     {"workload": "large", "backend": "omp-target",
//      "nodes": 8, "procs_per_node": 16, "path": "tuned_large_omp.json"}
//   ]
// }
//
// `path` is resolved relative to the index file's directory and each
// referenced schedule is loaded (strictly) at index-load time, so a
// library that loads is a library whose every entry is usable.
//
// Lookup is by (workload, nodes, procs_per_node, backend).  `workload`
// must match exactly; `backend` empty and `nodes`/`procs_per_node` zero
// are wildcards on the *entry* side.  The most specific match (most
// non-wildcard fields) wins; ties keep the earliest entry — the same
// determinism rule the tuner itself uses.

#include <string>
#include <vector>

#include "config/schedule.hpp"

namespace toast::tune {

struct LibraryEntry {
  std::string workload;        ///< "tiny" / "medium" / "large" / ...
  std::string backend;         ///< schedule backend slot; "" = any
  int nodes = 0;               ///< 0 = any
  int procs_per_node = 0;      ///< 0 = any
  std::string path;            ///< artifact path, relative to the index
  config::ScheduleConfig schedule;  ///< the loaded artifact
};

/// Lookup key: the job's workload name and resolved topology/backend.
struct LibraryQuery {
  std::string workload;
  int nodes = 0;
  int procs_per_node = 0;
  std::string backend;
};

class ScheduleLibrary {
 public:
  ScheduleLibrary() = default;

  /// Load a "toastcase-schedule-library-v1" index and every schedule it
  /// references; throws std::runtime_error on malformed input, unknown
  /// keys at any nesting level, or an unloadable artifact.
  static ScheduleLibrary load_file(const std::string& index_path);
  /// Parse from text; `base_dir` resolves relative artifact paths.
  static ScheduleLibrary parse(const std::string& text,
                               const std::string& base_dir);

  bool empty() const { return entries_.empty(); }
  const std::vector<LibraryEntry>& entries() const { return entries_; }

  /// Most specific entry matching the query, or nullptr on miss (the
  /// caller falls back to the default schedule and counts the miss).
  const LibraryEntry* lookup(const LibraryQuery& q) const;

 private:
  std::vector<LibraryEntry> entries_;
};

/// Convenience used by the job service: the matched schedule for
/// (workload, topology, backend), or nullptr.
const config::ScheduleConfig* library_lookup(const ScheduleLibrary& lib,
                                             const LibraryQuery& q);

}  // namespace toast::tune
