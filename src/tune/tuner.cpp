#include "tune/tuner.hpp"

#include <cstddef>
#include <functional>
#include <unordered_map>

namespace toast::tune {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

/// One searchable coordinate: a value count plus a setter that writes
/// the i-th candidate value into a config.
struct Axis {
  const char* name;
  std::size_t count;
  std::function<void(config::ScheduleConfig&, std::size_t)> set;
};

/// The fixed axis order of the descent (see the header comment).  Empty
/// axes are dropped, which pins them to the base schedule's value.
std::vector<Axis> make_axes(const SearchSpace& sp) {
  std::vector<Axis> axes;
  auto add = [&axes](const char* name, std::size_t n, auto set) {
    if (n > 0) {
      axes.push_back(Axis{name, n, set});
    }
  };
  add("staging.mode", sp.staging_modes.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.staging.mode = sp.staging_modes[i];
      });
  add("staging.prefetch", sp.prefetch.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.staging.prefetch = sp.prefetch[i];
      });
  add("staging.evict", sp.evict.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.staging.evict = sp.evict[i];
      });
  add("streams", sp.streams.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.streams = sp.streams[i];
      });
  add("comm.mode", sp.comm_modes.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.comm.mode = sp.comm_modes[i];
      });
  add("comm.algorithm", sp.comm_algorithms.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.comm.algorithm = sp.comm_algorithms[i];
      });
  add("comm.chunk_bytes", sp.chunk_bytes.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.comm.chunk_bytes = sp.chunk_bytes[i];
      });
  add("solver.async_comm", sp.solver_comms.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.solver.async_comm = sp.solver_comms[i];
      });
  add("shape.nodes", sp.nodes.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.shape.nodes = sp.nodes[i];
      });
  add("shape.procs_per_node", sp.procs_per_node.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.shape.procs_per_node = sp.procs_per_node[i];
      });
  add("device.mps", sp.mps.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.device.mps = sp.mps[i];
      });
  add("device.jax_preallocate", sp.jax_preallocate.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.device.jax_preallocate = sp.jax_preallocate[i];
      });
  add("backend", sp.backends.size(),
      [&sp](config::ScheduleConfig& c, std::size_t i) {
        c.backend = sp.backends[i];
      });
  return axes;
}

/// Memoized cost-model evaluation: one run_benchmark_job per distinct
/// config hash, OOM mapped to an infinite (infeasible) runtime.
class Evaluator {
 public:
  Evaluator(const mpisim::JobConfig& base, const TuneOptions& opt,
            TuneReport& report)
      : base_(base), opt_(opt), report_(report) {}

  double evaluate(const config::ScheduleConfig& c) {
    const std::uint64_t h = c.hash();
    const auto it = cache_.find(h);
    if (it != cache_.end()) {
      ++report_.cache_hits;
      return it->second;
    }
    if (opt_.max_evaluations > 0 &&
        report_.evaluations >= opt_.max_evaluations) {
      // Budget exhausted: unevaluated candidates can never win.  Not
      // cached, so the budget itself stays the only cutoff.
      return kInfeasible;
    }
    mpisim::JobConfig job = base_;
    job.schedule = c;
    const mpisim::JobResult r = mpisim::run_benchmark_job(job);
    const double t = r.oom ? kInfeasible : r.runtime;
    ++report_.evaluations;
    report_.trials.push_back(Evaluation{c, t, !r.oom});
    cache_.emplace(h, t);
    return t;
  }

 private:
  const mpisim::JobConfig& base_;
  const TuneOptions& opt_;
  TuneReport& report_;
  std::unordered_map<std::uint64_t, double> cache_;
};

}  // namespace

SearchSpace SearchSpace::full() {
  SearchSpace s;
  s.staging_modes = {config::Staging::kPipelined, config::Staging::kNaive};
  s.prefetch = {false, true};
  s.evict = {false, true};
  s.streams = {1, 2, 4};
  s.comm_modes = {config::CommMode::kModel, config::CommMode::kEngine};
  s.comm_algorithms = {config::CommAlgorithm::kRing,
                       config::CommAlgorithm::kRecursive,
                       config::CommAlgorithm::kTree};
  s.chunk_bytes = {0.0, 1048576.0, 8388608.0};
  s.solver_comms = {config::SolverComm::kStaged, config::SolverComm::kSync,
                    config::SolverComm::kOverlap};
  return s;
}

TuneReport tune_job(const mpisim::JobConfig& base, const SearchSpace& space,
                    const TuneOptions& opt) {
  TuneReport report;
  Evaluator ev(base, opt, report);
  const std::vector<Axis> axes = make_axes(space);

  // The base schedule is the incumbent; every candidate must strictly
  // beat the best seen so far (ties keep the earlier config — the
  // search result never depends on tie-breaking).
  config::ScheduleConfig best = base.schedule;
  double best_runtime = ev.evaluate(best);

  if (opt.exhaustive) {
    // Full Cartesian product in nested-loop order, last axis fastest.
    config::ScheduleConfig cur = base.schedule;
    std::function<void(std::size_t)> enumerate = [&](std::size_t k) {
      if (k == axes.size()) {
        const double t = ev.evaluate(cur);
        if (t < best_runtime) {
          best_runtime = t;
          best = cur;
        }
        return;
      }
      for (std::size_t i = 0; i < axes[k].count; ++i) {
        axes[k].set(cur, i);
        enumerate(k + 1);
      }
    };
    enumerate(0);
    report.sweeps = 1;
  } else {
    // Greedy coordinate descent to a fixpoint.  Terminates: each
    // changed sweep strictly lowers a runtime drawn from a finite set
    // (the sweep cap is pure insurance, never the exit in practice).
    bool changed = true;
    while (changed && report.sweeps < 64) {
      changed = false;
      ++report.sweeps;
      for (const auto& axis : axes) {
        for (std::size_t i = 0; i < axis.count; ++i) {
          config::ScheduleConfig cand = best;
          axis.set(cand, i);
          if (cand == best) {
            continue;  // the incumbent value of this axis
          }
          const double t = ev.evaluate(cand);
          if (t < best_runtime) {
            best_runtime = t;
            best = cand;
            changed = true;
          }
        }
      }
    }
  }

  report.best = best;
  report.best_runtime = best_runtime;
  return report;
}

AllreduceChoice best_allreduce_algorithm(const comm::Engine& engine,
                                         double bytes,
                                         const comm::RunOptions& opt) {
  AllreduceChoice choice;
  constexpr comm::Algorithm kAlgorithms[] = {comm::Algorithm::kRing,
                                             comm::Algorithm::kRecursive,
                                             comm::Algorithm::kTree};
  for (const comm::Algorithm a : kAlgorithms) {
    const double s = engine.allreduce_seconds(bytes, a, opt);
    choice.per_algorithm[config::to_string(a)] = s;
    if (s < choice.seconds) {
      choice.seconds = s;
      choice.algorithm = a;
    }
  }
  return choice;
}

}  // namespace toast::tune
