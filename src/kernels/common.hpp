#pragma once

// Shared helpers for the kernel implementations.

#include <cmath>
#include <cstdint>
#include <span>

#include "core/types.hpp"

namespace toast::kernels {

/// Fraction of scatter updates that collide with another update to the
/// same address within a `window`-sized batch (a warp/CTA worth of
/// concurrent atomics).  Drives the atomic-contention model; measured from
/// the actual index stream.
double estimate_conflict_rate(std::span<const std::int64_t> indices,
                              std::int64_t window = 32);

/// Total samples covered by a set of intervals.
std::int64_t total_interval_samples(std::span<const core::Interval> ivals);

/// Padding waste of the static-shape strategy: (n_intervals * max_len) /
/// total_samples.  The JAX port executes this multiple of the useful work.
double padding_ratio(std::span<const core::Interval> ivals);

/// Default shared-flag mask used by the operators.
inline constexpr std::uint8_t kDefaultFlagMask = 0x01;

/// Quaternion product helper used identically by the CPU and OpenMP
/// kernel bodies (scalar-last convention, matching qarray).
inline void quat_mult(const double* p, const double* q, double* out) {
  out[0] = p[3] * q[0] + p[0] * q[3] + p[1] * q[2] - p[2] * q[1];
  out[1] = p[3] * q[1] - p[0] * q[2] + p[1] * q[3] + p[2] * q[0];
  out[2] = p[3] * q[2] + p[0] * q[1] - p[1] * q[0] + p[2] * q[3];
  out[3] = p[3] * q[3] - p[0] * q[0] - p[1] * q[1] - p[2] * q[2];
}

/// Rotate vector v by unit quaternion q (same expansion as qarray).
inline void quat_rotate(const double* q, const double* v, double* out) {
  const double tx = 2.0 * (q[1] * v[2] - q[2] * v[1]);
  const double ty = 2.0 * (q[2] * v[0] - q[0] * v[2]);
  const double tz = 2.0 * (q[0] * v[1] - q[1] * v[0]);
  out[0] = v[0] + q[3] * tx + (q[1] * tz - q[2] * ty);
  out[1] = v[1] + q[3] * ty + (q[2] * tx - q[0] * tz);
  out[2] = v[2] + q[3] * tz + (q[0] * ty - q[1] * tx);
}

/// Detector polarization response angle on the sky, from the detector
/// quaternion (TOAST's stokes_weights math): the angle between the local
/// meridian and the detector orientation axis.
inline double detector_angle(const double* q) {
  double dir[3];
  double orient[3];
  const double zaxis[3] = {0.0, 0.0, 1.0};
  const double xaxis[3] = {1.0, 0.0, 0.0};
  quat_rotate(q, zaxis, dir);
  quat_rotate(q, xaxis, orient);
  const double by = orient[0] * dir[1] - orient[1] * dir[0];
  const double bx = orient[0] * (-dir[2] * dir[0]) +
                    orient[1] * (-dir[2] * dir[1]) +
                    orient[2] * (dir[0] * dir[0] + dir[1] * dir[1]);
  return std::atan2(by, bx);
}

}  // namespace toast::kernels
