// OpenMP Target Offload ports of stokes_weights_IQU and stokes_weights_I.
// The IQU kernel is compute-dense and maps almost perfectly onto the GPU:
// it is the paper's best case at 61x over the CPU baseline.

#include <algorithm>
#include <cmath>

#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

namespace {

inline void stokes_iqu_inner(const double* quats, const double* hwp_angle,
                             double eta, std::int64_t n_samp,
                             std::int64_t det, std::int64_t s,
                             double* weights) {
  const std::int64_t off = det * n_samp + s;
  double ang = detector_angle(&quats[4 * off]);
  if (hwp_angle != nullptr) {
    ang += 2.0 * hwp_angle[s];
  }
  double* w = &weights[3 * off];
  w[0] = 1.0;
  w[1] = eta * std::cos(2.0 * ang);
  w[2] = eta * std::sin(2.0 * ang);
}

}  // namespace

void stokes_weights_iqu(const double* quats, const double* hwp_angle,
                        const double* pol_eff,
                        std::span<const core::Interval> intervals,
                        std::int64_t n_det, std::int64_t n_samp,
                        double* weights, core::ExecContext& ctx,
                        bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 112.0;
    cost.bytes_read = 40.0;
    cost.bytes_written = 24.0;
    ctx.omp().target_for_collapse3(
        "stokes_weights_IQU", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          stokes_iqu_inner(quats, hwp_angle, pol_eff[det], n_samp, det, s,
                           weights);
          return true;
        });
    return;
  }

  // Host path.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        stokes_iqu_inner(quats, hwp_angle, pol_eff[det], n_samp, det, s,
                         weights);
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 112.0 * iters;
  w.bytes_read = 40.0 * iters;
  w.bytes_written = 24.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.15;
  ctx.charge_host_kernel("stokes_weights_IQU", w);
}

void stokes_weights_i(std::span<const core::Interval> intervals,
                      std::int64_t n_det, std::int64_t n_samp,
                      double* weights, core::ExecContext& ctx,
                      bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 1.0;
    cost.bytes_written = 8.0;
    ctx.omp().target_for_collapse3(
        "stokes_weights_I", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          weights[det * n_samp + s] = 1.0;
          return true;
        });
    return;
  }

  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        weights[det * n_samp + s] = 1.0;
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 1.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  ctx.charge_host_kernel("stokes_weights_I", w);
}

}  // namespace toast::kernels::omp
