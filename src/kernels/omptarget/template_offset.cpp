// OpenMP Target Offload ports of the offset-template kernels.
//
// template_offset_project_signal is the interesting one: a straight
// parallel loop over samples where `step_length` consecutive samples all
// update the *same* amplitude - massive atomic contention on the device.
// This is the structural reason the paper's OpenMP version (19x) loses to
// the XLA lowering (45x), which recognizes the segment reduction.

#include <algorithm>

#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

void template_offset_add_to_signal(std::int64_t step_length,
                                   const double* amplitudes,
                                   std::int64_t n_amp_det,
                                   std::span<const core::Interval> intervals,
                                   std::int64_t n_det, std::int64_t n_samp,
                                   double* signal, core::ExecContext& ctx,
                                   bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 2.0;
    cost.bytes_read = 16.0;
    cost.bytes_written = 8.0;
    ctx.omp().target_for_collapse3(
        "template_offset_add_to_signal", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          signal[det * n_samp + s] +=
              amplitudes[det * n_amp_det + s / step_length];
          return true;
        });
    return;
  }

  // Host path.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        signal[det * n_samp + s] +=
            amplitudes[det * n_amp_det + s / step_length];
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 2.0 * iters;
  w.bytes_read = 8.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.90;
  ctx.charge_host_kernel("template_offset_add_to_signal", w);
}

void template_offset_project_signal(
    std::int64_t step_length, const double* signal,
    std::span<const core::Interval> intervals, std::int64_t n_det,
    std::int64_t n_samp, double* amplitudes, std::int64_t n_amp_det,
    core::ExecContext& ctx, bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    // Straight sample-parallel loop with an atomic per sample; every
    // step_length consecutive threads collide on one amplitude.
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 2.0;
    cost.bytes_read = 8.0;
    cost.bytes_written = 8.0 / static_cast<double>(step_length);
    cost.atomic_ops = 1.0;
    // Within a 32-thread warp, all but ceil(32/step) updates conflict.
    const double warp = 32.0;
    const double distinct =
        std::max(1.0, warp / static_cast<double>(step_length));
    cost.atomic_conflict_rate = (warp - distinct) / warp;
    ctx.omp().target_for_collapse3(
        "template_offset_project_signal", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          // #pragma omp atomic update
          amplitudes[det * n_amp_det + s / step_length] +=
              signal[det * n_samp + s];
          return true;
        });
    return;
  }

  // Host path: sequential within each detector, no atomics needed.
  // #pragma omp parallel for
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        amplitudes[det * n_amp_det + s / step_length] +=
            signal[det * n_samp + s];
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 2.0 * iters;
  w.bytes_read = 8.0 * iters;
  w.bytes_written = 8.0 * iters / static_cast<double>(step_length);
  w.launches = 1.0;
  w.parallel_items = static_cast<double>(n_det * intervals.size());
  w.cpu_vector_eff = 0.80;
  ctx.charge_host_kernel("template_offset_project_signal", w);
}

void template_offset_apply_diag_precond(const double* offset_var,
                                        const double* amp_in,
                                        std::int64_t n_amp, double* amp_out,
                                        core::ExecContext& ctx,
                                        bool use_accel) {
  if (use_accel) {
    // #pragma omp target teams distribute parallel for
    ::toast::omptarget::IterCost cost;
    cost.flops = 1.0;
    cost.bytes_read = 16.0;
    cost.bytes_written = 8.0;
    ctx.omp().target_for("template_offset_apply_diag_precond", n_amp, cost,
                         [&](std::int64_t i) {
                           amp_out[i] = amp_in[i] * offset_var[i];
                           return true;
                         });
    return;
  }

  // Host path.
  // #pragma omp parallel for simd
  for (std::int64_t i = 0; i < n_amp; ++i) {
    amp_out[i] = amp_in[i] * offset_var[i];
  }
  accel::WorkEstimate w;
  w.flops = static_cast<double>(n_amp);
  w.bytes_read = 16.0 * static_cast<double>(n_amp);
  w.bytes_written = 8.0 * static_cast<double>(n_amp);
  w.launches = 1.0;
  w.parallel_items = static_cast<double>(n_amp);
  ctx.charge_host_kernel("template_offset_apply_diag_precond", w);
}

}  // namespace toast::kernels::omp
