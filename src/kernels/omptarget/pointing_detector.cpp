// OpenMP Target Offload port of pointing_detector.

#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

namespace {

// Inner function shared by the host and target paths, as in the real
// port: only the loop structure and pragmas differ.
inline void pointing_detector_inner(const double* fp_quats,
                                    const double* boresight,
                                    const std::uint8_t* shared_flags,
                                    std::uint8_t flag_mask,
                                    std::int64_t n_samp, std::int64_t det,
                                    std::int64_t s, double* quats) {
  const double* fp = &fp_quats[4 * det];
  const double* bore = &boresight[4 * s];
  double* out = &quats[4 * (det * n_samp + s)];
  const bool flagged =
      shared_flags != nullptr && (shared_flags[s] & flag_mask) != 0;
  if (flagged) {
    out[0] = fp[0];
    out[1] = fp[1];
    out[2] = fp[2];
    out[3] = fp[3];
  } else {
    quat_mult(bore, fp, out);
  }
}

}  // namespace

void pointing_detector(const double* fp_quats, const double* boresight,
                       const std::uint8_t* shared_flags,
                       std::uint8_t flag_mask,
                       std::span<const core::Interval> intervals,
                       std::int64_t n_det, std::int64_t n_samp, double* quats,
                       core::ExecContext& ctx, bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    // Precompute the maximum interval length and guard-cut the overhang.
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 28.0;
    cost.bytes_read = 33.0;
    cost.bytes_written = 32.0;
    ctx.omp().target_for_collapse3(
        "pointing_detector", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;  // guard: past the true interval end
          }
          pointing_detector_inner(fp_quats, boresight, shared_flags,
                                  flag_mask, n_samp, det, s, quats);
          return true;
        });
    return;
  }

  // Host path: the pre-existing OpenMP CPU loop.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        pointing_detector_inner(fp_quats, boresight, shared_flags, flag_mask,
                                n_samp, det, s, quats);
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 28.0 * iters;
  w.bytes_read = 33.0 * iters;
  w.bytes_written = 32.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.70;
  ctx.charge_host_kernel("pointing_detector", w);
}

}  // namespace toast::kernels::omp
