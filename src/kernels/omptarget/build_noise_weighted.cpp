// OpenMP Target Offload port of build_noise_weighted.  The accumulation
// into the map domain uses device atomics; the conflict rate is measured
// from the actual pixel stream (dense scanning patterns revisit pixels).

#include <algorithm>

#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

namespace {

inline void build_noise_weighted_inner(
    const std::int64_t* pixels, const double* weights, std::int64_t nnz,
    const double* signal, double scale, const std::uint8_t* shared_flags,
    std::uint8_t flag_mask, std::int64_t n_samp, std::int64_t det,
    std::int64_t s, double* zmap) {
  const std::int64_t off = det * n_samp + s;
  const bool flagged =
      shared_flags != nullptr && (shared_flags[s] & flag_mask) != 0;
  const std::int64_t pix = pixels[off];
  if (flagged || pix < 0) {
    return;
  }
  const double z = scale * signal[off];
  const double* w = &weights[nnz * off];
  double* target = &zmap[nnz * pix];
  for (std::int64_t k = 0; k < nnz; ++k) {
    // #pragma omp atomic update
    target[k] += z * w[k];
  }
}

}  // namespace

void build_noise_weighted(const std::int64_t* pixels, const double* weights,
                          std::int64_t nnz, const double* signal,
                          const double* det_scale,
                          const std::uint8_t* shared_flags,
                          std::uint8_t flag_mask,
                          std::span<const core::Interval> intervals,
                          std::int64_t n_det, std::int64_t n_samp,
                          double* zmap, core::ExecContext& ctx,
                          bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());
  const double dnnz = static_cast<double>(nnz);

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 2.0 * dnnz + 1.0;
    cost.bytes_read = 17.0 + 8.0 * dnnz;
    cost.bytes_written = 8.0 * dnnz;
    cost.atomic_ops = dnnz;
    cost.atomic_conflict_rate = estimate_conflict_rate(
        std::span<const std::int64_t>(pixels,
                                      static_cast<std::size_t>(n_det * n_samp)));
    ctx.omp().target_for_collapse3(
        "build_noise_weighted", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          build_noise_weighted_inner(pixels, weights, nnz, signal,
                                     det_scale[det], shared_flags, flag_mask,
                                     n_samp, det, s, zmap);
          return true;
        });
    return;
  }

  // Host path.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        build_noise_weighted_inner(pixels, weights, nnz, signal,
                                   det_scale[det], shared_flags, flag_mask,
                                   n_samp, det, s, zmap);
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = (2.0 * dnnz + 1.0) * iters;
  w.bytes_read = (17.0 + 8.0 * dnnz) * iters;
  w.bytes_written = 8.0 * dnnz * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.atomic_ops = dnnz * iters;
  w.atomic_conflict_rate = estimate_conflict_rate(
      std::span<const std::int64_t>(pixels,
                                    static_cast<std::size_t>(n_det * n_samp)));
  w.cpu_vector_eff = 0.30;
  ctx.charge_host_kernel("build_noise_weighted", w);
}

}  // namespace toast::kernels::omp
