// OpenMP Target Offload port of noise_weight: a streaming scale, fully
// memory-bound on any architecture.

#include <algorithm>

#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

void noise_weight(const double* det_weights,
                  std::span<const core::Interval> intervals,
                  std::int64_t n_det, std::int64_t n_samp, double* signal,
                  core::ExecContext& ctx, bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 1.0;
    cost.bytes_read = 8.0;
    cost.bytes_written = 8.0;
    ctx.omp().target_for_collapse3(
        "noise_weight", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          signal[det * n_samp + s] *= det_weights[det];
          return true;
        });
    return;
  }

  // Host path.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        signal[det * n_samp + s] *= det_weights[det];
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 1.0 * iters;
  w.bytes_read = 8.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  ctx.charge_host_kernel("noise_weight", w);
}

}  // namespace toast::kernels::omp
