// OpenMP Target Offload port of scan_map.  The gather from the sky map is
// uncoalesced but read-only; no atomics are needed.

#include <algorithm>

#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

namespace {

inline void scan_map_inner(const double* sky_map, std::int64_t nnz,
                           const std::int64_t* pixels, const double* weights,
                           double data_scale, std::int64_t n_samp,
                           std::int64_t det, std::int64_t s, double* signal) {
  const std::int64_t off = det * n_samp + s;
  const std::int64_t pix = pixels[off];
  if (pix < 0) {
    return;
  }
  const double* w = &weights[nnz * off];
  const double* m = &sky_map[nnz * pix];
  double value = 0.0;
  for (std::int64_t k = 0; k < nnz; ++k) {
    value += m[k] * w[k];
  }
  signal[off] += data_scale * value;
}

}  // namespace

void scan_map(const double* sky_map, std::int64_t nnz,
              const std::int64_t* pixels, const double* weights,
              double data_scale, std::span<const core::Interval> intervals,
              std::int64_t n_det, std::int64_t n_samp, double* signal,
              core::ExecContext& ctx, bool use_accel) {
  const auto n_view = static_cast<std::int64_t>(intervals.size());
  const double dnnz = static_cast<double>(nnz);

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 2.0 * dnnz + 2.0;
    cost.bytes_read = 16.0 + 16.0 * dnnz;  // pixel + signal + weights + map
    cost.bytes_written = 8.0;
    ctx.omp().target_for_collapse3(
        "scan_map", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          scan_map_inner(sky_map, nnz, pixels, weights, data_scale, n_samp,
                         det, s, signal);
          return true;
        });
    return;
  }

  // Host path.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        scan_map_inner(sky_map, nnz, pixels, weights, data_scale, n_samp,
                       det, s, signal);
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = (2.0 * dnnz + 2.0) * iters;
  w.bytes_read = (16.0 + 16.0 * dnnz) * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.40;
  ctx.charge_host_kernel("scan_map", w);
}

}  // namespace toast::kernels::omp
