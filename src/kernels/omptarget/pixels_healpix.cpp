// OpenMP Target Offload port of pixels_healpix.  The HEALPix projection
// runs as-is inside the target region; its branches cost SIMT divergence
// (longest-path), which the launch declares.

#include <algorithm>

#include "healpix/healpix.hpp"
#include "kernels/common.hpp"
#include "kernels/omptarget.hpp"

namespace toast::kernels::omp {

namespace {

inline void pixels_healpix_inner(const healpix::Healpix& hp, bool nest,
                                 const double* quats,
                                 const std::uint8_t* shared_flags,
                                 std::uint8_t flag_mask, std::int64_t n_samp,
                                 std::int64_t det, std::int64_t s,
                                 std::int64_t* pixels) {
  const std::int64_t off = det * n_samp + s;
  const bool flagged =
      shared_flags != nullptr && (shared_flags[s] & flag_mask) != 0;
  if (flagged) {
    pixels[off] = -1;
    return;
  }
  const double* q = &quats[4 * off];
  double dir[3];
  const double zaxis[3] = {0.0, 0.0, 1.0};
  quat_rotate(q, zaxis, dir);
  pixels[off] = nest ? hp.vec2pix_nest(dir[0], dir[1], dir[2])
                     : hp.vec2pix_ring(dir[0], dir[1], dir[2]);
}

}  // namespace

void pixels_healpix(const double* quats, const std::uint8_t* shared_flags,
                    std::uint8_t flag_mask, std::int64_t nside, bool nest,
                    std::span<const core::Interval> intervals,
                    std::int64_t n_det, std::int64_t n_samp,
                    std::int64_t* pixels, core::ExecContext& ctx,
                    bool use_accel) {
  const healpix::Healpix hp(nside);
  const auto n_view = static_cast<std::int64_t>(intervals.size());

  if (use_accel) {
    // #pragma omp target teams distribute parallel for collapse(3)
    std::int64_t max_len = 0;
    for (const auto& ival : intervals) {
      max_len = std::max(max_len, ival.length());
    }
    ::toast::omptarget::IterCost cost;
    cost.flops = 85.0;
    cost.bytes_read = 33.0;
    cost.bytes_written = 8.0;
    // Equatorial/polar split and per-branch index juggling: warps pay the
    // longest taken path.
    cost.divergence = 2.2;
    ctx.omp().target_for_collapse3(
        "pixels_healpix", n_det, n_view, max_len, cost,
        [&](std::int64_t det, std::int64_t view, std::int64_t i) {
          const auto& ival = intervals[static_cast<std::size_t>(view)];
          const std::int64_t s = ival.start + i;
          if (s >= ival.stop) {
            return false;
          }
          pixels_healpix_inner(hp, nest, quats, shared_flags, flag_mask,
                               n_samp, det, s, pixels);
          return true;
        });
    return;
  }

  // Host path.
  // #pragma omp parallel for collapse(2)
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (std::int64_t view = 0; view < n_view; ++view) {
      const auto& ival = intervals[static_cast<std::size_t>(view)];
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        pixels_healpix_inner(hp, nest, quats, shared_flags, flag_mask,
                             n_samp, det, s, pixels);
      }
    }
  }
  accel::WorkEstimate w;
  const double iters =
      static_cast<double>(n_det * total_interval_samples(intervals));
  w.flops = 85.0 * iters;
  w.bytes_read = 33.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.divergence = 2.2;
  w.cpu_vector_eff = 0.55;
  ctx.charge_host_kernel("pixels_healpix", w);
}

}  // namespace toast::kernels::omp
