// Operator wrappers for the map-domain kernels: scan_map, noise_weight,
// build_noise_weighted, plus the UnportedHostOp stand-in.  Backend
// selection goes through the tag-dispatch registry (backend/registry.hpp).

#include "backend/registry.hpp"
#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "kernels/operators.hpp"
#include "kernels/ops_common.hpp"

namespace toast::kernels {

using core::Backend;
using core::FieldType;
using core::fields::kPixels;
using core::fields::kSharedFlags;
using core::fields::kSignal;
using core::fields::kSkyMap;
using core::fields::kWeights;
using core::fields::kZmap;
using detail::buf;
using detail::buf_opt;

// --- ScanMapOp --------------------------------------------------------------

std::vector<std::string> ScanMapOp::requires_fields() const {
  return {kSkyMap, kPixels, kWeights, kSignal};
}

std::vector<std::string> ScanMapOp::provides_fields() const {
  return {kSignal};
}

void ScanMapOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(kSignal)) {
    ob.create_detdata(kSignal, FieldType::kF64, 1);
  }
}

namespace {

struct ScanMapArgs {
  const double* sky_map;
  std::int64_t n_pix;
  std::int64_t nnz;
  const std::int64_t* pixels;
  const double* weights;
  double data_scale;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* signal;
  bool on_device;
};

const backend::OpRegistry<ScanMapArgs>& scan_map_registry() {
  static const auto reg = [] {
    backend::OpRegistry<ScanMapArgs> r("scan_map");
    r.add<backend::cpu_tag>([](const ScanMapArgs& a, core::ExecContext& ctx) {
      cpu::scan_map(
          {a.sky_map, static_cast<std::size_t>(a.n_pix * a.nnz)}, a.nnz,
          {a.pixels, static_cast<std::size_t>(a.n_det * a.n_samp)},
          {a.weights, static_cast<std::size_t>(a.nnz * a.n_det * a.n_samp)},
          a.data_scale, a.ivals, a.n_det, a.n_samp,
          {a.signal, static_cast<std::size_t>(a.n_det * a.n_samp)}, ctx);
    });
    r.add<backend::omptarget_tag>(
        [](const ScanMapArgs& a, core::ExecContext& ctx) {
          omp::scan_map(a.sky_map, a.nnz, a.pixels, a.weights, a.data_scale,
                        a.ivals, a.n_det, a.n_samp, a.signal, ctx,
                        a.on_device);
        });
    r.add<backend::jax_tag>([](const ScanMapArgs& a, core::ExecContext& ctx) {
      jax::scan_map(a.sky_map, a.n_pix, a.nnz, a.pixels, a.weights,
                    a.data_scale, a.ivals, a.n_det, a.n_samp, a.signal, ctx);
    });
    return r;
  }();
  return reg;
}

}  // namespace

void ScanMapOp::exec(core::Observation& ob, core::ExecContext& ctx,
                     core::AccelStore* accel, Backend backend) {
  ScanMapArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  const core::Field& map_field = ob.field(kSkyMap);
  a.n_pix = map_field.count() / nnz_;
  a.nnz = nnz_;
  a.data_scale = data_scale_;
  a.sky_map = buf<double>(ob, kSkyMap, accel);
  a.pixels = buf<std::int64_t>(ob, kPixels, accel);
  a.weights = buf<double>(ob, kWeights, accel);
  a.signal = buf<double>(ob, kSignal, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  scan_map_registry().invoke(backend, a, ctx);
}

// --- NoiseWeightOp ----------------------------------------------------------

std::vector<std::string> NoiseWeightOp::requires_fields() const {
  return {kSignal, aux_fields::kDetWeights};
}

std::vector<std::string> NoiseWeightOp::provides_fields() const {
  return {kSignal};
}

void NoiseWeightOp::ensure_fields(core::Observation& ob) {
  detail::ensure_det_weights(ob);
  if (!ob.has_field(kSignal)) {
    ob.create_detdata(kSignal, FieldType::kF64, 1);
  }
}

namespace {

struct NoiseWeightArgs {
  const double* det_weights;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* signal;
  bool on_device;
};

const backend::OpRegistry<NoiseWeightArgs>& noise_weight_registry() {
  static const auto reg = [] {
    backend::OpRegistry<NoiseWeightArgs> r("noise_weight");
    r.add<backend::cpu_tag>(
        [](const NoiseWeightArgs& a, core::ExecContext& ctx) {
          cpu::noise_weight(
              {a.det_weights, static_cast<std::size_t>(a.n_det)}, a.ivals,
              a.n_det, a.n_samp,
              {a.signal, static_cast<std::size_t>(a.n_det * a.n_samp)},
              ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const NoiseWeightArgs& a, core::ExecContext& ctx) {
          omp::noise_weight(a.det_weights, a.ivals, a.n_det, a.n_samp,
                            a.signal, ctx, a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const NoiseWeightArgs& a, core::ExecContext& ctx) {
          jax::noise_weight(a.det_weights, a.ivals, a.n_det, a.n_samp,
                            a.signal, ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void NoiseWeightOp::exec(core::Observation& ob, core::ExecContext& ctx,
                         core::AccelStore* accel, Backend backend) {
  NoiseWeightArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.det_weights = buf<double>(ob, aux_fields::kDetWeights, accel);
  a.signal = buf<double>(ob, kSignal, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  noise_weight_registry().invoke(backend, a, ctx);
}

// --- BuildNoiseWeightedOp ---------------------------------------------------

std::vector<std::string> BuildNoiseWeightedOp::requires_fields() const {
  return {kPixels, kWeights, kSignal, kSharedFlags, aux_fields::kDetScale,
          kZmap};
}

std::vector<std::string> BuildNoiseWeightedOp::provides_fields() const {
  return {kZmap};
}

void BuildNoiseWeightedOp::ensure_fields(core::Observation& ob) {
  detail::ensure_det_scale(ob);
  if (!ob.has_field(kZmap)) {
    ob.create_buffer(kZmap, FieldType::kF64, 12 * nside_ * nside_ * nnz_);
  }
}

namespace {

struct BuildNoiseWeightedArgs {
  const std::int64_t* pixels;
  const double* weights;
  std::int64_t n_pix;
  std::int64_t nnz;
  const double* signal;
  const double* det_scale;
  const std::uint8_t* flags;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* zmap;
  bool on_device;
};

const backend::OpRegistry<BuildNoiseWeightedArgs>&
build_noise_weighted_registry() {
  static const auto reg = [] {
    backend::OpRegistry<BuildNoiseWeightedArgs> r("build_noise_weighted");
    r.add<backend::cpu_tag>(
        [](const BuildNoiseWeightedArgs& a, core::ExecContext& ctx) {
          cpu::build_noise_weighted(
              {a.pixels, static_cast<std::size_t>(a.n_det * a.n_samp)},
              {a.weights,
               static_cast<std::size_t>(a.nnz * a.n_det * a.n_samp)},
              a.nnz, {a.signal, static_cast<std::size_t>(a.n_det * a.n_samp)},
              {a.det_scale, static_cast<std::size_t>(a.n_det)},
              a.flags == nullptr
                  ? std::span<const std::uint8_t>()
                  : std::span<const std::uint8_t>(
                        a.flags, static_cast<std::size_t>(a.n_samp)),
              kDefaultFlagMask, a.ivals, a.n_det, a.n_samp,
              {a.zmap, static_cast<std::size_t>(a.n_pix * a.nnz)}, ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const BuildNoiseWeightedArgs& a, core::ExecContext& ctx) {
          omp::build_noise_weighted(a.pixels, a.weights, a.nnz, a.signal,
                                    a.det_scale, a.flags, kDefaultFlagMask,
                                    a.ivals, a.n_det, a.n_samp, a.zmap, ctx,
                                    a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const BuildNoiseWeightedArgs& a, core::ExecContext& ctx) {
          jax::build_noise_weighted(a.pixels, a.weights, a.n_pix, a.nnz,
                                    a.signal, a.det_scale, a.flags,
                                    kDefaultFlagMask, a.ivals, a.n_det,
                                    a.n_samp, a.zmap, ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void BuildNoiseWeightedOp::exec(core::Observation& ob,
                                core::ExecContext& ctx,
                                core::AccelStore* accel, Backend backend) {
  BuildNoiseWeightedArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.n_pix = 12 * nside_ * nside_;
  a.nnz = nnz_;
  a.pixels = buf<std::int64_t>(ob, kPixels, accel);
  a.weights = buf<double>(ob, kWeights, accel);
  a.signal = buf<double>(ob, kSignal, accel);
  a.det_scale = buf<double>(ob, aux_fields::kDetScale, accel);
  a.flags = buf_opt<std::uint8_t>(ob, kSharedFlags, accel);
  a.zmap = buf<double>(ob, kZmap, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  build_noise_weighted_registry().invoke(backend, a, ctx);
}

// --- UnportedHostOp ---------------------------------------------------------

std::vector<std::string> UnportedHostOp::requires_fields() const {
  return {kSignal};
}

std::vector<std::string> UnportedHostOp::provides_fields() const {
  return {kSignal};
}

void UnportedHostOp::exec(core::Observation& ob, core::ExecContext& ctx,
                          core::AccelStore* accel, Backend backend) {
  (void)accel;
  (void)backend;
  // Touch the signal (a cheap in-place transform keeps the data flow
  // real) and charge the declared CPU work.
  if (ob.has_field(kSignal)) {
    for (auto& v : ob.field(kSignal).f64()) {
      v = v * (1.0 + 1e-16);
    }
  }
  const double samples =
      static_cast<double>(ob.n_detectors() * ob.n_samples());
  accel::WorkEstimate w;
  w.flops = flops_per_sample_ * samples;
  w.bytes_read = bytes_per_sample_ * samples;
  w.bytes_written = bytes_per_sample_ * samples;
  w.launches = 1.0;
  w.parallel_items = samples;
  w.cpu_vector_eff = 0.60;
  ctx.charge_host_kernel(name_, w);
}

}  // namespace toast::kernels
