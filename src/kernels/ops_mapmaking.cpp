// Operator wrappers for the map-domain kernels: scan_map, noise_weight,
// build_noise_weighted, plus the UnportedHostOp stand-in.

#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "kernels/operators.hpp"
#include "kernels/ops_common.hpp"

namespace toast::kernels {

using core::Backend;
using core::FieldType;
using core::fields::kPixels;
using core::fields::kSharedFlags;
using core::fields::kSignal;
using core::fields::kSkyMap;
using core::fields::kWeights;
using core::fields::kZmap;
using detail::buf;
using detail::buf_opt;

// --- ScanMapOp --------------------------------------------------------------

std::vector<std::string> ScanMapOp::requires_fields() const {
  return {kSkyMap, kPixels, kWeights, kSignal};
}

std::vector<std::string> ScanMapOp::provides_fields() const {
  return {kSignal};
}

void ScanMapOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(kSignal)) {
    ob.create_detdata(kSignal, FieldType::kF64, 1);
  }
}

void ScanMapOp::exec(core::Observation& ob, core::ExecContext& ctx,
                     core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const core::Field& map_field = ob.field(kSkyMap);
  const std::int64_t n_pix = map_field.count() / nnz_;
  const double* sky_map = buf<double>(ob, kSkyMap, accel);
  const std::int64_t* pixels = buf<std::int64_t>(ob, kPixels, accel);
  const double* weights = buf<double>(ob, kWeights, accel);
  double* signal = buf<double>(ob, kSignal, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::scan_map({sky_map, static_cast<std::size_t>(n_pix * nnz_)}, nnz_,
                    {pixels, static_cast<std::size_t>(n_det * n_samp)},
                    {weights, static_cast<std::size_t>(nnz_ * n_det * n_samp)},
                    data_scale_, ivals, n_det, n_samp,
                    {signal, static_cast<std::size_t>(n_det * n_samp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::scan_map(sky_map, nnz_, pixels, weights, data_scale_, ivals,
                    n_det, n_samp, signal, ctx, accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::scan_map(sky_map, n_pix, nnz_, pixels, weights, data_scale_,
                    ivals, n_det, n_samp, signal, ctx);
      break;
  }
}

// --- NoiseWeightOp ----------------------------------------------------------

std::vector<std::string> NoiseWeightOp::requires_fields() const {
  return {kSignal, aux_fields::kDetWeights};
}

std::vector<std::string> NoiseWeightOp::provides_fields() const {
  return {kSignal};
}

void NoiseWeightOp::ensure_fields(core::Observation& ob) {
  detail::ensure_det_weights(ob);
  if (!ob.has_field(kSignal)) {
    ob.create_detdata(kSignal, FieldType::kF64, 1);
  }
}

void NoiseWeightOp::exec(core::Observation& ob, core::ExecContext& ctx,
                         core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const double* det_weights = buf<double>(ob, aux_fields::kDetWeights, accel);
  double* signal = buf<double>(ob, kSignal, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::noise_weight({det_weights, static_cast<std::size_t>(n_det)},
                        ivals, n_det, n_samp,
                        {signal, static_cast<std::size_t>(n_det * n_samp)},
                        ctx);
      break;
    case Backend::kOmpTarget:
      omp::noise_weight(det_weights, ivals, n_det, n_samp, signal, ctx,
                        accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::noise_weight(det_weights, ivals, n_det, n_samp, signal, ctx);
      break;
  }
}

// --- BuildNoiseWeightedOp ---------------------------------------------------

std::vector<std::string> BuildNoiseWeightedOp::requires_fields() const {
  return {kPixels, kWeights, kSignal, kSharedFlags, aux_fields::kDetScale,
          kZmap};
}

std::vector<std::string> BuildNoiseWeightedOp::provides_fields() const {
  return {kZmap};
}

void BuildNoiseWeightedOp::ensure_fields(core::Observation& ob) {
  detail::ensure_det_scale(ob);
  if (!ob.has_field(kZmap)) {
    ob.create_buffer(kZmap, FieldType::kF64, 12 * nside_ * nside_ * nnz_);
  }
}

void BuildNoiseWeightedOp::exec(core::Observation& ob,
                                core::ExecContext& ctx,
                                core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const std::int64_t n_pix = 12 * nside_ * nside_;
  const std::int64_t* pixels = buf<std::int64_t>(ob, kPixels, accel);
  const double* weights = buf<double>(ob, kWeights, accel);
  const double* signal = buf<double>(ob, kSignal, accel);
  const double* det_scale = buf<double>(ob, aux_fields::kDetScale, accel);
  const std::uint8_t* flags = buf_opt<std::uint8_t>(ob, kSharedFlags, accel);
  double* zmap = buf<double>(ob, kZmap, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::build_noise_weighted(
          {pixels, static_cast<std::size_t>(n_det * n_samp)},
          {weights, static_cast<std::size_t>(nnz_ * n_det * n_samp)}, nnz_,
          {signal, static_cast<std::size_t>(n_det * n_samp)},
          {det_scale, static_cast<std::size_t>(n_det)},
          flags == nullptr ? std::span<const std::uint8_t>()
                           : std::span<const std::uint8_t>(
                                 flags, static_cast<std::size_t>(n_samp)),
          kDefaultFlagMask, ivals, n_det, n_samp,
          {zmap, static_cast<std::size_t>(n_pix * nnz_)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::build_noise_weighted(pixels, weights, nnz_, signal, det_scale,
                                flags, kDefaultFlagMask, ivals, n_det,
                                n_samp, zmap, ctx, accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::build_noise_weighted(pixels, weights, n_pix, nnz_, signal,
                                det_scale, flags, kDefaultFlagMask, ivals,
                                n_det, n_samp, zmap, ctx);
      break;
  }
}

// --- UnportedHostOp ---------------------------------------------------------

std::vector<std::string> UnportedHostOp::requires_fields() const {
  return {kSignal};
}

std::vector<std::string> UnportedHostOp::provides_fields() const {
  return {kSignal};
}

void UnportedHostOp::exec(core::Observation& ob, core::ExecContext& ctx,
                          core::AccelStore* accel, Backend backend) {
  (void)accel;
  (void)backend;
  // Touch the signal (a cheap in-place transform keeps the data flow
  // real) and charge the declared CPU work.
  if (ob.has_field(kSignal)) {
    for (auto& v : ob.field(kSignal).f64()) {
      v = v * (1.0 + 1e-16);
    }
  }
  const double samples =
      static_cast<double>(ob.n_detectors() * ob.n_samples());
  accel::WorkEstimate w;
  w.flops = flops_per_sample_ * samples;
  w.bytes_read = bytes_per_sample_ * samples;
  w.bytes_written = bytes_per_sample_ * samples;
  w.launches = 1.0;
  w.parallel_items = samples;
  w.cpu_vector_eff = 0.60;
  ctx.charge_host_kernel(name_, w);
}

}  // namespace toast::kernels
