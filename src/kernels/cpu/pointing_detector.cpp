// CPU baseline: expand boresight pointing into detector pointing.
// Threaded over detectors and intervals; the quaternion product
// vectorizes moderately well.

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void pointing_detector(std::span<const double> fp_quats,
                       std::span<const double> boresight,
                       std::span<const std::uint8_t> shared_flags,
                       std::uint8_t flag_mask,
                       std::span<const core::Interval> intervals,
                       std::int64_t n_det, std::int64_t n_samp,
                       std::span<double> quats, core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    const double* fp = &fp_quats[static_cast<std::size_t>(4 * det)];
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const double* bore = &boresight[static_cast<std::size_t>(4 * s)];
        double* out =
            &quats[static_cast<std::size_t>(4 * (det * n_samp + s))];
        const bool flagged =
            !shared_flags.empty() &&
            (shared_flags[static_cast<std::size_t>(s)] & flag_mask) != 0;
        if (flagged) {
          // Flagged samples fall back to the detector offset alone.
          out[0] = fp[0];
          out[1] = fp[1];
          out[2] = fp[2];
          out[3] = fp[3];
        } else {
          quat_mult(bore, fp, out);
        }
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 28.0 * iters;          // 16 mul + 12 add per quaternion product
  w.bytes_read = 33.0 * iters;     // boresight quat + flag byte
  w.bytes_written = 32.0 * iters;  // output quat
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.70;
  ctx.charge_host_kernel("pointing_detector", w);
}

}  // namespace toast::kernels::cpu
