// CPU baseline: the offset-template kernels of the map-making solver.
// add_to_signal scans step-wise amplitudes onto timestreams;
// project_signal is the transpose (per-step dot products);
// apply_diag_precond is an elementwise product in amplitude space.

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void template_offset_add_to_signal(std::int64_t step_length,
                                   std::span<const double> amplitudes,
                                   std::int64_t n_amp_det,
                                   std::span<const core::Interval> intervals,
                                   std::int64_t n_det, std::int64_t n_samp,
                                   std::span<double> signal,
                                   core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    const std::size_t amp_base = static_cast<std::size_t>(det * n_amp_det);
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const std::size_t amp = amp_base +
                                static_cast<std::size_t>(s / step_length);
        signal[static_cast<std::size_t>(det * n_samp + s)] +=
            amplitudes[amp];
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 2.0 * iters;
  w.bytes_read = 8.0 * iters;  // amplitude reads mostly cached
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.90;
  ctx.charge_host_kernel("template_offset_add_to_signal", w);
}

void template_offset_project_signal(
    std::int64_t step_length, std::span<const double> signal,
    std::span<const core::Interval> intervals, std::int64_t n_det,
    std::int64_t n_samp, std::span<double> amplitudes,
    std::int64_t n_amp_det, core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    const std::size_t amp_base = static_cast<std::size_t>(det * n_amp_det);
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const std::size_t amp = amp_base +
                                static_cast<std::size_t>(s / step_length);
        amplitudes[amp] += signal[static_cast<std::size_t>(det * n_samp + s)];
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 2.0 * iters;
  w.bytes_read = 8.0 * iters;
  w.bytes_written = 8.0 * iters / static_cast<double>(step_length);
  w.launches = 1.0;
  w.parallel_items = static_cast<double>(n_det * intervals.size());
  w.cpu_vector_eff = 0.80;  // running sums, serial within a step
  ctx.charge_host_kernel("template_offset_project_signal", w);
}

void template_offset_apply_diag_precond(std::span<const double> offset_var,
                                        std::span<const double> amp_in,
                                        std::span<double> amp_out,
                                        core::ExecContext& ctx) {
  const std::size_t n = amp_in.size();
  for (std::size_t i = 0; i < n; ++i) {
    amp_out[i] = amp_in[i] * offset_var[i];
  }

  accel::WorkEstimate w;
  w.flops = static_cast<double>(n);
  w.bytes_read = 16.0 * static_cast<double>(n);
  w.bytes_written = 8.0 * static_cast<double>(n);
  w.launches = 1.0;
  w.parallel_items = static_cast<double>(n);
  ctx.charge_host_kernel("template_offset_apply_diag_precond", w);
}

}  // namespace toast::kernels::cpu
