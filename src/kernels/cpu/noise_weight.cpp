// CPU baseline: scale timestreams by detector noise weights.  Trivially
// memory-bound.

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void noise_weight(std::span<const double> det_weights,
                  std::span<const core::Interval> intervals,
                  std::int64_t n_det, std::int64_t n_samp,
                  std::span<double> signal, core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    const double dw = det_weights[static_cast<std::size_t>(det)];
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        signal[static_cast<std::size_t>(det * n_samp + s)] *= dw;
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 1.0 * iters;
  w.bytes_read = 8.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 1.0;
  ctx.charge_host_kernel("noise_weight", w);
}

}  // namespace toast::kernels::cpu
