// CPU baseline: accumulate noise-weighted timestreams onto a sky map.
// The scatter into the map domain is done with atomics when threaded; the
// conflict rate depends on how often concurrent samples hit the same
// pixel, which we measure from the real pixel stream.

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void build_noise_weighted(std::span<const std::int64_t> pixels,
                          std::span<const double> weights, std::int64_t nnz,
                          std::span<const double> signal,
                          std::span<const double> det_scale,
                          std::span<const std::uint8_t> shared_flags,
                          std::uint8_t flag_mask,
                          std::span<const core::Interval> intervals,
                          std::int64_t n_det, std::int64_t n_samp,
                          std::span<double> zmap, core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    const double scale = det_scale[static_cast<std::size_t>(det)];
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const std::size_t off = static_cast<std::size_t>(det * n_samp + s);
        const bool flagged =
            !shared_flags.empty() &&
            (shared_flags[static_cast<std::size_t>(s)] & flag_mask) != 0;
        const std::int64_t pix = pixels[off];
        if (flagged || pix < 0) {
          continue;
        }
        const double z = scale * signal[off];
        const double* w = &weights[nnz * off];
        double* target = &zmap[static_cast<std::size_t>(nnz * pix)];
        for (std::int64_t k = 0; k < nnz; ++k) {
          target[k] += z * w[k];  // atomic when threaded
        }
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  const double dnnz = static_cast<double>(nnz);
  w.flops = (2.0 * dnnz + 1.0) * iters;
  w.bytes_read = (8.0 + 8.0 + 8.0 * dnnz + 1.0) * iters;
  w.bytes_written = 8.0 * dnnz * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.atomic_ops = dnnz * iters;
  w.atomic_conflict_rate = estimate_conflict_rate(pixels);
  w.cpu_vector_eff = 0.30;
  ctx.charge_host_kernel("build_noise_weighted", w);
}

}  // namespace toast::kernels::cpu
