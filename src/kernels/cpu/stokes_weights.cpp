// CPU baseline: detector Stokes response weights.
// stokes_weights_iqu is the most compute-dense kernel of the benchmark
// (two quaternion rotations, atan2, sin/cos per sample).

#include <cmath>

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void stokes_weights_iqu(std::span<const double> quats,
                        std::span<const double> hwp_angle,
                        std::span<const double> pol_eff,
                        std::span<const core::Interval> intervals,
                        std::int64_t n_det, std::int64_t n_samp,
                        std::span<double> weights, core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    const double eta = pol_eff[static_cast<std::size_t>(det)];
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const std::size_t off = static_cast<std::size_t>(det * n_samp + s);
        const double* q = &quats[4 * off];
        double ang = detector_angle(q);
        if (!hwp_angle.empty()) {
          ang += 2.0 * hwp_angle[static_cast<std::size_t>(s)];
        }
        double* w = &weights[3 * off];
        w[0] = 1.0;
        w[1] = eta * std::cos(2.0 * ang);
        w[2] = eta * std::sin(2.0 * ang);
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 112.0 * iters;  // 2 rotations + atan2 + sincos + arithmetic
  w.bytes_read = 40.0 * iters;
  w.bytes_written = 24.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.15;  // libm atan2/sincos per sample do not vectorize
  ctx.charge_host_kernel("stokes_weights_IQU", w);
}

void stokes_weights_i(std::span<const core::Interval> intervals,
                      std::int64_t n_det, std::int64_t n_samp,
                      std::span<double> weights, core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        weights[static_cast<std::size_t>(det * n_samp + s)] = 1.0;
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 1.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  ctx.charge_host_kernel("stokes_weights_I", w);
}

}  // namespace toast::kernels::cpu
