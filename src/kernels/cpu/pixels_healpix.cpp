// CPU baseline: detector pointing quaternions to HEALPix pixel indices.
// The heavy branching of the HEALPix projection (equatorial belt vs polar
// caps, ring vs nest bit manipulation) is the paper's canonical example of
// a GPU-unfriendly kernel.

#include "healpix/healpix.hpp"
#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void pixels_healpix(std::span<const double> quats,
                    std::span<const std::uint8_t> shared_flags,
                    std::uint8_t flag_mask, std::int64_t nside, bool nest,
                    std::span<const core::Interval> intervals,
                    std::int64_t n_det, std::int64_t n_samp,
                    std::span<std::int64_t> pixels, core::ExecContext& ctx) {
  const healpix::Healpix hp(nside);
  const double zaxis[3] = {0.0, 0.0, 1.0};
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const std::size_t off = static_cast<std::size_t>(det * n_samp + s);
        const bool flagged =
            !shared_flags.empty() &&
            (shared_flags[static_cast<std::size_t>(s)] & flag_mask) != 0;
        if (flagged) {
          pixels[off] = -1;
          continue;
        }
        const double* q = &quats[4 * off];
        double dir[3];
        quat_rotate(q, zaxis, dir);
        pixels[off] = nest ? hp.vec2pix_nest(dir[0], dir[1], dir[2])
                           : hp.vec2pix_ring(dir[0], dir[1], dir[2]);
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  w.flops = 85.0 * iters;  // rotate (21) + atan2/sqrt + projection math
  w.bytes_read = 33.0 * iters;
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  // Equatorial/polar split plus per-branch index logic: SIMT lanes pay the
  // longest path; scalar CPU code mostly fails to vectorize instead.
  w.divergence = 2.2;
  w.cpu_vector_eff = 0.55;
  ctx.charge_host_kernel("pixels_healpix", w);
}

}  // namespace toast::kernels::cpu
