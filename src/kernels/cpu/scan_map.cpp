// CPU baseline: scan a pixelized sky map onto detector timestreams.
// Gather-dominated: the map access pattern follows the scanning motion.

#include "kernels/common.hpp"
#include "kernels/cpu.hpp"

namespace toast::kernels::cpu {

void scan_map(std::span<const double> sky_map, std::int64_t nnz,
              std::span<const std::int64_t> pixels,
              std::span<const double> weights, double data_scale,
              std::span<const core::Interval> intervals, std::int64_t n_det,
              std::int64_t n_samp, std::span<double> signal,
              core::ExecContext& ctx) {
  for (std::int64_t det = 0; det < n_det; ++det) {
    for (const auto& ival : intervals) {
      for (std::int64_t s = ival.start; s < ival.stop; ++s) {
        const std::size_t off = static_cast<std::size_t>(det * n_samp + s);
        const std::int64_t pix = pixels[off];
        if (pix < 0) {
          continue;  // flagged sample
        }
        const double* w = &weights[nnz * off];
        const double* m = &sky_map[static_cast<std::size_t>(nnz * pix)];
        double value = 0.0;
        for (std::int64_t k = 0; k < nnz; ++k) {
          value += m[k] * w[k];
        }
        signal[off] += data_scale * value;
      }
    }
  }

  accel::WorkEstimate w;
  const double iters = static_cast<double>(
      n_det * total_interval_samples(intervals));
  const double dnnz = static_cast<double>(nnz);
  w.flops = (2.0 * dnnz + 2.0) * iters;
  w.bytes_read = (8.0 + 16.0 * dnnz + 8.0) * iters;  // pix + weights + map
  w.bytes_written = 8.0 * iters;
  w.launches = 1.0;
  w.parallel_items = iters;
  w.cpu_vector_eff = 0.40;  // indirect map access defeats the vectorizer
  ctx.charge_host_kernel("scan_map", w);
}

}  // namespace toast::kernels::cpu
