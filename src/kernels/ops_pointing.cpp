// Operator wrappers for the pointing-expansion chain: pointing_detector,
// pixels_healpix, stokes_weights_{IQU,I}.

#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "kernels/operators.hpp"
#include "kernels/ops_common.hpp"

namespace toast::kernels {

using core::Backend;
using core::FieldType;
using core::fields::kBoresight;
using core::fields::kHwpAngle;
using core::fields::kPixels;
using core::fields::kQuats;
using core::fields::kSharedFlags;
using core::fields::kWeights;
using detail::buf;
using detail::buf_opt;

namespace {

std::span<const std::uint8_t> flag_span(const std::uint8_t* flags,
                                        std::int64_t n) {
  return flags == nullptr
             ? std::span<const std::uint8_t>()
             : std::span<const std::uint8_t>(flags,
                                             static_cast<std::size_t>(n));
}

}  // namespace

// --- PointingDetectorOp -----------------------------------------------------

std::vector<std::string> PointingDetectorOp::requires_fields() const {
  return {kBoresight, kSharedFlags, aux_fields::kFpQuats};
}

std::vector<std::string> PointingDetectorOp::provides_fields() const {
  return {kQuats};
}

void PointingDetectorOp::ensure_fields(core::Observation& ob) {
  detail::ensure_fp_quats(ob);
  if (!ob.has_field(kQuats)) {
    ob.create_detdata(kQuats, FieldType::kF64, 4);
  }
}

void PointingDetectorOp::exec(core::Observation& ob, core::ExecContext& ctx,
                              core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const double* fpq = buf<double>(ob, aux_fields::kFpQuats, accel);
  const double* bore = buf<double>(ob, kBoresight, accel);
  const std::uint8_t* flags = buf_opt<std::uint8_t>(ob, kSharedFlags, accel);
  double* quats = buf<double>(ob, kQuats, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::pointing_detector(
          {fpq, static_cast<std::size_t>(4 * n_det)},
          {bore, static_cast<std::size_t>(4 * n_samp)},
          flag_span(flags, n_samp), kDefaultFlagMask, ivals, n_det, n_samp,
          {quats, static_cast<std::size_t>(4 * n_det * n_samp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::pointing_detector(fpq, bore, flags, kDefaultFlagMask, ivals,
                             n_det, n_samp, quats, ctx, accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::pointing_detector(fpq, bore, flags, kDefaultFlagMask, ivals,
                             n_det, n_samp, quats, ctx);
      break;
  }
}

// --- PixelsHealpixOp --------------------------------------------------------

std::vector<std::string> PixelsHealpixOp::requires_fields() const {
  return {kQuats, kSharedFlags};
}

std::vector<std::string> PixelsHealpixOp::provides_fields() const {
  return {kPixels};
}

void PixelsHealpixOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(kPixels)) {
    ob.create_detdata(kPixels, FieldType::kI64, 1);
  }
}

void PixelsHealpixOp::exec(core::Observation& ob, core::ExecContext& ctx,
                           core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const double* quats = buf<double>(ob, kQuats, accel);
  const std::uint8_t* flags = buf_opt<std::uint8_t>(ob, kSharedFlags, accel);
  std::int64_t* pixels = buf<std::int64_t>(ob, kPixels, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::pixels_healpix(
          {quats, static_cast<std::size_t>(4 * n_det * n_samp)},
          flag_span(flags, n_samp), kDefaultFlagMask, nside_, nest_, ivals,
          n_det, n_samp,
          {pixels, static_cast<std::size_t>(n_det * n_samp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::pixels_healpix(quats, flags, kDefaultFlagMask, nside_, nest_,
                          ivals, n_det, n_samp, pixels, ctx,
                          accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::pixels_healpix(quats, flags, kDefaultFlagMask, nside_, nest_,
                          ivals, n_det, n_samp, pixels, ctx);
      break;
  }
}

// --- StokesWeightsIquOp -----------------------------------------------------

std::vector<std::string> StokesWeightsIquOp::requires_fields() const {
  return {kQuats, kHwpAngle, aux_fields::kPolEff};
}

std::vector<std::string> StokesWeightsIquOp::provides_fields() const {
  return {kWeights};
}

void StokesWeightsIquOp::ensure_fields(core::Observation& ob) {
  detail::ensure_pol_eff(ob);
  if (!ob.has_field(kWeights)) {
    ob.create_detdata(kWeights, FieldType::kF64, 3);
  }
}

void StokesWeightsIquOp::exec(core::Observation& ob, core::ExecContext& ctx,
                              core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  const double* quats = buf<double>(ob, kQuats, accel);
  const double* hwp =
      use_hwp_ ? buf_opt<double>(ob, kHwpAngle, accel) : nullptr;
  const double* pol_eff = buf<double>(ob, aux_fields::kPolEff, accel);
  double* weights = buf<double>(ob, kWeights, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::stokes_weights_iqu(
          {quats, static_cast<std::size_t>(4 * n_det * n_samp)},
          hwp == nullptr
              ? std::span<const double>()
              : std::span<const double>(hwp, static_cast<std::size_t>(n_samp)),
          {pol_eff, static_cast<std::size_t>(n_det)}, ivals, n_det, n_samp,
          {weights, static_cast<std::size_t>(3 * n_det * n_samp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::stokes_weights_iqu(quats, hwp, pol_eff, ivals, n_det, n_samp,
                              weights, ctx, accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::stokes_weights_iqu(quats, hwp, pol_eff, ivals, n_det, n_samp,
                              weights, ctx);
      break;
  }
}

// --- StokesWeightsIOp -------------------------------------------------------

std::vector<std::string> StokesWeightsIOp::provides_fields() const {
  return {kWeights};
}

void StokesWeightsIOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(kWeights)) {
    ob.create_detdata(kWeights, FieldType::kF64, 1);
  }
}

void StokesWeightsIOp::exec(core::Observation& ob, core::ExecContext& ctx,
                            core::AccelStore* accel, Backend backend) {
  const std::int64_t n_det = ob.n_detectors();
  const std::int64_t n_samp = ob.n_samples();
  double* weights = buf<double>(ob, kWeights, accel);
  const auto& ivals = ob.intervals();

  switch (backend) {
    case Backend::kCpu:
      cpu::stokes_weights_i(
          ivals, n_det, n_samp,
          {weights, static_cast<std::size_t>(n_det * n_samp)}, ctx);
      break;
    case Backend::kOmpTarget:
      omp::stokes_weights_i(ivals, n_det, n_samp, weights, ctx,
                            accel != nullptr);
      break;
    case Backend::kJax:
    case Backend::kJaxCpu:
      jax::stokes_weights_i(ivals, n_det, n_samp, weights, ctx);
      break;
  }
}

}  // namespace toast::kernels
