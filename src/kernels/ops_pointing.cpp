// Operator wrappers for the pointing-expansion chain: pointing_detector,
// pixels_healpix, stokes_weights_{IQU,I}.  Backend selection goes through
// the tag-dispatch registry (backend/registry.hpp): each kernel registers
// one implementation per manifest tag and the jax registration serves
// jax, jax-cpu and jax-compiled through the tag base chain.

#include "backend/registry.hpp"
#include "kernels/cpu.hpp"
#include "kernels/jax.hpp"
#include "kernels/omptarget.hpp"
#include "kernels/operators.hpp"
#include "kernels/ops_common.hpp"

namespace toast::kernels {

using core::Backend;
using core::FieldType;
using core::fields::kBoresight;
using core::fields::kHwpAngle;
using core::fields::kPixels;
using core::fields::kQuats;
using core::fields::kSharedFlags;
using core::fields::kWeights;
using detail::buf;
using detail::buf_opt;

namespace {

std::span<const std::uint8_t> flag_span(const std::uint8_t* flags,
                                        std::int64_t n) {
  return flags == nullptr
             ? std::span<const std::uint8_t>()
             : std::span<const std::uint8_t>(flags,
                                             static_cast<std::size_t>(n));
}

}  // namespace

// --- PointingDetectorOp -----------------------------------------------------

std::vector<std::string> PointingDetectorOp::requires_fields() const {
  return {kBoresight, kSharedFlags, aux_fields::kFpQuats};
}

std::vector<std::string> PointingDetectorOp::provides_fields() const {
  return {kQuats};
}

void PointingDetectorOp::ensure_fields(core::Observation& ob) {
  detail::ensure_fp_quats(ob);
  if (!ob.has_field(kQuats)) {
    ob.create_detdata(kQuats, FieldType::kF64, 4);
  }
}

namespace {

struct PointingDetectorArgs {
  const double* fpq;
  const double* bore;
  const std::uint8_t* flags;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* quats;
  bool on_device;
};

const backend::OpRegistry<PointingDetectorArgs>&
pointing_detector_registry() {
  static const auto reg = [] {
    backend::OpRegistry<PointingDetectorArgs> r("pointing_detector");
    r.add<backend::cpu_tag>(
        [](const PointingDetectorArgs& a, core::ExecContext& ctx) {
          cpu::pointing_detector(
              {a.fpq, static_cast<std::size_t>(4 * a.n_det)},
              {a.bore, static_cast<std::size_t>(4 * a.n_samp)},
              flag_span(a.flags, a.n_samp), kDefaultFlagMask, a.ivals,
              a.n_det, a.n_samp,
              {a.quats, static_cast<std::size_t>(4 * a.n_det * a.n_samp)},
              ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const PointingDetectorArgs& a, core::ExecContext& ctx) {
          omp::pointing_detector(a.fpq, a.bore, a.flags, kDefaultFlagMask,
                                 a.ivals, a.n_det, a.n_samp, a.quats, ctx,
                                 a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const PointingDetectorArgs& a, core::ExecContext& ctx) {
          jax::pointing_detector(a.fpq, a.bore, a.flags, kDefaultFlagMask,
                                 a.ivals, a.n_det, a.n_samp, a.quats, ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void PointingDetectorOp::exec(core::Observation& ob, core::ExecContext& ctx,
                              core::AccelStore* accel, Backend backend) {
  PointingDetectorArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.fpq = buf<double>(ob, aux_fields::kFpQuats, accel);
  a.bore = buf<double>(ob, kBoresight, accel);
  a.flags = buf_opt<std::uint8_t>(ob, kSharedFlags, accel);
  a.quats = buf<double>(ob, kQuats, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  pointing_detector_registry().invoke(backend, a, ctx);
}

// --- PixelsHealpixOp --------------------------------------------------------

std::vector<std::string> PixelsHealpixOp::requires_fields() const {
  return {kQuats, kSharedFlags};
}

std::vector<std::string> PixelsHealpixOp::provides_fields() const {
  return {kPixels};
}

void PixelsHealpixOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(kPixels)) {
    ob.create_detdata(kPixels, FieldType::kI64, 1);
  }
}

namespace {

struct PixelsHealpixArgs {
  const double* quats;
  const std::uint8_t* flags;
  std::int64_t nside;
  bool nest;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  std::int64_t* pixels;
  bool on_device;
};

const backend::OpRegistry<PixelsHealpixArgs>& pixels_healpix_registry() {
  static const auto reg = [] {
    backend::OpRegistry<PixelsHealpixArgs> r("pixels_healpix");
    r.add<backend::cpu_tag>(
        [](const PixelsHealpixArgs& a, core::ExecContext& ctx) {
          cpu::pixels_healpix(
              {a.quats, static_cast<std::size_t>(4 * a.n_det * a.n_samp)},
              flag_span(a.flags, a.n_samp), kDefaultFlagMask, a.nside,
              a.nest, a.ivals, a.n_det, a.n_samp,
              {a.pixels, static_cast<std::size_t>(a.n_det * a.n_samp)},
              ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const PixelsHealpixArgs& a, core::ExecContext& ctx) {
          omp::pixels_healpix(a.quats, a.flags, kDefaultFlagMask, a.nside,
                              a.nest, a.ivals, a.n_det, a.n_samp, a.pixels,
                              ctx, a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const PixelsHealpixArgs& a, core::ExecContext& ctx) {
          jax::pixels_healpix(a.quats, a.flags, kDefaultFlagMask, a.nside,
                              a.nest, a.ivals, a.n_det, a.n_samp, a.pixels,
                              ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void PixelsHealpixOp::exec(core::Observation& ob, core::ExecContext& ctx,
                           core::AccelStore* accel, Backend backend) {
  PixelsHealpixArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.quats = buf<double>(ob, kQuats, accel);
  a.flags = buf_opt<std::uint8_t>(ob, kSharedFlags, accel);
  a.pixels = buf<std::int64_t>(ob, kPixels, accel);
  a.nside = nside_;
  a.nest = nest_;
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  pixels_healpix_registry().invoke(backend, a, ctx);
}

// --- StokesWeightsIquOp -----------------------------------------------------

std::vector<std::string> StokesWeightsIquOp::requires_fields() const {
  return {kQuats, kHwpAngle, aux_fields::kPolEff};
}

std::vector<std::string> StokesWeightsIquOp::provides_fields() const {
  return {kWeights};
}

void StokesWeightsIquOp::ensure_fields(core::Observation& ob) {
  detail::ensure_pol_eff(ob);
  if (!ob.has_field(kWeights)) {
    ob.create_detdata(kWeights, FieldType::kF64, 3);
  }
}

namespace {

struct StokesWeightsIquArgs {
  const double* quats;
  const double* hwp;
  const double* pol_eff;
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* weights;
  bool on_device;
};

const backend::OpRegistry<StokesWeightsIquArgs>&
stokes_weights_iqu_registry() {
  static const auto reg = [] {
    backend::OpRegistry<StokesWeightsIquArgs> r("stokes_weights_iqu");
    r.add<backend::cpu_tag>(
        [](const StokesWeightsIquArgs& a, core::ExecContext& ctx) {
          cpu::stokes_weights_iqu(
              {a.quats, static_cast<std::size_t>(4 * a.n_det * a.n_samp)},
              a.hwp == nullptr
                  ? std::span<const double>()
                  : std::span<const double>(
                        a.hwp, static_cast<std::size_t>(a.n_samp)),
              {a.pol_eff, static_cast<std::size_t>(a.n_det)}, a.ivals,
              a.n_det, a.n_samp,
              {a.weights,
               static_cast<std::size_t>(3 * a.n_det * a.n_samp)},
              ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const StokesWeightsIquArgs& a, core::ExecContext& ctx) {
          omp::stokes_weights_iqu(a.quats, a.hwp, a.pol_eff, a.ivals,
                                  a.n_det, a.n_samp, a.weights, ctx,
                                  a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const StokesWeightsIquArgs& a, core::ExecContext& ctx) {
          jax::stokes_weights_iqu(a.quats, a.hwp, a.pol_eff, a.ivals,
                                  a.n_det, a.n_samp, a.weights, ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void StokesWeightsIquOp::exec(core::Observation& ob, core::ExecContext& ctx,
                              core::AccelStore* accel, Backend backend) {
  StokesWeightsIquArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.quats = buf<double>(ob, kQuats, accel);
  a.hwp = use_hwp_ ? buf_opt<double>(ob, kHwpAngle, accel) : nullptr;
  a.pol_eff = buf<double>(ob, aux_fields::kPolEff, accel);
  a.weights = buf<double>(ob, kWeights, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  stokes_weights_iqu_registry().invoke(backend, a, ctx);
}

// --- StokesWeightsIOp -------------------------------------------------------

std::vector<std::string> StokesWeightsIOp::provides_fields() const {
  return {kWeights};
}

void StokesWeightsIOp::ensure_fields(core::Observation& ob) {
  if (!ob.has_field(kWeights)) {
    ob.create_detdata(kWeights, FieldType::kF64, 1);
  }
}

namespace {

struct StokesWeightsIArgs {
  std::span<const core::Interval> ivals;
  std::int64_t n_det;
  std::int64_t n_samp;
  double* weights;
  bool on_device;
};

const backend::OpRegistry<StokesWeightsIArgs>& stokes_weights_i_registry() {
  static const auto reg = [] {
    backend::OpRegistry<StokesWeightsIArgs> r("stokes_weights_i");
    r.add<backend::cpu_tag>(
        [](const StokesWeightsIArgs& a, core::ExecContext& ctx) {
          cpu::stokes_weights_i(
              a.ivals, a.n_det, a.n_samp,
              {a.weights, static_cast<std::size_t>(a.n_det * a.n_samp)},
              ctx);
        });
    r.add<backend::omptarget_tag>(
        [](const StokesWeightsIArgs& a, core::ExecContext& ctx) {
          omp::stokes_weights_i(a.ivals, a.n_det, a.n_samp, a.weights, ctx,
                                a.on_device);
        });
    r.add<backend::jax_tag>(
        [](const StokesWeightsIArgs& a, core::ExecContext& ctx) {
          jax::stokes_weights_i(a.ivals, a.n_det, a.n_samp, a.weights, ctx);
        });
    return r;
  }();
  return reg;
}

}  // namespace

void StokesWeightsIOp::exec(core::Observation& ob, core::ExecContext& ctx,
                            core::AccelStore* accel, Backend backend) {
  StokesWeightsIArgs a;
  a.n_det = ob.n_detectors();
  a.n_samp = ob.n_samples();
  a.weights = buf<double>(ob, kWeights, accel);
  a.ivals = ob.intervals();
  a.on_device = accel != nullptr;
  stokes_weights_i_registry().invoke(backend, a, ctx);
}

}  // namespace toast::kernels
