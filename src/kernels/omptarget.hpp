#pragma once

// OpenMP Target Offload ports of the kernels (paper §3.1.2).
//
// Each kernel keeps TOAST's compiled-extension structure: a `use_accel`
// flag selects between the original host OpenMP loop and the target
// region.  The target region is the paper's pattern exactly: the triple
// (detector, interval, sample) loop collapsed over the *maximum* interval
// length with an in-body guard that cuts iterations past the true
// interval end — conditionals are cheap here because the cut branch is a
// no-op.
//
// When `use_accel` is true the buffer pointers must be *device* pointers
// (AccelStore shadows); when false they are host pointers.  This mirrors
// the real port, where passing a host pointer to a target region is a
// segfault.

#include <cstdint>
#include <span>

#include "core/context.hpp"
#include "core/types.hpp"

namespace toast::kernels::omp {

void pointing_detector(const double* fp_quats, const double* boresight,
                       const std::uint8_t* shared_flags,
                       std::uint8_t flag_mask,
                       std::span<const core::Interval> intervals,
                       std::int64_t n_det, std::int64_t n_samp, double* quats,
                       core::ExecContext& ctx, bool use_accel);

void pixels_healpix(const double* quats, const std::uint8_t* shared_flags,
                    std::uint8_t flag_mask, std::int64_t nside, bool nest,
                    std::span<const core::Interval> intervals,
                    std::int64_t n_det, std::int64_t n_samp,
                    std::int64_t* pixels, core::ExecContext& ctx,
                    bool use_accel);

void stokes_weights_iqu(const double* quats, const double* hwp_angle,
                        const double* pol_eff,
                        std::span<const core::Interval> intervals,
                        std::int64_t n_det, std::int64_t n_samp,
                        double* weights, core::ExecContext& ctx,
                        bool use_accel);

void stokes_weights_i(std::span<const core::Interval> intervals,
                      std::int64_t n_det, std::int64_t n_samp,
                      double* weights, core::ExecContext& ctx,
                      bool use_accel);

void scan_map(const double* sky_map, std::int64_t nnz,
              const std::int64_t* pixels, const double* weights,
              double data_scale, std::span<const core::Interval> intervals,
              std::int64_t n_det, std::int64_t n_samp, double* signal,
              core::ExecContext& ctx, bool use_accel);

void noise_weight(const double* det_weights,
                  std::span<const core::Interval> intervals,
                  std::int64_t n_det, std::int64_t n_samp, double* signal,
                  core::ExecContext& ctx, bool use_accel);

void build_noise_weighted(const std::int64_t* pixels, const double* weights,
                          std::int64_t nnz, const double* signal,
                          const double* det_scale,
                          const std::uint8_t* shared_flags,
                          std::uint8_t flag_mask,
                          std::span<const core::Interval> intervals,
                          std::int64_t n_det, std::int64_t n_samp,
                          double* zmap, core::ExecContext& ctx,
                          bool use_accel);

void template_offset_add_to_signal(std::int64_t step_length,
                                   const double* amplitudes,
                                   std::int64_t n_amp_det,
                                   std::span<const core::Interval> intervals,
                                   std::int64_t n_det, std::int64_t n_samp,
                                   double* signal, core::ExecContext& ctx,
                                   bool use_accel);

void template_offset_project_signal(
    std::int64_t step_length, const double* signal,
    std::span<const core::Interval> intervals, std::int64_t n_det,
    std::int64_t n_samp, double* amplitudes, std::int64_t n_amp_det,
    core::ExecContext& ctx, bool use_accel);

void template_offset_apply_diag_precond(const double* offset_var,
                                        const double* amp_in,
                                        std::int64_t n_amp, double* amp_out,
                                        core::ExecContext& ctx,
                                        bool use_accel);

}  // namespace toast::kernels::omp
