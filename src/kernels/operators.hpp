#pragma once

// Operator wrappers around the kernels: these are the modular pipeline
// building blocks TOAST exposes (paper §3.1.1).  Each resolves observation
// fields to raw buffers, consults the dispatch registry, and calls the
// CPU / OpenMP-target / JAX implementation — on host pointers or on
// AccelStore device shadows, as placed by the pipeline.

#include <cstdint>
#include <string>
#include <vector>

#include "core/operator.hpp"

namespace toast::kernels {

/// Expand boresight pointing to per-detector quaternions ("quats").
class PointingDetectorOp : public core::Operator {
 public:
  std::string name() const override { return "pointing_detector"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;
};

/// Compute HEALPix pixel indices ("pixels") from detector quaternions.
class PixelsHealpixOp : public core::Operator {
 public:
  PixelsHealpixOp(std::int64_t nside, bool nest = true)
      : nside_(nside), nest_(nest) {}
  std::string name() const override { return "pixels_healpix"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

  std::int64_t nside() const { return nside_; }

 private:
  std::int64_t nside_;
  bool nest_;
};

/// Compute I/Q/U Stokes weights ("weights") from detector quaternions.
class StokesWeightsIquOp : public core::Operator {
 public:
  explicit StokesWeightsIquOp(bool use_hwp = true) : use_hwp_(use_hwp) {}
  std::string name() const override { return "stokes_weights_IQU"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  bool use_hwp_;
};

/// Trivial intensity-only weights.
class StokesWeightsIOp : public core::Operator {
 public:
  std::string name() const override { return "stokes_weights_I"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;
};

/// Scan the "sky_map" field into "signal" along the pointing.
class ScanMapOp : public core::Operator {
 public:
  explicit ScanMapOp(std::int64_t nnz = 3, double data_scale = 1.0)
      : nnz_(nnz), data_scale_(data_scale) {}
  std::string name() const override { return "scan_map"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  std::int64_t nnz_;
  double data_scale_;
};

/// Scale "signal" by the detector inverse noise variance.
class NoiseWeightOp : public core::Operator {
 public:
  std::string name() const override { return "noise_weight"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;
};

/// Accumulate noise-weighted "signal" into the "zmap" accumulator.
class BuildNoiseWeightedOp : public core::Operator {
 public:
  explicit BuildNoiseWeightedOp(std::int64_t nside, std::int64_t nnz = 3)
      : nside_(nside), nnz_(nnz) {}
  std::string name() const override { return "build_noise_weighted"; }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  std::int64_t nside_;
  std::int64_t nnz_;
};

/// Shared configuration of the offset-template operators.
struct TemplateOffsetConfig {
  std::int64_t step_length = 256;
  std::int64_t n_amp_det(std::int64_t n_samp) const {
    return (n_samp + step_length - 1) / step_length;
  }
};

/// Scan offset amplitudes ("amplitudes") onto "signal".
class TemplateOffsetAddOp : public core::Operator {
 public:
  explicit TemplateOffsetAddOp(TemplateOffsetConfig cfg = {}) : cfg_(cfg) {}
  std::string name() const override {
    return "template_offset_add_to_signal";
  }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  TemplateOffsetConfig cfg_;
};

/// Project "signal" onto the offset amplitudes.
class TemplateOffsetProjectOp : public core::Operator {
 public:
  explicit TemplateOffsetProjectOp(TemplateOffsetConfig cfg = {})
      : cfg_(cfg) {}
  std::string name() const override {
    return "template_offset_project_signal";
  }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  TemplateOffsetConfig cfg_;
};

/// Apply the diagonal offset preconditioner in amplitude space.
class TemplateOffsetPrecondOp : public core::Operator {
 public:
  explicit TemplateOffsetPrecondOp(TemplateOffsetConfig cfg = {})
      : cfg_(cfg) {}
  std::string name() const override {
    return "template_offset_apply_diag_precond";
  }
  bool supports_accel() const override { return true; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void ensure_fields(core::Observation& ob) override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  TemplateOffsetConfig cfg_;
};

/// A stand-in for the >30 kernels the paper had not ported to GPU: runs
/// on the host only, touching "signal", and charges a configurable amount
/// of CPU work.  This is what bounds the end-to-end speedup via Amdahl's
/// law (§4).
class UnportedHostOp : public core::Operator {
 public:
  UnportedHostOp(std::string name, double flops_per_sample,
                 double bytes_per_sample)
      : name_(std::move(name)),
        flops_per_sample_(flops_per_sample),
        bytes_per_sample_(bytes_per_sample) {}
  std::string name() const override { return name_; }
  bool supports_accel() const override { return false; }
  std::vector<std::string> requires_fields() const override;
  std::vector<std::string> provides_fields() const override;
  void exec(core::Observation& ob, core::ExecContext& ctx,
            core::AccelStore* accel, core::Backend backend) override;

 private:
  std::string name_;
  double flops_per_sample_;
  double bytes_per_sample_;
};

// Field names for per-observation instrument tables created by the
// operators (staged to the device like any other field).
namespace aux_fields {
inline constexpr const char* kFpQuats = "fp_quats";
inline constexpr const char* kPolEff = "pol_eff";
inline constexpr const char* kDetWeights = "det_weights";
inline constexpr const char* kDetScale = "det_scale";
inline constexpr const char* kOffsetVar = "offset_var";
inline constexpr const char* kAmplitudesIn = "amplitudes_in";
}  // namespace aux_fields

}  // namespace toast::kernels
