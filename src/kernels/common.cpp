#include "kernels/common.hpp"

#include <algorithm>
#include <unordered_map>

namespace toast::kernels {

double estimate_conflict_rate(std::span<const std::int64_t> indices,
                              std::int64_t window) {
  if (indices.empty()) {
    return 0.0;
  }
  double conflicts = 0.0;
  double valid = 0.0;
  std::unordered_map<std::int64_t, int> seen;
  const auto n = static_cast<std::int64_t>(indices.size());
  for (std::int64_t start = 0; start < n; start += window) {
    seen.clear();
    const std::int64_t stop = std::min(n, start + window);
    for (std::int64_t i = start; i < stop; ++i) {
      if (indices[i] < 0) {
        continue;
      }
      valid += 1.0;
      if (++seen[indices[i]] > 1) {
        conflicts += 1.0;
      }
    }
  }
  return valid > 0.0 ? conflicts / valid : 0.0;
}

std::int64_t total_interval_samples(std::span<const core::Interval> ivals) {
  std::int64_t total = 0;
  for (const auto& v : ivals) {
    total += v.length();
  }
  return total;
}

double padding_ratio(std::span<const core::Interval> ivals) {
  if (ivals.empty()) {
    return 1.0;
  }
  std::int64_t max_len = 0;
  for (const auto& v : ivals) {
    max_len = std::max(max_len, v.length());
  }
  const std::int64_t total = total_interval_samples(ivals);
  if (total == 0) {
    return 1.0;
  }
  return static_cast<double>(max_len) *
         static_cast<double>(static_cast<std::int64_t>(ivals.size())) /
         static_cast<double>(total);
}

}  // namespace toast::kernels
