#include "kernels/ops_common.hpp"

#include "kernels/operators.hpp"

namespace toast::kernels::detail {

void ensure_fp_quats(core::Observation& ob) {
  if (ob.has_field(aux_fields::kFpQuats)) {
    return;
  }
  const auto& fp = ob.focalplane();
  auto& f = ob.create_buffer(aux_fields::kFpQuats, core::FieldType::kF64,
                             4 * ob.n_detectors());
  auto out = f.f64();
  for (std::int64_t d = 0; d < ob.n_detectors(); ++d) {
    for (int k = 0; k < 4; ++k) {
      out[static_cast<std::size_t>(4 * d + k)] =
          fp.quats[static_cast<std::size_t>(d)][static_cast<std::size_t>(k)];
    }
  }
}

void ensure_pol_eff(core::Observation& ob) {
  if (ob.has_field(aux_fields::kPolEff)) {
    return;
  }
  const auto& fp = ob.focalplane();
  auto& f = ob.create_buffer(aux_fields::kPolEff, core::FieldType::kF64,
                             ob.n_detectors());
  auto out = f.f64();
  for (std::int64_t d = 0; d < ob.n_detectors(); ++d) {
    out[static_cast<std::size_t>(d)] =
        fp.pol_eff.empty() ? 1.0 : fp.pol_eff[static_cast<std::size_t>(d)];
  }
}

void ensure_det_weights(core::Observation& ob) {
  if (ob.has_field(aux_fields::kDetWeights)) {
    return;
  }
  const auto& fp = ob.focalplane();
  auto& f = ob.create_buffer(aux_fields::kDetWeights, core::FieldType::kF64,
                             ob.n_detectors());
  auto out = f.f64();
  for (std::int64_t d = 0; d < ob.n_detectors(); ++d) {
    // Inverse variance of one sample: 1 / (NET^2 * f_sample).
    const double net =
        fp.net.empty() ? 1.0 : fp.net[static_cast<std::size_t>(d)];
    out[static_cast<std::size_t>(d)] =
        1.0 / (net * net * fp.sample_rate);
  }
}

void ensure_det_scale(core::Observation& ob) {
  if (ob.has_field(aux_fields::kDetScale)) {
    return;
  }
  auto& f = ob.create_buffer(aux_fields::kDetScale, core::FieldType::kF64,
                             ob.n_detectors());
  for (auto& v : f.f64()) {
    v = 1.0;
  }
}

}  // namespace toast::kernels::detail
