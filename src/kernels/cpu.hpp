#pragma once

// The CPU baseline kernels: the "original OpenMP (CPU)" implementations of
// the paper, threaded over detectors x intervals and vectorized where the
// pattern allows.  These are the reference both GPU ports are validated
// against and the denominator of every speedup in the paper's Figures 4-6.
//
// All kernels operate on raw buffers in detector-major layout
// (field[det * n_samp * width + samp * width + k]) and charge their
// modelled execution time through ExecContext::charge_host_kernel.

#include <cstdint>
#include <span>

#include "core/context.hpp"
#include "core/types.hpp"

namespace toast::kernels::cpu {

/// Expand boresight pointing into per-detector pointing quaternions.
void pointing_detector(std::span<const double> fp_quats,
                       std::span<const double> boresight,
                       std::span<const std::uint8_t> shared_flags,
                       std::uint8_t flag_mask,
                       std::span<const core::Interval> intervals,
                       std::int64_t n_det, std::int64_t n_samp,
                       std::span<double> quats, core::ExecContext& ctx);

/// Translate detector pointing quaternions into HEALPix pixel numbers.
/// Flagged samples get pixel -1.
void pixels_healpix(std::span<const double> quats,
                    std::span<const std::uint8_t> shared_flags,
                    std::uint8_t flag_mask, std::int64_t nside, bool nest,
                    std::span<const core::Interval> intervals,
                    std::int64_t n_det, std::int64_t n_samp,
                    std::span<std::int64_t> pixels, core::ExecContext& ctx);

/// Detector response to I/Q/U Stokes parameters, with optional HWP.
void stokes_weights_iqu(std::span<const double> quats,
                        std::span<const double> hwp_angle,
                        std::span<const double> pol_eff,
                        std::span<const core::Interval> intervals,
                        std::int64_t n_det, std::int64_t n_samp,
                        std::span<double> weights, core::ExecContext& ctx);

/// Trivial intensity-only weights (all ones).
void stokes_weights_i(std::span<const core::Interval> intervals,
                      std::int64_t n_det, std::int64_t n_samp,
                      std::span<double> weights, core::ExecContext& ctx);

/// Scan a pixelized sky map into timestreams: signal += scale * map . w.
void scan_map(std::span<const double> sky_map, std::int64_t nnz,
              std::span<const std::int64_t> pixels,
              std::span<const double> weights, double data_scale,
              std::span<const core::Interval> intervals, std::int64_t n_det,
              std::int64_t n_samp, std::span<double> signal,
              core::ExecContext& ctx);

/// Scale timestreams by their detector noise weight (inverse variance).
void noise_weight(std::span<const double> det_weights,
                  std::span<const core::Interval> intervals,
                  std::int64_t n_det, std::int64_t n_samp,
                  std::span<double> signal, core::ExecContext& ctx);

/// Accumulate noise-weighted timestreams onto a sky map (atomics on the
/// map domain).
void build_noise_weighted(std::span<const std::int64_t> pixels,
                          std::span<const double> weights, std::int64_t nnz,
                          std::span<const double> signal,
                          std::span<const double> det_scale,
                          std::span<const std::uint8_t> shared_flags,
                          std::uint8_t flag_mask,
                          std::span<const core::Interval> intervals,
                          std::int64_t n_det, std::int64_t n_samp,
                          std::span<double> zmap, core::ExecContext& ctx);

/// Scan a step-wise offset template onto a timestream.
void template_offset_add_to_signal(std::int64_t step_length,
                                   std::span<const double> amplitudes,
                                   std::int64_t n_amp_det,
                                   std::span<const core::Interval> intervals,
                                   std::int64_t n_det, std::int64_t n_samp,
                                   std::span<double> signal,
                                   core::ExecContext& ctx);

/// Project a timestream onto the offset template basis (dot products).
void template_offset_project_signal(
    std::int64_t step_length, std::span<const double> signal,
    std::span<const core::Interval> intervals, std::int64_t n_det,
    std::int64_t n_samp, std::span<double> amplitudes,
    std::int64_t n_amp_det, core::ExecContext& ctx);

/// Diagonal preconditioner for the offset-template linear system.
void template_offset_apply_diag_precond(std::span<const double> offset_var,
                                        std::span<const double> amp_in,
                                        std::span<double> amp_out,
                                        core::ExecContext& ctx);

}  // namespace toast::kernels::cpu
