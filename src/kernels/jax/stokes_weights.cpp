// JAX ports of stokes_weights_IQU and stokes_weights_I.  Pure array math;
// the transcendental chain fuses into a single large kernel.

#include "kernels/jax.hpp"
#include "kernels/jax/support.hpp"

namespace toast::kernels::jax {

namespace {

struct Statics {
  std::int64_t max_len = 0;
  std::int64_t n_samp = 0;
  bool has_hwp = false;
} s;

std::vector<xla::Array> iqu_graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array quats = in[3], hwp = in[4], pol_eff = in[5], weights_out = in[6];

  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  const Array four = constant_i64(4);
  const Array q4 = mul(idx.detmaj, four);
  const Array qx = gather(quats, q4);
  const Array qy = gather(quats, add(q4, constant_i64(1)));
  const Array qz = gather(quats, add(q4, constant_i64(2)));
  const Array qw = gather(quats, add(q4, constant_i64(3)));

  const Rotated dir = rotate_axis(qx, qy, qz, qw, 0.0, 0.0, 1.0);
  const Rotated orient = rotate_axis(qx, qy, qz, qw, 1.0, 0.0, 0.0);
  const Array by = orient.x * dir.y - orient.y * dir.x;
  const Array bx = orient.x * (neg(dir.z) * dir.x) +
                   orient.y * (neg(dir.z) * dir.y) +
                   orient.z * (dir.x * dir.x + dir.y * dir.y);
  Array ang = atan2(by, bx);
  if (s.has_hwp) {
    ang = ang + 2.0 * gather(hwp, idx.samp);
  }
  const Array eta = gather(pol_eff, idx.det);
  const Array w_q = eta * cos(2.0 * ang);
  const Array w_u = eta * sin(2.0 * ang);

  const Array three = constant_i64(3);
  const Array ow = mul(idx.detmaj, three);
  Array out = weights_out;
  out = scatter_set(out, masked(ow, idx.valid),
                    select(idx.valid, constant(1.0), constant(0.0)));
  out = scatter_set(out, masked(add(ow, constant_i64(1)), idx.valid), w_q);
  out = scatter_set(out, masked(add(ow, constant_i64(2)), idx.valid), w_u);
  return {out};
}

std::vector<xla::Array> i_graph(const std::vector<xla::Array>& in) {
  using namespace xla;
  const Array det_ids = in[0], starts = in[1], lens = in[2];
  const Array weights_out = in[3];
  const PaddedIndex idx =
      padded_index(det_ids, starts, lens, s.max_len, s.n_samp);
  return {scatter_set(weights_out, masked(idx.detmaj, idx.valid),
                      broadcast_col(to_f64(eq(det_ids, det_ids)),
                                    s.max_len))};
}

}  // namespace

void stokes_weights_iqu(const double* quats, const double* hwp_angle,
                        const double* pol_eff,
                        std::span<const core::Interval> intervals,
                        std::int64_t n_det, std::int64_t n_samp,
                        double* weights, core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, hwp_angle != nullptr};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(quats, 4 * n_det * n_samp));
  args.push_back(hwp_angle != nullptr
                     ? lit_f64(hwp_angle, n_samp)
                     : xla::Literal(xla::Shape{n_samp}, xla::DType::kF64));
  args.push_back(lit_f64(pol_eff, n_det));
  args.push_back(lit_f64(weights, 3 * n_det * n_samp));

  auto& jit = registered_jit("stokes_weights_IQU", iqu_graph);
  jit.set_donated_params({6});
  const std::string key = "maxlen=" + std::to_string(s.max_len) + ";nsamp=" +
                          std::to_string(s.n_samp) +
                          ";hwp=" + (s.has_hwp ? "1" : "0");
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], weights);
}

void stokes_weights_i(std::span<const core::Interval> intervals,
                      std::int64_t n_det, std::int64_t n_samp,
                      double* weights, core::ExecContext& ctx) {
  const PaddedView view = make_padded_view(intervals, n_det);
  if (view.rows == 0 || view.max_len == 0) {
    return;
  }
  s = {view.max_len, n_samp, false};

  std::vector<xla::Literal> args;
  args.push_back(view.det_ids);
  args.push_back(view.starts);
  args.push_back(view.lens);
  args.push_back(lit_f64(weights, n_det * n_samp));

  auto& jit = registered_jit("stokes_weights_I", i_graph);
  jit.set_donated_params({3});
  const std::string key = "maxlen=" + std::to_string(s.max_len) +
                          ";nsamp=" + std::to_string(s.n_samp);
  const auto out = jit.call(ctx.jax(), args, key);
  store_f64(out[0], weights);
}

}  // namespace toast::kernels::jax
