#pragma once

// Support code for the JAX kernel ports: the padded interval view and the
// per-kernel Jit registry.

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "core/types.hpp"
#include "xla/jit.hpp"

namespace toast::kernels::jax {

/// The static-shape view of the (detector, interval) loop: one row per
/// (det, interval) pair, max_len columns.  Rows carry the detector id,
/// the interval start sample and the interval length; in-graph code
/// derives sample indices, detector-major offsets and validity masks.
struct PaddedView {
  std::int64_t rows = 0;
  std::int64_t max_len = 0;
  xla::Literal det_ids;  // [rows] i64
  xla::Literal starts;   // [rows] i64 (interval start sample)
  xla::Literal lens;     // [rows] i64 (interval length)
};

PaddedView make_padded_view(std::span<const core::Interval> intervals,
                            std::int64_t n_det);

/// In-graph helpers shared by the kernels.  All return [rows, max_len]
/// arrays given the three PaddedView parameter arrays and max_len.
struct PaddedIndex {
  xla::Array samp;   // shared-domain sample index (i64)
  xla::Array detmaj; // detector-major index det * n_samp + samp (i64)
  xla::Array det;    // detector id broadcast (i64)
  xla::Array valid;  // lane is inside its true interval (pred)
};

PaddedIndex padded_index(xla::Array det_ids, xla::Array starts,
                         xla::Array lens, std::int64_t max_len,
                         std::int64_t n_samp);

/// Mask an index array: invalid lanes become -1 (dropped by scatter).
xla::Array masked(xla::Array idx, xla::Array valid);

/// Positive fmod(v, m) for scalar m (python-style modulo).
xla::Array pmod(xla::Array v, double m);

/// Rotate the constant axis (v0, v1, v2) by the quaternion arrays,
/// building exactly the expression tree of kernels::quat_rotate so the
/// JAX port is bit-identical to the compiled kernels.
struct Rotated {
  xla::Array x, y, z;
};
Rotated rotate_axis(xla::Array qx, xla::Array qy, xla::Array qz,
                    xla::Array qw, double v0, double v1, double v2);

/// Per-kernel Jit instances with process-resettable caches.
xla::Jit& registered_jit(const std::string& name, xla::TracedFn fn);

/// Wrap a raw buffer as a Literal (copies; the staging costs are charged
/// by the pipeline's AccelStore, not here).
xla::Literal lit_f64(const double* data, std::int64_t n);
xla::Literal lit_i64(const std::int64_t* data, std::int64_t n);
xla::Literal lit_u8_as_i64(const std::uint8_t* data, std::int64_t n);

/// Copy a result Literal back into a raw buffer.
void store_f64(const xla::Literal& l, double* out);
void store_i64(const xla::Literal& l, std::int64_t* out);

}  // namespace toast::kernels::jax
